// Figure 10 reproduction: LUBM Query 1 (everyone related to Course10 of
// Department0.University0, via any property).
//
// Expected shape: Hexastore retrieves the answer directly from its osp
// index and sits orders of magnitude below COVP1 (which probes every
// property table by walking subject vectors); COVP2 in between.
#include "bench_common.h"

namespace hexastore::bench {
namespace {

int Main(int argc, char** argv) {
  RegisterFigure(
      "fig10_lubm_q1", Dataset::kLubm,
      {
          {"Hexastore",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 workload::LubmRelatedToHexa(s.hexa, s.lubm_ids.course10));
           }},
          {"COVP1",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 workload::LubmRelatedToCovp(s.covp1,
                                             s.lubm_ids.course10));
           }},
          {"COVP2",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 workload::LubmRelatedToCovp(s.covp2,
                                             s.lubm_ids.course10));
           }},
      });
  return BenchMain(argc, argv);
}

}  // namespace
}  // namespace hexastore::bench

int main(int argc, char** argv) {
  return hexastore::bench::Main(argc, argv);
}

// Figure 4 reproduction: Barton Query 2 (property frequencies over
// Type:Text subjects), unrestricted and with the 28-property
// pre-selection (`_28` series).
//
// Expected shape: Hexastore about an order of magnitude below both COVP
// variants (it merges only the spo property vectors of the qualifying
// subjects); COVP2 below COVP1 (pos-based pre-selection).
#include "bench_common.h"

namespace hexastore::bench {
namespace {

int Main(int argc, char** argv) {
  using workload::BartonQ2Covp;
  using workload::BartonQ2Hexa;
  RegisterFigure(
      "fig04_barton_q2", Dataset::kBarton,
      {
          {"Hexastore",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 BartonQ2Hexa(s.hexa, s.barton_ids, nullptr));
           }},
          {"COVP1",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 BartonQ2Covp(s.covp1, s.barton_ids, nullptr));
           }},
          {"COVP2",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 BartonQ2Covp(s.covp2, s.barton_ids, nullptr));
           }},
          {"Hexastore_28",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(BartonQ2Hexa(
                 s.hexa, s.barton_ids, &s.barton_ids.preselected));
           }},
          {"COVP1_28",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(BartonQ2Covp(
                 s.covp1, s.barton_ids, &s.barton_ids.preselected));
           }},
          {"COVP2_28",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(BartonQ2Covp(
                 s.covp2, s.barton_ids, &s.barton_ids.preselected));
           }},
      });
  return BenchMain(argc, argv);
}

}  // namespace
}  // namespace hexastore::bench

int main(int argc, char** argv) {
  return hexastore::bench::Main(argc, argv);
}

// Figure 9 reproduction: Barton Query 7 (simple triple selection —
// Encoding and Type of resources whose Point value is "end").
//
// Expected shape: COVP2 ~= Hexastore clearly below COVP1, thanks to the
// pos-index retrieval of the Point:"end" selection.
#include "bench_common.h"

namespace hexastore::bench {
namespace {

int Main(int argc, char** argv) {
  RegisterFigure(
      "fig09_barton_q7", Dataset::kBarton,
      {
          {"Hexastore",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 workload::BartonQ7Hexa(s.hexa, s.barton_ids));
           }},
          {"COVP1",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 workload::BartonQ7Covp(s.covp1, s.barton_ids));
           }},
          {"COVP2",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 workload::BartonQ7Covp(s.covp2, s.barton_ids));
           }},
      });
  return BenchMain(argc, argv);
}

}  // namespace
}  // namespace hexastore::bench

int main(int argc, char** argv) {
  return hexastore::bench::Main(argc, argv);
}

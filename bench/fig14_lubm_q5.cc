// Figure 14 reproduction: LUBM Query 5 (people with any degree from a
// university AssociateProfessor10 is related to, grouped by university).
//
// Expected shape: Hexastore two to three orders of magnitude below both
// COVP variants — its sop index hands over AP10's object vector directly,
// where the COVP stores must scan all property tables.
#include "bench_common.h"

namespace hexastore::bench {
namespace {

int Main(int argc, char** argv) {
  RegisterFigure(
      "fig14_lubm_q5", Dataset::kLubm,
      {
          {"Hexastore",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 workload::LubmQ5Hexa(s.hexa, s.lubm_ids));
           }},
          {"COVP1",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 workload::LubmQ5Covp(s.covp1, s.lubm_ids));
           }},
          {"COVP2",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 workload::LubmQ5Covp(s.covp2, s.lubm_ids));
           }},
      });
  return BenchMain(argc, argv);
}

}  // namespace
}  // namespace hexastore::bench

int main(int argc, char** argv) {
  return hexastore::bench::Main(argc, argv);
}

// Figure 12 reproduction: LUBM Query 3 (all immediate information about
// AssociateProfessor10 — as subject and as object).
//
// Expected shape: Hexastore needs just two lookups (spo + ops) and is
// ~3 orders of magnitude below COVP1; COVP2 is better than COVP1 thanks
// to its pos index but still must visit every property table.
#include "bench_common.h"

namespace hexastore::bench {
namespace {

int Main(int argc, char** argv) {
  RegisterFigure(
      "fig12_lubm_q3", Dataset::kLubm,
      {
          {"Hexastore",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 workload::LubmQ3Hexa(s.hexa, s.lubm_ids.assoc_prof10));
           }},
          {"COVP1",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 workload::LubmQ3Covp(s.covp1, s.lubm_ids.assoc_prof10));
           }},
          {"COVP2",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 workload::LubmQ3Covp(s.covp2, s.lubm_ids.assoc_prof10));
           }},
      });
  return BenchMain(argc, argv);
}

}  // namespace
}  // namespace hexastore::bench

int main(int argc, char** argv) {
  return hexastore::bench::Main(argc, argv);
}

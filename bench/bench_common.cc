#include "bench_common.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "data/barton_generator.h"
#include "data/lubm_generator.h"

namespace hexastore::bench {

std::vector<std::size_t> SweepSizes() {
  const char* env = std::getenv("HEXA_BENCH_SIZES");
  std::string spec = env != nullptr
                         ? env
                         : "20000,50000,100000,200000,400000";
  std::vector<std::size_t> sizes;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    std::string tok = spec.substr(
        start, comma == std::string::npos ? std::string::npos
                                          : comma - start);
    if (!tok.empty()) {
      char* end = nullptr;
      errno = 0;
      unsigned long long value = std::strtoull(tok.c_str(), &end, 10);
      // strtoull wraps negatives and clamps overflow, so check both.
      if (tok[0] == '-' || errno == ERANGE || end == tok.c_str() ||
          *end != '\0' || value == 0) {
        std::fprintf(stderr,
                     "HEXA_BENCH_SIZES: bad size '%s' (expected "
                     "comma-separated positive integers)\n",
                     tok.c_str());
        std::exit(2);
      }
      sizes.push_back(static_cast<std::size_t>(value));
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return sizes;
}

namespace {

// Full-size generated datasets, shared across sizes of one process.
const std::vector<Triple>& FullDataset(Dataset dataset,
                                       std::size_t max_size) {
  static std::map<Dataset, std::unique_ptr<std::vector<Triple>>> cache;
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(dataset);
  if (it == cache.end() || it->second->size() < max_size) {
    auto triples = std::make_unique<std::vector<Triple>>(
        dataset == Dataset::kBarton
            ? data::BartonGenerator().Generate(max_size)
            : data::LubmGenerator().Generate(max_size));
    cache[dataset] = std::move(triples);
    it = cache.find(dataset);
  }
  return *it->second;
}

}  // namespace

const LoadedStores& GetStores(Dataset dataset, std::size_t num_triples) {
  static std::map<std::pair<int, std::size_t>,
                  std::unique_ptr<LoadedStores>>
      cache;
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  auto key = std::make_pair(static_cast<int>(dataset), num_triples);
  auto it = cache.find(key);
  if (it != cache.end()) {
    return *it->second;
  }

  std::size_t max_size = num_triples;
  for (std::size_t s : SweepSizes()) {
    max_size = std::max(max_size, s);
  }
  const auto& full = FullDataset(dataset, max_size);

  auto loaded = std::make_unique<LoadedStores>();
  loaded->num_triples = num_triples;
  IdTripleVec encoded;
  encoded.reserve(num_triples);
  for (std::size_t i = 0; i < num_triples && i < full.size(); ++i) {
    encoded.push_back(loaded->dict.Encode(full[i]));
  }
  loaded->hexa.BulkLoad(encoded);
  loaded->covp1.BulkLoad(encoded);
  loaded->covp2.BulkLoad(encoded);
  loaded->barton_ids = workload::BartonIds::Resolve(loaded->dict);
  loaded->lubm_ids = workload::LubmIds::Resolve(loaded->dict);

  auto [pos, ok] = cache.emplace(key, std::move(loaded));
  (void)ok;
  return *pos->second;
}

void RegisterFigure(const std::string& figure, Dataset dataset,
                    const std::vector<Series>& series) {
  for (std::size_t n : SweepSizes()) {
    for (const Series& s : series) {
      std::string name = figure + "/" + s.label + "/triples:" +
                         std::to_string(n);
      auto run = s.run;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [dataset, n, run](benchmark::State& state) {
            const LoadedStores& stores = GetStores(dataset, n);
            for (auto _ : state) {
              run(stores);
            }
            state.counters["triples"] = static_cast<double>(n);
          })
          ->Unit(benchmark::kMicrosecond)
          ->MinTime(0.02);
    }
  }
}

int BenchMain(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace hexastore::bench

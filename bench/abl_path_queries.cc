// Ablation for paper §4.3: path-expression evaluation. Compares the
// Hexastore merge-join strategy (first join linear, rest sort-merge)
// against the generic hash-join evaluation over COVP1, on LUBM paths of
// length 2 and 3 built from advisor / worksFor / subOrganizationOf.
#include "bench_common.h"
#include "query/path.h"

#include "data/lubm_generator.h"

namespace hexastore::bench {
namespace {

std::vector<Id> ResolvePath(const Dictionary& dict, int length) {
  using data::LubmGenerator;
  std::vector<Id> path = {
      dict.Lookup(LubmGenerator::PropAdvisor()),
      dict.Lookup(LubmGenerator::PropWorksFor()),
      dict.Lookup(LubmGenerator::PropSubOrganizationOf()),
  };
  path.resize(static_cast<std::size_t>(length));
  return path;
}

int Main(int argc, char** argv) {
  for (std::size_t n : SweepSizes()) {
    for (int length : {2, 3}) {
      benchmark::RegisterBenchmark(
          ("abl_path/hexastore_merge/len:" + std::to_string(length) +
           "/triples:" + std::to_string(n))
              .c_str(),
          [n, length](benchmark::State& state) {
            const LoadedStores& stores = GetStores(Dataset::kLubm, n);
            std::vector<Id> path = ResolvePath(stores.dict, length);
            for (auto _ : state) {
              benchmark::DoNotOptimize(
                  EvalPathHexastore(stores.hexa, path));
            }
            state.counters["triples"] = static_cast<double>(n);
          })
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.02);

      benchmark::RegisterBenchmark(
          ("abl_path/covp1_hashjoin/len:" + std::to_string(length) +
           "/triples:" + std::to_string(n))
              .c_str(),
          [n, length](benchmark::State& state) {
            const LoadedStores& stores = GetStores(Dataset::kLubm, n);
            std::vector<Id> path = ResolvePath(stores.dict, length);
            for (auto _ : state) {
              benchmark::DoNotOptimize(
                  EvalPathGeneric(stores.covp1, path));
            }
            state.counters["triples"] = static_cast<double>(n);
          })
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.02);
    }
  }
  return BenchMain(argc, argv);
}

}  // namespace
}  // namespace hexastore::bench

int main(int argc, char** argv) {
  return hexastore::bench::Main(argc, argv);
}

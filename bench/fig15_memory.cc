// Figure 15 reproduction: memory consumption of Hexastore / COVP1 /
// COVP2 on both data sets across the triple-count sweep. Memory is
// reported via the `bytes` and `mb` counters (the benchmark's timing
// column is irrelevant here).
//
// Expected shape: Hexastore roughly 4x COVP1 (paper: "in practice,
// Hexastore requires a four-fold increase in memory in comparison to
// COVP1"); COVP2 between the two.
#include "bench_common.h"

namespace hexastore::bench {
namespace {

void ReportMemory(benchmark::State& state, const TripleStore& store,
                  std::size_t triples) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.MemoryBytes());
  }
  const double bytes = static_cast<double>(store.MemoryBytes());
  state.counters["bytes"] = bytes;
  state.counters["mb"] = bytes / (1024.0 * 1024.0);
  state.counters["triples"] = static_cast<double>(triples);
}

int Main(int argc, char** argv) {
  struct DatasetEntry {
    const char* name;
    Dataset dataset;
  };
  const DatasetEntry datasets[] = {
      {"barton", Dataset::kBarton},
      {"lubm", Dataset::kLubm},
  };
  for (const auto& entry : datasets) {
    for (std::size_t n : SweepSizes()) {
      for (const char* store_label :
           {"Hexastore", "COVP1", "COVP2"}) {
        std::string name = std::string("fig15_memory/") + entry.name +
                           "/" + store_label +
                           "/triples:" + std::to_string(n);
        Dataset dataset = entry.dataset;
        std::string label = store_label;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [dataset, n, label](benchmark::State& state) {
              const LoadedStores& stores = GetStores(dataset, n);
              const TripleStore* store =
                  label == "Hexastore"
                      ? static_cast<const TripleStore*>(&stores.hexa)
                      : label == "COVP1"
                            ? static_cast<const TripleStore*>(
                                  &stores.covp1)
                            : static_cast<const TripleStore*>(
                                  &stores.covp2);
              ReportMemory(state, *store, n);
            });
      }
    }
  }
  return BenchMain(argc, argv);
}

}  // namespace
}  // namespace hexastore::bench

int main(int argc, char** argv) {
  return hexastore::bench::Main(argc, argv);
}

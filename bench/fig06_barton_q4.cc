// Figure 6 reproduction: Barton Query 4 (BQ3 restricted to subjects of
// Type:Text AND Language:French), unrestricted and `_28`.
//
// Expected shape: Hexastore advantage more distinct than Figure 5 — the
// extra language selection shrinks the subject set, so the shared
// aggregation tail is smaller and the selection strategy dominates.
#include "bench_common.h"

namespace hexastore::bench {
namespace {

int Main(int argc, char** argv) {
  using workload::BartonQ4Covp;
  using workload::BartonQ4Hexa;
  RegisterFigure(
      "fig06_barton_q4", Dataset::kBarton,
      {
          {"Hexastore",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 BartonQ4Hexa(s.hexa, s.barton_ids, nullptr));
           }},
          {"COVP1",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 BartonQ4Covp(s.covp1, s.barton_ids, nullptr));
           }},
          {"COVP2",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 BartonQ4Covp(s.covp2, s.barton_ids, nullptr));
           }},
          {"Hexastore_28",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(BartonQ4Hexa(
                 s.hexa, s.barton_ids, &s.barton_ids.preselected));
           }},
          {"COVP1_28",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(BartonQ4Covp(
                 s.covp1, s.barton_ids, &s.barton_ids.preselected));
           }},
          {"COVP2_28",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(BartonQ4Covp(
                 s.covp2, s.barton_ids, &s.barton_ids.preselected));
           }},
      });
  return BenchMain(argc, argv);
}

}  // namespace
}  // namespace hexastore::bench

int main(int argc, char** argv) {
  return hexastore::bench::Main(argc, argv);
}

// Closed-loop multi-client driver for hexastore_server: N concurrent
// HTTP clients (readers cycling SPARQL templates, one writer staging
// N-Triples churn) against either an in-process Server or an external
// one, reporting throughput, tail latency and plan-cache behaviour.
//
// Two modes:
//   - HEXA_SERVER_ADDR=host:port  drive an already-running server (the
//     CI smoke job starts hexastore_server and points this at it).
//   - unset                       start an in-process Server over a
//     generated LUBM store on an ephemeral loopback port.
//
// Every response is oracle-checked, not just timed:
//   - Stable templates touch predicates the writer never mutates; their
//     W3C JSON bodies must be byte-identical across the whole run.
//   - The hot template counts rows over the writer's insert-only
//     predicate; each client issues requests sequentially and published
//     generations are monotone, so its observed row counts must be
//     non-decreasing.
//   - In in-process mode the run additionally requires plan-cache
//     hit rate > 0.9 and, when the writer ran, invalidations > 0
//     (estimate drift on the hot predicate must cross the q-error
//     threshold eventually).
//
// Environment knobs:
//   HEXA_SERVER_ADDR    host:port of an external server (else in-process)
//   HEXA_BENCH_CLIENTS  total concurrent clients       (default 8)
//   HEXA_BENCH_SECONDS  measured wall time             (default 5)
//   HEXA_BENCH_TRIPLES  in-process LUBM preload size   (default 20000)
//   HEXA_BENCH_READONLY set to 1 to disable the writer client
//
// Exits nonzero on any oracle violation or HTTP-level wrong answer.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/lubm_generator.h"
#include "delta/delta_hexastore.h"
#include "dict/dictionary.h"
#include "server/server.h"
#include "server/store_options.h"

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t EnvU64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  char* end = nullptr;
  unsigned long long v = std::strtoull(raw, &end, 10);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

// ---------------------------------------------------------------------
// Minimal blocking HTTP/1.1 client with keep-alive and reconnect.
class HttpClient {
 public:
  HttpClient(std::string host, std::uint16_t port)
      : host_(std::move(host)), port_(port) {}
  ~HttpClient() { Close(); }

  /// One request/response round trip. Returns the HTTP status code, or
  /// -1 on a transport error (the connection is reset for retry).
  int Request(const char* method, const std::string& target,
              const std::string& body, std::string* response_body) {
    if (fd_ < 0 && !Connect()) {
      return -1;
    }
    std::string req;
    req.reserve(128 + target.size() + body.size());
    req.append(method).append(" ").append(target).append(" HTTP/1.1\r\n");
    req.append("Host: ").append(host_).append("\r\n");
    req.append("Content-Length: ")
        .append(std::to_string(body.size()))
        .append("\r\n\r\n");
    req.append(body);
    if (!WriteAll(req)) {
      Close();
      return -1;
    }
    return ReadResponse(response_body);
  }

 private:
  bool Connect() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0) {
      Close();
      return false;
    }
    return true;
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool WriteAll(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) {
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  int ReadResponse(std::string* body) {
    std::string buf;
    char chunk[4096];
    std::size_t header_end = std::string::npos;
    while (header_end == std::string::npos) {
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        Close();
        return -1;
      }
      buf.append(chunk, static_cast<std::size_t>(n));
      header_end = buf.find("\r\n\r\n");
    }
    // Status line: "HTTP/1.1 200 OK".
    int status = -1;
    if (std::size_t sp = buf.find(' '); sp != std::string::npos) {
      status = std::atoi(buf.c_str() + sp + 1);
    }
    std::size_t content_length = 0;
    {
      // Case-insensitive Content-Length scan within the header block.
      std::string lower = buf.substr(0, header_end);
      std::transform(lower.begin(), lower.end(), lower.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      std::size_t pos = lower.find("content-length:");
      if (pos != std::string::npos) {
        content_length = std::strtoull(lower.c_str() + pos + 15, nullptr, 10);
      }
      bool close_conn = lower.find("connection: close") != std::string::npos;
      if (close_conn) {
        pending_close_ = true;
      }
    }
    std::size_t body_start = header_end + 4;
    while (buf.size() - body_start < content_length) {
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        Close();
        return -1;
      }
      buf.append(chunk, static_cast<std::size_t>(n));
    }
    if (body != nullptr) {
      body->assign(buf, body_start, content_length);
    }
    if (pending_close_) {
      Close();
      pending_close_ = false;
    }
    return status;
  }

  std::string host_;
  std::uint16_t port_;
  int fd_ = -1;
  bool pending_close_ = false;
};

// ---------------------------------------------------------------------
// Workload definition.

constexpr const char* kLubmPrefix =
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> ";

// Templates over predicates the writer never touches: responses must be
// byte-identical for the whole run.
const char* kStableTemplates[] = {
    "SELECT ?s ?dept WHERE { ?s ub:worksFor ?dept } LIMIT 20",
    "SELECT DISTINCT ?prof WHERE { ?s ub:advisor ?prof . "
    "?prof ub:worksFor ?dept } ORDER BY ?prof LIMIT 10",
    "SELECT ?x ?n WHERE { ?x ub:name ?n } LIMIT 20",
    "SELECT ?s WHERE { ?s ub:type ?c . ?s ub:emailAddress ?e } LIMIT 10",
};
constexpr std::size_t kNumStable =
    sizeof(kStableTemplates) / sizeof(kStableTemplates[0]);

// The hot template: counts rows over the writer's insert-only
// predicate. Row counts per client must be non-decreasing.
constexpr const char* kHotQuery =
    "SELECT ?s WHERE { ?s <http://bench.example.org/hot> ?o }";

struct SharedState {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> oracle_failures{0};
  std::mutex mu;
  std::string expected[kNumStable];  // first-seen stable response bodies
  std::vector<std::uint64_t> read_ns;
  std::vector<std::uint64_t> write_ns;
};

std::size_t CountRows(const std::string& body) {
  // One binding object per row; each row of the hot template binds ?s.
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = body.find("{\"s\":", pos)) != std::string::npos) {
    ++count;
    pos += 5;
  }
  return count;
}

void ReaderLoop(const std::string& host, std::uint16_t port, std::size_t id,
                SharedState* state) {
  HttpClient client(host, port);
  std::vector<std::uint64_t> latencies;
  latencies.reserve(1 << 14);
  std::size_t last_hot_rows = 0;
  std::uint64_t iteration = 0;
  while (!state->stop.load(std::memory_order_relaxed)) {
    // 1 request in 8 polls the hot template; the rest cycle the stable
    // set (offset by client id so clients are not in lockstep).
    const bool hot = (iteration % 8) == 7;
    const std::size_t tmpl = (iteration + id) % kNumStable;
    std::string query =
        hot ? std::string(kHotQuery)
            : std::string(kLubmPrefix) + kStableTemplates[tmpl];
    std::string body;
    auto start = Clock::now();
    int status = client.Request("POST", "/query", query, &body);
    auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       Clock::now() - start)
                       .count();
    ++iteration;
    if (status != 200) {
      state->errors.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    latencies.push_back(static_cast<std::uint64_t>(elapsed));
    state->ok.fetch_add(1, std::memory_order_relaxed);
    if (hot) {
      std::size_t rows = CountRows(body);
      if (rows < last_hot_rows) {
        std::fprintf(stderr,
                     "abl_server: ORACLE FAILURE: client %zu saw hot rows "
                     "shrink %zu -> %zu\n",
                     id, last_hot_rows, rows);
        state->oracle_failures.fetch_add(1, std::memory_order_relaxed);
      }
      last_hot_rows = rows;
    } else {
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->expected[tmpl].empty()) {
        state->expected[tmpl] = body;
      } else if (state->expected[tmpl] != body) {
        std::fprintf(stderr,
                     "abl_server: ORACLE FAILURE: stable template %zu "
                     "response changed (%zu vs %zu bytes)\n",
                     tmpl, state->expected[tmpl].size(), body.size());
        state->oracle_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  std::lock_guard<std::mutex> lock(state->mu);
  state->read_ns.insert(state->read_ns.end(), latencies.begin(),
                        latencies.end());
}

void WriterLoop(const std::string& host, std::uint16_t port,
                SharedState* state) {
  HttpClient client(host, port);
  std::vector<std::uint64_t> latencies;
  std::uint64_t next_id = 0;
  std::uint64_t batch = 0;
  while (!state->stop.load(std::memory_order_relaxed)) {
    // Insert a batch on the hot predicate (never erased: the hot oracle
    // relies on monotone growth), plus churn triples that the next
    // batch erases again to keep staged-op counts moving.
    std::string triples;
    for (int i = 0; i < 16; ++i) {
      triples += "<http://bench.example.org/subj" + std::to_string(next_id) +
                 "> <http://bench.example.org/hot> "
                 "<http://bench.example.org/obj> .\n";
      ++next_id;
    }
    std::string churn = "<http://bench.example.org/churn" +
                        std::to_string(batch % 4) +
                        "> <http://bench.example.org/cold> "
                        "<http://bench.example.org/obj> .\n";
    auto start = Clock::now();
    int status = client.Request("POST", "/insert", triples + churn, nullptr);
    auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       Clock::now() - start)
                       .count();
    if (status == 200) {
      latencies.push_back(static_cast<std::uint64_t>(elapsed));
      state->ok.fetch_add(1, std::memory_order_relaxed);
    } else {
      state->errors.fetch_add(1, std::memory_order_relaxed);
    }
    if (batch % 2 == 1) {
      int erased = client.Request("POST", "/erase", churn, nullptr);
      if (erased == 200) {
        state->ok.fetch_add(1, std::memory_order_relaxed);
      } else {
        state->errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
    ++batch;
    // Closed loop but paced: the writer should create churn, not
    // monopolize the store's writer mutex.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::lock_guard<std::mutex> lock(state->mu);
  state->write_ns.insert(state->write_ns.end(), latencies.begin(),
                         latencies.end());
}

double PercentileUs(std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  std::size_t idx = static_cast<std::size_t>(
      (p / 100.0) * static_cast<double>(sorted.size() - 1) + 0.5);
  return static_cast<double>(sorted[std::min(idx, sorted.size() - 1)]) / 1e3;
}

}  // namespace

int main() {
  const std::size_t clients =
      std::max<std::size_t>(1, EnvU64("HEXA_BENCH_CLIENTS", 8));
  const double seconds =
      static_cast<double>(EnvU64("HEXA_BENCH_SECONDS", 5));
  const std::size_t preload = EnvU64("HEXA_BENCH_TRIPLES", 20000);
  const bool read_only = EnvU64("HEXA_BENCH_READONLY", 0) != 0;

  // Resolve the target: external server or in-process.
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::unique_ptr<hexastore::Dictionary> dict;
  std::unique_ptr<hexastore::DeltaHexastore> store;
  std::unique_ptr<hexastore::Server> server;
  const char* addr = std::getenv("HEXA_SERVER_ADDR");
  if (addr != nullptr && *addr != '\0') {
    std::string spec(addr);
    std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "abl_server: HEXA_SERVER_ADDR must be host:port\n");
      return 2;
    }
    host = spec.substr(0, colon);
    port = static_cast<std::uint16_t>(std::atoi(spec.c_str() + colon + 1));
  } else {
    dict = std::make_unique<hexastore::Dictionary>();
    store = std::make_unique<hexastore::DeltaHexastore>();
    hexastore::IdTripleVec ids;
    for (const hexastore::Triple& t :
         hexastore::data::LubmGenerator().Generate(preload)) {
      ids.push_back(dict->Encode(t));
    }
    store->BulkLoad(ids);
    hexastore::ServerOptions options;
    options.port = 0;  // ephemeral
    server = std::make_unique<hexastore::Server>(*store, *dict, options);
    hexastore::Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "abl_server: %s\n", started.ToString().c_str());
      return 2;
    }
    port = server->port();
  }

  const std::size_t writers = (read_only || clients < 2) ? 0 : 1;
  const std::size_t readers = clients - writers;
  std::fprintf(stderr,
               "abl_server: %zu clients (%zu readers, %zu writers), "
               "%.0f s against %s:%u%s\n",
               clients, readers, writers, seconds, host.c_str(), port,
               server != nullptr ? " (in-process)" : "");

  SharedState state;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  auto bench_start = Clock::now();
  for (std::size_t i = 0; i < readers; ++i) {
    threads.emplace_back(ReaderLoop, host, port, i, &state);
  }
  for (std::size_t i = 0; i < writers; ++i) {
    threads.emplace_back(WriterLoop, host, port, &state);
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  state.stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) {
    t.join();
  }
  double wall = std::chrono::duration<double>(Clock::now() - bench_start)
                    .count();

  std::sort(state.read_ns.begin(), state.read_ns.end());
  std::sort(state.write_ns.begin(), state.write_ns.end());
  const std::uint64_t ok = state.ok.load();
  const std::uint64_t errors = state.errors.load();
  std::printf("requests: %llu ok, %llu errors  (%.1f req/s)\n",
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(errors),
              static_cast<double>(ok) / wall);
  std::printf("read  latency: p50=%.1fus p99=%.1fus p99.9=%.1fus (n=%zu)\n",
              PercentileUs(state.read_ns, 50), PercentileUs(state.read_ns, 99),
              PercentileUs(state.read_ns, 99.9), state.read_ns.size());
  if (!state.write_ns.empty()) {
    std::printf("write latency: p50=%.1fus p99=%.1fus p99.9=%.1fus (n=%zu)\n",
                PercentileUs(state.write_ns, 50),
                PercentileUs(state.write_ns, 99),
                PercentileUs(state.write_ns, 99.9), state.write_ns.size());
  }

  bool pass = state.oracle_failures.load() == 0 && errors == 0 && ok > 0;
  if (server != nullptr) {
    // In-process: read the plan-cache counters directly and enforce the
    // acceptance thresholds.
    const hexastore::PlanCache& cache = server->plan_cache();
    const std::uint64_t hits = cache.hits();
    const std::uint64_t misses = cache.misses();
    const std::uint64_t invalidations = cache.invalidations();
    const double hit_rate =
        hits + misses > 0
            ? static_cast<double>(hits) / static_cast<double>(hits + misses)
            : 0.0;
    std::printf(
        "plan cache: hits=%llu misses=%llu invalidations=%llu "
        "hit_rate=%.3f\n",
        static_cast<unsigned long long>(hits),
        static_cast<unsigned long long>(misses),
        static_cast<unsigned long long>(invalidations), hit_rate);
    if (hit_rate <= 0.9) {
      std::fprintf(stderr, "abl_server: FAIL: plan-cache hit rate <= 0.9\n");
      pass = false;
    }
    if (writers > 0 && invalidations == 0) {
      std::fprintf(stderr,
                   "abl_server: FAIL: no plan-cache invalidations under "
                   "churn\n");
      pass = false;
    }
    server->Stop();
  } else {
    // External server: surface its plan-cache exposition for the CI log;
    // threshold enforcement happens in scripts/check_metrics_json.py.
    HttpClient metrics_client(host, port);
    std::string metrics;
    if (metrics_client.Request("GET", "/metrics", "", &metrics) == 200) {
      std::size_t pos = 0;
      while ((pos = metrics.find("hexa_plan_cache_", pos)) !=
             std::string::npos) {
        std::size_t eol = metrics.find('\n', pos);
        std::printf("%s\n",
                    metrics.substr(pos, eol - pos).c_str());
        pos = eol == std::string::npos ? metrics.size() : eol + 1;
      }
    }
  }

  std::printf("oracle: %s (%zu stable templates, hot-row monotonicity, "
              "%llu failures)\n",
              pass ? "PASS" : "FAIL", kNumStable,
              static_cast<unsigned long long>(state.oracle_failures.load()));
  return pass ? 0 : 1;
}

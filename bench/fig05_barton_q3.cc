// Figure 5 reproduction: Barton Query 3 (per-property counts of
// 'popular' object values among Type:Text subjects), unrestricted and
// `_28`.
//
// Expected shape: the Hexastore advantage narrows relative to BQ2 —
// every method pays the property-indexed final aggregation step.
#include "bench_common.h"

namespace hexastore::bench {
namespace {

int Main(int argc, char** argv) {
  using workload::BartonQ3Covp;
  using workload::BartonQ3Hexa;
  RegisterFigure(
      "fig05_barton_q3", Dataset::kBarton,
      {
          {"Hexastore",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 BartonQ3Hexa(s.hexa, s.barton_ids, nullptr));
           }},
          {"COVP1",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 BartonQ3Covp(s.covp1, s.barton_ids, nullptr));
           }},
          {"COVP2",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 BartonQ3Covp(s.covp2, s.barton_ids, nullptr));
           }},
          {"Hexastore_28",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(BartonQ3Hexa(
                 s.hexa, s.barton_ids, &s.barton_ids.preselected));
           }},
          {"COVP1_28",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(BartonQ3Covp(
                 s.covp1, s.barton_ids, &s.barton_ids.preselected));
           }},
          {"COVP2_28",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(BartonQ3Covp(
                 s.covp2, s.barton_ids, &s.barton_ids.preselected));
           }},
      });
  return BenchMain(argc, argv);
}

}  // namespace
}  // namespace hexastore::bench

int main(int argc, char** argv) {
  return hexastore::bench::Main(argc, argv);
}

// Figure 7 reproduction: Barton Query 5 (type inference through the
// Records property for DLC-origin subjects).
//
// Expected shape: COVP2 ~= Hexastore, well below COVP1 — the pos index
// turns the expensive unsorted subject-object join into merge joins.
#include "bench_common.h"

namespace hexastore::bench {
namespace {

int Main(int argc, char** argv) {
  RegisterFigure(
      "fig07_barton_q5", Dataset::kBarton,
      {
          {"Hexastore",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 workload::BartonQ5Hexa(s.hexa, s.barton_ids));
           }},
          {"COVP1",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 workload::BartonQ5Covp(s.covp1, s.barton_ids));
           }},
          {"COVP2",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 workload::BartonQ5Covp(s.covp2, s.barton_ids));
           }},
      });
  return BenchMain(argc, argv);
}

}  // namespace
}  // namespace hexastore::bench

int main(int argc, char** argv) {
  return hexastore::bench::Main(argc, argv);
}

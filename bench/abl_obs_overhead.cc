// Observability-overhead ablation: what the PR-7 instrumentation costs
// on the paths it touches.
//
// The contract the obs layer must keep (docs/observability.md): the
// sampled ScopedTimers add only low-single-digit nanoseconds to the
// ~75ns insert path (within the run-to-run noise of the end-to-end
// series — compare on/off with --benchmark_enable_random_interleaving to
// control for ordering drift), and HEXA_METRICS=0 reduces the
// timers/tracing to a single relaxed flag load. Three groups pin that:
//
//   scoped_timer/*   — the raw primitive: a Counter::Add, one ScopedTimer
//                      over a trivial body at sample_shift 0 (every op
//                      pays two clock reads) and kHotPathSampleShift
//                      (1-in-128, the hot-path configuration), and the
//                      same timer with metrics disabled (the near-zero
//                      toggle).
//   insert/*         — DeltaHexastore::Insert end to end, metrics on vs
//                      off: the overhead claim measured where it
//                      matters; the on/off delta IS the instrumentation
//                      cost.
//   trace_ring/*     — one TraceRing::Record, enabled and disabled.
//   bgp_eval/*       — a two-pattern LUBM join end to end with the PR-8
//                      query profiler detached (profile:off, the default
//                      nullptr path — must match the pre-profiling
//                      baseline), attached (profile:on), and attached
//                      with metrics off.
//
// The enabled/disabled toggle uses SetMetricsEnabledForTesting (the env
// var is read once per process); benchmarks restore the enabled state so
// registration order cannot leak between series.
#include "bench_common.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/lubm_generator.h"
#include "delta/delta_hexastore.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace_ring.h"
#include "query/bgp.h"

namespace hexastore::bench {
namespace {

// Toggles the runtime metrics switch for one benchmark's scope.
class MetricsToggle {
 public:
  explicit MetricsToggle(bool enabled) {
    obs::SetMetricsEnabledForTesting(enabled);
  }
  ~MetricsToggle() { obs::SetMetricsEnabledForTesting(true); }
};

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter counter;
  for (auto _ : state) {
    counter.Add();
    benchmark::DoNotOptimize(&counter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CounterAdd)->Name("abl_obs_overhead/scoped_timer/counter_add");

void TimerBody(benchmark::State& state, unsigned sample_shift,
               bool enabled) {
  MetricsToggle toggle(enabled);
  obs::LatencyHistogram hist(sample_shift);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    obs::ScopedTimer timer(&hist);
    benchmark::DoNotOptimize(++sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["recorded"] =
      static_cast<double>(hist.Snapshot().count);
}

void BM_TimerShift0(benchmark::State& state) { TimerBody(state, 0, true); }
void BM_TimerHotShift(benchmark::State& state) {
  TimerBody(state, obs::kHotPathSampleShift, true);
}
void BM_TimerOff(benchmark::State& state) {
  TimerBody(state, obs::kHotPathSampleShift, false);
}
BENCHMARK(BM_TimerShift0)
    ->Name("abl_obs_overhead/scoped_timer/shift:0/metrics:on");
BENCHMARK(BM_TimerHotShift)
    ->Name("abl_obs_overhead/scoped_timer/shift:hot/metrics:on");
BENCHMARK(BM_TimerOff)
    ->Name("abl_obs_overhead/scoped_timer/shift:hot/metrics:off");

void BM_TraceRecord(benchmark::State& state) {
  MetricsToggle toggle(state.range(0) != 0);
  obs::TraceRing ring(1024);
  for (auto _ : state) {
    ring.Record(obs::TraceEvent::kSeal, "bench", 1, 2);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceRecord)
    ->Name("abl_obs_overhead/trace_ring/record")
    ->Arg(1)
    ->Arg(0);

// End-to-end insert loop, instrumentation on vs off. One pass inserts
// kInsertTriples fresh LUBM triples into a store with a threshold high
// enough that no drain lands inside the timed loop — isolating the
// per-op cost the timers/counters add, the configuration the <1% budget
// is defined against.
constexpr std::size_t kInsertTriples = 50000;

void InsertBody(benchmark::State& state, bool enabled) {
  MetricsToggle toggle(enabled);
  Dictionary dict;
  IdTripleVec data;
  for (const auto& t : data::LubmGenerator().Generate(kInsertTriples)) {
    data.push_back(dict.Encode(t));
  }
  DeltaOptions options;
  options.compact_threshold = kInsertTriples * 2;
  for (auto _ : state) {
    state.PauseTiming();
    auto store = std::make_unique<DeltaHexastore>(options);
    state.ResumeTiming();
    for (const auto& t : data) {
      store->Insert(t);
    }
    benchmark::DoNotOptimize(store->size());
    state.PauseTiming();
    store.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kInsertTriples));
}

void BM_InsertMetricsOn(benchmark::State& state) {
  InsertBody(state, true);
}
void BM_InsertMetricsOff(benchmark::State& state) {
  InsertBody(state, false);
}
BENCHMARK(BM_InsertMetricsOn)
    ->Name("abl_obs_overhead/insert/metrics:on")
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_InsertMetricsOff)
    ->Name("abl_obs_overhead/insert/metrics:off")
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);

// Profiled vs unprofiled BGP evaluation. The zero-cost-when-off
// contract (query/bgp.h): passing profile == nullptr must leave the
// evaluator on its original code path, so profile:off tracks the
// pre-profiling baseline within noise; profile:on pays per-probe clock
// reads and per-pattern tallies on the profiled evaluator.
constexpr std::size_t kBgpTriples = 20000;

void BgpEvalBody(benchmark::State& state, bool profiled,
                 bool metrics_enabled) {
  MetricsToggle toggle(metrics_enabled);
  Dictionary dict;
  Hexastore store;
  for (const auto& t : data::LubmGenerator().Generate(kBgpTriples)) {
    store.Insert(dict.Encode(t));
  }
  const std::string ns = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";
  const std::vector<TriplePattern> patterns = {
      {PatternTerm::Variable("s"),
       PatternTerm::Bound(Term::Iri(ns + "advisor")),
       PatternTerm::Variable("prof")},
      {PatternTerm::Variable("prof"),
       PatternTerm::Bound(Term::Iri(ns + "worksFor")),
       PatternTerm::Variable("dept")}};
  std::size_t rows = 0;
  std::uint64_t scanned = 0;
  for (auto _ : state) {
    QueryProfile profile;
    const ResultSet result = EvalBgp(
        store, dict, patterns, profiled ? &profile : nullptr);
    rows = result.rows.size();
    scanned += profile.TotalRowsScanned();
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["scanned_per_iter"] =
      static_cast<double>(scanned) /
      static_cast<double>(std::max<std::size_t>(state.iterations(), 1));
}

void BM_BgpEvalProfileOff(benchmark::State& state) {
  BgpEvalBody(state, false, true);
}
void BM_BgpEvalProfileOn(benchmark::State& state) {
  BgpEvalBody(state, true, true);
}
void BM_BgpEvalProfileOnMetricsOff(benchmark::State& state) {
  BgpEvalBody(state, true, false);
}
BENCHMARK(BM_BgpEvalProfileOff)
    ->Name("abl_obs_overhead/bgp_eval/profile:off/metrics:on")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BgpEvalProfileOn)
    ->Name("abl_obs_overhead/bgp_eval/profile:on/metrics:on")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BgpEvalProfileOnMetricsOff)
    ->Name("abl_obs_overhead/bgp_eval/profile:on/metrics:off")
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace hexastore::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

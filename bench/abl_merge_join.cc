// Ablation for the paper's §4.2 claim "all first-step pairwise joins are
// fast merge-joins": joins two sorted pos subject lists (the Hexastore
// path) against the equivalent hash-based join over unsorted inputs (what
// a store without sorted vectors must do), across list sizes and overlap
// factors.
#include <unordered_set>

#include "bench_common.h"
#include "util/rng.h"

namespace hexastore::bench {
namespace {

struct JoinInput {
  IdVec sorted_a;
  IdVec sorted_b;
  std::vector<Id> unsorted_a;
  std::vector<Id> unsorted_b;
};

JoinInput MakeInput(std::size_t n, double overlap) {
  Rng rng(static_cast<std::uint64_t>(n * 1000 + overlap * 100));
  JoinInput in;
  for (std::size_t i = 0; i < n; ++i) {
    Id a = 1 + rng.Uniform(3 * n);
    in.unsorted_a.push_back(a);
    // With probability `overlap`, reuse the same key in b.
    Id b = rng.Bernoulli(overlap) ? a : 1 + rng.Uniform(3 * n);
    in.unsorted_b.push_back(b);
  }
  in.sorted_a = in.unsorted_a;
  in.sorted_b = in.unsorted_b;
  SortUnique(&in.sorted_a);
  SortUnique(&in.sorted_b);
  return in;
}

int Main(int argc, char** argv) {
  for (std::size_t n : {std::size_t{1000}, std::size_t{10000},
                        std::size_t{100000}}) {
    for (double overlap : {0.1, 0.5}) {
      std::string suffix = "/n:" + std::to_string(n) + "/overlap:" +
                           std::to_string(static_cast<int>(overlap * 100));
      benchmark::RegisterBenchmark(
          ("abl_merge_join/sorted_merge" + suffix).c_str(),
          [n, overlap](benchmark::State& state) {
            JoinInput in = MakeInput(n, overlap);
            for (auto _ : state) {
              benchmark::DoNotOptimize(
                  Intersect(in.sorted_a, in.sorted_b));
            }
          })
          ->Unit(benchmark::kMicrosecond);

      benchmark::RegisterBenchmark(
          ("abl_merge_join/hash_join" + suffix).c_str(),
          [n, overlap](benchmark::State& state) {
            JoinInput in = MakeInput(n, overlap);
            for (auto _ : state) {
              std::unordered_set<Id> build(in.unsorted_a.begin(),
                                           in.unsorted_a.end());
              IdVec out;
              for (Id id : in.unsorted_b) {
                if (build.count(id) > 0) {
                  out.push_back(id);
                }
              }
              SortUnique(&out);
              benchmark::DoNotOptimize(out);
            }
          })
          ->Unit(benchmark::kMicrosecond);

      benchmark::RegisterBenchmark(
          ("abl_merge_join/sort_then_merge" + suffix).c_str(),
          [n, overlap](benchmark::State& state) {
            // The sort-merge fallback the paper ascribes to later joins
            // in a path: one side must be sorted first.
            JoinInput in = MakeInput(n, overlap);
            for (auto _ : state) {
              IdVec tmp = in.unsorted_b;
              SortUnique(&tmp);
              benchmark::DoNotOptimize(Intersect(in.sorted_a, tmp));
            }
          })
          ->Unit(benchmark::kMicrosecond);
    }
  }
  return BenchMain(argc, argv);
}

}  // namespace
}  // namespace hexastore::bench

int main(int argc, char** argv) {
  return hexastore::bench::Main(argc, argv);
}

// Figure 3 reproduction: Barton Query 1 (counts of each Type object)
// over growing triple-count prefixes, for Hexastore / COVP1 / COVP2.
//
// Expected shape (paper §5.3.1): Hexastore ~= COVP2 (both use the pos
// index of Type and stay ~flat in store size); COVP1 must self-join over
// its pso index and grows with the number of triples.
#include "bench_common.h"

namespace hexastore::bench {
namespace {

int Main(int argc, char** argv) {
  RegisterFigure(
      "fig03_barton_q1", Dataset::kBarton,
      {
          {"Hexastore",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 workload::BartonQ1Hexa(s.hexa, s.barton_ids));
           }},
          {"COVP1",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 workload::BartonQ1Covp(s.covp1, s.barton_ids));
           }},
          {"COVP2",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 workload::BartonQ1Covp(s.covp2, s.barton_ids));
           }},
      });
  return BenchMain(argc, argv);
}

}  // namespace
}  // namespace hexastore::bench

int main(int argc, char** argv) {
  return hexastore::bench::Main(argc, argv);
}

// Figure 13 reproduction: LUBM Query 4 (people related to the courses
// AssociateProfessor10 teaches, grouped by course).
//
// Expected shape: the paper's biggest gap — four to five orders of
// magnitude between Hexastore (osp lookups per course) and COVP1
// (complex joins across all property tables).
#include "bench_common.h"

namespace hexastore::bench {
namespace {

int Main(int argc, char** argv) {
  RegisterFigure(
      "fig13_lubm_q4", Dataset::kLubm,
      {
          {"Hexastore",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 workload::LubmQ4Hexa(s.hexa, s.lubm_ids));
           }},
          {"COVP1",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 workload::LubmQ4Covp(s.covp1, s.lubm_ids));
           }},
          {"COVP2",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 workload::LubmQ4Covp(s.covp2, s.lubm_ids));
           }},
      });
  return BenchMain(argc, argv);
}

}  // namespace
}  // namespace hexastore::bench

int main(int argc, char** argv) {
  return hexastore::bench::Main(argc, argv);
}

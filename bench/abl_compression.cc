// Ablation: delta/varint compression of the Hexastore's sorted id
// sequences (the column-compression direction of the vertical-
// partitioning line of work the paper builds on).
//
// Reports, for a loaded LUBM/Barton store, the raw vs compressed size of
// all shared terminal lists (counters `raw_mb`, `compressed_mb`,
// `compression_ratio`) and times the decode and membership operations of
// the compressed representation.
#include "bench_common.h"
#include "index/compressed_vec.h"

namespace hexastore::bench {
namespace {

int Main(int argc, char** argv) {
  for (auto [label, dataset] : {std::pair{"barton", Dataset::kBarton},
                                std::pair{"lubm", Dataset::kLubm}}) {
    for (std::size_t n : SweepSizes()) {
      benchmark::RegisterBenchmark(
          (std::string("abl_compression/terminal_lists/") + label +
           "/triples:" + std::to_string(n))
              .c_str(),
          [n, dataset](benchmark::State& state) {
            const LoadedStores& stores = GetStores(dataset, n);
            std::size_t raw = 0;
            std::size_t compressed = 0;
            for (auto _ : state) {
              raw = 0;
              compressed = 0;
              // Compress the subject vectors of every predicate (the
              // hottest pso structures) plus their object lists. Short
              // lists stay raw — a realistic hybrid layout — because a
              // skip table plus varint stream has a fixed overhead that
              // only pays off past a few entries.
              constexpr std::size_t kMinCompressedLen = 16;
              auto account = [&](const IdVec& vec) {
                raw += vec.size() * sizeof(Id);
                if (vec.size() < kMinCompressedLen) {
                  compressed += vec.size() * sizeof(Id);
                  return;
                }
                CompressedIdVec c(vec);
                compressed += c.PayloadBytes() +
                              (vec.size() / 32 + 1) * 12;  // skip entries
              };
              const Hexastore& h = stores.hexa;
              h.index(Permutation::kPso)
                  .ForEachHeader([&](Id p, const IdVec& subjects) {
                    account(subjects);
                    for (Id s : subjects) {
                      account(*h.objects(s, p));
                    }
                  });
              benchmark::DoNotOptimize(compressed);
            }
            state.counters["raw_mb"] =
                static_cast<double>(raw) / (1024.0 * 1024.0);
            state.counters["compressed_mb"] =
                static_cast<double>(compressed) / (1024.0 * 1024.0);
            state.counters["compression_ratio"] =
                compressed == 0 ? 0.0
                                : static_cast<double>(raw) /
                                      static_cast<double>(compressed);
            state.counters["triples"] = static_cast<double>(n);
          })
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.02);
    }
  }

  // Decode / membership micro-costs on a dense list.
  for (std::size_t len : {std::size_t{1000}, std::size_t{100000}}) {
    benchmark::RegisterBenchmark(
        ("abl_compression/decode/len:" + std::to_string(len)).c_str(),
        [len](benchmark::State& state) {
          IdVec v;
          for (Id i = 0; i < len; ++i) {
            v.push_back(1000 + i * 3);
          }
          CompressedIdVec c(v);
          for (auto _ : state) {
            benchmark::DoNotOptimize(c.Decode());
          }
          state.SetItemsProcessed(
              static_cast<std::int64_t>(state.iterations() * len));
        })
        ->Unit(benchmark::kMicrosecond);

    benchmark::RegisterBenchmark(
        ("abl_compression/contains/len:" + std::to_string(len)).c_str(),
        [len](benchmark::State& state) {
          IdVec v;
          for (Id i = 0; i < len; ++i) {
            v.push_back(1000 + i * 3);
          }
          CompressedIdVec c(v);
          Id probe = 1000;
          for (auto _ : state) {
            benchmark::DoNotOptimize(c.Contains(probe));
            probe += 3;
            if (probe >= 1000 + len * 3) {
              probe = 1000;
            }
          }
        })
        ->Unit(benchmark::kMicrosecond);
  }
  return BenchMain(argc, argv);
}

}  // namespace
}  // namespace hexastore::bench

int main(int argc, char** argv) {
  return hexastore::bench::Main(argc, argv);
}

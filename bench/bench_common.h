// Shared infrastructure for the figure-reproduction benchmarks.
//
// Every fig* binary sweeps progressively larger prefixes of one data set
// (the paper's x axis) and times one query per store (the paper's
// series: Hexastore, COVP1, COVP2, and the `_28` variants where
// applicable). Stores are built once per (dataset, size) and cached for
// the lifetime of the process.
//
// Environment knobs:
//   HEXA_BENCH_SIZES   comma-separated triple counts
//                      (default "20000,50000,100000,200000,400000")
#ifndef HEXASTORE_BENCH_BENCH_COMMON_H_
#define HEXASTORE_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "baseline/triple_table.h"
#include "baseline/vertical_store.h"
#include "core/hexastore.h"
#include "dict/dictionary.h"
#include "workload/barton_queries.h"
#include "workload/lubm_queries.h"

namespace hexastore::bench {

/// Which synthetic data set a benchmark runs on.
enum class Dataset {
  kBarton,
  kLubm,
};

/// One fully loaded benchmark fixture: all three stores over a shared
/// dictionary, plus the resolved query vocabularies.
struct LoadedStores {
  Dictionary dict;
  Hexastore hexa;
  VerticalStore covp1{false};
  VerticalStore covp2{true};
  workload::BartonIds barton_ids;
  workload::LubmIds lubm_ids;
  std::size_t num_triples = 0;
};

/// The sweep of triple counts (x axis of every figure).
std::vector<std::size_t> SweepSizes();

/// Cached accessor: builds the stores for (dataset, size) on first use.
const LoadedStores& GetStores(Dataset dataset, std::size_t num_triples);

/// One timed series in a figure: a store label plus the query runner.
struct Series {
  std::string label;
  std::function<void(const LoadedStores&)> run;
};

/// Registers `figure/label/triples:N` benchmarks for every series over
/// the full size sweep.
void RegisterFigure(const std::string& figure, Dataset dataset,
                    const std::vector<Series>& series);

/// Standard main body: register + run.
int BenchMain(int argc, char** argv);

}  // namespace hexastore::bench

#endif  // HEXASTORE_BENCH_BENCH_COMMON_H_

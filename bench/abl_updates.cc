// Ablation for paper §4.2: "A particular deficiency of the Hexastore
// appears when it comes to handling updates and insertions; such
// operations affect all six indices, hence can be slow."
//
// Measures per-triple incremental Insert and Erase cost on Hexastore vs
// COVP1 / COVP2 / TripleTable, and the BulkLoad alternative, over a
// LUBM-like prefix. Expected shape: Hexastore inserts cost the most (six
// views touched), TripleTable the least; BulkLoad amortizes far below
// incremental insertion.
#include "bench_common.h"

#include <memory>

#include "data/lubm_generator.h"

namespace hexastore::bench {
namespace {

IdTripleVec EncodedPrefix(std::size_t n) {
  static Dictionary dict;
  static IdTripleVec cache;
  if (cache.size() < n) {
    auto triples = data::LubmGenerator().Generate(n);
    cache.clear();
    cache.reserve(n);
    for (const auto& t : triples) {
      cache.push_back(dict.Encode(t));
    }
  }
  return IdTripleVec(cache.begin(),
                     cache.begin() + static_cast<std::ptrdiff_t>(n));
}

template <typename StoreT, typename... Args>
void RegisterInsertErase(const std::string& label, std::size_t n,
                         Args... args) {
  benchmark::RegisterBenchmark(
      ("abl_updates/insert/" + label + "/triples:" + std::to_string(n))
          .c_str(),
      [n, args...](benchmark::State& state) {
        IdTripleVec data = EncodedPrefix(n);
        for (auto _ : state) {
          StoreT store(args...);
          for (const auto& t : data) {
            store.Insert(t);
          }
          benchmark::DoNotOptimize(store.size());
        }
        state.SetItemsProcessed(
            static_cast<std::int64_t>(state.iterations() * n));
      })
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.02);

  benchmark::RegisterBenchmark(
      ("abl_updates/erase/" + label + "/triples:" + std::to_string(n))
          .c_str(),
      [n, args...](benchmark::State& state) {
        IdTripleVec data = EncodedPrefix(n);
        for (auto _ : state) {
          state.PauseTiming();
          StoreT store(args...);
          store.BulkLoad(data);
          state.ResumeTiming();
          for (const auto& t : data) {
            store.Erase(t);
          }
          benchmark::DoNotOptimize(store.size());
        }
        state.SetItemsProcessed(
            static_cast<std::int64_t>(state.iterations() * n));
      })
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.02);

  benchmark::RegisterBenchmark(
      ("abl_updates/bulkload/" + label + "/triples:" + std::to_string(n))
          .c_str(),
      [n, args...](benchmark::State& state) {
        IdTripleVec data = EncodedPrefix(n);
        for (auto _ : state) {
          StoreT store(args...);
          store.BulkLoad(data);
          benchmark::DoNotOptimize(store.size());
        }
        state.SetItemsProcessed(
            static_cast<std::int64_t>(state.iterations() * n));
      })
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.02);
}

int Main(int argc, char** argv) {
  for (std::size_t n : {std::size_t{10000}, std::size_t{50000}}) {
    RegisterInsertErase<Hexastore>("Hexastore", n);
    RegisterInsertErase<VerticalStore>("COVP1", n, false);
    RegisterInsertErase<VerticalStore>("COVP2", n, true);
    RegisterInsertErase<TripleTableStore>("TripleTable", n);
  }
  return BenchMain(argc, argv);
}

}  // namespace
}  // namespace hexastore::bench

int main(int argc, char** argv) {
  return hexastore::bench::Main(argc, argv);
}

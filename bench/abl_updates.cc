// Ablation for paper §4.2: "A particular deficiency of the Hexastore
// appears when it comes to handling updates and insertions; such
// operations affect all six indices, hence can be slow."
//
// Measures per-triple incremental Insert and Erase cost on Hexastore vs
// COVP1 / COVP2 / TripleTable, and the BulkLoad alternative, over a
// LUBM-like prefix. Expected shape: Hexastore inserts cost the most (six
// views touched), TripleTable the least; BulkLoad amortizes far below
// incremental insertion.
//
// The DeltaHexastore series measure the LSM-style fix: single-triple
// writes staged in the delta buffer (including periodic compaction
// drains) at several compaction thresholds, plus merged-read latency
// with a half-full delta — the write/read trade-off the threshold knob
// controls.
//
// The DurableDeltaHexastore series put the WAL's durability tax on the
// same axis: the identical insert/erase loops through the logged store
// at the three durability modes (none / batched / per-commit fsync).
// WAL directories live under $HEXA_WAL_DIR (or the system temp dir) and
// are removed when the benchmark finishes.
//
// The drain_latency series are the background-compaction headline: they
// time every single Insert across several delta drains and report the
// p50/p99/p99.9/max latency. In sync mode the drain runs on the writer
// thread, so max_ns towers over p50_ns (the §4.2 stall, moved to the
// threshold boundary); in bg mode the buffer is sealed with two pointer
// swaps and merged off-thread, so the worst op stays within a small
// factor of the median — flat write latency through a drain.
//
// The level:{2,4,8} variants run the same loop with leveled deltas
// (DeltaOptions::l0_run_limit): seals become L0 runs, runs fold into L1,
// and only L1→base merges rebuild the base — bounding the worst sync
// drain to the fold cost and keeping bg seals O(1) even when the
// compactor is behind (the overflow is absorbed as extra runs).
#include "bench_common.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "data/lubm_generator.h"
#include "delta/delta_hexastore.h"
#include "obs/histogram.h"
#include "shard/sharded_hexastore.h"
#include "wal/durable_store.h"

namespace hexastore::bench {
namespace {

// Compaction thresholds swept by the DeltaHexastore series.
constexpr std::size_t kDeltaThresholds[] = {16 * 1024, 64 * 1024,
                                            256 * 1024};

std::string DeltaLabel(std::size_t threshold) {
  return "DeltaHexastore/thr:" + std::to_string(threshold / 1024) + "k";
}

std::string BgDeltaLabel(std::size_t threshold) {
  return DeltaLabel(threshold) + "/bg";
}

IdTripleVec EncodedPrefix(std::size_t n) {
  static Dictionary dict;
  static IdTripleVec cache;
  if (cache.size() < n) {
    auto triples = data::LubmGenerator().Generate(n);
    cache.clear();
    cache.reserve(n);
    for (const auto& t : triples) {
      cache.push_back(dict.Encode(t));
    }
  }
  return IdTripleVec(cache.begin(),
                     cache.begin() + static_cast<std::ptrdiff_t>(n));
}

template <typename StoreT, typename... Args>
void RegisterInsertErase(const std::string& label, std::size_t n,
                         Args... args) {
  benchmark::RegisterBenchmark(
      ("abl_updates/insert/" + label + "/triples:" + std::to_string(n))
          .c_str(),
      [n, args...](benchmark::State& state) {
        IdTripleVec data = EncodedPrefix(n);
        for (auto _ : state) {
          StoreT store(args...);
          for (const auto& t : data) {
            store.Insert(t);
          }
          benchmark::DoNotOptimize(store.size());
        }
        state.SetItemsProcessed(
            static_cast<std::int64_t>(state.iterations() * n));
      })
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.02);

  benchmark::RegisterBenchmark(
      ("abl_updates/erase/" + label + "/triples:" + std::to_string(n))
          .c_str(),
      [n, args...](benchmark::State& state) {
        IdTripleVec data = EncodedPrefix(n);
        for (auto _ : state) {
          state.PauseTiming();
          StoreT store(args...);
          store.BulkLoad(data);
          state.ResumeTiming();
          for (const auto& t : data) {
            store.Erase(t);
          }
          benchmark::DoNotOptimize(store.size());
        }
        state.SetItemsProcessed(
            static_cast<std::int64_t>(state.iterations() * n));
      })
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.02);

  benchmark::RegisterBenchmark(
      ("abl_updates/bulkload/" + label + "/triples:" + std::to_string(n))
          .c_str(),
      [n, args...](benchmark::State& state) {
        IdTripleVec data = EncodedPrefix(n);
        for (auto _ : state) {
          StoreT store(args...);
          store.BulkLoad(data);
          benchmark::DoNotOptimize(store.size());
        }
        state.SetItemsProcessed(
            static_cast<std::int64_t>(state.iterations() * n));
      })
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.02);
}

// Per-op Insert latency percentiles across several delta drains: the
// store's threshold is n/4, so the series crosses ~4 drains. One timed
// pass per iteration; the counters report the last pass's distribution.
template <typename... Args>
void RegisterDrainLatency(const std::string& label, std::size_t n,
                          Args... args) {
  benchmark::RegisterBenchmark(
      ("abl_updates/drain_latency/" + label + "/triples:" +
       std::to_string(n))
          .c_str(),
      [n, args...](benchmark::State& state) {
        IdTripleVec data = EncodedPrefix(n);
        // Unsampled obs histogram: the reported percentiles are the
        // store's own export pipeline (log2 buckets + interpolation),
        // not a private sorted-vector path — what a scrape of
        // hexa_insert_latency_ns would show at full sampling.
        obs::LatencyHistogram hist;
        obs::HistogramSnapshot snap;
        for (auto _ : state) {
          state.PauseTiming();
          auto store = std::make_unique<DeltaHexastore>(args...);
          hist.Reset();
          state.ResumeTiming();
          for (const auto& t : data) {
            const auto begin = std::chrono::steady_clock::now();
            store->Insert(t);
            const auto end = std::chrono::steady_clock::now();
            hist.Record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                                     begin)
                    .count()));
          }
          benchmark::DoNotOptimize(store->size());
          // Settle any in-flight merge and tear the store down (joining
          // the compactor) outside the timed region so the wall-clock
          // numbers compare the write loops alone.
          state.PauseTiming();
          snap = hist.Snapshot();
          store->Compact();
          store.reset();
          state.ResumeTiming();
        }
        if (snap.count > 0) {
          state.counters["p50_ns"] = snap.P50();
          state.counters["p99_ns"] = snap.P99();
          state.counters["p999_ns"] = snap.P999();
          state.counters["max_ns"] = static_cast<double>(snap.max);
          // The flat-latency verdict in one number: how far the worst
          // op (the drain) sits above the median op.
          state.counters["max_over_p50"] =
              static_cast<double>(snap.max) / std::max(1.0, snap.P50());
        }
        state.SetItemsProcessed(
            static_cast<std::int64_t>(state.iterations() * n));
      })
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.02);
}

// Root directory for per-benchmark WAL dirs: $HEXA_WAL_DIR if set
// (scripts/run_benchmarks.sh points it somewhere it cleans up), else the
// system temp dir, namespaced by pid so concurrent runs cannot collide.
std::filesystem::path WalBenchRoot() {
  const char* env = std::getenv("HEXA_WAL_DIR");
  std::filesystem::path root = (env != nullptr && *env != '\0')
                                   ? std::filesystem::path(env)
                                   : std::filesystem::temp_directory_path();
  return root / ("hexa-bench-" + std::to_string(::getpid()));
}

std::string DurableLabel(DurabilityMode mode) {
  return std::string("DurableDeltaHexastore/mode:") +
         DurabilityModeName(mode);
}

// Opens a fresh durable store in a scratch dir, or null on failure.
std::unique_ptr<DurableDeltaHexastore> OpenDurable(
    const std::filesystem::path& dir, DurabilityMode mode,
    benchmark::State& state) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  DurabilityOptions options;
  options.dir = dir.string();
  options.mode = mode;
  auto store = DurableDeltaHexastore::Open(options);
  if (!store.ok()) {
    state.SkipWithError(store.status().ToString().c_str());
    return nullptr;
  }
  return std::move(store).value();
}

void RegisterDurableInsertErase(DurabilityMode mode, std::size_t n) {
  const std::string label = DurableLabel(mode);
  benchmark::RegisterBenchmark(
      ("abl_updates/insert/" + label + "/triples:" + std::to_string(n))
          .c_str(),
      [mode, n](benchmark::State& state) {
        IdTripleVec data = EncodedPrefix(n);
        const std::filesystem::path dir =
            WalBenchRoot() /
            ("insert-" + std::string(DurabilityModeName(mode)));
        for (auto _ : state) {
          state.PauseTiming();
          auto store = OpenDurable(dir, mode, state);
          if (store == nullptr) {
            break;
          }
          state.ResumeTiming();
          for (const auto& t : data) {
            store->Insert(t);
          }
          store->Flush();  // the tail of the durability tax
          benchmark::DoNotOptimize(store->size());
          state.PauseTiming();
          store.reset();
          state.ResumeTiming();
        }
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
        state.SetItemsProcessed(
            static_cast<std::int64_t>(state.iterations() * n));
      })
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.02);

  benchmark::RegisterBenchmark(
      ("abl_updates/erase/" + label + "/triples:" + std::to_string(n))
          .c_str(),
      [mode, n](benchmark::State& state) {
        IdTripleVec data = EncodedPrefix(n);
        const std::filesystem::path dir =
            WalBenchRoot() /
            ("erase-" + std::string(DurabilityModeName(mode)));
        for (auto _ : state) {
          state.PauseTiming();
          auto store = OpenDurable(dir, mode, state);
          if (store == nullptr) {
            break;
          }
          store->BulkLoad(data);  // checkpointed, not in the timed region
          state.ResumeTiming();
          for (const auto& t : data) {
            store->Erase(t);
          }
          store->Flush();
          benchmark::DoNotOptimize(store->size());
          state.PauseTiming();
          store.reset();
          state.ResumeTiming();
        }
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
        state.SetItemsProcessed(
            static_cast<std::int64_t>(state.iterations() * n));
      })
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.02);
}

// Merged-read latency with a half-full staging buffer: the store holds
// `n` compacted triples plus staged_ops staged inserts (pass half the
// store's compaction threshold so the buffer is half full and no
// compaction fires), then serves point Contains probes and one-bound
// (s, ?, ?) Match scans — the merged paths a query pays for before the
// next compaction.
template <typename StoreT, typename... Args>
void RegisterRead(const std::string& label, std::size_t n,
                  std::size_t staged_ops, Args... args) {
  benchmark::RegisterBenchmark(
      ("abl_updates/read/" + label + "/triples:" + std::to_string(n))
          .c_str(),
      [n, staged_ops, args...](benchmark::State& state) {
        IdTripleVec data = EncodedPrefix(n);
        StoreT store(args...);
        store.BulkLoad(data);
        // Stage extra (distinct) writes so DeltaHexastore reads pay the
        // merged path; plain stores just absorb the inserts.
        IdTripleVec staged;
        for (std::size_t i = 0; i < staged_ops; ++i) {
          const IdTriple& t = data[i % data.size()];
          staged.push_back(IdTriple{t.s, t.p, t.o + 1000000 + i});
        }
        for (const auto& t : staged) {
          store.Insert(t);
        }
        // Prime the delta's lazy read caches (sorted runs) so the loop
        // measures steady-state merged reads, not the one-off rebuild
        // the first read after a burst of writes pays.
        benchmark::DoNotOptimize(
            store.CountMatches(IdPattern{data[0].s, 0, 0}));
        std::size_t i = 0;
        for (auto _ : state) {
          const IdTriple& probe = data[(i * 7919) % data.size()];
          benchmark::DoNotOptimize(store.Contains(probe));
          benchmark::DoNotOptimize(
              store.CountMatches(IdPattern{probe.s, 0, 0}));
          ++i;
        }
        state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
      })
      ->Unit(benchmark::kMicrosecond)
      ->MinTime(0.02);
}

// Filtered leveled point reads: absent-key Contains probes against a
// store holding several sealed L0 runs, with the runs' prefix filters
// armed (filter:on) or disabled (filter:off). Every probe consults each
// run top-down; with filters on, the run's Bloom filter answers "cannot
// contain" and the table probe is skipped. The counters report the
// verdict-chain work from DeltaStats: skip_rate is the fraction of
// per-run probes the filters short-circuited.
void RegisterFilteredRead(std::size_t n, std::size_t limit,
                          bool filters_on) {
  const std::string label = std::string("DeltaHexastore/filter:") +
                            (filters_on ? "on" : "off") +
                            "/level:" + std::to_string(limit);
  benchmark::RegisterBenchmark(
      ("abl_updates/filtered_read/" + label + "/triples:" +
       std::to_string(n))
          .c_str(),
      [n, limit, filters_on](benchmark::State& state) {
        IdTripleVec data = EncodedPrefix(n);
        DeltaOptions options;
        options.compact_threshold = 256;
        options.l0_run_limit = limit;
        options.l1_base_fraction = 100.0;  // keep the runs resident
        options.filter_bits_per_key = filters_on ? 10 : 0;
        DeltaHexastore store(options);
        store.BulkLoad(data);
        // Seal limit-1 runs of distinct staged inserts so point reads
        // walk a populated L0 chain.
        const std::size_t staged = options.compact_threshold * (limit - 1);
        for (std::size_t i = 0; i < staged; ++i) {
          const IdTriple& t = data[i % data.size()];
          store.Insert(IdTriple{t.s, t.p, t.o + 1000000 + i});
        }
        // Prime the runs' lazy caches and filters.
        benchmark::DoNotOptimize(store.Contains(data[0]));
        std::size_t i = 0;
        for (auto _ : state) {
          const IdTriple& k = data[(i * 7919) % data.size()];
          // Non-matching everywhere: present in no run and not in base.
          benchmark::DoNotOptimize(store.Contains(
              IdTriple{k.s + 5000000, k.p + 5000000, k.o + 5000000}));
          ++i;
        }
        const DeltaStats stats = store.Stats();
        state.counters["l0_runs"] =
            static_cast<double>(stats.l0_runs);
        state.counters["filter_probes"] =
            static_cast<double>(stats.filter_probes);
        state.counters["filter_skips"] =
            static_cast<double>(stats.filter_skips);
        state.counters["skip_rate"] =
            stats.filter_probes == 0
                ? 0.0
                : static_cast<double>(stats.filter_skips) /
                      static_cast<double>(stats.filter_probes);
        state.SetItemsProcessed(
            static_cast<std::int64_t>(state.iterations()));
      })
      ->Unit(benchmark::kMicrosecond)
      ->MinTime(0.02);
}

// Insert loop under a hard memory budget: the tracked delta footprint
// crosses memory_budget_bytes long before l0_run_limit fills, so the
// budget — not the run limit — drives folds and base merges. The
// counters prove the budget machinery fired.
void RegisterBudgetWrite(std::size_t n, std::size_t budget_bytes) {
  const std::string label =
      "DeltaHexastore/budget:" + std::to_string(budget_bytes >> 10) +
      "k/level:4";
  benchmark::RegisterBenchmark(
      ("abl_updates/insert/" + label + "/triples:" + std::to_string(n))
          .c_str(),
      [n, budget_bytes](benchmark::State& state) {
        IdTripleVec data = EncodedPrefix(n);
        DeltaOptions options;
        options.compact_threshold = 4096;
        options.l0_run_limit = 4;
        options.filter_bits_per_key = 10;
        options.memory_budget_bytes = budget_bytes;
        DeltaStats stats;
        for (auto _ : state) {
          DeltaHexastore store(options);
          for (const auto& t : data) {
            store.Insert(t);
          }
          benchmark::DoNotOptimize(store.size());
          stats = store.Stats();
        }
        state.counters["budget_seals"] =
            static_cast<double>(stats.budget_seals);
        state.counters["budget_folds"] =
            static_cast<double>(stats.budget_folds);
        state.counters["budget_base_merges"] =
            static_cast<double>(stats.budget_base_merges);
        state.counters["resident_bytes"] =
            static_cast<double>(stats.resident_bytes);
        state.SetItemsProcessed(
            static_cast<std::int64_t>(state.iterations() * n));
      })
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.02);
}

// Multi-writer insert scaling through the sharded facade: W writer
// threads split the prefix round-robin and hammer one ShardedHexastore.
// At shards:1 every writer serializes on the single shard's mutex; at
// shards:{4,8} subject-hash routing spreads the writers across
// independent shards and throughput should scale with the writer count
// (the headline: writers:4/shards:4 well above 2x writers:4/shards:1).
void RegisterShardedMultiWriter(std::size_t n, int writers,
                                std::size_t shards) {
  const std::string label = "ShardedHexastore/writers:" +
                            std::to_string(writers) +
                            "/shards:" + std::to_string(shards);
  benchmark::RegisterBenchmark(
      ("abl_updates/multi_writer_insert/" + label + "/triples:" +
       std::to_string(n))
          .c_str(),
      [n, writers, shards](benchmark::State& state) {
        IdTripleVec data = EncodedPrefix(n);
        ShardedOptions options;
        options.shards = shards;
        options.delta.compact_threshold = 64 * 1024;
        for (auto _ : state) {
          ShardedHexastore store(options);
          std::vector<std::thread> threads;
          threads.reserve(static_cast<std::size_t>(writers));
          for (int w = 0; w < writers; ++w) {
            threads.emplace_back([&store, &data, writers, w] {
              for (std::size_t i = static_cast<std::size_t>(w);
                   i < data.size();
                   i += static_cast<std::size_t>(writers)) {
                store.Insert(data[i]);
              }
            });
          }
          for (auto& th : threads) {
            th.join();
          }
          benchmark::DoNotOptimize(store.size());
        }
        state.SetItemsProcessed(
            static_cast<std::int64_t>(state.iterations() * n));
      })
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime()
      ->MinTime(0.02);
}

int Main(int argc, char** argv) {
  for (std::size_t n : {std::size_t{10000}, std::size_t{50000}}) {
    RegisterInsertErase<Hexastore>("Hexastore", n);
    RegisterInsertErase<VerticalStore>("COVP1", n, false);
    RegisterInsertErase<VerticalStore>("COVP2", n, true);
    RegisterInsertErase<TripleTableStore>("TripleTable", n);
    for (std::size_t threshold : kDeltaThresholds) {
      RegisterInsertErase<DeltaHexastore>(DeltaLabel(threshold), n,
                                          threshold);
      // Background compaction: same write loop, drains on the
      // compactor thread.
      RegisterInsertErase<DeltaHexastore>(
          BgDeltaLabel(threshold), n,
          DeltaOptions{threshold, /*background_compaction=*/true});
    }
    RegisterRead<Hexastore>("Hexastore", n, kDeltaThresholds[0] / 2);
    RegisterRead<TripleTableStore>("TripleTable", n,
                                   kDeltaThresholds[0] / 2);
    for (std::size_t threshold : kDeltaThresholds) {
      RegisterRead<DeltaHexastore>(DeltaLabel(threshold), n, threshold / 2,
                                   threshold);
    }
    // Flat-p99 demonstration: per-op latency through ~4 drains, writer
    // thread (sync) vs compactor thread (bg).
    RegisterDrainLatency(DeltaLabel(n / 4) + "/sync", n, n / 4);
    RegisterDrainLatency(
        BgDeltaLabel(n / 4), n,
        DeltaOptions{n / 4, /*background_compaction=*/true});
    // Leveled series: the same per-op latency loop with sealed runs
    // absorbing the drains (L0 → L1 → base, docs/delta-levels.md), at
    // several L0 run limits. In sync mode the worst op pays an L0→L1
    // fold (O(staged), not O(base)); in bg mode sealing into a run is
    // two pointer swaps even while the compactor is busy, so the max
    // stays within a small factor of the median and seal_overflows no
    // longer tracks an unbounded buffer overshoot.
    for (std::size_t limit : {std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
      const std::string suffix = "/level:" + std::to_string(limit);
      RegisterDrainLatency(
          DeltaLabel(n / 4) + suffix + "/sync", n,
          DeltaOptions{n / 4, /*background_compaction=*/false, limit});
      RegisterDrainLatency(
          BgDeltaLabel(n / 4) + suffix, n,
          DeltaOptions{n / 4, /*background_compaction=*/true, limit});
    }
  }
  // Prefix-filter ablation (filter:{on,off}) and the memory-budget
  // series: smaller size only — the interesting numbers are the
  // counters, not the throughput spread.
  for (std::size_t limit : {std::size_t{4}, std::size_t{8}}) {
    RegisterFilteredRead(10000, limit, /*filters_on=*/true);
    RegisterFilteredRead(10000, limit, /*filters_on=*/false);
  }
  RegisterBudgetWrite(10000, /*budget_bytes=*/64u << 10);
  // Multi-writer scaling: writers {1,2,4} x shards {1,4,8} over the
  // sharded facade (writers:1/shards:1 is the single-store baseline).
  for (int writers : {1, 2, 4}) {
    for (std::size_t shards :
         {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
      RegisterShardedMultiWriter(50000, writers, shards);
    }
  }
  // Durability tax: only the smaller size (per-commit mode pays one
  // fsync per op; keep wall-clock bounded).
  for (DurabilityMode mode :
       {DurabilityMode::kNone, DurabilityMode::kBatched,
        DurabilityMode::kPerCommit}) {
    RegisterDurableInsertErase(mode, 10000);
  }
  return BenchMain(argc, argv);
}

}  // namespace
}  // namespace hexastore::bench

int main(int argc, char** argv) {
  return hexastore::bench::Main(argc, argv);
}

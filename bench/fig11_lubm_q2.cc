// Figure 11 reproduction: LUBM Query 2 (everyone related to University0
// via any property).
//
// Expected shape: as Figure 10, with a visible growth trend for all
// stores — more triples reference the university as the data set grows.
#include "bench_common.h"

namespace hexastore::bench {
namespace {

int Main(int argc, char** argv) {
  RegisterFigure(
      "fig11_lubm_q2", Dataset::kLubm,
      {
          {"Hexastore",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(workload::LubmRelatedToHexa(
                 s.hexa, s.lubm_ids.university0));
           }},
          {"COVP1",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(workload::LubmRelatedToCovp(
                 s.covp1, s.lubm_ids.university0));
           }},
          {"COVP2",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(workload::LubmRelatedToCovp(
                 s.covp2, s.lubm_ids.university0));
           }},
      });
  return BenchMain(argc, argv);
}

}  // namespace
}  // namespace hexastore::bench

int main(int argc, char** argv) {
  return hexastore::bench::Main(argc, argv);
}

// Figure 8 reproduction: Barton Query 6 (BQ2-style aggregation over
// known-or-inferred Text resources, combining BQ2 and BQ5), unrestricted
// and `_28`.
//
// Expected shape: Hexastore keeps its advantages but they are partially
// obscured by the shared final aggregation step.
#include "bench_common.h"

namespace hexastore::bench {
namespace {

int Main(int argc, char** argv) {
  using workload::BartonQ6Covp;
  using workload::BartonQ6Hexa;
  RegisterFigure(
      "fig08_barton_q6", Dataset::kBarton,
      {
          {"Hexastore",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 BartonQ6Hexa(s.hexa, s.barton_ids, nullptr));
           }},
          {"COVP1",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 BartonQ6Covp(s.covp1, s.barton_ids, nullptr));
           }},
          {"COVP2",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(
                 BartonQ6Covp(s.covp2, s.barton_ids, nullptr));
           }},
          {"Hexastore_28",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(BartonQ6Hexa(
                 s.hexa, s.barton_ids, &s.barton_ids.preselected));
           }},
          {"COVP1_28",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(BartonQ6Covp(
                 s.covp1, s.barton_ids, &s.barton_ids.preselected));
           }},
          {"COVP2_28",
           [](const LoadedStores& s) {
             benchmark::DoNotOptimize(BartonQ6Covp(
                 s.covp2, s.barton_ids, &s.barton_ids.preselected));
           }},
      });
  return BenchMain(argc, argv);
}

}  // namespace
}  // namespace hexastore::bench

int main(int argc, char** argv) {
  return hexastore::bench::Main(argc, argv);
}

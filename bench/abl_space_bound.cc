// Ablation: the worst-case 5x key-entry bound of paper §4.1-§4.2.
//
// Loads (a) an adversarial data set in which every resource occurs
// exactly once (the paper's worst case — the ratio must be exactly 5.0)
// and (b) realistic data sets, reporting the key-entry ratio relative to
// a triples table (3 entries per triple) via the `entry_ratio` counter.
#include "bench_common.h"

namespace hexastore::bench {
namespace {

int Main(int argc, char** argv) {
  for (std::size_t n : SweepSizes()) {
    benchmark::RegisterBenchmark(
        ("abl_space_bound/adversarial_unique/triples:" +
         std::to_string(n))
            .c_str(),
        [n](benchmark::State& state) {
          Hexastore store;
          for (auto _ : state) {
            state.PauseTiming();
            store.Clear();
            state.ResumeTiming();
            Id next = 1;
            for (std::size_t i = 0; i < n; ++i) {
              store.Insert({next, next + 1, next + 2});
              next += 3;
            }
          }
          MemoryStats stats = store.Stats();
          state.counters["entry_ratio"] =
              static_cast<double>(stats.key_entries) /
              static_cast<double>(3 * store.size());
          state.counters["triples"] = static_cast<double>(n);
        })
        ->Unit(benchmark::kMillisecond);

    for (auto [label, dataset] :
         {std::pair{"barton", Dataset::kBarton},
          std::pair{"lubm", Dataset::kLubm}}) {
      benchmark::RegisterBenchmark(
          (std::string("abl_space_bound/") + label +
           "/triples:" + std::to_string(n))
              .c_str(),
          [n, dataset](benchmark::State& state) {
            const LoadedStores& stores = GetStores(dataset, n);
            for (auto _ : state) {
              benchmark::DoNotOptimize(stores.hexa.Stats());
            }
            MemoryStats stats = stores.hexa.Stats();
            state.counters["entry_ratio"] =
                static_cast<double>(stats.key_entries) /
                static_cast<double>(3 * stores.hexa.size());
            state.counters["triples"] = static_cast<double>(n);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
  return BenchMain(argc, argv);
}

}  // namespace
}  // namespace hexastore::bench

int main(int argc, char** argv) {
  return hexastore::bench::Main(argc, argv);
}

#!/usr/bin/env bash
# Fails when any Markdown file in the repo contains a relative link to a
# file that does not exist. External links (http/https/mailto) and pure
# in-page anchors are skipped; a #fragment on a relative link is
# stripped before the existence check. Run from anywhere inside the
# repo; CI runs it in the lint job.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

broken=0
files=0
links=0
checked_files=()

while IFS= read -r md; do
  files=$((files + 1))
  checked_files+=("$md")
  # Extract every inline link: [text](target). Image embeds
  # (![alt](img), e.g. figures inside the extracted paper dumps) are
  # not navigation and are skipped. Tolerates several links per line.
  while IFS= read -r match; do
    case "$match" in '!'*) continue ;; esac
    target="${match#*](}"
    target="${target%)}"
    [ -n "$target" ] || continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    links=$((links + 1))
    path="${target%%#*}"          # strip fragment
    [ -n "$path" ] || continue
    resolved="$(dirname "$md")/$path"
    if [ ! -e "$resolved" ]; then
      echo "BROKEN: $md -> $target" >&2
      broken=$((broken + 1))
    fi
  done < <(grep -oE '!?\[[^]]*\]\([^)]*\)' "$md" 2>/dev/null)
done < <(find . -name '*.md' \
           -not -path './build*' -not -path './.git/*' | sort)

echo "docs link check: $files markdown files, $links relative links, $broken broken"
echo "docs file list:"
printf '  %s\n' "${checked_files[@]}"

[ "$broken" -eq 0 ]

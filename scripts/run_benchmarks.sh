#!/usr/bin/env bash
# Runs every figure and ablation benchmark and writes one JSON result
# file per binary. The abl_updates drain-latency series carry
# p50_ns/p99_ns/p999_ns/max_ns counters from the obs latency histograms
# (docs/observability.md), and abl_obs_overhead pins the
# instrumentation cost itself.
#
# Usage: scripts/run_benchmarks.sh [build_dir] [out_dir]
#   HEXA_BENCH_SIZES=2000,100000 scripts/run_benchmarks.sh   # smaller sweep
#   HEXA_WAL_DIR=/fast/ssd scripts/run_benchmarks.sh         # WAL scratch dir
#   HEXA_BENCH_EXTRA_ARGS=--benchmark_min_time=0.01 ...      # smoke runs
set -euo pipefail

build_dir=${1:-build}
out_dir=${2:-results}

if ! ls "${build_dir}"/bench/fig* >/dev/null 2>&1; then
  echo "no bench binaries under ${build_dir}/bench;" \
       "configure with -DHEXA_BUILD_BENCH=ON" >&2
  exit 1
fi

# The durable-store series in abl_updates write WAL directories under
# HEXA_WAL_DIR. Default to a private temp dir we own outright; when the
# caller supplies one (e.g. pointing at a faster disk), remove only the
# hexa-bench-* subtrees the benchmarks create.
if [[ -z "${HEXA_WAL_DIR:-}" ]]; then
  HEXA_WAL_DIR=$(mktemp -d)
  wal_dir_is_ours=1
else
  mkdir -p "${HEXA_WAL_DIR}"
  wal_dir_is_ours=0
fi
export HEXA_WAL_DIR
cleanup_wal_dir() {
  if [[ "${wal_dir_is_ours}" == 1 ]]; then
    rm -rf "${HEXA_WAL_DIR}"
  else
    rm -rf "${HEXA_WAL_DIR}"/hexa-bench-*
  fi
}
trap cleanup_wal_dir EXIT

mkdir -p "${out_dir}"
# Extra google-benchmark flags (word-split on purpose), e.g. the CI
# bench-smoke job passes --benchmark_min_time=0.01.
read -r -a extra_args <<< "${HEXA_BENCH_EXTRA_ARGS:-}"
for bin in "${build_dir}"/bench/fig* "${build_dir}"/bench/abl_*; do
  [[ -x "${bin}" ]] || continue
  name=$(basename "${bin}")
  echo "== ${name}"
  "${bin}" --benchmark_format=json --benchmark_out="${out_dir}/${name}.json" \
    "${extra_args[@]}"
done
echo "results in ${out_dir}/"

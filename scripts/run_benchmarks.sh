#!/usr/bin/env bash
# Runs every figure benchmark and writes one JSON result file per binary.
#
# Usage: scripts/run_benchmarks.sh [build_dir] [out_dir]
#   HEXA_BENCH_SIZES=2000,100000 scripts/run_benchmarks.sh   # smaller sweep
set -euo pipefail

build_dir=${1:-build}
out_dir=${2:-results}

if ! ls "${build_dir}"/bench/fig* >/dev/null 2>&1; then
  echo "no bench binaries under ${build_dir}/bench;" \
       "configure with -DHEXA_BUILD_BENCH=ON" >&2
  exit 1
fi

mkdir -p "${out_dir}"
for bin in "${build_dir}"/bench/fig*; do
  name=$(basename "${bin}")
  echo "== ${name}"
  "${bin}" --benchmark_format=json --benchmark_out="${out_dir}/${name}.json"
done
echo "results in ${out_dir}/"

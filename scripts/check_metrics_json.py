#!/usr/bin/env python3
"""Validates a HEXA_METRICS_JSON dump against the version-2 schema.

Usage: check_metrics_json.py <dump.json> [--require-wal] [--require-queries]
                             [--require-server]

Checks (see docs/observability.md "Export formats"):
  * top-level shape: version 2, counters/gauges/histograms objects, a
    trace object (or null) and a slow_queries object (or null);
  * every histogram carries count/sum_ns/max_ns/sample_shift, ordered
    percentiles and well-formed buckets;
  * every slow-query entry carries the full phase/row/q-error breakdown,
    phases that sum to total_ns, and a q-error >= 1;
  * the dump is not hollow: the delta and epoch counter families have
    nonzero entries, the trace retained events — and with --require-wal
    (the CI metrics-smoke job, which churns a durable store) the WAL
    family too;
  * with --require-queries (the metrics-smoke query step, which runs a
    query under HEXA_SLOW_QUERY_US=0) a hexa_query_* class histogram
    recorded at least one query and the slow-query ring retained at
    least one entry;
  * with --require-server (the CI server-smoke job, whose dump comes
    from hexastore_server's /metrics.json after the abl_server driver
    ran mixed read/write traffic against it) the hexa_server_* family
    served requests without shedding everything, the request-latency
    histogram is live, and the plan cache both hit above 0.9 on the
    driver's repeated templates and invalidated at least once under
    the driver's write churn.

Exits 0 on a valid dump, 1 with one line per violation otherwise.
Stdlib only.
"""

import json
import sys


def fail(errors):
    for e in errors:
        print(f"check_metrics_json: {e}", file=sys.stderr)
    return 1


def main(argv):
    if len(argv) < 2 or argv[1].startswith("-"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = argv[1]
    require_wal = "--require-wal" in argv[2:]
    require_queries = "--require-queries" in argv[2:]
    require_server = "--require-server" in argv[2:]

    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            dump = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return fail([f"{path}: cannot parse: {exc}"])

    if dump.get("version") != 2:
        errors.append(f"version is {dump.get('version')!r}, expected 2")

    for section in ("counters", "gauges", "histograms"):
        if not isinstance(dump.get(section), dict):
            errors.append(f"missing or non-object section {section!r}")
            dump[section] = {}

    for name, value in dump["counters"].items():
        if not isinstance(value, int) or value < 0:
            errors.append(f"counter {name} is not a non-negative integer")
    for name, value in dump["gauges"].items():
        if not isinstance(value, int):
            errors.append(f"gauge {name} is not an integer")

    required_hist_keys = {
        "count", "sum_ns", "max_ns", "sample_shift",
        "p50_ns", "p90_ns", "p99_ns", "p999_ns", "buckets",
    }
    for name, hist in dump["histograms"].items():
        if not isinstance(hist, dict):
            errors.append(f"histogram {name} is not an object")
            continue
        missing = required_hist_keys - hist.keys()
        if missing:
            errors.append(f"histogram {name} missing keys {sorted(missing)}")
            continue
        p50, p90 = hist["p50_ns"], hist["p90_ns"]
        p99, p999 = hist["p99_ns"], hist["p999_ns"]
        if not p50 <= p90 <= p99 <= p999:
            errors.append(f"histogram {name} percentiles not ordered: "
                          f"{p50} {p90} {p99} {p999}")
        if p999 > hist["max_ns"]:
            errors.append(f"histogram {name} p999 {p999} exceeds max "
                          f"{hist['max_ns']}")
        bucket_total = 0
        for bucket in hist["buckets"]:
            if set(bucket.keys()) != {"le_ns", "count"}:
                errors.append(f"histogram {name} malformed bucket {bucket}")
                break
            bucket_total += bucket["count"]
        else:
            if bucket_total != hist["count"]:
                errors.append(f"histogram {name} bucket counts sum to "
                              f"{bucket_total}, count is {hist['count']}")

    trace = dump.get("trace")
    if trace is None:
        errors.append("trace is null — dump did not come from a delta store")
    elif not isinstance(trace, dict):
        errors.append("trace is not an object")
    else:
        for key in ("capacity", "recorded", "retained", "events"):
            if key not in trace:
                errors.append(f"trace missing key {key!r}")
        events = trace.get("events", [])
        if trace.get("recorded", 0) <= 0 or not events:
            errors.append("trace recorded no events")
        for event in events:
            missing = ({"ticket", "ts_ns", "event", "reason",
                        "duration_ns", "value"} - event.keys())
            if missing:
                errors.append(f"trace event missing keys {sorted(missing)}")
                break

    slow = dump.get("slow_queries")
    if slow is not None and not isinstance(slow, dict):
        errors.append("slow_queries is neither null nor an object")
        slow = None
    if isinstance(slow, dict):
        for key in ("capacity", "recorded", "retained", "entries"):
            if key not in slow:
                errors.append(f"slow_queries missing key {key!r}")
        for entry in slow.get("entries", []):
            missing = ({"ticket", "ts_ns", "kind", "total_ns", "parse_ns",
                        "plan_ns", "eval_ns", "pin_ns", "rows_out",
                        "rows_scanned", "estimate_probes", "patterns",
                        "max_q_error", "text"} - entry.keys())
            if missing:
                errors.append(
                    f"slow query entry missing keys {sorted(missing)}")
                break
            # Pinned queries nest plan/eval inside pin_ns (total is
            # parse + pin); unpinned ones have pin_ns == 0.
            if entry["pin_ns"] > 0:
                phases = entry["parse_ns"] + entry["pin_ns"]
            else:
                phases = (entry["parse_ns"] + entry["plan_ns"] +
                          entry["eval_ns"])
            if phases != entry["total_ns"]:
                errors.append(f"slow query entry phases sum to {phases}, "
                              f"total_ns is {entry['total_ns']}")
            if entry["max_q_error"] < 1.0:
                errors.append(f"slow query entry max_q_error "
                              f"{entry['max_q_error']} below 1")

    if require_queries:
        live_query_hists = [
            n for n, h in dump["histograms"].items()
            if n.startswith("hexa_query_") and isinstance(h, dict)
            and h.get("count", 0) > 0]
        if not live_query_hists:
            errors.append("no hexa_query_* histogram recorded a query")
        if not isinstance(slow, dict) or not slow.get("entries"):
            errors.append("slow_queries retained no entries "
                          "(run under HEXA_SLOW_QUERY_US=0)")

    if require_server:
        counters = dump["counters"]
        served = counters.get("hexa_server_requests", 0)
        if served <= 0:
            errors.append("hexa_server_requests is zero — the server "
                          "answered no queries")
        latency = dump["histograms"].get("hexa_server_request_latency_ns")
        if not isinstance(latency, dict) or latency.get("count", 0) <= 0:
            errors.append("hexa_server_request_latency_ns recorded "
                          "no requests")
        hits = counters.get("hexa_plan_cache_hits", 0)
        misses = counters.get("hexa_plan_cache_misses", 0)
        invalidations = counters.get("hexa_plan_cache_invalidations", 0)
        looked_up = hits + misses + invalidations
        if looked_up == 0:
            errors.append("plan cache saw no lookups — queries bypassed "
                          "the cache")
        elif hits / looked_up <= 0.9:
            errors.append(f"plan cache hit rate {hits}/{looked_up} "
                          f"is not above 0.9 on repeated templates")
        if invalidations <= 0:
            errors.append("hexa_plan_cache_invalidations is zero — "
                          "write churn never invalidated a plan")

    families = [("hexa_delta_", True), ("hexa_epoch_", True),
                ("hexa_wal_", require_wal)]
    for prefix, required in families:
        if not required:
            continue
        live = [n for n, v in dump["counters"].items()
                if n.startswith(prefix) and v > 0]
        if not live:
            errors.append(f"no nonzero {prefix}* counters — hollow dump")

    if errors:
        return fail(errors)
    n_hist = len(dump["histograms"])
    retained = trace.get("retained", 0) if isinstance(trace, dict) else 0
    n_slow = slow.get("retained", 0) if isinstance(slow, dict) else 0
    print(f"check_metrics_json: OK ({len(dump['counters'])} counters, "
          f"{len(dump['gauges'])} gauges, {n_hist} histograms, "
          f"{retained} trace events, {n_slow} slow queries)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Validates a HEXA_METRICS_JSON dump against the version-1 schema.

Usage: check_metrics_json.py <dump.json> [--require-wal]

Checks (see docs/observability.md "Export formats"):
  * top-level shape: version 1, counters/gauges/histograms objects and
    a trace object (or null);
  * every histogram carries count/sum_ns/max_ns/sample_shift, ordered
    percentiles and well-formed buckets;
  * the dump is not hollow: the delta and epoch counter families have
    nonzero entries, the trace retained events — and with --require-wal
    (the CI metrics-smoke job, which churns a durable store) the WAL
    family too.

Exits 0 on a valid dump, 1 with one line per violation otherwise.
Stdlib only.
"""

import json
import sys


def fail(errors):
    for e in errors:
        print(f"check_metrics_json: {e}", file=sys.stderr)
    return 1


def main(argv):
    if len(argv) < 2 or argv[1].startswith("-"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = argv[1]
    require_wal = "--require-wal" in argv[2:]

    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            dump = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return fail([f"{path}: cannot parse: {exc}"])

    if dump.get("version") != 1:
        errors.append(f"version is {dump.get('version')!r}, expected 1")

    for section in ("counters", "gauges", "histograms"):
        if not isinstance(dump.get(section), dict):
            errors.append(f"missing or non-object section {section!r}")
            dump[section] = {}

    for name, value in dump["counters"].items():
        if not isinstance(value, int) or value < 0:
            errors.append(f"counter {name} is not a non-negative integer")
    for name, value in dump["gauges"].items():
        if not isinstance(value, int):
            errors.append(f"gauge {name} is not an integer")

    required_hist_keys = {
        "count", "sum_ns", "max_ns", "sample_shift",
        "p50_ns", "p90_ns", "p99_ns", "p999_ns", "buckets",
    }
    for name, hist in dump["histograms"].items():
        if not isinstance(hist, dict):
            errors.append(f"histogram {name} is not an object")
            continue
        missing = required_hist_keys - hist.keys()
        if missing:
            errors.append(f"histogram {name} missing keys {sorted(missing)}")
            continue
        p50, p90 = hist["p50_ns"], hist["p90_ns"]
        p99, p999 = hist["p99_ns"], hist["p999_ns"]
        if not p50 <= p90 <= p99 <= p999:
            errors.append(f"histogram {name} percentiles not ordered: "
                          f"{p50} {p90} {p99} {p999}")
        if p999 > hist["max_ns"]:
            errors.append(f"histogram {name} p999 {p999} exceeds max "
                          f"{hist['max_ns']}")
        bucket_total = 0
        for bucket in hist["buckets"]:
            if set(bucket.keys()) != {"le_ns", "count"}:
                errors.append(f"histogram {name} malformed bucket {bucket}")
                break
            bucket_total += bucket["count"]
        else:
            if bucket_total != hist["count"]:
                errors.append(f"histogram {name} bucket counts sum to "
                              f"{bucket_total}, count is {hist['count']}")

    trace = dump.get("trace")
    if trace is None:
        errors.append("trace is null — dump did not come from a delta store")
    elif not isinstance(trace, dict):
        errors.append("trace is not an object")
    else:
        for key in ("capacity", "recorded", "retained", "events"):
            if key not in trace:
                errors.append(f"trace missing key {key!r}")
        events = trace.get("events", [])
        if trace.get("recorded", 0) <= 0 or not events:
            errors.append("trace recorded no events")
        for event in events:
            missing = ({"ticket", "ts_ns", "event", "reason",
                        "duration_ns", "value"} - event.keys())
            if missing:
                errors.append(f"trace event missing keys {sorted(missing)}")
                break

    families = [("hexa_delta_", True), ("hexa_epoch_", True),
                ("hexa_wal_", require_wal)]
    for prefix, required in families:
        if not required:
            continue
        live = [n for n, v in dump["counters"].items()
                if n.startswith(prefix) and v > 0]
        if not live:
            errors.append(f"no nonzero {prefix}* counters — hollow dump")

    if errors:
        return fail(errors)
    n_hist = len(dump["histograms"])
    retained = trace.get("retained", 0) if isinstance(trace, dict) else 0
    print(f"check_metrics_json: OK ({len(dump['counters'])} counters, "
          f"{len(dump['gauges'])} gauges, {n_hist} histograms, "
          f"{retained} trace events)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// DeltaHexastore: an LSM-style update-friendly TripleStore layering a
// hash-backed DeltaStore (staged inserts + tombstones) over a base
// Hexastore.
//
// Write path: Insert/Erase stage O(1)-ish edits in the delta instead of
// mutating all six sorted views of the base (the §4.2 update deficiency).
// Once the number of staged operations reaches `compact_threshold`, the
// delta is drained into the base in one sorted BulkLoad-style merge —
// either synchronously on the writer thread (the default), or, with
// DeltaOptions::background_compaction, by sealing the full buffer as an
// immutable generation layer and merging it on a dedicated compactor
// thread while writers keep staging into a fresh buffer. Sealing is two
// pointer swaps, so write latency stays flat through a drain.
//
// Read path: Contains, Scan and the merged accessor views always expose
// the consistent union  base ∪ sealed-edits ∪ staged-edits  (each layer
// applying its tombstones to everything beneath it). Accessor views come
// back as MergedList so merge joins keep their linear-merge guarantee
// mid-delta.
//
// Concurrent reads: two kinds of handle, both materialized as Snapshot.
//
//   * GetSnapshot() — linearizable: takes the store mutex briefly,
//     freezes and publishes the current {base, sealed, active}
//     generation, and returns a handle to exactly the current contents.
//   * AcquireReadHandle() — wait-free: returns the most recently
//     *published* generation through an RCU-style epoch-protected
//     pointer (see generation.h) without ever touching the store mutex.
//     It may trail the live store by the ops staged since the last
//     publication (a publication happens at every snapshot/merged-view
//     exposure, every background-merge completion, and Clear/BulkLoad in
//     background mode).
//
// Either handle pins its generation for its whole lifetime — a BGP
// evaluated against a Snapshot (it is a read-only TripleStore) plans and
// joins against one frozen view no matter how many compactions complete
// meanwhile — and never blocks writers: superseded generations go onto
// the gate's retire list and are reclaimed after a grace period.
#ifndef HEXASTORE_DELTA_DELTA_HEXASTORE_H_
#define HEXASTORE_DELTA_DELTA_HEXASTORE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/hexastore.h"
#include "core/stats.h"
#include "core/store_interface.h"
#include "delta/delta_store.h"
#include "delta/generation.h"
#include "delta/merged_list.h"
#include "rdf/triple.h"
#include "util/common.h"

namespace hexastore {

/// Default number of staged operations that triggers auto-compaction
/// (shared by DeltaOptions and the legacy size_t constructor).
inline constexpr std::size_t kDeltaCompactThresholdDefault = 64 * 1024;

/// Construction-time configuration of a DeltaHexastore.
struct DeltaOptions {
  /// Staged operations that trigger a drain (seal, in background mode).
  std::size_t compact_threshold = kDeltaCompactThresholdDefault;
  /// Merge sealed generations on a dedicated compactor thread instead of
  /// draining on the writer thread at the threshold.
  bool background_compaction = false;
};

/// Update-optimized Hexastore with a staging delta and tombstones.
class DeltaHexastore : public TripleStore {
 public:
  /// Default number of staged operations that triggers auto-compaction.
  static constexpr std::size_t kDefaultCompactThreshold =
      kDeltaCompactThresholdDefault;

  /// Synchronous-compaction store (drains on the writer thread).
  explicit DeltaHexastore(
      std::size_t compact_threshold = kDefaultCompactThreshold);
  explicit DeltaHexastore(const DeltaOptions& options);

  DeltaHexastore(const DeltaHexastore&) = delete;
  DeltaHexastore& operator=(const DeltaHexastore&) = delete;

  /// Waits for any in-flight background merge, then joins the compactor.
  ~DeltaHexastore() override;

  // -- TripleStore interface ----------------------------------------------

  /// Stages the insert in the delta; auto-compacts (or seals, in
  /// background mode) at the threshold.
  bool Insert(const IdTriple& t) override;
  /// Stages a tombstone (or cancels a staged insert).
  bool Erase(const IdTriple& t) override;
  bool Contains(const IdTriple& t) const override;
  std::size_t size() const override;
  /// Emits the merged view: base matches minus each layer's tombstones
  /// (in the base index's natural order), then sealed and staged inserts
  /// grouped by the pattern's bound prefix (range scans of the layers'
  /// sorted runs).
  void Scan(const IdPattern& pattern, const TripleSink& sink) const override;
  std::size_t MemoryBytes() const override;
  std::string name() const override { return "DeltaHexastore"; }

  /// Delta-aware planner estimate: the base index count adjusted by the
  /// staged ops of each layer — exact staged-insert counts (sorted-run
  /// range scans), tombstones scaled by the pattern's base selectivity,
  /// pattern tombstones applied exactly. Never pays a full merged scan.
  std::uint64_t EstimateMatches(const IdPattern& pattern) const override;

  /// Erases every triple matching `pattern`; returns how many logical
  /// triples were removed. Fast paths: the all-wildcard pattern is a
  /// Clear, and a predicate-only pattern (?, p, ?) stages ONE
  /// pattern-level tombstone instead of one per match (O(op table + base
  /// count) rather than O(matches) staged entries). Other shapes fall
  /// back to staging a point tombstone per match. The predicate fast
  /// path synchronizes with an in-flight background merge (its exact
  /// erase count is defined against the merged base).
  std::size_t ErasePattern(const IdPattern& pattern);

  /// Compacts any staged delta, then merges `triples` straight into the
  /// base via its sorted BulkLoad path.
  void BulkLoad(const IdTripleVec& triples) override;

  /// Removes all triples (base, sealed and staged); an in-flight
  /// background merge is invalidated, not waited for.
  void Clear();

  // -- Delta management ---------------------------------------------------

  /// Drains every staged op into the base. Synchronous mode: one sorted
  /// merge on this thread (in place when no generation references the
  /// base, otherwise rebuild-and-swap). Background mode: seals the
  /// staging buffer and blocks until the compactor has merged everything
  /// (writers on other threads stay unblocked throughout). No-op when
  /// nothing is staged.
  void Compact();

  /// Operations staged and not yet merged into the base (active plus any
  /// sealed-but-unmerged buffer).
  std::size_t StagedOps() const;
  /// Compactions (drains or background merges) since construction.
  std::uint64_t CompactionCount() const;
  std::size_t compact_threshold() const { return compact_threshold_; }
  /// True when a dedicated compactor thread runs the merges.
  bool background() const { return background_; }

  /// Delta-layer counters for reports and the stats subsystem.
  DeltaStats Stats() const;
  /// Generation-gate counters (publications, reclamation, handles).
  EpochStats EpochCounters() const;

  // -- Pinned-generation reads --------------------------------------------

  /// An immutable view of one published {base, sealed, active}
  /// generation. It is a read-only TripleStore (mutators are no-ops that
  /// return false), so planners, BGP evaluation and merge joins run
  /// entirely against the pinned generation; it also mirrors the merged
  /// accessor views. Cheap to copy and safe to read from any thread
  /// while writers keep inserting and compacting.
  class Snapshot final : public TripleStore {
   public:
    /// Empty view (no generation).
    Snapshot() = default;

    // Read-only view: mutators are documented no-ops.
    bool Insert(const IdTriple&) override { return false; }
    bool Erase(const IdTriple&) override { return false; }
    void BulkLoad(const IdTripleVec&) override {}

    bool Contains(const IdTriple& t) const override;
    std::size_t size() const override;
    void Scan(const IdPattern& pattern,
              const TripleSink& sink) const override;
    std::size_t MemoryBytes() const override;
    std::string name() const override { return "DeltaHexastore::Snapshot"; }
    std::uint64_t EstimateMatches(const IdPattern& pattern) const override;

    /// Store epoch the generation was published at (bumps on every
    /// compaction and Clear).
    std::uint64_t epoch() const;

    // Merged accessor views over the pinned generation (see the
    // DeltaHexastore accessors below for semantics).
    MergedList objects(Id s, Id p) const;
    MergedList predicates(Id s, Id o) const;
    MergedList subjects(Id p, Id o) const;
    IdVec predicates_of_subject(Id s) const;
    IdVec objects_of_subject(Id s) const;
    IdVec subjects_of_predicate(Id p) const;
    IdVec objects_of_predicate(Id p) const;
    IdVec subjects_of_object(Id o) const;
    IdVec predicates_of_object(Id o) const;

   private:
    friend class DeltaHexastore;
    explicit Snapshot(std::shared_ptr<const DeltaGeneration> gen)
        : gen_(std::move(gen)) {}

    std::shared_ptr<const DeltaGeneration> gen_;
  };

  /// Takes a consistent, up-to-date point-in-time handle (linearizable;
  /// briefly takes the store mutex to freeze and publish the current
  /// generation).
  Snapshot GetSnapshot() const;

  /// Wait-free handle to the most recently published generation. Never
  /// touches the store mutex; may trail the live store by the ops staged
  /// since the last publication (see the file comment).
  Snapshot AcquireReadHandle() const;

  // -- Merged accessor views (the paper's vectors and lists) --------------
  // Mirror Hexastore's accessors but return merging views instead of raw
  // vector pointers, so callers see staged edits. Views stay valid across
  // later mutations and compactions (they pin the generation they were
  // taken from).

  /// Merged object list o(s,p).
  MergedList objects(Id s, Id p) const;
  /// Merged predicate list p(s,o).
  MergedList predicates(Id s, Id o) const;
  /// Merged subject list s(p,o).
  MergedList subjects(Id p, Id o) const;

  // Header-level merged vectors (materialized: membership of a header id
  // depends on whether any merged terminal list under it is non-empty).

  /// Merged property vector p(s) of the spo index.
  IdVec predicates_of_subject(Id s) const;
  /// Merged object vector o(s) of the sop index.
  IdVec objects_of_subject(Id s) const;
  /// Merged subject vector s(p) of the pso index.
  IdVec subjects_of_predicate(Id p) const;
  /// Merged object vector o(p) of the pos index.
  IdVec objects_of_predicate(Id p) const;
  /// Merged subject vector s(o) of the osp index.
  IdVec subjects_of_object(Id o) const;
  /// Merged property vector p(o) of the ops index.
  IdVec predicates_of_object(Id o) const;

  // -- Introspection -------------------------------------------------------

  /// The compacted base store (test/bench access; reflects the state as
  /// of the last compaction). Shared ownership keeps the generation alive
  /// across later compactions.
  std::shared_ptr<const Hexastore> base() const;

  /// Verifies base invariants plus the delta-layer contract for both the
  /// sealed and the active layer (staged inserts absent from the layer
  /// beneath, tombstones present in it, size bookkeeping).
  bool CheckInvariants(std::string* error = nullptr) const;

 private:
  // All private helpers expect mu_ to be held unless noted.
  //
  // Publication protocol: internal reads happen under mu_, so they are
  // ordered against writers by the mutex alone. The moment a generation
  // escapes — GetSnapshot, a MergedList accessor, base(), a seal, or a
  // background-merge completion — the objects it references are marked
  // exposed and NEVER mutated in place again: writers clone the delta
  // (copy-on-write) and compaction rebuilds-and-swaps the base. Lock-free
  // readers therefore only ever dereference frozen objects; the epoch
  // gate (generation.h) keeps them allocated.

  // Publishes the current {base_, sealed_, delta_} through the gate.
  // `logical_size` is the triple count of the published view;
  // `include_active` controls whether the staging buffer is frozen into
  // it (excluding it keeps the buffer writer-private — no copy-on-write
  // on the next op).
  void PublishLocked(std::size_t logical_size, bool include_active) const;
  // Marks the current generation escaped and publishes it if dirty.
  void ExposeLocked() const;
  // Clones the delta iff it ever escaped (copy-on-write), so staged
  // mutations never alter a published generation.
  void EnsureDeltaWritableLocked();
  // Threshold trigger: synchronous drain, or seal + wake the compactor.
  void MaybeCompactLocked();
  // Synchronous drain of the active delta into the base (sealed_ must be
  // null); rebuilds-and-swaps when the base has escaped.
  void CompactLocked();
  // Closes the staging buffer as sealed_ and opens a fresh one.
  void SealLocked();
  // Blocks until no sealed buffer is pending (background mode). May
  // chase re-seals by concurrent writers; used only by the rare bulk
  // paths that need a sealed-free state (BulkLoad, predicate erase).
  void WaitForMergeLocked(std::unique_lock<std::mutex>& lock);
  // Blocks until one more merge completes or its inputs are wiped —
  // bounded even under sustained concurrent writes (Compact's wait).
  void AwaitOneMergeLocked(std::unique_lock<std::mutex>& lock);
  // Clear body (shared by Clear and the all-wildcard ErasePattern).
  void ClearLocked();
  // Compactor thread body (owns no lock between merges).
  void MergerLoop();

  mutable std::mutex mu_;
  std::shared_ptr<Hexastore> base_;
  std::shared_ptr<const DeltaStore> sealed_;  // closed buffer being merged
  std::shared_ptr<DeltaStore> delta_;         // open staging buffer
  // True once a pointer to the current base_/delta_ object left the
  // mutex scope; cleared only when the pointer is replaced.
  mutable bool base_exposed_ = false;
  mutable bool delta_exposed_ = false;
  // Set by every mutation/structure change; cleared by PublishLocked —
  // lets repeated exposures (accessor loops) skip redundant publishes.
  mutable bool dirty_ = true;
  // Ops of delta_ included in the last publication (0 when the active
  // buffer was excluded); a merge-completion publish must re-include the
  // buffer iff this is non-zero, to keep published views monotonic.
  mutable std::size_t published_active_ops_ = 0;

  std::size_t compact_threshold_;
  bool background_ = false;
  std::size_t size_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t compactions_ = 0;

  // Background-compaction machinery.
  std::thread merger_;
  std::condition_variable work_cv_;   // compactor waits for a seal
  std::condition_variable drain_cv_;  // waiters wait for sealed_ == null
  bool stop_ = false;
  std::uint64_t merge_ticket_ = 0;  // bumped to invalidate in-flight merges
  std::uint64_t seals_ = 0;
  std::uint64_t background_merges_ = 0;
  std::uint64_t merge_discards_ = 0;
  std::uint64_t seal_overflows_ = 0;

  mutable GenerationGate gate_;
};

}  // namespace hexastore

#endif  // HEXASTORE_DELTA_DELTA_HEXASTORE_H_

// DeltaHexastore: an LSM-style update-friendly TripleStore layering a
// hash-backed DeltaStore (staged inserts + tombstones) over a base
// Hexastore.
//
// Write path: Insert/Erase stage O(1)-ish edits in the delta instead of
// mutating all six sorted views of the base (the §4.2 update deficiency).
// Once the number of staged operations reaches `compact_threshold`, the
// delta is drained into the base in one sorted BulkLoad-style merge.
//
// Read path: Contains, Scan and the merged accessor views always expose
// the consistent union  base ∪ staged-inserts ∖ tombstones.  Accessor
// views come back as MergedList so merge joins keep their linear-merge
// guarantee mid-delta.
//
// Snapshot isolation: GetSnapshot() returns a cheap epoch handle (two
// shared_ptrs). Writers copy-on-write the delta when a snapshot still
// references it, and compaction rebuilds-and-swaps the base instead of
// draining in place whenever any snapshot (or outstanding MergedList)
// still reads the old one — so readers finish against the pre-compaction
// view while a writer compacts. All public methods are individually
// thread-safe; snapshot reads never block on the writer after the handle
// is taken.
#ifndef HEXASTORE_DELTA_DELTA_HEXASTORE_H_
#define HEXASTORE_DELTA_DELTA_HEXASTORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/hexastore.h"
#include "core/stats.h"
#include "core/store_interface.h"
#include "delta/delta_store.h"
#include "delta/merged_list.h"
#include "rdf/triple.h"
#include "util/common.h"

namespace hexastore {

/// Update-optimized Hexastore with a staging delta and tombstones.
class DeltaHexastore : public TripleStore {
 public:
  /// Default number of staged operations that triggers auto-compaction.
  static constexpr std::size_t kDefaultCompactThreshold = 64 * 1024;

  explicit DeltaHexastore(
      std::size_t compact_threshold = kDefaultCompactThreshold);

  DeltaHexastore(const DeltaHexastore&) = delete;
  DeltaHexastore& operator=(const DeltaHexastore&) = delete;

  // -- TripleStore interface ----------------------------------------------

  /// Stages the insert in the delta; auto-compacts at the threshold.
  bool Insert(const IdTriple& t) override;
  /// Stages a tombstone (or cancels a staged insert).
  bool Erase(const IdTriple& t) override;
  bool Contains(const IdTriple& t) const override;
  std::size_t size() const override;
  /// Emits the merged view: base matches minus tombstones (in the base
  /// index's natural order), then staged inserts grouped by the
  /// pattern's bound prefix (a range scan of the delta's sorted runs).
  void Scan(const IdPattern& pattern, const TripleSink& sink) const override;
  std::size_t MemoryBytes() const override;
  std::string name() const override { return "DeltaHexastore"; }

  /// Delta-aware planner estimate: the base index count adjusted by the
  /// staged ops — exact staged-insert count for the pattern (a sorted-run
  /// range scan), tombstones scaled by the pattern's base selectivity,
  /// pattern tombstones applied exactly. Never pays a full merged scan.
  std::uint64_t EstimateMatches(const IdPattern& pattern) const override;

  /// Erases every triple matching `pattern`; returns how many logical
  /// triples were removed. Fast paths: the all-wildcard pattern is a
  /// Clear, and a predicate-only pattern (?, p, ?) stages ONE
  /// pattern-level tombstone instead of one per match (O(op table + base
  /// count) rather than O(matches) staged entries). Other shapes fall
  /// back to staging a point tombstone per match.
  std::size_t ErasePattern(const IdPattern& pattern);

  /// Compacts any staged delta, then merges `triples` straight into the
  /// base via its sorted BulkLoad path.
  void BulkLoad(const IdTripleVec& triples) override;

  /// Removes all triples (base and staged).
  void Clear();

  // -- Delta management ---------------------------------------------------

  /// Drains the delta into the base's six permutation indexes via one
  /// sorted merge (in place when no snapshot reads the base, otherwise
  /// rebuild-and-swap). No-op when the delta is empty.
  void Compact();

  /// Operations staged and not yet compacted.
  std::size_t StagedOps() const;
  /// Compactions performed since construction.
  std::uint64_t CompactionCount() const;
  std::size_t compact_threshold() const { return compact_threshold_; }

  /// Delta-layer counters for reports and the stats subsystem.
  DeltaStats Stats() const;

  // -- Snapshot-isolated reads --------------------------------------------

  /// An immutable view of the store as of GetSnapshot(). Cheap to take
  /// (two shared_ptr copies under the store mutex) and safe to read from
  /// any thread while writers keep inserting and compacting.
  class Snapshot {
   public:
    bool Contains(const IdTriple& t) const;
    void Scan(const IdPattern& pattern, const TripleSink& sink) const;
    /// Materialized matches, sorted in (s, p, o) order.
    IdTripleVec Match(const IdPattern& pattern) const;
    std::size_t size() const { return size_; }
    /// Epoch the snapshot was taken at (bumps on every compaction and
    /// Clear).
    std::uint64_t epoch() const { return epoch_; }

   private:
    friend class DeltaHexastore;
    Snapshot(std::shared_ptr<const Hexastore> base,
             std::shared_ptr<const DeltaStore> delta, std::size_t size,
             std::uint64_t epoch)
        : base_(std::move(base)),
          delta_(std::move(delta)),
          size_(size),
          epoch_(epoch) {}

    std::shared_ptr<const Hexastore> base_;
    std::shared_ptr<const DeltaStore> delta_;
    std::size_t size_;
    std::uint64_t epoch_;
  };

  /// Takes a consistent point-in-time handle on the current contents.
  Snapshot GetSnapshot() const;

  // -- Merged accessor views (the paper's vectors and lists) --------------
  // Mirror Hexastore's accessors but return merging views instead of raw
  // vector pointers, so callers see staged edits. Views stay valid across
  // later mutations and compactions (they pin the generation they were
  // taken from).

  /// Merged object list o(s,p).
  MergedList objects(Id s, Id p) const;
  /// Merged predicate list p(s,o).
  MergedList predicates(Id s, Id o) const;
  /// Merged subject list s(p,o).
  MergedList subjects(Id p, Id o) const;

  // Header-level merged vectors (materialized: membership of a header id
  // depends on whether any merged terminal list under it is non-empty).

  /// Merged property vector p(s) of the spo index.
  IdVec predicates_of_subject(Id s) const;
  /// Merged object vector o(s) of the sop index.
  IdVec objects_of_subject(Id s) const;
  /// Merged subject vector s(p) of the pso index.
  IdVec subjects_of_predicate(Id p) const;
  /// Merged object vector o(p) of the pos index.
  IdVec objects_of_predicate(Id p) const;
  /// Merged subject vector s(o) of the osp index.
  IdVec subjects_of_object(Id o) const;
  /// Merged property vector p(o) of the ops index.
  IdVec predicates_of_object(Id o) const;

  // -- Introspection -------------------------------------------------------

  /// The compacted base store (test/bench access; reflects the state as
  /// of the last compaction). Shared ownership keeps the generation alive
  /// across later compactions.
  std::shared_ptr<const Hexastore> base() const;

  /// Verifies base invariants plus the delta-layer contract (staged
  /// inserts absent from base, tombstones present, size bookkeeping).
  bool CheckInvariants(std::string* error = nullptr) const;

 private:
  // All private helpers expect mu_ to be held.
  //
  // Publication protocol: internal reads happen under mu_, so they are
  // ordered against writers by the mutex alone. The moment a generation
  // pointer escapes the lock scope (GetSnapshot, a MergedList accessor,
  // base()), the exposure flag for that object is set and it is NEVER
  // mutated in place again — writers clone the delta and rebuild-and-swap
  // the base instead. This is deliberately stronger than a
  // use_count() == 1 probe: releasing a shared_ptr only synchronizes with
  // another release, not with a later relaxed use-count read, so a
  // count-based in-place fast path would race with a reader that already
  // dropped its handle (ThreadSanitizer rightly flags it).

  // Marks both current generation objects as escaped.
  void ExposeLocked() const;
  // Clones the delta iff it ever escaped (copy-on-write), so staged
  // mutations never alter a published generation.
  void EnsureDeltaWritableLocked();
  // Drains the delta into the base; rebuilds-and-swaps when the base has
  // escaped to a snapshot or merged view.
  void CompactLocked();
  // Clear body (shared by Clear and the all-wildcard ErasePattern).
  void ClearLocked();

  mutable std::mutex mu_;
  std::shared_ptr<Hexastore> base_;
  std::shared_ptr<DeltaStore> delta_;
  // True once a pointer to the current base_/delta_ object left the
  // mutex scope; cleared only when the pointer is replaced.
  mutable bool base_exposed_ = false;
  mutable bool delta_exposed_ = false;
  std::size_t compact_threshold_;
  std::size_t size_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace hexastore

#endif  // HEXASTORE_DELTA_DELTA_HEXASTORE_H_

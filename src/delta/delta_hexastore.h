// DeltaHexastore: an LSM-style update-friendly TripleStore layering
// hash-backed DeltaStore runs (staged inserts + tombstones) over a base
// Hexastore.
//
// Write path: Insert/Erase stage O(1)-ish edits in the active delta
// instead of mutating all six sorted views of the base (the §4.2 update
// deficiency). What happens when the buffer reaches
// `DeltaOptions::compact_threshold` depends on the configuration:
//
//   * flat, synchronous (the default): the buffer drains into the base
//     in one sorted BulkLoad-style merge on the writer thread.
//   * flat, background: the buffer is sealed (two pointer swaps) and a
//     dedicated compactor thread merges it into a fresh base while
//     writers keep staging into a new buffer.
//   * leveled (`l0_run_limit > 0`, either mode): the sealed buffer
//     becomes an immutable **L0 run** and nothing merges yet. Once
//     `l0_run_limit` runs accumulate they fold into a single **L1 run**
//     (cost proportional to the staged ops), and only when L1 reaches
//     `l1_base_fraction` of the base does the expensive L1→base merge
//     rebuild the permutation indexes — so drain cost is bounded and
//     write amplification drops with the run limit (see
//     docs/delta-levels.md for the full policy).
//
// Read path: Contains, Scan and the merged accessor views always expose
// the consistent union across the whole chain
//   active ▷ L0 runs (newest first) ▷ L1 ▷ base
// with each layer applying its point and pattern tombstones to
// everything beneath it. Accessor views come back as MergedList so merge
// joins keep their linear-merge guarantee mid-delta.
//
// Concurrent reads: two kinds of handle, both materialized as Snapshot.
//
//   * GetSnapshot() — linearizable: takes the store mutex briefly,
//     freezes and publishes the current {base, levels, active}
//     generation, and returns a handle to exactly the current contents.
//   * AcquireReadHandle() — wait-free: returns the most recently
//     *published* generation through an RCU-style epoch-protected
//     pointer (see generation.h) without ever touching the store mutex.
//     It may trail the live store by the ops staged since the last
//     publication (a publication happens at every snapshot/merged-view
//     exposure, every background-merge completion, and Clear/BulkLoad in
//     background mode).
//
// Either handle pins its generation for its whole lifetime — a BGP
// evaluated against a Snapshot (it is a read-only TripleStore) plans and
// joins against one frozen view no matter how many merges complete
// meanwhile — and never blocks writers: superseded generations go onto
// the gate's retire list and are reclaimed after a grace period.
//
// docs/architecture.md maps this subsystem into the whole system;
// docs/delta-levels.md specifies the verdict chain and merge policy.
#ifndef HEXASTORE_DELTA_DELTA_HEXASTORE_H_
#define HEXASTORE_DELTA_DELTA_HEXASTORE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/hexastore.h"
#include "core/stats.h"
#include "core/store_interface.h"
#include "delta/delta_store.h"
#include "delta/generation.h"
#include "delta/level.h"
#include "delta/merged_list.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace_ring.h"
#include "rdf/triple.h"
#include "util/common.h"

namespace hexastore {

/// Default number of staged operations that triggers auto-compaction
/// (shared by DeltaOptions and the legacy size_t constructor).
inline constexpr std::size_t kDeltaCompactThresholdDefault = 64 * 1024;

/// Construction-time configuration of a DeltaHexastore.
struct DeltaOptions {
  /// Staged operations that trigger a drain (a seal, in background or
  /// leveled mode).
  std::size_t compact_threshold = kDeltaCompactThresholdDefault;
  /// Merge sealed runs on a dedicated compactor thread instead of
  /// draining on the writer thread at the threshold.
  bool background_compaction = false;
  /// Leveled deltas: number of sealed L0 runs that triggers an L0→L1
  /// fold. 0 disables leveling (every seal merges straight into the
  /// base, the pre-level behavior).
  std::size_t l0_run_limit = 0;
  /// Leveled deltas: L1 merges into the base once its op count reaches
  /// this fraction of the base size (but never before it holds at least
  /// one compact_threshold of ops). Must be finite and > 0; the store
  /// clamps invalid values (0, negative, NaN, inf) back to the default
  /// rather than silently degrading to always-base-merge.
  double l1_base_fraction = 0.25;
  /// Hard budget for tracked delta memory (sealed runs + their filters +
  /// the active op table). 0 = unlimited. When tracked bytes cross the
  /// budget the store seals/folds/base-merges regardless of
  /// l0_run_limit, and stops building filters for new runs until back
  /// under.
  std::size_t memory_budget_bytes = 0;
  /// Prefix-filter sizing for sealed L0 runs, in bits per indexed key
  /// class (Monkey-style: the colder, bigger L1 run gets half). 0
  /// disables filters.
  std::size_t filter_bits_per_key = 10;
  /// Capacity (in events) of the lifecycle trace ring (see
  /// obs/trace_ring.h); rounded up to a power of two, minimum 8.
  std::size_t trace_capacity = 1024;

  /// Clamps every field to its documented domain in place. Returns an
  /// empty string when nothing was wrong, else a description of the
  /// first repaired field (the DeltaHexastore constructor logs it).
  std::string Normalize();
};

/// Update-optimized Hexastore with a staging delta, leveled sealed runs
/// and tombstones.
///
/// Thread-safety: every public member is safe to call from any thread.
/// Mutators serialize on an internal mutex; reads through Snapshot
/// handles never block writers. Blocking behavior is called out per
/// member below.
class DeltaHexastore : public TripleStore {
 public:
  /// Default number of staged operations that triggers auto-compaction.
  static constexpr std::size_t kDefaultCompactThreshold =
      kDeltaCompactThresholdDefault;

  /// Synchronous-compaction store (drains on the writer thread).
  explicit DeltaHexastore(
      std::size_t compact_threshold = kDefaultCompactThreshold);
  explicit DeltaHexastore(const DeltaOptions& options);

  DeltaHexastore(const DeltaHexastore&) = delete;
  DeltaHexastore& operator=(const DeltaHexastore&) = delete;

  /// Waits for any in-flight background merge, then joins the compactor.
  ~DeltaHexastore() override;

  // -- TripleStore interface ----------------------------------------------

  /// Stages the insert in the delta; auto-compacts (or seals, in
  /// background/leveled mode) at the threshold. O(1) except at a
  /// synchronous drain boundary.
  bool Insert(const IdTriple& t) override;
  /// Stages a tombstone (or cancels a staged insert). Same cost model as
  /// Insert.
  bool Erase(const IdTriple& t) override;
  /// Merged membership test: the newest layer's verdict wins. Never
  /// blocks on merges.
  bool Contains(const IdTriple& t) const override;
  std::size_t size() const override;
  /// Emits the merged view: base matches minus every layer's tombstones
  /// (in the base index's natural order), then each layer's staged
  /// inserts bottom-up, filtered by the layers above it (range scans of
  /// the layers' sorted runs).
  void Scan(const IdPattern& pattern, const TripleSink& sink) const override;
  std::size_t MemoryBytes() const override;
  std::string name() const override { return "DeltaHexastore"; }

  /// Delta-aware planner estimate: the base index count adjusted by the
  /// staged ops of each layer bottom-up — exact staged-insert counts
  /// (sorted-run range scans), tombstones scaled by the pattern's
  /// selectivity, pattern tombstones applied exactly. Never pays a full
  /// merged scan.
  std::uint64_t EstimateMatches(const IdPattern& pattern) const override;

  /// Erases every triple matching `pattern`; returns how many logical
  /// triples were removed. Fast paths: the all-wildcard pattern is a
  /// Clear, and a predicate-only pattern (?, p, ?) stages ONE
  /// pattern-level tombstone instead of one per match. Other shapes fall
  /// back to staging a point tombstone per match. In flat background
  /// mode the predicate fast path drains an in-flight merge first (its
  /// exact erase count is defined against the merged base); in leveled
  /// mode it counts by one merged scan instead and never waits on the
  /// compactor.
  std::size_t ErasePattern(const IdPattern& pattern);

  /// Compacts every staged layer, then merges `triples` straight into
  /// the base via its sorted BulkLoad path. Blocks until any in-flight
  /// background merge has drained.
  void BulkLoad(const IdTripleVec& triples) override;

  /// Removes all triples (base, sealed runs and staged); an in-flight
  /// background merge is invalidated, not waited for.
  void Clear();

  // -- Delta management ---------------------------------------------------

  /// Drains every staged op into the base. Synchronous mode: the whole
  /// hierarchy (L1, L0 runs, active) collapses in one sorted merge on
  /// this thread. Background mode: seals the staging buffer and blocks
  /// until the compactor has merged everything present at the call
  /// (writers on other threads stay unblocked throughout; their
  /// concurrent seals may leave new runs behind). No-op when nothing is
  /// staged.
  void Compact();

  /// Operations staged and not yet merged into the base (active plus
  /// every sealed run).
  std::size_t StagedOps() const;
  /// Merges (synchronous drains, background merges and L0→L1 folds)
  /// since construction.
  std::uint64_t CompactionCount() const;
  std::size_t compact_threshold() const { return compact_threshold_; }
  /// True when a dedicated compactor thread runs the merges.
  bool background() const { return background_; }
  /// True when sealed buffers accumulate as leveled runs
  /// (l0_run_limit > 0) instead of merging straight into the base.
  bool leveled() const { return l0_run_limit_ > 0; }
  std::size_t l0_run_limit() const { return l0_run_limit_; }
  /// Post-validation L1→base trigger fraction (tests the Normalize
  /// clamping of bad option values).
  double l1_base_fraction() const { return l1_base_fraction_; }
  std::size_t memory_budget_bytes() const { return memory_budget_; }
  std::size_t filter_bits_per_key() const { return filter_bits_l0_; }

  /// The resident-memory tracker every sealed run registers with (tests
  /// assert `balanced()` after the store and all snapshots are gone).
  std::shared_ptr<MemoryTracker> memory_tracker() const { return tracker_; }

  /// Delta-layer counters for reports and the stats subsystem. View
  /// over GatherStats().delta.
  DeltaStats Stats() const;
  /// Generation-gate counters (publications, reclamation, handles).
  /// View over GatherStats().epoch.
  EpochStats EpochCounters() const;

  // -- Observability (see docs/observability.md) --------------------------

  /// The single snapshot path for every stats struct: one hold of the
  /// store mutex reads all writer-maintained fields as a consistent cut
  /// and the registry counters as tear-free relaxed loads (the ordering
  /// contract is documented on StatsSnapshot). Also refreshes the
  /// registry gauges, so an export right after GatherStats is coherent.
  StatsSnapshot GatherStats() const;

  /// The store's metrics registry (counters, gauges, histograms, trace
  /// ring attached). Valid exactly as long as the store; exports taken
  /// through MetricsText/MetricsJson refresh gauges first, reads through
  /// this reference see the last refreshed values.
  obs::MetricsRegistry& metrics_registry() const { return registry_; }

  /// Lifecycle event ring (seal, fold, base merge, budget trigger,
  /// filter drop, publish/reclaim; the WAL layer adds checkpoint and
  /// recovery events on a durable store).
  obs::TraceRing& trace_ring() const { return trace_; }

  /// Prometheus text exposition of every registered instrument.
  std::string MetricsText() const;
  /// JSON metrics dump (schema of scripts/check_metrics_json.py).
  std::string MetricsJson() const;
  /// Writes MetricsJson() to `path` atomically; false on I/O failure.
  /// This is the SIGUSR1-safe explicit export: a handler thread may call
  /// it at any time (it takes only the store mutex and the registry
  /// registration mutex, never blocks on the compactor).
  bool DumpMetricsJson(const std::string& path) const;

  /// Histogram timing the DeltaHexastore merge-join overloads (recorded
  /// by query/merge_join.cc through this accessor).
  obs::LatencyHistogram* merge_join_histogram() const {
    return &meters_.merge_join_ns;
  }

  // -- Pinned-generation reads --------------------------------------------

  /// An immutable view of one published {base, levels, active}
  /// generation. It is a read-only TripleStore (mutators are no-ops that
  /// return false), so planners, BGP evaluation and merge joins run
  /// entirely against the pinned generation; it also mirrors the merged
  /// accessor views. Cheap to copy and safe to read from any thread
  /// while writers keep inserting and merging.
  class Snapshot final : public TripleStore {
   public:
    /// Empty view (no generation).
    Snapshot() = default;

    // Read-only view: mutators are documented no-ops.
    bool Insert(const IdTriple&) override { return false; }
    bool Erase(const IdTriple&) override { return false; }
    void BulkLoad(const IdTripleVec&) override {}

    bool Contains(const IdTriple& t) const override;
    std::size_t size() const override;
    void Scan(const IdPattern& pattern,
              const TripleSink& sink) const override;
    std::size_t MemoryBytes() const override;
    std::string name() const override { return "DeltaHexastore::Snapshot"; }
    std::uint64_t EstimateMatches(const IdPattern& pattern) const override;

    /// Store epoch the generation was published at (bumps on every
    /// merge and Clear).
    std::uint64_t epoch() const;

    /// Total staged ops (inserts + tombstones + pattern tombstones)
    /// across this generation's delta chain. Together with epoch() this
    /// forms a cheap freshness stamp: equal (epoch, staged_ops) pairs
    /// mean no mutation or merge landed in between (ops never leave a
    /// published layer except via a merge, which bumps the epoch). The
    /// plan cache keys validity fast-paths on it.
    std::uint64_t staged_ops() const;

    // Merged accessor views over the pinned generation (see the
    // DeltaHexastore accessors below for semantics).
    MergedList objects(Id s, Id p) const;
    MergedList predicates(Id s, Id o) const;
    MergedList subjects(Id p, Id o) const;
    IdVec predicates_of_subject(Id s) const;
    IdVec objects_of_subject(Id s) const;
    IdVec subjects_of_predicate(Id p) const;
    IdVec objects_of_predicate(Id p) const;
    IdVec subjects_of_object(Id o) const;
    IdVec predicates_of_object(Id o) const;

   private:
    friend class DeltaHexastore;
    explicit Snapshot(std::shared_ptr<const DeltaGeneration> gen)
        : gen_(std::move(gen)) {}

    std::shared_ptr<const DeltaGeneration> gen_;
  };

  /// Takes a consistent, up-to-date point-in-time handle (linearizable;
  /// briefly takes the store mutex to freeze and publish the current
  /// generation).
  Snapshot GetSnapshot() const;

  /// Wait-free handle to the most recently published generation. Never
  /// touches the store mutex; may trail the live store by the ops staged
  /// since the last publication (see the file comment).
  Snapshot AcquireReadHandle() const;

  // -- Merged accessor views (the paper's vectors and lists) --------------
  // Mirror Hexastore's accessors but return merging views instead of raw
  // vector pointers, so callers see staged edits. Views stay valid across
  // later mutations and merges (they pin the generation they were taken
  // from). With sealed runs present the view is materialized (owns its
  // ids); with only the active layer it is the zero-copy cursor pair.

  /// Merged object list o(s,p).
  MergedList objects(Id s, Id p) const;
  /// Merged predicate list p(s,o).
  MergedList predicates(Id s, Id o) const;
  /// Merged subject list s(p,o).
  MergedList subjects(Id p, Id o) const;

  // Header-level merged vectors (materialized: membership of a header id
  // depends on whether any merged terminal list under it is non-empty).

  /// Merged property vector p(s) of the spo index.
  IdVec predicates_of_subject(Id s) const;
  /// Merged object vector o(s) of the sop index.
  IdVec objects_of_subject(Id s) const;
  /// Merged subject vector s(p) of the pso index.
  IdVec subjects_of_predicate(Id p) const;
  /// Merged object vector o(p) of the pos index.
  IdVec objects_of_predicate(Id p) const;
  /// Merged subject vector s(o) of the osp index.
  IdVec subjects_of_object(Id o) const;
  /// Merged property vector p(o) of the ops index.
  IdVec predicates_of_object(Id o) const;

  // -- Introspection -------------------------------------------------------

  /// The compacted base store (test/bench access; reflects the state as
  /// of the last base merge). Shared ownership keeps the generation
  /// alive across later merges.
  std::shared_ptr<const Hexastore> base() const;

  /// Verifies base invariants plus the delta-layer contract for every
  /// layer of the chain (staged inserts absent from the layers beneath,
  /// tombstones present in them, size bookkeeping).
  bool CheckInvariants(std::string* error = nullptr) const;

 private:
  // All private helpers expect mu_ to be held unless noted.
  //
  // Publication protocol: internal reads happen under mu_, so they are
  // ordered against writers by the mutex alone. The moment a generation
  // escapes — GetSnapshot, a MergedList accessor, base(), a seal, or a
  // background-merge completion — the objects it references are marked
  // exposed and NEVER mutated in place again: writers clone the delta
  // (copy-on-write) and merges rebuild-and-swap the base. Lock-free
  // readers therefore only ever dereference frozen objects; the epoch
  // gate (generation.h) keeps them allocated.

  // Publishes the current {base_, levels_, delta_} through the gate.
  // `logical_size` is the triple count of the published view;
  // `include_active` controls whether the staging buffer is frozen into
  // it (excluding it keeps the buffer writer-private — no copy-on-write
  // on the next op).
  void PublishLocked(std::size_t logical_size, bool include_active) const;
  // Marks the current generation escaped and publishes it if dirty.
  void ExposeLocked() const;
  // Clones the delta iff it ever escaped (copy-on-write), so staged
  // mutations never alter a published generation.
  void EnsureDeltaWritableLocked();
  // Rebuilds the cached bottom-up layer chain (L1, L0 runs, active)
  // after any pointer in it changed.
  void RebuildChainLocked();
  // Threshold trigger: synchronous drain / leveled seal sequence, or
  // seal + wake the compactor. Also fires on memory-budget pressure.
  void MaybeCompactLocked();
  // True when a budget is set and tracked run memory plus the active
  // table exceeds it.
  bool OverBudgetLocked() const;
  // Opens a fresh staging buffer wired to the shared filter counters.
  std::shared_ptr<DeltaStore> FreshDeltaLocked() const;
  // Arms the filter on a store being sealed/adopted as a run (or counts
  // a drop under budget pressure) and registers it with the tracker.
  void ConfigureRunLocked(const DeltaStore& run, std::size_t bits_per_key);
  // Synchronous full drain: collapses L1 + L0 runs + active into the
  // base (in place when no generation references the base, otherwise
  // rebuild-and-swap). Invalidates any in-flight background merge.
  void CompactLocked();
  // Closes the staging buffer as the newest L0 run and opens a fresh
  // one.
  void SealLocked();
  // Folds every L0 run (+ current L1) into a fresh L1 run, on this
  // thread (synchronous leveled mode).
  void FoldLocked();
  // Applies one collapsed run to the base: in place when the base never
  // escaped the mutex, otherwise rebuild-and-swap.
  void ApplyRunToBaseLocked(const DeltaStore& run);
  // True when L1 is big enough (vs the base) to pay the base rebuild.
  bool L1MergeDueLocked() const;
  // True when the compactor has a job to pick up.
  bool HasCompactorWorkLocked() const;
  // Blocks until no sealed run is pending (background mode); sets the
  // drain request so the leveled compactor merges all the way down. May
  // chase re-seals by concurrent writers; used only by the rare bulk
  // paths that need a sealed-free state (BulkLoad).
  void WaitForMergeLocked(std::unique_lock<std::mutex>& lock);
  // Blocks until one more merge completes or its inputs are wiped —
  // bounded even under sustained concurrent writes (Compact's wait).
  void AwaitOneMergeLocked(std::unique_lock<std::mutex>& lock);
  // Clear body (shared by Clear and the all-wildcard ErasePattern).
  void ClearLocked();
  // Compactor thread body (owns no lock between merges).
  void MergerLoop();
  // Registers every meter, the filter counters and the gate counters
  // into registry_ (constructor only; no lock needed).
  void RegisterMeters();
  // Pushes the writer-maintained level shapes and sizes into the
  // registry gauges (GatherStats and the exports call it so a dump is
  // coherent with the stats cut).
  void RefreshGaugesLocked() const;

  mutable std::mutex mu_;
  std::shared_ptr<Hexastore> base_;
  DeltaLevels levels_;                 // sealed L0/L1 runs being merged
  std::shared_ptr<DeltaStore> delta_;  // open staging buffer
  // Cached bottom-up delta-layer chain: L1, L0 oldest→newest, delta_.
  // Rebuilt whenever any of those pointers changes; the hot paths read
  // it instead of re-deriving the chain per op.
  std::vector<const DeltaStore*> chain_;
  // True once a pointer to the current base_/delta_ object left the
  // mutex scope; cleared only when the pointer is replaced.
  mutable bool base_exposed_ = false;
  mutable bool delta_exposed_ = false;
  // Set by every mutation/structure change; cleared by PublishLocked —
  // lets repeated exposures (accessor loops) skip redundant publishes.
  mutable bool dirty_ = true;
  // Ops of delta_ included in the last publication (0 when the active
  // buffer was excluded); a merge-completion publish must re-include the
  // buffer iff this is non-zero, to keep published views monotonic.
  mutable std::size_t published_active_ops_ = 0;

  std::size_t compact_threshold_ = kDeltaCompactThresholdDefault;
  bool background_ = false;
  std::size_t l0_run_limit_ = 0;
  double l1_base_fraction_ = 0.25;
  std::size_t memory_budget_ = 0;
  // Monkey-style per-level filter sizing: hot, small L0 runs get the
  // full bit budget; the cold, big L1 run gets half (never below 2
  // bits/key once enabled).
  std::size_t filter_bits_l0_ = 0;
  std::size_t filter_bits_l1_ = 0;
  std::size_t size_ = 0;
  // Logical triples in base ∪ levels (size_ minus the active buffer's
  // net contribution): the exact size of a publication that excludes
  // the staging buffer. Updated at every seal, drain and Clear.
  std::size_t levels_size_ = 0;
  std::uint64_t epoch_ = 0;

  // Background-compaction machinery.
  std::thread merger_;
  std::condition_variable work_cv_;   // compactor waits for a seal
  std::condition_variable drain_cv_;  // waiters wait for levels_.empty()
  bool stop_ = false;
  bool drain_requested_ = false;  // leveled compactor: merge all the way down
  std::uint64_t merge_ticket_ = 0;  // bumped to invalidate in-flight merges

  // Filter + budget accounting.
  std::shared_ptr<MemoryTracker> tracker_;
  std::shared_ptr<RunFilterCounters> filter_counters_;

  // Registry-registered instruments (hexa_delta_* names; see
  // RegisterMeters in delta_hexastore.cc). The counters ARE the store's
  // bookkeeping — DeltaStats is a view over them — so they are always
  // maintained; only the latency histograms honor the HEXA_METRICS
  // toggle (via ScopedTimer). Mutable because const read paths
  // (Contains, AcquireReadHandle, the merge joins) time themselves.
  struct Meters {
    obs::Counter compactions;       // every merge (drain, bg merge, fold)
    obs::Counter seals;
    obs::Counter background_merges;
    obs::Counter merge_discards;
    obs::Counter seal_overflows;
    obs::Counter l0_merges;
    obs::Counter base_merges;
    obs::Counter merge_run_ops;
    obs::Counter base_rebuild_triples;
    obs::Counter staged_ops_total;
    obs::Counter filters_dropped;
    obs::Counter budget_seals;
    obs::Counter budget_folds;
    obs::Counter budget_base_merges;
    // Hot-path histograms sample 1-in-2^kHotPathSampleShift to keep
    // insert overhead minimal (pinned by bench/abl_obs_overhead.cc);
    // merge-phase histograms record every occurrence.
    obs::LatencyHistogram insert_ns{obs::kHotPathSampleShift};
    obs::LatencyHistogram erase_ns{obs::kHotPathSampleShift};
    obs::LatencyHistogram contains_ns{obs::kHotPathSampleShift};
    obs::LatencyHistogram handle_acquire_ns{obs::kHotPathSampleShift};
    obs::LatencyHistogram merge_join_ns{obs::kHotPathSampleShift};
    obs::LatencyHistogram seal_ns{0};
    obs::LatencyHistogram fold_ns{0};
    obs::LatencyHistogram base_merge_ns{0};
    // Gauges refreshed by RefreshGaugesLocked (level shapes + sizes).
    obs::Gauge staged_ops;
    obs::Gauge l0_runs;
    obs::Gauge l1_ops;
    obs::Gauge base_triples;
    obs::Gauge resident_bytes;
    obs::Gauge size_triples;
    obs::Gauge retire_queue_depth;
  };
  mutable obs::MetricsRegistry registry_;
  mutable obs::TraceRing trace_;
  mutable Meters meters_;

  // Declared after the instruments it points at (destroyed first).
  mutable GenerationGate gate_;
};

}  // namespace hexastore

#endif  // HEXASTORE_DELTA_DELTA_HEXASTORE_H_

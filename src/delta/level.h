// Leveled delta runs: the sealed hierarchy between the active staging
// buffer and the compacted base (the LSM discipline — small sorted runs
// promoted level-by-level instead of monolithic rebuilds).
//
// When the active buffer of a leveled DeltaHexastore reaches its
// threshold it is sealed into an immutable **L0 run** (two pointer
// swaps; nothing merges). Once `DeltaOptions::l0_run_limit` runs have
// accumulated, the compactor folds them — newest over older — together
// with the current L1 run into a single fresh **L1 run** (cost
// proportional to the staged ops, never to the base). Only when L1
// crosses `DeltaOptions::l1_base_fraction` of the base does the
// expensive L1→base merge rebuild the six permutation indexes.
//
// The read chain is therefore  active ▷ L0 (newest first) ▷ L1 ▷ base,
// each layer applying its point and pattern tombstones to everything
// beneath it (see docs/delta-levels.md for the verdict table).
//
// Every run in a DeltaLevels is frozen: once a DeltaStore enters the
// hierarchy it is never mutated again. Its lazy read caches may still be
// built on first use — DeltaStore serializes that internally — so mutex
// readers, lock-free snapshot readers and the off-thread fold merges can
// all read the same run concurrently.
#ifndef HEXASTORE_DELTA_LEVEL_H_
#define HEXASTORE_DELTA_LEVEL_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "delta/delta_store.h"

namespace hexastore {

/// The immutable sealed-run hierarchy of a leveled DeltaHexastore:
/// any number of L0 runs over at most one L1 run. `l0` is ordered
/// oldest-first, so the bottom-up layer chain is simply
/// `l1, l0[0], …, l0.back()` (the newest run sits directly beneath the
/// active buffer).
struct DeltaLevels {
  /// Sealed staging buffers awaiting an L0→L1 fold, oldest first.
  std::vector<std::shared_ptr<const DeltaStore>> l0;
  /// The single folded run beneath L0; null when empty.
  std::shared_ptr<const DeltaStore> l1;

  /// True iff no sealed run exists at any level.
  bool empty() const { return l0.empty() && l1 == nullptr; }
  /// Number of sealed runs across both levels.
  std::size_t run_count() const { return l0.size() + (l1 == nullptr ? 0 : 1); }
  /// Total staged point ops across all runs.
  std::size_t op_count() const;
  /// Staged point ops in the L0 runs alone.
  std::size_t l0_op_count() const;
  /// Approximate heap bytes across all runs.
  std::size_t MemoryBytes() const;
  /// Appends the runs bottom-up (L1 first, then L0 oldest→newest).
  void AppendBottomUp(std::vector<const DeltaStore*>* chain) const;
  /// Drops every run.
  void clear() {
    l0.clear();
    l1.reset();
  }
};

/// Merges `upper` onto `lower`, both staged relative to the same
/// beneath-state: returns the single run R with
///   layer(S, R) == layer(layer(S, lower), upper)
/// for every store S the pair was consistent with. Point ops on the
/// same triple annihilate or combine (insert-over-tombstone of a base
/// triple cancels both; tombstone-over-insert drops both), upper
/// pattern tombstones subsume lower point ops on their predicate, and
/// the pattern-predicate sets union. Reads both inputs only through
/// pure accessors, so it is safe to run off-thread on frozen runs.
std::shared_ptr<DeltaStore> MergeDeltaLayers(const DeltaStore& lower,
                                             const DeltaStore& upper);

/// Folds L0 runs (oldest-first, as stored in DeltaLevels::l0) onto an
/// optional L1 run into the replacement L1 run. When the fold is a
/// single run over no L1 the run is returned as-is (no copy).
/// `merged_ops_out`, when non-null, accumulates the staged ops written
/// by the pairwise merges (write-amplification accounting).
std::shared_ptr<const DeltaStore> FoldRuns(
    const std::shared_ptr<const DeltaStore>& l1,
    const std::vector<std::shared_ptr<const DeltaStore>>& l0_oldest_first,
    std::uint64_t* merged_ops_out = nullptr);

}  // namespace hexastore

#endif  // HEXASTORE_DELTA_LEVEL_H_

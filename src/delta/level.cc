#include "delta/level.h"

#include <algorithm>

namespace hexastore {

std::size_t DeltaLevels::op_count() const {
  std::size_t n = l1 == nullptr ? 0 : l1->op_count();
  return n + l0_op_count();
}

std::size_t DeltaLevels::l0_op_count() const {
  std::size_t n = 0;
  for (const auto& run : l0) {
    n += run->op_count();
  }
  return n;
}

std::size_t DeltaLevels::MemoryBytes() const {
  std::size_t bytes = l1 == nullptr ? 0 : l1->MemoryBytes();
  for (const auto& run : l0) {
    bytes += run->MemoryBytes();
  }
  return bytes;
}

void DeltaLevels::AppendBottomUp(std::vector<const DeltaStore*>* chain) const {
  if (l1 != nullptr) {
    chain->push_back(l1.get());
  }
  for (const auto& run : l0) {
    chain->push_back(run.get());
  }
}

std::shared_ptr<DeltaStore> MergeDeltaLayers(const DeltaStore& lower,
                                             const DeltaStore& upper) {
  auto merged = std::make_shared<DeltaStore>();
  // The merged run reports filter effectiveness to the same sink as its
  // inputs (the owner arms its filter after adopting the result).
  merged->set_filter_counters(upper.filter_counters() != nullptr
                                  ? upper.filter_counters()
                                  : lower.filter_counters());

  // Pattern predicates union: an upper pattern erases lower staged state
  // and beneath-state alike; a lower pattern keeps suppressing whatever
  // the upper layer did not explicitly re-stage.
  for (Id p : lower.pattern_erased_predicates()) {
    merged->AdoptPatternErase(p);
  }
  for (Id p : upper.pattern_erased_predicates()) {
    merged->AdoptPatternErase(p);
  }

  // Lower ops survive unless the upper layer staged a verdict for the
  // same triple (resolved in the upper pass below) or pattern-erased the
  // predicate (inserts die, tombstones are subsumed — the beneath copy
  // is suppressed by the pattern either way).
  lower.ForEachOp([&](const IdTriple& t, DeltaOp op) {
    if (upper.HasOp(t)) {
      return;
    }
    if (upper.PatternErased(t.p)) {
      return;
    }
    merged->AdoptOp(t, op);
  });

  // Upper ops, combined with the lower op on the same triple when one
  // exists. The layer invariants (staged inserts absent beneath unless
  // pattern-re-inserted; tombstones present beneath and never under a
  // pattern) make each pairing unambiguous:
  //   lower insert + upper tombstone → annihilate (the triple was never
  //       in the beneath-state, or its copy is pattern-suppressed)
  //   lower tombstone + upper insert → annihilate (the beneath copy
  //       shows through again) — unless the upper layer pattern-erased
  //       the predicate, in which case the insert is a re-insert that
  //       must survive above the pattern
  //   lower insert + upper insert → the upper re-insert wins
  upper.ForEachOp([&](const IdTriple& t, DeltaOp op) {
    switch (lower.LookupOp(t)) {
      case DeltaStore::OpLookup::kNone:
        merged->AdoptOp(t, op);
        return;
      case DeltaStore::OpLookup::kInsert:
        if (op == DeltaOp::kInsert) {
          merged->AdoptOp(t, op);
        }
        return;
      case DeltaStore::OpLookup::kTombstone:
        if (op == DeltaOp::kInsert && upper.PatternErased(t.p)) {
          merged->AdoptOp(t, op);
        }
        return;
    }
  });
  return merged;
}

std::shared_ptr<const DeltaStore> FoldRuns(
    const std::shared_ptr<const DeltaStore>& l1,
    const std::vector<std::shared_ptr<const DeltaStore>>& l0_oldest_first,
    std::uint64_t* merged_ops_out) {
  std::shared_ptr<const DeltaStore> folded = l1;
  for (const auto& run : l0_oldest_first) {
    if (folded == nullptr) {
      folded = run;  // single-run fold over nothing: adopt as-is
      continue;
    }
    std::shared_ptr<DeltaStore> next = MergeDeltaLayers(*folded, *run);
    if (merged_ops_out != nullptr) {
      *merged_ops_out += next->op_count();
    }
    folded = std::move(next);
  }
  return folded;
}

}  // namespace hexastore

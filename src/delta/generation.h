// Immutable store generations and their RCU-style publication gate.
//
// A DeltaGeneration is one frozen, internally consistent view of a
// DeltaHexastore:
//
//   base    — the compacted sextuple-indexed store
//   levels  — the sealed run hierarchy (L0 runs over an L1 run, see
//             delta/level.h) closed to writers; empty when nothing is
//             sealed at publication time
//   active  — a frozen image of the staging buffer open at publication
//             time (null when it was empty or not included)
//
// The logical contents are
//   layer(…layer(layer(base, L1), L0 oldest)…, active)
// where layer(S, d) = (S ∖ pattern-erased ∖ tombstones) ∪ staged
// inserts — each delta layer applies its tombstones to everything
// beneath it. `chain` pre-materializes that bottom-up layer order so
// readers never re-derive it. Every object reachable from a published
// generation is immutable: the owning store copy-on-writes its staging
// buffer and rebuilds-and-swaps its base instead of mutating anything a
// generation references.
//
// GenerationGate is the publication point. The writer (serialized by the
// owning store's mutex) publishes a new generation and retires the old
// one onto a retire list tagged with the retire epoch; readers acquire
// the current generation wait-free — an EpochManager section protects
// the window between loading the raw pointer and taking shared
// ownership, and the grace-period check keeps the retire list from
// dropping its reference while any reader is still inside that window.
// Once acquired, a handle is an ordinary shared_ptr: it pins exactly its
// own generation (holding it across later publications never blocks the
// writer or reclamation of other generations).
#ifndef HEXASTORE_DELTA_GENERATION_H_
#define HEXASTORE_DELTA_GENERATION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/stats.h"
#include "delta/epoch.h"
#include "delta/level.h"
#include "obs/metrics.h"

namespace hexastore {
namespace obs {
class TraceRing;
}  // namespace obs

class Hexastore;
class DeltaStore;

/// One immutable published view: {base, levels, active} plus the logical
/// triple count and the store epoch it was taken at.
struct DeltaGeneration
    : public std::enable_shared_from_this<DeltaGeneration> {
  std::shared_ptr<const Hexastore> base;     ///< null ⇒ empty base
  DeltaLevels levels;                        ///< sealed L0/L1 runs
  std::shared_ptr<const DeltaStore> active;  ///< null ⇒ no staged overlay
  /// The delta layers bottom-up (L1, L0 oldest→newest, active when
  /// included) — raw pointers into the owning members above, valid for
  /// the generation's lifetime. Built once at publication.
  std::vector<const DeltaStore*> chain;
  std::size_t size = 0;    ///< logical triples in this view
  std::uint64_t epoch = 0; ///< store epoch at publication
};

/// Single-writer / many-reader publication point for generations.
///
/// Publish/Reclaim and the stats snapshot must be externally serialized
/// (the owning store calls them under its mutex); Acquire is wait-free
/// and safe from any thread at any time.
class GenerationGate {
 public:
  GenerationGate() = default;
  GenerationGate(const GenerationGate&) = delete;
  GenerationGate& operator=(const GenerationGate&) = delete;
  ~GenerationGate();

  /// Publishes `gen` as the current generation, retires the previous one
  /// and reclaims every retired generation whose grace period has
  /// passed. `gen` must be fully frozen before the call.
  void Publish(std::shared_ptr<const DeltaGeneration> gen);

  /// Wait-free snapshot of the current generation; null before the first
  /// Publish.
  std::shared_ptr<const DeltaGeneration> Acquire() const;

  /// Drops every retired generation whose grace period has passed
  /// (Publish does this too; exposed for tests and stats). With
  /// deferred reclaim enabled the generations are moved to an internal
  /// stash instead of being destroyed inline.
  void Reclaim();

  /// Defer destruction of reclaimed generations: Reclaim() stashes them
  /// and TakeReclaimed() hands the stash to the caller, which destroys
  /// it off the owning store's mutex (freeing a superseded base or a
  /// large folded run inline would stall writers for the teardown
  /// time). The owning store enables this when a compactor thread
  /// exists to do the draining.
  void set_deferred_reclaim(bool deferred) { deferred_reclaim_ = deferred; }
  /// Takes ownership of every stashed reclaimed generation
  /// (writer-serialized, like Publish/Reclaim).
  std::vector<std::shared_ptr<const DeltaGeneration>> TakeReclaimed();

  /// Epoch/generation counters (see EpochStats).
  EpochStats Stats() const;

  /// Registers the gate's counters into `registry` (hexa_epoch_* names)
  /// and makes Publish/Reclaim record lifecycle events into `trace`.
  /// Either may be null. Called once at store construction, before any
  /// publication; both objects must outlive the gate's last use.
  void BindObservability(obs::MetricsRegistry* registry,
                         obs::TraceRing* trace);

 private:
  struct Retired {
    std::shared_ptr<const DeltaGeneration> gen;
    std::uint64_t retired_at;
  };

  // Raw pointer readers acquire through; always equals
  // current_owner_.get().
  std::atomic<const DeltaGeneration*> current_{nullptr};
  std::shared_ptr<const DeltaGeneration> current_owner_;
  std::vector<Retired> retired_;
  bool deferred_reclaim_ = false;
  std::vector<std::shared_ptr<const DeltaGeneration>> reclaimed_stash_;
  mutable EpochManager epochs_;

  // Counters (registry-registrable; see BindObservability).
  // handles_acquired_ is bumped by readers; the rest are bumped only by
  // the serialized writer but read concurrently by exporters.
  mutable obs::Counter handles_acquired_;
  obs::Counter published_;
  obs::Counter retired_count_;
  obs::Counter reclaimed_;
  obs::TraceRing* trace_ = nullptr;
};

}  // namespace hexastore

#endif  // HEXASTORE_DELTA_GENERATION_H_

// Epoch-based reclamation for RCU-style generation pointers.
//
// Readers enter a short critical *section* around the acquire of a
// generation pointer: claim a slot, announce the current global epoch in
// it, validate the announcement, and only then dereference the pointer.
// Writers retire superseded objects tagged with the epoch at which they
// were unpublished; a retired object may be reclaimed once every active
// reader section announces a strictly later epoch (the grace period) —
// any reader still inside the acquire window for the old pointer is, by
// the validation step, announced at an epoch no later than the retire
// epoch and therefore blocks reclamation.
//
// The section is wait-free after the slot claim (two atomic stores and
// two loads); the claim itself is a bounded scan over a fixed slot array
// with a spin-yield fallback when every slot is transiently held —
// sections last microseconds (they cover only the pointer acquire, not
// the read of the generation, which is protected by a refcount the
// section makes safe to take), so the fallback is effectively unreached.
//
// Thread-safety contract (see docs/architecture.md, "Who owns which
// mutex / epoch"): writers (Advance / MinActiveEpoch / counter reads)
// must be externally serialized — GenerationGate calls them under the
// owning store's mutex; readers never synchronize with each other or
// with writers through anything but the atomics here — in particular,
// never through the owning store's mutex. Nothing in this file blocks:
// the reader section is wait-free after the slot claim, and the writer
// side is a handful of atomic operations.
#ifndef HEXASTORE_DELTA_EPOCH_H_
#define HEXASTORE_DELTA_EPOCH_H_

#include <atomic>
#include <cstdint>

namespace hexastore {

/// Reader-epoch registry: a fixed array of announcement slots plus the
/// global epoch counter.
class EpochManager {
 public:
  /// Slot value meaning "no reader section active in this slot".
  static constexpr std::uint64_t kQuiescent = 0;
  /// Announcement slots; also the maximum number of concurrent reader
  /// sections before the claim scan starts spinning.
  static constexpr int kSlots = 64;

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

 private:
  struct alignas(64) Slot {
    // kQuiescent, or the epoch announced by the section in this slot.
    std::atomic<std::uint64_t> epoch{kQuiescent};
    // Claim flag; a slot is reusable the moment its owner clears it.
    std::atomic<bool> claimed{false};
  };

 public:

  /// RAII reader section. While alive, the global epoch announced at
  /// construction (or later) cannot pass the grace-period check, so
  /// anything retired at or after that epoch stays allocated.
  class Section {
   public:
    explicit Section(EpochManager& manager);
    ~Section();
    Section(const Section&) = delete;
    Section& operator=(const Section&) = delete;

   private:
    Slot* slot_;
  };

  /// Bumps the global epoch (writer side; externally serialized).
  /// Returns the epoch that was current *before* the bump — the tag to
  /// retire objects unpublished by the same writer step. seq_cst on
  /// purpose: the announce-and-validate argument needs the bump in the
  /// same total order as the readers' seq_cst announce/validate pair
  /// and the writer's slot scan — acq_rel would let a weakly-ordered
  /// machine pass both sides' checks simultaneously.
  std::uint64_t Advance() {
    return global_.fetch_add(1, std::memory_order_seq_cst);
  }

  /// Current global epoch.
  std::uint64_t current() const {
    return global_.load(std::memory_order_acquire);
  }

  /// Smallest epoch announced by any active reader section, or
  /// UINT64_MAX when every slot is quiescent. An object retired at epoch
  /// E may be reclaimed iff MinActiveEpoch() > E.
  std::uint64_t MinActiveEpoch() const;

  /// Number of slots currently inside a reader section (diagnostic).
  int ActiveSections() const;

 private:
  // Epochs start at 1 so kQuiescent (0) can never be a real announcement.
  std::atomic<std::uint64_t> global_{1};
  Slot slots_[kSlots];
};

}  // namespace hexastore

#endif  // HEXASTORE_DELTA_EPOCH_H_

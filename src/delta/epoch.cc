#include "delta/epoch.h"

#include <cstdint>
#include <thread>

namespace hexastore {

EpochManager::Section::Section(EpochManager& manager) {
  // Claim a slot: bounded scan with exchange; sections are so short that
  // finding all kSlots held means kSlots other threads are mid-acquire
  // right now — yield and rescan.
  slot_ = nullptr;
  for (int spin = 0; slot_ == nullptr; ++spin) {
    for (Slot& candidate : manager.slots_) {
      if (!candidate.claimed.load(std::memory_order_relaxed) &&
          !candidate.claimed.exchange(true, std::memory_order_acquire)) {
        slot_ = &candidate;
        break;
      }
    }
    if (slot_ == nullptr && spin > 16) {
      std::this_thread::yield();
    }
  }
  // Announce-and-validate loop: publishing epoch e is only safe if the
  // global epoch is still e when the announcement becomes visible —
  // otherwise a writer may already have scanned past this slot and
  // reclaimed objects retired at e. The seq_cst store/load pair gives
  // the store-load ordering the argument needs.
  std::uint64_t e = manager.global_.load(std::memory_order_acquire);
  while (true) {
    slot_->epoch.store(e, std::memory_order_seq_cst);
    const std::uint64_t now = manager.global_.load(std::memory_order_seq_cst);
    if (now == e) {
      break;
    }
    e = now;
  }
}

EpochManager::Section::~Section() {
  // Quiesce before unclaiming: a reclaimed slot must never still carry a
  // live announcement.
  slot_->epoch.store(kQuiescent, std::memory_order_release);
  slot_->claimed.store(false, std::memory_order_release);
}

std::uint64_t EpochManager::MinActiveEpoch() const {
  std::uint64_t min = UINT64_MAX;
  for (const Slot& slot : slots_) {
    const std::uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
    if (e != kQuiescent && e < min) {
      min = e;
    }
  }
  return min;
}

int EpochManager::ActiveSections() const {
  int active = 0;
  for (const Slot& slot : slots_) {
    if (slot.epoch.load(std::memory_order_acquire) != kQuiescent) {
      ++active;
    }
  }
  return active;
}

}  // namespace hexastore

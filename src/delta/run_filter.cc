#include "delta/run_filter.h"

#include <algorithm>

namespace hexastore {
namespace {

// splitmix64 finalizer — same mixing family as IdTripleHash so the bit
// positions decorrelate even for the dense sequential ids a dictionary
// hands out.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Each of the seven key classes gets its own salt so e.g. the `s` prefix
// of one triple cannot alias the `o` prefix of another.
enum class KeyClass : std::uint64_t {
  kS = 0x53,
  kP = 0x50,
  kO = 0x4f,
  kSP = 0x5350,
  kPO = 0x504f,
  kOS = 0x4f53,
  kSPO = 0x53504f,
};

std::uint64_t Hash1(KeyClass c, Id a) {
  return Mix(Mix(static_cast<std::uint64_t>(c)) ^ Mix(a));
}
std::uint64_t Hash2(KeyClass c, Id a, Id b) {
  return Mix(Hash1(c, a) ^ Mix(b + 0x2545f4914f6cdd1dull));
}
std::uint64_t Hash3(KeyClass c, Id a, Id b, Id d) {
  return Mix(Hash2(c, a, b) ^ Mix(d + 0x6a09e667f3bcc909ull));
}

}  // namespace

RunFilter::RunFilter(std::size_t op_count, std::size_t bits_per_key) {
  // Seven indexed key classes per staged op.
  const std::size_t keys = std::max<std::size_t>(1, op_count) * 7;
  const std::size_t want_bits =
      std::max<std::size_t>(64, keys * std::max<std::size_t>(1, bits_per_key));
  num_bits_ = (want_bits + 63) / 64 * 64;
  bits_.assign(num_bits_ / 64, 0);
  // k = ln(2) * bits/key, clamped to a sane range.
  num_hashes_ = std::max<std::size_t>(
      1, std::min<std::size_t>(16, (bits_per_key * 693 + 500) / 1000));
}

void RunFilter::AddKey(std::uint64_t key_hash) {
  const std::uint64_t h2 = (key_hash >> 32) | 1;
  std::uint64_t h = key_hash;
  for (std::size_t i = 0; i < num_hashes_; ++i) {
    const std::size_t bit = h % num_bits_;
    bits_[bit / 64] |= (std::uint64_t{1} << (bit % 64));
    h += h2;
  }
}

bool RunFilter::TestKey(std::uint64_t key_hash) const {
  const std::uint64_t h2 = (key_hash >> 32) | 1;
  std::uint64_t h = key_hash;
  for (std::size_t i = 0; i < num_hashes_; ++i) {
    const std::size_t bit = h % num_bits_;
    if ((bits_[bit / 64] & (std::uint64_t{1} << (bit % 64))) == 0) {
      return false;
    }
    h += h2;
  }
  return true;
}

void RunFilter::AddTriple(const IdTriple& t) {
  AddKey(Hash1(KeyClass::kS, t.s));
  AddKey(Hash1(KeyClass::kP, t.p));
  AddKey(Hash1(KeyClass::kO, t.o));
  AddKey(Hash2(KeyClass::kSP, t.s, t.p));
  AddKey(Hash2(KeyClass::kPO, t.p, t.o));
  AddKey(Hash2(KeyClass::kOS, t.o, t.s));
  AddKey(Hash3(KeyClass::kSPO, t.s, t.p, t.o));
}

bool RunFilter::MayContain(const IdTriple& t) const {
  return TestKey(Hash3(KeyClass::kSPO, t.s, t.p, t.o));
}

bool RunFilter::MayContainPrefix(const IdPattern& q) const {
  // Route every bound-position combination to the hexastore prefix that
  // covers it (s+o routes through the osp ordering, matching ScanInserts).
  switch (q.bound_count()) {
    case 0:
      return true;
    case 1:
      if (q.has_s()) return TestKey(Hash1(KeyClass::kS, q.s));
      if (q.has_p()) return TestKey(Hash1(KeyClass::kP, q.p));
      return TestKey(Hash1(KeyClass::kO, q.o));
    case 2:
      if (q.has_s() && q.has_p()) {
        return TestKey(Hash2(KeyClass::kSP, q.s, q.p));
      }
      if (q.has_p() && q.has_o()) {
        return TestKey(Hash2(KeyClass::kPO, q.p, q.o));
      }
      return TestKey(Hash2(KeyClass::kOS, q.o, q.s));
    default:
      return TestKey(Hash3(KeyClass::kSPO, q.s, q.p, q.o));
  }
}

}  // namespace hexastore

// Hash-backed staging buffer of pending mutations over a base Hexastore
// (LSM-style write path; cf. the RocksDB memtable + tombstone design).
//
// Point writes land here in O(1) instead of paying the O(log + shift)
// mutation in all six sorted views of the base store. Inserts are staged
// as positive entries, erases of base-resident triples as tombstones; a
// compaction later drains both into the base in one sorted merge.
//
// Besides point ops the store holds predicate-level *pattern tombstones*
// (StagePatternErase): one O(1) entry erases every base triple with that
// predicate, the fast path for bulk "erase all (?, p, ?)" deletes that
// would otherwise stage one tombstone per match.
//
// The invariants that keep the merged read path simple, relied on by
// DeltaHexastore and the merging iterators (P = pattern-erased preds):
//
//   * a staged insert whose predicate is not in P is never present in
//     the base (adds disjoint); an insert with predicate in P may be a
//     re-insert of a pattern-suppressed base triple
//   * a point tombstone is always present in the base and its predicate
//     is never in P (removes subset, pattern subsumes points)
//
// so the logical contents are always
//   (base ∖ {t : t.p ∈ P} ∖ tombstones) ∪ adds
// with no overlap ambiguity (op-table entries win over P in Lookup).
//
// Write path: ops live in a flat open-addressing table (one linear-probe
// access, no per-op node allocation) so staging stays allocation-free in
// steady state — this is where the insert-throughput win over the
// sextuple-indexed base comes from.
//
// Read path: the same three pair-keyed terminal-list families as the
// base store's TerminalListPool (o(s,p), p(s,o), s(p,o)), split into
// sorted `adds` / `removes` vectors, are derived LAZILY from the op
// table the first time a merged accessor view needs them and cached
// until the next mutation. These side lists are what lets a merged view
// (MergedListCursor) walk base-list ∪ adds ∖ removes in one linear pass.
#ifndef HEXASTORE_DELTA_DELTA_STORE_H_
#define HEXASTORE_DELTA_DELTA_STORE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "delta/run_filter.h"
#include "index/sorted_vec.h"
#include "index/terminal_pool.h"
#include "rdf/triple.h"
#include "util/common.h"
#include "util/memory_tracker.h"

namespace hexastore {

/// Hash for IdTriple (splitmix64-style mix of all three ids).
struct IdTripleHash {
  std::size_t operator()(const IdTriple& t) const {
    std::uint64_t x = t.s * 0x9e3779b97f4a7c15ULL ^
                      (t.p + 0x7f4a7c15ULL) * 0xbf58476d1ce4e5b9ULL ^
                      (t.o + 0x94d049bb133111ebULL);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

/// Kind of a staged operation.
enum class DeltaOp : std::uint8_t {
  kInsert = 0,     ///< triple added on top of the base
  kTombstone = 1,  ///< base-resident triple deleted
};

/// Pending sorted edits of one terminal list, keyed like the base pool.
struct DeltaList {
  IdVec adds;      ///< third-role ids staged for insertion
  IdVec removes;   ///< third-role ids tombstoned out of the base list
};

/// Unsorted staging buffer of inserts and tombstones.
///
/// Copyable on purpose: DeltaHexastore clones it (copy-on-write) when a
/// snapshot handle still references the pre-mutation state.
///
/// Thread-safety: mutators must be externally serialized against
/// everything else (DeltaHexastore calls them under its mutex). On a
/// frozen (never-again-mutated) instance every read is safe from any
/// thread: Lookup and ForEachOp are pure, and the lazily-caching read
/// helpers (FindLists, ForEachList, ScanInserts) serialize their one-off
/// cache build internally (double-checked under cache_mu_), so sealed
/// runs can be read concurrently by mutex readers, lock-free snapshot
/// readers and the compactor without any pre-freezing.
class DeltaStore {
 public:
  DeltaStore() = default;
  ~DeltaStore();

  /// Copies only the op table, pattern tombstones, counters and the
  /// shared filter-counter sink; the lazy caches (and any built filter)
  /// are left invalid on the copy (the cloning writer mutates next,
  /// which would discard them anyway).
  DeltaStore(const DeltaStore& other)
      : filter_counters_(other.filter_counters_),
        slots_(other.slots_),
        used_(other.used_),
        inserts_(other.inserts_),
        tombstones_(other.tombstones_),
        pattern_preds_(other.pattern_preds_) {
    lists_valid_.store(other.op_count() == 0, std::memory_order_relaxed);
    runs_valid_.store(other.op_count() == 0, std::memory_order_relaxed);
  }
  DeltaStore& operator=(const DeltaStore&) = delete;

  /// Stages `t` as an insert; `base_present` says whether the base store
  /// already contains `t`. Returns true iff the logical store gains the
  /// triple (mirrors TripleStore::Insert).
  bool StageInsert(const IdTriple& t, bool base_present);

  /// Stages `t` as a tombstone; returns true iff the logical store loses
  /// the triple (mirrors TripleStore::Erase).
  bool StageErase(const IdTriple& t, bool base_present);

  /// Bookkeeping of one pattern erase: how many staged point ops it
  /// subsumed (dropped from the table) and whether the predicate was new.
  struct PatternEraseEffect {
    std::size_t dropped_inserts = 0;
    std::size_t dropped_tombstones = 0;
    bool newly_added = false;
  };

  /// Stages a predicate-level pattern tombstone: every base triple with
  /// predicate `p` becomes logically absent, and every staged point op
  /// with that predicate is dropped (inserts erased, tombstones
  /// subsumed). O(op table), independent of how many base triples match.
  PatternEraseEffect StagePatternErase(Id p);

  /// True iff predicate `p` is pattern-tombstoned.
  bool PatternErased(Id p) const { return SortedContains(pattern_preds_, p); }
  /// True iff any pattern tombstone is staged.
  bool HasPatternErases() const { return !pattern_preds_.empty(); }
  /// The pattern-tombstoned predicates, sorted ascending.
  const IdVec& pattern_erased_predicates() const { return pattern_preds_; }

  /// Overlay verdict for a membership test.
  enum class Presence : std::uint8_t {
    kInserted,  ///< staged insert: logically present
    kErased,    ///< tombstoned: logically absent
    kUnknown,   ///< not staged: defer to the base store
  };
  Presence Lookup(const IdTriple& t) const;

  /// Lookup that consults the run's prefix Bloom filter first (when one
  /// is enabled and built): a filter miss proves there is no op-table
  /// entry for `t`, so the verdict short-circuits to the pattern-erase
  /// check without probing the table. NOTE the semantics: a filter skip
  /// means "no point op", never "no pattern tombstone" — pattern
  /// tombstones live outside the filtered key space and are always
  /// consulted. Identical observable results to Lookup.
  Presence FilteredLookup(const IdTriple& t) const;

  /// Raw op-table probe, ignoring pattern tombstones (unlike Lookup,
  /// which folds them into the verdict). Used by the level-merge to
  /// resolve op pairs on the same triple.
  enum class OpLookup : std::uint8_t { kNone, kInsert, kTombstone };
  OpLookup LookupOp(const IdTriple& t) const;
  /// True iff the op table holds an entry for `t`.
  bool HasOp(const IdTriple& t) const { return LookupOp(t) != OpLookup::kNone; }

  // -- Merge-construction primitives (level.cc) ---------------------------
  // Bypass the staging rules: callers (MergeDeltaLayers) guarantee the
  // layer invariants hold for the finished store. Both must only be used
  // while building a store no reader has seen yet.

  /// Installs `op` for `t` directly; `t` must not already be staged.
  void AdoptOp(const IdTriple& t, DeltaOp op);
  /// Adds a pattern tombstone without subsuming any staged point op.
  void AdoptPatternErase(Id p) { SortedInsert(&pattern_preds_, p); }

  /// Pending edits of the terminal list of `family` keyed by (a, b), or
  /// nullptr when the delta does not touch that list. Builds the cached
  /// side lists on first use after a mutation.
  const DeltaList* FindLists(ListFamily family, Id a, Id b) const;

  /// Emits every staged insert matching `pattern` to `sink`, grouped by
  /// the pattern's bound prefix: O(log + matches) once the sorted runs
  /// are cached (instead of a full op-table walk per scan).
  void ScanInserts(const IdPattern& pattern,
                   const std::function<void(const IdTriple&)>& sink) const;

  /// Number of staged inserts matching `pattern` (planner estimates).
  std::uint64_t CountInserts(const IdPattern& pattern) const;

  /// Pre-builds every lazy cache (sorted runs + side lists). Purely an
  /// optimization — the builds are internally synchronized, so readers
  /// of a frozen instance are safe either way; the compactor calls this
  /// off the store mutex to spare the first reader the build cost.
  void Freeze() const;

  /// Calls `fn(triple, op)` for every staged operation (table order).
  template <typename Fn>
  void ForEachOp(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.state == SlotState::kFull) {
        fn(slot.triple, slot.op);
      }
    }
  }

  /// Calls `fn(key, lists)` for every touched terminal list of `family`.
  /// Builds the cached side lists on first use after a mutation.
  template <typename Fn>
  void ForEachList(ListFamily family, Fn&& fn) const {
    EnsureSideLists();
    for (const auto& [key, lists] : lists_[static_cast<int>(family)]) {
      fn(key, lists);
    }
  }

  /// Staged inserts, sorted in (s, p, o) order (compaction input).
  IdTripleVec SortedInserts() const;
  /// Staged tombstones, sorted in (s, p, o) order (compaction input).
  IdTripleVec SortedTombstones() const;

  std::size_t insert_count() const { return inserts_; }
  std::size_t tombstone_count() const { return tombstones_; }
  /// Total staged operations (compaction-threshold metric).
  std::size_t op_count() const { return inserts_ + tombstones_; }
  /// Net triple-count contribution of the point ops: inserts minus
  /// tombstones (pattern tombstones are accounted by the owner, which
  /// knows the base).
  std::ptrdiff_t size_delta() const {
    return static_cast<std::ptrdiff_t>(inserts_) -
           static_cast<std::ptrdiff_t>(tombstones_);
  }
  /// True iff nothing is staged — no point ops and no pattern
  /// tombstones. Compaction may only be skipped when this holds.
  bool empty() const { return op_count() == 0 && pattern_preds_.empty(); }

  /// Approximate heap bytes (op table + cached side lists + filter).
  std::size_t MemoryBytes() const;

  /// Heap bytes of just the op table — O(1), callable without locks by
  /// the owner's budget checks on the active (unfrozen) buffer.
  std::size_t TableBytes() const { return slots_.capacity() * sizeof(Slot); }

  // -- Prefix filter (sealed runs) ----------------------------------------

  /// Arms the lazy prefix Bloom filter at `bits_per_key` bits per key
  /// class. Called by the owner when sealing this store into a run (or
  /// adopting a merge result); the filter itself is built alongside the
  /// sorted caches on first probe (or by Freeze). Never called on a
  /// buffer that will be mutated again — a mutation drops the filter.
  void EnableFilter(std::size_t bits_per_key) const;

  /// The built filter, or nullptr when disabled / not yet built. Builds
  /// lazily (double-checked under cache_mu_) when armed.
  const RunFilter* MaybeFilter() const;

  /// Shared sink for probe/skip/false-positive counts; propagated to
  /// copies and (by the owner) to merge results.
  void set_filter_counters(std::shared_ptr<RunFilterCounters> counters) {
    filter_counters_ = std::move(counters);
  }
  const std::shared_ptr<RunFilterCounters>& filter_counters() const {
    return filter_counters_;
  }

  // -- Resident-memory tracking -------------------------------------------

  /// Registers this store's analytic footprint with `tracker` and keeps
  /// it current as lazy caches build. The destructor returns every
  /// tracked byte, so accounting stays balanced even when the last
  /// reference dies on a deferred-reclaim path off the owner's mutex.
  /// Idempotent; a second tracker is ignored.
  void TrackMemory(std::shared_ptr<MemoryTracker> tracker) const;

  /// Drops every staged operation.
  void Clear();

 private:
  enum class SlotState : std::uint8_t {
    kEmpty = 0,  ///< never used on this probe chain
    kFull,       ///< holds a staged op
    kDead,       ///< held an op that was cancelled (probe chains continue)
  };

  struct Slot {
    IdTriple triple;
    SlotState state = SlotState::kEmpty;
    DeltaOp op = DeltaOp::kInsert;
  };

  using ListMap = std::unordered_map<IdPair, DeltaList, IdPairHash>;

  // Probe for `t`: the slot holding it, or nullptr. `insert_at` (when
  // non-null) receives the slot a new entry for `t` should occupy.
  Slot* Probe(const IdTriple& t, Slot** insert_at) const;
  // Grows/rehashes the table so one more op always fits.
  void ReserveForOneMore();
  // Rebuilds the three side-list families from the op table
  // (double-checked under cache_mu_; safe from any thread on a frozen
  // instance).
  void EnsureSideLists() const;
  // Rebuilds the three sorted insert runs from the op table (same
  // double-checked discipline).
  void EnsureSortedRuns() const;
  // Drops all lazy caches after a mutation (mutator context: externally
  // serialized against every reader). A built filter is dropped too —
  // it only ever exists on sealed runs, so this is a safety net for the
  // clone-then-mutate path, not a hot one.
  void InvalidateCaches() {
    lists_valid_.store(false, std::memory_order_release);
    runs_valid_.store(false, std::memory_order_release);
    filter_ptr_.store(nullptr, std::memory_order_relaxed);
    filter_bits_.store(0, std::memory_order_relaxed);
  }
  // Re-registers the current footprint with the tracker (caller holds
  // cache_mu_); no-op without a tracker.
  void SyncTrackedBytesLocked() const;
  // MemoryBytes body; caller holds cache_mu_.
  std::size_t MemoryBytesLocked() const;

  std::shared_ptr<RunFilterCounters> filter_counters_;

  mutable std::vector<Slot> slots_;  // power-of-two size; empty at start
  std::size_t used_ = 0;             // kFull + kDead slots
  std::size_t inserts_ = 0;
  std::size_t tombstones_ = 0;
  IdVec pattern_preds_;  // sorted predicates with a pattern tombstone

  // Serializes the one-off lazy cache builds below; the valid flags are
  // acquire/release so a reader that observes `true` sees the built
  // containers.
  mutable std::mutex cache_mu_;

  mutable ListMap lists_[3];
  // Empty delta == valid empty lists.
  mutable std::atomic<bool> lists_valid_{true};

  // Staged inserts sorted three ways: (s,p,o), (p,o,s) and (o,s,p), so
  // every bound-prefix shape of IdPattern has a run it can range-scan.
  mutable IdTripleVec run_spo_;
  mutable IdTripleVec run_pos_;
  mutable IdTripleVec run_osp_;
  mutable std::atomic<bool> runs_valid_{true};

  // Prefix filter state: `filter_bits_` arms the lazy build (0 =
  // disabled), `filter_owner_` owns the built filter (under cache_mu_),
  // and `filter_ptr_` is the lock-free fast-path publication of it.
  mutable std::atomic<std::size_t> filter_bits_{0};
  mutable std::atomic<const RunFilter*> filter_ptr_{nullptr};
  mutable std::shared_ptr<const RunFilter> filter_owner_;

  // Resident-bytes accounting (under cache_mu_ except the destructor,
  // which runs unshared by definition).
  mutable std::shared_ptr<MemoryTracker> tracker_;
  mutable std::size_t tracked_bytes_ = 0;
};

}  // namespace hexastore

#endif  // HEXASTORE_DELTA_DELTA_STORE_H_

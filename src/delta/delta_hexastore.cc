#include "delta/delta_hexastore.h"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

namespace hexastore {

namespace {

// One read view over the (up to) three layers of a DeltaHexastore. Any
// member may be null; semantics are  layer(layer(base, sealed), active)
// where each DeltaStore applies its tombstones and pattern erases to
// everything beneath it and contributes its staged inserts.
//
// Raw pointers: the hot paths (every Insert/Erase/Contains) build one of
// these per call under the store mutex, where the owners are guaranteed
// alive — shared_ptr members would add refcount traffic to exactly the
// write path this subsystem exists to keep flat. The accessor helpers
// that hand out views outliving the call take LayerOwners instead.
struct LayerRefs {
  const Hexastore* base = nullptr;
  const DeltaStore* sealed = nullptr;
  const DeltaStore* active = nullptr;
};

// Shared-ownership variant for helpers whose result (a MergedList) must
// keep its generation alive after the mutex is released.
struct LayerOwners {
  std::shared_ptr<const Hexastore> base;
  std::shared_ptr<const DeltaStore> sealed;
  std::shared_ptr<const DeltaStore> active;
};

LayerRefs Refs(const LayerOwners& v) {
  return {v.base.get(), v.sealed.get(), v.active.get()};
}

DeltaStore::Presence LookupIn(const DeltaStore* layer, const IdTriple& t) {
  return layer == nullptr ? DeltaStore::Presence::kUnknown
                          : layer->Lookup(t);
}

// Merged membership test across the layers: the newest layer's verdict
// wins, the base answers only when no layer staged anything for `t`.
bool LayeredContains(const LayerRefs& v, const IdTriple& t) {
  switch (LookupIn(v.active, t)) {
    case DeltaStore::Presence::kInserted:
      return true;
    case DeltaStore::Presence::kErased:
      return false;
    case DeltaStore::Presence::kUnknown:
      break;
  }
  switch (LookupIn(v.sealed, t)) {
    case DeltaStore::Presence::kInserted:
      return true;
    case DeltaStore::Presence::kErased:
      return false;
    case DeltaStore::Presence::kUnknown:
      break;
  }
  return v.base != nullptr && v.base->Contains(t);
}

// Membership in the layers *beneath* the active buffer (base ∪ sealed) —
// the "base_present" the staging invariants are defined against.
bool BeneathContains(const LayerRefs& v, const IdTriple& t) {
  return LayeredContains({v.base, v.sealed, nullptr}, t);
}

// Merged pattern scan: base matches with every layer's point and pattern
// tombstones filtered out (one hash probe per layer per emitted triple),
// then each layer's staged inserts via bound-prefix range scans of its
// sorted runs. A kInserted verdict from a layer above means that layer's
// own insert scan emits the triple (a pattern-suppressed copy
// re-inserted above), so lower copies are skipped — no duplicates.
void LayeredScan(const LayerRefs& v, const IdPattern& pattern,
                 const TripleSink& sink) {
  if (v.base != nullptr) {
    v.base->Scan(pattern, [&v, &sink](const IdTriple& t) {
      if (LookupIn(v.sealed, t) == DeltaStore::Presence::kUnknown &&
          LookupIn(v.active, t) == DeltaStore::Presence::kUnknown) {
        sink(t);
      }
    });
  }
  if (v.sealed != nullptr) {
    v.sealed->ScanInserts(pattern, [&v, &sink](const IdTriple& t) {
      if (LookupIn(v.active, t) == DeltaStore::Presence::kUnknown) {
        sink(t);
      }
    });
  }
  if (v.active != nullptr) {
    v.active->ScanInserts(pattern, sink);
  }
}

// Planner estimate across the layers: the base index count, then each
// layer's adjustments — pattern erases (exact against the base's
// per-predicate counts), point tombstones scaled by the pattern's
// selectivity in the layer beneath, staged inserts counted exactly.
std::uint64_t LayeredEstimate(const LayerRefs& v, const IdPattern& pattern) {
  std::uint64_t count =
      v.base == nullptr ? 0 : v.base->CountMatches(pattern);
  std::size_t beneath_size = v.base == nullptr ? 0 : v.base->size();
  for (const DeltaStore* layer : {v.sealed, v.active}) {
    if (layer == nullptr) {
      continue;
    }
    if (layer->HasPatternErases()) {
      if (pattern.has_p()) {
        if (layer->PatternErased(pattern.p)) {
          count = 0;
        }
      } else {
        for (Id p : layer->pattern_erased_predicates()) {
          IdPattern bound = pattern;
          bound.p = p;
          const std::uint64_t suppressed =
              v.base == nullptr ? 0 : v.base->CountMatches(bound);
          count -= std::min(count, suppressed);
        }
      }
    }
    if (beneath_size > 0) {
      const std::uint64_t expected_tombstoned = static_cast<std::uint64_t>(
          static_cast<double>(count) *
          static_cast<double>(layer->tombstone_count()) /
          static_cast<double>(beneath_size));
      count -= std::min(count, expected_tombstoned);
    }
    count += layer->CountInserts(pattern);
    beneath_size = static_cast<std::size_t>(std::max<std::ptrdiff_t>(
        0, static_cast<std::ptrdiff_t>(beneath_size) + layer->size_delta()));
  }
  return count;
}

// Size of the base terminal list under `key` after the delta's pattern
// tombstones are applied: an o(s,p) or s(p,o) list dies wholesale when
// its predicate key side is pattern-erased, while a p(s,o) list loses
// exactly its pattern-erased members.
std::size_t EffectiveBaseListSize(const Hexastore* base,
                                  const DeltaStore& delta,
                                  ListFamily family, const IdPair& key) {
  const IdVec* list =
      base == nullptr ? nullptr : base->pool().Find(family, key.a, key.b);
  if (list == nullptr) {
    return 0;
  }
  if (!delta.HasPatternErases()) {
    return list->size();
  }
  switch (family) {
    case ListFamily::kObjects:  // key (s, p)
      return delta.PatternErased(key.b) ? 0 : list->size();
    case ListFamily::kSubjects:  // key (p, o)
      return delta.PatternErased(key.a) ? 0 : list->size();
    case ListFamily::kPredicates: {  // key (s, o); members are predicates
      std::size_t n = 0;
      for (Id p : *list) {
        if (!delta.PatternErased(p)) {
          ++n;
        }
      }
      return n;
    }
  }
  return list->size();
}

// Merged header vector: the base index's sorted header-member vector
// adjusted by one delta layer's touched terminal lists. A second-level id
// stays in (or joins) the vector iff the merged terminal list under the
// (header, id) pair is non-empty — exactly the rule Hexastore::Erase uses
// to drop emptied pairs.
//
// `match_a` selects which side of the family's (a, b) key is the header
// role; the other side is the second-level id. `base_member_alive` is
// the pattern-tombstone filter for untouched base members (only
// consulted when the delta has pattern erases — the common path copies
// the base vector untouched).
template <typename AliveFn>
IdVec MergedHeaderVec(const Hexastore* base, const DeltaStore* delta,
                      ListFamily family, bool match_a, Id header,
                      const IdVec* base_vec, AliveFn&& base_member_alive) {
  IdVec out;
  if (base_vec != nullptr) {
    if (delta == nullptr || !delta->HasPatternErases()) {
      out = *base_vec;
    } else {
      out.reserve(base_vec->size());
      for (Id member : *base_vec) {
        if (base_member_alive(member)) {
          out.push_back(member);
        }
      }
    }
  }
  if (delta == nullptr) {
    return out;
  }
  delta->ForEachList(
      family, [&](const IdPair& key, const DeltaList& lists) {
        if ((match_a ? key.a : key.b) != header) {
          return;
        }
        const Id other = match_a ? key.b : key.a;
        const std::size_t merged_size =
            EffectiveBaseListSize(base, *delta, family, key) +
            lists.adds.size() - lists.removes.size();
        if (merged_size > 0) {
          SortedInsert(&out, other);
        } else {
          SortedErase(&out, other);
        }
      });
  return out;
}

// Materialized terminal-list fallback for three-layer views (only taken
// while a background merge is in flight): scan the bound pair and
// collect the third role. The result vector is owned by the returned
// MergedList, so nothing points into the sealed layer.
MergedList MaterializedList(const LayerOwners& v, const IdPattern& pattern,
                            Id IdTriple::*third) {
  auto owned = std::make_shared<IdVec>();
  LayeredScan(Refs(v), pattern,
              [&owned, third](const IdTriple& t) { owned->push_back(t.*third); });
  SortUnique(owned.get());
  return MergedList(v.base, v.active, std::move(owned), nullptr, nullptr);
}

// Materialized header-vector fallback for three-layer views: scan the
// single bound role and collect the distinct values of `member`.
IdVec MaterializedHeaderVec(const LayerRefs& v, const IdPattern& pattern,
                            Id IdTriple::*member) {
  IdVec out;
  LayeredScan(v, pattern,
              [&out, member](const IdTriple& t) { out.push_back(t.*member); });
  SortUnique(&out);
  return out;
}

// -- Two-layer (base + active) accessor bodies ----------------------------
// The zero-copy fast paths, valid whenever no sealed layer exists.

MergedList LayeredObjects(const LayerOwners& v, Id s, Id p) {
  if (v.sealed != nullptr) {
    return MaterializedList(v, IdPattern{s, p, 0}, &IdTriple::o);
  }
  const DeltaStore* delta = v.active.get();
  const DeltaList* lists =
      delta == nullptr ? nullptr : delta->FindLists(ListFamily::kObjects, s, p);
  const IdVec* adds = lists == nullptr ? nullptr : &lists->adds;
  const IdVec* base_list =
      v.base == nullptr ? nullptr : v.base->objects(s, p);
  if (delta != nullptr && delta->PatternErased(p)) {
    // The whole base o(s,p) list is pattern-tombstoned; only staged
    // (re-)inserts survive. Point removes cannot exist for this p.
    return MergedList(v.base, v.active, static_cast<const IdVec*>(nullptr),
                      adds, nullptr);
  }
  return MergedList(v.base, v.active, base_list, adds,
                    lists == nullptr ? nullptr : &lists->removes);
}

MergedList LayeredPredicates(const LayerOwners& v, Id s, Id o) {
  if (v.sealed != nullptr) {
    return MaterializedList(v, IdPattern{s, 0, o}, &IdTriple::p);
  }
  const DeltaStore* delta = v.active.get();
  const DeltaList* lists =
      delta == nullptr ? nullptr
                       : delta->FindLists(ListFamily::kPredicates, s, o);
  const IdVec* adds = lists == nullptr ? nullptr : &lists->adds;
  const IdVec* removes = lists == nullptr ? nullptr : &lists->removes;
  const IdVec* base_list =
      v.base == nullptr ? nullptr : v.base->predicates(s, o);
  if (delta != nullptr && delta->HasPatternErases() && base_list != nullptr) {
    // Members of p(s,o) are predicates: drop the pattern-erased ones
    // from the base side (the view owns the filtered copy).
    auto filtered = std::make_shared<IdVec>();
    filtered->reserve(base_list->size());
    for (Id p : *base_list) {
      if (!delta->PatternErased(p)) {
        filtered->push_back(p);
      }
    }
    return MergedList(v.base, v.active, std::move(filtered), adds, removes);
  }
  return MergedList(v.base, v.active, base_list, adds, removes);
}

MergedList LayeredSubjects(const LayerOwners& v, Id p, Id o) {
  if (v.sealed != nullptr) {
    return MaterializedList(v, IdPattern{0, p, o}, &IdTriple::s);
  }
  const DeltaStore* delta = v.active.get();
  const DeltaList* lists =
      delta == nullptr ? nullptr
                       : delta->FindLists(ListFamily::kSubjects, p, o);
  const IdVec* adds = lists == nullptr ? nullptr : &lists->adds;
  const IdVec* base_list =
      v.base == nullptr ? nullptr : v.base->subjects(p, o);
  if (delta != nullptr && delta->PatternErased(p)) {
    return MergedList(v.base, v.active, static_cast<const IdVec*>(nullptr),
                      adds, nullptr);
  }
  return MergedList(v.base, v.active, base_list, adds,
                    lists == nullptr ? nullptr : &lists->removes);
}

IdVec LayeredPredicatesOfSubject(const LayerRefs& v, Id s) {
  if (v.sealed != nullptr) {
    return MaterializedHeaderVec(v, IdPattern{s, 0, 0}, &IdTriple::p);
  }
  const DeltaStore* delta = v.active;
  return MergedHeaderVec(
      v.base, delta, ListFamily::kObjects, /*match_a=*/true, s,
      v.base == nullptr ? nullptr : v.base->predicates_of_subject(s),
      [delta](Id p) { return !delta->PatternErased(p); });
}

IdVec LayeredObjectsOfSubject(const LayerRefs& v, Id s) {
  if (v.sealed != nullptr) {
    return MaterializedHeaderVec(v, IdPattern{s, 0, 0}, &IdTriple::o);
  }
  const DeltaStore* delta = v.active;
  const Hexastore* base = v.base;
  return MergedHeaderVec(
      base, delta, ListFamily::kPredicates, /*match_a=*/true, s,
      base == nullptr ? nullptr : base->objects_of_subject(s),
      [base, delta, s](Id o) {
        return EffectiveBaseListSize(base, *delta, ListFamily::kPredicates,
                                     IdPair{s, o}) > 0;
      });
}

IdVec LayeredSubjectsOfPredicate(const LayerRefs& v, Id p) {
  if (v.sealed != nullptr) {
    return MaterializedHeaderVec(v, IdPattern{0, p, 0}, &IdTriple::s);
  }
  const DeltaStore* delta = v.active;
  const bool erased = delta != nullptr && delta->PatternErased(p);
  return MergedHeaderVec(
      v.base, delta, ListFamily::kObjects, /*match_a=*/false, p,
      v.base == nullptr ? nullptr : v.base->subjects_of_predicate(p),
      [erased](Id) { return !erased; });
}

IdVec LayeredObjectsOfPredicate(const LayerRefs& v, Id p) {
  if (v.sealed != nullptr) {
    return MaterializedHeaderVec(v, IdPattern{0, p, 0}, &IdTriple::o);
  }
  const DeltaStore* delta = v.active;
  const bool erased = delta != nullptr && delta->PatternErased(p);
  return MergedHeaderVec(
      v.base, delta, ListFamily::kSubjects, /*match_a=*/true, p,
      v.base == nullptr ? nullptr : v.base->objects_of_predicate(p),
      [erased](Id) { return !erased; });
}

IdVec LayeredSubjectsOfObject(const LayerRefs& v, Id o) {
  if (v.sealed != nullptr) {
    return MaterializedHeaderVec(v, IdPattern{0, 0, o}, &IdTriple::s);
  }
  const DeltaStore* delta = v.active;
  const Hexastore* base = v.base;
  return MergedHeaderVec(
      base, delta, ListFamily::kPredicates, /*match_a=*/false, o,
      base == nullptr ? nullptr : base->subjects_of_object(o),
      [base, delta, o](Id s) {
        return EffectiveBaseListSize(base, *delta, ListFamily::kPredicates,
                                     IdPair{s, o}) > 0;
      });
}

IdVec LayeredPredicatesOfObject(const LayerRefs& v, Id o) {
  if (v.sealed != nullptr) {
    return MaterializedHeaderVec(v, IdPattern{0, 0, o}, &IdTriple::p);
  }
  const DeltaStore* delta = v.active;
  return MergedHeaderVec(
      v.base, delta, ListFamily::kSubjects, /*match_a=*/false, o,
      v.base == nullptr ? nullptr : v.base->predicates_of_object(o),
      [delta](Id p) { return !delta->PatternErased(p); });
}

// Off-thread merge of a sealed layer into a base: materializes
// base ∖ pattern-erased ∖ tombstones ∪ inserts into a fresh store. Reads
// only immutable state and the sealed layer's pure (non-caching)
// accessors, so it is safe to run without the store mutex while mutex
// readers lazily build the sealed layer's caches.
std::shared_ptr<Hexastore> MergeOffline(const Hexastore* base,
                                        const DeltaStore& sealed) {
  IdTripleVec merged;
  const IdTripleVec tombstones = sealed.SortedTombstones();
  const IdTripleVec inserts = sealed.SortedInserts();
  const IdVec& erased_preds = sealed.pattern_erased_predicates();
  if (base != nullptr) {
    // Match() materializes in (s, p, o) order, so the tombstone cursor
    // advances in lock-step.
    const IdTripleVec existing = base->Match(IdPattern{});
    merged.reserve(existing.size() + inserts.size());
    std::size_t ti = 0;
    for (const IdTriple& t : existing) {
      if (!erased_preds.empty() && SortedContains(erased_preds, t.p)) {
        continue;  // pattern-suppressed (re-inserts arrive via `inserts`)
      }
      while (ti < tombstones.size() && tombstones[ti] < t) {
        ++ti;
      }
      if (ti < tombstones.size() && tombstones[ti] == t) {
        ++ti;
        continue;
      }
      merged.push_back(t);
    }
  }
  IdTripleVec all;
  all.reserve(merged.size() + inserts.size());
  std::merge(merged.begin(), merged.end(), inserts.begin(), inserts.end(),
             std::back_inserter(all));
  auto fresh = std::make_shared<Hexastore>();
  fresh->BulkLoad(all);
  return fresh;
}

}  // namespace

DeltaHexastore::DeltaHexastore(std::size_t compact_threshold)
    : DeltaHexastore(DeltaOptions{compact_threshold, false}) {}

DeltaHexastore::DeltaHexastore(const DeltaOptions& options)
    : base_(std::make_shared<Hexastore>()),
      delta_(std::make_shared<DeltaStore>()),
      compact_threshold_(
          options.compact_threshold == 0 ? 1 : options.compact_threshold),
      background_(options.background_compaction) {
  if (background_) {
    merger_ = std::thread(&DeltaHexastore::MergerLoop, this);
  }
}

DeltaHexastore::~DeltaHexastore() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (merger_.joinable()) {
    merger_.join();
  }
}

bool DeltaHexastore::Insert(const IdTriple& t) {
  std::lock_guard<std::mutex> lock(mu_);
  // Read-only no-op check first: a duplicate insert must not pay the
  // copy-on-write clone an exposed delta would otherwise trigger.
  const bool beneath = BeneathContains({base_.get(), sealed_.get(), nullptr}, t);
  const DeltaStore::Presence staged = delta_->Lookup(t);
  if (staged == DeltaStore::Presence::kInserted ||
      (staged == DeltaStore::Presence::kUnknown && beneath)) {
    return false;
  }
  EnsureDeltaWritableLocked();
  delta_->StageInsert(t, beneath);
  ++size_;
  dirty_ = true;
  MaybeCompactLocked();
  return true;
}

bool DeltaHexastore::Erase(const IdTriple& t) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool beneath = BeneathContains({base_.get(), sealed_.get(), nullptr}, t);
  const DeltaStore::Presence staged = delta_->Lookup(t);
  if (staged == DeltaStore::Presence::kErased ||
      (staged == DeltaStore::Presence::kUnknown && !beneath)) {
    return false;
  }
  EnsureDeltaWritableLocked();
  delta_->StageErase(t, beneath);
  --size_;
  dirty_ = true;
  MaybeCompactLocked();
  return true;
}

bool DeltaHexastore::Contains(const IdTriple& t) const {
  std::lock_guard<std::mutex> lock(mu_);
  return LayeredContains({base_.get(), sealed_.get(), delta_.get()}, t);
}

std::size_t DeltaHexastore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

void DeltaHexastore::Scan(const IdPattern& pattern,
                          const TripleSink& sink) const {
  // Materialize under the mutex, emit outside it: the merged walk reads
  // base and delta internals (kept writer-ordered by mu_), while the
  // sink runs unlocked so it may re-enter the store (index-nested-loop
  // joins do) without deadlocking.
  IdTripleVec matches;
  {
    std::lock_guard<std::mutex> lock(mu_);
    LayeredScan({base_.get(), sealed_.get(), delta_.get()}, pattern,
                [&matches](const IdTriple& t) { matches.push_back(t); });
  }
  for (const IdTriple& t : matches) {
    sink(t);
  }
}

std::size_t DeltaHexastore::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_->MemoryBytes() + delta_->MemoryBytes() +
         (sealed_ == nullptr ? 0 : sealed_->MemoryBytes());
}

void DeltaHexastore::BulkLoad(const IdTripleVec& triples) {
  std::unique_lock<std::mutex> lock(mu_);
  WaitForMergeLocked(lock);
  CompactLocked();
  if (base_exposed_) {
    // A generation reads the base: load into a rebuilt copy instead.
    auto fresh = std::make_shared<Hexastore>();
    fresh->BulkLoad(base_->Match(IdPattern{}));
    base_ = std::move(fresh);
    base_exposed_ = false;
  }
  base_->BulkLoad(triples);
  size_ = base_->size();
  ++epoch_;
  dirty_ = true;
  if (background_) {
    PublishLocked(size_, /*include_active=*/false);
  }
}

void DeltaHexastore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ClearLocked();
}

void DeltaHexastore::ClearLocked() {
  // Invalidate any in-flight merge: its inputs are gone, its result must
  // be discarded at commit time.
  ++merge_ticket_;
  sealed_.reset();
  if (base_exposed_) {
    base_ = std::make_shared<Hexastore>();
    base_exposed_ = false;
  } else {
    base_->Clear();
  }
  if (delta_exposed_) {
    delta_ = std::make_shared<DeltaStore>();
    delta_exposed_ = false;
  } else {
    delta_->Clear();
  }
  published_active_ops_ = 0;
  size_ = 0;
  ++epoch_;
  dirty_ = true;
  if (background_) {
    PublishLocked(0, /*include_active=*/false);
  }
  drain_cv_.notify_all();
}

std::size_t DeltaHexastore::ErasePattern(const IdPattern& pattern) {
  std::unique_lock<std::mutex> lock(mu_);
  if (pattern.bound_count() == 0) {
    // Erase everything == Clear.
    const std::size_t erased = size_;
    ClearLocked();
    return erased;
  }
  if (pattern.has_p() && !pattern.has_s() && !pattern.has_o()) {
    // Predicate-only: one pattern-level tombstone instead of one point
    // tombstone per match. Its exact erase count is defined against the
    // merged base, so an in-flight background merge is drained first
    // (bulk erases are rare; point ops never wait).
    WaitForMergeLocked(lock);
    // Count the base's contribution before staging (staging drops the
    // point ops whose counts correct it).
    const bool already = delta_->PatternErased(pattern.p);
    const std::uint64_t base_matches =
        already ? 0 : base_->CountMatches(IdPattern{0, pattern.p, 0});
    EnsureDeltaWritableLocked();
    const DeltaStore::PatternEraseEffect effect =
        delta_->StagePatternErase(pattern.p);
    // Base triples already point-tombstoned were logically absent, and
    // dropped staged inserts were logically present on top of the base.
    const std::size_t erased =
        static_cast<std::size_t>(base_matches) - effect.dropped_tombstones +
        effect.dropped_inserts;
    size_ -= erased;
    dirty_ = true;
    return erased;
  }
  // General shape: the point-tombstone path, one staged op per match.
  IdTripleVec matches;
  LayeredScan({base_.get(), sealed_.get(), delta_.get()}, pattern,
              [&matches](const IdTriple& t) { matches.push_back(t); });
  if (matches.empty()) {
    return 0;
  }
  EnsureDeltaWritableLocked();
  for (const IdTriple& t : matches) {
    delta_->StageErase(t, BeneathContains({base_.get(), sealed_.get(), nullptr}, t));
  }
  size_ -= matches.size();
  dirty_ = true;
  MaybeCompactLocked();
  return matches.size();
}

std::uint64_t DeltaHexastore::EstimateMatches(const IdPattern& pattern) const {
  std::lock_guard<std::mutex> lock(mu_);
  return LayeredEstimate({base_.get(), sealed_.get(), delta_.get()}, pattern);
}

void DeltaHexastore::Compact() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!background_) {
    CompactLocked();
    return;
  }
  // Drain what is staged *now* — at most the in-flight merge plus one
  // seal of the current buffer. Bounded on purpose: waiting for
  // delta_->empty() would chase ops concurrent writers keep staging and
  // might never return under sustained load.
  if (sealed_ != nullptr) {
    AwaitOneMergeLocked(lock);
  }
  if (sealed_ == nullptr && !delta_->empty()) {
    SealLocked();
  }
  if (sealed_ != nullptr) {
    AwaitOneMergeLocked(lock);
  }
}

std::size_t DeltaHexastore::StagedOps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delta_->op_count() +
         (sealed_ == nullptr ? 0 : sealed_->op_count());
}

std::uint64_t DeltaHexastore::CompactionCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return compactions_;
}

DeltaStats DeltaHexastore::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DeltaStats stats;
  stats.staged_inserts = delta_->insert_count();
  stats.staged_tombstones = delta_->tombstone_count();
  stats.pattern_tombstones = delta_->pattern_erased_predicates().size();
  stats.compact_threshold = compact_threshold_;
  stats.compactions = compactions_;
  stats.epoch = epoch_;
  stats.base_triples = base_->size();
  stats.base_bytes = base_->MemoryBytes();
  stats.delta_bytes = delta_->MemoryBytes() +
                      (sealed_ == nullptr ? 0 : sealed_->MemoryBytes());
  stats.background = background_;
  stats.seals = seals_;
  stats.background_merges = background_merges_;
  stats.merge_discards = merge_discards_;
  stats.seal_overflows = seal_overflows_;
  stats.sealed_ops = sealed_ == nullptr ? 0 : sealed_->op_count();
  return stats;
}

EpochStats DeltaHexastore::EpochCounters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gate_.Stats();
}

DeltaHexastore::Snapshot DeltaHexastore::GetSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  ExposeLocked();
  return Snapshot(gate_.Acquire());
}

DeltaHexastore::Snapshot DeltaHexastore::AcquireReadHandle() const {
  return Snapshot(gate_.Acquire());
}

// -- Snapshot -------------------------------------------------------------

bool DeltaHexastore::Snapshot::Contains(const IdTriple& t) const {
  if (gen_ == nullptr) {
    return false;
  }
  return LayeredContains({gen_->base.get(), gen_->sealed.get(), gen_->active.get()}, t);
}

std::size_t DeltaHexastore::Snapshot::size() const {
  return gen_ == nullptr ? 0 : gen_->size;
}

void DeltaHexastore::Snapshot::Scan(const IdPattern& pattern,
                                    const TripleSink& sink) const {
  if (gen_ == nullptr) {
    return;
  }
  LayeredScan({gen_->base.get(), gen_->sealed.get(), gen_->active.get()}, pattern, sink);
}

std::size_t DeltaHexastore::Snapshot::MemoryBytes() const {
  if (gen_ == nullptr) {
    return 0;
  }
  std::size_t bytes = gen_->base == nullptr ? 0 : gen_->base->MemoryBytes();
  bytes += gen_->sealed == nullptr ? 0 : gen_->sealed->MemoryBytes();
  bytes += gen_->active == nullptr ? 0 : gen_->active->MemoryBytes();
  return bytes;
}

std::uint64_t DeltaHexastore::Snapshot::EstimateMatches(
    const IdPattern& pattern) const {
  if (gen_ == nullptr) {
    return 0;
  }
  return LayeredEstimate({gen_->base.get(), gen_->sealed.get(), gen_->active.get()}, pattern);
}

std::uint64_t DeltaHexastore::Snapshot::epoch() const {
  return gen_ == nullptr ? 0 : gen_->epoch;
}

MergedList DeltaHexastore::Snapshot::objects(Id s, Id p) const {
  if (gen_ == nullptr) {
    return MergedList();
  }
  return LayeredObjects({gen_->base, gen_->sealed, gen_->active}, s, p);
}

MergedList DeltaHexastore::Snapshot::predicates(Id s, Id o) const {
  if (gen_ == nullptr) {
    return MergedList();
  }
  return LayeredPredicates({gen_->base, gen_->sealed, gen_->active}, s, o);
}

MergedList DeltaHexastore::Snapshot::subjects(Id p, Id o) const {
  if (gen_ == nullptr) {
    return MergedList();
  }
  return LayeredSubjects({gen_->base, gen_->sealed, gen_->active}, p, o);
}

IdVec DeltaHexastore::Snapshot::predicates_of_subject(Id s) const {
  if (gen_ == nullptr) {
    return IdVec();
  }
  return LayeredPredicatesOfSubject({gen_->base.get(), gen_->sealed.get(), gen_->active.get()},
                                    s);
}

IdVec DeltaHexastore::Snapshot::objects_of_subject(Id s) const {
  if (gen_ == nullptr) {
    return IdVec();
  }
  return LayeredObjectsOfSubject({gen_->base.get(), gen_->sealed.get(), gen_->active.get()}, s);
}

IdVec DeltaHexastore::Snapshot::subjects_of_predicate(Id p) const {
  if (gen_ == nullptr) {
    return IdVec();
  }
  return LayeredSubjectsOfPredicate({gen_->base.get(), gen_->sealed.get(), gen_->active.get()},
                                    p);
}

IdVec DeltaHexastore::Snapshot::objects_of_predicate(Id p) const {
  if (gen_ == nullptr) {
    return IdVec();
  }
  return LayeredObjectsOfPredicate({gen_->base.get(), gen_->sealed.get(), gen_->active.get()},
                                   p);
}

IdVec DeltaHexastore::Snapshot::subjects_of_object(Id o) const {
  if (gen_ == nullptr) {
    return IdVec();
  }
  return LayeredSubjectsOfObject({gen_->base.get(), gen_->sealed.get(), gen_->active.get()}, o);
}

IdVec DeltaHexastore::Snapshot::predicates_of_object(Id o) const {
  if (gen_ == nullptr) {
    return IdVec();
  }
  return LayeredPredicatesOfObject({gen_->base.get(), gen_->sealed.get(), gen_->active.get()},
                                   o);
}

// -- Live merged accessor views -------------------------------------------

MergedList DeltaHexastore::objects(Id s, Id p) const {
  std::lock_guard<std::mutex> lock(mu_);
  ExposeLocked();
  return LayeredObjects({base_, sealed_, delta_}, s, p);
}

MergedList DeltaHexastore::predicates(Id s, Id o) const {
  std::lock_guard<std::mutex> lock(mu_);
  ExposeLocked();
  return LayeredPredicates({base_, sealed_, delta_}, s, o);
}

MergedList DeltaHexastore::subjects(Id p, Id o) const {
  std::lock_guard<std::mutex> lock(mu_);
  ExposeLocked();
  return LayeredSubjects({base_, sealed_, delta_}, p, o);
}

IdVec DeltaHexastore::predicates_of_subject(Id s) const {
  std::lock_guard<std::mutex> lock(mu_);
  return LayeredPredicatesOfSubject({base_.get(), sealed_.get(), delta_.get()}, s);
}

IdVec DeltaHexastore::objects_of_subject(Id s) const {
  std::lock_guard<std::mutex> lock(mu_);
  return LayeredObjectsOfSubject({base_.get(), sealed_.get(), delta_.get()}, s);
}

IdVec DeltaHexastore::subjects_of_predicate(Id p) const {
  std::lock_guard<std::mutex> lock(mu_);
  return LayeredSubjectsOfPredicate({base_.get(), sealed_.get(), delta_.get()}, p);
}

IdVec DeltaHexastore::objects_of_predicate(Id p) const {
  std::lock_guard<std::mutex> lock(mu_);
  return LayeredObjectsOfPredicate({base_.get(), sealed_.get(), delta_.get()}, p);
}

IdVec DeltaHexastore::subjects_of_object(Id o) const {
  std::lock_guard<std::mutex> lock(mu_);
  return LayeredSubjectsOfObject({base_.get(), sealed_.get(), delta_.get()}, o);
}

IdVec DeltaHexastore::predicates_of_object(Id o) const {
  std::lock_guard<std::mutex> lock(mu_);
  return LayeredPredicatesOfObject({base_.get(), sealed_.get(), delta_.get()}, o);
}

std::shared_ptr<const Hexastore> DeltaHexastore::base() const {
  std::lock_guard<std::mutex> lock(mu_);
  base_exposed_ = true;
  return base_;
}

bool DeltaHexastore::CheckInvariants(std::string* error) const {
  // Runs entirely under the mutex (test path): no generation escapes, so
  // the in-place compaction fast path stays available afterwards.
  std::lock_guard<std::mutex> lock(mu_);
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) {
      *error = msg;
    }
    return false;
  };
  if (!base_->CheckInvariants(error)) {
    return false;
  }
  // Per-layer contract: staged inserts are disjoint from the layers
  // beneath, tombstones are a subset of them, and every op is mirrored
  // in all three side-list families of its own layer.
  struct LayerCheck {
    const DeltaStore* layer;
    LayerRefs beneath;  // the layers beneath `layer`
    const char* label;
  };
  std::vector<LayerCheck> checks;
  if (sealed_ != nullptr) {
    checks.push_back({sealed_.get(), {base_.get(), nullptr, nullptr}, "sealed"});
  }
  checks.push_back({delta_.get(), {base_.get(), sealed_.get(), nullptr}, "active"});
  for (const LayerCheck& check : checks) {
    const DeltaStore* layer = check.layer;
    bool ok = true;
    std::string msg;
    layer->ForEachOp([&](const IdTriple& t, DeltaOp op) {
      if (!ok) {
        return;
      }
      const bool beneath = BeneathContains(check.beneath, t);
      if (op == DeltaOp::kInsert && beneath && !layer->PatternErased(t.p)) {
        // (Adds may coincide with a beneath triple only when the pattern
        // tombstone suppresses the lower copy.)
        ok = false;
        msg = std::string(check.label) +
              ": staged insert already present beneath";
        return;
      }
      if (op == DeltaOp::kTombstone &&
          (!beneath || layer->PatternErased(t.p))) {
        ok = false;
        msg = std::string(check.label) +
              ": tombstone absent beneath or subsumed by a pattern erase";
        return;
      }
      const DeltaList* objects =
          layer->FindLists(ListFamily::kObjects, t.s, t.p);
      const DeltaList* predicates =
          layer->FindLists(ListFamily::kPredicates, t.s, t.o);
      const DeltaList* subjects =
          layer->FindLists(ListFamily::kSubjects, t.p, t.o);
      const bool is_add = op == DeltaOp::kInsert;
      auto in = [is_add](const DeltaList* lists, Id third) {
        return lists != nullptr &&
               SortedContains(is_add ? lists->adds : lists->removes, third);
      };
      if (!in(objects, t.o) || !in(predicates, t.p) || !in(subjects, t.s)) {
        ok = false;
        msg = std::string(check.label) +
              ": staged op missing from a delta side list";
      }
    });
    if (!ok) {
      return fail(msg);
    }
    // Side-list totals match the op counters in every family.
    for (int f = 0; f < 3; ++f) {
      std::size_t adds = 0;
      std::size_t removes = 0;
      layer->ForEachList(static_cast<ListFamily>(f),
                         [&](const IdPair&, const DeltaList& lists) {
                           adds += lists.adds.size();
                           removes += lists.removes.size();
                         });
      if (adds != layer->insert_count() ||
          removes != layer->tombstone_count()) {
        std::ostringstream os;
        os << check.label << ": delta side-list family " << f << " totals ("
           << adds << ", " << removes << ") disagree with op counters ("
           << layer->insert_count() << ", " << layer->tombstone_count()
           << ")";
        return fail(os.str());
      }
    }
  }
  // Size bookkeeping: the full merged scan must see exactly size_
  // triples (this also exercises the cross-layer tombstone math).
  std::size_t merged_size = 0;
  LayeredScan({base_.get(), sealed_.get(), delta_.get()}, IdPattern{},
              [&merged_size](const IdTriple&) { ++merged_size; });
  if (merged_size != size_) {
    std::ostringstream os;
    os << "merged size " << merged_size << " != tracked size " << size_;
    return fail(os.str());
  }
  return true;
}

// -- Locked helpers -------------------------------------------------------

void DeltaHexastore::PublishLocked(std::size_t logical_size,
                                   bool include_active) const {
  auto gen = std::make_shared<DeltaGeneration>();
  gen->base = base_;
  gen->sealed = sealed_;
  if (sealed_ != nullptr) {
    // Pre-build the sealed layer's lazy caches: lock-free readers must
    // never trigger a cache build on shared state. (The background
    // merger only uses pure accessors, so this cannot race with it.)
    sealed_->Freeze();
  }
  if (include_active && !delta_->empty()) {
    delta_->Freeze();
    gen->active = delta_;
    delta_exposed_ = true;
    published_active_ops_ = delta_->op_count();
  } else {
    published_active_ops_ = 0;
  }
  gen->size = logical_size;
  gen->epoch = epoch_;
  base_exposed_ = true;
  // dirty_ means "the published generation does not cover the live
  // contents". A publication that excludes a non-empty staging buffer
  // (a merge-completion publish) must leave it set, or ExposeLocked's
  // fast path would hand snapshots/accessors a view missing the staged
  // ops — and hand out delta_ list pointers without the exposure mark.
  dirty_ = gen->active == nullptr && !delta_->empty();
  gate_.Publish(std::move(gen));
}

void DeltaHexastore::ExposeLocked() const {
  if (dirty_) {
    PublishLocked(size_, /*include_active=*/true);
  } else {
    // Already published and unchanged since; the current generation
    // covers exactly the live contents.
    base_exposed_ = true;
  }
}

void DeltaHexastore::EnsureDeltaWritableLocked() {
  if (delta_exposed_) {
    delta_ = std::make_shared<DeltaStore>(*delta_);
    delta_exposed_ = false;
  }
}

void DeltaHexastore::MaybeCompactLocked() {
  if (delta_->op_count() < compact_threshold_) {
    return;
  }
  if (!background_) {
    CompactLocked();
    return;
  }
  if (sealed_ != nullptr) {
    // A merge is still in flight; keep staging (the buffer may overshoot
    // the threshold) rather than stall the writer.
    ++seal_overflows_;
    return;
  }
  SealLocked();
}

void DeltaHexastore::SealLocked() {
  // Two pointer swaps: the open buffer becomes the immutable sealed
  // layer, writers get a fresh one. No publication and no cache build —
  // mutex readers reach the sealed layer under mu_, and lock-free
  // readers keep the previous generation until the merge completes.
  sealed_ = std::move(delta_);
  delta_ = std::make_shared<DeltaStore>();
  delta_exposed_ = false;
  published_active_ops_ = 0;
  ++seals_;
  dirty_ = true;
  work_cv_.notify_one();
}

void DeltaHexastore::WaitForMergeLocked(std::unique_lock<std::mutex>& lock) {
  drain_cv_.wait(lock, [this] { return sealed_ == nullptr; });
}

void DeltaHexastore::AwaitOneMergeLocked(std::unique_lock<std::mutex>& lock) {
  // Bounded wait: one merge completing (or a Clear/BulkLoad wiping the
  // inputs, which bumps the ticket) satisfies it — later seals by
  // concurrent writers are deliberately not chased.
  const std::uint64_t target = compactions_ + 1;
  const std::uint64_t ticket = merge_ticket_;
  drain_cv_.wait(lock, [this, target, ticket] {
    return compactions_ >= target || merge_ticket_ != ticket;
  });
}

void DeltaHexastore::CompactLocked() {
  // Synchronous drain; callers ensure no sealed layer is pending.
  if (delta_->empty()) {
    return;
  }
  if (!base_exposed_) {
    // The base never escaped the mutex: drain in place. Pattern
    // tombstones purge their base matches first (this is where the bulk
    // erase finally pays O(matches), amortized into the drain), then the
    // point tombstones (each an O(log + shift) point erase), then one
    // sorted merge of the staged inserts through the non-empty BulkLoad
    // path.
    for (Id p : delta_->pattern_erased_predicates()) {
      for (const IdTriple& t : base_->Match(IdPattern{0, p, 0})) {
        base_->Erase(t);
      }
    }
    for (const IdTriple& t : delta_->SortedTombstones()) {
      base_->Erase(t);
    }
    base_->BulkLoad(delta_->SortedInserts());
  } else {
    // A generation may still read the base: rebuild the merged state
    // into a fresh store and swap, leaving the old one untouched for
    // its readers.
    base_ = MergeOffline(base_.get(), *delta_);
    base_exposed_ = false;
  }
  if (delta_exposed_) {
    delta_ = std::make_shared<DeltaStore>();
    delta_exposed_ = false;
  } else {
    delta_->Clear();
  }
  published_active_ops_ = 0;
  ++compactions_;
  ++epoch_;
  size_ = base_->size();
  dirty_ = true;
}

void DeltaHexastore::MergerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || sealed_ != nullptr; });
    if (stop_) {
      return;
    }
    // Pin the inputs, then merge without the mutex: the sealed layer is
    // closed to writers, and marking the base exposed here keeps it
    // immutable too — a concurrent Clear() must swap in a fresh object
    // rather than clearing the one this thread is scanning.
    base_exposed_ = true;
    std::shared_ptr<const Hexastore> base = base_;
    std::shared_ptr<const DeltaStore> sealed = sealed_;
    const std::uint64_t ticket = merge_ticket_;
    lock.unlock();
    std::shared_ptr<Hexastore> fresh = MergeOffline(base.get(), *sealed);
    lock.lock();
    if (ticket != merge_ticket_ || sealed_ != sealed) {
      // Clear/BulkLoad replaced the inputs mid-merge; the result
      // describes a state that no longer exists.
      ++merge_discards_;
      drain_cv_.notify_all();
      continue;
    }
    base_ = std::move(fresh);
    sealed_.reset();
    ++compactions_;
    ++background_merges_;
    ++epoch_;
    dirty_ = true;
    // Publish the post-merge generation so lock-free readers advance.
    // The staging buffer is re-included only if a previous publication
    // exposed it — dropping it would make published views non-monotonic;
    // including it otherwise would force a needless copy-on-write.
    const bool include_active = published_active_ops_ > 0;
    PublishLocked(include_active ? size_ : base_->size(), include_active);
    drain_cv_.notify_all();
  }
}

}  // namespace hexastore

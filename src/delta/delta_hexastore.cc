#include "delta/delta_hexastore.h"

#include <algorithm>
#include <sstream>

namespace hexastore {

namespace {

// Merged membership test over one generation (base + delta).
bool MergedContains(const Hexastore& base, const DeltaStore& delta,
                    const IdTriple& t) {
  switch (delta.Lookup(t)) {
    case DeltaStore::Presence::kInserted:
      return true;
    case DeltaStore::Presence::kErased:
      return false;
    case DeltaStore::Presence::kUnknown:
      break;
  }
  return base.Contains(t);
}

// Merged pattern scan over one generation: base matches with point and
// pattern tombstones filtered out (one hash probe per emitted triple),
// then the staged inserts matching the pattern via a bound-prefix range
// scan of the delta's sorted runs. The base walk keeps only kUnknown
// verdicts: a kInserted hit on a base triple means a pattern-suppressed
// copy re-inserted through the delta, which ScanInserts already emits.
void MergedScan(const Hexastore& base, const DeltaStore& delta,
                const IdPattern& pattern, const TripleSink& sink) {
  base.Scan(pattern, [&delta, &sink](const IdTriple& t) {
    if (delta.Lookup(t) == DeltaStore::Presence::kUnknown) {
      sink(t);
    }
  });
  delta.ScanInserts(pattern, sink);
}

// Size of the base terminal list under `key` after the delta's pattern
// tombstones are applied: an o(s,p) or s(p,o) list dies wholesale when
// its predicate key side is pattern-erased, while a p(s,o) list loses
// exactly its pattern-erased members.
std::size_t EffectiveBaseListSize(const Hexastore& base,
                                  const DeltaStore& delta,
                                  ListFamily family, const IdPair& key) {
  const IdVec* list = base.pool().Find(family, key.a, key.b);
  if (list == nullptr) {
    return 0;
  }
  if (!delta.HasPatternErases()) {
    return list->size();
  }
  switch (family) {
    case ListFamily::kObjects:  // key (s, p)
      return delta.PatternErased(key.b) ? 0 : list->size();
    case ListFamily::kSubjects:  // key (p, o)
      return delta.PatternErased(key.a) ? 0 : list->size();
    case ListFamily::kPredicates: {  // key (s, o); members are predicates
      std::size_t n = 0;
      for (Id p : *list) {
        if (!delta.PatternErased(p)) {
          ++n;
        }
      }
      return n;
    }
  }
  return list->size();
}

// Merged header vector: the base index's sorted header-member vector
// adjusted by the delta's touched terminal lists. A second-level id stays
// in (or joins) the vector iff the merged terminal list under the
// (header, id) pair is non-empty — exactly the rule Hexastore::Erase uses
// to drop emptied pairs.
//
// `match_a` selects which side of the family's (a, b) key is the header
// role; the other side is the second-level id. `base_member_alive` is
// the pattern-tombstone filter for untouched base members (only
// consulted when the delta has pattern erases — the common path copies
// the base vector untouched).
template <typename AliveFn>
IdVec MergedHeaderVec(const Hexastore& base, const DeltaStore& delta,
                      ListFamily family, bool match_a, Id header,
                      const IdVec* base_vec, AliveFn&& base_member_alive) {
  IdVec out;
  if (base_vec != nullptr) {
    if (!delta.HasPatternErases()) {
      out = *base_vec;
    } else {
      out.reserve(base_vec->size());
      for (Id member : *base_vec) {
        if (base_member_alive(member)) {
          out.push_back(member);
        }
      }
    }
  }
  delta.ForEachList(
      family, [&](const IdPair& key, const DeltaList& lists) {
        if ((match_a ? key.a : key.b) != header) {
          return;
        }
        const Id other = match_a ? key.b : key.a;
        const std::size_t merged_size =
            EffectiveBaseListSize(base, delta, family, key) +
            lists.adds.size() - lists.removes.size();
        if (merged_size > 0) {
          SortedInsert(&out, other);
        } else {
          SortedErase(&out, other);
        }
      });
  return out;
}

}  // namespace

DeltaHexastore::DeltaHexastore(std::size_t compact_threshold)
    : base_(std::make_shared<Hexastore>()),
      delta_(std::make_shared<DeltaStore>()),
      compact_threshold_(compact_threshold == 0 ? 1 : compact_threshold) {}

bool DeltaHexastore::Insert(const IdTriple& t) {
  std::lock_guard<std::mutex> lock(mu_);
  // Read-only no-op check first: a duplicate insert must not pay the
  // copy-on-write clone an exposed delta would otherwise trigger.
  const bool base_present = base_->Contains(t);
  const DeltaStore::Presence staged = delta_->Lookup(t);
  if (staged == DeltaStore::Presence::kInserted ||
      (staged == DeltaStore::Presence::kUnknown && base_present)) {
    return false;
  }
  EnsureDeltaWritableLocked();
  delta_->StageInsert(t, base_present);
  ++size_;
  if (delta_->op_count() >= compact_threshold_) {
    CompactLocked();
  }
  return true;
}

bool DeltaHexastore::Erase(const IdTriple& t) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool base_present = base_->Contains(t);
  const DeltaStore::Presence staged = delta_->Lookup(t);
  if (staged == DeltaStore::Presence::kErased ||
      (staged == DeltaStore::Presence::kUnknown && !base_present)) {
    return false;
  }
  EnsureDeltaWritableLocked();
  delta_->StageErase(t, base_present);
  --size_;
  if (delta_->op_count() >= compact_threshold_) {
    CompactLocked();
  }
  return true;
}

bool DeltaHexastore::Contains(const IdTriple& t) const {
  std::lock_guard<std::mutex> lock(mu_);
  return MergedContains(*base_, *delta_, t);
}

std::size_t DeltaHexastore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

void DeltaHexastore::Scan(const IdPattern& pattern,
                          const TripleSink& sink) const {
  // Materialize under the mutex, emit outside it: the merged walk reads
  // base and delta internals (kept writer-ordered by mu_), while the
  // sink runs unlocked so it may re-enter the store (index-nested-loop
  // joins do) without deadlocking.
  IdTripleVec matches;
  {
    std::lock_guard<std::mutex> lock(mu_);
    MergedScan(*base_, *delta_, pattern,
               [&matches](const IdTriple& t) { matches.push_back(t); });
  }
  for (const IdTriple& t : matches) {
    sink(t);
  }
}

std::size_t DeltaHexastore::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_->MemoryBytes() + delta_->MemoryBytes();
}

void DeltaHexastore::BulkLoad(const IdTripleVec& triples) {
  std::lock_guard<std::mutex> lock(mu_);
  CompactLocked();
  if (base_exposed_) {
    // A snapshot reads the base: load into a rebuilt copy instead.
    auto fresh = std::make_shared<Hexastore>();
    fresh->BulkLoad(base_->Match(IdPattern{}));
    base_ = std::move(fresh);
    base_exposed_ = false;
  }
  base_->BulkLoad(triples);
  size_ = base_->size();
  ++epoch_;
}

void DeltaHexastore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ClearLocked();
}

void DeltaHexastore::ClearLocked() {
  if (base_exposed_) {
    base_ = std::make_shared<Hexastore>();
    base_exposed_ = false;
  } else {
    base_->Clear();
  }
  if (delta_exposed_) {
    delta_ = std::make_shared<DeltaStore>();
    delta_exposed_ = false;
  } else {
    delta_->Clear();
  }
  size_ = 0;
  ++epoch_;
}

std::size_t DeltaHexastore::ErasePattern(const IdPattern& pattern) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pattern.bound_count() == 0) {
    // Erase everything == Clear.
    const std::size_t erased = size_;
    ClearLocked();
    return erased;
  }
  if (pattern.has_p() && !pattern.has_s() && !pattern.has_o()) {
    // Predicate-only: one pattern-level tombstone instead of one point
    // tombstone per match. Count the base's contribution before staging
    // (staging drops the point ops whose counts correct it).
    const bool already = delta_->PatternErased(pattern.p);
    const std::uint64_t base_matches =
        already ? 0 : base_->CountMatches(IdPattern{0, pattern.p, 0});
    EnsureDeltaWritableLocked();
    const DeltaStore::PatternEraseEffect effect =
        delta_->StagePatternErase(pattern.p);
    // Base triples already point-tombstoned were logically absent, and
    // dropped staged inserts were logically present on top of the base.
    const std::size_t erased =
        static_cast<std::size_t>(base_matches) - effect.dropped_tombstones +
        effect.dropped_inserts;
    size_ -= erased;
    return erased;
  }
  // General shape: the point-tombstone path, one staged op per match.
  IdTripleVec matches;
  MergedScan(*base_, *delta_, pattern,
             [&matches](const IdTriple& t) { matches.push_back(t); });
  if (matches.empty()) {
    return 0;
  }
  EnsureDeltaWritableLocked();
  for (const IdTriple& t : matches) {
    delta_->StageErase(t, base_->Contains(t));
  }
  size_ -= matches.size();
  if (delta_->op_count() >= compact_threshold_) {
    CompactLocked();
  }
  return matches.size();
}

std::uint64_t DeltaHexastore::EstimateMatches(const IdPattern& pattern) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Base contribution from the sextuple indexes, minus what the pattern
  // tombstones suppress (exact per erased predicate).
  std::uint64_t base_count = base_->CountMatches(pattern);
  if (delta_->HasPatternErases()) {
    if (pattern.has_p()) {
      if (delta_->PatternErased(pattern.p)) {
        base_count = 0;
      }
    } else {
      for (Id p : delta_->pattern_erased_predicates()) {
        IdPattern bound = pattern;
        bound.p = p;
        base_count -= std::min(base_count, base_->CountMatches(bound));
      }
    }
  }
  // Point tombstones are a subset of the base; assume they hit this
  // pattern in proportion to its base selectivity.
  const std::size_t base_size = base_->size();
  if (base_size > 0) {
    const std::uint64_t expected_tombstoned = static_cast<std::uint64_t>(
        static_cast<double>(base_count) *
        static_cast<double>(delta_->tombstone_count()) /
        static_cast<double>(base_size));
    base_count -= std::min(base_count, expected_tombstoned);
  }
  // Staged inserts in range are counted exactly: a bound-prefix range
  // scan of the delta's sorted runs, no base access.
  return base_count + delta_->CountInserts(pattern);
}

void DeltaHexastore::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  CompactLocked();
}

std::size_t DeltaHexastore::StagedOps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delta_->op_count();
}

std::uint64_t DeltaHexastore::CompactionCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return compactions_;
}

DeltaStats DeltaHexastore::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DeltaStats stats;
  stats.staged_inserts = delta_->insert_count();
  stats.staged_tombstones = delta_->tombstone_count();
  stats.pattern_tombstones = delta_->pattern_erased_predicates().size();
  stats.compact_threshold = compact_threshold_;
  stats.compactions = compactions_;
  stats.epoch = epoch_;
  stats.base_triples = base_->size();
  stats.base_bytes = base_->MemoryBytes();
  stats.delta_bytes = delta_->MemoryBytes();
  return stats;
}

DeltaHexastore::Snapshot DeltaHexastore::GetSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  ExposeLocked();
  return Snapshot(base_, delta_, size_, epoch_);
}

bool DeltaHexastore::Snapshot::Contains(const IdTriple& t) const {
  return MergedContains(*base_, *delta_, t);
}

void DeltaHexastore::Snapshot::Scan(const IdPattern& pattern,
                                    const TripleSink& sink) const {
  MergedScan(*base_, *delta_, pattern, sink);
}

IdTripleVec DeltaHexastore::Snapshot::Match(const IdPattern& pattern) const {
  IdTripleVec out;
  Scan(pattern, [&out](const IdTriple& t) { out.push_back(t); });
  std::sort(out.begin(), out.end());
  return out;
}

MergedList DeltaHexastore::objects(Id s, Id p) const {
  std::lock_guard<std::mutex> lock(mu_);
  ExposeLocked();
  const DeltaList* lists = delta_->FindLists(ListFamily::kObjects, s, p);
  const IdVec* adds = lists == nullptr ? nullptr : &lists->adds;
  if (delta_->PatternErased(p)) {
    // The whole base o(s,p) list is pattern-tombstoned; only staged
    // (re-)inserts survive. Point removes cannot exist for this p.
    return MergedList(base_, delta_, static_cast<const IdVec*>(nullptr),
                      adds, nullptr);
  }
  return MergedList(base_, delta_, base_->objects(s, p), adds,
                    lists == nullptr ? nullptr : &lists->removes);
}

MergedList DeltaHexastore::predicates(Id s, Id o) const {
  std::lock_guard<std::mutex> lock(mu_);
  ExposeLocked();
  const DeltaList* lists = delta_->FindLists(ListFamily::kPredicates, s, o);
  const IdVec* adds = lists == nullptr ? nullptr : &lists->adds;
  const IdVec* removes = lists == nullptr ? nullptr : &lists->removes;
  const IdVec* base_list = base_->predicates(s, o);
  if (delta_->HasPatternErases() && base_list != nullptr) {
    // Members of p(s,o) are predicates: drop the pattern-erased ones
    // from the base side (the view owns the filtered copy).
    auto filtered = std::make_shared<IdVec>();
    filtered->reserve(base_list->size());
    for (Id p : *base_list) {
      if (!delta_->PatternErased(p)) {
        filtered->push_back(p);
      }
    }
    return MergedList(base_, delta_, std::move(filtered), adds, removes);
  }
  return MergedList(base_, delta_, base_list, adds, removes);
}

MergedList DeltaHexastore::subjects(Id p, Id o) const {
  std::lock_guard<std::mutex> lock(mu_);
  ExposeLocked();
  const DeltaList* lists = delta_->FindLists(ListFamily::kSubjects, p, o);
  const IdVec* adds = lists == nullptr ? nullptr : &lists->adds;
  if (delta_->PatternErased(p)) {
    return MergedList(base_, delta_, static_cast<const IdVec*>(nullptr),
                      adds, nullptr);
  }
  return MergedList(base_, delta_, base_->subjects(p, o), adds,
                    lists == nullptr ? nullptr : &lists->removes);
}

IdVec DeltaHexastore::predicates_of_subject(Id s) const {
  std::lock_guard<std::mutex> lock(mu_);
  return MergedHeaderVec(*base_, *delta_, ListFamily::kObjects,
                         /*match_a=*/true, s,
                         base_->predicates_of_subject(s),
                         [this](Id p) { return !delta_->PatternErased(p); });
}

IdVec DeltaHexastore::objects_of_subject(Id s) const {
  std::lock_guard<std::mutex> lock(mu_);
  return MergedHeaderVec(*base_, *delta_, ListFamily::kPredicates,
                         /*match_a=*/true, s, base_->objects_of_subject(s),
                         [this, s](Id o) {
                           return EffectiveBaseListSize(
                                      *base_, *delta_,
                                      ListFamily::kPredicates,
                                      IdPair{s, o}) > 0;
                         });
}

IdVec DeltaHexastore::subjects_of_predicate(Id p) const {
  std::lock_guard<std::mutex> lock(mu_);
  const bool erased = delta_->PatternErased(p);
  return MergedHeaderVec(*base_, *delta_, ListFamily::kObjects,
                         /*match_a=*/false, p,
                         base_->subjects_of_predicate(p),
                         [erased](Id) { return !erased; });
}

IdVec DeltaHexastore::objects_of_predicate(Id p) const {
  std::lock_guard<std::mutex> lock(mu_);
  const bool erased = delta_->PatternErased(p);
  return MergedHeaderVec(*base_, *delta_, ListFamily::kSubjects,
                         /*match_a=*/true, p,
                         base_->objects_of_predicate(p),
                         [erased](Id) { return !erased; });
}

IdVec DeltaHexastore::subjects_of_object(Id o) const {
  std::lock_guard<std::mutex> lock(mu_);
  return MergedHeaderVec(*base_, *delta_, ListFamily::kPredicates,
                         /*match_a=*/false, o,
                         base_->subjects_of_object(o),
                         [this, o](Id s) {
                           return EffectiveBaseListSize(
                                      *base_, *delta_,
                                      ListFamily::kPredicates,
                                      IdPair{s, o}) > 0;
                         });
}

IdVec DeltaHexastore::predicates_of_object(Id o) const {
  std::lock_guard<std::mutex> lock(mu_);
  return MergedHeaderVec(*base_, *delta_, ListFamily::kSubjects,
                         /*match_a=*/false, o,
                         base_->predicates_of_object(o),
                         [this](Id p) { return !delta_->PatternErased(p); });
}

std::shared_ptr<const Hexastore> DeltaHexastore::base() const {
  std::lock_guard<std::mutex> lock(mu_);
  base_exposed_ = true;
  return base_;
}

bool DeltaHexastore::CheckInvariants(std::string* error) const {
  // Runs entirely under the mutex (test path): no generation escapes, so
  // the in-place compaction fast path stays available afterwards.
  std::lock_guard<std::mutex> lock(mu_);
  const Hexastore* base = base_.get();
  const DeltaStore* delta = delta_.get();
  const std::size_t size = size_;
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) {
      *error = msg;
    }
    return false;
  };
  if (!base->CheckInvariants(error)) {
    return false;
  }
  // Delta-layer contract: staged inserts are disjoint from the base,
  // tombstones are a subset of it, and every op is mirrored in all three
  // side-list families.
  bool ok = true;
  std::string msg;
  delta->ForEachOp([&](const IdTriple& t, DeltaOp op) {
    if (!ok) {
      return;
    }
    if (op == DeltaOp::kInsert && base->Contains(t) &&
        !delta->PatternErased(t.p)) {
      // (Adds may coincide with base triples only when the pattern
      // tombstone suppresses the base copy.)
      ok = false;
      msg = "staged insert already present in base";
      return;
    }
    if (op == DeltaOp::kTombstone &&
        (!base->Contains(t) || delta->PatternErased(t.p))) {
      ok = false;
      msg = "tombstone absent from base or subsumed by a pattern erase";
      return;
    }
    const DeltaList* objects =
        delta->FindLists(ListFamily::kObjects, t.s, t.p);
    const DeltaList* predicates =
        delta->FindLists(ListFamily::kPredicates, t.s, t.o);
    const DeltaList* subjects =
        delta->FindLists(ListFamily::kSubjects, t.p, t.o);
    const bool is_add = op == DeltaOp::kInsert;
    auto in = [is_add](const DeltaList* lists, Id third) {
      return lists != nullptr &&
             SortedContains(is_add ? lists->adds : lists->removes, third);
    };
    if (!in(objects, t.o) || !in(predicates, t.p) || !in(subjects, t.s)) {
      ok = false;
      msg = "staged op missing from a delta side list";
    }
  });
  if (!ok) {
    return fail(msg);
  }
  // Side-list totals match the op counters in every family.
  for (int f = 0; f < 3; ++f) {
    std::size_t adds = 0;
    std::size_t removes = 0;
    delta->ForEachList(static_cast<ListFamily>(f),
                       [&](const IdPair&, const DeltaList& lists) {
                         adds += lists.adds.size();
                         removes += lists.removes.size();
                       });
    if (adds != delta->insert_count() ||
        removes != delta->tombstone_count()) {
      std::ostringstream os;
      os << "delta side-list family " << f << " totals (" << adds << ", "
         << removes << ") disagree with op counters ("
         << delta->insert_count() << ", " << delta->tombstone_count()
         << ")";
      return fail(os.str());
    }
  }
  std::size_t pattern_suppressed = 0;
  for (Id p : delta->pattern_erased_predicates()) {
    pattern_suppressed +=
        static_cast<std::size_t>(base->CountMatches(IdPattern{0, p, 0}));
  }
  const std::size_t merged_size = static_cast<std::size_t>(
      static_cast<std::ptrdiff_t>(base->size() - pattern_suppressed) +
      delta->size_delta());
  if (merged_size != size) {
    std::ostringstream os;
    os << "merged size " << merged_size << " != tracked size " << size;
    return fail(os.str());
  }
  return true;
}

void DeltaHexastore::ExposeLocked() const {
  // Pre-build the delta's lazy caches before pointers leave the mutex:
  // frozen readers (snapshots, merged views) must never trigger a cache
  // build on shared state.
  delta_->Freeze();
  base_exposed_ = true;
  delta_exposed_ = true;
}

void DeltaHexastore::EnsureDeltaWritableLocked() {
  if (delta_exposed_) {
    delta_ = std::make_shared<DeltaStore>(*delta_);
    delta_exposed_ = false;
  }
}

void DeltaHexastore::CompactLocked() {
  if (delta_->empty()) {
    return;
  }
  if (!base_exposed_) {
    // The base never escaped the mutex: drain in place. Pattern
    // tombstones purge their base matches first (this is where the bulk
    // erase finally pays O(matches), amortized into the drain), then the
    // point tombstones (each an O(log + shift) point erase), then one
    // sorted merge of the staged inserts through the non-empty BulkLoad
    // path.
    for (Id p : delta_->pattern_erased_predicates()) {
      for (const IdTriple& t : base_->Match(IdPattern{0, p, 0})) {
        base_->Erase(t);
      }
    }
    for (const IdTriple& t : delta_->SortedTombstones()) {
      base_->Erase(t);
    }
    base_->BulkLoad(delta_->SortedInserts());
  } else {
    // A snapshot or merged view may still read the base: rebuild the
    // merged state into a fresh store and swap, leaving the old
    // generation untouched for its readers.
    IdTripleVec all;
    all.reserve(size_);
    MergedScan(*base_, *delta_, IdPattern{},
               [&all](const IdTriple& t) { all.push_back(t); });
    std::sort(all.begin(), all.end());
    auto fresh = std::make_shared<Hexastore>();
    fresh->BulkLoad(all);
    base_ = std::move(fresh);
    base_exposed_ = false;
  }
  if (delta_exposed_) {
    delta_ = std::make_shared<DeltaStore>();
    delta_exposed_ = false;
  } else {
    delta_->Clear();
  }
  ++compactions_;
  ++epoch_;
  size_ = base_->size();
}

}  // namespace hexastore

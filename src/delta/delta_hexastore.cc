#include "delta/delta_hexastore.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

#include "delta/level.h"
#include "obs/scoped_timer.h"

namespace hexastore {

namespace {

// One read view over the delta-layer chain of a DeltaHexastore: the base
// plus `count` DeltaStore layers ordered bottom-up (L1, L0 oldest→
// newest, active). Semantics are layer(…layer(base, layers[0])…,
// layers[count-1]) where each DeltaStore applies its tombstones and
// pattern erases to everything beneath it and contributes its staged
// inserts.
//
// Raw pointers: the hot paths (every Insert/Erase/Contains) build one of
// these per call under the store mutex, where the owners are guaranteed
// alive — shared_ptr members would add refcount traffic to exactly the
// write path this subsystem exists to keep flat. The accessor helpers
// that hand out views outliving the call take OverlayView instead.
struct LayerRefs {
  const Hexastore* base = nullptr;
  const DeltaStore* const* layers = nullptr;
  std::size_t count = 0;
};

// The layers *beneath* the topmost one — what the staging invariants of
// the active buffer are defined against.
LayerRefs Beneath(const LayerRefs& v) {
  return {v.base, v.layers, v.count == 0 ? 0 : v.count - 1};
}

// Shared-ownership variant for helpers whose result (a MergedList) must
// keep its generation alive after the mutex is released. `overlay` is
// the sole delta layer when refs.count <= 1 (the zero-copy fast path);
// with more layers the accessors materialize and own their ids.
struct OverlayView {
  std::shared_ptr<const Hexastore> base;
  std::shared_ptr<const DeltaStore> overlay;
  LayerRefs refs;
};

// Merged membership test across the chain: the newest layer's verdict
// wins, the base answers only when no layer staged anything for `t`.
bool LayeredContains(const LayerRefs& v, const IdTriple& t) {
  for (std::size_t i = v.count; i-- > 0;) {
    switch (v.layers[i]->FilteredLookup(t)) {
      case DeltaStore::Presence::kInserted:
        return true;
      case DeltaStore::Presence::kErased:
        return false;
      case DeltaStore::Presence::kUnknown:
        break;
    }
  }
  return v.base != nullptr && v.base->Contains(t);
}

// Merged pattern scan: base matches with every layer's point and pattern
// tombstones filtered out (one hash probe per layer per emitted triple),
// then each layer's staged inserts bottom-up via bound-prefix range
// scans of its sorted runs. A non-kUnknown verdict from a layer above
// means that layer owns the triple's fate (its own insert scan emits a
// re-staged copy), so lower copies are skipped — no duplicates.
void LayeredScan(const LayerRefs& v, const IdPattern& pattern,
                 const TripleSink& sink) {
  auto unknown_above = [&v](std::size_t from, const IdTriple& t) {
    for (std::size_t i = from; i < v.count; ++i) {
      if (v.layers[i]->FilteredLookup(t) != DeltaStore::Presence::kUnknown) {
        return false;
      }
    }
    return true;
  };
  if (v.base != nullptr) {
    v.base->Scan(pattern, [&](const IdTriple& t) {
      if (unknown_above(0, t)) {
        sink(t);
      }
    });
  }
  for (std::size_t i = 0; i < v.count; ++i) {
    v.layers[i]->ScanInserts(pattern, [&](const IdTriple& t) {
      if (unknown_above(i + 1, t)) {
        sink(t);
      }
    });
  }
}

// Planner estimate of `pattern` over the base plus the first `n` layers
// of the chain: the base index count, then each layer's adjustments
// bottom-up — pattern erases suppress the estimate of the *whole stack
// beneath the layer* (recursing with the predicate bound, so staged
// inserts in lower runs are deduplicated, not just base matches), point
// tombstones are scaled by the pattern's selectivity in the layers
// beneath, staged inserts are counted exactly. Fully-bound patterns are
// answered exactly through the verdict chain instead of the scaling
// model (which could leave a fractional tombstone as weight 1).
std::uint64_t EstimateUpTo(const LayerRefs& v, std::size_t n,
                           const IdPattern& pattern) {
  if (pattern.has_s() && pattern.has_p() && pattern.has_o()) {
    const IdTriple t{pattern.s, pattern.p, pattern.o};
    for (std::size_t i = n; i-- > 0;) {
      switch (v.layers[i]->FilteredLookup(t)) {
        case DeltaStore::Presence::kInserted:
          return 1;
        case DeltaStore::Presence::kErased:
          return 0;
        case DeltaStore::Presence::kUnknown:
          break;
      }
    }
    return v.base != nullptr && v.base->Contains(t) ? 1 : 0;
  }
  std::uint64_t count =
      v.base == nullptr ? 0 : v.base->CountMatches(pattern);
  std::size_t beneath_size = v.base == nullptr ? 0 : v.base->size();
  for (std::size_t i = 0; i < n; ++i) {
    const DeltaStore* layer = v.layers[i];
    if (layer->HasPatternErases()) {
      if (pattern.has_p()) {
        if (layer->PatternErased(pattern.p)) {
          count = 0;
        }
      } else {
        for (Id p : layer->pattern_erased_predicates()) {
          IdPattern bound = pattern;
          bound.p = p;
          // Everything the stack beneath this layer would contribute
          // for the suppressed predicate disappears — including staged
          // inserts in lower runs, which the pre-filter estimate missed
          // (it subtracted base matches only and double-counted an
          // insert re-staged above the pattern).
          const std::uint64_t suppressed = EstimateUpTo(v, i, bound);
          count -= std::min(count, suppressed);
        }
      }
      for (Id p : layer->pattern_erased_predicates()) {
        const std::uint64_t dropped =
            EstimateUpTo(v, i, IdPattern{0, p, 0});
        beneath_size -= std::min<std::size_t>(beneath_size, dropped);
      }
    }
    if (beneath_size > 0) {
      const std::uint64_t expected_tombstoned = static_cast<std::uint64_t>(
          static_cast<double>(count) *
          static_cast<double>(layer->tombstone_count()) /
          static_cast<double>(beneath_size));
      count -= std::min(count, expected_tombstoned);
    }
    count += layer->CountInserts(pattern);
    beneath_size = static_cast<std::size_t>(std::max<std::ptrdiff_t>(
        0, static_cast<std::ptrdiff_t>(beneath_size) + layer->size_delta()));
  }
  return count;
}

std::uint64_t LayeredEstimate(const LayerRefs& v, const IdPattern& pattern) {
  return EstimateUpTo(v, v.count, pattern);
}

// Size of the base terminal list under `key` after the delta's pattern
// tombstones are applied: an o(s,p) or s(p,o) list dies wholesale when
// its predicate key side is pattern-erased, while a p(s,o) list loses
// exactly its pattern-erased members.
std::size_t EffectiveBaseListSize(const Hexastore* base,
                                  const DeltaStore& delta,
                                  ListFamily family, const IdPair& key) {
  const IdVec* list =
      base == nullptr ? nullptr : base->pool().Find(family, key.a, key.b);
  if (list == nullptr) {
    return 0;
  }
  if (!delta.HasPatternErases()) {
    return list->size();
  }
  switch (family) {
    case ListFamily::kObjects:  // key (s, p)
      return delta.PatternErased(key.b) ? 0 : list->size();
    case ListFamily::kSubjects:  // key (p, o)
      return delta.PatternErased(key.a) ? 0 : list->size();
    case ListFamily::kPredicates: {  // key (s, o); members are predicates
      std::size_t n = 0;
      for (Id p : *list) {
        if (!delta.PatternErased(p)) {
          ++n;
        }
      }
      return n;
    }
  }
  return list->size();
}

// Merged header vector: the base index's sorted header-member vector
// adjusted by one delta layer's touched terminal lists. A second-level id
// stays in (or joins) the vector iff the merged terminal list under the
// (header, id) pair is non-empty — exactly the rule Hexastore::Erase uses
// to drop emptied pairs.
//
// `match_a` selects which side of the family's (a, b) key is the header
// role; the other side is the second-level id. `base_member_alive` is
// the pattern-tombstone filter for untouched base members (only
// consulted when the delta has pattern erases — the common path copies
// the base vector untouched).
template <typename AliveFn>
IdVec MergedHeaderVec(const Hexastore* base, const DeltaStore* delta,
                      ListFamily family, bool match_a, Id header,
                      const IdVec* base_vec, AliveFn&& base_member_alive) {
  IdVec out;
  if (base_vec != nullptr) {
    if (delta == nullptr || !delta->HasPatternErases()) {
      out = *base_vec;
    } else {
      out.reserve(base_vec->size());
      for (Id member : *base_vec) {
        if (base_member_alive(member)) {
          out.push_back(member);
        }
      }
    }
  }
  if (delta == nullptr) {
    return out;
  }
  delta->ForEachList(
      family, [&](const IdPair& key, const DeltaList& lists) {
        if ((match_a ? key.a : key.b) != header) {
          return;
        }
        const Id other = match_a ? key.b : key.a;
        const std::size_t merged_size =
            EffectiveBaseListSize(base, *delta, family, key) +
            lists.adds.size() - lists.removes.size();
        if (merged_size > 0) {
          SortedInsert(&out, other);
        } else {
          SortedErase(&out, other);
        }
      });
  return out;
}

// Materialized terminal-list fallback for multi-layer views (taken
// whenever sealed runs exist under the active buffer): scan the bound
// pair and collect the third role. The result vector is owned by the
// returned MergedList, so nothing points into any run.
MergedList MaterializedList(const OverlayView& v, const IdPattern& pattern,
                            Id IdTriple::*third) {
  auto owned = std::make_shared<IdVec>();
  LayeredScan(v.refs, pattern, [&owned, third](const IdTriple& t) {
    owned->push_back(t.*third);
  });
  SortUnique(owned.get());
  return MergedList(nullptr, nullptr, std::move(owned), nullptr, nullptr);
}

// Materialized header-vector fallback for multi-layer views: scan the
// single bound role and collect the distinct values of `member`.
IdVec MaterializedHeaderVec(const LayerRefs& v, const IdPattern& pattern,
                            Id IdTriple::*member) {
  IdVec out;
  LayeredScan(v, pattern,
              [&out, member](const IdTriple& t) { out.push_back(t.*member); });
  SortUnique(&out);
  return out;
}

// -- Single-overlay (base + one layer) accessor bodies --------------------
// The zero-copy fast paths, valid whenever at most one delta layer
// exists (v.overlay — usually the active buffer; for a generation whose
// only layer is an L1 run, that run).

MergedList LayeredObjects(const OverlayView& v, Id s, Id p) {
  if (v.refs.count > 1) {
    return MaterializedList(v, IdPattern{s, p, 0}, &IdTriple::o);
  }
  const DeltaStore* delta = v.overlay.get();
  const DeltaList* lists =
      delta == nullptr ? nullptr : delta->FindLists(ListFamily::kObjects, s, p);
  const IdVec* adds = lists == nullptr ? nullptr : &lists->adds;
  const IdVec* base_list =
      v.base == nullptr ? nullptr : v.base->objects(s, p);
  if (delta != nullptr && delta->PatternErased(p)) {
    // The whole base o(s,p) list is pattern-tombstoned; only staged
    // (re-)inserts survive. Point removes cannot exist for this p.
    return MergedList(v.base, v.overlay, static_cast<const IdVec*>(nullptr),
                      adds, nullptr);
  }
  return MergedList(v.base, v.overlay, base_list, adds,
                    lists == nullptr ? nullptr : &lists->removes);
}

MergedList LayeredPredicates(const OverlayView& v, Id s, Id o) {
  if (v.refs.count > 1) {
    return MaterializedList(v, IdPattern{s, 0, o}, &IdTriple::p);
  }
  const DeltaStore* delta = v.overlay.get();
  const DeltaList* lists =
      delta == nullptr ? nullptr
                       : delta->FindLists(ListFamily::kPredicates, s, o);
  const IdVec* adds = lists == nullptr ? nullptr : &lists->adds;
  const IdVec* removes = lists == nullptr ? nullptr : &lists->removes;
  const IdVec* base_list =
      v.base == nullptr ? nullptr : v.base->predicates(s, o);
  if (delta != nullptr && delta->HasPatternErases() && base_list != nullptr) {
    // Members of p(s,o) are predicates: drop the pattern-erased ones
    // from the base side (the view owns the filtered copy).
    auto filtered = std::make_shared<IdVec>();
    filtered->reserve(base_list->size());
    for (Id p : *base_list) {
      if (!delta->PatternErased(p)) {
        filtered->push_back(p);
      }
    }
    return MergedList(v.base, v.overlay, std::move(filtered), adds, removes);
  }
  return MergedList(v.base, v.overlay, base_list, adds, removes);
}

MergedList LayeredSubjects(const OverlayView& v, Id p, Id o) {
  if (v.refs.count > 1) {
    return MaterializedList(v, IdPattern{0, p, o}, &IdTriple::s);
  }
  const DeltaStore* delta = v.overlay.get();
  const DeltaList* lists =
      delta == nullptr ? nullptr
                       : delta->FindLists(ListFamily::kSubjects, p, o);
  const IdVec* adds = lists == nullptr ? nullptr : &lists->adds;
  const IdVec* base_list =
      v.base == nullptr ? nullptr : v.base->subjects(p, o);
  if (delta != nullptr && delta->PatternErased(p)) {
    return MergedList(v.base, v.overlay, static_cast<const IdVec*>(nullptr),
                      adds, nullptr);
  }
  return MergedList(v.base, v.overlay, base_list, adds,
                    lists == nullptr ? nullptr : &lists->removes);
}

IdVec LayeredPredicatesOfSubject(const LayerRefs& v, Id s) {
  if (v.count > 1) {
    return MaterializedHeaderVec(v, IdPattern{s, 0, 0}, &IdTriple::p);
  }
  const DeltaStore* delta = v.count == 1 ? v.layers[0] : nullptr;
  return MergedHeaderVec(
      v.base, delta, ListFamily::kObjects, /*match_a=*/true, s,
      v.base == nullptr ? nullptr : v.base->predicates_of_subject(s),
      [delta](Id p) { return !delta->PatternErased(p); });
}

IdVec LayeredObjectsOfSubject(const LayerRefs& v, Id s) {
  if (v.count > 1) {
    return MaterializedHeaderVec(v, IdPattern{s, 0, 0}, &IdTriple::o);
  }
  const DeltaStore* delta = v.count == 1 ? v.layers[0] : nullptr;
  const Hexastore* base = v.base;
  return MergedHeaderVec(
      base, delta, ListFamily::kPredicates, /*match_a=*/true, s,
      base == nullptr ? nullptr : base->objects_of_subject(s),
      [base, delta, s](Id o) {
        return EffectiveBaseListSize(base, *delta, ListFamily::kPredicates,
                                     IdPair{s, o}) > 0;
      });
}

IdVec LayeredSubjectsOfPredicate(const LayerRefs& v, Id p) {
  if (v.count > 1) {
    return MaterializedHeaderVec(v, IdPattern{0, p, 0}, &IdTriple::s);
  }
  const DeltaStore* delta = v.count == 1 ? v.layers[0] : nullptr;
  const bool erased = delta != nullptr && delta->PatternErased(p);
  return MergedHeaderVec(
      v.base, delta, ListFamily::kObjects, /*match_a=*/false, p,
      v.base == nullptr ? nullptr : v.base->subjects_of_predicate(p),
      [erased](Id) { return !erased; });
}

IdVec LayeredObjectsOfPredicate(const LayerRefs& v, Id p) {
  if (v.count > 1) {
    return MaterializedHeaderVec(v, IdPattern{0, p, 0}, &IdTriple::o);
  }
  const DeltaStore* delta = v.count == 1 ? v.layers[0] : nullptr;
  const bool erased = delta != nullptr && delta->PatternErased(p);
  return MergedHeaderVec(
      v.base, delta, ListFamily::kSubjects, /*match_a=*/true, p,
      v.base == nullptr ? nullptr : v.base->objects_of_predicate(p),
      [erased](Id) { return !erased; });
}

IdVec LayeredSubjectsOfObject(const LayerRefs& v, Id o) {
  if (v.count > 1) {
    return MaterializedHeaderVec(v, IdPattern{0, 0, o}, &IdTriple::s);
  }
  const DeltaStore* delta = v.count == 1 ? v.layers[0] : nullptr;
  const Hexastore* base = v.base;
  return MergedHeaderVec(
      base, delta, ListFamily::kPredicates, /*match_a=*/false, o,
      base == nullptr ? nullptr : base->subjects_of_object(o),
      [base, delta, o](Id s) {
        return EffectiveBaseListSize(base, *delta, ListFamily::kPredicates,
                                     IdPair{s, o}) > 0;
      });
}

IdVec LayeredPredicatesOfObject(const LayerRefs& v, Id o) {
  if (v.count > 1) {
    return MaterializedHeaderVec(v, IdPattern{0, 0, o}, &IdTriple::p);
  }
  const DeltaStore* delta = v.count == 1 ? v.layers[0] : nullptr;
  return MergedHeaderVec(
      v.base, delta, ListFamily::kSubjects, /*match_a=*/false, o,
      v.base == nullptr ? nullptr : v.base->predicates_of_object(o),
      [delta](Id p) { return !delta->PatternErased(p); });
}

// Off-thread merge of one delta run into a base: materializes
// base ∖ pattern-erased ∖ tombstones ∪ inserts into a fresh store. Reads
// only immutable state and the run's pure (non-caching) accessors, so it
// is safe to run without the store mutex while mutex readers lazily
// build the run's caches.
std::shared_ptr<Hexastore> MergeOffline(const Hexastore* base,
                                        const DeltaStore& run) {
  IdTripleVec merged;
  const IdTripleVec tombstones = run.SortedTombstones();
  const IdTripleVec inserts = run.SortedInserts();
  const IdVec& erased_preds = run.pattern_erased_predicates();
  if (base != nullptr) {
    // Match() materializes in (s, p, o) order, so the tombstone cursor
    // advances in lock-step.
    const IdTripleVec existing = base->Match(IdPattern{});
    merged.reserve(existing.size() + inserts.size());
    std::size_t ti = 0;
    for (const IdTriple& t : existing) {
      if (!erased_preds.empty() && SortedContains(erased_preds, t.p)) {
        continue;  // pattern-suppressed (re-inserts arrive via `inserts`)
      }
      while (ti < tombstones.size() && tombstones[ti] < t) {
        ++ti;
      }
      if (ti < tombstones.size() && tombstones[ti] == t) {
        ++ti;
        continue;
      }
      merged.push_back(t);
    }
  }
  IdTripleVec all;
  all.reserve(merged.size() + inserts.size());
  std::merge(merged.begin(), merged.end(), inserts.begin(), inserts.end(),
             std::back_inserter(all));
  auto fresh = std::make_shared<Hexastore>();
  fresh->BulkLoad(all);
  return fresh;
}

// The sole delta layer's shared owner within a generation, for the
// zero-copy accessor fast path; null when the chain is empty or has
// more than one layer.
std::shared_ptr<const DeltaStore> SoleLayerOwner(const DeltaGeneration& gen) {
  if (gen.chain.size() != 1) {
    return nullptr;
  }
  const DeltaStore* sole = gen.chain[0];
  if (gen.active.get() == sole) {
    return gen.active;
  }
  if (gen.levels.l1.get() == sole) {
    return gen.levels.l1;
  }
  for (const auto& run : gen.levels.l0) {
    if (run.get() == sole) {
      return run;
    }
  }
  return nullptr;
}

LayerRefs GenRefs(const DeltaGeneration& gen) {
  return {gen.base.get(), gen.chain.data(), gen.chain.size()};
}

OverlayView GenView(const DeltaGeneration& gen) {
  return {gen.base, SoleLayerOwner(gen), GenRefs(gen)};
}

}  // namespace

DeltaHexastore::DeltaHexastore(std::size_t compact_threshold)
    : DeltaHexastore(DeltaOptions{compact_threshold, false}) {}

std::string DeltaOptions::Normalize() {
  std::string repaired;
  auto note = [&repaired](const std::string& what) {
    if (!repaired.empty()) {
      repaired += "; ";
    }
    repaired += what;
  };
  if (compact_threshold == 0) {
    compact_threshold = 1;
    note("compact_threshold 0 is invalid, clamped to 1");
  }
  if (!std::isfinite(l1_base_fraction) || l1_base_fraction <= 0.0) {
    // 0, negative, NaN and inf all used to slip through a max(0.0, f)
    // clamp (NaN propagates to 0.0 there) and silently degrade the store
    // to always-base-merge; reset to the documented default instead.
    std::ostringstream os;
    os << "l1_base_fraction " << l1_base_fraction
       << " is invalid (must be finite and > 0), reset to 0.25";
    note(os.str());
    l1_base_fraction = 0.25;
  }
  if (filter_bits_per_key > 64) {
    filter_bits_per_key = 64;
    note("filter_bits_per_key clamped to 64");
  }
  return repaired;
}

DeltaHexastore::DeltaHexastore(const DeltaOptions& options)
    : base_(std::make_shared<Hexastore>()), trace_(options.trace_capacity) {
  DeltaOptions normalized = options;
  const std::string repaired = normalized.Normalize();
  if (!repaired.empty()) {
    std::fprintf(stderr, "DeltaHexastore options: %s\n", repaired.c_str());
  }
  compact_threshold_ = normalized.compact_threshold;
  background_ = normalized.background_compaction;
  l0_run_limit_ = normalized.l0_run_limit;
  l1_base_fraction_ = normalized.l1_base_fraction;
  memory_budget_ = normalized.memory_budget_bytes;
  filter_bits_l0_ = normalized.filter_bits_per_key;
  // Monkey-style sizing: the few hot L0 runs take most point probes and
  // get the full bit budget; the one cold L1 run holds far more keys, so
  // halving its bits saves most of the filter memory for a modest
  // false-positive increase.
  filter_bits_l1_ = filter_bits_l0_ == 0
                        ? 0
                        : std::max<std::size_t>(2, filter_bits_l0_ / 2);
  tracker_ = std::make_shared<MemoryTracker>();
  filter_counters_ = std::make_shared<RunFilterCounters>();
  RegisterMeters();
  delta_ = FreshDeltaLocked();
  RebuildChainLocked();
  if (background_) {
    // The compactor drains reclaimed generations off the mutex, so
    // freeing a superseded base or folded run never stalls writers.
    gate_.set_deferred_reclaim(true);
    merger_ = std::thread(&DeltaHexastore::MergerLoop, this);
  }
}

DeltaHexastore::~DeltaHexastore() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (merger_.joinable()) {
    merger_.join();
  }
  // Final export while every instrument is still alive (members are
  // destroyed after this body). $HEXA_METRICS_JSON unset ⇒ no-op.
  {
    std::lock_guard<std::mutex> lock(mu_);
    RefreshGaugesLocked();
  }
  registry_.DumpToEnvPathIfSet();
}

void DeltaHexastore::RegisterMeters() {
  registry_.RegisterCounter("hexa_delta_compactions_total",
                            "merges completed (drains, folds, base merges)",
                            &meters_.compactions);
  registry_.RegisterCounter("hexa_delta_seals_total",
                            "staging buffers sealed into L0 runs",
                            &meters_.seals);
  registry_.RegisterCounter("hexa_delta_background_merges_total",
                            "base merges completed on the compactor thread",
                            &meters_.background_merges);
  registry_.RegisterCounter("hexa_delta_merge_discards_total",
                            "in-flight merges invalidated by Clear/BulkLoad",
                            &meters_.merge_discards);
  registry_.RegisterCounter("hexa_delta_seal_overflows_total",
                            "threshold hits no level could absorb",
                            &meters_.seal_overflows);
  registry_.RegisterCounter("hexa_delta_l0_merges_total",
                            "L0 to L1 folds completed", &meters_.l0_merges);
  registry_.RegisterCounter("hexa_delta_base_merges_total",
                            "merges drained into or rebuilding the base",
                            &meters_.base_merges);
  registry_.RegisterCounter("hexa_delta_merge_run_ops_total",
                            "ops written while building folded runs",
                            &meters_.merge_run_ops);
  registry_.RegisterCounter("hexa_delta_base_rebuild_triples_total",
                            "triples written by base merges",
                            &meters_.base_rebuild_triples);
  registry_.RegisterCounter("hexa_delta_staged_ops_total",
                            "ops ever staged (write-amplification base)",
                            &meters_.staged_ops_total);
  registry_.RegisterCounter("hexa_delta_filters_dropped_total",
                            "seals that skipped their Bloom filter "
                            "(budget pressure)",
                            &meters_.filters_dropped);
  registry_.RegisterCounter("hexa_delta_budget_seals_total",
                            "seals forced by the memory budget",
                            &meters_.budget_seals);
  registry_.RegisterCounter("hexa_delta_budget_folds_total",
                            "L0 folds forced by the memory budget",
                            &meters_.budget_folds);
  registry_.RegisterCounter("hexa_delta_budget_base_merges_total",
                            "base merges forced by the memory budget",
                            &meters_.budget_base_merges);
  registry_.RegisterCounter("hexa_filter_probes_total",
                            "point and prefix Bloom-filter checks",
                            &filter_counters_->probes);
  registry_.RegisterCounter("hexa_filter_skips_total",
                            "runs proven key-free and skipped",
                            &filter_counters_->skips);
  registry_.RegisterCounter("hexa_filter_false_positives_total",
                            "filter passes with no op-table hit",
                            &filter_counters_->false_positives);
  registry_.RegisterHistogram("hexa_insert_latency_ns",
                              "Insert latency (1-in-128 sampled)",
                              &meters_.insert_ns);
  registry_.RegisterHistogram("hexa_erase_latency_ns",
                              "Erase latency (1-in-128 sampled)",
                              &meters_.erase_ns);
  registry_.RegisterHistogram("hexa_contains_latency_ns",
                              "point-verdict latency (1-in-128 sampled)",
                              &meters_.contains_ns);
  registry_.RegisterHistogram("hexa_handle_acquire_latency_ns",
                              "wait-free read-handle acquisition latency "
                              "(1-in-128 sampled)",
                              &meters_.handle_acquire_ns);
  registry_.RegisterHistogram("hexa_merge_join_latency_ns",
                              "merge-join step latency (1-in-128 sampled)",
                              &meters_.merge_join_ns);
  registry_.RegisterHistogram("hexa_seal_latency_ns", "seal duration",
                              &meters_.seal_ns);
  registry_.RegisterHistogram("hexa_fold_latency_ns",
                              "L0 to L1 fold duration", &meters_.fold_ns);
  registry_.RegisterHistogram("hexa_base_merge_latency_ns",
                              "base merge/rebuild duration",
                              &meters_.base_merge_ns);
  registry_.RegisterGauge("hexa_delta_staged_ops",
                          "ops staged and not yet merged into the base",
                          &meters_.staged_ops);
  registry_.RegisterGauge("hexa_delta_l0_runs", "sealed runs currently in L0",
                          &meters_.l0_runs);
  registry_.RegisterGauge("hexa_delta_l1_ops", "staged ops in the L1 run",
                          &meters_.l1_ops);
  registry_.RegisterGauge("hexa_delta_base_triples",
                          "triples in the compacted base",
                          &meters_.base_triples);
  registry_.RegisterGauge("hexa_delta_resident_bytes",
                          "tracked runs + filters + active table bytes",
                          &meters_.resident_bytes);
  registry_.RegisterGauge("hexa_delta_size_triples",
                          "logical triples in the merged view",
                          &meters_.size_triples);
  registry_.RegisterGauge("hexa_epoch_retire_queue_depth",
                          "generations retired but not yet reclaimed",
                          &meters_.retire_queue_depth);
  gate_.BindObservability(&registry_, &trace_);
  registry_.AttachTraceRing(&trace_);
}

void DeltaHexastore::RefreshGaugesLocked() const {
  meters_.staged_ops.Set(static_cast<std::int64_t>(delta_->op_count() +
                                                   levels_.op_count()));
  meters_.l0_runs.Set(static_cast<std::int64_t>(levels_.l0.size()));
  meters_.l1_ops.Set(static_cast<std::int64_t>(
      levels_.l1 == nullptr ? 0 : levels_.l1->op_count()));
  meters_.base_triples.Set(static_cast<std::int64_t>(base_->size()));
  meters_.resident_bytes.Set(static_cast<std::int64_t>(
      (tracker_ == nullptr ? 0 : tracker_->resident()) +
      delta_->TableBytes()));
  meters_.size_triples.Set(static_cast<std::int64_t>(size_));
  meters_.retire_queue_depth.Set(
      static_cast<std::int64_t>(gate_.Stats().retire_queue_depth));
}

void DeltaHexastore::RebuildChainLocked() {
  chain_.clear();
  levels_.AppendBottomUp(&chain_);
  chain_.push_back(delta_.get());
}

bool DeltaHexastore::Insert(const IdTriple& t) {
  obs::ScopedTimer timer(&meters_.insert_ns);
  std::lock_guard<std::mutex> lock(mu_);
  const LayerRefs refs{base_.get(), chain_.data(), chain_.size()};
  // Read-only no-op check first: a duplicate insert must not pay the
  // copy-on-write clone an exposed delta would otherwise trigger.
  const bool beneath = LayeredContains(Beneath(refs), t);
  const DeltaStore::Presence staged = delta_->Lookup(t);
  if (staged == DeltaStore::Presence::kInserted ||
      (staged == DeltaStore::Presence::kUnknown && beneath)) {
    return false;
  }
  EnsureDeltaWritableLocked();
  delta_->StageInsert(t, beneath);
  ++size_;
  meters_.staged_ops_total.Add();
  dirty_ = true;
  MaybeCompactLocked();
  return true;
}

bool DeltaHexastore::Erase(const IdTriple& t) {
  obs::ScopedTimer timer(&meters_.erase_ns);
  std::lock_guard<std::mutex> lock(mu_);
  const LayerRefs refs{base_.get(), chain_.data(), chain_.size()};
  const bool beneath = LayeredContains(Beneath(refs), t);
  const DeltaStore::Presence staged = delta_->Lookup(t);
  if (staged == DeltaStore::Presence::kErased ||
      (staged == DeltaStore::Presence::kUnknown && !beneath)) {
    return false;
  }
  EnsureDeltaWritableLocked();
  delta_->StageErase(t, beneath);
  --size_;
  meters_.staged_ops_total.Add();
  dirty_ = true;
  MaybeCompactLocked();
  return true;
}

bool DeltaHexastore::Contains(const IdTriple& t) const {
  obs::ScopedTimer timer(&meters_.contains_ns);
  std::lock_guard<std::mutex> lock(mu_);
  return LayeredContains({base_.get(), chain_.data(), chain_.size()}, t);
}

std::size_t DeltaHexastore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

void DeltaHexastore::Scan(const IdPattern& pattern,
                          const TripleSink& sink) const {
  // Materialize under the mutex, emit outside it: the merged walk reads
  // base and delta internals (kept writer-ordered by mu_), while the
  // sink runs unlocked so it may re-enter the store (index-nested-loop
  // joins do) without deadlocking.
  IdTripleVec matches;
  {
    std::lock_guard<std::mutex> lock(mu_);
    LayeredScan({base_.get(), chain_.data(), chain_.size()}, pattern,
                [&matches](const IdTriple& t) { matches.push_back(t); });
  }
  for (const IdTriple& t : matches) {
    sink(t);
  }
}

std::size_t DeltaHexastore::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_->MemoryBytes() + delta_->MemoryBytes() +
         levels_.MemoryBytes();
}

void DeltaHexastore::BulkLoad(const IdTripleVec& triples) {
  std::unique_lock<std::mutex> lock(mu_);
  WaitForMergeLocked(lock);
  CompactLocked();
  if (base_exposed_) {
    // A generation reads the base: load into a rebuilt copy instead.
    auto fresh = std::make_shared<Hexastore>();
    fresh->BulkLoad(base_->Match(IdPattern{}));
    base_ = std::move(fresh);
    base_exposed_ = false;
  }
  base_->BulkLoad(triples);
  trace_.Record(obs::TraceEvent::kBulkLoad, "writer", 0, triples.size());
  size_ = base_->size();
  levels_size_ = size_;
  ++epoch_;
  dirty_ = true;
  if (background_) {
    PublishLocked(size_, /*include_active=*/false);
  }
}

void DeltaHexastore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ClearLocked();
}

void DeltaHexastore::ClearLocked() {
  // Invalidate any in-flight merge: its inputs are gone, its result must
  // be discarded at commit time.
  trace_.Record(obs::TraceEvent::kClear, "writer", 0, size_);
  ++merge_ticket_;
  levels_.clear();
  drain_requested_ = false;
  if (base_exposed_) {
    base_ = std::make_shared<Hexastore>();
    base_exposed_ = false;
  } else {
    base_->Clear();
  }
  if (delta_exposed_) {
    delta_ = FreshDeltaLocked();
    delta_exposed_ = false;
  } else {
    delta_->Clear();
  }
  RebuildChainLocked();
  published_active_ops_ = 0;
  size_ = 0;
  levels_size_ = 0;
  ++epoch_;
  dirty_ = true;
  if (background_) {
    PublishLocked(0, /*include_active=*/false);
  }
  drain_cv_.notify_all();
}

std::size_t DeltaHexastore::ErasePattern(const IdPattern& pattern) {
  std::unique_lock<std::mutex> lock(mu_);
  if (pattern.bound_count() == 0) {
    // Erase everything == Clear.
    const std::size_t erased = size_;
    ClearLocked();
    return erased;
  }
  if (pattern.has_p() && !pattern.has_s() && !pattern.has_o()) {
    if (leveled()) {
      // Leveled fast path: ONE merged scan counts the pattern's logical
      // matches across every layer (O(matches + log)), then one pattern
      // tombstone staged in the active buffer suppresses matching
      // triples in every run and the base alike — no level is drained
      // and the compactor is never waited on.
      std::size_t matches = 0;
      LayeredScan({base_.get(), chain_.data(), chain_.size()},
                  IdPattern{0, pattern.p, 0},
                  [&matches](const IdTriple&) { ++matches; });
      EnsureDeltaWritableLocked();
      delta_->StagePatternErase(pattern.p);
      meters_.staged_ops_total.Add();
      size_ -= matches;
      dirty_ = true;
      return matches;
    }
    // Flat fast path: one pattern-level tombstone instead of one point
    // tombstone per match. Its exact erase count is defined against the
    // merged base, so an in-flight background merge is drained first
    // (bulk erases are rare; point ops never wait).
    WaitForMergeLocked(lock);
    // Count the base's contribution before staging (staging drops the
    // point ops whose counts correct it).
    const bool already = delta_->PatternErased(pattern.p);
    const std::uint64_t base_matches =
        already ? 0 : base_->CountMatches(IdPattern{0, pattern.p, 0});
    EnsureDeltaWritableLocked();
    const DeltaStore::PatternEraseEffect effect =
        delta_->StagePatternErase(pattern.p);
    meters_.staged_ops_total.Add();
    // Base triples already point-tombstoned were logically absent, and
    // dropped staged inserts were logically present on top of the base.
    const std::size_t erased =
        static_cast<std::size_t>(base_matches) - effect.dropped_tombstones +
        effect.dropped_inserts;
    size_ -= erased;
    dirty_ = true;
    return erased;
  }
  // General shape: the point-tombstone path, one staged op per match.
  const LayerRefs refs{base_.get(), chain_.data(), chain_.size()};
  IdTripleVec matches;
  LayeredScan(refs, pattern,
              [&matches](const IdTriple& t) { matches.push_back(t); });
  if (matches.empty()) {
    return 0;
  }
  EnsureDeltaWritableLocked();
  for (const IdTriple& t : matches) {
    delta_->StageErase(
        t, LayeredContains({base_.get(), chain_.data(), chain_.size() - 1},
                           t));
  }
  meters_.staged_ops_total.Add(matches.size());
  size_ -= matches.size();
  dirty_ = true;
  MaybeCompactLocked();
  return matches.size();
}

std::uint64_t DeltaHexastore::EstimateMatches(const IdPattern& pattern) const {
  std::lock_guard<std::mutex> lock(mu_);
  return LayeredEstimate({base_.get(), chain_.data(), chain_.size()},
                         pattern);
}

void DeltaHexastore::Compact() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!background_) {
    CompactLocked();
    return;
  }
  if (!leveled()) {
    // Drain what is staged *now* — at most the in-flight merge plus one
    // seal of the current buffer. Bounded on purpose: waiting for
    // delta_->empty() would chase ops concurrent writers keep staging
    // and might never return under sustained load.
    if (!levels_.empty()) {
      AwaitOneMergeLocked(lock);
    }
    if (levels_.empty() && !delta_->empty()) {
      SealLocked();
    }
    if (!levels_.empty()) {
      AwaitOneMergeLocked(lock);
    }
    return;
  }
  // Leveled: seal the buffer and ask the compactor to merge all the way
  // down to the base. Each wait completes one merge, so the loop makes
  // global progress; under sustained concurrent writes it may chase new
  // seals (same caveat as above, accepted for the explicit-drain path).
  if (!delta_->empty()) {
    SealLocked();
  }
  const std::uint64_t ticket = merge_ticket_;
  while (!levels_.empty() && merge_ticket_ == ticket) {
    drain_requested_ = true;
    work_cv_.notify_one();
    AwaitOneMergeLocked(lock);
  }
  // Done (or the inputs were wiped): don't leave a stale full-depth
  // drain request behind — it would turn the next routine seal into an
  // immediate fold + base rebuild. A concurrent Compact still in its
  // loop simply re-sets the flag on its next iteration.
  drain_requested_ = false;
}

std::size_t DeltaHexastore::StagedOps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delta_->op_count() + levels_.op_count();
}

std::uint64_t DeltaHexastore::CompactionCount() const {
  return meters_.compactions.Value();
}

StatsSnapshot DeltaHexastore::GatherStats() const {
  // One mutex hold produces the whole snapshot: the mutex-guarded
  // structural fields form a consistent cut, while the obs::Counter
  // reads are individually tear-free relaxed loads (see the
  // StatsSnapshot contract in core/stats.h). Gauges are refreshed here
  // so a registry export right after GatherStats() is coherent with it.
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot snap;
  DeltaStats& stats = snap.delta;
  stats.staged_inserts = delta_->insert_count();
  stats.staged_tombstones = delta_->tombstone_count();
  stats.pattern_tombstones = delta_->pattern_erased_predicates().size();
  stats.compact_threshold = compact_threshold_;
  stats.compactions = meters_.compactions.Value();
  stats.epoch = epoch_;
  stats.base_triples = base_->size();
  stats.base_bytes = base_->MemoryBytes();
  stats.delta_bytes = delta_->MemoryBytes() + levels_.MemoryBytes();
  stats.background = background_;
  stats.seals = meters_.seals.Value();
  stats.background_merges = meters_.background_merges.Value();
  stats.merge_discards = meters_.merge_discards.Value();
  stats.seal_overflows = meters_.seal_overflows.Value();
  stats.sealed_ops = levels_.op_count();
  stats.l0_run_limit = l0_run_limit_;
  stats.l0_runs = levels_.l0.size();
  stats.l0_ops = levels_.l0_op_count();
  stats.l1_ops = levels_.l1 == nullptr ? 0 : levels_.l1->op_count();
  stats.l0_merges = meters_.l0_merges.Value();
  stats.base_merges = meters_.base_merges.Value();
  stats.merge_run_ops = meters_.merge_run_ops.Value();
  stats.base_rebuild_triples = meters_.base_rebuild_triples.Value();
  stats.staged_ops_total = meters_.staged_ops_total.Value();
  stats.filter_bits_per_key = filter_bits_l0_;
  if (filter_counters_ != nullptr) {
    stats.filter_probes = filter_counters_->probes.Value();
    stats.filter_skips = filter_counters_->skips.Value();
    stats.filter_false_positives = filter_counters_->false_positives.Value();
  }
  stats.filters_dropped = meters_.filters_dropped.Value();
  stats.memory_budget_bytes = memory_budget_;
  stats.resident_bytes =
      (tracker_ == nullptr ? 0 : tracker_->resident()) + delta_->TableBytes();
  stats.budget_seals = meters_.budget_seals.Value();
  stats.budget_folds = meters_.budget_folds.Value();
  stats.budget_base_merges = meters_.budget_base_merges.Value();
  snap.epoch = gate_.Stats();
  RefreshGaugesLocked();
  return snap;
}

DeltaStats DeltaHexastore::Stats() const { return GatherStats().delta; }

EpochStats DeltaHexastore::EpochCounters() const {
  return GatherStats().epoch;
}

std::string DeltaHexastore::MetricsText() const {
  GatherStats();  // refresh gauges under the mutex
  return registry_.RenderPrometheus();
}

std::string DeltaHexastore::MetricsJson() const {
  GatherStats();
  return registry_.RenderJson();
}

bool DeltaHexastore::DumpMetricsJson(const std::string& path) const {
  GatherStats();
  return registry_.WriteJsonFile(path);
}

DeltaHexastore::Snapshot DeltaHexastore::GetSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  ExposeLocked();
  return Snapshot(gate_.Acquire());
}

DeltaHexastore::Snapshot DeltaHexastore::AcquireReadHandle() const {
  obs::ScopedTimer timer(&meters_.handle_acquire_ns);
  return Snapshot(gate_.Acquire());
}

// -- Snapshot -------------------------------------------------------------

bool DeltaHexastore::Snapshot::Contains(const IdTriple& t) const {
  if (gen_ == nullptr) {
    return false;
  }
  return LayeredContains(GenRefs(*gen_), t);
}

std::size_t DeltaHexastore::Snapshot::size() const {
  return gen_ == nullptr ? 0 : gen_->size;
}

void DeltaHexastore::Snapshot::Scan(const IdPattern& pattern,
                                    const TripleSink& sink) const {
  if (gen_ == nullptr) {
    return;
  }
  LayeredScan(GenRefs(*gen_), pattern, sink);
}

std::size_t DeltaHexastore::Snapshot::MemoryBytes() const {
  if (gen_ == nullptr) {
    return 0;
  }
  std::size_t bytes = gen_->base == nullptr ? 0 : gen_->base->MemoryBytes();
  bytes += gen_->levels.MemoryBytes();
  bytes += gen_->active == nullptr ? 0 : gen_->active->MemoryBytes();
  return bytes;
}

std::uint64_t DeltaHexastore::Snapshot::EstimateMatches(
    const IdPattern& pattern) const {
  if (gen_ == nullptr) {
    return 0;
  }
  return LayeredEstimate(GenRefs(*gen_), pattern);
}

std::uint64_t DeltaHexastore::Snapshot::epoch() const {
  return gen_ == nullptr ? 0 : gen_->epoch;
}

std::uint64_t DeltaHexastore::Snapshot::staged_ops() const {
  if (gen_ == nullptr) {
    return 0;
  }
  std::uint64_t ops = 0;
  for (const DeltaStore* layer : gen_->chain) {
    // Pattern tombstones count separately: an ErasePattern subsumes (and
    // removes) staged point ops, so op_count alone could stay flat
    // across one.
    ops += layer->op_count() + layer->pattern_erased_predicates().size();
  }
  return ops;
}

MergedList DeltaHexastore::Snapshot::objects(Id s, Id p) const {
  if (gen_ == nullptr) {
    return MergedList();
  }
  return LayeredObjects(GenView(*gen_), s, p);
}

MergedList DeltaHexastore::Snapshot::predicates(Id s, Id o) const {
  if (gen_ == nullptr) {
    return MergedList();
  }
  return LayeredPredicates(GenView(*gen_), s, o);
}

MergedList DeltaHexastore::Snapshot::subjects(Id p, Id o) const {
  if (gen_ == nullptr) {
    return MergedList();
  }
  return LayeredSubjects(GenView(*gen_), p, o);
}

IdVec DeltaHexastore::Snapshot::predicates_of_subject(Id s) const {
  if (gen_ == nullptr) {
    return IdVec();
  }
  return LayeredPredicatesOfSubject(GenRefs(*gen_), s);
}

IdVec DeltaHexastore::Snapshot::objects_of_subject(Id s) const {
  if (gen_ == nullptr) {
    return IdVec();
  }
  return LayeredObjectsOfSubject(GenRefs(*gen_), s);
}

IdVec DeltaHexastore::Snapshot::subjects_of_predicate(Id p) const {
  if (gen_ == nullptr) {
    return IdVec();
  }
  return LayeredSubjectsOfPredicate(GenRefs(*gen_), p);
}

IdVec DeltaHexastore::Snapshot::objects_of_predicate(Id p) const {
  if (gen_ == nullptr) {
    return IdVec();
  }
  return LayeredObjectsOfPredicate(GenRefs(*gen_), p);
}

IdVec DeltaHexastore::Snapshot::subjects_of_object(Id o) const {
  if (gen_ == nullptr) {
    return IdVec();
  }
  return LayeredSubjectsOfObject(GenRefs(*gen_), o);
}

IdVec DeltaHexastore::Snapshot::predicates_of_object(Id o) const {
  if (gen_ == nullptr) {
    return IdVec();
  }
  return LayeredPredicatesOfObject(GenRefs(*gen_), o);
}

// -- Live merged accessor views -------------------------------------------

MergedList DeltaHexastore::objects(Id s, Id p) const {
  std::lock_guard<std::mutex> lock(mu_);
  ExposeLocked();
  return LayeredObjects(
      {base_, delta_, {base_.get(), chain_.data(), chain_.size()}}, s, p);
}

MergedList DeltaHexastore::predicates(Id s, Id o) const {
  std::lock_guard<std::mutex> lock(mu_);
  ExposeLocked();
  return LayeredPredicates(
      {base_, delta_, {base_.get(), chain_.data(), chain_.size()}}, s, o);
}

MergedList DeltaHexastore::subjects(Id p, Id o) const {
  std::lock_guard<std::mutex> lock(mu_);
  ExposeLocked();
  return LayeredSubjects(
      {base_, delta_, {base_.get(), chain_.data(), chain_.size()}}, p, o);
}

IdVec DeltaHexastore::predicates_of_subject(Id s) const {
  std::lock_guard<std::mutex> lock(mu_);
  return LayeredPredicatesOfSubject(
      {base_.get(), chain_.data(), chain_.size()}, s);
}

IdVec DeltaHexastore::objects_of_subject(Id s) const {
  std::lock_guard<std::mutex> lock(mu_);
  return LayeredObjectsOfSubject(
      {base_.get(), chain_.data(), chain_.size()}, s);
}

IdVec DeltaHexastore::subjects_of_predicate(Id p) const {
  std::lock_guard<std::mutex> lock(mu_);
  return LayeredSubjectsOfPredicate(
      {base_.get(), chain_.data(), chain_.size()}, p);
}

IdVec DeltaHexastore::objects_of_predicate(Id p) const {
  std::lock_guard<std::mutex> lock(mu_);
  return LayeredObjectsOfPredicate(
      {base_.get(), chain_.data(), chain_.size()}, p);
}

IdVec DeltaHexastore::subjects_of_object(Id o) const {
  std::lock_guard<std::mutex> lock(mu_);
  return LayeredSubjectsOfObject(
      {base_.get(), chain_.data(), chain_.size()}, o);
}

IdVec DeltaHexastore::predicates_of_object(Id o) const {
  std::lock_guard<std::mutex> lock(mu_);
  return LayeredPredicatesOfObject(
      {base_.get(), chain_.data(), chain_.size()}, o);
}

std::shared_ptr<const Hexastore> DeltaHexastore::base() const {
  std::lock_guard<std::mutex> lock(mu_);
  base_exposed_ = true;
  return base_;
}

bool DeltaHexastore::CheckInvariants(std::string* error) const {
  // Runs entirely under the mutex (test path): no generation escapes, so
  // the in-place compaction fast path stays available afterwards.
  std::lock_guard<std::mutex> lock(mu_);
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) {
      *error = msg;
    }
    return false;
  };
  if (!base_->CheckInvariants(error)) {
    return false;
  }
  // Per-layer contract, bottom-up: staged inserts are disjoint from the
  // layers beneath, tombstones are a subset of them, and every op is
  // mirrored in all three side-list families of its own layer.
  const std::size_t l1_count = levels_.l1 == nullptr ? 0 : 1;
  for (std::size_t li = 0; li < chain_.size(); ++li) {
    const DeltaStore* layer = chain_[li];
    const LayerRefs beneath{base_.get(), chain_.data(), li};
    std::string label;
    if (li < l1_count) {
      label = "L1";
    } else if (li + 1 < chain_.size()) {
      label = "L0 run #" + std::to_string(li - l1_count);
    } else {
      label = "active";
    }
    bool ok = true;
    std::string msg;
    layer->ForEachOp([&](const IdTriple& t, DeltaOp op) {
      if (!ok) {
        return;
      }
      const bool beneath_present = LayeredContains(beneath, t);
      if (op == DeltaOp::kInsert && beneath_present &&
          !layer->PatternErased(t.p)) {
        // (Adds may coincide with a beneath triple only when the pattern
        // tombstone suppresses the lower copy.)
        ok = false;
        msg = label + ": staged insert already present beneath";
        return;
      }
      if (op == DeltaOp::kTombstone &&
          (!beneath_present || layer->PatternErased(t.p))) {
        ok = false;
        msg = label +
              ": tombstone absent beneath or subsumed by a pattern erase";
        return;
      }
      const DeltaList* objects =
          layer->FindLists(ListFamily::kObjects, t.s, t.p);
      const DeltaList* predicates =
          layer->FindLists(ListFamily::kPredicates, t.s, t.o);
      const DeltaList* subjects =
          layer->FindLists(ListFamily::kSubjects, t.p, t.o);
      const bool is_add = op == DeltaOp::kInsert;
      auto in = [is_add](const DeltaList* lists, Id third) {
        return lists != nullptr &&
               SortedContains(is_add ? lists->adds : lists->removes, third);
      };
      if (!in(objects, t.o) || !in(predicates, t.p) || !in(subjects, t.s)) {
        ok = false;
        msg = label + ": staged op missing from a delta side list";
      }
    });
    if (!ok) {
      return fail(msg);
    }
    // Side-list totals match the op counters in every family.
    for (int f = 0; f < 3; ++f) {
      std::size_t adds = 0;
      std::size_t removes = 0;
      layer->ForEachList(static_cast<ListFamily>(f),
                         [&](const IdPair&, const DeltaList& lists) {
                           adds += lists.adds.size();
                           removes += lists.removes.size();
                         });
      if (adds != layer->insert_count() ||
          removes != layer->tombstone_count()) {
        std::ostringstream os;
        os << label << ": delta side-list family " << f << " totals ("
           << adds << ", " << removes << ") disagree with op counters ("
           << layer->insert_count() << ", " << layer->tombstone_count()
           << ")";
        return fail(os.str());
      }
    }
  }
  // Size bookkeeping: the full merged scan must see exactly size_
  // triples (this also exercises the cross-layer tombstone math).
  std::size_t merged_size = 0;
  LayeredScan({base_.get(), chain_.data(), chain_.size()}, IdPattern{},
              [&merged_size](const IdTriple&) { ++merged_size; });
  if (merged_size != size_) {
    std::ostringstream os;
    os << "merged size " << merged_size << " != tracked size " << size_;
    return fail(os.str());
  }
  return true;
}

// -- Locked helpers -------------------------------------------------------

void DeltaHexastore::PublishLocked(std::size_t logical_size,
                                   bool include_active) const {
  auto gen = std::make_shared<DeltaGeneration>();
  gen->base = base_;
  gen->levels = levels_;
  // No cache pre-building here: a run's lazy read caches are built
  // on first use under DeltaStore's internal cache mutex, so lock-free
  // readers of the published generation are safe — and publication
  // stays O(runs) instead of paying an O(run size) freeze under mu_.
  if (include_active && !delta_->empty()) {
    gen->active = delta_;
    delta_exposed_ = true;
    published_active_ops_ = delta_->op_count();
  } else {
    published_active_ops_ = 0;
  }
  gen->levels.AppendBottomUp(&gen->chain);
  if (gen->active != nullptr) {
    gen->chain.push_back(gen->active.get());
  }
  gen->size = logical_size;
  gen->epoch = epoch_;
  base_exposed_ = true;
  // dirty_ means "the published generation does not cover the live
  // contents". A publication that excludes a non-empty staging buffer
  // (a merge-completion publish) must leave it set, or ExposeLocked's
  // fast path would hand snapshots/accessors a view missing the staged
  // ops — and hand out delta_ list pointers without the exposure mark.
  dirty_ = gen->active == nullptr && !delta_->empty();
  gate_.Publish(std::move(gen));
}

void DeltaHexastore::ExposeLocked() const {
  if (dirty_) {
    PublishLocked(size_, /*include_active=*/true);
  } else {
    // Already published and unchanged since; the current generation
    // covers exactly the live contents.
    base_exposed_ = true;
  }
}

void DeltaHexastore::EnsureDeltaWritableLocked() {
  if (delta_exposed_) {
    delta_ = std::make_shared<DeltaStore>(*delta_);
    delta_exposed_ = false;
    chain_.back() = delta_.get();
  }
}

std::shared_ptr<DeltaStore> DeltaHexastore::FreshDeltaLocked() const {
  auto fresh = std::make_shared<DeltaStore>();
  fresh->set_filter_counters(filter_counters_);
  return fresh;
}

bool DeltaHexastore::OverBudgetLocked() const {
  if (memory_budget_ == 0) {
    return false;
  }
  // Tracked bytes cover every sealed run (table + caches + filter); the
  // open buffer registers only at its seal, so its table is added here.
  return tracker_->resident() + delta_->TableBytes() > memory_budget_;
}

void DeltaHexastore::ConfigureRunLocked(const DeltaStore& run,
                                        std::size_t bits_per_key) {
  if (bits_per_key > 0) {
    if (OverBudgetLocked()) {
      // Graceful degradation under pressure: the run keeps working
      // through plain probes, we just don't spend budget on its filter.
      meters_.filters_dropped.Add();
      trace_.Record(obs::TraceEvent::kFilterDrop, "over_budget", 0,
                    run.op_count());
    } else {
      run.EnableFilter(bits_per_key);
    }
  }
  run.TrackMemory(tracker_);
}

void DeltaHexastore::MaybeCompactLocked() {
  // A seal is forced by the op-count threshold, or early by memory
  // pressure — but never for a near-empty buffer (a budget pinned by
  // snapshot readers must not shatter the delta into one-op runs).
  constexpr std::size_t kBudgetMinSealOps = 64;
  const bool due = delta_->op_count() >= compact_threshold_;
  const bool pressure = !due && OverBudgetLocked() &&
                        delta_->op_count() >= kBudgetMinSealOps;
  if (!due && !pressure) {
    return;
  }
  if (pressure) {
    meters_.budget_seals.Add();
    trace_.Record(obs::TraceEvent::kBudgetTrigger, "seal", 0,
                  delta_->op_count());
  }
  if (leveled()) {
    if (levels_.l0.size() >= l0_run_limit_) {
      // The compactor (or the fold below) is behind; the run is still
      // absorbed — this only marks that L0 grew past its limit.
      meters_.seal_overflows.Add();
    }
    SealLocked();
    const bool over = OverBudgetLocked();
    if (background_) {
      if (over) {
        // Budget pressure overrides l0_run_limit: ask the compactor to
        // merge all the way down so memory actually comes back.
        drain_requested_ = true;
        meters_.budget_folds.Add();
        trace_.Record(obs::TraceEvent::kBudgetTrigger, "fold");
        work_cv_.notify_one();
      }
      return;  // the compactor folds and merges from here
    }
    // Synchronous leveling: fold on this thread when L0 is full (or the
    // budget demands it), and pay the base rebuild only when L1 has
    // earned it — or when memory pressure persists after the fold.
    if (levels_.l0.size() >= l0_run_limit_ || over) {
      if (over && levels_.l0.size() < l0_run_limit_) {
        meters_.budget_folds.Add();
        trace_.Record(obs::TraceEvent::kBudgetTrigger, "fold");
      }
      FoldLocked();
    }
    const bool base_due = L1MergeDueLocked();
    if (levels_.l1 != nullptr && (base_due || OverBudgetLocked())) {
      if (!base_due) {
        meters_.budget_base_merges.Add();
        trace_.Record(obs::TraceEvent::kBudgetTrigger, "base_merge");
      }
      ApplyRunToBaseLocked(*levels_.l1);
      levels_.l1.reset();
      meters_.base_merges.Add();
      meters_.compactions.Add();
      ++epoch_;
      dirty_ = true;
      RebuildChainLocked();
    }
    return;
  }
  if (!background_) {
    CompactLocked();
    return;
  }
  if (!levels_.empty()) {
    // A merge is still in flight; keep staging (the buffer may overshoot
    // the threshold) rather than stall the writer.
    meters_.seal_overflows.Add();
    return;
  }
  SealLocked();
}

void DeltaHexastore::SealLocked() {
  // Two pointer swaps: the open buffer becomes the newest immutable L0
  // run, writers get a fresh one. No publication and no cache build —
  // mutex readers reach the sealed runs under mu_, and lock-free
  // readers keep the previous generation until the next publication.
  // The sealing buffer is armed with the L0 filter (built lazily with
  // its sorted caches) and registered with the memory tracker.
  const bool timed = obs::MetricsEnabled();
  const std::uint64_t t0 = timed ? obs::NowNanos() : 0;
  const std::uint64_t sealed_ops = delta_->op_count();
  ConfigureRunLocked(*delta_, filter_bits_l0_);
  levels_.l0.push_back(std::move(delta_));
  delta_ = FreshDeltaLocked();
  delta_exposed_ = false;
  published_active_ops_ = 0;
  levels_size_ = size_;
  meters_.seals.Add();
  dirty_ = true;
  RebuildChainLocked();
  if (timed) {
    const std::uint64_t dur = obs::NowNanos() - t0;
    meters_.seal_ns.Record(dur);
    trace_.Record(obs::TraceEvent::kSeal, "threshold", dur, sealed_ops);
  }
  work_cv_.notify_one();
}

void DeltaHexastore::FoldLocked() {
  const bool timed = obs::MetricsEnabled();
  const std::uint64_t t0 = timed ? obs::NowNanos() : 0;
  std::uint64_t fold_ops = 0;
  levels_.l1 = FoldRuns(levels_.l1, levels_.l0, &fold_ops);
  levels_.l0.clear();
  if (levels_.l1 != nullptr) {
    // Idempotent for an adopted single run (already filtered/tracked at
    // its seal); a freshly merged run gets the colder L1 bit budget.
    ConfigureRunLocked(*levels_.l1, filter_bits_l1_);
  }
  meters_.merge_run_ops.Add(fold_ops);
  meters_.l0_merges.Add();
  meters_.compactions.Add();
  ++epoch_;
  dirty_ = true;
  RebuildChainLocked();
  if (timed) {
    const std::uint64_t dur = obs::NowNanos() - t0;
    meters_.fold_ns.Record(dur);
    trace_.Record(obs::TraceEvent::kFold, "sync", dur, fold_ops);
  }
}

bool DeltaHexastore::L1MergeDueLocked() const {
  if (levels_.l1 == nullptr) {
    return false;
  }
  const std::size_t fraction = static_cast<std::size_t>(
      l1_base_fraction_ * static_cast<double>(base_->size()));
  return levels_.l1->op_count() >= std::max(compact_threshold_, fraction);
}

bool DeltaHexastore::HasCompactorWorkLocked() const {
  if (levels_.empty()) {
    return false;
  }
  if (!leveled()) {
    return true;  // flat: the single sealed run is always mergeable
  }
  if (!levels_.l0.empty() &&
      (levels_.l0.size() >= l0_run_limit_ || drain_requested_)) {
    return true;
  }
  return levels_.l1 != nullptr && (L1MergeDueLocked() || drain_requested_);
}

void DeltaHexastore::ApplyRunToBaseLocked(const DeltaStore& run) {
  const bool timed = obs::MetricsEnabled();
  const std::uint64_t t0 = timed ? obs::NowNanos() : 0;
  if (!base_exposed_) {
    // The base never escaped the mutex: drain in place. Pattern
    // tombstones purge their base matches first (this is where the bulk
    // erase finally pays O(matches), amortized into the drain), then the
    // point tombstones (each an O(log + shift) point erase), then one
    // sorted merge of the staged inserts through the non-empty BulkLoad
    // path.
    for (Id p : run.pattern_erased_predicates()) {
      for (const IdTriple& t : base_->Match(IdPattern{0, p, 0})) {
        base_->Erase(t);
      }
    }
    for (const IdTriple& t : run.SortedTombstones()) {
      base_->Erase(t);
    }
    base_->BulkLoad(run.SortedInserts());
    meters_.base_rebuild_triples.Add(run.op_count());
  } else {
    // A generation may still read the base: rebuild the merged state
    // into a fresh store and swap, leaving the old one untouched for
    // its readers.
    base_ = MergeOffline(base_.get(), run);
    base_exposed_ = false;
    meters_.base_rebuild_triples.Add(base_->size());
  }
  if (timed) {
    const std::uint64_t dur = obs::NowNanos() - t0;
    meters_.base_merge_ns.Record(dur);
    trace_.Record(obs::TraceEvent::kBaseMerge, "sync", dur, run.op_count());
  }
}

void DeltaHexastore::WaitForMergeLocked(std::unique_lock<std::mutex>& lock) {
  if (!background_) {
    return;  // no compactor; sync callers collapse the levels inline
  }
  drain_requested_ = true;  // leveled compactor: merge all the way down
  work_cv_.notify_one();
  drain_cv_.wait(lock, [this] { return levels_.empty(); });
  // The hierarchy is empty: the request is satisfied. Leaving the flag
  // set would make the compactor treat the very next seal as a
  // full-depth drain and pay a spurious base rebuild.
  drain_requested_ = false;
}

void DeltaHexastore::AwaitOneMergeLocked(std::unique_lock<std::mutex>& lock) {
  // Bounded wait: one merge completing (or a Clear/BulkLoad wiping the
  // inputs, which bumps the ticket) satisfies it — later seals by
  // concurrent writers are deliberately not chased.
  const std::uint64_t target = meters_.compactions.Value() + 1;
  const std::uint64_t ticket = merge_ticket_;
  drain_cv_.wait(lock, [this, target, ticket] {
    return meters_.compactions.Value() >= target || merge_ticket_ != ticket;
  });
}

void DeltaHexastore::CompactLocked() {
  // Synchronous full drain: collapse the whole hierarchy (L1, L0 runs,
  // active) into the base. Background callers first wait for the
  // compactor (WaitForMergeLocked), so levels are normally empty there;
  // the ticket bump invalidates any merge that still races this.
  if (delta_->empty() && levels_.empty()) {
    return;
  }
  ++merge_ticket_;
  std::shared_ptr<const DeltaStore> all;
  if (levels_.empty()) {
    all = delta_;
  } else {
    std::uint64_t fold_ops = 0;
    std::shared_ptr<const DeltaStore> folded =
        FoldRuns(levels_.l1, levels_.l0, &fold_ops);
    if (!delta_->empty()) {
      std::shared_ptr<DeltaStore> merged =
          MergeDeltaLayers(*folded, *delta_);
      fold_ops += merged->op_count();
      folded = std::move(merged);
    }
    meters_.merge_run_ops.Add(fold_ops);
    all = std::move(folded);
  }
  ApplyRunToBaseLocked(*all);
  levels_.clear();
  drain_requested_ = false;
  if (delta_exposed_) {
    delta_ = FreshDeltaLocked();
    delta_exposed_ = false;
  } else {
    delta_->Clear();
  }
  RebuildChainLocked();
  published_active_ops_ = 0;
  meters_.compactions.Add();
  meters_.base_merges.Add();
  ++epoch_;
  size_ = base_->size();
  levels_size_ = size_;
  dirty_ = true;
  drain_cv_.notify_all();
}

void DeltaHexastore::MergerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || HasCompactorWorkLocked(); });
    if (stop_) {
      return;
    }
    const std::uint64_t ticket = merge_ticket_;
    const bool fold_job =
        leveled() && !levels_.l0.empty() &&
        (levels_.l0.size() >= l0_run_limit_ || drain_requested_);
    if (fold_job) {
      // Fold every current L0 run (+ the L1 run) into a fresh L1 run,
      // off the mutex: the runs are frozen and the fold reads them only
      // through pure accessors.
      std::shared_ptr<const DeltaStore> l1 = levels_.l1;
      std::vector<std::shared_ptr<const DeltaStore>> runs = levels_.l0;
      const bool over = OverBudgetLocked();
      lock.unlock();
      const bool timed = obs::MetricsEnabled();
      const std::uint64_t t0 = timed ? obs::NowNanos() : 0;
      std::uint64_t fold_ops = 0;
      std::shared_ptr<const DeltaStore> folded =
          FoldRuns(l1, runs, &fold_ops);
      // Arm the folded run's L1 filter (skipped under budget pressure —
      // the drop is counted at commit), then pre-build its lazy read
      // caches and the filter while it is still thread-private: the
      // post-commit publish freezes every run under mu_, and paying an
      // O(L1) cache build there would stall writers for the whole fold
      // size. TrackMemory is idempotent, covering the adopted-single-run
      // case; a discarded result balances through the run's destructor.
      if (filter_bits_l1_ > 0 && !over) {
        folded->EnableFilter(filter_bits_l1_);
      }
      folded->Freeze();
      folded->TrackMemory(tracker_);
      const std::uint64_t fold_dur = timed ? obs::NowNanos() - t0 : 0;
      lock.lock();
      if (filter_bits_l1_ > 0 && over) {
        meters_.filters_dropped.Add();
        trace_.Record(obs::TraceEvent::kFilterDrop, "over_budget", 0,
                      fold_ops);
      }
      if (ticket != merge_ticket_) {
        // Clear/BulkLoad/CompactLocked replaced the inputs mid-fold.
        meters_.merge_discards.Add();
        drain_cv_.notify_all();
        continue;
      }
      // Writers may have sealed more runs meanwhile; they are strictly
      // newer than every consumed run, so drop exactly the consumed
      // oldest prefix.
      levels_.l0.erase(levels_.l0.begin(),
                       levels_.l0.begin() +
                           static_cast<std::ptrdiff_t>(runs.size()));
      levels_.l1 = std::move(folded);
      meters_.merge_run_ops.Add(fold_ops);
      meters_.l0_merges.Add();
      meters_.compactions.Add();
      if (timed) {
        meters_.fold_ns.Record(fold_dur);
        trace_.Record(obs::TraceEvent::kFold, "background", fold_dur,
                      fold_ops);
      }
      ++epoch_;
      dirty_ = true;
      RebuildChainLocked();
      const bool include_active = published_active_ops_ > 0;
      PublishLocked(include_active ? size_ : levels_size_, include_active);
      drain_cv_.notify_all();
      // Destroy superseded generations and this fold's input references
      // outside the mutex: freeing a large run under mu_ would stall
      // writers for the whole teardown.
      auto garbage = gate_.TakeReclaimed();
      lock.unlock();
      garbage.clear();
      runs.clear();
      l1.reset();
      lock.lock();
      continue;
    }
    // Base merge: the single sealed run (flat) or the L1 run (leveled).
    std::shared_ptr<const DeltaStore> input =
        leveled() ? levels_.l1
                  : (levels_.l0.empty() ? nullptr : levels_.l0.front());
    if (input == nullptr) {
      drain_requested_ = false;
      continue;
    }
    // Pin the inputs, then merge without the mutex: the run is closed to
    // writers, and marking the base exposed here keeps it immutable
    // too — a concurrent Clear() must swap in a fresh object rather than
    // clearing the one this thread is scanning.
    base_exposed_ = true;
    std::shared_ptr<const Hexastore> base = base_;
    lock.unlock();
    const bool timed = obs::MetricsEnabled();
    const std::uint64_t t0 = timed ? obs::NowNanos() : 0;
    std::shared_ptr<Hexastore> fresh = MergeOffline(base.get(), *input);
    const std::uint64_t merge_dur = timed ? obs::NowNanos() - t0 : 0;
    lock.lock();
    if (ticket != merge_ticket_) {
      // Clear/BulkLoad replaced the inputs mid-merge; the result
      // describes a state that no longer exists.
      meters_.merge_discards.Add();
      drain_cv_.notify_all();
      continue;
    }
    base_ = std::move(fresh);
    if (leveled()) {
      levels_.l1.reset();
    } else {
      levels_.l0.clear();
      levels_size_ = base_->size();
    }
    if (levels_.empty()) {
      drain_requested_ = false;
    }
    meters_.base_rebuild_triples.Add(base_->size());
    meters_.compactions.Add();
    meters_.background_merges.Add();
    meters_.base_merges.Add();
    if (timed) {
      meters_.base_merge_ns.Record(merge_dur);
      trace_.Record(obs::TraceEvent::kBaseMerge, "background", merge_dur,
                    base_->size());
    }
    ++epoch_;
    dirty_ = true;
    RebuildChainLocked();
    // Publish the post-merge generation so lock-free readers advance.
    // The staging buffer is re-included only if a previous publication
    // exposed it — dropping it would make published views non-monotonic;
    // including it otherwise would force a needless copy-on-write.
    const bool include_active = published_active_ops_ > 0;
    PublishLocked(include_active ? size_ : levels_size_, include_active);
    drain_cv_.notify_all();
    // As in the fold branch: drop the old base, the merged run and any
    // reclaimed generations without holding the mutex.
    auto garbage = gate_.TakeReclaimed();
    lock.unlock();
    garbage.clear();
    base.reset();
    input.reset();
    lock.lock();
  }
}

}  // namespace hexastore

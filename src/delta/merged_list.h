// Merging iterator over a base sorted list plus staged delta edits.
//
// A MergedListCursor walks  base ∪ adds ∖ removes  in one linear pass and
// yields ids in strictly ascending order, so every consumer that merge-
// joined two base lists can merge-join two merged views with the same
// linear-time guarantee (paper §4.2) — this is the read-path contract the
// delta subsystem must preserve.
//
// Preconditions (maintained by DeltaStore):  adds ∩ base = ∅  and
// removes ⊆ base; all three inputs sorted strictly ascending.
#ifndef HEXASTORE_DELTA_MERGED_LIST_H_
#define HEXASTORE_DELTA_MERGED_LIST_H_

#include <cstddef>
#include <memory>
#include <utility>

#include "index/sorted_vec.h"
#include "util/common.h"

namespace hexastore {

class Hexastore;
class DeltaStore;

/// Cursor over the sorted union-minus-tombstones of one terminal list.
/// Null inputs mean "empty".
class MergedListCursor {
 public:
  MergedListCursor(const IdVec* base, const IdVec* adds,
                   const IdVec* removes)
      : base_(base), adds_(adds), removes_(removes) {
    Settle();
  }

  /// True when the merged list is exhausted.
  bool done() const { return !has_value_; }
  /// Current id; only valid while !done().
  Id value() const { return value_; }
  /// Advances to the next merged id.
  void next() { Settle(); }

 private:
  static std::size_t SizeOf(const IdVec* v) {
    return v == nullptr ? 0 : v->size();
  }
  Id At(const IdVec* v, std::size_t i) const { return (*v)[i]; }

  // Computes the next surviving id into value_/has_value_.
  void Settle() {
    has_value_ = false;
    while (bi_ < SizeOf(base_) || ai_ < SizeOf(adds_)) {
      const bool have_base = bi_ < SizeOf(base_);
      const bool have_add = ai_ < SizeOf(adds_);
      Id candidate;
      // adds are disjoint from base, so strict comparison picks one side.
      if (have_base && (!have_add || At(base_, bi_) < At(adds_, ai_))) {
        candidate = At(base_, bi_++);
        // removes ⊆ base and both are sorted: advance the tombstone
        // cursor in lock-step and drop the id on a hit.
        while (ri_ < SizeOf(removes_) && At(removes_, ri_) < candidate) {
          ++ri_;
        }
        if (ri_ < SizeOf(removes_) && At(removes_, ri_) == candidate) {
          ++ri_;
          continue;
        }
      } else {
        candidate = At(adds_, ai_++);
      }
      value_ = candidate;
      has_value_ = true;
      return;
    }
  }

  const IdVec* base_;
  const IdVec* adds_;
  const IdVec* removes_;
  std::size_t bi_ = 0;
  std::size_t ai_ = 0;
  std::size_t ri_ = 0;
  Id value_ = kInvalidId;
  bool has_value_ = false;
};

/// A merged terminal-list view handed out by DeltaHexastore accessors.
///
/// Keeps the pre-compaction base store and the delta generation alive via
/// shared ownership, so the raw list pointers stay valid even if the
/// owning store compacts or mutates after this view was taken (the store
/// copy-on-writes the delta and swaps — never mutates — a shared base).
class MergedList {
 public:
  MergedList() = default;
  MergedList(std::shared_ptr<const Hexastore> base_owner,
             std::shared_ptr<const DeltaStore> delta_owner,
             const IdVec* base, const IdVec* adds, const IdVec* removes)
      : base_owner_(std::move(base_owner)),
        delta_owner_(std::move(delta_owner)),
        base_(base),
        adds_(adds),
        removes_(removes) {}

  /// Variant whose base side is a materialized vector owned by the view
  /// itself — used when pattern tombstones force filtering the raw base
  /// list (the common pointer-only path stays copy-free).
  MergedList(std::shared_ptr<const Hexastore> base_owner,
             std::shared_ptr<const DeltaStore> delta_owner,
             std::shared_ptr<const IdVec> owned_base, const IdVec* adds,
             const IdVec* removes)
      : base_owner_(std::move(base_owner)),
        delta_owner_(std::move(delta_owner)),
        owned_base_(std::move(owned_base)),
        base_(owned_base_.get()),
        adds_(adds),
        removes_(removes) {}

  /// Linear-merge cursor over the view.
  MergedListCursor cursor() const {
    return MergedListCursor(base_, adds_, removes_);
  }

  /// Number of merged ids: |base| + |adds| − |removes| (O(1) thanks to
  /// the disjoint/subset invariants).
  std::size_t size() const {
    std::size_t n = base_ == nullptr ? 0 : base_->size();
    n += adds_ == nullptr ? 0 : adds_->size();
    n -= removes_ == nullptr ? 0 : removes_->size();
    return n;
  }
  bool empty() const { return size() == 0; }

  /// Materializes the merged list as a sorted IdVec.
  IdVec Materialize() const {
    IdVec out;
    out.reserve(size());
    for (MergedListCursor c = cursor(); !c.done(); c.next()) {
      out.push_back(c.value());
    }
    return out;
  }

 private:
  std::shared_ptr<const Hexastore> base_owner_;
  std::shared_ptr<const DeltaStore> delta_owner_;
  std::shared_ptr<const IdVec> owned_base_;
  const IdVec* base_ = nullptr;
  const IdVec* adds_ = nullptr;
  const IdVec* removes_ = nullptr;
};

/// Linear merge join over two ascending cursors: calls `emit(id)` for
/// every id produced by both (the cursor-generalized MergeJoin).
template <typename CursorA, typename CursorB, typename Emit>
void MergeJoinCursors(CursorA a, CursorB b, Emit&& emit) {
  while (!a.done() && !b.done()) {
    if (a.value() < b.value()) {
      a.next();
    } else if (b.value() < a.value()) {
      b.next();
    } else {
      emit(a.value());
      a.next();
      b.next();
    }
  }
}

/// Materialized intersection of two ascending cursors.
template <typename CursorA, typename CursorB>
IdVec IntersectCursors(CursorA a, CursorB b) {
  IdVec out;
  MergeJoinCursors(std::move(a), std::move(b),
                   [&out](Id id) { out.push_back(id); });
  return out;
}

}  // namespace hexastore

#endif  // HEXASTORE_DELTA_MERGED_LIST_H_

#include "delta/delta_store.h"

#include <algorithm>
#include <functional>
#include <tuple>

#include "util/memory_tracker.h"

namespace hexastore {

namespace {

// Load factor cap for the open-addressing table: grow once used slots
// (live + dead) exceed 7/8 of capacity, so probe chains stay short.
constexpr std::size_t kMinCapacity = 64;

bool OverLoaded(std::size_t used, std::size_t capacity) {
  return (used + 1) * 8 > capacity * 7;
}

}  // namespace

DeltaStore::~DeltaStore() {
  // Runs unshared by definition, including on the deferred-reclaim path
  // where the compactor destroys retired runs off the owner's mutex —
  // returning the tracked bytes here is what keeps the resident-memory
  // accounting balanced across folds.
  if (tracker_ != nullptr) {
    tracker_->Sub(tracked_bytes_);
  }
}

DeltaStore::Slot* DeltaStore::Probe(const IdTriple& t,
                                    Slot** insert_at) const {
  if (insert_at != nullptr) {
    *insert_at = nullptr;
  }
  if (slots_.empty()) {
    return nullptr;
  }
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = IdTripleHash()(t) & mask;
  while (true) {
    Slot& slot = slots_[i];
    if (slot.state == SlotState::kEmpty) {
      if (insert_at != nullptr && *insert_at == nullptr) {
        *insert_at = &slot;
      }
      return nullptr;
    }
    if (slot.state == SlotState::kDead) {
      // Reusable, but the probe chain continues: `t` may sit further on.
      if (insert_at != nullptr && *insert_at == nullptr) {
        *insert_at = &slot;
      }
    } else if (slot.triple == t) {
      return &slot;
    }
    i = (i + 1) & mask;
  }
}

void DeltaStore::ReserveForOneMore() {
  if (!slots_.empty() && !OverLoaded(used_, slots_.size())) {
    return;
  }
  // Size for the live ops only: rehashing drops dead slots.
  std::size_t capacity = kMinCapacity;
  while (OverLoaded(op_count() * 2, capacity)) {
    capacity <<= 1;
  }
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(capacity, Slot{});
  used_ = 0;
  const std::size_t mask = capacity - 1;
  for (const Slot& slot : old) {
    if (slot.state != SlotState::kFull) {
      continue;
    }
    std::size_t i = IdTripleHash()(slot.triple) & mask;
    while (slots_[i].state == SlotState::kFull) {
      i = (i + 1) & mask;
    }
    slots_[i] = slot;
    ++used_;
  }
}

bool DeltaStore::StageInsert(const IdTriple& t, bool base_present) {
  Slot* hit = Probe(t, nullptr);
  if (hit != nullptr) {
    if (hit->op == DeltaOp::kInsert) {
      return false;  // already staged as present
    }
    // Tombstone of a base triple being re-inserted: the two ops cancel
    // (the base copy shows through again).
    hit->state = SlotState::kDead;
    --tombstones_;
    InvalidateCaches();
    return true;
  }
  if (base_present && !PatternErased(t.p)) {
    return false;  // base already has it, nothing to stage
  }
  // Note: when the predicate is pattern-erased the base copy (if any) is
  // logically gone, so the insert is staged even if base_present — the
  // one case where an add may coincide with a base triple.
  ReserveForOneMore();
  Slot* at = nullptr;
  Probe(t, &at);
  if (at->state == SlotState::kEmpty) {
    ++used_;
  }
  *at = Slot{t, SlotState::kFull, DeltaOp::kInsert};
  ++inserts_;
  InvalidateCaches();
  return true;
}

bool DeltaStore::StageErase(const IdTriple& t, bool base_present) {
  Slot* hit = Probe(t, nullptr);
  if (hit != nullptr) {
    if (hit->op == DeltaOp::kTombstone) {
      return false;  // already logically absent
    }
    // Erasing a staged insert just drops the staged op.
    hit->state = SlotState::kDead;
    --inserts_;
    InvalidateCaches();
    return true;
  }
  if (!base_present || PatternErased(t.p)) {
    return false;  // absent, or already gone via the pattern tombstone
  }
  ReserveForOneMore();
  Slot* at = nullptr;
  Probe(t, &at);
  if (at->state == SlotState::kEmpty) {
    ++used_;
  }
  *at = Slot{t, SlotState::kFull, DeltaOp::kTombstone};
  ++tombstones_;
  InvalidateCaches();
  return true;
}

DeltaStore::PatternEraseEffect DeltaStore::StagePatternErase(Id p) {
  PatternEraseEffect effect;
  // Point ops on the predicate are subsumed: staged inserts die with the
  // pattern, tombstones become redundant (keeping them would violate the
  // "tombstone predicate never pattern-erased" invariant).
  for (Slot& slot : slots_) {
    if (slot.state == SlotState::kFull && slot.triple.p == p) {
      slot.state = SlotState::kDead;
      if (slot.op == DeltaOp::kInsert) {
        --inserts_;
        ++effect.dropped_inserts;
      } else {
        --tombstones_;
        ++effect.dropped_tombstones;
      }
    }
  }
  effect.newly_added = SortedInsert(&pattern_preds_, p);
  InvalidateCaches();
  return effect;
}

DeltaStore::Presence DeltaStore::Lookup(const IdTriple& t) const {
  const Slot* hit = Probe(t, nullptr);
  if (hit != nullptr) {
    return hit->op == DeltaOp::kInsert ? Presence::kInserted
                                       : Presence::kErased;
  }
  // Op-table entries win over the pattern: an insert staged after the
  // pattern erase is present even though its predicate is in P.
  if (PatternErased(t.p)) {
    return Presence::kErased;
  }
  return Presence::kUnknown;
}

DeltaStore::Presence DeltaStore::FilteredLookup(const IdTriple& t) const {
  const RunFilter* f = MaybeFilter();
  if (f == nullptr) {
    return Lookup(t);
  }
  RunFilterCounters* c = filter_counters_.get();
  if (c != nullptr) {
    c->probes.Add();
  }
  if (!f->MayContain(t)) {
    if (c != nullptr) {
      c->skips.Add();
    }
    // A filter miss proves "no op-table entry" — it says nothing about
    // pattern tombstones, which are checked unconditionally so a skipped
    // run never loses its erase verdicts.
    return PatternErased(t.p) ? Presence::kErased : Presence::kUnknown;
  }
  const Slot* hit = Probe(t, nullptr);
  if (hit != nullptr) {
    return hit->op == DeltaOp::kInsert ? Presence::kInserted
                                       : Presence::kErased;
  }
  if (c != nullptr) {
    c->false_positives.Add();
  }
  return PatternErased(t.p) ? Presence::kErased : Presence::kUnknown;
}

DeltaStore::OpLookup DeltaStore::LookupOp(const IdTriple& t) const {
  const Slot* hit = Probe(t, nullptr);
  if (hit == nullptr) {
    return OpLookup::kNone;
  }
  return hit->op == DeltaOp::kInsert ? OpLookup::kInsert
                                     : OpLookup::kTombstone;
}

void DeltaStore::AdoptOp(const IdTriple& t, DeltaOp op) {
  ReserveForOneMore();
  Slot* at = nullptr;
  Probe(t, &at);
  if (at->state == SlotState::kEmpty) {
    ++used_;
  }
  *at = Slot{t, SlotState::kFull, op};
  if (op == DeltaOp::kInsert) {
    ++inserts_;
  } else {
    ++tombstones_;
  }
  InvalidateCaches();
}

const DeltaList* DeltaStore::FindLists(ListFamily family, Id a, Id b) const {
  EnsureSideLists();
  const ListMap& m = lists_[static_cast<int>(family)];
  auto it = m.find(IdPair{a, b});
  return it == m.end() ? nullptr : &it->second;
}

void DeltaStore::EnsureSideLists() const {
  if (lists_valid_.load(std::memory_order_acquire)) {
    return;
  }
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (lists_valid_.load(std::memory_order_relaxed)) {
    return;  // another reader built them while we waited
  }
  for (auto& m : lists_) {
    m.clear();
  }
  // Append unsorted, then one sort+dedup pass per list: linearithmic in
  // the list size instead of the quadratic shifts repeated SortedInsert
  // would pay on lists with many staged ops.
  ForEachOp([this](const IdTriple& t, DeltaOp op) {
    // The three (key-pair, value) projections of the triple, matching
    // TerminalListPool's keying: o(s,p), p(s,o), s(p,o).
    const struct {
      ListFamily family;
      Id a, b, third;
    } views[3] = {{ListFamily::kObjects, t.s, t.p, t.o},
                  {ListFamily::kPredicates, t.s, t.o, t.p},
                  {ListFamily::kSubjects, t.p, t.o, t.s}};
    for (const auto& v : views) {
      DeltaList& lists =
          lists_[static_cast<int>(v.family)][IdPair{v.a, v.b}];
      (op == DeltaOp::kInsert ? lists.adds : lists.removes)
          .push_back(v.third);
    }
  });
  for (auto& m : lists_) {
    for (auto& [key, lists] : m) {
      (void)key;
      SortUnique(&lists.adds);
      SortUnique(&lists.removes);
    }
  }
  lists_valid_.store(true, std::memory_order_release);
  SyncTrackedBytesLocked();
}

void DeltaStore::EnsureSortedRuns() const {
  if (runs_valid_.load(std::memory_order_acquire)) {
    return;
  }
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (runs_valid_.load(std::memory_order_relaxed)) {
    return;
  }
  run_spo_.clear();
  run_spo_.reserve(inserts_);
  ForEachOp([this](const IdTriple& t, DeltaOp op) {
    if (op == DeltaOp::kInsert) {
      run_spo_.push_back(t);
    }
  });
  std::sort(run_spo_.begin(), run_spo_.end());
  run_pos_ = run_spo_;
  std::sort(run_pos_.begin(), run_pos_.end(),
            [](const IdTriple& a, const IdTriple& b) {
              return std::tie(a.p, a.o, a.s) < std::tie(b.p, b.o, b.s);
            });
  run_osp_ = run_spo_;
  std::sort(run_osp_.begin(), run_osp_.end(),
            [](const IdTriple& a, const IdTriple& b) {
              return std::tie(a.o, a.s, a.p) < std::tie(b.o, b.s, b.p);
            });
  runs_valid_.store(true, std::memory_order_release);
  SyncTrackedBytesLocked();
}

void DeltaStore::EnableFilter(std::size_t bits_per_key) const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (filter_ptr_.load(std::memory_order_relaxed) != nullptr) {
    return;  // already built at some earlier arming
  }
  filter_bits_.store(bits_per_key, std::memory_order_release);
}

const RunFilter* DeltaStore::MaybeFilter() const {
  const RunFilter* f = filter_ptr_.load(std::memory_order_acquire);
  if (f != nullptr) {
    return f;
  }
  if (filter_bits_.load(std::memory_order_acquire) == 0) {
    return nullptr;  // not armed (active buffer, or filters dropped)
  }
  std::lock_guard<std::mutex> lock(cache_mu_);
  f = filter_ptr_.load(std::memory_order_relaxed);
  if (f != nullptr) {
    return f;  // another reader built it while we waited
  }
  const std::size_t bits = filter_bits_.load(std::memory_order_relaxed);
  if (bits == 0) {
    return nullptr;  // disarmed between the fast path and the lock
  }
  auto built = std::make_shared<RunFilter>(op_count(), bits);
  ForEachOp(
      [&built](const IdTriple& t, DeltaOp) { built->AddTriple(t); });
  filter_owner_ = std::move(built);
  filter_ptr_.store(filter_owner_.get(), std::memory_order_release);
  SyncTrackedBytesLocked();
  return filter_owner_.get();
}

void DeltaStore::ScanInserts(
    const IdPattern& q, const std::function<void(const IdTriple&)>& sink)
    const {
  if (inserts_ == 0) {
    return;
  }
  if (q.bound_count() > 0) {
    if (const RunFilter* f = MaybeFilter()) {
      RunFilterCounters* c = filter_counters_.get();
      if (c != nullptr) {
        c->probes.Add();
      }
      if (!f->MayContainPrefix(q)) {
        // No op in this run carries the bound prefix, so in particular
        // no insert does — skip the range scan entirely.
        if (c != nullptr) {
          c->skips.Add();
        }
        return;
      }
    }
  }
  EnsureSortedRuns();
  constexpr Id kMax = ~Id{0};
  auto emit = [&q, &sink](IdTripleVec::const_iterator lo,
                          IdTripleVec::const_iterator hi) {
    for (auto it = lo; it != hi; ++it) {
      if (q.Matches(*it)) {
        sink(*it);
      }
    }
  };
  if (q.has_s()) {
    // Prefix (s) or (s, p) on the (s, p, o) run; remaining bound
    // positions are filtered by Matches.
    const IdTriple lo{q.s, q.has_p() ? q.p : Id{0}, 0};
    const IdTriple hi{q.s, q.has_p() ? q.p : kMax, kMax};
    emit(std::lower_bound(run_spo_.begin(), run_spo_.end(), lo),
         std::upper_bound(run_spo_.begin(), run_spo_.end(), hi));
    return;
  }
  auto pos_less = [](const IdTriple& a, const IdTriple& b) {
    return std::tie(a.p, a.o, a.s) < std::tie(b.p, b.o, b.s);
  };
  if (q.has_p()) {
    // Prefix (p) or (p, o) on the (p, o, s) run.
    const IdTriple lo{0, q.p, q.has_o() ? q.o : Id{0}};
    const IdTriple hi{kMax, q.p, q.has_o() ? q.o : kMax};
    emit(std::lower_bound(run_pos_.begin(), run_pos_.end(), lo, pos_less),
         std::upper_bound(run_pos_.begin(), run_pos_.end(), hi, pos_less));
    return;
  }
  auto osp_less = [](const IdTriple& a, const IdTriple& b) {
    return std::tie(a.o, a.s, a.p) < std::tie(b.o, b.s, b.p);
  };
  if (q.has_o()) {
    // Prefix (o) on the (o, s, p) run.
    const IdTriple lo{0, 0, q.o};
    const IdTriple hi{kMax, kMax, q.o};
    emit(std::lower_bound(run_osp_.begin(), run_osp_.end(), lo, osp_less),
         std::upper_bound(run_osp_.begin(), run_osp_.end(), hi, osp_less));
    return;
  }
  emit(run_spo_.begin(), run_spo_.end());
}

std::uint64_t DeltaStore::CountInserts(const IdPattern& pattern) const {
  std::uint64_t count = 0;
  ScanInserts(pattern, [&count](const IdTriple&) { ++count; });
  return count;
}

void DeltaStore::Freeze() const {
  EnsureSortedRuns();
  EnsureSideLists();
  (void)MaybeFilter();  // builds the filter too when one is armed
}

IdTripleVec DeltaStore::SortedInserts() const {
  IdTripleVec out;
  out.reserve(inserts_);
  ForEachOp([&out](const IdTriple& t, DeltaOp op) {
    if (op == DeltaOp::kInsert) {
      out.push_back(t);
    }
  });
  std::sort(out.begin(), out.end());
  return out;
}

IdTripleVec DeltaStore::SortedTombstones() const {
  IdTripleVec out;
  out.reserve(tombstones_);
  ForEachOp([&out](const IdTriple& t, DeltaOp op) {
    if (op == DeltaOp::kTombstone) {
      out.push_back(t);
    }
  });
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t DeltaStore::MemoryBytes() const {
  // Cold path: take the cache mutex so a concurrent lazy build on a
  // frozen instance cannot race the container reads below.
  std::lock_guard<std::mutex> lock(cache_mu_);
  return MemoryBytesLocked();
}

std::size_t DeltaStore::MemoryBytesLocked() const {
  std::size_t bytes = slots_.capacity() * sizeof(Slot);
  bytes += VectorHeapBytes(pattern_preds_);
  for (const auto& m : lists_) {
    bytes += HashMapHeapBytes(m);
    for (const auto& [key, lists] : m) {
      (void)key;
      bytes += VectorHeapBytes(lists.adds) + VectorHeapBytes(lists.removes);
    }
  }
  bytes += VectorHeapBytes(run_spo_) + VectorHeapBytes(run_pos_) +
           VectorHeapBytes(run_osp_);
  if (filter_owner_ != nullptr) {
    bytes += filter_owner_->MemoryBytes();
  }
  return bytes;
}

void DeltaStore::SyncTrackedBytesLocked() const {
  if (tracker_ == nullptr) {
    return;
  }
  const std::size_t now = MemoryBytesLocked();
  if (now > tracked_bytes_) {
    tracker_->Add(now - tracked_bytes_);
  } else if (now < tracked_bytes_) {
    tracker_->Sub(tracked_bytes_ - now);
  }
  tracked_bytes_ = now;
}

void DeltaStore::TrackMemory(std::shared_ptr<MemoryTracker> tracker) const {
  if (tracker == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (tracker_ != nullptr) {
    return;  // already registered (e.g. a run adopted through a fold)
  }
  tracker_ = std::move(tracker);
  SyncTrackedBytesLocked();
}

void DeltaStore::Clear() {
  slots_.clear();
  used_ = 0;
  inserts_ = 0;
  tombstones_ = 0;
  pattern_preds_.clear();
  std::lock_guard<std::mutex> lock(cache_mu_);
  for (auto& m : lists_) {
    m.clear();
  }
  lists_valid_ = true;
  run_spo_.clear();
  run_pos_.clear();
  run_osp_.clear();
  runs_valid_ = true;
  filter_ptr_.store(nullptr, std::memory_order_relaxed);
  filter_bits_.store(0, std::memory_order_relaxed);
  filter_owner_.reset();
  SyncTrackedBytesLocked();
}

}  // namespace hexastore

#include "delta/generation.h"

#include <algorithm>
#include <utility>

#include "obs/trace_ring.h"

namespace hexastore {

GenerationGate::~GenerationGate() {
  // No readers may be in flight at destruction (the owning store joins
  // its threads first); drop everything.
  current_.store(nullptr, std::memory_order_release);
}

void GenerationGate::Publish(std::shared_ptr<const DeltaGeneration> gen) {
  if (current_owner_ != nullptr) {
    // Tag with the epoch that was current while the old generation was
    // still reachable: a reader announced at that epoch may still be
    // between loading the raw pointer and bumping the refcount.
    retired_.push_back({std::move(current_owner_), epochs_.current()});
    retired_count_.Add();
  }
  const std::uint64_t store_epoch = gen != nullptr ? gen->epoch : 0;
  current_.store(gen.get(), std::memory_order_release);
  current_owner_ = std::move(gen);
  published_.Add();
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEvent::kPublish, "writer", 0, store_epoch);
  }
  // Readers that validate against the advanced epoch are guaranteed (by
  // the seq_cst argument in epoch.h) to observe the new pointer.
  epochs_.Advance();
  Reclaim();
}

std::shared_ptr<const DeltaGeneration> GenerationGate::Acquire() const {
  EpochManager::Section section(epochs_);
  const DeltaGeneration* raw = current_.load(std::memory_order_acquire);
  if (raw == nullptr) {
    return nullptr;
  }
  // Safe: the control block is kept alive by current_owner_ or a retire
  // entry, and neither can be dropped while this section is active.
  std::shared_ptr<const DeltaGeneration> handle = raw->shared_from_this();
  handles_acquired_.Add();
  return handle;
}

void GenerationGate::Reclaim() {
  if (retired_.empty()) {
    return;
  }
  const std::uint64_t min_active = epochs_.MinActiveEpoch();
  std::uint64_t reclaimed_now = 0;
  auto kept = std::remove_if(
      retired_.begin(), retired_.end(),
      [this, min_active, &reclaimed_now](Retired& r) {
        if (min_active > r.retired_at) {
          reclaimed_.Add();
          ++reclaimed_now;
          if (deferred_reclaim_) {
            // Hand the reference to the stash; the caller destroys it
            // off the owning store's mutex via TakeReclaimed().
            reclaimed_stash_.push_back(std::move(r.gen));
          }
          return true;  // grace period over; handles may still pin it
        }
        return false;
      });
  retired_.erase(kept, retired_.end());
  if (reclaimed_now > 0 && trace_ != nullptr) {
    trace_->Record(obs::TraceEvent::kReclaim, "grace_period", 0,
                   reclaimed_now);
  }
  // Safety net: the compactor drains the stash only when it has merge
  // work. A store that publishes without ever merging (snapshot-heavy,
  // below-threshold churn) must not accumulate generations forever, so
  // past a small backlog the oldest are destroyed inline — exactly the
  // pre-deferral behavior, paid only in the pathological case.
  constexpr std::size_t kMaxDeferredReclaims = 32;
  if (reclaimed_stash_.size() > kMaxDeferredReclaims) {
    reclaimed_stash_.erase(
        reclaimed_stash_.begin(),
        reclaimed_stash_.end() -
            static_cast<std::ptrdiff_t>(kMaxDeferredReclaims));
  }
}

std::vector<std::shared_ptr<const DeltaGeneration>>
GenerationGate::TakeReclaimed() {
  return std::exchange(reclaimed_stash_, {});
}

EpochStats GenerationGate::Stats() const {
  EpochStats stats;
  stats.global_epoch = epochs_.current();
  stats.generations_published = published_.Value();
  stats.generations_retired = retired_count_.Value();
  stats.generations_reclaimed = reclaimed_.Value();
  stats.retire_queue_depth = retired_.size();
  stats.handles_acquired = handles_acquired_.Value();
  stats.active_reader_sections = epochs_.ActiveSections();
  return stats;
}

void GenerationGate::BindObservability(obs::MetricsRegistry* registry,
                                       obs::TraceRing* trace) {
  trace_ = trace;
  if (registry == nullptr) {
    return;
  }
  registry->RegisterCounter("hexa_epoch_handles_acquired_total",
                            "wait-free read handles acquired",
                            &handles_acquired_);
  registry->RegisterCounter("hexa_epoch_generations_published_total",
                            "generations published to readers",
                            &published_);
  registry->RegisterCounter("hexa_epoch_generations_retired_total",
                            "generations superseded and retired",
                            &retired_count_);
  registry->RegisterCounter("hexa_epoch_generations_reclaimed_total",
                            "retired generations past their grace period",
                            &reclaimed_);
}

}  // namespace hexastore

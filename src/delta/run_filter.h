// Prefix Bloom filter over one frozen delta run's op-table keys.
//
// A run's op table is immutable once sealed, so we can summarize it with
// a Bloom filter and let the leveled read chain skip runs that provably
// contain no entry for a key. Beyond full (s,p,o) membership the filter
// also indexes every hexastore access-path prefix of each staged key —
// s, sp, p, po, o, os — so bounded pattern probes (ScanInserts /
// CountInserts with at least one bound position) can skip runs too.
//
// Semantics contract (see docs/delta-levels.md): the filter covers only
// op-table KEYS. A miss means "this run stages no point op for the key";
// it says nothing about pattern tombstones, which live in a separate
// predicate set. Callers must still consult PatternErased() after a
// filter skip, otherwise a skipped layer would silently lose its erase
// verdicts.
#ifndef HEXASTORE_DELTA_RUN_FILTER_H_
#define HEXASTORE_DELTA_RUN_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "rdf/triple.h"

namespace hexastore {

/// Shared counters describing filter effectiveness across a store's runs.
/// One instance is threaded through every run a DeltaHexastore creates
/// (and survives folds/merges) so DeltaStats can report totals. The
/// fields are obs::Counter so the owning store can register them
/// directly in its MetricsRegistry (hexa_filter_* names).
struct RunFilterCounters {
  obs::Counter probes;
  obs::Counter skips;
  obs::Counter false_positives;
};

/// Immutable-after-build Bloom filter with double hashing. Construction
/// is single-threaded (under the run's cache mutex); MayContain /
/// MayContainPrefix are safe to call concurrently once published.
class RunFilter {
 public:
  /// Sizes the bit array for `op_count` keys at `bits_per_key` bits each
  /// per indexed key class (seven classes: s, p, o, sp, po, os, spo).
  RunFilter(std::size_t op_count, std::size_t bits_per_key);

  /// Indexes the triple and all six hexastore prefixes of it.
  void AddTriple(const IdTriple& t);

  /// False only when the run definitely stages no op for `t`.
  bool MayContain(const IdTriple& t) const;

  /// False only when the run definitely stages no op matching the bound
  /// positions of `q`. An unbound pattern always returns true.
  bool MayContainPrefix(const IdPattern& q) const;

  std::size_t MemoryBytes() const {
    return bits_.capacity() * sizeof(std::uint64_t);
  }

 private:
  bool TestKey(std::uint64_t key_hash) const;
  void AddKey(std::uint64_t key_hash);

  std::vector<std::uint64_t> bits_;
  std::size_t num_bits_ = 0;
  std::size_t num_hashes_ = 1;
};

}  // namespace hexastore

#endif  // HEXASTORE_DELTA_RUN_FILTER_H_

// Column-oriented vertical-partitioning baseline (Abadi et al., VLDB'07),
// represented as in the paper's §5: COVP1 is the pso indexing alone (one
// two-column table per property, sorted by subject, objects grouped per
// subject); COVP2 additionally keeps a second copy of each table sorted by
// object (the pos indexing).
//
// The deliberate limitation: COVP1 has no object-order access, so
// object-bound lookups must walk a property's subject vector; queries not
// bound by property must touch every property table. Those asymptotics are
// the phenomenon Figures 3-14 measure.
#ifndef HEXASTORE_BASELINE_VERTICAL_STORE_H_
#define HEXASTORE_BASELINE_VERTICAL_STORE_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/store_interface.h"
#include "index/sorted_vec.h"

namespace hexastore {

/// One vertically-partitioned two-column property table.
struct PropertyTable {
  /// Sorted subject vector s(p).
  IdVec subjects;
  /// Object lists o(s, p), one per subject entry.
  std::unordered_map<Id, IdVec> objects_by_subject;

  /// COVP2 only: sorted object vector o(p).
  IdVec objects;
  /// COVP2 only: subject lists s(p, o), one per object entry.
  std::unordered_map<Id, IdVec> subjects_by_object;

  /// Number of (subject, object) pairs in the table.
  std::size_t row_count = 0;
};

/// Vertically partitioned store; COVP1 when `with_object_index` is false,
/// COVP2 when true.
class VerticalStore : public TripleStore {
 public:
  /// Creates a COVP1 (`with_object_index == false`) or COVP2 store.
  explicit VerticalStore(bool with_object_index)
      : with_object_index_(with_object_index) {}

  VerticalStore(const VerticalStore&) = delete;
  VerticalStore& operator=(const VerticalStore&) = delete;

  bool Insert(const IdTriple& t) override;
  bool Erase(const IdTriple& t) override;
  bool Contains(const IdTriple& t) const override;
  std::size_t size() const override { return size_; }
  void Scan(const IdPattern& pattern, const TripleSink& sink) const override;
  std::size_t MemoryBytes() const override;
  std::string name() const override {
    return with_object_index_ ? "COVP2" : "COVP1";
  }
  void BulkLoad(const IdTripleVec& triples) override;

  /// True for COVP2.
  bool with_object_index() const { return with_object_index_; }

  /// All property ids with a table, sorted ascending.
  std::vector<Id> Properties() const;

  /// The table for property `p`, or nullptr.
  const PropertyTable* table(Id p) const;

  /// Sorted subject vector of property `p`, or nullptr.
  const IdVec* subject_vector(Id p) const;

  /// Object list o(s, p), or nullptr.
  const IdVec* object_list(Id p, Id s) const;

  /// Sorted object vector of `p` (COVP2 only; nullptr on COVP1).
  const IdVec* object_vector(Id p) const;

  /// Subject list s(p, o) (COVP2 only; nullptr on COVP1).
  const IdVec* subject_list(Id p, Id o) const;

  /// Removes all triples.
  void Clear();

 private:
  bool with_object_index_;
  std::unordered_map<Id, PropertyTable> tables_;
  std::size_t size_ = 0;
};

}  // namespace hexastore

#endif  // HEXASTORE_BASELINE_VERTICAL_STORE_H_

#include "baseline/vertical_store.h"

#include <algorithm>

#include "util/memory_tracker.h"

namespace hexastore {

bool VerticalStore::Insert(const IdTriple& t) {
  PropertyTable& pt = tables_[t.p];
  IdVec& olist = pt.objects_by_subject[t.s];
  if (!SortedInsert(&olist, t.o)) {
    return false;
  }
  if (olist.size() == 1) {
    SortedInsert(&pt.subjects, t.s);
  }
  if (with_object_index_) {
    IdVec& slist = pt.subjects_by_object[t.o];
    SortedInsert(&slist, t.s);
    if (slist.size() == 1) {
      SortedInsert(&pt.objects, t.o);
    }
  }
  ++pt.row_count;
  ++size_;
  return true;
}

bool VerticalStore::Erase(const IdTriple& t) {
  auto table_it = tables_.find(t.p);
  if (table_it == tables_.end()) {
    return false;
  }
  PropertyTable& pt = table_it->second;
  auto olist_it = pt.objects_by_subject.find(t.s);
  if (olist_it == pt.objects_by_subject.end() ||
      !SortedErase(&olist_it->second, t.o)) {
    return false;
  }
  if (olist_it->second.empty()) {
    pt.objects_by_subject.erase(olist_it);
    SortedErase(&pt.subjects, t.s);
  }
  if (with_object_index_) {
    auto slist_it = pt.subjects_by_object.find(t.o);
    if (slist_it != pt.subjects_by_object.end()) {
      SortedErase(&slist_it->second, t.s);
      if (slist_it->second.empty()) {
        pt.subjects_by_object.erase(slist_it);
        SortedErase(&pt.objects, t.o);
      }
    }
  }
  --pt.row_count;
  if (pt.row_count == 0) {
    tables_.erase(table_it);
  }
  --size_;
  return true;
}

bool VerticalStore::Contains(const IdTriple& t) const {
  const IdVec* olist = object_list(t.p, t.s);
  return olist != nullptr && SortedContains(*olist, t.o);
}

void VerticalStore::Scan(const IdPattern& q, const TripleSink& sink) const {
  // Helper scanning a single property table under the pattern.
  auto scan_table = [&](Id p, const PropertyTable& pt) {
    if (q.has_s()) {
      auto it = pt.objects_by_subject.find(q.s);
      if (it == pt.objects_by_subject.end()) {
        return;
      }
      if (q.has_o()) {
        if (SortedContains(it->second, q.o)) {
          sink(IdTriple{q.s, p, q.o});
        }
      } else {
        for (Id o : it->second) {
          sink(IdTriple{q.s, p, o});
        }
      }
      return;
    }
    if (q.has_o()) {
      if (with_object_index_) {
        auto it = pt.subjects_by_object.find(q.o);
        if (it != pt.subjects_by_object.end()) {
          for (Id s : it->second) {
            sink(IdTriple{s, p, q.o});
          }
        }
      } else {
        // COVP1: tables are subject-sorted only; object-bound access walks
        // the whole table.
        for (Id s : pt.subjects) {
          const IdVec& olist = pt.objects_by_subject.at(s);
          if (SortedContains(olist, q.o)) {
            sink(IdTriple{s, p, q.o});
          }
        }
      }
      return;
    }
    // Property-only (or unconstrained within this table): emit all rows.
    for (Id s : pt.subjects) {
      for (Id o : pt.objects_by_subject.at(s)) {
        sink(IdTriple{s, p, o});
      }
    }
  };

  if (q.has_p()) {
    auto it = tables_.find(q.p);
    if (it != tables_.end()) {
      scan_table(q.p, it->second);
    }
    return;
  }
  // Not property-bound: every property table must be consulted (the
  // paper's central criticism of vertical partitioning).
  for (const auto& [p, pt] : tables_) {
    scan_table(p, pt);
  }
}

std::size_t VerticalStore::MemoryBytes() const {
  std::size_t bytes = HashMapHeapBytes(tables_);
  for (const auto& [p, pt] : tables_) {
    (void)p;
    bytes += VectorHeapBytes(pt.subjects) +
             HashMapHeapBytes(pt.objects_by_subject);
    for (const auto& [s, olist] : pt.objects_by_subject) {
      (void)s;
      bytes += VectorHeapBytes(olist);
    }
    if (with_object_index_) {
      bytes += VectorHeapBytes(pt.objects) +
               HashMapHeapBytes(pt.subjects_by_object);
      for (const auto& [o, slist] : pt.subjects_by_object) {
        (void)o;
        bytes += VectorHeapBytes(slist);
      }
    }
  }
  return bytes;
}

void VerticalStore::BulkLoad(const IdTripleVec& triples) {
  for (const auto& t : triples) {
    tables_[t.p].objects_by_subject[t.s].push_back(t.o);
    if (with_object_index_) {
      tables_[t.p].subjects_by_object[t.o].push_back(t.s);
    }
  }
  size_ = 0;
  for (auto& [p, pt] : tables_) {
    (void)p;
    pt.subjects.clear();
    pt.subjects.reserve(pt.objects_by_subject.size());
    pt.row_count = 0;
    for (auto& [s, olist] : pt.objects_by_subject) {
      SortUnique(&olist);
      pt.subjects.push_back(s);
      pt.row_count += olist.size();
    }
    std::sort(pt.subjects.begin(), pt.subjects.end());
    if (with_object_index_) {
      pt.objects.clear();
      pt.objects.reserve(pt.subjects_by_object.size());
      for (auto& [o, slist] : pt.subjects_by_object) {
        SortUnique(&slist);
        pt.objects.push_back(o);
      }
      std::sort(pt.objects.begin(), pt.objects.end());
    }
    size_ += pt.row_count;
  }
}

std::vector<Id> VerticalStore::Properties() const {
  std::vector<Id> props;
  props.reserve(tables_.size());
  for (const auto& [p, pt] : tables_) {
    (void)pt;
    props.push_back(p);
  }
  std::sort(props.begin(), props.end());
  return props;
}

const PropertyTable* VerticalStore::table(Id p) const {
  auto it = tables_.find(p);
  return it == tables_.end() ? nullptr : &it->second;
}

const IdVec* VerticalStore::subject_vector(Id p) const {
  const PropertyTable* pt = table(p);
  return pt == nullptr ? nullptr : &pt->subjects;
}

const IdVec* VerticalStore::object_list(Id p, Id s) const {
  const PropertyTable* pt = table(p);
  if (pt == nullptr) {
    return nullptr;
  }
  auto it = pt->objects_by_subject.find(s);
  return it == pt->objects_by_subject.end() ? nullptr : &it->second;
}

const IdVec* VerticalStore::object_vector(Id p) const {
  if (!with_object_index_) {
    return nullptr;
  }
  const PropertyTable* pt = table(p);
  return pt == nullptr ? nullptr : &pt->objects;
}

const IdVec* VerticalStore::subject_list(Id p, Id o) const {
  if (!with_object_index_) {
    return nullptr;
  }
  const PropertyTable* pt = table(p);
  if (pt == nullptr) {
    return nullptr;
  }
  auto it = pt->subjects_by_object.find(o);
  return it == pt->subjects_by_object.end() ? nullptr : &it->second;
}

void VerticalStore::Clear() {
  tables_.clear();
  size_ = 0;
}

}  // namespace hexastore

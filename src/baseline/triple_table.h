// Conventional "giant triples table" store (paper §1, §2.1).
//
// Keeps all triples in one ordered set. Pattern scans that are not a full
// (s,p,o) lookup degrade to range or full scans — exactly the scalability
// defect the paper ascribes to conventional schemes. This store doubles
// as the correctness oracle for the integration tests: every other store
// must return the same answers.
#ifndef HEXASTORE_BASELINE_TRIPLE_TABLE_H_
#define HEXASTORE_BASELINE_TRIPLE_TABLE_H_

#include <cstddef>
#include <set>
#include <string>

#include "core/store_interface.h"

namespace hexastore {

/// Single ordered triples table, sorted in (s, p, o) order.
class TripleTableStore : public TripleStore {
 public:
  TripleTableStore() = default;

  bool Insert(const IdTriple& t) override;
  bool Erase(const IdTriple& t) override;
  bool Contains(const IdTriple& t) const override;
  std::size_t size() const override { return table_.size(); }
  void Scan(const IdPattern& pattern, const TripleSink& sink) const override;
  std::size_t MemoryBytes() const override;
  std::string name() const override { return "TripleTable"; }

  /// Removes all triples.
  void Clear() { table_.clear(); }

 private:
  std::set<IdTriple> table_;
};

}  // namespace hexastore

#endif  // HEXASTORE_BASELINE_TRIPLE_TABLE_H_

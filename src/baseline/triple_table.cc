#include "baseline/triple_table.h"

namespace hexastore {

bool TripleTableStore::Insert(const IdTriple& t) {
  return table_.insert(t).second;
}

bool TripleTableStore::Erase(const IdTriple& t) {
  return table_.erase(t) > 0;
}

bool TripleTableStore::Contains(const IdTriple& t) const {
  return table_.count(t) > 0;
}

void TripleTableStore::Scan(const IdPattern& q,
                            const TripleSink& sink) const {
  // The (s, p, o) sort order supports prefix ranges for patterns binding a
  // leading prefix; anything else is a filtered scan of the range.
  if (q.has_s()) {
    auto begin = table_.lower_bound(IdTriple{q.s, 0, 0});
    auto end = table_.lower_bound(IdTriple{q.s + 1, 0, 0});
    for (auto it = begin; it != end; ++it) {
      if (q.Matches(*it)) {
        sink(*it);
      }
    }
    return;
  }
  for (const auto& t : table_) {
    if (q.Matches(t)) {
      sink(t);
    }
  }
}

std::size_t TripleTableStore::MemoryBytes() const {
  // std::set node: 3 pointers + color + payload, padded.
  constexpr std::size_t kNodeOverhead = 4 * sizeof(void*);
  return table_.size() * (sizeof(IdTriple) + kNodeOverhead);
}

}  // namespace hexastore

// Per-structure memory statistics of a Hexastore, used by the Figure 15
// reproduction and by the worst-case-5x space-bound ablation.
#ifndef HEXASTORE_CORE_STATS_H_
#define HEXASTORE_CORE_STATS_H_

#include <cstddef>
#include <string>

namespace hexastore {

/// Byte-level breakdown of a Hexastore's index structures.
struct MemoryStats {
  /// Header maps + second-level sorted vectors, per permutation
  /// (indexed by static_cast<int>(Permutation)).
  std::size_t perm_index_bytes[6] = {0, 0, 0, 0, 0, 0};
  /// Shared terminal lists, per family (objects, predicates, subjects).
  std::size_t terminal_bytes[3] = {0, 0, 0};

  /// Sum of all components.
  std::size_t Total() const;

  /// Number of id *entries* (not bytes) across headers, vectors and lists;
  /// used to verify the paper's worst-case 5x bound, which is stated in
  /// key-entry counts relative to the 3n entries of a triples table.
  std::size_t key_entries = 0;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

}  // namespace hexastore

#endif  // HEXASTORE_CORE_STATS_H_

// Per-structure memory statistics of a Hexastore, used by the Figure 15
// reproduction and by the worst-case-5x space-bound ablation, plus the
// delta-layer counters reported by DeltaHexastore.
#ifndef HEXASTORE_CORE_STATS_H_
#define HEXASTORE_CORE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace hexastore {

/// Byte-level breakdown of a Hexastore's index structures.
struct MemoryStats {
  /// Header maps + second-level sorted vectors, per permutation
  /// (indexed by static_cast<int>(Permutation)).
  std::size_t perm_index_bytes[6] = {0, 0, 0, 0, 0, 0};
  /// Shared terminal lists, per family (objects, predicates, subjects).
  std::size_t terminal_bytes[3] = {0, 0, 0};

  /// Sum of all components.
  std::size_t Total() const;

  /// Number of id *entries* (not bytes) across headers, vectors and lists;
  /// used to verify the paper's worst-case 5x bound, which is stated in
  /// key-entry counts relative to the 3n entries of a triples table.
  std::size_t key_entries = 0;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// Counters of a DeltaHexastore's staging layer: how much is buffered,
/// how often it has been drained, and where the memory sits.
struct DeltaStats {
  std::size_t staged_inserts = 0;     ///< ops staged as inserts
  std::size_t staged_tombstones = 0;  ///< ops staged as tombstones
  std::size_t pattern_tombstones = 0;  ///< predicate-level pattern erases
  std::size_t compact_threshold = 0;  ///< auto-compaction trigger
  std::uint64_t compactions = 0;      ///< delta drains since construction
  std::uint64_t epoch = 0;            ///< generation counter
  std::size_t base_triples = 0;       ///< triples in the compacted base
  std::size_t base_bytes = 0;         ///< base index heap bytes
  std::size_t delta_bytes = 0;        ///< staging-buffer heap bytes

  // Background-compaction counters (zero on a synchronous store).
  bool background = false;        ///< merges run on the compactor thread
  std::uint64_t seals = 0;        ///< staging buffers sealed for merging
  std::uint64_t background_merges = 0;  ///< off-thread merges completed
  std::uint64_t merge_discards = 0;  ///< merges invalidated (Clear/BulkLoad)
  std::uint64_t seal_overflows = 0;  ///< threshold hits no level absorbed
  std::size_t sealed_ops = 0;     ///< ops across the currently sealed runs

  // Leveled-delta counters (see docs/delta-levels.md; the l0_*/l1_*
  // fields are zero on a flat store, where every seal merges straight
  // into the base).
  std::size_t l0_run_limit = 0;  ///< runs triggering a fold (0 = flat)
  std::size_t l0_runs = 0;       ///< sealed runs currently in L0
  std::size_t l0_ops = 0;        ///< staged ops across the L0 runs
  std::size_t l1_ops = 0;        ///< staged ops in the L1 run
  std::uint64_t l0_merges = 0;   ///< L0→L1 folds completed
  std::uint64_t base_merges = 0;  ///< merges drained into / rebuilt the base
  std::uint64_t merge_run_ops = 0;  ///< ops written building folded runs
  std::uint64_t base_rebuild_triples = 0;  ///< triples written by base merges
  std::uint64_t staged_ops_total = 0;  ///< ops ever staged (write-amp denom)

  // Prefix-filter counters (zero until a run is sealed with filters
  // armed; see docs/delta-levels.md "Filter semantics").
  std::size_t filter_bits_per_key = 0;   ///< L0 sizing (0 = disabled)
  std::uint64_t filter_probes = 0;       ///< point + prefix filter checks
  std::uint64_t filter_skips = 0;        ///< runs proven key-free, skipped
  std::uint64_t filter_false_positives = 0;  ///< passes with no table hit
  std::uint64_t filters_dropped = 0;  ///< seals that skipped the filter
                                      ///< (budget pressure)

  // Memory-budget counters (zero without memory_budget_bytes).
  std::size_t memory_budget_bytes = 0;  ///< hard budget (0 = unlimited)
  std::size_t resident_bytes = 0;  ///< tracked runs + filters + active table
  std::uint64_t budget_seals = 0;  ///< seals forced by the budget
  std::uint64_t budget_folds = 0;  ///< L0→L1 folds forced by the budget
  std::uint64_t budget_base_merges = 0;  ///< base merges forced by the budget

  /// Bytes-of-merge-work per staged op:
  /// (merge_run_ops + base_rebuild_triples) / staged_ops_total. Leveling
  /// exists to push this toward 1 + 1/l0_run_limit × (base rebuild share).
  double WriteAmplification() const;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// Counters of the RCU-style generation gate: how many immutable
/// generations were published, how reclamation is keeping up, and how
/// many wait-free read handles were taken. retire_queue_depth staying
/// near zero shows grace periods expiring promptly; it grows only while
/// readers sit inside the (microsecond) acquire window.
struct EpochStats {
  std::uint64_t global_epoch = 0;           ///< current writer epoch
  std::uint64_t generations_published = 0;  ///< Publish calls
  std::uint64_t generations_retired = 0;    ///< superseded generations
  std::uint64_t generations_reclaimed = 0;  ///< grace periods completed
  std::size_t retire_queue_depth = 0;       ///< retired, not yet reclaimed
  std::uint64_t handles_acquired = 0;       ///< wait-free Acquire calls
  int active_reader_sections = 0;           ///< readers mid-acquire now

  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// Counters of the write-ahead log: append volume, how often the log
/// actually hit the platter (fsync), and the checkpoint cadence. The
/// commit_requests / fsyncs ratio shows group commit working: in
/// per-commit mode many concurrent committers share one fsync.
struct WalStats {
  std::uint64_t records_appended = 0;  ///< log records written
  std::uint64_t bytes_appended = 0;    ///< bytes written (frames + headers)
  std::uint64_t commit_requests = 0;   ///< Commit() calls
  std::uint64_t fsyncs = 0;            ///< fsync(2) calls issued
  std::uint64_t rotations = 0;         ///< segment files started
  std::uint64_t checkpoints = 0;       ///< snapshot + truncate cycles

  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// One coherent bundle of every stats struct a store reports, produced
/// by the owning store's GatherStats() — the single snapshot path for
/// DeltaStats/EpochStats/WalStats.
///
/// Memory-ordering contract (see docs/observability.md "Snapshot
/// consistency"): GatherStats() reads every field while holding the
/// owning store's writer mutex, so all writer-maintained fields
/// (staged sizes, level shapes, epoch, base size) form one consistent
/// cut. Reader-side and compactor-side counters (filter probes, handle
/// acquisitions, merge totals) are relaxed atomics read tear-free at
/// that moment; they are exact individually but may be mid-flight
/// relative to each other — e.g. `filter_probes` can already include a
/// probe whose `filter_skips` increment lands a nanosecond after the
/// gather.
struct StatsSnapshot {
  DeltaStats delta;
  EpochStats epoch;
  WalStats wal;
  bool has_wal = false;  ///< wal is meaningful (durable store)

  /// Concatenated human-readable report (delta, epoch, and — when
  /// has_wal — WAL sections).
  std::string ToString() const;
};

}  // namespace hexastore

#endif  // HEXASTORE_CORE_STATS_H_

// Workload-based index advisor (paper §6).
//
// The paper observes that "some indices may not contribute to query
// efficiency based on a given workload. For example, the ops index has
// been seldom used in our experiments. A subject for future research
// concerns the selection of the most suitable indices for a given RDF
// data set based on the query workload at hand." This module implements
// that analysis over the Hexastore's access counters: it reports per-index
// usage shares, the memory each index would release if dropped, and a
// recommendation of droppable indexes under a usage threshold.
#ifndef HEXASTORE_CORE_ADVISOR_H_
#define HEXASTORE_CORE_ADVISOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/hexastore.h"
#include "index/perm_index.h"

namespace hexastore {

/// Advice derived from a Hexastore's observed access pattern.
struct IndexAdvice {
  /// Raw access counts per permutation.
  std::uint64_t counts[6] = {0, 0, 0, 0, 0, 0};
  /// Fraction of all accesses served per permutation (0 when no accesses
  /// were recorded at all).
  double share[6] = {0, 0, 0, 0, 0, 0};
  /// Header/vector bytes each index holds privately (shared terminal
  /// lists are not attributed: they are kept alive by the sibling index).
  std::size_t private_bytes[6] = {0, 0, 0, 0, 0, 0};
  /// Permutations whose usage share falls below the advisor threshold,
  /// i.e. candidates for dropping in a workload-tuned deployment.
  std::vector<Permutation> droppable;
  /// Total bytes the droppable indexes would release.
  std::size_t reclaimable_bytes = 0;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// Analyzes `store`'s access counters; an index is droppable when its
/// share of all recorded accesses is strictly below `drop_threshold`.
/// With no recorded accesses, nothing is droppable (no evidence).
IndexAdvice AdviseIndexes(const Hexastore& store,
                          double drop_threshold = 0.01);

}  // namespace hexastore

#endif  // HEXASTORE_CORE_ADVISOR_H_

#include "core/store_interface.h"

#include <algorithm>

namespace hexastore {

TripleStore::~TripleStore() = default;

IdTripleVec TripleStore::Match(const IdPattern& pattern) const {
  IdTripleVec out;
  Scan(pattern, [&out](const IdTriple& t) { out.push_back(t); });
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t TripleStore::CountMatches(const IdPattern& pattern) const {
  std::uint64_t count = 0;
  Scan(pattern, [&count](const IdTriple&) { ++count; });
  return count;
}

bool TripleStore::MatchesAny(const IdPattern& pattern) const {
  return CountMatches(pattern) > 0;
}

std::uint64_t TripleStore::EstimateMatches(const IdPattern& pattern) const {
  return CountMatches(pattern);
}

void TripleStore::BulkLoad(const IdTripleVec& triples) {
  for (const auto& t : triples) {
    Insert(t);
  }
}

}  // namespace hexastore

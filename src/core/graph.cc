#include "core/graph.h"

#include "obs/scoped_timer.h"
#include "rdf/ntriples.h"

namespace hexastore {

Graph::Graph() {
  registry_.RegisterCounter("hexa_graph_inserts_total",
                            "term-level Insert calls that added a triple",
                            &meters_.inserts);
  registry_.RegisterCounter("hexa_graph_erases_total",
                            "term-level Erase calls that removed a triple",
                            &meters_.erases);
  registry_.RegisterCounter("hexa_graph_matches_total",
                            "term-level Match queries answered",
                            &meters_.matches);
  registry_.RegisterHistogram("hexa_graph_match_latency_ns",
                              "Match latency incl. decode "
                              "(1-in-128 sampled)",
                              &meters_.match_ns);
  registry_.RegisterGauge("hexa_graph_size_triples",
                          "triples in the graph", &meters_.size_triples);
  registry_.RegisterGauge("hexa_graph_dict_terms",
                          "terms interned in the dictionary",
                          &meters_.dict_terms);
}

bool Graph::Insert(const Triple& triple) {
  const bool added = store_.Insert(dict_.Encode(triple));
  if (added) {
    meters_.inserts.Add();
  }
  return added;
}

bool Graph::Erase(const Triple& triple) {
  auto encoded = dict_.TryEncode(triple);
  if (!encoded.has_value()) {
    return false;
  }
  const bool removed = store_.Erase(*encoded);
  if (removed) {
    meters_.erases.Add();
  }
  return removed;
}

bool Graph::Contains(const Triple& triple) const {
  auto encoded = dict_.TryEncode(triple);
  return encoded.has_value() && store_.Contains(*encoded);
}

Result<std::size_t> Graph::LoadNTriples(std::string_view text) {
  auto triples = ParseNTriplesDocument(text);
  if (!triples.ok()) {
    return triples.status();
  }
  std::size_t added = 0;
  for (const auto& t : triples.value()) {
    if (Insert(t)) {
      ++added;
    }
  }
  return added;
}

void Graph::BulkLoad(const std::vector<Triple>& triples) {
  IdTripleVec encoded;
  encoded.reserve(triples.size());
  for (const auto& t : triples) {
    encoded.push_back(dict_.Encode(t));
  }
  store_.BulkLoad(encoded);
}

std::vector<Triple> Graph::Match(const std::optional<Term>& s,
                                 const std::optional<Term>& p,
                                 const std::optional<Term>& o) const {
  obs::ScopedTimer timer(&meters_.match_ns);
  meters_.matches.Add();
  IdPattern pattern;
  if (s.has_value()) {
    pattern.s = dict_.Lookup(*s);
    if (pattern.s == kInvalidId) {
      return {};
    }
  }
  if (p.has_value()) {
    pattern.p = dict_.Lookup(*p);
    if (pattern.p == kInvalidId) {
      return {};
    }
  }
  if (o.has_value()) {
    pattern.o = dict_.Lookup(*o);
    if (pattern.o == kInvalidId) {
      return {};
    }
  }
  std::vector<Triple> out;
  for (const IdTriple& t : store_.Match(pattern)) {
    out.push_back(dict_.Decode(t));
  }
  return out;
}

void Graph::RefreshGauges() const {
  meters_.size_triples.Set(static_cast<std::int64_t>(store_.size()));
  meters_.dict_terms.Set(static_cast<std::int64_t>(dict_.size()));
}

std::string Graph::MetricsText() const {
  RefreshGauges();
  return registry_.RenderPrometheus();
}

std::string Graph::MetricsJson() const {
  RefreshGauges();
  return registry_.RenderJson();
}

bool Graph::DumpMetricsJson(const std::string& path) const {
  RefreshGauges();
  return registry_.WriteJsonFile(path);
}

}  // namespace hexastore

#include "core/graph.h"

#include "rdf/ntriples.h"

namespace hexastore {

bool Graph::Insert(const Triple& triple) {
  return store_.Insert(dict_.Encode(triple));
}

bool Graph::Erase(const Triple& triple) {
  auto encoded = dict_.TryEncode(triple);
  if (!encoded.has_value()) {
    return false;
  }
  return store_.Erase(*encoded);
}

bool Graph::Contains(const Triple& triple) const {
  auto encoded = dict_.TryEncode(triple);
  return encoded.has_value() && store_.Contains(*encoded);
}

Result<std::size_t> Graph::LoadNTriples(std::string_view text) {
  auto triples = ParseNTriplesDocument(text);
  if (!triples.ok()) {
    return triples.status();
  }
  std::size_t added = 0;
  for (const auto& t : triples.value()) {
    if (Insert(t)) {
      ++added;
    }
  }
  return added;
}

void Graph::BulkLoad(const std::vector<Triple>& triples) {
  IdTripleVec encoded;
  encoded.reserve(triples.size());
  for (const auto& t : triples) {
    encoded.push_back(dict_.Encode(t));
  }
  store_.BulkLoad(encoded);
}

std::vector<Triple> Graph::Match(const std::optional<Term>& s,
                                 const std::optional<Term>& p,
                                 const std::optional<Term>& o) const {
  IdPattern pattern;
  if (s.has_value()) {
    pattern.s = dict_.Lookup(*s);
    if (pattern.s == kInvalidId) {
      return {};
    }
  }
  if (p.has_value()) {
    pattern.p = dict_.Lookup(*p);
    if (pattern.p == kInvalidId) {
      return {};
    }
  }
  if (o.has_value()) {
    pattern.o = dict_.Lookup(*o);
    if (pattern.o == kInvalidId) {
      return {};
    }
  }
  std::vector<Triple> out;
  for (const IdTriple& t : store_.Match(pattern)) {
    out.push_back(dict_.Decode(t));
  }
  return out;
}

}  // namespace hexastore

#include "core/hexastore.h"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace hexastore {

namespace {

// Calls fn(begin, end) for each maximal run of `eq`-equal triples.
template <typename It, typename Eq, typename Fn>
void ForEachRun(It begin, It end, Eq eq, Fn fn) {
  while (begin != end) {
    It run_end = begin + 1;
    while (run_end != end && eq(*begin, *run_end)) {
      ++run_end;
    }
    fn(begin, run_end);
    begin = run_end;
  }
}

// Appends one projected field of [begin, end) to `vec` and merges the
// appended tail into the sorted prefix (duplicates — within the run and
// against the prefix — are dropped by the merge).
template <typename It, typename Proj>
void MergeAppend(IdVec* vec, It begin, It end, Proj proj) {
  const std::size_t prefix = vec->size();
  for (It it = begin; it != end; ++it) {
    vec->push_back(proj(*it));
  }
  SortedMergeTail(vec, prefix);
}

}  // namespace

bool Hexastore::Insert(const IdTriple& t) {
  // The o(s,p) insertion doubles as the duplicate check: a triple is
  // present iff its object is in the shared object list.
  if (!pool_.Insert(ListFamily::kObjects, t.s, t.p, t.o)) {
    return false;
  }
  pool_.Insert(ListFamily::kPredicates, t.s, t.o, t.p);
  pool_.Insert(ListFamily::kSubjects, t.p, t.o, t.s);

  index(Permutation::kSpo).Insert(t.s, t.p);
  index(Permutation::kSop).Insert(t.s, t.o);
  index(Permutation::kPso).Insert(t.p, t.s);
  index(Permutation::kPos).Insert(t.p, t.o);
  index(Permutation::kOsp).Insert(t.o, t.s);
  index(Permutation::kOps).Insert(t.o, t.p);

  ++size_;
  return true;
}

bool Hexastore::Erase(const IdTriple& t) {
  if (!pool_.Erase(ListFamily::kObjects, t.s, t.p, t.o)) {
    return false;
  }
  pool_.Erase(ListFamily::kPredicates, t.s, t.o, t.p);
  pool_.Erase(ListFamily::kSubjects, t.p, t.o, t.s);

  // A second-level pair leaves an index only when its terminal list is
  // gone; e.g. (s, p) leaves spo when o(s,p) no longer exists.
  if (objects(t.s, t.p) == nullptr) {
    index(Permutation::kSpo).Erase(t.s, t.p);
    index(Permutation::kPso).Erase(t.p, t.s);
  }
  if (predicates(t.s, t.o) == nullptr) {
    index(Permutation::kSop).Erase(t.s, t.o);
    index(Permutation::kOsp).Erase(t.o, t.s);
  }
  if (subjects(t.p, t.o) == nullptr) {
    index(Permutation::kPos).Erase(t.p, t.o);
    index(Permutation::kOps).Erase(t.o, t.p);
  }

  --size_;
  return true;
}

bool Hexastore::Contains(const IdTriple& t) const {
  return pool_.Contains(ListFamily::kObjects, t.s, t.p, t.o);
}

void Hexastore::Scan(const IdPattern& q, const TripleSink& sink) const {
  const bool bs = q.has_s();
  const bool bp = q.has_p();
  const bool bo = q.has_o();

  if (bs && bp && bo) {
    if (Contains(IdTriple{q.s, q.p, q.o})) {
      sink(IdTriple{q.s, q.p, q.o});
    }
    return;
  }
  if (bs && bp) {  // (s, p, ?) via o(s,p)
    if (const IdVec* os = objects(q.s, q.p)) {
      for (Id o : *os) {
        sink(IdTriple{q.s, q.p, o});
      }
    }
    return;
  }
  if (bs && bo) {  // (s, ?, o) via p(s,o)
    if (const IdVec* ps = predicates(q.s, q.o)) {
      for (Id p : *ps) {
        sink(IdTriple{q.s, p, q.o});
      }
    }
    return;
  }
  if (bp && bo) {  // (?, p, o) via s(p,o)
    if (const IdVec* ss = subjects(q.p, q.o)) {
      for (Id s : *ss) {
        sink(IdTriple{s, q.p, q.o});
      }
    }
    return;
  }
  if (bs) {  // (s, ?, ?) via spo
    if (const IdVec* ps = predicates_of_subject(q.s)) {
      for (Id p : *ps) {
        const IdVec* os = objects(q.s, p);
        for (Id o : *os) {
          sink(IdTriple{q.s, p, o});
        }
      }
    }
    return;
  }
  if (bp) {  // (?, p, ?) via pso
    if (const IdVec* ss = subjects_of_predicate(q.p)) {
      for (Id s : *ss) {
        const IdVec* os = objects(s, q.p);
        for (Id o : *os) {
          sink(IdTriple{s, q.p, o});
        }
      }
    }
    return;
  }
  if (bo) {  // (?, ?, o) via osp
    if (const IdVec* ss = subjects_of_object(q.o)) {
      for (Id s : *ss) {
        const IdVec* ps = predicates(s, q.o);
        for (Id p : *ps) {
          sink(IdTriple{s, p, q.o});
        }
      }
    }
    return;
  }
  // Full scan via spo.
  index(Permutation::kSpo).ForEachHeader([&](Id s, const IdVec& ps) {
    for (Id p : ps) {
      const IdVec* os = objects(s, p);
      for (Id o : *os) {
        sink(IdTriple{s, p, o});
      }
    }
  });
}

std::size_t Hexastore::MemoryBytes() const {
  std::size_t bytes = pool_.MemoryBytes();
  for (const auto& idx : indexes_) {
    bytes += idx.MemoryBytes();
  }
  return bytes;
}

void Hexastore::BulkLoad(const IdTripleVec& triples) {
  if (triples.empty()) {
    return;
  }
  // Sort the batch once per key grouping and walk the runs: each touched
  // header vector / terminal list gets exactly one hash lookup, one
  // append of its run, and one linear tail merge into its (still sorted)
  // existing prefix. Loading into a non-empty store therefore merges
  // with — and dedups against — the existing contents while visiting
  // only the lists the batch lands in. This is the drain path
  // DeltaHexastore compaction leans on.
  IdTripleVec batch(triples);
  auto by_s = [](const IdTriple& a, const IdTriple& b) {
    return a.s == b.s;
  };
  auto by_p = [](const IdTriple& a, const IdTriple& b) {
    return a.p == b.p;
  };
  auto by_o = [](const IdTriple& a, const IdTriple& b) {
    return a.o == b.o;
  };

  // (s, p, o) grouping: spo header vectors and the shared o(s,p) lists.
  std::sort(batch.begin(), batch.end());
  ForEachRun(batch.begin(), batch.end(), by_s, [&](auto s_begin, auto s_end) {
    MergeAppend(index(Permutation::kSpo).GetOrCreate(s_begin->s), s_begin,
                s_end, [](const IdTriple& t) { return t.p; });
    ForEachRun(s_begin, s_end, by_p, [&](auto sp_begin, auto sp_end) {
      MergeAppend(
          pool_.GetOrCreate(ListFamily::kObjects, sp_begin->s, sp_begin->p),
          sp_begin, sp_end, [](const IdTriple& t) { return t.o; });
    });
  });

  // (s, o, p) grouping: sop header vectors and the shared p(s,o) lists.
  std::sort(batch.begin(), batch.end(),
            [](const IdTriple& a, const IdTriple& b) {
              return std::tie(a.s, a.o, a.p) < std::tie(b.s, b.o, b.p);
            });
  ForEachRun(batch.begin(), batch.end(), by_s, [&](auto s_begin, auto s_end) {
    MergeAppend(index(Permutation::kSop).GetOrCreate(s_begin->s), s_begin,
                s_end, [](const IdTriple& t) { return t.o; });
    ForEachRun(s_begin, s_end, by_o, [&](auto so_begin, auto so_end) {
      MergeAppend(pool_.GetOrCreate(ListFamily::kPredicates, so_begin->s,
                                    so_begin->o),
                  so_begin, so_end, [](const IdTriple& t) { return t.p; });
    });
  });

  // (p, o, s) grouping: pso + pos header vectors and the s(p,o) lists.
  std::sort(batch.begin(), batch.end(),
            [](const IdTriple& a, const IdTriple& b) {
              return std::tie(a.p, a.o, a.s) < std::tie(b.p, b.o, b.s);
            });
  ForEachRun(batch.begin(), batch.end(), by_p, [&](auto p_begin, auto p_end) {
    MergeAppend(index(Permutation::kPso).GetOrCreate(p_begin->p), p_begin,
                p_end, [](const IdTriple& t) { return t.s; });
    MergeAppend(index(Permutation::kPos).GetOrCreate(p_begin->p), p_begin,
                p_end, [](const IdTriple& t) { return t.o; });
    ForEachRun(p_begin, p_end, by_o, [&](auto po_begin, auto po_end) {
      MergeAppend(
          pool_.GetOrCreate(ListFamily::kSubjects, po_begin->p, po_begin->o),
          po_begin, po_end, [](const IdTriple& t) { return t.s; });
    });
  });

  // (o, s, p) grouping: osp + ops header vectors.
  std::sort(batch.begin(), batch.end(),
            [](const IdTriple& a, const IdTriple& b) {
              return std::tie(a.o, a.s, a.p) < std::tie(b.o, b.s, b.p);
            });
  ForEachRun(batch.begin(), batch.end(), by_o, [&](auto o_begin, auto o_end) {
    MergeAppend(index(Permutation::kOsp).GetOrCreate(o_begin->o), o_begin,
                o_end, [](const IdTriple& t) { return t.s; });
    MergeAppend(index(Permutation::kOps).GetOrCreate(o_begin->o), o_begin,
                o_end, [](const IdTriple& t) { return t.p; });
  });

  // Distinct triple count == total entries in any one terminal family.
  size_ = pool_.EntryCount(ListFamily::kObjects);
}

void Hexastore::Clear() {
  for (auto& idx : indexes_) {
    idx.Clear();
  }
  pool_.Clear();
  size_ = 0;
}

MemoryStats Hexastore::Stats() const {
  MemoryStats stats;
  for (int i = 0; i < 6; ++i) {
    stats.perm_index_bytes[i] = indexes_[i].MemoryBytes();
  }
  for (int f = 0; f < 3; ++f) {
    stats.terminal_bytes[f] =
        pool_.MemoryBytes(static_cast<ListFamily>(f));
  }
  // Key entries: each header counts 1, each vector entry 1, each terminal
  // entry 1. This is the quantity the paper's 5x bound speaks about.
  for (const auto& idx : indexes_) {
    stats.key_entries += idx.HeaderCount() + idx.EntryCount();
  }
  for (int f = 0; f < 3; ++f) {
    stats.key_entries += pool_.EntryCount(static_cast<ListFamily>(f));
  }
  return stats;
}

bool Hexastore::CheckInvariants(std::string* error) const {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) {
      *error = msg;
    }
    return false;
  };

  // 1. Every vector and list is strictly sorted; headers never map to
  //    empty vectors.
  for (Permutation perm : kAllPermutations) {
    bool ok = true;
    std::string msg;
    index(perm).ForEachHeader([&](Id first, const IdVec& vec) {
      if (vec.empty()) {
        ok = false;
        msg = std::string("empty vector in ") + PermutationName(perm) +
              " under header " + std::to_string(first);
      } else if (!IsStrictlySorted(vec)) {
        ok = false;
        msg = std::string("unsorted vector in ") + PermutationName(perm);
      }
    });
    if (!ok) {
      return fail(msg);
    }
  }

  // 2. Each pair of same-first-role indexes has identical header sets.
  auto same_headers = [&](Permutation a, Permutation b) {
    return index(a).SortedHeaders() == index(b).SortedHeaders();
  };
  if (!same_headers(Permutation::kSpo, Permutation::kSop)) {
    return fail("spo and sop disagree on subject headers");
  }
  if (!same_headers(Permutation::kPso, Permutation::kPos)) {
    return fail("pso and pos disagree on predicate headers");
  }
  if (!same_headers(Permutation::kOsp, Permutation::kOps)) {
    return fail("osp and ops disagree on object headers");
  }

  // 3. Second-level pairs exist iff their terminal list exists, and the
  //    transposed index contains the mirrored pair. Checked from spo/sop/
  //    pos which covers all three families.
  std::size_t spo_triples = 0;
  {
    bool ok = true;
    std::string msg;
    index(Permutation::kSpo).ForEachHeader([&](Id s, const IdVec& ps) {
      for (Id p : ps) {
        const IdVec* os = objects(s, p);
        if (os == nullptr || os->empty()) {
          ok = false;
          msg = "spo pair without o(s,p) list";
          return;
        }
        if (!index(Permutation::kPso).Contains(p, s)) {
          ok = false;
          msg = "spo pair missing from pso";
          return;
        }
        spo_triples += os->size();
        for (Id o : *os) {
          if (!pool_.Contains(ListFamily::kPredicates, s, o, p)) {
            ok = false;
            msg = "triple missing from p(s,o)";
            return;
          }
          if (!pool_.Contains(ListFamily::kSubjects, p, o, s)) {
            ok = false;
            msg = "triple missing from s(p,o)";
            return;
          }
          if (!index(Permutation::kSop).Contains(s, o) ||
              !index(Permutation::kOsp).Contains(o, s) ||
              !index(Permutation::kPos).Contains(p, o) ||
              !index(Permutation::kOps).Contains(o, p)) {
            ok = false;
            msg = "second-level pair missing from a sibling index";
            return;
          }
        }
      }
    });
    if (!ok) {
      return fail(msg);
    }
  }

  // 4. All three families carry exactly `size_` entries.
  for (int f = 0; f < 3; ++f) {
    if (pool_.EntryCount(static_cast<ListFamily>(f)) != size_) {
      std::ostringstream os;
      os << "terminal family " << f << " entry count "
         << pool_.EntryCount(static_cast<ListFamily>(f))
         << " != size " << size_;
      return fail(os.str());
    }
  }
  if (spo_triples != size_) {
    return fail("spo triple walk disagrees with size");
  }
  return true;
}

}  // namespace hexastore

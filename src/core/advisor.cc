#include "core/advisor.h"

#include <iomanip>
#include <sstream>

namespace hexastore {

IndexAdvice AdviseIndexes(const Hexastore& store, double drop_threshold) {
  IndexAdvice advice;
  std::uint64_t total = 0;
  for (int i = 0; i < 6; ++i) {
    advice.counts[i] = store.access_count(static_cast<Permutation>(i));
    total += advice.counts[i];
    advice.private_bytes[i] =
        store.index(static_cast<Permutation>(i)).MemoryBytes();
  }
  if (total == 0) {
    return advice;  // no evidence, no recommendation
  }
  for (int i = 0; i < 6; ++i) {
    advice.share[i] =
        static_cast<double>(advice.counts[i]) / static_cast<double>(total);
    if (advice.share[i] < drop_threshold) {
      advice.droppable.push_back(static_cast<Permutation>(i));
      advice.reclaimable_bytes += advice.private_bytes[i];
    }
  }
  return advice;
}

std::string IndexAdvice::ToString() const {
  std::ostringstream os;
  os << "Index usage report:\n";
  for (int i = 0; i < 6; ++i) {
    os << "  " << PermutationName(static_cast<Permutation>(i)) << ": "
       << counts[i] << " accesses (" << std::fixed << std::setprecision(1)
       << share[i] * 100.0 << "%), " << private_bytes[i]
       << " private bytes\n";
  }
  os << "Droppable under current workload:";
  if (droppable.empty()) {
    os << " none";
  } else {
    for (Permutation p : droppable) {
      os << ' ' << PermutationName(p);
    }
    os << " (would reclaim " << reclaimable_bytes << " bytes)";
  }
  os << "\n";
  return os.str();
}

}  // namespace hexastore

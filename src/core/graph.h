// Term-level convenience facade: a Dictionary plus a Hexastore behind one
// API that speaks RDF Terms. This is the type most applications use; the
// id-level Hexastore / TripleStore interfaces below it are for engines
// and benchmarks that manage their own dictionary.
#ifndef HEXASTORE_CORE_GRAPH_H_
#define HEXASTORE_CORE_GRAPH_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/hexastore.h"
#include "dict/dictionary.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "rdf/triple.h"
#include "util/status.h"

namespace hexastore {

/// An RDF graph: dictionary-encoded terms over a Hexastore.
class Graph {
 public:
  Graph();

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  /// Adds a term-level triple (interning unseen terms). Returns false if
  /// the triple was already present.
  bool Insert(const Triple& triple);

  /// Removes a triple. Returns false if absent (also when any term is
  /// unknown).
  bool Erase(const Triple& triple);

  /// Membership test.
  bool Contains(const Triple& triple) const;

  /// Loads an N-Triples document; returns the number of triples added.
  Result<std::size_t> LoadNTriples(std::string_view text);

  /// Bulk-inserts term triples (faster than repeated Insert).
  void BulkLoad(const std::vector<Triple>& triples);

  /// Bulk-inserts already-encoded id triples; every id must be valid in
  /// dict() (used by snapshot loading).
  void BulkLoadEncoded(const IdTripleVec& triples) {
    store_.BulkLoad(triples);
  }

  /// All triples matching a pattern where empty optionals are wildcards,
  /// decoded back to terms and sorted in (s, p, o) id order.
  std::vector<Triple> Match(const std::optional<Term>& s,
                            const std::optional<Term>& p,
                            const std::optional<Term>& o) const;

  /// Number of triples.
  std::size_t size() const { return store_.size(); }

  /// The underlying id-level store.
  const Hexastore& store() const { return store_; }
  /// The dictionary.
  const Dictionary& dict() const { return dict_; }
  /// Mutable dictionary access (for engines layering on top).
  Dictionary& mutable_dict() { return dict_; }

  // -- Observability exports ----------------------------------------------
  // The facade keeps its own registry (hexa_graph_* names) over the
  // term-level API: insert/erase/match counters, a Match latency
  // histogram, and size gauges refreshed at export time.

  obs::MetricsRegistry& metrics_registry() const { return registry_; }
  /// Prometheus text exposition of every registered instrument.
  std::string MetricsText() const;
  /// JSON dump of the same instruments (schema in docs/observability.md).
  std::string MetricsJson() const;
  /// Writes MetricsJson() to `path` (tmp + rename). Async-signal-unsafe
  /// work happens here, not in a handler: call from a SIGUSR1-woken
  /// thread, never from the handler itself.
  bool DumpMetricsJson(const std::string& path) const;

 private:
  void RefreshGauges() const;

  Dictionary dict_;
  Hexastore store_;

  struct Meters {
    obs::Counter inserts;
    obs::Counter erases;
    obs::Counter matches;
    obs::LatencyHistogram match_ns{obs::kHotPathSampleShift};
    obs::Gauge size_triples;
    obs::Gauge dict_terms;
  };
  mutable Meters meters_;
  mutable obs::MetricsRegistry registry_;
};

}  // namespace hexastore

#endif  // HEXASTORE_CORE_GRAPH_H_

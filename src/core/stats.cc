#include "core/stats.h"

#include <sstream>

#include "index/perm_index.h"

namespace hexastore {

std::size_t MemoryStats::Total() const {
  std::size_t total = 0;
  for (std::size_t b : perm_index_bytes) {
    total += b;
  }
  for (std::size_t b : terminal_bytes) {
    total += b;
  }
  return total;
}

std::string MemoryStats::ToString() const {
  std::ostringstream os;
  os << "Hexastore memory breakdown:\n";
  for (int i = 0; i < 6; ++i) {
    os << "  index " << PermutationName(static_cast<Permutation>(i))
       << ": " << perm_index_bytes[i] << " bytes\n";
  }
  static const char* kFamilyNames[3] = {"o(s,p)", "p(s,o)", "s(p,o)"};
  for (int i = 0; i < 3; ++i) {
    os << "  terminal " << kFamilyNames[i] << ": " << terminal_bytes[i]
       << " bytes\n";
  }
  os << "  total: " << Total() << " bytes, key entries: " << key_entries
     << "\n";
  return os.str();
}

double DeltaStats::WriteAmplification() const {
  if (staged_ops_total == 0) {
    return 0.0;
  }
  return static_cast<double>(merge_run_ops + base_rebuild_triples) /
         static_cast<double>(staged_ops_total);
}

std::string DeltaStats::ToString() const {
  std::ostringstream os;
  os << "DeltaHexastore delta layer:\n"
     << "  staged: " << staged_inserts << " inserts, " << staged_tombstones
     << " tombstones, " << pattern_tombstones
     << " pattern tombstones (threshold " << compact_threshold << ")\n"
     << "  compactions: " << compactions << ", epoch: " << epoch << "\n"
     << "  base: " << base_triples << " triples, " << base_bytes
     << " bytes; delta: " << delta_bytes << " bytes\n";
  if (background) {
    os << "  background: " << seals << " seals, " << background_merges
       << " merges (" << merge_discards << " discarded), "
       << seal_overflows << " overflows, " << sealed_ops
       << " ops sealed now\n";
  }
  if (l0_run_limit > 0) {
    os << "  levels: L0 " << l0_runs << " runs / " << l0_ops
       << " ops (fold at " << l0_run_limit << "), L1 " << l1_ops
       << " ops\n"
       << "  merges: " << l0_merges << " L0->L1 folds, " << base_merges
       << " base merges; write amplification "
       << WriteAmplification() << " (" << merge_run_ops << " run ops + "
       << base_rebuild_triples << " rebuilt triples over "
       << staged_ops_total << " staged)\n";
  }
  if (filter_bits_per_key > 0 || filter_probes > 0) {
    os << "  filters: " << filter_bits_per_key << " bits/key; "
       << filter_probes << " probes, " << filter_skips << " skips, "
       << filter_false_positives << " false positives, "
       << filters_dropped << " dropped\n";
  }
  if (memory_budget_bytes > 0) {
    os << "  budget: " << resident_bytes << " / " << memory_budget_bytes
       << " bytes resident; forced " << budget_seals << " seals, "
       << budget_folds << " folds, " << budget_base_merges
       << " base merges\n";
  }
  return os.str();
}

std::string EpochStats::ToString() const {
  std::ostringstream os;
  os << "generation gate:\n"
     << "  epoch: " << global_epoch << ", published: "
     << generations_published << ", retired: " << generations_retired
     << ", reclaimed: " << generations_reclaimed << "\n"
     << "  retire queue: " << retire_queue_depth << ", handles acquired: "
     << handles_acquired << ", readers mid-acquire: "
     << active_reader_sections << "\n";
  return os.str();
}

std::string WalStats::ToString() const {
  std::ostringstream os;
  os << "write-ahead log:\n"
     << "  appended: " << records_appended << " records, " << bytes_appended
     << " bytes\n"
     << "  commits: " << commit_requests << ", fsyncs: " << fsyncs
     << ", rotations: " << rotations << ", checkpoints: " << checkpoints
     << "\n";
  return os.str();
}

std::string StatsSnapshot::ToString() const {
  std::string out = delta.ToString() + epoch.ToString();
  if (has_wal) {
    out += wal.ToString();
  }
  return out;
}

}  // namespace hexastore

// Abstract id-level triple store interface.
//
// The Hexastore and both baselines (triples table, COVP1/COVP2) implement
// this interface, so workload queries, integration tests and benchmarks
// can be written once and cross-checked for identical answers.
//
// Stores operate purely on dictionary-encoded ids; the Dictionary is owned
// by the caller (benchmarks share one dictionary across all stores so ids
// are comparable).
#ifndef HEXASTORE_CORE_STORE_INTERFACE_H_
#define HEXASTORE_CORE_STORE_INTERFACE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "rdf/triple.h"
#include "util/common.h"

namespace hexastore {

/// Callback receiving one matching triple during a scan. Returning is
/// unconditional (no early termination); use CountMatches/Exists for
/// cheaper predicates.
using TripleSink = std::function<void(const IdTriple&)>;

/// Common interface of all triple stores in this library.
class TripleStore {
 public:
  virtual ~TripleStore();

  /// Adds a triple. Returns false if it was already present.
  virtual bool Insert(const IdTriple& t) = 0;

  /// Removes a triple. Returns false if it was absent.
  virtual bool Erase(const IdTriple& t) = 0;

  /// Membership test.
  virtual bool Contains(const IdTriple& t) const = 0;

  /// Number of distinct triples stored.
  virtual std::size_t size() const = 0;

  /// Emits every triple matching `pattern` to `sink`. Triples are emitted
  /// in the natural order of the index the store chooses; callers that
  /// need a specific order must sort.
  virtual void Scan(const IdPattern& pattern, const TripleSink& sink)
      const = 0;

  /// Approximate heap bytes held by the store's index structures
  /// (excludes the shared dictionary).
  virtual std::size_t MemoryBytes() const = 0;

  /// Store name for reports ("Hexastore", "COVP1", ...).
  virtual std::string name() const = 0;

  // -- Convenience helpers built on the virtual core ----------------------

  /// Materializes all matches of `pattern`, sorted in (s, p, o) order.
  IdTripleVec Match(const IdPattern& pattern) const;

  /// Number of matches of `pattern`.
  std::uint64_t CountMatches(const IdPattern& pattern) const;

  /// Estimated number of matches of `pattern`, for the query planner.
  /// The default is the exact CountMatches; layered stores may override
  /// with a cheaper (or staged-edit-aware) estimate — DeltaHexastore
  /// folds its delta's staged-op counts in without paying a full merged
  /// scan.
  virtual std::uint64_t EstimateMatches(const IdPattern& pattern) const;

  /// True iff at least one triple matches.
  bool MatchesAny(const IdPattern& pattern) const;

  /// Bulk-insert; default loops over Insert, stores may override with a
  /// faster path.
  virtual void BulkLoad(const IdTripleVec& triples);
};

}  // namespace hexastore

#endif  // HEXASTORE_CORE_STORE_INTERFACE_H_

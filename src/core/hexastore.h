// The Hexastore: six permutation indexes (spo, sop, pso, pos, osp, ops)
// over one pool of shared terminal lists (paper §4).
//
// Every access pattern an RDF query may need maps onto exactly one index:
//
//   bound (s,p,o) -> membership test in o(s,p)
//   bound (s,p)   -> terminal list o(s,p)
//   bound (s,o)   -> terminal list p(s,o)
//   bound (p,o)   -> terminal list s(p,o)
//   bound (s)     -> spo headers (property vector) / sop (object vector)
//   bound (p)     -> pso (subject vector) / pos (object vector)
//   bound (o)     -> osp (subject vector) / ops (property vector)
//   none          -> full scan over spo
//
// All vectors and lists are sorted, so all first-step pairwise joins are
// linear merge joins.
#ifndef HEXASTORE_CORE_HEXASTORE_H_
#define HEXASTORE_CORE_HEXASTORE_H_

#include <atomic>
#include <cstddef>
#include <string>

#include "core/stats.h"
#include "core/store_interface.h"
#include "index/perm_index.h"
#include "index/terminal_pool.h"
#include "rdf/triple.h"
#include "util/common.h"

namespace hexastore {

/// In-memory sextuple-indexed RDF store.
class Hexastore : public TripleStore {
 public:
  Hexastore() = default;

  Hexastore(const Hexastore&) = delete;
  Hexastore& operator=(const Hexastore&) = delete;

  // -- TripleStore interface ----------------------------------------------

  /// Inserts into all six views; O(log + shift) per view.
  bool Insert(const IdTriple& t) override;
  /// Erases from all six views; drops emptied vectors and headers.
  bool Erase(const IdTriple& t) override;
  /// Membership test via the shared o(s,p) list.
  bool Contains(const IdTriple& t) const override;
  std::size_t size() const override { return size_; }
  void Scan(const IdPattern& pattern, const TripleSink& sink) const override;
  std::size_t MemoryBytes() const override;
  std::string name() const override { return "Hexastore"; }

  /// Appends unsorted then merges each touched vector/list once; much
  /// faster than repeated Insert for large batches. On a non-empty store
  /// the batch is merged with — and deduplicated against — the existing
  /// contents, touching only the lists the batch lands in (the delta
  /// compaction drain path).
  void BulkLoad(const IdTripleVec& triples) override;

  /// Removes all triples.
  void Clear();

  // -- Sorted-vector accessors (the paper's vectors and lists) ------------
  // All return nullptr when the header/list does not exist. Returned
  // vectors are valid until the next mutation.

  /// Object list o(s,p) — terminal list shared by spo and pso.
  const IdVec* objects(Id s, Id p) const {
    Touch(Permutation::kSpo);
    return pool_.Find(ListFamily::kObjects, s, p);
  }
  /// Predicate list p(s,o) — terminal list shared by sop and osp.
  const IdVec* predicates(Id s, Id o) const {
    Touch(Permutation::kSop);
    return pool_.Find(ListFamily::kPredicates, s, o);
  }
  /// Subject list s(p,o) — terminal list shared by pos and ops.
  const IdVec* subjects(Id p, Id o) const {
    Touch(Permutation::kPos);
    return pool_.Find(ListFamily::kSubjects, p, o);
  }

  /// Property vector p(s) of the spo index.
  const IdVec* predicates_of_subject(Id s) const {
    Touch(Permutation::kSpo);
    return index(Permutation::kSpo).Find(s);
  }
  /// Object vector o(s) of the sop index.
  const IdVec* objects_of_subject(Id s) const {
    Touch(Permutation::kSop);
    return index(Permutation::kSop).Find(s);
  }
  /// Subject vector s(p) of the pso index.
  const IdVec* subjects_of_predicate(Id p) const {
    Touch(Permutation::kPso);
    return index(Permutation::kPso).Find(p);
  }
  /// Object vector o(p) of the pos index.
  const IdVec* objects_of_predicate(Id p) const {
    Touch(Permutation::kPos);
    return index(Permutation::kPos).Find(p);
  }
  /// Subject vector s(o) of the osp index.
  const IdVec* subjects_of_object(Id o) const {
    Touch(Permutation::kOsp);
    return index(Permutation::kOsp).Find(o);
  }
  /// Property vector p(o) of the ops index.
  const IdVec* predicates_of_object(Id o) const {
    Touch(Permutation::kOps);
    return index(Permutation::kOps).Find(o);
  }

  // -- Workload introspection (paper §6 future work) -----------------------

  /// Number of header-vector lookups served by a permutation index since
  /// construction or the last ResetAccessCounts(). Terminal-list lookups
  /// for bound pairs are attributed to the index that owns the pair's
  /// natural order ((s,p)->spo, (s,o)->sop, (p,o)->pos). Feeds the index
  /// advisor (paper §6: some indexes may not contribute to query
  /// efficiency under a given workload — e.g. ops was seldom used in the
  /// paper's experiments).
  std::uint64_t access_count(Permutation perm) const {
    return access_counts_[static_cast<int>(perm)].load(
        std::memory_order_relaxed);
  }

  /// Resets all access counters to zero.
  void ResetAccessCounts() {
    for (auto& c : access_counts_) {
      c.store(0, std::memory_order_relaxed);
    }
  }

  /// Number of distinct subjects (spo header count).
  std::size_t DistinctSubjects() const {
    return index(Permutation::kSpo).HeaderCount();
  }
  /// Number of distinct predicates (pso header count).
  std::size_t DistinctPredicates() const {
    return index(Permutation::kPso).HeaderCount();
  }
  /// Number of distinct objects (osp header count).
  std::size_t DistinctObjects() const {
    return index(Permutation::kOsp).HeaderCount();
  }

  /// Direct read access to one permutation index.
  const PermIndex& index(Permutation perm) const {
    return indexes_[static_cast<int>(perm)];
  }

  /// Direct read access to the terminal-list pool.
  const TerminalListPool& pool() const { return pool_; }

  /// Per-structure memory breakdown (Figure 15 / space-bound ablation).
  MemoryStats Stats() const;

  /// Verifies the cross-index invariants (all six views agree, everything
  /// sorted, sharing consistent). O(size); intended for tests.
  bool CheckInvariants(std::string* error = nullptr) const;

 private:
  PermIndex& index(Permutation perm) {
    return indexes_[static_cast<int>(perm)];
  }

  // Bumps the access counter of `perm`; const because reads are logically
  // const and the counters are observational metadata. Relaxed atomics so
  // concurrent readers of an immutable store stay race-free.
  void Touch(Permutation perm) const {
    access_counts_[static_cast<int>(perm)].fetch_add(
        1, std::memory_order_relaxed);
  }

  PermIndex indexes_[6];
  TerminalListPool pool_;
  std::size_t size_ = 0;
  mutable std::atomic<std::uint64_t> access_counts_[6] = {};
};

}  // namespace hexastore

#endif  // HEXASTORE_CORE_HEXASTORE_H_

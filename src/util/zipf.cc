#include "util/zipf.h"

#include <algorithm>
#include <cmath>

namespace hexastore {

ZipfDistribution::ZipfDistribution(std::size_t n, double s)
    : exponent_(s) {
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  norm_ = acc;
  for (auto& v : cdf_) {
    v /= norm_;
  }
}

std::size_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(std::size_t rank) const {
  return 1.0 / std::pow(static_cast<double>(rank + 1), exponent_) / norm_;
}

}  // namespace hexastore

// Lightweight Status / Result error propagation, in the spirit of
// arrow::Status: library code never throws across the public API; fallible
// operations return Status or Result<T>.
#ifndef HEXASTORE_UTIL_STATUS_H_
#define HEXASTORE_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace hexastore {

/// Machine-readable error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kOutOfRange,
  kInternal,
  kDeadlineExceeded,
};

/// Outcome of an operation that can fail without producing a value.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument error.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// Returns a NotFound error.
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  /// Returns an AlreadyExists error.
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  /// Returns a ParseError error.
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  /// Returns an OutOfRange error.
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  /// Returns an Internal error.
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Returns a DeadlineExceeded error (a per-query time budget ran out;
  /// see query::Session and docs/server.md for the check granularity).
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message (empty for OK).
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Outcome of an operation that produces a T on success.
///
/// Holds either a value or an error Status. Accessing the value of an
/// errored Result aborts (programming error), mirroring arrow::Result.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  /// Constructs a failed result from a non-OK status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }
  /// The error status (OK if a value is present).
  const Status& status() const { return status_; }

  /// The contained value; requires ok().
  const T& value() const& { return *value_; }
  /// Moves the contained value out; requires ok().
  T&& value() && { return std::move(*value_); }
  /// Mutable access to the contained value; requires ok().
  T& value() & { return *value_; }

  /// Value or a fallback when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace hexastore

#endif  // HEXASTORE_UTIL_STATUS_H_

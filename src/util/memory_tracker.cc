#include "util/memory_tracker.h"

namespace hexastore {

std::size_t StringHeapBytes(const std::string& s) {
  // libstdc++ SSO buffer is 15 chars; anything longer allocates
  // capacity()+1 bytes.
  if (s.capacity() <= 15) {
    return 0;
  }
  return s.capacity() + 1;
}

}  // namespace hexastore

// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum
// guarding every write-ahead-log record against torn writes and media
// corruption.
#ifndef HEXASTORE_UTIL_CRC32_H_
#define HEXASTORE_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace hexastore {

/// CRC-32 of `len` bytes at `data`. Pass a previous return value as
/// `seed` to checksum data arriving in chunks.
std::uint32_t Crc32(const void* data, std::size_t len,
                    std::uint32_t seed = 0);

}  // namespace hexastore

#endif  // HEXASTORE_UTIL_CRC32_H_

// Deterministic pseudo-random number generation for workload generators.
//
// We intentionally do not use std::mt19937 + std::*_distribution because
// their outputs are not guaranteed identical across standard library
// implementations; dataset generation must be bit-reproducible everywhere.
#ifndef HEXASTORE_UTIL_RNG_H_
#define HEXASTORE_UTIL_RNG_H_

#include <cstdint>

namespace hexastore {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
///
/// The same seed yields the same stream on every platform, which makes the
/// synthetic Barton/LUBM datasets reproducible byte-for-byte.
class Rng {
 public:
  /// Creates a generator; all state is derived from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit output.
  std::uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling, so the result is exactly uniform.
  std::uint64_t Uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t UniformRange(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability `p` of returning true.
  bool Bernoulli(double p);

 private:
  std::uint64_t state_[4];
};

}  // namespace hexastore

#endif  // HEXASTORE_UTIL_RNG_H_

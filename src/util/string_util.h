// Small string helpers used by parsers and generators.
#ifndef HEXASTORE_UTIL_STRING_UTIL_H_
#define HEXASTORE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace hexastore {

/// Returns `s` with leading and trailing ASCII whitespace removed.
std::string_view TrimWhitespace(std::string_view s);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string_view> SplitString(std::string_view s, char sep);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True iff `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Escapes a literal per N-Triples rules (backslash, quote, \n, \r, \t).
std::string EscapeNTriplesLiteral(std::string_view raw);

/// Reverses EscapeNTriplesLiteral. Unrecognized escapes are kept verbatim.
std::string UnescapeNTriplesLiteral(std::string_view escaped);

}  // namespace hexastore

#endif  // HEXASTORE_UTIL_STRING_UTIL_H_

// Core type aliases and constants shared across the hexastore library.
#ifndef HEXASTORE_UTIL_COMMON_H_
#define HEXASTORE_UTIL_COMMON_H_

#include <cstddef>
#include <cstdint>

namespace hexastore {

/// Dense integer identifier assigned by the dictionary to every distinct
/// RDF term. Ids start at 1; `kInvalidId` (0) is reserved and never maps
/// to a term.
using Id = std::uint64_t;

/// Reserved id that never denotes a term. Pattern lookups use it (via
/// TriplePattern) to mark unbound positions.
inline constexpr Id kInvalidId = 0;

/// The three roles a term can play in a triple.
enum class Role : std::uint8_t {
  kSubject = 0,
  kPredicate = 1,
  kObject = 2,
};

/// Human-readable name for a role ("subject", "predicate", "object").
inline const char* RoleName(Role role) {
  switch (role) {
    case Role::kSubject:
      return "subject";
    case Role::kPredicate:
      return "predicate";
    case Role::kObject:
      return "object";
  }
  return "unknown";
}

}  // namespace hexastore

#endif  // HEXASTORE_UTIL_COMMON_H_

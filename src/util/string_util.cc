#include "util/string_util.h"

#include <cctype>

namespace hexastore {

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> SplitString(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string EscapeNTriplesLiteral(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string UnescapeNTriplesLiteral(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    char c = escaped[i];
    if (c != '\\' || i + 1 >= escaped.size()) {
      out += c;
      continue;
    }
    char next = escaped[++i];
    switch (next) {
      case '\\':
        out += '\\';
        break;
      case '"':
        out += '"';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 't':
        out += '\t';
        break;
      default:
        // Unknown escape: keep both characters verbatim.
        out += '\\';
        out += next;
    }
  }
  return out;
}

}  // namespace hexastore

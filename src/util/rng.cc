#include "util/rng.h"

namespace hexastore {

namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(&sm);
  }
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::Uniform(std::uint64_t bound) {
  // Lemire-style rejection-free-in-expectation bounded sampling would need
  // 128-bit multiply; plain rejection sampling keeps exact uniformity and
  // is fast enough for data generation.
  const std::uint64_t threshold = -bound % bound;
  while (true) {
    std::uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::uint64_t Rng::UniformRange(std::uint64_t lo, std::uint64_t hi) {
  return lo + Uniform(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

}  // namespace hexastore

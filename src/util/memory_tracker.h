// Helpers for estimating the heap footprint of the store data structures.
//
// The paper's Figure 15 compares memory consumption of Hexastore vs COVP1
// vs COVP2. We account memory analytically (capacity * element size plus
// node overheads) rather than via the allocator, so the numbers are
// deterministic and attributable per structure.
#ifndef HEXASTORE_UTIL_MEMORY_TRACKER_H_
#define HEXASTORE_UTIL_MEMORY_TRACKER_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace hexastore {

/// Approximate per-node bookkeeping overhead of libstdc++'s
/// unordered_map (hash node: next pointer + cached hash) plus bucket
/// array amortization.
inline constexpr std::size_t kHashNodeOverhead = 2 * sizeof(void*) + 16;

/// Bytes held by a vector's heap buffer (capacity, not size).
template <typename T>
std::size_t VectorHeapBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

/// Bytes held by a string, counting SSO as zero heap.
std::size_t StringHeapBytes(const std::string& s);

/// Bytes held by an unordered_map's table + nodes (values accounted by
/// the caller if they own heap memory themselves).
template <typename K, typename V, typename H, typename E, typename A>
std::size_t HashMapHeapBytes(const std::unordered_map<K, V, H, E, A>& m) {
  return m.bucket_count() * sizeof(void*) +
         m.size() * (sizeof(std::pair<const K, V>) + kHashNodeOverhead);
}

}  // namespace hexastore

#endif  // HEXASTORE_UTIL_MEMORY_TRACKER_H_

// Helpers for estimating the heap footprint of the store data structures.
//
// The paper's Figure 15 compares memory consumption of Hexastore vs COVP1
// vs COVP2. We account memory analytically (capacity * element size plus
// node overheads) rather than via the allocator, so the numbers are
// deterministic and attributable per structure.
#ifndef HEXASTORE_UTIL_MEMORY_TRACKER_H_
#define HEXASTORE_UTIL_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace hexastore {

/// Tracks resident bytes across a set of structures that register their
/// analytic footprint as it changes. Every Add must eventually be matched
/// by a Sub (typically from the owning structure's destructor), including
/// on deferred-reclaim paths where destruction happens off the writer
/// mutex on another thread — hence the atomics. `balanced()` lets tests
/// assert that teardown returned every tracked byte.
class MemoryTracker {
 public:
  void Add(std::size_t bytes) {
    const std::int64_t now =
        resident_.fetch_add(static_cast<std::int64_t>(bytes),
                            std::memory_order_relaxed) +
        static_cast<std::int64_t>(bytes);
    std::int64_t peak = high_water_.load(std::memory_order_relaxed);
    while (now > peak && !high_water_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }

  void Sub(std::size_t bytes) {
    resident_.fetch_sub(static_cast<std::int64_t>(bytes),
                        std::memory_order_relaxed);
  }

  /// Currently tracked bytes, clamped at zero for reporting (a transient
  /// negative can be observed between a Sub on one thread and the
  /// matching structure's replacement registering on another).
  std::size_t resident() const {
    const std::int64_t v = resident_.load(std::memory_order_relaxed);
    return v > 0 ? static_cast<std::size_t>(v) : 0;
  }

  std::size_t high_water() const {
    const std::int64_t v = high_water_.load(std::memory_order_relaxed);
    return v > 0 ? static_cast<std::size_t>(v) : 0;
  }

  /// True when every Add has been matched by a Sub.
  bool balanced() const {
    return resident_.load(std::memory_order_relaxed) == 0;
  }

 private:
  std::atomic<std::int64_t> resident_{0};
  std::atomic<std::int64_t> high_water_{0};
};

/// Approximate per-node bookkeeping overhead of libstdc++'s
/// unordered_map (hash node: next pointer + cached hash) plus bucket
/// array amortization.
inline constexpr std::size_t kHashNodeOverhead = 2 * sizeof(void*) + 16;

/// Bytes held by a vector's heap buffer (capacity, not size).
template <typename T>
std::size_t VectorHeapBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

/// Bytes held by a string, counting SSO as zero heap.
std::size_t StringHeapBytes(const std::string& s);

/// Bytes held by an unordered_map's table + nodes (values accounted by
/// the caller if they own heap memory themselves).
template <typename K, typename V, typename H, typename E, typename A>
std::size_t HashMapHeapBytes(const std::unordered_map<K, V, H, E, A>& m) {
  return m.bucket_count() * sizeof(void*) +
         m.size() * (sizeof(std::pair<const K, V>) + kHashNodeOverhead);
}

}  // namespace hexastore

#endif  // HEXASTORE_UTIL_MEMORY_TRACKER_H_

// Zipfian sampling used to reproduce the skewed property-frequency
// distribution of the Barton library catalog ("the vast majority of
// properties appear infrequently", paper §5.1.1).
#ifndef HEXASTORE_UTIL_ZIPF_H_
#define HEXASTORE_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace hexastore {

/// Samples ranks in [0, n) following a Zipf(s) law: P(rank k) ∝ 1/(k+1)^s.
///
/// Uses a precomputed CDF and binary search, so sampling is O(log n) and
/// deterministic given the Rng stream.
class ZipfDistribution {
 public:
  /// Creates a distribution over `n` ranks with exponent `s` (> 0).
  ZipfDistribution(std::size_t n, double s);

  /// Draws one rank using `rng`.
  std::size_t Sample(Rng* rng) const;

  /// Probability mass of a given rank.
  double Pmf(std::size_t rank) const;

  /// Number of ranks.
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
  double norm_;
  double exponent_;
};

}  // namespace hexastore

#endif  // HEXASTORE_UTIL_ZIPF_H_

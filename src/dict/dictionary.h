// Dictionary encoding of RDF terms (paper §4.1): URIs/literals are mapped
// to dense integer keys; the six indexes store only keys, and a mapping
// table translates keys back to terms.
#ifndef HEXASTORE_DICT_DICTIONARY_H_
#define HEXASTORE_DICT_DICTIONARY_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"
#include "rdf/triple.h"
#include "util/common.h"

namespace hexastore {

/// Bidirectional term ↔ id mapping.
///
/// Ids are dense and assigned in first-insertion order starting at 1; id 0
/// is reserved (kInvalidId). Lookup keys are the canonical N-Triples
/// spellings of terms, so `<a>` (IRI) and `"a"` (literal) get distinct ids.
class Dictionary {
 public:
  Dictionary() = default;

  // The reverse map stores stable indices into terms_; copying is fine but
  // would be an accident at this size, so force explicit Clone-like usage.
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Returns the id for `term`, inserting it if not present.
  Id Intern(const Term& term);

  /// Returns the id for `term`, or kInvalidId if absent. Never inserts.
  Id Lookup(const Term& term) const;

  /// Returns the term for `id`; requires 1 <= id <= size().
  const Term& term(Id id) const { return terms_[id - 1]; }

  /// Returns the term for `id` or nullopt if out of range.
  std::optional<Term> TryTerm(Id id) const;

  /// Encodes a term triple; interns unseen terms.
  IdTriple Encode(const Triple& triple);

  /// Encodes without interning; any unseen term yields nullopt.
  std::optional<IdTriple> TryEncode(const Triple& triple) const;

  /// Decodes an id triple; requires all ids valid.
  Triple Decode(const IdTriple& t) const;

  /// Number of distinct terms.
  std::size_t size() const { return terms_.size(); }

  /// Approximate heap bytes used by the dictionary (both directions).
  std::size_t MemoryBytes() const;

 private:
  std::unordered_map<std::string, Id> ids_;  // N-Triples spelling -> id
  std::vector<Term> terms_;                  // id - 1 -> term
};

}  // namespace hexastore

#endif  // HEXASTORE_DICT_DICTIONARY_H_

#include "dict/dictionary.h"

#include "util/memory_tracker.h"

namespace hexastore {

Id Dictionary::Intern(const Term& term) {
  std::string key = term.ToNTriples();
  auto it = ids_.find(key);
  if (it != ids_.end()) {
    return it->second;
  }
  terms_.push_back(term);
  Id id = static_cast<Id>(terms_.size());
  ids_.emplace(std::move(key), id);
  return id;
}

Id Dictionary::Lookup(const Term& term) const {
  auto it = ids_.find(term.ToNTriples());
  return it == ids_.end() ? kInvalidId : it->second;
}

std::optional<Term> Dictionary::TryTerm(Id id) const {
  if (id == kInvalidId || id > terms_.size()) {
    return std::nullopt;
  }
  return terms_[id - 1];
}

IdTriple Dictionary::Encode(const Triple& triple) {
  return IdTriple{Intern(triple.subject), Intern(triple.predicate),
                  Intern(triple.object)};
}

std::optional<IdTriple> Dictionary::TryEncode(const Triple& triple) const {
  Id s = Lookup(triple.subject);
  Id p = Lookup(triple.predicate);
  Id o = Lookup(triple.object);
  if (s == kInvalidId || p == kInvalidId || o == kInvalidId) {
    return std::nullopt;
  }
  return IdTriple{s, p, o};
}

Triple Dictionary::Decode(const IdTriple& t) const {
  return Triple{term(t.s), term(t.p), term(t.o)};
}

std::size_t Dictionary::MemoryBytes() const {
  std::size_t bytes = HashMapHeapBytes(ids_) + VectorHeapBytes(terms_);
  for (const auto& [key, id] : ids_) {
    (void)id;
    bytes += StringHeapBytes(key);
  }
  for (const auto& t : terms_) {
    bytes += StringHeapBytes(t.value()) + StringHeapBytes(t.language()) +
             StringHeapBytes(t.datatype());
  }
  return bytes;
}

}  // namespace hexastore

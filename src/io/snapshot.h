// Binary snapshot persistence for Graph (paper §7 future work: "a fully
// operational disk-based Hexastore").
//
// A snapshot stores the dictionary (terms in id order) followed by all
// triples, delta/varint-encoded in (s, p, o) order, so the on-disk size
// is close to a compressed triples table; the six indexes are rebuilt on
// load via BulkLoad. Format:
//
//   magic "HXS1"
//   varint term_count
//     per term: kind byte (0 iri, 1 literal, 2 lang literal,
//               3 typed literal, 4 blank), value string,
//               [qualifier string for kinds 2 and 3]
//   varint triple_count
//     per triple (sorted (s,p,o)): varint delta_s, then
//       if delta_s > 0: varint p, varint o   (new subject group)
//       else: varint delta_p, then
//         if delta_p > 0: varint o           (new predicate group)
//         else: varint delta_o
#ifndef HEXASTORE_IO_SNAPSHOT_H_
#define HEXASTORE_IO_SNAPSHOT_H_

#include <iosfwd>
#include <string>

#include "core/graph.h"
#include "util/status.h"

namespace hexastore {

class DeltaHexastore;  // delta/delta_hexastore.h (included by snapshot.cc)

/// Writes a snapshot of `graph` to `out`.
Status SaveSnapshot(const Graph& graph, std::ostream& out);

/// Reads a snapshot into `graph` (which must be empty) and rebuilds all
/// six indexes.
Status LoadSnapshot(std::istream& in, Graph* graph);

/// File convenience wrappers.
Status SaveSnapshotFile(const Graph& graph, const std::string& path);
Status LoadSnapshotFile(const std::string& path, Graph* graph);

// -- Delta-store snapshots ------------------------------------------------
// Same HXS1 byte format as the Graph snapshot. Saving compacts the
// staged delta into the base first (rather than serializing delta ops as
// a side section), so on-disk snapshots of a DeltaHexastore and of an
// equivalent Graph are byte-identical and old readers stay compatible.

/// Compacts `store`'s staged delta, then writes `dict` and the store's
/// triples to `out`.
Status SaveSnapshot(const Dictionary& dict, DeltaHexastore* store,
                    std::ostream& out);

/// Reads a snapshot into an empty `dict` + `store`; triples are
/// bulk-loaded straight into the compacted base.
Status LoadSnapshot(std::istream& in, Dictionary* dict,
                    DeltaHexastore* store);

/// File convenience wrappers for the delta-store snapshot.
Status SaveSnapshotFile(const Dictionary& dict, DeltaHexastore* store,
                        const std::string& path);
Status LoadSnapshotFile(const std::string& path, Dictionary* dict,
                        DeltaHexastore* store);

// -- Id-level triple snapshots --------------------------------------------
// Magic "HXT1" followed by the same delta/varint-coded triple section as
// HXS1, with no dictionary. The durability subsystem's checkpoint files
// use this format: the WAL operates purely on dictionary-encoded ids.

/// Writes `triples` (must be sorted in (s, p, o) order) to `out`.
Status SaveTripleSnapshot(const IdTripleVec& triples, std::ostream& out);

/// Reads an id-level snapshot into `triples` (cleared first).
Status LoadTripleSnapshot(std::istream& in, IdTripleVec* triples);

/// File convenience wrappers for the id-level snapshot.
Status SaveTripleSnapshotFile(const IdTripleVec& triples,
                              const std::string& path);
Status LoadTripleSnapshotFile(const std::string& path,
                              IdTripleVec* triples);

}  // namespace hexastore

#endif  // HEXASTORE_IO_SNAPSHOT_H_

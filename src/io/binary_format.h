// Low-level binary encoding primitives for the snapshot format:
// LEB128-style varints and length-prefixed strings over iostreams.
#ifndef HEXASTORE_IO_BINARY_FORMAT_H_
#define HEXASTORE_IO_BINARY_FORMAT_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "util/status.h"

namespace hexastore {

/// Appends a varint-encoded u64 to `out`.
void PutVarint(std::ostream& out, std::uint64_t value);

/// Reads a varint-encoded u64; fails on EOF or >10-byte encodings.
Result<std::uint64_t> GetVarint(std::istream& in);

/// Appends a length-prefixed string.
void PutString(std::ostream& out, const std::string& value);

/// Reads a length-prefixed string; `max_len` guards against corrupted
/// lengths allocating unbounded memory.
Result<std::string> GetString(std::istream& in,
                              std::uint64_t max_len = 1ull << 30);

/// Varint-encodes into an in-memory byte buffer (used by CompressedIdVec).
void AppendVarint(std::string* buf, std::uint64_t value);

/// Decodes a varint from `buf` starting at `*pos`, advancing `*pos`.
/// Returns false on truncation.
bool ReadVarint(const std::string& buf, std::size_t* pos,
                std::uint64_t* value);

}  // namespace hexastore

#endif  // HEXASTORE_IO_BINARY_FORMAT_H_

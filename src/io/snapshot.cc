#include "io/snapshot.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "delta/delta_hexastore.h"
#include "io/binary_format.h"

namespace hexastore {

namespace {

constexpr char kMagic[4] = {'H', 'X', 'S', '1'};
constexpr char kTripleMagic[4] = {'H', 'X', 'T', '1'};

enum class TermTag : std::uint8_t {
  kIri = 0,
  kLiteral = 1,
  kLangLiteral = 2,
  kTypedLiteral = 3,
  kBlank = 4,
};

TermTag TagOf(const Term& term) {
  switch (term.kind()) {
    case TermKind::kIri:
      return TermTag::kIri;
    case TermKind::kBlank:
      return TermTag::kBlank;
    case TermKind::kLiteral:
      if (!term.language().empty()) {
        return TermTag::kLangLiteral;
      }
      if (!term.datatype().empty()) {
        return TermTag::kTypedLiteral;
      }
      return TermTag::kLiteral;
  }
  return TermTag::kIri;
}

// Shared codec halves: the Graph and DeltaHexastore snapshots write the
// identical byte stream — magic, dictionary, then delta/varint-coded
// triples in (s, p, o) order.

void WriteDictionary(const Dictionary& dict, std::ostream& out) {
  PutVarint(out, dict.size());
  for (Id id = 1; id <= dict.size(); ++id) {
    const Term& term = dict.term(id);
    const TermTag tag = TagOf(term);
    out.put(static_cast<char>(tag));
    PutString(out, term.value());
    if (tag == TermTag::kLangLiteral) {
      PutString(out, term.language());
    } else if (tag == TermTag::kTypedLiteral) {
      PutString(out, term.datatype());
    }
  }
}

// `triples` must be sorted in (s, p, o) order.
void WriteTriples(const IdTripleVec& triples, std::ostream& out) {
  PutVarint(out, triples.size());
  Id prev_s = 0;
  Id prev_p = 0;
  Id prev_o = 0;
  for (const IdTriple& t : triples) {
    const Id delta_s = t.s - prev_s;
    PutVarint(out, delta_s);
    if (delta_s > 0) {
      PutVarint(out, t.p);
      PutVarint(out, t.o);
    } else {
      const Id delta_p = t.p - prev_p;
      PutVarint(out, delta_p);
      if (delta_p > 0) {
        PutVarint(out, t.o);
      } else {
        PutVarint(out, t.o - prev_o);
      }
    }
    prev_s = t.s;
    prev_p = t.p;
    prev_o = t.o;
  }
}

Status ReadMagic(std::istream& in, const char (&expected)[4]) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      !std::equal(magic, magic + 4, expected)) {
    return Status::ParseError("bad snapshot magic");
  }
  return Status::OK();
}

Status ReadDictionary(std::istream& in, Dictionary* dict) {
  auto term_count = GetVarint(in);
  if (!term_count.ok()) {
    return term_count.status();
  }
  for (std::uint64_t i = 0; i < term_count.value(); ++i) {
    const int tag_byte = in.get();
    if (tag_byte == std::char_traits<char>::eof() || tag_byte > 4) {
      return Status::ParseError("bad term tag");
    }
    auto value = GetString(in);
    if (!value.ok()) {
      return value.status();
    }
    Term term;
    switch (static_cast<TermTag>(tag_byte)) {
      case TermTag::kIri:
        term = Term::Iri(std::move(value).value());
        break;
      case TermTag::kLiteral:
        term = Term::Literal(std::move(value).value());
        break;
      case TermTag::kLangLiteral: {
        auto lang = GetString(in);
        if (!lang.ok()) {
          return lang.status();
        }
        term = Term::LangLiteral(std::move(value).value(),
                                 std::move(lang).value());
        break;
      }
      case TermTag::kTypedLiteral: {
        auto dt = GetString(in);
        if (!dt.ok()) {
          return dt.status();
        }
        term = Term::TypedLiteral(std::move(value).value(),
                                  std::move(dt).value());
        break;
      }
      case TermTag::kBlank:
        term = Term::Blank(std::move(value).value());
        break;
    }
    const Id assigned = dict->Intern(term);
    if (assigned != i + 1) {
      return Status::ParseError("duplicate term in snapshot dictionary");
    }
  }
  return Status::OK();
}

Status ReadTriples(std::istream& in, std::uint64_t max_id,
                   IdTripleVec* triples) {
  auto triple_count = GetVarint(in);
  if (!triple_count.ok()) {
    return triple_count.status();
  }
  triples->reserve(static_cast<std::size_t>(triple_count.value()));
  Id prev_s = 0;
  Id prev_p = 0;
  Id prev_o = 0;
  for (std::uint64_t i = 0; i < triple_count.value(); ++i) {
    auto delta_s = GetVarint(in);
    if (!delta_s.ok()) {
      return delta_s.status();
    }
    Id s = prev_s + delta_s.value();
    Id p = 0;
    Id o = 0;
    if (delta_s.value() > 0) {
      auto pv = GetVarint(in);
      auto ov = pv.ok() ? GetVarint(in) : pv;
      if (!pv.ok() || !ov.ok()) {
        return Status::ParseError("triple section truncated");
      }
      p = pv.value();
      o = ov.value();
    } else {
      auto delta_p = GetVarint(in);
      if (!delta_p.ok()) {
        return delta_p.status();
      }
      p = prev_p + delta_p.value();
      auto ov = GetVarint(in);
      if (!ov.ok()) {
        return ov.status();
      }
      o = (delta_p.value() > 0) ? ov.value() : prev_o + ov.value();
    }
    if (s == 0 || p == 0 || o == 0 || s > max_id || p > max_id ||
        o > max_id) {
      return Status::ParseError("triple id out of dictionary range");
    }
    triples->push_back(IdTriple{s, p, o});
    prev_s = s;
    prev_p = p;
    prev_o = o;
  }
  return Status::OK();
}

}  // namespace

Status SaveSnapshot(const Graph& graph, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  WriteDictionary(graph.dict(), out);
  WriteTriples(graph.store().Match(IdPattern{}), out);  // (s,p,o) order
  if (!out.good()) {
    return Status::Internal("write failure while saving snapshot");
  }
  return Status::OK();
}

Status LoadSnapshot(std::istream& in, Graph* graph) {
  if (graph->size() != 0) {
    return Status::InvalidArgument("target graph must be empty");
  }
  if (Status s = ReadMagic(in, kMagic); !s.ok()) {
    return s;
  }
  Dictionary& dict = graph->mutable_dict();
  if (Status s = ReadDictionary(in, &dict); !s.ok()) {
    return s;
  }
  IdTripleVec triples;
  if (Status s = ReadTriples(in, dict.size(), &triples); !s.ok()) {
    return s;
  }
  graph->BulkLoadEncoded(triples);
  return Status::OK();
}

Status SaveSnapshot(const Dictionary& dict, DeltaHexastore* store,
                    std::ostream& out) {
  // Draining first keeps the on-disk format identical to the Graph
  // snapshot (no delta side section) and pays the merge once instead of
  // on every future read.
  store->Compact();
  out.write(kMagic, sizeof(kMagic));
  WriteDictionary(dict, out);
  WriteTriples(store->Match(IdPattern{}), out);
  if (!out.good()) {
    return Status::Internal("write failure while saving snapshot");
  }
  return Status::OK();
}

Status LoadSnapshot(std::istream& in, Dictionary* dict,
                    DeltaHexastore* store) {
  if (dict->size() != 0 || store->size() != 0) {
    return Status::InvalidArgument(
        "target dictionary and store must be empty");
  }
  if (Status s = ReadMagic(in, kMagic); !s.ok()) {
    return s;
  }
  if (Status s = ReadDictionary(in, dict); !s.ok()) {
    return s;
  }
  IdTripleVec triples;
  if (Status s = ReadTriples(in, dict->size(), &triples); !s.ok()) {
    return s;
  }
  store->BulkLoad(triples);
  return Status::OK();
}

Status SaveSnapshotFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  return SaveSnapshot(graph, out);
}

Status LoadSnapshotFile(const std::string& path, Graph* graph) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::InvalidArgument("cannot open for reading: " + path);
  }
  return LoadSnapshot(in, graph);
}

Status SaveSnapshotFile(const Dictionary& dict, DeltaHexastore* store,
                        const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  return SaveSnapshot(dict, store, out);
}

Status LoadSnapshotFile(const std::string& path, Dictionary* dict,
                        DeltaHexastore* store) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::InvalidArgument("cannot open for reading: " + path);
  }
  return LoadSnapshot(in, dict, store);
}

Status SaveTripleSnapshot(const IdTripleVec& triples, std::ostream& out) {
  out.write(kTripleMagic, sizeof(kTripleMagic));
  WriteTriples(triples, out);
  if (!out.good()) {
    return Status::Internal("write failure while saving triple snapshot");
  }
  return Status::OK();
}

Status LoadTripleSnapshot(std::istream& in, IdTripleVec* triples) {
  triples->clear();
  if (Status s = ReadMagic(in, kTripleMagic); !s.ok()) {
    return s;
  }
  // No dictionary bounds the ids here; only the zero reserve applies.
  return ReadTriples(in, ~std::uint64_t{0}, triples);
}

Status SaveTripleSnapshotFile(const IdTripleVec& triples,
                              const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  return SaveTripleSnapshot(triples, out);
}

Status LoadTripleSnapshotFile(const std::string& path,
                              IdTripleVec* triples) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::InvalidArgument("cannot open for reading: " + path);
  }
  return LoadTripleSnapshot(in, triples);
}

}  // namespace hexastore

#include "io/snapshot.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "io/binary_format.h"

namespace hexastore {

namespace {

constexpr char kMagic[4] = {'H', 'X', 'S', '1'};

enum class TermTag : std::uint8_t {
  kIri = 0,
  kLiteral = 1,
  kLangLiteral = 2,
  kTypedLiteral = 3,
  kBlank = 4,
};

TermTag TagOf(const Term& term) {
  switch (term.kind()) {
    case TermKind::kIri:
      return TermTag::kIri;
    case TermKind::kBlank:
      return TermTag::kBlank;
    case TermKind::kLiteral:
      if (!term.language().empty()) {
        return TermTag::kLangLiteral;
      }
      if (!term.datatype().empty()) {
        return TermTag::kTypedLiteral;
      }
      return TermTag::kLiteral;
  }
  return TermTag::kIri;
}

}  // namespace

Status SaveSnapshot(const Graph& graph, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  const Dictionary& dict = graph.dict();
  PutVarint(out, dict.size());
  for (Id id = 1; id <= dict.size(); ++id) {
    const Term& term = dict.term(id);
    const TermTag tag = TagOf(term);
    out.put(static_cast<char>(tag));
    PutString(out, term.value());
    if (tag == TermTag::kLangLiteral) {
      PutString(out, term.language());
    } else if (tag == TermTag::kTypedLiteral) {
      PutString(out, term.datatype());
    }
  }

  IdTripleVec triples = graph.store().Match(IdPattern{});  // (s,p,o) order
  PutVarint(out, triples.size());
  Id prev_s = 0;
  Id prev_p = 0;
  Id prev_o = 0;
  for (const IdTriple& t : triples) {
    const Id delta_s = t.s - prev_s;
    PutVarint(out, delta_s);
    if (delta_s > 0) {
      PutVarint(out, t.p);
      PutVarint(out, t.o);
    } else {
      const Id delta_p = t.p - prev_p;
      PutVarint(out, delta_p);
      if (delta_p > 0) {
        PutVarint(out, t.o);
      } else {
        PutVarint(out, t.o - prev_o);
      }
    }
    prev_s = t.s;
    prev_p = t.p;
    prev_o = t.o;
  }
  if (!out.good()) {
    return Status::Internal("write failure while saving snapshot");
  }
  return Status::OK();
}

Status LoadSnapshot(std::istream& in, Graph* graph) {
  if (graph->size() != 0) {
    return Status::InvalidArgument("target graph must be empty");
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      !std::equal(magic, magic + 4, kMagic)) {
    return Status::ParseError("bad snapshot magic");
  }

  auto term_count = GetVarint(in);
  if (!term_count.ok()) {
    return term_count.status();
  }
  Dictionary& dict = graph->mutable_dict();
  for (std::uint64_t i = 0; i < term_count.value(); ++i) {
    const int tag_byte = in.get();
    if (tag_byte == std::char_traits<char>::eof() || tag_byte > 4) {
      return Status::ParseError("bad term tag");
    }
    auto value = GetString(in);
    if (!value.ok()) {
      return value.status();
    }
    Term term;
    switch (static_cast<TermTag>(tag_byte)) {
      case TermTag::kIri:
        term = Term::Iri(std::move(value).value());
        break;
      case TermTag::kLiteral:
        term = Term::Literal(std::move(value).value());
        break;
      case TermTag::kLangLiteral: {
        auto lang = GetString(in);
        if (!lang.ok()) {
          return lang.status();
        }
        term = Term::LangLiteral(std::move(value).value(),
                                 std::move(lang).value());
        break;
      }
      case TermTag::kTypedLiteral: {
        auto dt = GetString(in);
        if (!dt.ok()) {
          return dt.status();
        }
        term = Term::TypedLiteral(std::move(value).value(),
                                  std::move(dt).value());
        break;
      }
      case TermTag::kBlank:
        term = Term::Blank(std::move(value).value());
        break;
    }
    const Id assigned = dict.Intern(term);
    if (assigned != i + 1) {
      return Status::ParseError("duplicate term in snapshot dictionary");
    }
  }

  auto triple_count = GetVarint(in);
  if (!triple_count.ok()) {
    return triple_count.status();
  }
  IdTripleVec triples;
  triples.reserve(static_cast<std::size_t>(triple_count.value()));
  Id prev_s = 0;
  Id prev_p = 0;
  Id prev_o = 0;
  const std::uint64_t max_id = dict.size();
  for (std::uint64_t i = 0; i < triple_count.value(); ++i) {
    auto delta_s = GetVarint(in);
    if (!delta_s.ok()) {
      return delta_s.status();
    }
    Id s = prev_s + delta_s.value();
    Id p = 0;
    Id o = 0;
    if (delta_s.value() > 0) {
      auto pv = GetVarint(in);
      auto ov = pv.ok() ? GetVarint(in) : pv;
      if (!pv.ok() || !ov.ok()) {
        return Status::ParseError("triple section truncated");
      }
      p = pv.value();
      o = ov.value();
    } else {
      auto delta_p = GetVarint(in);
      if (!delta_p.ok()) {
        return delta_p.status();
      }
      p = prev_p + delta_p.value();
      auto ov = GetVarint(in);
      if (!ov.ok()) {
        return ov.status();
      }
      o = (delta_p.value() > 0) ? ov.value() : prev_o + ov.value();
    }
    if (s == 0 || p == 0 || o == 0 || s > max_id || p > max_id ||
        o > max_id) {
      return Status::ParseError("triple id out of dictionary range");
    }
    triples.push_back(IdTriple{s, p, o});
    prev_s = s;
    prev_p = p;
    prev_o = o;
  }
  graph->BulkLoadEncoded(triples);
  return Status::OK();
}

Status SaveSnapshotFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  return SaveSnapshot(graph, out);
}

Status LoadSnapshotFile(const std::string& path, Graph* graph) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::InvalidArgument("cannot open for reading: " + path);
  }
  return LoadSnapshot(in, graph);
}

}  // namespace hexastore

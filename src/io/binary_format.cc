#include "io/binary_format.h"

#include <istream>
#include <ostream>

namespace hexastore {

void PutVarint(std::ostream& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.put(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.put(static_cast<char>(value));
}

Result<std::uint64_t> GetVarint(std::istream& in) {
  std::uint64_t value = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    int c = in.get();
    if (c == std::char_traits<char>::eof()) {
      return Status::ParseError("varint truncated");
    }
    value |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) {
      return value;
    }
    shift += 7;
  }
  return Status::ParseError("varint too long");
}

void PutString(std::ostream& out, const std::string& value) {
  PutVarint(out, value.size());
  out.write(value.data(), static_cast<std::streamsize>(value.size()));
}

Result<std::string> GetString(std::istream& in, std::uint64_t max_len) {
  auto len = GetVarint(in);
  if (!len.ok()) {
    return len.status();
  }
  if (len.value() > max_len) {
    return Status::ParseError("string length exceeds limit");
  }
  std::string out(static_cast<std::size_t>(len.value()), '\0');
  in.read(out.data(), static_cast<std::streamsize>(out.size()));
  if (static_cast<std::uint64_t>(in.gcount()) != len.value()) {
    return Status::ParseError("string truncated");
  }
  return out;
}

void AppendVarint(std::string* buf, std::uint64_t value) {
  while (value >= 0x80) {
    buf->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  buf->push_back(static_cast<char>(value));
}

bool ReadVarint(const std::string& buf, std::size_t* pos,
                std::uint64_t* value) {
  std::uint64_t out = 0;
  int shift = 0;
  for (int i = 0; i < 10 && *pos < buf.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(buf[(*pos)++]);
    out |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) {
      *value = out;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace hexastore

// RDF term model: IRIs, literals (with optional language tag or datatype)
// and blank nodes.
#ifndef HEXASTORE_RDF_TERM_H_
#define HEXASTORE_RDF_TERM_H_

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

namespace hexastore {

/// The lexical kind of an RDF term.
enum class TermKind : std::uint8_t {
  kIri = 0,
  kLiteral = 1,
  kBlank = 2,
};

/// One RDF term.
///
/// A Term is an immutable value type. IRIs store the IRI string (without
/// angle brackets); literals store the lexical form plus an optional
/// language tag ("en") or datatype IRI; blank nodes store the local label
/// (without the "_:" prefix).
class Term {
 public:
  /// Creates an IRI term.
  static Term Iri(std::string iri);
  /// Creates a plain literal.
  static Term Literal(std::string lexical);
  /// Creates a language-tagged literal.
  static Term LangLiteral(std::string lexical, std::string lang);
  /// Creates a datatyped literal.
  static Term TypedLiteral(std::string lexical, std::string datatype_iri);
  /// Creates a blank node.
  static Term Blank(std::string label);

  /// Default-constructed term is the empty IRI; useful only as a
  /// placeholder before assignment.
  Term() : kind_(TermKind::kIri) {}

  /// The kind of this term.
  TermKind kind() const { return kind_; }
  /// True iff this term is an IRI.
  bool is_iri() const { return kind_ == TermKind::kIri; }
  /// True iff this term is a literal.
  bool is_literal() const { return kind_ == TermKind::kLiteral; }
  /// True iff this term is a blank node.
  bool is_blank() const { return kind_ == TermKind::kBlank; }

  /// IRI string, literal lexical form, or blank label depending on kind.
  const std::string& value() const { return value_; }
  /// Language tag for language-tagged literals, else empty.
  const std::string& language() const { return qualifier_lang_ ? qualifier_ : empty_; }
  /// Datatype IRI for datatyped literals, else empty.
  const std::string& datatype() const { return qualifier_lang_ ? empty_ : qualifier_; }

  /// Canonical N-Triples spelling: `<iri>`, `"lit"`, `"lit"@en`,
  /// `"lit"^^<dt>`, `_:label`. This is also the dictionary key: two terms
  /// are the same resource iff their N-Triples spellings are equal.
  std::string ToNTriples() const;

  /// Terms order by (kind, value, qualifier); equality is structural.
  friend bool operator==(const Term& a, const Term& b) {
    return a.kind_ == b.kind_ && a.value_ == b.value_ &&
           a.qualifier_ == b.qualifier_ &&
           a.qualifier_lang_ == b.qualifier_lang_;
  }
  friend std::strong_ordering operator<=>(const Term& a, const Term& b);

 private:
  Term(TermKind kind, std::string value, std::string qualifier,
       bool qualifier_is_lang)
      : kind_(kind),
        value_(std::move(value)),
        qualifier_(std::move(qualifier)),
        qualifier_lang_(qualifier_is_lang) {}

  static const std::string empty_;

  TermKind kind_;
  std::string value_;
  std::string qualifier_;      // language tag or datatype IRI
  bool qualifier_lang_ = false;  // true: qualifier_ is a language tag
};

}  // namespace hexastore

#endif  // HEXASTORE_RDF_TERM_H_

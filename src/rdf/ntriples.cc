#include "rdf/ntriples.h"

#include <ostream>
#include <sstream>

#include "util/string_util.h"

namespace hexastore {

namespace {

// Cursor over one line; Parse* helpers advance it.
struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipSpace() {
    while (!AtEnd() && (text[pos] == ' ' || text[pos] == '\t')) {
      ++pos;
    }
  }
};

Status ErrorAt(const Cursor& cur, const std::string& what) {
  return Status::ParseError(what + " at column " + std::to_string(cur.pos) +
                            " in: " + std::string(cur.text));
}

Result<Term> ParseIri(Cursor* cur) {
  // cur->Peek() == '<'
  std::size_t end = cur->text.find('>', cur->pos + 1);
  if (end == std::string_view::npos) {
    return ErrorAt(*cur, "unterminated IRI");
  }
  std::string iri(cur->text.substr(cur->pos + 1, end - cur->pos - 1));
  cur->pos = end + 1;
  return Term::Iri(std::move(iri));
}

Result<Term> ParseBlank(Cursor* cur) {
  // cur starts at '_'
  if (cur->pos + 1 >= cur->text.size() || cur->text[cur->pos + 1] != ':') {
    return ErrorAt(*cur, "malformed blank node");
  }
  std::size_t start = cur->pos + 2;
  std::size_t end = start;
  while (end < cur->text.size() && cur->text[end] != ' ' &&
         cur->text[end] != '\t') {
    ++end;
  }
  if (end == start) {
    return ErrorAt(*cur, "empty blank node label");
  }
  std::string label(cur->text.substr(start, end - start));
  cur->pos = end;
  return Term::Blank(std::move(label));
}

Result<Term> ParseLiteral(Cursor* cur) {
  // cur->Peek() == '"'. Scan for the closing quote, honoring backslash
  // escapes.
  std::size_t i = cur->pos + 1;
  std::string raw;
  bool closed = false;
  while (i < cur->text.size()) {
    char c = cur->text[i];
    if (c == '\\' && i + 1 < cur->text.size()) {
      raw += c;
      raw += cur->text[i + 1];
      i += 2;
      continue;
    }
    if (c == '"') {
      closed = true;
      ++i;
      break;
    }
    raw += c;
    ++i;
  }
  if (!closed) {
    return ErrorAt(*cur, "unterminated literal");
  }
  std::string lexical = UnescapeNTriplesLiteral(raw);
  cur->pos = i;
  // Optional @lang or ^^<datatype>.
  if (!cur->AtEnd() && cur->Peek() == '@') {
    std::size_t start = cur->pos + 1;
    std::size_t end = start;
    while (end < cur->text.size() && cur->text[end] != ' ' &&
           cur->text[end] != '\t') {
      ++end;
    }
    if (end == start) {
      return ErrorAt(*cur, "empty language tag");
    }
    std::string lang(cur->text.substr(start, end - start));
    cur->pos = end;
    return Term::LangLiteral(std::move(lexical), std::move(lang));
  }
  if (cur->pos + 1 < cur->text.size() && cur->Peek() == '^' &&
      cur->text[cur->pos + 1] == '^') {
    cur->pos += 2;
    if (cur->AtEnd() || cur->Peek() != '<') {
      return ErrorAt(*cur, "expected datatype IRI after ^^");
    }
    auto dt = ParseIri(cur);
    if (!dt.ok()) {
      return dt.status();
    }
    return Term::TypedLiteral(std::move(lexical), dt.value().value());
  }
  return Term::Literal(std::move(lexical));
}

Result<Term> ParseTerm(Cursor* cur, bool allow_literal) {
  cur->SkipSpace();
  if (cur->AtEnd()) {
    return ErrorAt(*cur, "unexpected end of line");
  }
  char c = cur->Peek();
  if (c == '<') {
    return ParseIri(cur);
  }
  if (c == '_') {
    return ParseBlank(cur);
  }
  if (c == '"') {
    if (!allow_literal) {
      return ErrorAt(*cur, "literal not allowed in this position");
    }
    return ParseLiteral(cur);
  }
  return ErrorAt(*cur, "unexpected character");
}

}  // namespace

Result<Triple> ParseNTriplesLine(std::string_view line) {
  Cursor cur{TrimWhitespace(line), 0};
  auto s = ParseTerm(&cur, /*allow_literal=*/false);
  if (!s.ok()) {
    return s.status();
  }
  auto p = ParseTerm(&cur, /*allow_literal=*/false);
  if (!p.ok()) {
    return p.status();
  }
  if (!p.value().is_iri()) {
    return ErrorAt(cur, "predicate must be an IRI");
  }
  auto o = ParseTerm(&cur, /*allow_literal=*/true);
  if (!o.ok()) {
    return o.status();
  }
  cur.SkipSpace();
  if (cur.AtEnd() || cur.Peek() != '.') {
    return ErrorAt(cur, "expected terminating '.'");
  }
  ++cur.pos;
  cur.SkipSpace();
  if (!cur.AtEnd()) {
    return ErrorAt(cur, "trailing characters after '.'");
  }
  return Triple{std::move(s).value(), std::move(p).value(),
                std::move(o).value()};
}

Result<std::vector<Triple>> ParseNTriplesDocument(std::string_view text,
                                                  bool strict,
                                                  std::size_t* skipped) {
  std::vector<Triple> triples;
  std::size_t skipped_count = 0;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    std::string_view line =
        (end == std::string_view::npos) ? text.substr(start)
                                        : text.substr(start, end - start);
    ++line_no;
    std::string_view trimmed = TrimWhitespace(line);
    if (!trimmed.empty() && trimmed[0] != '#') {
      auto t = ParseNTriplesLine(trimmed);
      if (t.ok()) {
        triples.push_back(std::move(t).value());
      } else if (strict) {
        return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                  t.status().message());
      } else {
        ++skipped_count;
      }
    }
    if (end == std::string_view::npos) {
      break;
    }
    start = end + 1;
  }
  if (skipped != nullptr) {
    *skipped = skipped_count;
  }
  return triples;
}

void WriteNTriples(const std::vector<Triple>& triples, std::ostream& out) {
  for (const auto& t : triples) {
    out << t.ToNTriples() << '\n';
  }
}

std::string ToNTriplesString(const std::vector<Triple>& triples) {
  std::ostringstream os;
  WriteNTriples(triples, os);
  return os.str();
}

}  // namespace hexastore

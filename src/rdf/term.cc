#include "rdf/term.h"

#include "util/string_util.h"

namespace hexastore {

const std::string Term::empty_;

Term Term::Iri(std::string iri) {
  return Term(TermKind::kIri, std::move(iri), "", false);
}

Term Term::Literal(std::string lexical) {
  return Term(TermKind::kLiteral, std::move(lexical), "", false);
}

Term Term::LangLiteral(std::string lexical, std::string lang) {
  return Term(TermKind::kLiteral, std::move(lexical), std::move(lang), true);
}

Term Term::TypedLiteral(std::string lexical, std::string datatype_iri) {
  return Term(TermKind::kLiteral, std::move(lexical),
              std::move(datatype_iri), false);
}

Term Term::Blank(std::string label) {
  return Term(TermKind::kBlank, std::move(label), "", false);
}

std::string Term::ToNTriples() const {
  switch (kind_) {
    case TermKind::kIri:
      return "<" + value_ + ">";
    case TermKind::kBlank:
      return "_:" + value_;
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeNTriplesLiteral(value_) + "\"";
      if (!qualifier_.empty()) {
        if (qualifier_lang_) {
          out += "@" + qualifier_;
        } else {
          out += "^^<" + qualifier_ + ">";
        }
      }
      return out;
    }
  }
  return "";
}

std::strong_ordering operator<=>(const Term& a, const Term& b) {
  if (auto c = a.kind_ <=> b.kind_; c != 0) return c;
  if (auto c = a.value_ <=> b.value_; c != 0) return c;
  if (auto c = a.qualifier_ <=> b.qualifier_; c != 0) return c;
  return a.qualifier_lang_ <=> b.qualifier_lang_;
}

}  // namespace hexastore

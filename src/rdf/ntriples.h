// N-Triples parsing and serialization.
//
// Supports the line-oriented N-Triples syntax: IRIs in angle brackets,
// quoted literals with \-escapes, optional @lang or ^^<datatype>
// qualifiers, and _:blank labels. Comments (#...) and blank lines are
// skipped.
#ifndef HEXASTORE_RDF_NTRIPLES_H_
#define HEXASTORE_RDF_NTRIPLES_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/triple.h"
#include "util/status.h"

namespace hexastore {

/// Parses one N-Triples line ("<s> <p> <o> ."). Returns ParseError with
/// a position-bearing message on malformed input.
Result<Triple> ParseNTriplesLine(std::string_view line);

/// Parses a whole N-Triples document. `strict` aborts on the first bad
/// line; otherwise bad lines are skipped and counted in `*skipped` (may be
/// null).
Result<std::vector<Triple>> ParseNTriplesDocument(std::string_view text,
                                                  bool strict = true,
                                                  std::size_t* skipped =
                                                      nullptr);

/// Serializes triples, one N-Triples line each, to `out`.
void WriteNTriples(const std::vector<Triple>& triples, std::ostream& out);

/// Serializes triples to a string.
std::string ToNTriplesString(const std::vector<Triple>& triples);

}  // namespace hexastore

#endif  // HEXASTORE_RDF_NTRIPLES_H_

// Triple value types, both at the term level (strings) and at the id level
// (dictionary-encoded), plus the id-level lookup pattern.
#ifndef HEXASTORE_RDF_TRIPLE_H_
#define HEXASTORE_RDF_TRIPLE_H_

#include <compare>
#include <string>
#include <vector>

#include "rdf/term.h"
#include "util/common.h"

namespace hexastore {

/// A term-level RDF statement <subject, predicate, object>.
struct Triple {
  Term subject;
  Term predicate;
  Term object;

  friend bool operator==(const Triple&, const Triple&) = default;
  friend std::strong_ordering operator<=>(const Triple&,
                                          const Triple&) = default;

  /// N-Triples line (without trailing newline): "<s> <p> <o> .".
  std::string ToNTriples() const;
};

/// A dictionary-encoded statement; all three ids are valid (non-zero).
struct IdTriple {
  Id s = kInvalidId;
  Id p = kInvalidId;
  Id o = kInvalidId;

  friend bool operator==(const IdTriple&, const IdTriple&) = default;
  friend std::strong_ordering operator<=>(const IdTriple&,
                                          const IdTriple&) = default;
};

/// A lookup pattern over id triples: each position is either a bound id or
/// kInvalidId meaning "any". The eight bound/unbound combinations map onto
/// the paper's access patterns and choose among the six indexes.
struct IdPattern {
  Id s = kInvalidId;
  Id p = kInvalidId;
  Id o = kInvalidId;

  /// True iff the subject position is bound.
  bool has_s() const { return s != kInvalidId; }
  /// True iff the predicate position is bound.
  bool has_p() const { return p != kInvalidId; }
  /// True iff the object position is bound.
  bool has_o() const { return o != kInvalidId; }

  /// Number of bound positions (0..3).
  int bound_count() const {
    return static_cast<int>(has_s()) + static_cast<int>(has_p()) +
           static_cast<int>(has_o());
  }

  /// True iff `t` matches this pattern.
  bool Matches(const IdTriple& t) const {
    return (!has_s() || s == t.s) && (!has_p() || p == t.p) &&
           (!has_o() || o == t.o);
  }

  friend bool operator==(const IdPattern&, const IdPattern&) = default;
};

/// Convenience alias: a materialized result set of id triples.
using IdTripleVec = std::vector<IdTriple>;

}  // namespace hexastore

#endif  // HEXASTORE_RDF_TRIPLE_H_

#include "rdf/triple.h"

namespace hexastore {

std::string Triple::ToNTriples() const {
  std::string out = subject.ToNTriples();
  out += ' ';
  out += predicate.ToNTriples();
  out += ' ';
  out += object.ToNTriples();
  out += " .";
  return out;
}

}  // namespace hexastore

#include "query/merge_join.h"

#include <algorithm>

#include "obs/scoped_timer.h"

namespace hexastore {

namespace {

const IdVec kEmpty;

const IdVec& OrEmpty(const IdVec* v) { return v == nullptr ? kEmpty : *v; }

// Runs `fn` and, when profiling, appends its outcome as one operator and
// folds the wall time into the eval/total phases. The unprofiled call is
// exactly `fn()` — no clock reads.
template <typename F>
auto Profiled(QueryProfile* profile, const char* name, F&& fn) {
  if (profile == nullptr) {
    return fn();
  }
  const std::uint64_t start = obs::NowNanos();
  auto out = fn();
  OperatorProfile op;
  op.name = name;
  op.rows_out = out.size();
  op.wall_ns = obs::NowNanos() - start;
  profile->eval_ns += op.wall_ns;
  profile->rows_out += out.size();
  profile->total_ns = profile->parse_ns + profile->plan_ns +
                      profile->eval_ns + profile->pin_ns;
  profile->operators.push_back(op);
  return out;
}

}  // namespace

IdVec JoinSubjectsByObjects(const Hexastore& store, Id p1, Id o1, Id p2,
                            Id o2, QueryProfile* profile) {
  return Profiled(profile, "join_subjects_by_objects", [&] {
    return Intersect(OrEmpty(store.subjects(p1, o1)),
                     OrEmpty(store.subjects(p2, o2)));
  });
}

IdVec JoinObjectsBySubjects(const Hexastore& store, Id s1, Id p1, Id s2,
                            Id p2, QueryProfile* profile) {
  return Profiled(profile, "join_objects_by_subjects", [&] {
    return Intersect(OrEmpty(store.objects(s1, p1)),
                     OrEmpty(store.objects(s2, p2)));
  });
}

IdVec JoinSubjectsOfObjects(const Hexastore& store, Id o1, Id o2,
                            QueryProfile* profile) {
  return Profiled(profile, "join_subjects_of_objects", [&] {
    return Intersect(OrEmpty(store.subjects_of_object(o1)),
                     OrEmpty(store.subjects_of_object(o2)));
  });
}

IdVec JoinPredicatesByPairs(const Hexastore& store, Id s1, Id o1, Id s2,
                            Id o2, QueryProfile* profile) {
  return Profiled(profile, "join_predicates_by_pairs", [&] {
    return Intersect(OrEmpty(store.predicates(s1, o1)),
                     OrEmpty(store.predicates(s2, o2)));
  });
}

std::vector<std::pair<Id, Id>> JoinChain(const Hexastore& store, Id p1,
                                         Id p2, QueryProfile* profile) {
  return Profiled(profile, "join_chain", [&] {
    std::vector<std::pair<Id, Id>> out;
    const IdVec& mids_from_p1 = OrEmpty(store.objects_of_predicate(p1));
    const IdVec& mids_to_p2 = OrEmpty(store.subjects_of_predicate(p2));
    MergeJoin(mids_from_p1, mids_to_p2, [&](Id mid) {
      const IdVec& starts = OrEmpty(store.subjects(p1, mid));
      const IdVec& ends = OrEmpty(store.objects(mid, p2));
      for (Id s : starts) {
        for (Id e : ends) {
          out.emplace_back(s, e);
        }
      }
    });
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  });
}

namespace {

// DeltaHexastore and its Snapshot expose identical merged-accessor
// signatures, so one generic body serves the live store (per-call
// linearizable views) and the pinned-generation handle alike.

template <typename MergedSource>
IdVec JoinSubjectsByObjectsImpl(const MergedSource& src, Id p1, Id o1,
                                Id p2, Id o2) {
  return IntersectCursors(src.subjects(p1, o1).cursor(),
                          src.subjects(p2, o2).cursor());
}

template <typename MergedSource>
IdVec JoinObjectsBySubjectsImpl(const MergedSource& src, Id s1, Id p1,
                                Id s2, Id p2) {
  return IntersectCursors(src.objects(s1, p1).cursor(),
                          src.objects(s2, p2).cursor());
}

template <typename MergedSource>
IdVec JoinSubjectsOfObjectsImpl(const MergedSource& src, Id o1, Id o2) {
  return Intersect(src.subjects_of_object(o1), src.subjects_of_object(o2));
}

template <typename MergedSource>
IdVec JoinPredicatesByPairsImpl(const MergedSource& src, Id s1, Id o1,
                                Id s2, Id o2) {
  return IntersectCursors(src.predicates(s1, o1).cursor(),
                          src.predicates(s2, o2).cursor());
}

template <typename MergedSource>
std::vector<std::pair<Id, Id>> JoinChainImpl(const MergedSource& src,
                                             Id p1, Id p2) {
  std::vector<std::pair<Id, Id>> out;
  const IdVec mids_from_p1 = src.objects_of_predicate(p1);
  const IdVec mids_to_p2 = src.subjects_of_predicate(p2);
  MergeJoin(mids_from_p1, mids_to_p2, [&](Id mid) {
    // Named views: a cursor must not outlive the MergedList that pins the
    // generation it reads.
    const MergedList starts = src.subjects(p1, mid);
    const MergedList ends = src.objects(mid, p2);
    for (MergedListCursor s = starts.cursor(); !s.done(); s.next()) {
      for (MergedListCursor e = ends.cursor(); !e.done(); e.next()) {
        out.emplace_back(s.value(), e.value());
      }
    }
  });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

// The live-store overloads time each join step into the store's
// hexa_merge_join_latency_ns histogram (the Snapshot overloads stay
// untimed: a pinned handle has no back-pointer to its owning store).

IdVec JoinSubjectsByObjects(const DeltaHexastore& store, Id p1, Id o1,
                            Id p2, Id o2, QueryProfile* profile) {
  obs::ScopedTimer timer(store.merge_join_histogram());
  return Profiled(profile, "join_subjects_by_objects", [&] {
    return JoinSubjectsByObjectsImpl(store, p1, o1, p2, o2);
  });
}

IdVec JoinObjectsBySubjects(const DeltaHexastore& store, Id s1, Id p1,
                            Id s2, Id p2, QueryProfile* profile) {
  obs::ScopedTimer timer(store.merge_join_histogram());
  return Profiled(profile, "join_objects_by_subjects", [&] {
    return JoinObjectsBySubjectsImpl(store, s1, p1, s2, p2);
  });
}

IdVec JoinSubjectsOfObjects(const DeltaHexastore& store, Id o1, Id o2,
                            QueryProfile* profile) {
  obs::ScopedTimer timer(store.merge_join_histogram());
  return Profiled(profile, "join_subjects_of_objects",
                  [&] { return JoinSubjectsOfObjectsImpl(store, o1, o2); });
}

IdVec JoinPredicatesByPairs(const DeltaHexastore& store, Id s1, Id o1,
                            Id s2, Id o2, QueryProfile* profile) {
  obs::ScopedTimer timer(store.merge_join_histogram());
  return Profiled(profile, "join_predicates_by_pairs", [&] {
    return JoinPredicatesByPairsImpl(store, s1, o1, s2, o2);
  });
}

std::vector<std::pair<Id, Id>> JoinChain(const DeltaHexastore& store,
                                         Id p1, Id p2,
                                         QueryProfile* profile) {
  obs::ScopedTimer timer(store.merge_join_histogram());
  return Profiled(profile, "join_chain",
                  [&] { return JoinChainImpl(store, p1, p2); });
}

IdVec JoinSubjectsByObjects(const DeltaHexastore::Snapshot& snap, Id p1,
                            Id o1, Id p2, Id o2, QueryProfile* profile) {
  return Profiled(profile, "join_subjects_by_objects", [&] {
    return JoinSubjectsByObjectsImpl(snap, p1, o1, p2, o2);
  });
}

IdVec JoinObjectsBySubjects(const DeltaHexastore::Snapshot& snap, Id s1,
                            Id p1, Id s2, Id p2, QueryProfile* profile) {
  return Profiled(profile, "join_objects_by_subjects", [&] {
    return JoinObjectsBySubjectsImpl(snap, s1, p1, s2, p2);
  });
}

IdVec JoinSubjectsOfObjects(const DeltaHexastore::Snapshot& snap, Id o1,
                            Id o2, QueryProfile* profile) {
  return Profiled(profile, "join_subjects_of_objects",
                  [&] { return JoinSubjectsOfObjectsImpl(snap, o1, o2); });
}

IdVec JoinPredicatesByPairs(const DeltaHexastore::Snapshot& snap, Id s1,
                            Id o1, Id s2, Id o2, QueryProfile* profile) {
  return Profiled(profile, "join_predicates_by_pairs", [&] {
    return JoinPredicatesByPairsImpl(snap, s1, o1, s2, o2);
  });
}

std::vector<std::pair<Id, Id>> JoinChain(
    const DeltaHexastore::Snapshot& snap, Id p1, Id p2,
    QueryProfile* profile) {
  return Profiled(profile, "join_chain",
                  [&] { return JoinChainImpl(snap, p1, p2); });
}

}  // namespace hexastore

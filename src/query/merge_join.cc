#include "query/merge_join.h"

#include <algorithm>

namespace hexastore {

namespace {

const IdVec kEmpty;

const IdVec& OrEmpty(const IdVec* v) { return v == nullptr ? kEmpty : *v; }

}  // namespace

IdVec JoinSubjectsByObjects(const Hexastore& store, Id p1, Id o1, Id p2,
                            Id o2) {
  return Intersect(OrEmpty(store.subjects(p1, o1)),
                   OrEmpty(store.subjects(p2, o2)));
}

IdVec JoinObjectsBySubjects(const Hexastore& store, Id s1, Id p1, Id s2,
                            Id p2) {
  return Intersect(OrEmpty(store.objects(s1, p1)),
                   OrEmpty(store.objects(s2, p2)));
}

IdVec JoinSubjectsOfObjects(const Hexastore& store, Id o1, Id o2) {
  return Intersect(OrEmpty(store.subjects_of_object(o1)),
                   OrEmpty(store.subjects_of_object(o2)));
}

IdVec JoinPredicatesByPairs(const Hexastore& store, Id s1, Id o1, Id s2,
                            Id o2) {
  return Intersect(OrEmpty(store.predicates(s1, o1)),
                   OrEmpty(store.predicates(s2, o2)));
}

std::vector<std::pair<Id, Id>> JoinChain(const Hexastore& store, Id p1,
                                         Id p2) {
  std::vector<std::pair<Id, Id>> out;
  const IdVec& mids_from_p1 = OrEmpty(store.objects_of_predicate(p1));
  const IdVec& mids_to_p2 = OrEmpty(store.subjects_of_predicate(p2));
  MergeJoin(mids_from_p1, mids_to_p2, [&](Id mid) {
    const IdVec& starts = OrEmpty(store.subjects(p1, mid));
    const IdVec& ends = OrEmpty(store.objects(mid, p2));
    for (Id s : starts) {
      for (Id e : ends) {
        out.emplace_back(s, e);
      }
    }
  });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace hexastore

// Variable bindings and materialized result sets for the query engine.
#ifndef HEXASTORE_QUERY_BINDING_H_
#define HEXASTORE_QUERY_BINDING_H_

#include <string>
#include <vector>

#include "query/pattern.h"
#include "util/common.h"

namespace hexastore {

/// A (partial) assignment of ids to variables, indexed by VarId;
/// kInvalidId means unbound.
class Binding {
 public:
  /// Creates a binding with `var_count` unbound slots.
  explicit Binding(std::size_t var_count)
      : values_(var_count, kInvalidId) {}

  /// Value of variable `v` (kInvalidId if unbound).
  Id Get(VarId v) const { return values_[static_cast<std::size_t>(v)]; }

  /// True iff `v` has a value.
  bool IsBound(VarId v) const { return Get(v) != kInvalidId; }

  /// Assigns `id` to `v`.
  void Set(VarId v, Id id) { values_[static_cast<std::size_t>(v)] = id; }

  /// Unbinds `v`.
  void Unset(VarId v) { Set(v, kInvalidId); }

  /// Raw row (useful for materializing).
  const std::vector<Id>& values() const { return values_; }

 private:
  std::vector<Id> values_;
};

/// One materialized result row: variable values indexed by VarId.
using Row = std::vector<Id>;

/// Materialized result of a query: a variable table plus rows.
///
/// Cells normally hold dictionary ids; aggregate queries produce columns
/// holding raw numbers instead, marked in `numeric` so that formatting
/// and ordering treat them as integers rather than term ids.
struct ResultSet {
  VarTable vars;
  std::vector<Row> rows;
  /// Per-column numeric flags; empty means "all columns are term ids".
  std::vector<bool> numeric;

  /// Column index of a named variable, or kNoVar.
  VarId Column(const std::string& name) const { return vars.Lookup(name); }

  /// True iff column `v` holds raw numbers instead of term ids.
  bool IsNumeric(VarId v) const {
    auto i = static_cast<std::size_t>(v);
    return i < numeric.size() && numeric[i];
  }
};

}  // namespace hexastore

#endif  // HEXASTORE_QUERY_BINDING_H_

#include "query/plan_cache.h"

#include <utility>

#include "query/profile.h"

namespace hexastore {

namespace {

void AppendSlot(const Slot& slot, std::string* out) {
  if (slot.is_var()) {
    out->push_back('v');
    out->append(std::to_string(slot.var));
  } else {
    out->push_back('c');
    out->append(std::to_string(slot.id));
  }
  out->push_back(' ');
}

// Constant-only projection of a compiled pattern (variables -> wildcard),
// mirroring what EstimateCardinality probes with no bound variables.
IdPattern ConstantProjection(const CompiledPattern& p) {
  return IdPattern{p.s.is_var() ? kInvalidId : p.s.id,
                   p.p.is_var() ? kInvalidId : p.p.id,
                   p.o.is_var() ? kInvalidId : p.o.id};
}

}  // namespace

PlanCache::PlanCache(PlanCacheOptions options) : options_(options) {
  if (options_.capacity == 0) {
    options_.capacity = 1;
  }
  if (!(options_.q_error_threshold >= 1.0)) {  // also catches NaN
    options_.q_error_threshold = PlanCacheOptions{}.q_error_threshold;
  }
}

std::string PlanCache::CanonicalKey(const CompiledBgp& bgp) {
  std::string key;
  key.reserve(bgp.patterns.size() * 12 + 8);
  key.append(std::to_string(bgp.patterns.size()));
  key.push_back(':');
  for (const CompiledPattern& p : bgp.patterns) {
    AppendSlot(p.s, &key);
    AppendSlot(p.p, &key);
    AppendSlot(p.o, &key);
  }
  return key;
}

std::vector<std::uint64_t> PlanCache::ProbeEstimates(const TripleStore& store,
                                                     const CompiledBgp& bgp) {
  std::vector<std::uint64_t> estimates;
  estimates.reserve(bgp.patterns.size());
  for (const CompiledPattern& p : bgp.patterns) {
    estimates.push_back(store.EstimateMatches(ConstantProjection(p)));
  }
  return estimates;
}

std::vector<std::size_t> PlanCache::Plan(const TripleStore& store,
                                         const CompiledBgp& bgp,
                                         const PlanCacheStamp& stamp,
                                         PlanProfile* profile,
                                         bool* was_hit) {
  if (was_hit != nullptr) {
    *was_hit = false;
  }
  const std::string key = CanonicalKey(bgp);

  // Phase 1: look the entry up and copy what validation needs. The probes
  // themselves run outside the lock (they may touch the store).
  std::vector<std::size_t> cached_order;
  std::vector<std::uint64_t> cached_estimates;
  PlanCacheStamp cached_stamp;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      found = true;
      cached_order = it->second.order;
      cached_estimates = it->second.estimates;
      cached_stamp = it->second.stamp;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    }
  }

  if (found) {
    bool valid = cached_stamp == stamp;
    std::vector<std::uint64_t> current;
    if (!valid) {
      // Stamps drifted: ops were staged or a merge published since plan
      // time. Re-probe the estimates; the plan survives while every
      // pattern's drift stays within the q-error threshold.
      current = ProbeEstimates(store, bgp);
      valid = true;
      for (std::size_t i = 0; i < current.size(); ++i) {
        const double q = QError(static_cast<double>(cached_estimates[i]),
                                static_cast<double>(current[i]));
        if (q > options_.q_error_threshold) {
          valid = false;
          break;
        }
      }
    }
    if (valid) {
      hits_.Add();
      if (!current.empty()) {
        // Refresh the stamp (so a quiet store takes the equality fast
        // path next time) but keep the PLAN-TIME estimates as the drift
        // baseline: the cached order was chosen for those cardinalities,
        // and slow sustained drift must still accumulate until it
        // crosses the threshold and forces a replan.
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
          it->second.stamp = stamp;
        }
      }
      if (was_hit != nullptr) {
        *was_hit = true;
      }
      if (profile != nullptr) {
        // Reconstruct plan steps so EXPLAIN of a cached plan still
        // renders the order, index choices and bound positions;
        // estimates are the recorded plan-time ones. Bound flags replay
        // the order deterministically (they depend only on it).
        profile->steps.clear();
        std::vector<bool> bound(bgp.vars.size(), false);
        for (std::size_t depth = 0; depth < cached_order.size(); ++depth) {
          const CompiledPattern& p = bgp.patterns[cached_order[depth]];
          PlanStep step;
          step.pattern_index = cached_order[depth];
          step.estimated = cached_estimates[cached_order[depth]];
          step.s_bound = !p.s.is_var() || bound[p.s.var];
          step.p_bound = !p.p.is_var() || bound[p.p.var];
          step.o_bound = !p.o.is_var() || bound[p.o.var];
          step.bound_at_pick = static_cast<int>(step.s_bound) +
                               static_cast<int>(step.p_bound) +
                               static_cast<int>(step.o_bound);
          step.connected =
              depth == 0 ||
              (p.s.is_var() && bound[p.s.var]) ||
              (p.p.is_var() && bound[p.p.var]) ||
              (p.o.is_var() && bound[p.o.var]);
          if (p.s.is_var()) bound[p.s.var] = true;
          if (p.p.is_var()) bound[p.p.var] = true;
          if (p.o.is_var()) bound[p.o.var] = true;
          profile->steps.push_back(step);
        }
      }
      return cached_order;
    }
    invalidations_.Add();
  } else {
    misses_.Add();
  }

  // Miss or invalidated: plan fresh against current cardinalities and
  // (re)insert.
  std::vector<std::size_t> order = PlanBgp(store, bgp, profile);
  std::vector<std::uint64_t> estimates = ProbeEstimates(store, bgp);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.order = order;
      it->second.estimates = std::move(estimates);
      it->second.stamp = stamp;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    } else {
      lru_.push_front(key);
      Entry entry;
      entry.order = order;
      entry.estimates = std::move(estimates);
      entry.stamp = stamp;
      entry.lru_it = lru_.begin();
      entries_.emplace(key, std::move(entry));
      while (entries_.size() > options_.capacity) {
        entries_.erase(lru_.back());
        lru_.pop_back();
        evictions_.Add();
      }
    }
    size_.Set(static_cast<std::int64_t>(entries_.size()));
  }
  return order;
}

void PlanCache::RegisterWith(obs::MetricsRegistry* registry) {
  registry->RegisterCounter("hexa_plan_cache_hits",
                            "Plan-cache lookups served from cache", &hits_);
  registry->RegisterCounter("hexa_plan_cache_misses",
                            "Plan-cache lookups with no entry", &misses_);
  registry->RegisterCounter(
      "hexa_plan_cache_invalidations",
      "Cached plans dropped after estimate drift past the q-error threshold",
      &invalidations_);
  registry->RegisterCounter("hexa_plan_cache_evictions",
                            "Entries evicted by the LRU capacity bound",
                            &evictions_);
  registry->RegisterGauge("hexa_plan_cache_entries",
                          "Plans currently cached", &size_);
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  size_.Set(0);
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace hexastore

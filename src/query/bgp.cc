#include "query/bgp.h"

#include "query/planner.h"

namespace hexastore {

namespace {

// Recursive index-nested-loop evaluation step.
void EvalStep(const TripleStore& store, const CompiledBgp& bgp,
              const std::vector<std::size_t>& order, std::size_t depth,
              Binding* binding, const BindingSink& sink) {
  if (depth == order.size()) {
    sink(*binding);
    return;
  }
  const CompiledPattern& p = bgp.patterns[order[depth]];

  // Substitute constants and bound variables into the probe pattern.
  auto resolve = [&](const Slot& slot) -> Id {
    if (!slot.is_var()) {
      return slot.id;
    }
    return binding->Get(slot.var);  // kInvalidId when still unbound
  };
  IdPattern probe{resolve(p.s), resolve(p.p), resolve(p.o)};

  // Variables that this step newly binds (must be reset on backtrack).
  const bool bind_s = p.s.is_var() && !binding->IsBound(p.s.var);
  const bool bind_p = p.p.is_var() && !binding->IsBound(p.p.var);
  const bool bind_o = p.o.is_var() && !binding->IsBound(p.o.var);

  // Repeated-variable patterns like (?x, p, ?x) need an extra filter
  // because IdPattern cannot express equality between wildcards.
  auto consistent = [&](const IdTriple& t) {
    if (p.s.is_var() && p.o.is_var() && p.s.var == p.o.var && t.s != t.o) {
      return false;
    }
    if (p.s.is_var() && p.p.is_var() && p.s.var == p.p.var && t.s != t.p) {
      return false;
    }
    if (p.p.is_var() && p.o.is_var() && p.p.var == p.o.var && t.p != t.o) {
      return false;
    }
    return true;
  };

  store.Scan(probe, [&](const IdTriple& t) {
    if (!consistent(t)) {
      return;
    }
    if (bind_s) binding->Set(p.s.var, t.s);
    if (bind_p) binding->Set(p.p.var, t.p);
    if (bind_o) binding->Set(p.o.var, t.o);
    EvalStep(store, bgp, order, depth + 1, binding, sink);
    if (bind_s) binding->Unset(p.s.var);
    if (bind_p) binding->Unset(p.p.var);
    if (bind_o) binding->Unset(p.o.var);
  });
}

}  // namespace

void EvalBgp(const TripleStore& store, const CompiledBgp& bgp,
             const std::vector<std::size_t>& order,
             const BindingSink& sink) {
  if (bgp.trivially_empty) {
    return;
  }
  Binding binding(bgp.vars.size());
  EvalStep(store, bgp, order, 0, &binding, sink);
}

ResultSet EvalBgp(const TripleStore& store, const Dictionary& dict,
                  const std::vector<TriplePattern>& patterns) {
  CompiledBgp bgp = CompileBgp(patterns, dict);
  ResultSet result;
  result.vars = bgp.vars;
  if (bgp.trivially_empty) {
    return result;
  }
  std::vector<std::size_t> order = PlanBgp(store, bgp);
  EvalBgp(store, bgp, order, [&result](const Binding& b) {
    result.rows.push_back(b.values());
  });
  return result;
}

ResultSet EvalBgpPinned(const DeltaHexastore& store, const Dictionary& dict,
                        const std::vector<TriplePattern>& patterns) {
  // One handle for planning and evaluation: the snapshot is itself a
  // (read-only) TripleStore, so the generic machinery pins the
  // generation for the entire query.
  const DeltaHexastore::Snapshot snap = store.GetSnapshot();
  return EvalBgp(snap, dict, patterns);
}

}  // namespace hexastore

#include "query/bgp.h"

#include "query/planner.h"
#include "query/session.h"

namespace hexastore {

namespace {

// Recursive index-nested-loop evaluation step.
void EvalStep(const TripleStore& store, const CompiledBgp& bgp,
              const std::vector<std::size_t>& order, std::size_t depth,
              Binding* binding, const BindingSink& sink) {
  if (depth == order.size()) {
    sink(*binding);
    return;
  }
  const CompiledPattern& p = bgp.patterns[order[depth]];

  // Substitute constants and bound variables into the probe pattern.
  auto resolve = [&](const Slot& slot) -> Id {
    if (!slot.is_var()) {
      return slot.id;
    }
    return binding->Get(slot.var);  // kInvalidId when still unbound
  };
  IdPattern probe{resolve(p.s), resolve(p.p), resolve(p.o)};

  // Variables that this step newly binds (must be reset on backtrack).
  const bool bind_s = p.s.is_var() && !binding->IsBound(p.s.var);
  const bool bind_p = p.p.is_var() && !binding->IsBound(p.p.var);
  const bool bind_o = p.o.is_var() && !binding->IsBound(p.o.var);

  // Repeated-variable patterns like (?x, p, ?x) need an extra filter
  // because IdPattern cannot express equality between wildcards.
  auto consistent = [&](const IdTriple& t) {
    if (p.s.is_var() && p.o.is_var() && p.s.var == p.o.var && t.s != t.o) {
      return false;
    }
    if (p.s.is_var() && p.p.is_var() && p.s.var == p.p.var && t.s != t.p) {
      return false;
    }
    if (p.p.is_var() && p.o.is_var() && p.p.var == p.o.var && t.p != t.o) {
      return false;
    }
    return true;
  };

  store.Scan(probe, [&](const IdTriple& t) {
    if (!consistent(t)) {
      return;
    }
    if (bind_s) binding->Set(p.s.var, t.s);
    if (bind_p) binding->Set(p.p.var, t.p);
    if (bind_o) binding->Set(p.o.var, t.o);
    EvalStep(store, bgp, order, depth + 1, binding, sink);
    if (bind_s) binding->Unset(p.s.var);
    if (bind_p) binding->Unset(p.p.var);
    if (bind_o) binding->Unset(p.o.var);
  });
}

// EvalStep with per-depth accounting. A separate function (not a branch
// inside EvalStep) so the unprofiled path keeps exactly its old shape —
// the profiled/unprofiled fork happens once, in EvalBgp.
void EvalStepProfiled(const TripleStore& store, const CompiledBgp& bgp,
                      const std::vector<std::size_t>& order,
                      std::size_t depth, Binding* binding,
                      const BindingSink& sink, QueryProfile* profile) {
  if (depth == order.size()) {
    sink(*binding);
    return;
  }
  const CompiledPattern& p = bgp.patterns[order[depth]];

  auto resolve = [&](const Slot& slot) -> Id {
    if (!slot.is_var()) {
      return slot.id;
    }
    return binding->Get(slot.var);
  };
  IdPattern probe{resolve(p.s), resolve(p.p), resolve(p.o)};

  const bool bind_s = p.s.is_var() && !binding->IsBound(p.s.var);
  const bool bind_p = p.p.is_var() && !binding->IsBound(p.p.var);
  const bool bind_o = p.o.is_var() && !binding->IsBound(p.o.var);

  auto consistent = [&](const IdTriple& t) {
    if (p.s.is_var() && p.o.is_var() && p.s.var == p.o.var && t.s != t.o) {
      return false;
    }
    if (p.s.is_var() && p.p.is_var() && p.s.var == p.p.var && t.s != t.p) {
      return false;
    }
    if (p.p.is_var() && p.o.is_var() && p.p.var == p.o.var && t.p != t.o) {
      return false;
    }
    return true;
  };

  const std::uint64_t scan_start = obs::NowNanos();
  // Deadline check at the operator boundary: the clock was read anyway,
  // so an expired budget stops descending before issuing the scan. The
  // enclosing scans unwind through the same check (the flag short-
  // circuits Scan callbacks already in flight at shallower depths).
  if (profile->deadline_ns != 0 &&
      (profile->deadline_exceeded || scan_start >= profile->deadline_ns)) {
    profile->deadline_exceeded = true;
    return;
  }
  PatternProfile& pp = profile->patterns[depth];
  pp.probes += 1;
  store.Scan(probe, [&](const IdTriple& t) {
    pp.rows_scanned += 1;
    if (!consistent(t)) {
      return;
    }
    pp.rows_emitted += 1;
    if (bind_s) binding->Set(p.s.var, t.s);
    if (bind_p) binding->Set(p.p.var, t.p);
    if (bind_o) binding->Set(p.o.var, t.o);
    EvalStepProfiled(store, bgp, order, depth + 1, binding, sink, profile);
    if (bind_s) binding->Unset(p.s.var);
    if (bind_p) binding->Unset(p.p.var);
    if (bind_o) binding->Unset(p.o.var);
  });
  // Inclusive of deeper recursion (it runs inside the Scan callback);
  // RenderExplainAnalyze derives self time by subtracting depth+1.
  pp.wall_ns += obs::NowNanos() - scan_start;
}

}  // namespace

void EvalBgp(const TripleStore& store, const CompiledBgp& bgp,
             const std::vector<std::size_t>& order, const BindingSink& sink,
             QueryProfile* profile) {
  if (bgp.trivially_empty) {
    return;
  }
  Binding binding(bgp.vars.size());
  if (profile == nullptr) {
    EvalStep(store, bgp, order, 0, &binding, sink);
    return;
  }
  // Callers normally AttachPlan first; a bare profile still gets the
  // per-depth actuals keyed by the order's pattern indices.
  if (profile->patterns.size() != order.size()) {
    profile->patterns.resize(order.size());
    for (std::size_t d = 0; d < order.size(); ++d) {
      profile->patterns[d].pattern_index = order[d];
    }
  }
  EvalStepProfiled(store, bgp, order, 0, &binding, sink, profile);
}

ResultSet EvalBgp(const TripleStore& store, const Dictionary& dict,
                  const std::vector<TriplePattern>& patterns,
                  QueryProfile* profile) {
  CompiledBgp bgp = CompileBgp(patterns, dict);
  ResultSet result;
  result.vars = bgp.vars;
  if (bgp.trivially_empty) {
    return result;
  }
  const BindingSink materialize = [&result](const Binding& b) {
    result.rows.push_back(b.values());
  };
  if (profile == nullptr) {
    std::vector<std::size_t> order = PlanBgp(store, bgp);
    EvalBgp(store, bgp, order, materialize);
    return result;
  }
  PlanProfile plan;
  const std::uint64_t plan_start = obs::NowNanos();
  std::vector<std::size_t> order = PlanBgp(store, bgp, &plan);
  profile->plan_ns += obs::NowNanos() - plan_start;
  AttachPlan(bgp, dict, plan, profile);
  const std::uint64_t eval_start = obs::NowNanos();
  EvalBgp(store, bgp, order, materialize, profile);
  profile->eval_ns += obs::NowNanos() - eval_start;
  profile->rows_out += result.rows.size();
  profile->total_ns = profile->parse_ns + profile->plan_ns +
                      profile->eval_ns;
  return result;
}

ResultSet EvalBgpPinned(const DeltaHexastore& store, const Dictionary& dict,
                        const std::vector<TriplePattern>& patterns,
                        QueryProfile* profile) {
  if (profile == nullptr) {
    // One handle for planning and evaluation: the snapshot is itself a
    // (read-only) TripleStore, so the generic machinery pins the
    // generation for the entire query. Stays off the Session path to
    // keep the unprofiled promise (no clock reads).
    const DeltaHexastore::Snapshot snap = store.GetSnapshot();
    return EvalBgp(snap, dict, patterns);
  }
  // Shim over query::Session (same GetSnapshot pinning); merges the
  // session's profile additively so a caller-populated parse_ns
  // survives, and keeps the legacy total = parse + pin convention.
  query::SessionOptions options;
  options.pin = query::PinPolicy::kLinearizable;
  query::Session session(store, dict, options);
  auto result = session.EvalBgp(patterns);
  const QueryProfile& sp = session.last_profile();
  profile->plan_ns += sp.plan_ns;
  profile->eval_ns += sp.eval_ns;
  profile->pin_ns += sp.pin_ns;
  profile->estimate_probes += sp.estimate_probes;
  profile->memo_hits += sp.memo_hits;
  profile->rows_out += sp.rows_out;
  profile->patterns = sp.patterns;
  profile->operators = sp.operators;
  profile->total_ns = profile->parse_ns + profile->pin_ns;
  if (!result.ok()) {
    return ResultSet{};  // unreachable: bare BGPs have no failing stages
  }
  return std::move(result).value().set;
}

}  // namespace hexastore

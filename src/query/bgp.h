// Basic-graph-pattern evaluation over any TripleStore.
//
// Evaluation is index-nested-loop with the planner's greedy order: each
// step substitutes the current binding into the next pattern and scans the
// store with the resulting IdPattern, extending the binding per match. On
// a Hexastore every such scan is a vector/list lookup and every first-step
// pairwise join is a merge join by construction of the indexes.
#ifndef HEXASTORE_QUERY_BGP_H_
#define HEXASTORE_QUERY_BGP_H_

#include <functional>
#include <vector>

#include "core/store_interface.h"
#include "delta/delta_hexastore.h"
#include "dict/dictionary.h"
#include "query/binding.h"
#include "query/pattern.h"
#include "query/profile.h"

namespace hexastore {

/// Callback receiving each complete solution binding.
using BindingSink = std::function<void(const Binding&)>;

/// Evaluates a compiled BGP, streaming complete bindings to `sink`.
/// `order` must be a permutation of pattern indices (use PlanBgp).
///
/// `profile`, when non-null, accumulates per-pattern probes, rows
/// scanned/emitted and inclusive wall time into
/// `profile->patterns[depth]` (sized to the order if the caller did not
/// AttachPlan first). With nullptr the evaluation path is byte-for-byte
/// the unprofiled one — no clock reads (pinned by
/// bench/abl_obs_overhead.cc).
void EvalBgp(const TripleStore& store, const CompiledBgp& bgp,
             const std::vector<std::size_t>& order, const BindingSink& sink,
             QueryProfile* profile = nullptr);

/// Convenience: compile + plan + evaluate + materialize. With a profile,
/// also records plan/eval phase times, the chosen plan (AttachPlan) and
/// rows_out, and sets total_ns = parse_ns + plan_ns + eval_ns.
ResultSet EvalBgp(const TripleStore& store, const Dictionary& dict,
                  const std::vector<TriplePattern>& patterns,
                  QueryProfile* profile = nullptr);

/// Pinned-generation evaluation: takes one snapshot handle up front and
/// runs planning (delta-aware EstimateMatches) plus every scan of the
/// whole BGP against that single frozen generation — the query never
/// touches the store mutex again and never observes a seal, fold or
/// base merge moving a level underneath it, however long it runs.
/// Equivalent to `EvalBgp(store.GetSnapshot(), dict, patterns)`.
/// With a profile, `pin_ns` records how long the generation stayed
/// pinned (here: the whole query, snapshot acquisition included).
///
/// DEPRECATED: the profiled path is a shim over query::Session with
/// PinPolicy::kLinearizable; prefer Session::EvalBgp, which adds the
/// plan cache, deadlines and sink aggregation.
ResultSet EvalBgpPinned(const DeltaHexastore& store, const Dictionary& dict,
                        const std::vector<TriplePattern>& patterns,
                        QueryProfile* profile = nullptr);

}  // namespace hexastore

#endif  // HEXASTORE_QUERY_BGP_H_

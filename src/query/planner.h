// Greedy selectivity-based join ordering for basic graph patterns.
//
// The planner orders patterns so that each step binds as many positions as
// possible (constants plus already-bound variables), breaking ties with a
// store-provided cardinality estimate. This follows the selectivity-
// estimation line of work the paper cites (Stocker et al., WWW'08) in a
// simplified form adequate for the evaluation workloads.
#ifndef HEXASTORE_QUERY_PLANNER_H_
#define HEXASTORE_QUERY_PLANNER_H_

#include <cstdint>
#include <vector>

#include "core/store_interface.h"
#include "query/pattern.h"

namespace hexastore {

/// Estimates the number of matches of `pattern` when the variables in
/// `bound_vars` are already bound (their ids unknown at plan time, so the
/// estimate assumes an average-case reduction). Uses the store's
/// EstimateMatches on the constant-only projection of the pattern when
/// cheap, else store size — so stores with staged edits (DeltaHexastore)
/// plan against delta-aware cardinalities.
std::uint64_t EstimateCardinality(const TripleStore& store,
                                  const CompiledPattern& pattern,
                                  const std::vector<bool>& bound_vars);

/// Returns an evaluation order (indices into `patterns`). Greedy: at each
/// step pick the pattern with the lowest estimated cardinality given the
/// variables bound so far; prefer connected patterns (sharing a bound
/// variable) to avoid Cartesian products.
std::vector<std::size_t> PlanBgp(const TripleStore& store,
                                 const CompiledBgp& bgp);

}  // namespace hexastore

#endif  // HEXASTORE_QUERY_PLANNER_H_

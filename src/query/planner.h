// Greedy selectivity-based join ordering for basic graph patterns.
//
// The planner orders patterns so that each step binds as many positions as
// possible (constants plus already-bound variables), breaking ties with a
// store-provided cardinality estimate. This follows the selectivity-
// estimation line of work the paper cites (Stocker et al., WWW'08) in a
// simplified form adequate for the evaluation workloads.
#ifndef HEXASTORE_QUERY_PLANNER_H_
#define HEXASTORE_QUERY_PLANNER_H_

#include <cstdint>
#include <vector>

#include "core/store_interface.h"
#include "query/pattern.h"

namespace hexastore {

/// Estimates the number of matches of `pattern` when the variables in
/// `bound_vars` are already bound (their ids unknown at plan time, so the
/// estimate assumes an average-case reduction). Uses the store's
/// EstimateMatches on the constant-only projection of the pattern when
/// cheap, else store size — so stores with staged edits (DeltaHexastore)
/// plan against delta-aware cardinalities.
std::uint64_t EstimateCardinality(const TripleStore& store,
                                  const CompiledPattern& pattern,
                                  const std::vector<bool>& bound_vars);

/// One planner decision: which pattern was picked at a step and the
/// facts it was picked on. `s_bound`/`p_bound`/`o_bound` say which probe
/// positions will be constant at evaluation time (constants plus
/// already-bound variables) — they determine the permutation index the
/// store will serve the probes from.
struct PlanStep {
  std::size_t pattern_index = 0;
  std::uint64_t estimated = 0;  ///< EstimateCardinality when picked
  int bound_at_pick = 0;        ///< constant + bound-var positions
  bool connected = true;        ///< shared a bound variable when picked
  bool s_bound = false;
  bool p_bound = false;
  bool o_bound = false;
};

/// Planner-side profile: the chosen steps plus estimate accounting.
/// `estimate_probes` counts actual EstimateCardinality store probes;
/// `memo_hits` counts estimates served from the planner's memo instead
/// (estimates are invalidated only for patterns whose variables a pick
/// newly bound, so probes stay O(n·k) for k invalidations instead of
/// O(n^2)).
struct PlanProfile {
  std::vector<PlanStep> steps;
  std::uint64_t estimate_probes = 0;
  std::uint64_t memo_hits = 0;
};

/// Returns an evaluation order (indices into `patterns`). Greedy: at each
/// step pick the pattern with the lowest estimated cardinality given the
/// variables bound so far; prefer connected patterns (sharing a bound
/// variable) to avoid Cartesian products. Cardinality estimates are
/// memoized across steps and re-probed only when a pick binds one of the
/// pattern's own variables (the only input the estimate depends on).
/// `profile`, when non-null, receives the per-step decisions and the
/// probe/memo counts.
std::vector<std::size_t> PlanBgp(const TripleStore& store,
                                 const CompiledBgp& bgp,
                                 PlanProfile* profile);

/// Unprofiled convenience overload.
std::vector<std::size_t> PlanBgp(const TripleStore& store,
                                 const CompiledBgp& bgp);

}  // namespace hexastore

#endif  // HEXASTORE_QUERY_PLANNER_H_

#include "query/result_json.h"

#include <cstdio>

#include "rdf/term.h"
#include "util/common.h"

namespace hexastore {

void AppendJsonEscaped(std::string_view text, std::string* out) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

namespace {

void AppendQuoted(std::string_view text, std::string* out) {
  out->push_back('"');
  AppendJsonEscaped(text, out);
  out->push_back('"');
}

void AppendTermCell(const Term& term, std::string* out) {
  switch (term.kind()) {
    case TermKind::kIri:
      out->append("{\"type\":\"uri\",\"value\":");
      AppendQuoted(term.value(), out);
      break;
    case TermKind::kBlank: {
      out->append("{\"type\":\"bnode\",\"value\":");
      std::string_view label = term.value();
      if (label.size() >= 2 && label[0] == '_' && label[1] == ':') {
        label.remove_prefix(2);
      }
      AppendQuoted(label, out);
      break;
    }
    case TermKind::kLiteral:
      out->append("{\"type\":\"literal\",\"value\":");
      AppendQuoted(term.value(), out);
      if (!term.language().empty()) {
        out->append(",\"xml:lang\":");
        AppendQuoted(term.language(), out);
      } else if (!term.datatype().empty()) {
        out->append(",\"datatype\":");
        AppendQuoted(term.datatype(), out);
      }
      break;
  }
  out->push_back('}');
}

void AppendNumericCell(Id raw, std::string* out) {
  out->append("{\"type\":\"literal\",\"value\":\"");
  out->append(std::to_string(raw));
  out->append("\",\"datatype\":\"http://www.w3.org/2001/XMLSchema#integer\"}");
}

}  // namespace

std::string ResultSetToJson(const ResultSet& set, const Dictionary& dict) {
  std::string out;
  out.append("{\"head\":{\"vars\":[");
  for (std::size_t v = 0; v < set.vars.size(); ++v) {
    if (v > 0) {
      out.push_back(',');
    }
    AppendQuoted(set.vars.name(static_cast<VarId>(v)), &out);
  }
  out.append("]},\"results\":{\"bindings\":[");
  bool first_row = true;
  for (const Row& row : set.rows) {
    if (!first_row) {
      out.push_back(',');
    }
    first_row = false;
    out.push_back('{');
    bool first_cell = true;
    for (std::size_t v = 0; v < row.size() && v < set.vars.size(); ++v) {
      const VarId var = static_cast<VarId>(v);
      if (set.IsNumeric(var)) {
        if (!first_cell) {
          out.push_back(',');
        }
        first_cell = false;
        AppendQuoted(set.vars.name(var), &out);
        out.push_back(':');
        AppendNumericCell(row[v], &out);
        continue;
      }
      const std::optional<Term> term = dict.TryTerm(row[v]);
      if (!term.has_value()) {
        continue;  // unbound/unresolvable: the spec omits the key
      }
      if (!first_cell) {
        out.push_back(',');
      }
      first_cell = false;
      AppendQuoted(set.vars.name(var), &out);
      out.push_back(':');
      AppendTermCell(*term, &out);
    }
    out.push_back('}');
  }
  out.append("]}}");
  return out;
}

std::string BooleanResultToJson(bool value) {
  std::string out = "{\"head\":{},\"boolean\":";
  out.append(value ? "true" : "false");
  out.append("}");
  return out;
}

}  // namespace hexastore


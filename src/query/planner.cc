#include "query/planner.h"

#include <algorithm>
#include <limits>

namespace hexastore {

namespace {

// True iff the pattern references a variable marked bound.
bool SharesBoundVar(const CompiledPattern& p,
                    const std::vector<bool>& bound_vars) {
  for (const Slot* slot : {&p.s, &p.p, &p.o}) {
    if (slot->is_var() && bound_vars[static_cast<std::size_t>(slot->var)]) {
      return true;
    }
  }
  return false;
}

// Number of positions that will be constant at evaluation time.
int EffectiveBound(const CompiledPattern& p,
                   const std::vector<bool>& bound_vars) {
  int n = 0;
  for (const Slot* slot : {&p.s, &p.p, &p.o}) {
    if (!slot->is_var() ||
        bound_vars[static_cast<std::size_t>(slot->var)]) {
      ++n;
    }
  }
  return n;
}

}  // namespace

std::uint64_t EstimateCardinality(const TripleStore& store,
                                  const CompiledPattern& pattern,
                                  const std::vector<bool>& bound_vars) {
  // Constant-only projection of the pattern: variables (bound or not at
  // runtime) become wildcards for the estimate.
  IdPattern probe;
  if (!pattern.s.is_var()) probe.s = pattern.s.id;
  if (!pattern.p.is_var()) probe.p = pattern.p.id;
  if (!pattern.o.is_var()) probe.o = pattern.o.id;

  // Counting is only cheap when at least one position is constant; a
  // wildcard count is just the store size. EstimateMatches lets layered
  // stores answer from their indexes plus staged-edit counters — for a
  // DeltaHexastore mid-delta the estimate reflects staged inserts and
  // tombstones without a merged scan.
  std::uint64_t base = (probe.s != kInvalidId || probe.p != kInvalidId ||
                        probe.o != kInvalidId)
                           ? store.EstimateMatches(probe)
                           : store.size();

  // Each runtime-bound variable position divides the estimate: assume a
  // uniform 1/10 reduction per additional binding (classic heuristic).
  for (const Slot* slot : {&pattern.s, &pattern.p, &pattern.o}) {
    if (slot->is_var() &&
        bound_vars[static_cast<std::size_t>(slot->var)]) {
      base = std::max<std::uint64_t>(1, base / 10);
    }
  }
  return base;
}

std::vector<std::size_t> PlanBgp(const TripleStore& store,
                                 const CompiledBgp& bgp,
                                 PlanProfile* profile) {
  const std::size_t n = bgp.patterns.size();
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<bool> used(n, false);
  std::vector<bool> bound_vars(bgp.vars.size(), false);

  // Estimate memo. EstimateCardinality depends only on which of the
  // pattern's own variables are bound, so an entry stays valid until a
  // pick binds one of those variables. That caps store probes at
  // n + sum(invalidations) instead of the naive n^2/2.
  std::vector<std::uint64_t> memo(n, 0);
  std::vector<bool> memo_valid(n, false);
  std::uint64_t estimate_probes = 0;
  std::uint64_t memo_hits = 0;

  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    std::uint64_t best_cost = std::numeric_limits<std::uint64_t>::max();
    bool best_connected = false;
    int best_bound = -1;
    for (std::size_t i = 0; i < n; ++i) {
      if (used[i]) {
        continue;
      }
      const CompiledPattern& p = bgp.patterns[i];
      const bool connected = order.empty() || SharesBoundVar(p, bound_vars);
      const int eff_bound = EffectiveBound(p, bound_vars);
      if (memo_valid[i]) {
        ++memo_hits;
      } else {
        memo[i] = EstimateCardinality(store, p, bound_vars);
        memo_valid[i] = true;
        ++estimate_probes;
      }
      const std::uint64_t cost = memo[i];
      // Lexicographic preference: connected > more bound positions >
      // lower cost > lower index (determinism).
      bool better;
      if (connected != best_connected) {
        better = connected;
      } else if (eff_bound != best_bound) {
        better = eff_bound > best_bound;
      } else {
        better = cost < best_cost;
      }
      if (best == n || better) {
        best = i;
        best_cost = cost;
        best_connected = connected;
        best_bound = eff_bound;
      }
    }
    used[best] = true;
    order.push_back(best);

    const CompiledPattern& picked = bgp.patterns[best];
    if (profile != nullptr) {
      PlanStep ps;
      ps.pattern_index = best;
      ps.estimated = best_cost;
      ps.bound_at_pick = best_bound;
      ps.connected = best_connected;
      ps.s_bound = !picked.s.is_var() ||
                   bound_vars[static_cast<std::size_t>(picked.s.var)];
      ps.p_bound = !picked.p.is_var() ||
                   bound_vars[static_cast<std::size_t>(picked.p.var)];
      ps.o_bound = !picked.o.is_var() ||
                   bound_vars[static_cast<std::size_t>(picked.o.var)];
      profile->steps.push_back(ps);
    }

    // Bind the picked pattern's variables and invalidate only the memo
    // entries whose estimate those bindings can change.
    std::vector<VarId> newly_bound;
    for (const Slot* slot : {&picked.s, &picked.p, &picked.o}) {
      if (slot->is_var() &&
          !bound_vars[static_cast<std::size_t>(slot->var)]) {
        bound_vars[static_cast<std::size_t>(slot->var)] = true;
        newly_bound.push_back(slot->var);
      }
    }
    if (!newly_bound.empty()) {
      for (std::size_t i = 0; i < n; ++i) {
        if (used[i] || !memo_valid[i]) continue;
        for (const Slot* slot :
             {&bgp.patterns[i].s, &bgp.patterns[i].p, &bgp.patterns[i].o}) {
          if (slot->is_var() &&
              std::find(newly_bound.begin(), newly_bound.end(),
                        slot->var) != newly_bound.end()) {
            memo_valid[i] = false;
            break;
          }
        }
      }
    }
  }

  if (profile != nullptr) {
    profile->estimate_probes += estimate_probes;
    profile->memo_hits += memo_hits;
  }
  return order;
}

std::vector<std::size_t> PlanBgp(const TripleStore& store,
                                 const CompiledBgp& bgp) {
  return PlanBgp(store, bgp, nullptr);
}

}  // namespace hexastore

// The unified query entry point: one Session object binds a store, a
// dictionary and a query-execution policy (generation pinning, plan
// cache, profile sink, per-query deadline), and every front end — the
// REPL, the CLI, the HTTP server, tests — runs queries through it
// instead of juggling the RunSparql/EvalBgpPinned free functions.
//
// What a Session owns vs. shares:
//
//  - Owns: one reusable QueryProfile (so steady-state queries allocate
//    nothing), the pinning policy, the deadline budget.
//  - Shares (borrowed, caller-owned, must outlive the Session): the
//    store, the dictionary, optionally one PlanCache and one
//    ProfileSink. Both of those are thread-safe and meant to be shared
//    across every Session of a store — the server gives each worker
//    thread its own Session over one cache and one sink.
//
// A Session itself is single-threaded state (use one per thread). Every
// query executes profiled — that is what makes deadlines observable and
// the sink's histograms complete; the legacy unprofiled fast path stays
// available through the sparql_engine.h shims.
//
// Pinning: under PinPolicy::kWaitFree each query runs against one
// AcquireReadHandle() generation — wait-free, never blocked by writers
// or the compactor, possibly trailing the live store by an in-flight
// merge. kLinearizable uses GetSnapshot() (serializes with the writer
// mutex). kNone evaluates the store directly — the only choice for a
// plain TripleStore, and forced by the TripleStore constructor.
//
// docs/server.md covers how the server composes Sessions; the plan-cache
// validity contract lives in plan_cache.h.
#ifndef HEXASTORE_QUERY_SESSION_H_
#define HEXASTORE_QUERY_SESSION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "delta/delta_hexastore.h"
#include "dict/dictionary.h"
#include "shard/sharded_hexastore.h"
#include "query/binding.h"
#include "query/pattern.h"
#include "query/plan_cache.h"
#include "query/profile.h"
#include "query/sparql_parser.h"
#include "util/status.h"

namespace hexastore {
namespace query {

/// How a Session isolates each query from concurrent writers.
enum class PinPolicy : std::uint8_t {
  kNone = 0,          ///< evaluate the store directly (plain stores)
  kWaitFree = 1,      ///< AcquireReadHandle() per query (server default)
  kLinearizable = 2,  ///< GetSnapshot() per query
};

/// Session construction knobs. Pointers are borrowed and may be null.
struct SessionOptions {
  PinPolicy pin = PinPolicy::kWaitFree;
  /// Finished-query aggregation (histograms + slow-query log); shared.
  ProfileSink* sink = nullptr;
  /// Normalized-BGP plan cache; shared. Null plans every query fresh.
  PlanCache* plan_cache = nullptr;
  /// Per-query wall-time budget in nanoseconds; 0 = unlimited. Checked
  /// at operator boundaries (BGP probes and solution-modifier stages),
  /// so a query overruns by at most one index scan.
  std::uint64_t deadline_ns = 0;
};

/// One executed query: the rows plus the complete profile (phase times,
/// per-pattern actuals, operator stages, rows_out are all populated —
/// Sessions always run profiled).
struct QueryResult {
  ResultSet set;
  QueryProfile profile;
  /// True when the BGP join order came from the plan cache.
  bool from_plan_cache = false;
};

class Session {
 public:
  /// Session over a DeltaHexastore; all pin policies available.
  Session(const DeltaHexastore& store, const Dictionary& dict,
          SessionOptions options = {});

  /// Session over a ShardedHexastore; all pin policies available. Each
  /// query pins one generation per shard (a ShardedSnapshot) and the
  /// plan-cache stamp is the concatenated per-shard stamp vector.
  Session(const ShardedHexastore& store, const Dictionary& dict,
          SessionOptions options = {});

  /// Session over any TripleStore. No generation gate exists, so the
  /// pin policy is forced to kNone regardless of `options.pin`.
  Session(const TripleStore& store, const Dictionary& dict,
          SessionOptions options = {});

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parses and executes a SPARQL-subset query. On success the result
  /// carries rows and the full profile; the sink (when set) has been
  /// fed either way. Overrunning the deadline returns DeadlineExceeded.
  Result<QueryResult> Query(std::string_view text);

  /// Evaluates a bare BGP through the same pin/cache/deadline/sink
  /// machinery (profile kind kBgp).
  Result<QueryResult> EvalBgp(const std::vector<TriplePattern>& patterns);

  /// EXPLAIN: plan without executing. Always plans fresh (never through
  /// the cache) so the output is deterministic for a given store state.
  Result<std::string> Explain(std::string_view text);

  /// EXPLAIN ANALYZE: plan and execute (through the full Session
  /// machinery), render the annotated plan.
  Result<std::string> ExplainAnalyze(std::string_view text);

  const Dictionary& dict() const { return dict_; }
  const SessionOptions& options() const { return options_; }
  /// The profile of the most recent Query/EvalBgp/ExplainAnalyze call
  /// (valid until the next one; also embedded in each QueryResult).
  const QueryProfile& last_profile() const { return profile_; }

 private:
  // Executes `query` against the pinned (or direct) store view with the
  // shared pipeline; fills profile_/from_cache and feeds the sink.
  Result<ResultSet> Run(const ParsedQuery& query, std::string_view text,
                        bool* from_cache);

  const TripleStore& plain_;          // evaluation target under kNone
  const DeltaHexastore* delta_;       // non-null ⇔ single-store pinning
  const ShardedHexastore* sharded_ = nullptr;  // non-null ⇔ sharded pinning
  const Dictionary& dict_;
  SessionOptions options_;
  QueryProfile profile_;              // reused across queries
};

namespace internal {

/// The solution-modifier pipeline behind both Session and the legacy
/// ExecuteSparql shim: BGP evaluation (optionally through `cache` with
/// `stamp`), filters, aggregation, ORDER BY, projection, DISTINCT,
/// LIMIT. `profile` may be null (legacy unprofiled path: no clocks, no
/// deadline checks). `from_cache`, when non-null, reports whether the
/// join order was served by the cache.
Result<ResultSet> ExecuteSparqlPipeline(const TripleStore& store,
                                        const Dictionary& dict,
                                        const ParsedQuery& query,
                                        QueryProfile* profile,
                                        PlanCache* cache,
                                        const PlanCacheStamp& stamp,
                                        bool* from_cache);

/// BGP evaluation with optional plan-cache ordering; same contract as
/// the EvalBgp free function otherwise.
ResultSet EvalBgpMaybeCached(const TripleStore& store,
                             const Dictionary& dict,
                             const std::vector<TriplePattern>& patterns,
                             QueryProfile* profile, PlanCache* cache,
                             const PlanCacheStamp& stamp, bool* from_cache);

}  // namespace internal
}  // namespace query
}  // namespace hexastore

#endif  // HEXASTORE_QUERY_SESSION_H_

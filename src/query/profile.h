// Per-query observability: a nullable, zero-cost-when-off QueryProfile
// threaded through the whole query stack, and a ProfileSink that
// aggregates finished profiles into query-class latency histograms and
// the slow-query log.
//
// Contract:
//
//  - Every profiled entry point takes `QueryProfile* profile = nullptr`.
//    With nullptr the hot path pays exactly one pointer test per
//    operator — no clock reads, no allocation (pinned by
//    bench/abl_obs_overhead.cc's eval_bgp series).
//  - With a profile, the planner records per-pattern estimates, chosen
//    order and cardinality-probe counts; BGP evaluation records
//    per-pattern probes, rows scanned/emitted and inclusive wall time;
//    the SPARQL engine records parse/plan/eval phase times and
//    post-BGP operator row counts; pinned evaluation records the
//    generation-pin duration.
//  - A profile is single-query, single-thread state (plain fields, no
//    atomics). Cross-query aggregation happens in ProfileSink, whose
//    instruments are lock-free and shared-safe.
//
// docs/observability.md ("Query profiling") documents the schema, the
// q-error definition and the slow-query ring semantics.
#ifndef HEXASTORE_QUERY_PROFILE_H_
#define HEXASTORE_QUERY_PROFILE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "query/planner.h"

namespace hexastore {

/// Query classes with dedicated latency histograms and slow-query
/// tagging. Values mirror obs::kSlowQueryKind* (the log stores the raw
/// integer).
enum class QueryKind : std::uint8_t {
  kBgp = obs::kSlowQueryKindBgp,
  kPath = obs::kSlowQueryKindPath,
  kSparql = obs::kSlowQueryKindSparql,
};

/// Stable lowercase name ("bgp", "path", "sparql").
const char* QueryKindName(QueryKind kind);

/// q-error of an estimate against an observed (average) cardinality:
/// max(est/act, act/est) with both sides clamped to >= 1, so a perfect
/// estimate — including "0 expected, 0 seen" — reports exactly 1.
double QError(double estimated, double actual);

/// One BGP pattern in plan order: the planner's view (estimate, index
/// choice, bound positions at pick time) plus the evaluator's actuals.
struct PatternProfile {
  std::size_t pattern_index = 0;  ///< position in the source BGP
  std::string text;               ///< rendered pattern, e.g. "(?x <p> ?y)"
  std::string index;              ///< permutation index serving the probes
  std::uint64_t estimated = 0;    ///< planner estimate when picked
  int bound_at_pick = 0;          ///< constant+bound positions when picked
  bool connected = true;          ///< shared a bound variable when picked

  // Actuals (profiled evaluation / EXPLAIN ANALYZE). wall_ns is
  // inclusive of deeper patterns; self time is wall_ns minus the next
  // pattern's wall_ns (all deeper scans nest inside this one).
  std::uint64_t probes = 0;        ///< index scans issued at this depth
  std::uint64_t rows_scanned = 0;  ///< triples the scans produced
  std::uint64_t rows_emitted = 0;  ///< rows surviving the join filter
  std::uint64_t wall_ns = 0;       ///< inclusive wall time at this depth

  /// Average rows emitted per probe (what the estimate predicts).
  double ActualPerProbe() const;
  /// q-error of `estimated` against ActualPerProbe().
  double QErrorValue() const { return QError(static_cast<double>(estimated),
                                             ActualPerProbe()); }
};

/// One non-pattern operator (merge join, path step, filter, modifier).
struct OperatorProfile {
  const char* name = "";  ///< static literal, e.g. "filter", "join_chain"
  std::uint64_t rows_in = 0;
  std::uint64_t rows_out = 0;
  std::uint64_t wall_ns = 0;
};

/// The per-query collection object. Plain single-thread state; reuse
/// across queries via Reset().
struct QueryProfile {
  QueryKind kind = QueryKind::kBgp;

  // Phase wall times (nanoseconds).
  std::uint64_t parse_ns = 0;
  std::uint64_t plan_ns = 0;
  std::uint64_t eval_ns = 0;
  std::uint64_t pin_ns = 0;    ///< generation held pinned (0 = unpinned)
  std::uint64_t total_ns = 0;

  // Planner accounting (the memoization satellite's pin).
  std::uint64_t estimate_probes = 0;  ///< EstimateCardinality store probes
  std::uint64_t memo_hits = 0;        ///< estimates served from the memo

  std::uint64_t rows_out = 0;

  // Per-query deadline (the PR-9 server's admission contract). The
  // profiled evaluation path checks the clock it already reads at every
  // operator boundary — each BGP probe and each solution-modifier stage
  // — against `deadline_ns` (an absolute obs::NowNanos() instant; 0
  // disables the check) and unwinds by setting `deadline_exceeded`
  // instead of descending further. The nullptr-profile path stays
  // byte-identical, so deadlines require profiled execution (Session
  // always profiles).
  std::uint64_t deadline_ns = 0;   ///< absolute cutoff; 0 = no deadline
  bool deadline_exceeded = false;  ///< evaluation stopped at the cutoff

  std::vector<PatternProfile> patterns;    ///< in chosen plan order
  std::vector<OperatorProfile> operators;  ///< in execution order

  /// Worst per-pattern q-error (1.0 when no pattern has actuals).
  double MaxQError() const;
  /// Sum of rows_scanned over all patterns and operator rows_in.
  std::uint64_t TotalRowsScanned() const;
  /// Clears everything for reuse.
  void Reset();
};

/// Aggregation target for finished profiles: three query-class latency
/// histograms (hexa_query_{bgp,path,sparql}_latency_ns) plus the
/// slow-query ring. Instruments are lock-free; one sink may serve
/// concurrent query threads.
class ProfileSink {
 public:
  /// `slow_threshold_ns` overrides the HEXA_SLOW_QUERY_US environment
  /// threshold (tests pass 0 to capture everything deterministically).
  explicit ProfileSink(
      std::optional<std::uint64_t> slow_threshold_ns = std::nullopt,
      std::size_t slow_capacity = 64);

  /// Registers the class histograms with `registry` under hexa_query_*
  /// names and attaches the slow-query log to the registry's JSON
  /// export. The sink must outlive the registry's last render (declare
  /// the sink before the store/registry owner, or detach first).
  void RegisterWith(obs::MetricsRegistry* registry);

  /// Records one finished query: class histogram always, slow-query
  /// ring when profile.total_ns >= slow_threshold_ns. `query_text` is
  /// truncated into the ring slot.
  void Record(const QueryProfile& profile, std::string_view query_text);

  obs::LatencyHistogram* histogram(QueryKind kind);
  const obs::SlowQueryLog& slow_queries() const { return slow_; }
  std::uint64_t slow_threshold_ns() const { return slow_threshold_ns_; }

 private:
  obs::LatencyHistogram bgp_ns_{0};
  obs::LatencyHistogram path_ns_{0};
  obs::LatencyHistogram sparql_ns_{0};
  obs::SlowQueryLog slow_;
  std::uint64_t slow_threshold_ns_;
};

/// Copies a finished PlanProfile into `profile->patterns` (in plan
/// order), rendering each pattern's text against `dict`/`bgp.vars` and
/// naming the permutation index its probes will use. Also transfers the
/// planner's estimate-probe accounting.
void AttachPlan(const CompiledBgp& bgp, const Dictionary& dict,
                const PlanProfile& plan, QueryProfile* profile);

/// EXPLAIN for a BGP: compiles and plans `patterns` without evaluating
/// them, and returns the rendered plan tree. Deterministic for a given
/// store state (golden-tested in planner_test).
std::string ExplainBgp(const TripleStore& store, const Dictionary& dict,
                       const std::vector<TriplePattern>& patterns);

/// EXPLAIN ANALYZE for a BGP: plans AND evaluates `patterns`, returning
/// the plan annotated with actual probes/rows/q-error/timings. The
/// result rows are discarded; pass `profile` to also keep the raw
/// numbers (e.g. for sink recording or assertions).
std::string ExplainAnalyzeBgp(const TripleStore& store,
                              const Dictionary& dict,
                              const std::vector<TriplePattern>& patterns,
                              QueryProfile* profile = nullptr);

/// Renders a profile as the EXPLAIN plan tree (plan-time facts only:
/// pattern order, index choice, bound positions, estimates, probe
/// counts — no timings, so the text is stable across runs and golden-
/// testable).
std::string RenderExplain(const QueryProfile& profile);

/// Renders the EXPLAIN ANALYZE report: the plan tree annotated with
/// per-pattern actuals (probes, rows, q-error, inclusive/self wall
/// time), the operator list, and the phase breakdown.
std::string RenderExplainAnalyze(const QueryProfile& profile);

/// Renders a slow-query log snapshot as a human-readable table
/// (hexastore_cli --slow-queries).
std::string FormatSlowQueries(const obs::SlowQueryLog& log);

}  // namespace hexastore

#endif  // HEXASTORE_QUERY_PROFILE_H_

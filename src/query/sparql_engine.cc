#include "query/sparql_engine.h"

#include "query/bgp.h"
#include "query/session.h"

namespace hexastore {

Result<ResultSet> ExecuteSparql(const TripleStore& store,
                                const Dictionary& dict,
                                const ParsedQuery& query,
                                QueryProfile* profile) {
  // Thin shim over the Session pipeline: no plan cache, no deadline, no
  // pinning — exactly the pre-Session behavior (and byte-identical
  // execution with profile == nullptr).
  return query::internal::ExecuteSparqlPipeline(
      store, dict, query, profile, /*cache=*/nullptr, PlanCacheStamp{},
      /*from_cache=*/nullptr);
}

Result<ResultSet> RunSparql(const TripleStore& store, const Dictionary& dict,
                            std::string_view text, QueryProfile* profile) {
  if (profile == nullptr) {
    auto parsed = ParseSparql(text);
    if (!parsed.ok()) {
      return parsed.status();
    }
    return ExecuteSparql(store, dict, parsed.value());
  }
  profile->kind = QueryKind::kSparql;
  const std::uint64_t parse_start = obs::NowNanos();
  auto parsed = ParseSparql(text);
  profile->parse_ns += obs::NowNanos() - parse_start;
  if (!parsed.ok()) {
    return parsed.status();
  }
  return ExecuteSparql(store, dict, parsed.value(), profile);
}

Result<std::string> ExplainSparql(const TripleStore& store,
                                  const Dictionary& dict,
                                  std::string_view text) {
  auto parsed = ParseSparql(text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const ParsedQuery& query = parsed.value();
  CompiledBgp bgp = CompileBgp(query.patterns, dict);
  std::string out;
  if (bgp.trivially_empty) {
    out = "plan: sparql, empty result (constant term not in dictionary)\n";
  } else {
    PlanProfile plan;
    PlanBgp(store, bgp, &plan);
    QueryProfile profile;
    profile.kind = QueryKind::kSparql;
    AttachPlan(bgp, dict, plan, &profile);
    out = RenderExplain(profile);
  }
  // Solution-modifier stages in the order the pipeline applies them.
  std::string stages;
  if (!query.filters.empty()) stages += " filter";
  if (!query.aggregates.empty() || !query.group_by.empty()) {
    stages += " aggregate";
    if (!query.order_by.empty()) stages += " order_by";
    if (query.limit.has_value()) stages += " limit";
  } else {
    if (!query.order_by.empty()) stages += " order_by";
    if (!query.select_vars.empty()) stages += " project";
    if (query.distinct) stages += " distinct";
    if (query.limit.has_value()) stages += " limit";
  }
  if (!stages.empty()) {
    out += "modifiers:" + stages + "\n";
  }
  return out;
}

Result<std::string> ExplainAnalyzeSparql(const TripleStore& store,
                                         const Dictionary& dict,
                                         std::string_view text,
                                         QueryProfile* profile) {
  QueryProfile local;
  QueryProfile* p = profile != nullptr ? profile : &local;
  p->Reset();
  auto result = RunSparql(store, dict, text, p);
  if (!result.ok()) {
    return result.status();
  }
  return RenderExplainAnalyze(*p);
}

}  // namespace hexastore

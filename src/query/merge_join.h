// Dedicated merge-join operators over Hexastore sorted vectors.
//
// These implement the paper's §4.2 claim directly: "a sorted order of all
// resources associated to any other single resource, or pair of
// resources, is materialized in a Hexastore. In consequence, every
// pairwise join that needs to be performed during the first step of query
// processing in a Hexastore is a fast, linear-time merge-join."
//
// The generic BGP evaluator reaches the same answers via index-nested
// loops; these operators are the explicit merge-join physical plans for
// the common two-pattern shapes, used by applications that want the
// guaranteed linear behaviour (and by tests that verify the equivalence).
#ifndef HEXASTORE_QUERY_MERGE_JOIN_H_
#define HEXASTORE_QUERY_MERGE_JOIN_H_

#include <utility>
#include <vector>

#include "core/hexastore.h"
#include "delta/delta_hexastore.h"
#include "index/sorted_vec.h"
#include "query/profile.h"

namespace hexastore {

// Every join takes an optional trailing `QueryProfile*`. When non-null,
// the join appends one OperatorProfile (name, rows_out, wall time; the
// merged input sizes are not separately tracked, so rows_in stays 0) and
// folds its wall time into the profile's eval/total phases. With nullptr
// no timing code runs.

/// ?x with (?x, p1, o1) and (?x, p2, o2): one linear merge of two shared
/// s(p, o) subject lists (e.g. "all people involved in both of two
/// particular university courses", §4.2).
IdVec JoinSubjectsByObjects(const Hexastore& store, Id p1, Id o1, Id p2,
                            Id o2,
                            QueryProfile* profile = nullptr);

/// ?x with (s1, p1, ?x) and (s2, p2, ?x): merge of two o(s, p) object
/// lists.
IdVec JoinObjectsBySubjects(const Hexastore& store, Id s1, Id p1, Id s2,
                            Id p2,
                            QueryProfile* profile = nullptr);

/// ?x related to both o1 and o2 by *any* property: merge of two osp
/// subject vectors (the paper's flagship example of a query that
/// property-oriented stores cannot serve without touching every table).
IdVec JoinSubjectsOfObjects(const Hexastore& store, Id o1, Id o2,
                            QueryProfile* profile = nullptr);

/// ?p with (s1, ?p, o1) and (s2, ?p, o2): merge of two p(s, o) predicate
/// lists — "people who have the same relationship to Stanford as a
/// certain person has to Yale" (Figure 1b) factors through this join.
IdVec JoinPredicatesByPairs(const Hexastore& store, Id s1, Id o1, Id s2,
                            Id o2,
                            QueryProfile* profile = nullptr);

/// (?x, ?y) with (?x, p1, ?y-ish) chain (?x, p1, ?m), (?m, p2, ?y): the
/// subject-object join at the heart of path expressions; first join is a
/// linear merge of the pos object vector of p1 with the pso subject
/// vector of p2 (§4.3).
std::vector<std::pair<Id, Id>> JoinChain(const Hexastore& store, Id p1,
                                         Id p2,
                                         QueryProfile* profile = nullptr);

// -- DeltaHexastore overloads ---------------------------------------------
// Same joins over the delta-layered store: each sorted input is a
// MergedList — the zero-copy cursor base ∪ staged adds ∖ tombstones when
// only the active layer exists, or a materialized view of the full level
// chain (active ▷ L0 runs ▷ L1 ▷ base, docs/delta-levels.md) when sealed
// runs are present — so the joins stay linear merges mid-delta at any
// level shape.

IdVec JoinSubjectsByObjects(const DeltaHexastore& store, Id p1, Id o1,
                            Id p2, Id o2,
                            QueryProfile* profile = nullptr);
IdVec JoinObjectsBySubjects(const DeltaHexastore& store, Id s1, Id p1,
                            Id s2, Id p2,
                            QueryProfile* profile = nullptr);
IdVec JoinSubjectsOfObjects(const DeltaHexastore& store, Id o1, Id o2,
                            QueryProfile* profile = nullptr);
IdVec JoinPredicatesByPairs(const DeltaHexastore& store, Id s1, Id o1,
                            Id s2, Id o2,
                            QueryProfile* profile = nullptr);
std::vector<std::pair<Id, Id>> JoinChain(const DeltaHexastore& store,
                                         Id p1, Id p2,
                                         QueryProfile* profile = nullptr);

// -- Pinned-generation overloads ------------------------------------------
// Same joins over one DeltaHexastore::Snapshot: every input list comes
// from the single generation the handle pins, so a join never blocks on
// the store mutex and never straddles a compaction — take the handle
// once (GetSnapshot() or the wait-free AcquireReadHandle()) and run the
// whole join plan against it.

IdVec JoinSubjectsByObjects(const DeltaHexastore::Snapshot& snap, Id p1,
                            Id o1, Id p2, Id o2,
                            QueryProfile* profile = nullptr);
IdVec JoinObjectsBySubjects(const DeltaHexastore::Snapshot& snap, Id s1,
                            Id p1, Id s2, Id p2,
                            QueryProfile* profile = nullptr);
IdVec JoinSubjectsOfObjects(const DeltaHexastore::Snapshot& snap, Id o1,
                            Id o2,
                            QueryProfile* profile = nullptr);
IdVec JoinPredicatesByPairs(const DeltaHexastore::Snapshot& snap, Id s1,
                            Id o1, Id s2, Id o2,
                            QueryProfile* profile = nullptr);
std::vector<std::pair<Id, Id>> JoinChain(
    const DeltaHexastore::Snapshot& snap, Id p1, Id p2,
    QueryProfile* profile = nullptr);

}  // namespace hexastore

#endif  // HEXASTORE_QUERY_MERGE_JOIN_H_

// Normalized-BGP plan cache with staged-op-aware invalidation.
//
// The cache maps the *shape* of a basic graph pattern — variables
// renamed positionally, constants reduced to their dictionary ids — to
// the join order the planner chose for it, so a repeated query template
// skips the greedy planning loop entirely. Because CompileBgp interns
// variables in first-seen order, two textually different queries with
// the same pattern shape compile to identical slot indices and share one
// cache entry ("?x ?y" vs "?a ?b" is the same plan).
//
// Validity contract (the PR-8 q-error groundwork): an entry records the
// per-pattern constant-projection cardinality estimates it was planned
// against, plus the staged-op count and publication epoch of the store
// at plan time. A lookup first compares those cheap freshness stamps —
// unchanged stamps mean nothing could have moved the estimates, and the
// entry is served with zero store probes. When the stamps drifted (ops
// staged, a merge published, an ErasePattern landed), the lookup
// re-probes each pattern's estimate against the caller's store — for a
// pinned Snapshot that is wait-free — and keeps the plan only while
// every estimate's q-error against the recorded one stays within
// `q_error_threshold`; past it the entry counts an invalidation and the
// BGP is re-planned against current cardinalities. Results are never
// affected either way (any join order is correct — planner_test pins
// that); only plan *quality* is at stake, which is why a drift check at
// estimate granularity is sufficient.
//
// Thread-safety: all members are safe from any thread. The map and LRU
// list serialize on one mutex held only for hash-map operations;
// validation probes run outside it. Counters are lock-free and register
// into a MetricsRegistry as hexa_plan_cache_*.
#ifndef HEXASTORE_QUERY_PLAN_CACHE_H_
#define HEXASTORE_QUERY_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/store_interface.h"
#include "obs/metrics.h"
#include "query/pattern.h"
#include "query/planner.h"

namespace hexastore {

/// Construction-time configuration of a PlanCache.
struct PlanCacheOptions {
  /// Maximum cached plans; least-recently-used entries are evicted past
  /// it. 0 is clamped to 1.
  std::size_t capacity = 256;
  /// An entry is invalidated when any pattern's current estimate drifts
  /// from the recorded one by more than this q-error factor
  /// (max(new/old, old/new) with both clamped to >= 1). Must be >= 1;
  /// invalid values are clamped back to the default 2.0.
  double q_error_threshold = 2.0;
};

/// Freshness stamps of the store a plan was made against. Equal stamps
/// mean no mutation or merge happened in between, so cached estimates
/// are exact and validation probes can be skipped entirely.
///
/// The stamp is a vector so one type covers every store shape: a single
/// DeltaHexastore contributes one (epoch, staged_ops) pair, a
/// ShardedHexastore concatenates the pairs of all its shards in shard
/// order (ShardedSnapshot::StampVector) — any shard mutating or merging
/// changes its slice and flips the comparison, exactly like the
/// single-store case. The cache itself only copies and compares stamps,
/// so the width never matters to it.
struct PlanCacheStamp {
  PlanCacheStamp() = default;
  /// Single-store stamp: publication epoch + ops staged on top of it.
  PlanCacheStamp(std::uint64_t epoch, std::uint64_t staged_ops)
      : parts{epoch, staged_ops} {}
  /// Multi-shard stamp (per-shard pairs, concatenated in shard order).
  explicit PlanCacheStamp(std::vector<std::uint64_t> stamp_parts)
      : parts(std::move(stamp_parts)) {}

  std::vector<std::uint64_t> parts;

  friend bool operator==(const PlanCacheStamp&,
                         const PlanCacheStamp&) = default;
};

/// Shared, thread-safe cache of planned join orders keyed on normalized
/// BGP shape. One instance serves every Session of a store (the server
/// shares one across all worker threads).
class PlanCache {
 public:
  explicit PlanCache(PlanCacheOptions options = {});

  /// Canonical key of a compiled BGP: pattern count, then per pattern
  /// the three slots as `v<var-index>` / `c<constant-id>`. Variable
  /// indices are positional by construction (CompileBgp interns in
  /// first-seen order), constants are dictionary ids.
  static std::string CanonicalKey(const CompiledBgp& bgp);

  /// Returns a join order for `bgp`, from the cache when a valid entry
  /// exists, else freshly planned (and stored). `store` is the store
  /// the query will actually scan — pass the pinned Snapshot so
  /// validation probes and replanning are wait-free and consistent with
  /// evaluation. `stamp` carries the store's current freshness stamps
  /// (see SessionStamp helpers in session.h; pass {} to force
  /// estimate-probe validation). `profile`, when non-null, receives the
  /// plan steps (fresh plan) or the reconstructed cached steps plus the
  /// validation probe count.
  std::vector<std::size_t> Plan(const TripleStore& store,
                                const CompiledBgp& bgp,
                                const PlanCacheStamp& stamp,
                                PlanProfile* profile = nullptr,
                                bool* was_hit = nullptr);

  /// Registers hits/misses/invalidations/evictions counters and the
  /// entries gauge with `registry` (hexa_plan_cache_* names). The cache
  /// must outlive the registry's last render.
  void RegisterWith(obs::MetricsRegistry* registry);

  /// Drops every entry (tests; also useful after Clear/BulkLoad storms).
  void Clear();

  std::size_t size() const;
  std::uint64_t hits() const { return hits_.Value(); }
  std::uint64_t misses() const { return misses_.Value(); }
  std::uint64_t invalidations() const { return invalidations_.Value(); }
  std::uint64_t evictions() const { return evictions_.Value(); }
  double q_error_threshold() const { return options_.q_error_threshold; }

 private:
  struct Entry {
    std::vector<std::size_t> order;
    /// Constant-projection estimate per source pattern (bgp order, not
    /// plan order) at plan time.
    std::vector<std::uint64_t> estimates;
    PlanCacheStamp stamp;
    /// Position in lru_ (front = most recently used).
    std::list<std::string>::iterator lru_it;
  };

  // Constant-projection estimates of every pattern against `store` (one
  // EstimateMatches probe each; the planner's bound-var heuristics do
  // not apply — these are the drift detectors, not pick costs).
  static std::vector<std::uint64_t> ProbeEstimates(const TripleStore& store,
                                                   const CompiledBgp& bgp);

  PlanCacheOptions options_;

  mutable std::mutex mu_;
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, Entry> entries_;

  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter invalidations_;
  obs::Counter evictions_;
  obs::Gauge size_;
};

}  // namespace hexastore

#endif  // HEXASTORE_QUERY_PLAN_CACHE_H_

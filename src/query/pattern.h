// Term-level triple patterns with variables, and their compiled id-level
// form used by the BGP evaluator.
#ifndef HEXASTORE_QUERY_PATTERN_H_
#define HEXASTORE_QUERY_PATTERN_H_

#include <string>
#include <vector>

#include "dict/dictionary.h"
#include "rdf/term.h"
#include "rdf/triple.h"
#include "util/common.h"

namespace hexastore {

/// Index of a variable within a query's variable table.
using VarId = int;

/// Marks a pattern slot as constant (no variable).
inline constexpr VarId kNoVar = -1;

/// One position of a triple pattern: either a bound Term or a variable.
class PatternTerm {
 public:
  /// Creates a bound (constant) slot.
  static PatternTerm Bound(Term term) {
    PatternTerm p;
    p.term_ = std::move(term);
    p.is_var_ = false;
    return p;
  }
  /// Creates a variable slot named `name` (without the '?').
  static PatternTerm Variable(std::string name) {
    PatternTerm p;
    p.var_ = std::move(name);
    p.is_var_ = true;
    return p;
  }

  /// True iff the slot is a variable.
  bool is_var() const { return is_var_; }
  /// The bound term; requires !is_var().
  const Term& term() const { return term_; }
  /// The variable name; requires is_var().
  const std::string& var() const { return var_; }

  friend bool operator==(const PatternTerm&, const PatternTerm&) = default;

 private:
  Term term_;
  std::string var_;
  bool is_var_ = false;
};

/// A term-level triple pattern (the unit of a basic graph pattern).
struct TriplePattern {
  PatternTerm s;
  PatternTerm p;
  PatternTerm o;

  friend bool operator==(const TriplePattern&,
                         const TriplePattern&) = default;
};

/// Maps variable names to dense VarIds in first-seen order.
class VarTable {
 public:
  /// Returns the id for `name`, creating it if new.
  VarId Intern(const std::string& name);
  /// Returns the id for `name` or kNoVar if unknown.
  VarId Lookup(const std::string& name) const;
  /// Name of a variable id.
  const std::string& name(VarId v) const { return names_[v]; }
  /// Number of variables.
  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
};

/// One compiled slot: either a constant id or a variable index.
struct Slot {
  Id id = kInvalidId;   ///< constant id; kInvalidId when variable
  VarId var = kNoVar;   ///< variable index; kNoVar when constant

  bool is_var() const { return var != kNoVar; }
};

/// Compiled triple pattern over dictionary ids.
struct CompiledPattern {
  Slot s;
  Slot p;
  Slot o;

  /// Number of constant slots.
  int bound_count() const {
    return static_cast<int>(!s.is_var()) + static_cast<int>(!p.is_var()) +
           static_cast<int>(!o.is_var());
  }
};

/// Outcome of compiling a pattern set against a dictionary.
struct CompiledBgp {
  std::vector<CompiledPattern> patterns;
  VarTable vars;
  /// True when some constant term does not exist in the dictionary; the
  /// whole BGP then has an empty result and need not be evaluated.
  bool trivially_empty = false;
};

/// Compiles term-level patterns to id-level. Constants are looked up (not
/// interned) in `dict`; unseen constants mark the BGP trivially empty.
CompiledBgp CompileBgp(const std::vector<TriplePattern>& patterns,
                       const Dictionary& dict);

}  // namespace hexastore

#endif  // HEXASTORE_QUERY_PATTERN_H_

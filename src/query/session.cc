#include "query/session.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "query/bgp.h"
#include "query/operators.h"
#include "query/planner.h"
#include "query/sparql_engine.h"

namespace hexastore {
namespace query {

namespace {

// Resolves a filter operand to a term spelling under a row. Returns false
// when the operand references an unbound/unknown variable (filter then
// rejects the row, matching SPARQL's error-as-false semantics).
bool ResolveOperand(const FilterOperand& operand, const ResultSet& result,
                    const Row& row, const Dictionary& dict,
                    std::string* out) {
  if (!operand.is_var) {
    *out = operand.term.ToNTriples();
    return true;
  }
  VarId col = result.vars.Lookup(operand.var);
  if (col == kNoVar) {
    return false;
  }
  Id id = row[static_cast<std::size_t>(col)];
  auto term = dict.TryTerm(id);
  if (!term.has_value()) {
    return false;
  }
  *out = term->ToNTriples();
  return true;
}

bool ApplyOp(FilterOp op, const std::string& lhs, const std::string& rhs) {
  switch (op) {
    case FilterOp::kEq:
      return lhs == rhs;
    case FilterOp::kNe:
      return lhs != rhs;
    case FilterOp::kLt:
      return lhs < rhs;
    case FilterOp::kLe:
      return lhs <= rhs;
    case FilterOp::kGt:
      return lhs > rhs;
    case FilterOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

// Sorts rows by the named columns; numeric columns compare as integers,
// term columns by their N-Triples spelling.
Status SortByColumns(ResultSet* result, const Dictionary& dict,
                     const std::vector<std::string>& names) {
  std::vector<VarId> cols;
  for (const auto& name : names) {
    VarId col = result->vars.Lookup(name);
    if (col == kNoVar) {
      return Status::InvalidArgument("ORDER BY unknown variable ?" + name);
    }
    cols.push_back(col);
  }
  std::stable_sort(
      result->rows.begin(), result->rows.end(),
      [&](const Row& a, const Row& b) {
        for (VarId c : cols) {
          auto i = static_cast<std::size_t>(c);
          if (result->IsNumeric(c)) {
            if (a[i] != b[i]) {
              return a[i] < b[i];
            }
            continue;
          }
          auto ta = dict.TryTerm(a[i]);
          auto tb = dict.TryTerm(b[i]);
          std::string sa = ta.has_value() ? ta->ToNTriples() : "";
          std::string sb = tb.has_value() ? tb->ToNTriples() : "";
          if (sa != sb) {
            return sa < sb;
          }
        }
        return false;
      });
  return Status::OK();
}

// Evaluates GROUP BY + COUNT aggregates over the solution rows. Output
// columns are the plain select vars followed by the aggregate aliases.
Result<ResultSet> Aggregate(const ResultSet& in, const ParsedQuery& query) {
  // Validate: plain select vars must be grouped.
  for (const auto& v : query.select_vars) {
    if (std::find(query.group_by.begin(), query.group_by.end(), v) ==
        query.group_by.end()) {
      return Status::InvalidArgument(
          "SELECT variable ?" + v + " must appear in GROUP BY");
    }
  }
  std::vector<VarId> group_cols;
  for (const auto& v : query.group_by) {
    VarId col = in.vars.Lookup(v);
    if (col == kNoVar) {
      return Status::InvalidArgument("GROUP BY unknown variable ?" + v);
    }
    group_cols.push_back(col);
  }
  struct GroupState {
    Row key;
    std::vector<std::uint64_t> plain_counts;
    std::vector<std::set<Id>> distinct_values;
  };
  std::map<Row, GroupState> groups;

  std::vector<VarId> agg_cols;
  for (const auto& agg : query.aggregates) {
    if (agg.var.empty()) {
      agg_cols.push_back(kNoVar);  // COUNT(*)
      continue;
    }
    VarId col = in.vars.Lookup(agg.var);
    if (col == kNoVar) {
      return Status::InvalidArgument("COUNT of unknown variable ?" +
                                     agg.var);
    }
    agg_cols.push_back(col);
  }

  for (const Row& row : in.rows) {
    Row key;
    key.reserve(group_cols.size());
    for (VarId c : group_cols) {
      key.push_back(row[static_cast<std::size_t>(c)]);
    }
    GroupState& state = groups[key];
    if (state.plain_counts.empty()) {
      state.key = key;
      state.plain_counts.assign(query.aggregates.size(), 0);
      state.distinct_values.assign(query.aggregates.size(), {});
    }
    for (std::size_t a = 0; a < query.aggregates.size(); ++a) {
      const SelectAggregate& agg = query.aggregates[a];
      const Id value = (agg_cols[a] == kNoVar)
                           ? kInvalidId
                           : row[static_cast<std::size_t>(agg_cols[a])];
      if (agg.distinct && agg_cols[a] != kNoVar) {
        state.distinct_values[a].insert(value);
      } else {
        ++state.plain_counts[a];
      }
    }
  }
  // SPARQL semantics: with no GROUP BY, aggregation over zero rows still
  // yields one all-zero group.
  if (groups.empty() && query.group_by.empty()) {
    GroupState empty;
    empty.plain_counts.assign(query.aggregates.size(), 0);
    empty.distinct_values.assign(query.aggregates.size(), {});
    groups[{}] = std::move(empty);
  }

  ResultSet out;
  // Output vars: plain select vars, then aliases.
  std::vector<VarId> select_cols;
  for (const auto& v : query.select_vars) {
    select_cols.push_back(in.vars.Lookup(v));
    out.vars.Intern(v);
    out.numeric.push_back(false);
  }
  for (const auto& agg : query.aggregates) {
    out.vars.Intern(agg.alias);
    out.numeric.push_back(true);
  }
  // Map each select var to its position in the group key.
  std::vector<std::size_t> select_key_pos;
  for (const auto& v : query.select_vars) {
    auto it = std::find(query.group_by.begin(), query.group_by.end(), v);
    select_key_pos.push_back(
        static_cast<std::size_t>(it - query.group_by.begin()));
  }
  for (const auto& [key, state] : groups) {
    Row row;
    row.reserve(select_cols.size() + query.aggregates.size());
    for (std::size_t i = 0; i < query.select_vars.size(); ++i) {
      row.push_back(key[select_key_pos[i]]);
    }
    for (std::size_t a = 0; a < query.aggregates.size(); ++a) {
      const SelectAggregate& agg = query.aggregates[a];
      if (agg.distinct && agg_cols[a] != kNoVar) {
        row.push_back(state.distinct_values[a].size());
      } else {
        row.push_back(state.plain_counts[a]);
      }
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

// True when the profile carries an expired deadline; sets the flag so
// every later boundary short-circuits without another clock read.
bool DeadlineHit(QueryProfile* profile) {
  if (profile == nullptr || profile->deadline_ns == 0) {
    return false;
  }
  if (profile->deadline_exceeded) {
    return true;
  }
  if (obs::NowNanos() >= profile->deadline_ns) {
    profile->deadline_exceeded = true;
    return true;
  }
  return false;
}

}  // namespace

namespace internal {

ResultSet EvalBgpMaybeCached(const TripleStore& store,
                             const Dictionary& dict,
                             const std::vector<TriplePattern>& patterns,
                             QueryProfile* profile, PlanCache* cache,
                             const PlanCacheStamp& stamp, bool* from_cache) {
  if (from_cache != nullptr) {
    *from_cache = false;
  }
  if (cache == nullptr) {
    // Legacy path, bit-for-bit: EvalBgp owns compile+plan+eval.
    return hexastore::EvalBgp(store, dict, patterns, profile);
  }
  CompiledBgp bgp = CompileBgp(patterns, dict);
  ResultSet result;
  result.vars = bgp.vars;
  if (bgp.trivially_empty) {
    return result;
  }
  const BindingSink materialize = [&result](const Binding& b) {
    result.rows.push_back(b.values());
  };
  if (profile == nullptr) {
    std::vector<std::size_t> order =
        cache->Plan(store, bgp, stamp, nullptr, from_cache);
    hexastore::EvalBgp(store, bgp, order, materialize);
    return result;
  }
  PlanProfile plan;
  const std::uint64_t plan_start = obs::NowNanos();
  std::vector<std::size_t> order =
      cache->Plan(store, bgp, stamp, &plan, from_cache);
  profile->plan_ns += obs::NowNanos() - plan_start;
  AttachPlan(bgp, dict, plan, profile);
  const std::uint64_t eval_start = obs::NowNanos();
  hexastore::EvalBgp(store, bgp, order, materialize, profile);
  profile->eval_ns += obs::NowNanos() - eval_start;
  profile->rows_out += result.rows.size();
  profile->total_ns =
      profile->parse_ns + profile->plan_ns + profile->eval_ns;
  return result;
}

Result<ResultSet> ExecuteSparqlPipeline(const TripleStore& store,
                                        const Dictionary& dict,
                                        const ParsedQuery& query,
                                        QueryProfile* profile,
                                        PlanCache* cache,
                                        const PlanCacheStamp& stamp,
                                        bool* from_cache) {
  // Records one solution-modifier stage; modifier time counts toward the
  // eval phase (everything after parse+plan).
  auto record_op = [&](const char* name, std::uint64_t rows_in,
                       std::uint64_t rows_out, std::uint64_t start_ns) {
    if (profile == nullptr) return;
    OperatorProfile op;
    op.name = name;
    op.rows_in = rows_in;
    op.rows_out = rows_out;
    op.wall_ns = obs::NowNanos() - start_ns;
    profile->eval_ns += op.wall_ns;
    profile->operators.push_back(op);
  };
  auto op_start = [&]() -> std::uint64_t {
    return profile != nullptr ? obs::NowNanos() : 0;
  };
  auto finish = [&](const ResultSet& r) {
    if (profile == nullptr) return;
    profile->rows_out = r.rows.size();
    profile->total_ns =
        profile->parse_ns + profile->plan_ns + profile->eval_ns;
  };

  ResultSet result = EvalBgpMaybeCached(store, dict, query.patterns,
                                        profile, cache, stamp, from_cache);

  // A blown deadline stops the pipeline at the next operator boundary;
  // the Session surfaces it as DeadlineExceeded (partial rows are never
  // returned to callers).
  if (DeadlineHit(profile)) {
    finish(result);
    return result;
  }

  // Filters.
  if (!query.filters.empty()) {
    const std::uint64_t t = op_start();
    const std::uint64_t in_rows = result.rows.size();
    std::vector<Row> kept;
    kept.reserve(result.rows.size());
    for (const Row& row : result.rows) {
      bool pass = true;
      for (const FilterExpr& f : query.filters) {
        std::string lhs;
        std::string rhs;
        if (!ResolveOperand(f.lhs, result, row, dict, &lhs) ||
            !ResolveOperand(f.rhs, result, row, dict, &rhs) ||
            !ApplyOp(f.op, lhs, rhs)) {
          pass = false;
          break;
        }
      }
      if (pass) {
        kept.push_back(row);
      }
    }
    result.rows = std::move(kept);
    record_op("filter", in_rows, result.rows.size(), t);
    if (DeadlineHit(profile)) {
      finish(result);
      return result;
    }
  }

  // Aggregation replaces projection when present.
  if (!query.aggregates.empty() || !query.group_by.empty()) {
    const std::uint64_t t_agg = op_start();
    const std::uint64_t in_rows = result.rows.size();
    auto aggregated = Aggregate(result, query);
    if (!aggregated.ok()) {
      return aggregated.status();
    }
    result = std::move(aggregated).value();
    record_op("aggregate", in_rows, result.rows.size(), t_agg);
    if (!query.order_by.empty()) {
      const std::uint64_t t = op_start();
      Status s = SortByColumns(&result, dict, query.order_by);
      if (!s.ok()) {
        return s;
      }
      record_op("order_by", result.rows.size(), result.rows.size(), t);
    }
    if (query.limit.has_value()) {
      const std::uint64_t t = op_start();
      const std::uint64_t pre = result.rows.size();
      result = Limit(std::move(result), *query.limit);
      record_op("limit", pre, result.rows.size(), t);
    }
    finish(result);
    return result;
  }

  // ORDER BY (before projection so sort keys need not be projected).
  if (!query.order_by.empty()) {
    const std::uint64_t t = op_start();
    Status s = SortByColumns(&result, dict, query.order_by);
    if (!s.ok()) {
      return s;
    }
    record_op("order_by", result.rows.size(), result.rows.size(), t);
    if (DeadlineHit(profile)) {
      finish(result);
      return result;
    }
  }

  // Projection.
  if (!query.select_vars.empty()) {
    const std::uint64_t t = op_start();
    std::vector<VarId> cols;
    for (const auto& name : query.select_vars) {
      VarId col = result.vars.Lookup(name);
      if (col == kNoVar) {
        return Status::InvalidArgument("SELECT unknown variable ?" + name);
      }
      cols.push_back(col);
    }
    result = Project(result, cols);
    record_op("project", result.rows.size(), result.rows.size(), t);
  }

  if (query.distinct) {
    const std::uint64_t t = op_start();
    const std::uint64_t pre = result.rows.size();
    bool had_order = !query.order_by.empty();
    result = Distinct(std::move(result));
    // Distinct sorts by id; if the user asked for an order, re-sort on
    // the (now projected) columns that survived.
    if (had_order) {
      std::vector<std::string> survivors;
      for (const auto& name : query.order_by) {
        if (result.vars.Lookup(name) != kNoVar) {
          survivors.push_back(name);
        }
      }
      Status s = SortByColumns(&result, dict, survivors);
      if (!s.ok()) {
        return s;
      }
    }
    record_op("distinct", pre, result.rows.size(), t);
  }

  if (query.limit.has_value()) {
    const std::uint64_t t = op_start();
    const std::uint64_t pre = result.rows.size();
    result = Limit(std::move(result), *query.limit);
    record_op("limit", pre, result.rows.size(), t);
  }
  finish(result);
  return result;
}

}  // namespace internal

Session::Session(const DeltaHexastore& store, const Dictionary& dict,
                 SessionOptions options)
    : plain_(store), delta_(&store), dict_(dict), options_(options) {}

Session::Session(const ShardedHexastore& store, const Dictionary& dict,
                 SessionOptions options)
    : plain_(store),
      delta_(nullptr),
      sharded_(&store),
      dict_(dict),
      options_(options) {}

Session::Session(const TripleStore& store, const Dictionary& dict,
                 SessionOptions options)
    : plain_(store), delta_(nullptr), dict_(dict), options_(options) {
  options_.pin = PinPolicy::kNone;
}

Result<ResultSet> Session::Run(const ParsedQuery& query,
                               std::string_view text, bool* from_cache) {
  if (options_.deadline_ns != 0) {
    profile_.deadline_ns = obs::NowNanos() + options_.deadline_ns;
  }
  Result<ResultSet> result = Status::Internal("session: not executed");
  const bool pinned = (delta_ != nullptr || sharded_ != nullptr) &&
                      options_.pin != PinPolicy::kNone;
  if (pinned && sharded_ != nullptr) {
    const std::uint64_t pin_start = obs::NowNanos();
    {
      const ShardedSnapshot snap =
          options_.pin == PinPolicy::kLinearizable
              ? sharded_->GetSnapshot()
              : sharded_->AcquireReadHandle();
      const PlanCacheStamp stamp(snap.StampVector());
      result = internal::ExecuteSparqlPipeline(
          snap, dict_, query, &profile_, options_.plan_cache, stamp,
          from_cache);
    }
    profile_.pin_ns = obs::NowNanos() - pin_start;
    profile_.total_ns = profile_.parse_ns + profile_.pin_ns;
  } else if (pinned) {
    const std::uint64_t pin_start = obs::NowNanos();
    {
      const DeltaHexastore::Snapshot snap =
          options_.pin == PinPolicy::kLinearizable
              ? delta_->GetSnapshot()
              : delta_->AcquireReadHandle();
      const PlanCacheStamp stamp{snap.epoch(), snap.staged_ops()};
      result = internal::ExecuteSparqlPipeline(
          snap, dict_, query, &profile_, options_.plan_cache, stamp,
          from_cache);
    }
    profile_.pin_ns = obs::NowNanos() - pin_start;
    // Pin time encloses plan+eval, so total is parse + pin (the
    // EvalBgpPinned convention).
    profile_.total_ns = profile_.parse_ns + profile_.pin_ns;
  } else {
    // Unpinned stores have no epoch; the size doubles as a weak staged-
    // ops stamp (estimate probes catch what it misses).
    const PlanCacheStamp stamp{0, plain_.size()};
    result = internal::ExecuteSparqlPipeline(plain_, dict_, query,
                                             &profile_,
                                             options_.plan_cache, stamp,
                                             from_cache);
  }
  if (options_.sink != nullptr) {
    options_.sink->Record(profile_, text);
  }
  if (!result.ok()) {
    return result.status();
  }
  if (profile_.deadline_exceeded) {
    return Status::DeadlineExceeded(
        "query exceeded its deadline after " +
        std::to_string(profile_.total_ns / 1000000) + "ms");
  }
  return result;
}

Result<QueryResult> Session::Query(std::string_view text) {
  profile_.Reset();
  profile_.kind = QueryKind::kSparql;
  const std::uint64_t parse_start = obs::NowNanos();
  auto parsed = ParseSparql(text);
  profile_.parse_ns += obs::NowNanos() - parse_start;
  if (!parsed.ok()) {
    return parsed.status();
  }
  bool from_cache = false;
  auto result = Run(parsed.value(), text, &from_cache);
  if (!result.ok()) {
    return result.status();
  }
  QueryResult out;
  out.set = std::move(result).value();
  out.profile = profile_;
  out.from_plan_cache = from_cache;
  return out;
}

Result<QueryResult> Session::EvalBgp(
    const std::vector<TriplePattern>& patterns) {
  profile_.Reset();
  profile_.kind = QueryKind::kBgp;
  ParsedQuery query;
  query.patterns = patterns;
  bool from_cache = false;
  auto result = Run(query, "<bgp>", &from_cache);
  if (!result.ok()) {
    return result.status();
  }
  QueryResult out;
  out.set = std::move(result).value();
  out.profile = profile_;
  out.from_plan_cache = from_cache;
  return out;
}

Result<std::string> Session::Explain(std::string_view text) {
  // Plan against the same view a query would evaluate (pin policy
  // honored), but never through the plan cache: EXPLAIN output must be
  // deterministic for a given store state.
  if (sharded_ != nullptr && options_.pin != PinPolicy::kNone) {
    const ShardedSnapshot snap =
        options_.pin == PinPolicy::kLinearizable
            ? sharded_->GetSnapshot()
            : sharded_->AcquireReadHandle();
    return ExplainSparql(snap, dict_, text);
  }
  if (delta_ != nullptr && options_.pin != PinPolicy::kNone) {
    const DeltaHexastore::Snapshot snap =
        options_.pin == PinPolicy::kLinearizable
            ? delta_->GetSnapshot()
            : delta_->AcquireReadHandle();
    return ExplainSparql(snap, dict_, text);
  }
  return ExplainSparql(plain_, dict_, text);
}

Result<std::string> Session::ExplainAnalyze(std::string_view text) {
  auto result = Query(text);
  if (!result.ok() &&
      result.status().code() != StatusCode::kDeadlineExceeded) {
    return result.status();
  }
  // A deadline overrun still renders (the partial actuals are exactly
  // what the caller wants to see in that case).
  return RenderExplainAnalyze(profile_);
}

}  // namespace query
}  // namespace hexastore

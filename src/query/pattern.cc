#include "query/pattern.h"

namespace hexastore {

VarId VarTable::Intern(const std::string& name) {
  VarId existing = Lookup(name);
  if (existing != kNoVar) {
    return existing;
  }
  names_.push_back(name);
  return static_cast<VarId>(names_.size() - 1);
}

VarId VarTable::Lookup(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      return static_cast<VarId>(i);
    }
  }
  return kNoVar;
}

CompiledBgp CompileBgp(const std::vector<TriplePattern>& patterns,
                       const Dictionary& dict) {
  CompiledBgp out;
  auto compile_slot = [&](const PatternTerm& pt) {
    Slot slot;
    if (pt.is_var()) {
      slot.var = out.vars.Intern(pt.var());
    } else {
      slot.id = dict.Lookup(pt.term());
      if (slot.id == kInvalidId) {
        out.trivially_empty = true;
      }
    }
    return slot;
  };
  out.patterns.reserve(patterns.size());
  for (const auto& tp : patterns) {
    CompiledPattern cp;
    cp.s = compile_slot(tp.s);
    cp.p = compile_slot(tp.p);
    cp.o = compile_slot(tp.o);
    out.patterns.push_back(cp);
  }
  return out;
}

}  // namespace hexastore

// Recursive-descent parser for a SPARQL subset sufficient for the paper's
// workloads and the examples:
//
//   PREFIX ns: <iri>                       (any number)
//   SELECT [DISTINCT] (?v ... | *)
//   WHERE { triple ('.' triple)* [FILTER(expr)]* }
//   [ORDER BY ?v ...] [LIMIT n]
//
// Terms: <iri>, prefixed names (ns:local), ?vars, "literals" with optional
// @lang / ^^<datatype>, and the keyword `a` for rdf:type. Filters compare
// two operands (variable or constant) with = != < <= > >=; ordering
// comparisons use the term's N-Triples spelling.
#ifndef HEXASTORE_QUERY_SPARQL_PARSER_H_
#define HEXASTORE_QUERY_SPARQL_PARSER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "query/pattern.h"
#include "util/status.h"

namespace hexastore {

/// IRI that `a` abbreviates.
inline constexpr const char* kRdfTypeIri =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Filter comparison operators.
enum class FilterOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

/// One side of a filter comparison.
struct FilterOperand {
  bool is_var = false;
  std::string var;  ///< variable name when is_var
  Term term;        ///< constant otherwise
};

/// A FILTER(lhs op rhs) clause.
struct FilterExpr {
  FilterOperand lhs;
  FilterOp op = FilterOp::kEq;
  FilterOperand rhs;
};

/// A `(COUNT([DISTINCT] ?var | *) AS ?alias)` item in the SELECT clause.
struct SelectAggregate {
  bool distinct = false;
  /// Counted variable; empty means COUNT(*).
  std::string var;
  /// Output column name (without '?').
  std::string alias;
};

/// Parsed SELECT query.
struct ParsedQuery {
  bool distinct = false;
  /// Plain projection variables; empty together with empty `aggregates`
  /// means `*` (all variables in order of first appearance).
  std::vector<std::string> select_vars;
  /// COUNT aggregates; when non-empty the query is an aggregation and
  /// the output columns are `select_vars` followed by the aliases.
  std::vector<SelectAggregate> aggregates;
  /// GROUP BY variables; plain select_vars must be listed here when
  /// aggregates are present.
  std::vector<std::string> group_by;
  std::vector<TriplePattern> patterns;
  std::vector<FilterExpr> filters;
  std::vector<std::string> order_by;
  std::optional<std::size_t> limit;
};

/// Parses a query; returns ParseError with position info on failure.
Result<ParsedQuery> ParseSparql(std::string_view text);

}  // namespace hexastore

#endif  // HEXASTORE_QUERY_SPARQL_PARSER_H_

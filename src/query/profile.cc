#include "query/profile.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "query/bgp.h"

namespace hexastore {

namespace {

// Permutation index serving a probe with the given bound positions,
// mirroring Hexastore::Scan's dispatch (core/hexastore.cc).
const char* IndexChoiceName(bool bs, bool bp, bool bo) {
  if (bs && bp && bo) return "spo";
  if (bs && bp) return "spo";
  if (bs && bo) return "sop";
  if (bp && bo) return "pos";
  if (bs) return "spo";
  if (bp) return "pso";
  if (bo) return "osp";
  return "scan";
}

std::string RenderSlot(const Slot& slot, const CompiledBgp& bgp,
                       const Dictionary& dict) {
  if (slot.is_var()) {
    return "?" + bgp.vars.name(slot.var);
  }
  if (slot.id == kInvalidId || slot.id > dict.size()) {
    return "<unresolved>";
  }
  return dict.term(slot.id).ToNTriples();
}

void AppendFixed(std::string* out, const char* fmt, ...) {
  char buf[160];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
}

// "12.3us" style duration, stable width-free rendering for reports
// (never golden-tested; EXPLAIN output carries no durations).
std::string HumanNanos(std::uint64_t ns) {
  char buf[32];
  if (ns < 10'000) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "ns", ns);
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus",
                  static_cast<double>(ns) / 1e3);
  } else if (ns < 10'000'000'000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fms",
                  static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs",
                  static_cast<double>(ns) / 1e9);
  }
  return std::string(buf);
}

void AppendPlanLine(std::string* out, const PatternProfile& p,
                    std::size_t step) {
  AppendFixed(out, "  step %zu: pattern[%zu] ", step + 1, p.pattern_index);
  out->append(p.text);
  AppendFixed(out, "  index=%s bound=%d est=%" PRIu64, p.index.c_str(),
              p.bound_at_pick, p.estimated);
  if (!p.connected) {
    out->append(" DISCONNECTED");
  }
}

}  // namespace

const char* QueryKindName(QueryKind kind) {
  return obs::SlowQueryKindName(static_cast<std::uint8_t>(kind));
}

double QError(double estimated, double actual) {
  const double est = std::max(estimated, 1.0);
  const double act = std::max(actual, 1.0);
  return std::max(est / act, act / est);
}

double PatternProfile::ActualPerProbe() const {
  if (probes == 0) return 0.0;
  return static_cast<double>(rows_emitted) / static_cast<double>(probes);
}

double QueryProfile::MaxQError() const {
  double worst = 1.0;
  for (const PatternProfile& p : patterns) {
    if (p.probes == 0) continue;  // never evaluated (pruned above)
    worst = std::max(worst, p.QErrorValue());
  }
  return worst;
}

std::uint64_t QueryProfile::TotalRowsScanned() const {
  std::uint64_t total = 0;
  for (const PatternProfile& p : patterns) total += p.rows_scanned;
  return total;
}

void QueryProfile::Reset() {
  kind = QueryKind::kBgp;
  parse_ns = plan_ns = eval_ns = pin_ns = total_ns = 0;
  estimate_probes = memo_hits = 0;
  rows_out = 0;
  deadline_ns = 0;
  deadline_exceeded = false;
  patterns.clear();
  operators.clear();
}

void AttachPlan(const CompiledBgp& bgp, const Dictionary& dict,
                const PlanProfile& plan, QueryProfile* profile) {
  profile->estimate_probes = plan.estimate_probes;
  profile->memo_hits = plan.memo_hits;
  profile->patterns.clear();
  profile->patterns.reserve(plan.steps.size());
  for (const PlanStep& step : plan.steps) {
    const CompiledPattern& p = bgp.patterns[step.pattern_index];
    PatternProfile pp;
    pp.pattern_index = step.pattern_index;
    pp.text = "(" + RenderSlot(p.s, bgp, dict) + " " +
              RenderSlot(p.p, bgp, dict) + " " + RenderSlot(p.o, bgp, dict) +
              ")";
    pp.index = IndexChoiceName(step.s_bound, step.p_bound, step.o_bound);
    pp.estimated = step.estimated;
    pp.bound_at_pick = step.bound_at_pick;
    pp.connected = step.connected;
    profile->patterns.push_back(std::move(pp));
  }
}

ProfileSink::ProfileSink(std::optional<std::uint64_t> slow_threshold_ns,
                         std::size_t slow_capacity)
    : slow_(slow_capacity),
      slow_threshold_ns_(slow_threshold_ns.has_value()
                             ? *slow_threshold_ns
                             : obs::SlowQueryThresholdNanos()) {}

void ProfileSink::RegisterWith(obs::MetricsRegistry* registry) {
  registry->RegisterHistogram(
      "hexa_query_bgp_latency_ns",
      "End-to-end latency of profiled BGP queries (plan + eval)", &bgp_ns_);
  registry->RegisterHistogram(
      "hexa_query_path_latency_ns",
      "End-to-end latency of profiled property-path queries", &path_ns_);
  registry->RegisterHistogram(
      "hexa_query_sparql_latency_ns",
      "End-to-end latency of profiled SPARQL queries (parse to results)",
      &sparql_ns_);
  registry->AttachSlowQueryLog(&slow_);
}

obs::LatencyHistogram* ProfileSink::histogram(QueryKind kind) {
  switch (kind) {
    case QueryKind::kBgp:
      return &bgp_ns_;
    case QueryKind::kPath:
      return &path_ns_;
    case QueryKind::kSparql:
      return &sparql_ns_;
  }
  return &sparql_ns_;
}

void ProfileSink::Record(const QueryProfile& profile,
                         std::string_view query_text) {
  histogram(profile.kind)->Record(profile.total_ns);
  if (profile.total_ns < slow_threshold_ns_) return;
  obs::SlowQueryRecord rec;
  rec.kind = static_cast<std::uint8_t>(profile.kind);
  rec.total_ns = profile.total_ns;
  rec.parse_ns = profile.parse_ns;
  rec.plan_ns = profile.plan_ns;
  rec.eval_ns = profile.eval_ns;
  rec.pin_ns = profile.pin_ns;
  rec.rows_out = profile.rows_out;
  rec.rows_scanned = profile.TotalRowsScanned();
  rec.estimate_probes = profile.estimate_probes;
  rec.patterns = static_cast<std::uint32_t>(profile.patterns.size());
  rec.q_error_x1000 =
      static_cast<std::uint64_t>(profile.MaxQError() * 1000.0 + 0.5);
  rec.text.assign(query_text.substr(
      0, std::min(query_text.size(), obs::kSlowQueryTextBytes)));
  slow_.Record(rec);
}

std::string ExplainBgp(const TripleStore& store, const Dictionary& dict,
                       const std::vector<TriplePattern>& patterns) {
  CompiledBgp bgp = CompileBgp(patterns, dict);
  if (bgp.trivially_empty) {
    return "plan: bgp, empty result (constant term not in dictionary)\n";
  }
  PlanProfile plan;
  PlanBgp(store, bgp, &plan);
  QueryProfile profile;
  profile.kind = QueryKind::kBgp;
  AttachPlan(bgp, dict, plan, &profile);
  return RenderExplain(profile);
}

std::string ExplainAnalyzeBgp(const TripleStore& store,
                              const Dictionary& dict,
                              const std::vector<TriplePattern>& patterns,
                              QueryProfile* profile) {
  QueryProfile local;
  QueryProfile* p = profile != nullptr ? profile : &local;
  p->Reset();
  EvalBgp(store, dict, patterns, p);
  if (!patterns.empty() && p->patterns.empty()) {
    // CompileBgp found an unknown constant: nothing was planned or run.
    return "plan: bgp, empty result (constant term not in dictionary)\n";
  }
  return RenderExplainAnalyze(*p);
}

std::string RenderExplain(const QueryProfile& profile) {
  std::string out;
  AppendFixed(&out, "plan: %s, %zu patterns, estimate_probes=%" PRIu64
                    ", memo_hits=%" PRIu64 "\n",
              QueryKindName(profile.kind), profile.patterns.size(),
              profile.estimate_probes, profile.memo_hits);
  for (std::size_t i = 0; i < profile.patterns.size(); ++i) {
    AppendPlanLine(&out, profile.patterns[i], i);
    out.push_back('\n');
  }
  return out;
}

std::string RenderExplainAnalyze(const QueryProfile& profile) {
  std::string out;
  AppendFixed(&out, "plan: %s, %zu patterns, estimate_probes=%" PRIu64
                    ", memo_hits=%" PRIu64 "\n",
              QueryKindName(profile.kind), profile.patterns.size(),
              profile.estimate_probes, profile.memo_hits);
  for (std::size_t i = 0; i < profile.patterns.size(); ++i) {
    const PatternProfile& p = profile.patterns[i];
    AppendPlanLine(&out, p, i);
    // Self time: all deeper scans nest inside this depth's scans, so
    // exclusive = inclusive minus the next depth's inclusive.
    const std::uint64_t child_ns =
        (i + 1 < profile.patterns.size()) ? profile.patterns[i + 1].wall_ns
                                          : 0;
    const std::uint64_t self_ns =
        p.wall_ns > child_ns ? p.wall_ns - child_ns : 0;
    AppendFixed(&out,
                "\n           actual: probes=%" PRIu64 " scanned=%" PRIu64
                " emitted=%" PRIu64 " q_error=%.2f incl=%s self=%s\n",
                p.probes, p.rows_scanned, p.rows_emitted,
                p.probes == 0 ? 1.0 : p.QErrorValue(),
                HumanNanos(p.wall_ns).c_str(), HumanNanos(self_ns).c_str());
  }
  for (const OperatorProfile& op : profile.operators) {
    AppendFixed(&out, "  operator %s: rows_in=%" PRIu64 " rows_out=%" PRIu64
                      " wall=%s\n",
                op.name, op.rows_in, op.rows_out,
                HumanNanos(op.wall_ns).c_str());
  }
  AppendFixed(&out, "totals: rows_out=%" PRIu64 " max_q_error=%.2f\n",
              profile.rows_out, profile.MaxQError());
  AppendFixed(&out, "phases: parse=%s plan=%s eval=%s pin=%s total=%s\n",
              HumanNanos(profile.parse_ns).c_str(),
              HumanNanos(profile.plan_ns).c_str(),
              HumanNanos(profile.eval_ns).c_str(),
              HumanNanos(profile.pin_ns).c_str(),
              HumanNanos(profile.total_ns).c_str());
  return out;
}

std::string FormatSlowQueries(const obs::SlowQueryLog& log) {
  const std::vector<obs::SlowQueryRecord> entries = log.Snapshot();
  std::string out;
  AppendFixed(&out,
              "slow queries: %zu retained (capacity %zu, %" PRIu64
              " recorded)\n",
              entries.size(), log.capacity(), log.TotalRecorded());
  for (const obs::SlowQueryRecord& rec : entries) {
    AppendFixed(&out,
                "  #%" PRIu64 " [%s] total=%s parse=%s plan=%s eval=%s"
                " pin=%s rows_out=%" PRIu64 " scanned=%" PRIu64
                " patterns=%" PRIu32 " q_error=%.2f\n",
                rec.ticket, obs::SlowQueryKindName(rec.kind),
                HumanNanos(rec.total_ns).c_str(),
                HumanNanos(rec.parse_ns).c_str(),
                HumanNanos(rec.plan_ns).c_str(),
                HumanNanos(rec.eval_ns).c_str(),
                HumanNanos(rec.pin_ns).c_str(), rec.rows_out,
                rec.rows_scanned, rec.patterns,
                static_cast<double>(rec.q_error_x1000) / 1000.0);
    if (!rec.text.empty()) {
      out += "     " + rec.text + "\n";
    }
  }
  return out;
}

}  // namespace hexastore

// W3C SPARQL 1.1 Query Results JSON serialization
// (https://www.w3.org/TR/sparql11-results-json/).
//
// One ResultSet renders to one results document:
//
//   {"head":{"vars":["x","y"]},
//    "results":{"bindings":[{"x":{"type":"uri","value":"..."},...},...]}}
//
// Term cells map by kind — IRI -> "uri", literal -> "literal" (with
// "xml:lang" or "datatype" when the term carries one), blank -> "bnode"
// (value without the "_:" prefix). Numeric columns (aggregates) render
// as xsd:integer typed literals, matching how real endpoints return
// COUNT. Unbound cells (kInvalidId from an OPTIONAL-free engine they
// cannot currently occur, but unresolvable ids defensively count) are
// simply omitted from their binding object, exactly as the spec
// prescribes. All strings are escaped per RFC 8259 (the two-char
// escapes plus \u00XX for other control bytes).
//
// Used by the HTTP server's /query endpoint and hexastore_cli --json;
// golden-tested in result_json_test.
#ifndef HEXASTORE_QUERY_RESULT_JSON_H_
#define HEXASTORE_QUERY_RESULT_JSON_H_

#include <string>
#include <string_view>

#include "dict/dictionary.h"
#include "query/binding.h"

namespace hexastore {

/// Appends `text` JSON-escaped (no surrounding quotes) to `out`.
void AppendJsonEscaped(std::string_view text, std::string* out);

/// Renders one SPARQL results document for `set`, decoding term cells
/// against `dict`. Deterministic: vars in table order, rows in result
/// order, keys in spec order (type, value, then xml:lang/datatype).
std::string ResultSetToJson(const ResultSet& set, const Dictionary& dict);

/// Renders the boolean-results form {"head":{},"boolean":b} (ASK; the
/// server's /healthz also reuses it).
std::string BooleanResultToJson(bool value);

}  // namespace hexastore

#endif  // HEXASTORE_QUERY_RESULT_JSON_H_

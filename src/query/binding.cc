#include "query/binding.h"

// Binding and ResultSet are header-only; this translation unit exists so
// the module has a home for future out-of-line helpers and to keep the
// build graph uniform.

namespace hexastore {}  // namespace hexastore

// Path-expression evaluation (paper §4.3).
//
// A path expression p1/p2/.../pn asks for endpoint pairs (x0, xn) such
// that x0 -p1-> x1 -p2-> ... -pn-> xn. Every internal node is the object
// of one triple and the subject of the next, so evaluation is a chain of
// subject-object joins.
//
// On a Hexastore the first of the n-1 joins is a *linear merge join* of
// the sorted pos object vector of p1 against the sorted pso subject vector
// of p2; the remaining n-2 joins each need one sort (sort-merge joins).
// Stores without object-sorted access fall back to hash joins over scans.
#ifndef HEXASTORE_QUERY_PATH_H_
#define HEXASTORE_QUERY_PATH_H_

#include <utility>
#include <vector>

#include "core/hexastore.h"
#include "core/store_interface.h"
#include "query/profile.h"
#include "util/common.h"

namespace hexastore {

/// Distinct (start, end) endpoint pairs of the path, sorted ascending.
using PathPairs = std::vector<std::pair<Id, Id>>;

/// Evaluates a path expression on a Hexastore using merge joins
/// (first join linear, later joins sort-merge). `predicates` must be
/// non-empty.
///
/// `profile`, when non-null, gets one OperatorProfile per path step
/// ("path_seed" for step 0, "path_join" for each later join) with the
/// frontier sizes in/out and per-step wall time, plus eval_ns/total_ns/
/// rows_out and kind = QueryKind::kPath.
PathPairs EvalPathHexastore(const Hexastore& store,
                            const std::vector<Id>& predicates,
                            QueryProfile* profile = nullptr);

/// Evaluates the same path on any store via per-step hash joins over
/// (?, p, ?) scans. Used as the baseline/oracle. Profiled like
/// EvalPathHexastore (step operators named "path_seed"/"path_hash_join").
PathPairs EvalPathGeneric(const TripleStore& store,
                          const std::vector<Id>& predicates,
                          QueryProfile* profile = nullptr);

}  // namespace hexastore

#endif  // HEXASTORE_QUERY_PATH_H_

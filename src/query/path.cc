#include "query/path.h"

#include <algorithm>
#include <unordered_map>

#include "index/sorted_vec.h"

namespace hexastore {

namespace {

void SortUniquePairs(PathPairs* pairs) {
  std::sort(pairs->begin(), pairs->end());
  pairs->erase(std::unique(pairs->begin(), pairs->end()), pairs->end());
}

// Per-step operator recording shared by both path evaluators. The
// recorded wall times double as the eval phase total.
class PathStepRecorder {
 public:
  explicit PathStepRecorder(QueryProfile* profile) : profile_(profile) {
    if (profile_ != nullptr) {
      profile_->kind = QueryKind::kPath;
      start_ = obs::NowNanos();
    }
  }

  void Step(const char* name, std::uint64_t rows_in, std::uint64_t rows_out) {
    if (profile_ == nullptr) return;
    const std::uint64_t now = obs::NowNanos();
    profile_->operators.push_back(
        OperatorProfile{name, rows_in, rows_out, now - start_});
    start_ = now;
  }

  void Finish(std::uint64_t rows_out) {
    if (profile_ == nullptr) return;
    std::uint64_t eval = 0;
    for (const OperatorProfile& op : profile_->operators) eval += op.wall_ns;
    profile_->eval_ns += eval;
    profile_->rows_out += rows_out;
    profile_->total_ns = profile_->parse_ns + profile_->plan_ns +
                         profile_->eval_ns + profile_->pin_ns;
  }

 private:
  QueryProfile* profile_;
  std::uint64_t start_ = 0;
};

}  // namespace

PathPairs EvalPathHexastore(const Hexastore& store,
                            const std::vector<Id>& predicates,
                            QueryProfile* profile) {
  PathStepRecorder rec(profile);
  PathPairs frontier;  // (x0, x_k) pairs, k = current step
  if (predicates.empty()) {
    return frontier;
  }

  // Step 0: all (s, o) pairs of p1, produced from the pso index. The
  // frontier comes out grouped by subject; later steps need it sorted by
  // the *end* node.
  const Id p1 = predicates[0];
  const IdVec* s_vec = store.subjects_of_predicate(p1);
  if (s_vec == nullptr) {
    rec.Finish(0);
    return frontier;
  }
  for (Id s : *s_vec) {
    const IdVec* os = store.objects(s, p1);
    for (Id o : *os) {
      frontier.emplace_back(s, o);
    }
  }
  rec.Step("path_seed", 0, frontier.size());

  for (std::size_t k = 1; k < predicates.size(); ++k) {
    const Id pk = predicates[k];
    const IdVec* next_subjects = store.subjects_of_predicate(pk);
    if (next_subjects == nullptr) {
      rec.Finish(0);
      return {};
    }
    const std::uint64_t frontier_in = frontier.size();
    // Sort frontier by end node. For k == 1 this is where the paper's
    // "first join is a linear merge join" materializes: instead of sorting
    // pairs we could merge the pos object vector of p1 with the pso
    // subject vector of p2 and expand shared terminal lists; we keep the
    // pair representation but still only sort once per step (the first
    // step's sort is the grouping the shared lists already give us when
    // the path starts from a single predicate).
    std::sort(frontier.begin(), frontier.end(),
              [](const auto& a, const auto& b) {
                return a.second < b.second || (a.second == b.second &&
                                               a.first < b.first);
              });
    // Dedupe per step so multiplicities cannot compound along the path.
    frontier.erase(std::unique(frontier.begin(), frontier.end()),
                   frontier.end());
    PathPairs next;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < frontier.size() && j < next_subjects->size()) {
      const Id end = frontier[i].second;
      const Id subj = (*next_subjects)[j];
      if (end < subj) {
        ++i;
      } else if (subj < end) {
        ++j;
      } else {
        // All frontier pairs ending at `end` extend through o(end, pk).
        const IdVec* os = store.objects(end, pk);
        std::size_t block_end = i;
        while (block_end < frontier.size() &&
               frontier[block_end].second == end) {
          ++block_end;
        }
        for (std::size_t f = i; f < block_end; ++f) {
          for (Id o : *os) {
            next.emplace_back(frontier[f].first, o);
          }
        }
        i = block_end;
        ++j;
      }
    }
    frontier = std::move(next);
    rec.Step("path_join", frontier_in, frontier.size());
    if (frontier.empty()) {
      rec.Finish(0);
      return frontier;
    }
  }
  SortUniquePairs(&frontier);
  rec.Finish(frontier.size());
  return frontier;
}

PathPairs EvalPathGeneric(const TripleStore& store,
                          const std::vector<Id>& predicates,
                          QueryProfile* profile) {
  PathStepRecorder rec(profile);
  PathPairs frontier;
  if (predicates.empty()) {
    return frontier;
  }
  store.Scan(IdPattern{kInvalidId, predicates[0], kInvalidId},
             [&frontier](const IdTriple& t) {
               frontier.emplace_back(t.s, t.o);
             });
  rec.Step("path_seed", 0, frontier.size());
  for (std::size_t k = 1; k < predicates.size(); ++k) {
    // Hash join: end node of the frontier against subjects of pk.
    const std::uint64_t frontier_in = frontier.size();
    std::unordered_map<Id, IdVec> starts_by_end;
    for (const auto& [start, end] : frontier) {
      starts_by_end[end].push_back(start);
    }
    PathPairs next;
    store.Scan(IdPattern{kInvalidId, predicates[k], kInvalidId},
               [&](const IdTriple& t) {
                 auto it = starts_by_end.find(t.s);
                 if (it == starts_by_end.end()) {
                   return;
                 }
                 for (Id start : it->second) {
                   next.emplace_back(start, t.o);
                 }
               });
    SortUniquePairs(&next);
    frontier = std::move(next);
    rec.Step("path_hash_join", frontier_in, frontier.size());
    if (frontier.empty()) {
      rec.Finish(0);
      return frontier;
    }
  }
  SortUniquePairs(&frontier);
  rec.Finish(frontier.size());
  return frontier;
}

}  // namespace hexastore

#include "query/sparql_parser.h"

#include <cctype>
#include <unordered_map>

#include "util/string_util.h"

namespace hexastore {

namespace {

enum class TokKind {
  kKeyword,   // SELECT, DISTINCT, WHERE, PREFIX, FILTER, ORDER, BY, LIMIT, a
  kVar,       // ?name
  kIri,       // <...>
  kPname,     // prefix:local
  kLiteral,   // "..." with optional @lang / ^^<dt>
  kInteger,   // bare digits
  kPunct,     // { } ( ) . = != < <= > >= * ,
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;        // keyword upper-cased; punct verbatim
  Term literal;            // for kLiteral
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpaceAndComments();
      if (pos_ >= text_.size()) {
        out.push_back(Token{TokKind::kEnd, "", Term(), pos_});
        return out;
      }
      auto tok = Next();
      if (!tok.ok()) {
        return tok.status();
      }
      out.push_back(std::move(tok).value());
    }
  }

 private:
  void SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') {
          ++pos_;
        }
      } else {
        break;
      }
    }
  }

  Status Error(const std::string& what) const {
    return Status::ParseError(what + " at offset " + std::to_string(pos_));
  }

  Result<Token> Next() {
    const std::size_t start = pos_;
    char c = text_[pos_];
    if (c == '<') {
      // '<' is an IRI opener only when a '>' follows before any
      // whitespace; otherwise it is the comparison operator (as in
      // FILTER(?x < ?y)).
      std::size_t end = text_.find('>', pos_ + 1);
      std::size_t space = pos_ + 1;
      while (space < text_.size() &&
             !std::isspace(static_cast<unsigned char>(text_[space]))) {
        ++space;
      }
      if (end != std::string_view::npos && end < space) {
        Token t{TokKind::kIri,
                std::string(text_.substr(pos_ + 1, end - pos_ - 1)), Term(),
                start};
        pos_ = end + 1;
        return t;
      }
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
        pos_ += 2;
        return Token{TokKind::kPunct, "<=", Term(), start};
      }
      ++pos_;
      return Token{TokKind::kPunct, "<", Term(), start};
    }
    if (c == '?' || c == '$') {
      ++pos_;
      std::string name;
      while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(
                                         text_[pos_])) ||
                                     text_[pos_] == '_')) {
        name += text_[pos_++];
      }
      if (name.empty()) {
        return Error("empty variable name");
      }
      return Token{TokKind::kVar, std::move(name), Term(), start};
    }
    if (c == '"') {
      return LexLiteral(start);
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string digits;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        digits += text_[pos_++];
      }
      return Token{TokKind::kInteger, std::move(digits), Term(), start};
    }
    // Multi-char punctuation first.
    if (c == '!' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
      pos_ += 2;
      return Token{TokKind::kPunct, "!=", Term(), start};
    }
    if (c == '>' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
      pos_ += 2;
      return Token{TokKind::kPunct, ">=", Term(), start};
    }
    if (std::string("{}().=<>*,").find(c) != std::string::npos) {
      ++pos_;
      return Token{TokKind::kPunct, std::string(1, c), Term(), start};
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '-')) {
        word += text_[pos_++];
      }
      // Prefixed name?
      if (pos_ < text_.size() && text_[pos_] == ':') {
        ++pos_;
        std::string local;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '-')) {
          local += text_[pos_++];
        }
        return Token{TokKind::kPname, word + ":" + local, Term(), start};
      }
      std::string upper;
      for (char w : word) {
        upper += static_cast<char>(
            std::toupper(static_cast<unsigned char>(w)));
      }
      if (word == "a") {
        return Token{TokKind::kKeyword, "a", Term(), start};
      }
      return Token{TokKind::kKeyword, std::move(upper), Term(), start};
    }
    // A bare ':' starts an empty-prefix pname.
    if (c == ':') {
      ++pos_;
      std::string local;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '-')) {
        local += text_[pos_++];
      }
      return Token{TokKind::kPname, ":" + local, Term(), start};
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<Token> LexLiteral(std::size_t start) {
    ++pos_;  // consume opening quote
    std::string raw;
    bool closed = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size()) {
        raw += c;
        raw += text_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (c == '"') {
        closed = true;
        ++pos_;
        break;
      }
      raw += c;
      ++pos_;
    }
    if (!closed) {
      return Error("unterminated literal");
    }
    std::string lexical = UnescapeNTriplesLiteral(raw);
    Token t;
    t.kind = TokKind::kLiteral;
    t.pos = start;
    if (pos_ < text_.size() && text_[pos_] == '@') {
      ++pos_;
      std::string lang;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '-')) {
        lang += text_[pos_++];
      }
      t.literal = Term::LangLiteral(std::move(lexical), std::move(lang));
      return t;
    }
    if (pos_ + 1 < text_.size() && text_[pos_] == '^' &&
        text_[pos_ + 1] == '^') {
      pos_ += 2;
      if (pos_ >= text_.size() || text_[pos_] != '<') {
        return Error("expected datatype IRI after ^^");
      }
      std::size_t end = text_.find('>', pos_);
      if (end == std::string_view::npos) {
        return Error("unterminated datatype IRI");
      }
      std::string dt(text_.substr(pos_ + 1, end - pos_ - 1));
      pos_ = end + 1;
      t.literal = Term::TypedLiteral(std::move(lexical), std::move(dt));
      return t;
    }
    t.literal = Term::Literal(std::move(lexical));
    return t;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> Parse() {
    ParsedQuery q;
    // Prologue.
    while (IsKeyword("PREFIX")) {
      ++i_;
      if (Cur().kind != TokKind::kPname) {
        return Error("expected prefix name");
      }
      // A prefix declaration's name token is "ns:" (empty local part).
      std::string pname = Cur().text;
      // Split at the colon: declaration local part must be empty.
      auto colon = pname.find(':');
      if (colon == std::string::npos || colon + 1 != pname.size()) {
        return Error("malformed prefix declaration");
      }
      ++i_;
      if (Cur().kind != TokKind::kIri) {
        return Error("expected IRI in prefix declaration");
      }
      prefixes_[pname.substr(0, colon)] = Cur().text;
      ++i_;
    }
    if (!IsKeyword("SELECT")) {
      return Error("expected SELECT");
    }
    ++i_;
    if (IsKeyword("DISTINCT")) {
      q.distinct = true;
      ++i_;
    }
    if (IsPunct("*")) {
      ++i_;
    } else {
      while (Cur().kind == TokKind::kVar || IsPunct("(")) {
        if (Cur().kind == TokKind::kVar) {
          q.select_vars.push_back(Cur().text);
          ++i_;
          continue;
        }
        auto agg = ParseAggregate();
        if (!agg.ok()) {
          return agg.status();
        }
        q.aggregates.push_back(std::move(agg).value());
      }
      if (q.select_vars.empty() && q.aggregates.empty()) {
        return Error("expected projection variables, aggregates or *");
      }
    }
    if (!IsKeyword("WHERE")) {
      return Error("expected WHERE");
    }
    ++i_;
    if (!IsPunct("{")) {
      return Error("expected '{'");
    }
    ++i_;
    // Group graph pattern.
    while (!IsPunct("}")) {
      if (Cur().kind == TokKind::kEnd) {
        return Error("unterminated group pattern");
      }
      if (IsKeyword("FILTER")) {
        ++i_;
        auto filter = ParseFilter();
        if (!filter.ok()) {
          return filter.status();
        }
        q.filters.push_back(std::move(filter).value());
        if (IsPunct(".")) {
          ++i_;
        }
        continue;
      }
      auto triple = ParseTriple();
      if (!triple.ok()) {
        return triple.status();
      }
      q.patterns.push_back(std::move(triple).value());
      if (IsPunct(".")) {
        ++i_;
      }
    }
    ++i_;  // consume '}'
    // Solution modifiers.
    if (IsKeyword("GROUP")) {
      ++i_;
      if (!IsKeyword("BY")) {
        return Error("expected BY after GROUP");
      }
      ++i_;
      while (Cur().kind == TokKind::kVar) {
        q.group_by.push_back(Cur().text);
        ++i_;
      }
      if (q.group_by.empty()) {
        return Error("expected variables after GROUP BY");
      }
    }
    if (IsKeyword("ORDER")) {
      ++i_;
      if (!IsKeyword("BY")) {
        return Error("expected BY after ORDER");
      }
      ++i_;
      while (Cur().kind == TokKind::kVar) {
        q.order_by.push_back(Cur().text);
        ++i_;
      }
      if (q.order_by.empty()) {
        return Error("expected variables after ORDER BY");
      }
    }
    if (IsKeyword("LIMIT")) {
      ++i_;
      if (Cur().kind != TokKind::kInteger) {
        return Error("expected integer after LIMIT");
      }
      q.limit = static_cast<std::size_t>(std::stoull(Cur().text));
      ++i_;
    }
    if (Cur().kind != TokKind::kEnd) {
      return Error("trailing tokens after query");
    }
    if (q.patterns.empty()) {
      return Error("empty WHERE clause");
    }
    return q;
  }

 private:
  const Token& Cur() const { return tokens_[i_]; }

  bool IsKeyword(const std::string& kw) const {
    return Cur().kind == TokKind::kKeyword && Cur().text == kw;
  }
  bool IsPunct(const std::string& p) const {
    return Cur().kind == TokKind::kPunct && Cur().text == p;
  }

  Status Error(const std::string& what) const {
    return Status::ParseError(what + " at offset " +
                              std::to_string(Cur().pos));
  }

  Result<Term> ResolvePname(const std::string& pname) const {
    auto colon = pname.find(':');
    std::string prefix = pname.substr(0, colon);
    std::string local = pname.substr(colon + 1);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return Status::ParseError("undeclared prefix '" + prefix + "'");
    }
    return Term::Iri(it->second + local);
  }

  Result<PatternTerm> ParseTermSlot(bool predicate_position) {
    const Token& t = Cur();
    switch (t.kind) {
      case TokKind::kVar:
        ++i_;
        return PatternTerm::Variable(t.text);
      case TokKind::kIri:
        ++i_;
        return PatternTerm::Bound(Term::Iri(t.text));
      case TokKind::kPname: {
        auto term = ResolvePname(t.text);
        if (!term.ok()) {
          return term.status();
        }
        ++i_;
        return PatternTerm::Bound(std::move(term).value());
      }
      case TokKind::kLiteral:
        if (predicate_position) {
          return Error("literal cannot be a predicate");
        }
        ++i_;
        return PatternTerm::Bound(t.literal);
      case TokKind::kInteger: {
        if (predicate_position) {
          return Error("integer cannot be a predicate");
        }
        Term lit = Term::TypedLiteral(
            t.text, "http://www.w3.org/2001/XMLSchema#integer");
        ++i_;
        return PatternTerm::Bound(std::move(lit));
      }
      case TokKind::kKeyword:
        if (t.text == "a") {
          ++i_;
          return PatternTerm::Bound(Term::Iri(kRdfTypeIri));
        }
        return Error("unexpected keyword '" + t.text + "' in pattern");
      default:
        return Error("expected term");
    }
  }

  Result<TriplePattern> ParseTriple() {
    auto s = ParseTermSlot(false);
    if (!s.ok()) {
      return s.status();
    }
    auto p = ParseTermSlot(true);
    if (!p.ok()) {
      return p.status();
    }
    auto o = ParseTermSlot(false);
    if (!o.ok()) {
      return o.status();
    }
    return TriplePattern{std::move(s).value(), std::move(p).value(),
                         std::move(o).value()};
  }

  Result<FilterOperand> ParseOperand() {
    const Token& t = Cur();
    FilterOperand op;
    switch (t.kind) {
      case TokKind::kVar:
        op.is_var = true;
        op.var = t.text;
        ++i_;
        return op;
      case TokKind::kIri:
        op.term = Term::Iri(t.text);
        ++i_;
        return op;
      case TokKind::kPname: {
        auto term = ResolvePname(t.text);
        if (!term.ok()) {
          return term.status();
        }
        op.term = std::move(term).value();
        ++i_;
        return op;
      }
      case TokKind::kLiteral:
        op.term = t.literal;
        ++i_;
        return op;
      case TokKind::kInteger:
        op.term = Term::TypedLiteral(
            t.text, "http://www.w3.org/2001/XMLSchema#integer");
        ++i_;
        return op;
      default:
        return Error("expected filter operand");
    }
  }

  Result<SelectAggregate> ParseAggregate() {
    // Cur() is '('.
    ++i_;
    if (!IsKeyword("COUNT")) {
      return Error("only COUNT aggregates are supported");
    }
    ++i_;
    if (!IsPunct("(")) {
      return Error("expected '(' after COUNT");
    }
    ++i_;
    SelectAggregate agg;
    if (IsKeyword("DISTINCT")) {
      agg.distinct = true;
      ++i_;
    }
    if (IsPunct("*")) {
      ++i_;
    } else if (Cur().kind == TokKind::kVar) {
      agg.var = Cur().text;
      ++i_;
    } else {
      return Error("expected ?var or * inside COUNT");
    }
    if (!IsPunct(")")) {
      return Error("expected ')' after COUNT argument");
    }
    ++i_;
    if (!IsKeyword("AS")) {
      return Error("expected AS after COUNT(...)");
    }
    ++i_;
    if (Cur().kind != TokKind::kVar) {
      return Error("expected alias variable after AS");
    }
    agg.alias = Cur().text;
    ++i_;
    if (!IsPunct(")")) {
      return Error("expected ')' closing the aggregate");
    }
    ++i_;
    return agg;
  }

  Result<FilterExpr> ParseFilter() {
    if (!IsPunct("(")) {
      return Error("expected '(' after FILTER");
    }
    ++i_;
    FilterExpr expr;
    auto lhs = ParseOperand();
    if (!lhs.ok()) {
      return lhs.status();
    }
    expr.lhs = std::move(lhs).value();
    if (Cur().kind != TokKind::kPunct) {
      return Error("expected comparison operator");
    }
    const std::string& opt = Cur().text;
    if (opt == "=") {
      expr.op = FilterOp::kEq;
    } else if (opt == "!=") {
      expr.op = FilterOp::kNe;
    } else if (opt == "<") {
      expr.op = FilterOp::kLt;
    } else if (opt == "<=") {
      expr.op = FilterOp::kLe;
    } else if (opt == ">") {
      expr.op = FilterOp::kGt;
    } else if (opt == ">=") {
      expr.op = FilterOp::kGe;
    } else {
      return Error("unknown comparison operator '" + opt + "'");
    }
    ++i_;
    auto rhs = ParseOperand();
    if (!rhs.ok()) {
      return rhs.status();
    }
    expr.rhs = std::move(rhs).value();
    if (!IsPunct(")")) {
      return Error("expected ')' after filter expression");
    }
    ++i_;
    return expr;
  }

  std::vector<Token> tokens_;
  std::size_t i_ = 0;
  std::unordered_map<std::string, std::string> prefixes_;
};

}  // namespace

Result<ParsedQuery> ParseSparql(std::string_view text) {
  Lexer lexer(text);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) {
    return tokens.status();
  }
  Parser parser(std::move(tokens).value());
  return parser.Parse();
}

}  // namespace hexastore

// Result-set operators: projection, distinct, sort, limit, and the
// group-count aggregation the Barton queries rely on.
#ifndef HEXASTORE_QUERY_OPERATORS_H_
#define HEXASTORE_QUERY_OPERATORS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dict/dictionary.h"
#include "query/binding.h"
#include "util/common.h"

namespace hexastore {

/// Keeps only the given columns, in the given order (renames the variable
/// table accordingly).
ResultSet Project(const ResultSet& in, const std::vector<VarId>& columns);

/// Removes duplicate rows (order not preserved; output sorted).
ResultSet Distinct(ResultSet in);

/// Sorts rows lexicographically by the given columns.
ResultSet OrderBy(ResultSet in, const std::vector<VarId>& columns);

/// Truncates to the first `limit` rows.
ResultSet Limit(ResultSet in, std::size_t limit);

/// (group id, count) aggregation result, sorted by group id.
using GroupCounts = std::vector<std::pair<Id, std::uint64_t>>;

/// Counts rows per distinct value of `column`.
GroupCounts GroupCount(const ResultSet& in, VarId column);

/// Counts per (a, b) pair; sorted by pair.
using PairCounts = std::vector<std::pair<std::pair<Id, Id>, std::uint64_t>>;

/// Counts rows per distinct (column_a, column_b) pair.
PairCounts GroupCountPairs(const ResultSet& in, VarId column_a,
                           VarId column_b);

/// Renders a result set as a table of N-Triples term spellings (for
/// examples and debugging).
std::string FormatResultSet(const ResultSet& in, const Dictionary& dict,
                            std::size_t max_rows = 20);

}  // namespace hexastore

#endif  // HEXASTORE_QUERY_OPERATORS_H_

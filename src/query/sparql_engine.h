// Execution of parsed SPARQL-subset queries over any TripleStore.
//
// DEPRECATED as an entry point: these free functions are thin shims over
// the query::Session pipeline (session.h), kept for callers that want
// one-shot, unpinned, uncached execution — and for the unprofiled fast
// path, which Session intentionally does not offer. New code (and every
// front end in this repo: server, CLI, REPL) should construct a Session,
// which adds generation pinning, the normalized-BGP plan cache,
// per-query deadlines and ProfileSink aggregation behind one object.
#ifndef HEXASTORE_QUERY_SPARQL_ENGINE_H_
#define HEXASTORE_QUERY_SPARQL_ENGINE_H_

#include <string>
#include <string_view>

#include "core/store_interface.h"
#include "dict/dictionary.h"
#include "query/binding.h"
#include "query/profile.h"
#include "query/sparql_parser.h"
#include "util/status.h"

namespace hexastore {

/// Executes an already-parsed query: BGP evaluation, filters, projection,
/// DISTINCT, ORDER BY (by term N-Triples spelling), LIMIT.
///
/// `profile`, when non-null, receives the chosen BGP plan with
/// per-pattern actuals, one OperatorProfile per solution-modifier stage
/// that ran, phase times (eval_ns covers BGP evaluation plus the
/// modifiers) and rows_out. With nullptr no timing code runs.
Result<ResultSet> ExecuteSparql(const TripleStore& store,
                                const Dictionary& dict,
                                const ParsedQuery& query,
                                QueryProfile* profile = nullptr);

/// Parses and executes in one call. With a profile, additionally records
/// parse_ns and tags the profile kind as QueryKind::kSparql.
Result<ResultSet> RunSparql(const TripleStore& store, const Dictionary& dict,
                            std::string_view text,
                            QueryProfile* profile = nullptr);

/// EXPLAIN: parses and plans `text` without executing it. The rendered
/// plan lists the BGP join order (index choice, bound positions,
/// estimates) and the solution-modifier stages that would run. Output is
/// deterministic for a given store state.
Result<std::string> ExplainSparql(const TripleStore& store,
                                  const Dictionary& dict,
                                  std::string_view text);

/// EXPLAIN ANALYZE: parses, plans AND executes `text`, returning the
/// plan annotated with actual probes/rows/q-error/timings. Result rows
/// are discarded; pass `profile` to also keep the raw numbers.
Result<std::string> ExplainAnalyzeSparql(const TripleStore& store,
                                         const Dictionary& dict,
                                         std::string_view text,
                                         QueryProfile* profile = nullptr);

}  // namespace hexastore

#endif  // HEXASTORE_QUERY_SPARQL_ENGINE_H_

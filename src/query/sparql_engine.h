// Execution of parsed SPARQL-subset queries over any TripleStore.
#ifndef HEXASTORE_QUERY_SPARQL_ENGINE_H_
#define HEXASTORE_QUERY_SPARQL_ENGINE_H_

#include <string_view>

#include "core/store_interface.h"
#include "dict/dictionary.h"
#include "query/binding.h"
#include "query/sparql_parser.h"
#include "util/status.h"

namespace hexastore {

/// Executes an already-parsed query: BGP evaluation, filters, projection,
/// DISTINCT, ORDER BY (by term N-Triples spelling), LIMIT.
Result<ResultSet> ExecuteSparql(const TripleStore& store,
                                const Dictionary& dict,
                                const ParsedQuery& query);

/// Parses and executes in one call.
Result<ResultSet> RunSparql(const TripleStore& store, const Dictionary& dict,
                            std::string_view text);

}  // namespace hexastore

#endif  // HEXASTORE_QUERY_SPARQL_ENGINE_H_

#include "query/operators.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace hexastore {

ResultSet Project(const ResultSet& in, const std::vector<VarId>& columns) {
  ResultSet out;
  for (VarId c : columns) {
    out.vars.Intern(in.vars.name(c));
  }
  out.rows.reserve(in.rows.size());
  for (const Row& row : in.rows) {
    Row projected;
    projected.reserve(columns.size());
    for (VarId c : columns) {
      projected.push_back(row[static_cast<std::size_t>(c)]);
    }
    out.rows.push_back(std::move(projected));
  }
  return out;
}

ResultSet Distinct(ResultSet in) {
  std::sort(in.rows.begin(), in.rows.end());
  in.rows.erase(std::unique(in.rows.begin(), in.rows.end()),
                in.rows.end());
  return in;
}

ResultSet OrderBy(ResultSet in, const std::vector<VarId>& columns) {
  std::stable_sort(in.rows.begin(), in.rows.end(),
                   [&columns](const Row& a, const Row& b) {
                     for (VarId c : columns) {
                       auto i = static_cast<std::size_t>(c);
                       if (a[i] != b[i]) {
                         return a[i] < b[i];
                       }
                     }
                     return false;
                   });
  return in;
}

ResultSet Limit(ResultSet in, std::size_t limit) {
  if (in.rows.size() > limit) {
    in.rows.resize(limit);
  }
  return in;
}

GroupCounts GroupCount(const ResultSet& in, VarId column) {
  std::map<Id, std::uint64_t> counts;
  for (const Row& row : in.rows) {
    ++counts[row[static_cast<std::size_t>(column)]];
  }
  return GroupCounts(counts.begin(), counts.end());
}

PairCounts GroupCountPairs(const ResultSet& in, VarId column_a,
                           VarId column_b) {
  std::map<std::pair<Id, Id>, std::uint64_t> counts;
  for (const Row& row : in.rows) {
    ++counts[{row[static_cast<std::size_t>(column_a)],
              row[static_cast<std::size_t>(column_b)]}];
  }
  return PairCounts(counts.begin(), counts.end());
}

std::string FormatResultSet(const ResultSet& in, const Dictionary& dict,
                            std::size_t max_rows) {
  std::ostringstream os;
  for (std::size_t c = 0; c < in.vars.size(); ++c) {
    os << (c == 0 ? "" : "\t") << '?' << in.vars.name(static_cast<VarId>(c));
  }
  os << '\n';
  std::size_t shown = 0;
  for (const Row& row : in.rows) {
    if (shown++ >= max_rows) {
      os << "... (" << in.rows.size() - max_rows << " more rows)\n";
      break;
    }
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "\t");
      if (in.IsNumeric(static_cast<VarId>(c))) {
        os << row[c];
        continue;
      }
      auto term = dict.TryTerm(row[c]);
      os << (term.has_value() ? term->ToNTriples() : std::string("?"));
    }
    os << '\n';
  }
  os << "(" << in.rows.size() << " rows)\n";
  return os.str();
}

}  // namespace hexastore

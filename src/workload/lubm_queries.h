// The five LUBM benchmark queries (paper §5.2.2), implemented with the
// per-store strategies the paper describes, plus generic oracles.
//
// LQ1  people (any property) related to a given course object
// LQ2  people (any property) related to a given university object
// LQ3  all immediate information about AssociateProfessor10 (as subject
//      and as object)
// LQ4  people related to the courses AssociateProfessor10 teaches,
//      grouped by course
// LQ5  people holding any degree from a university AssociateProfessor10
//      is related to, grouped by university
#ifndef HEXASTORE_WORKLOAD_LUBM_QUERIES_H_
#define HEXASTORE_WORKLOAD_LUBM_QUERIES_H_

#include <utility>
#include <vector>

#include "baseline/vertical_store.h"
#include "core/hexastore.h"
#include "core/store_interface.h"
#include "dict/dictionary.h"
#include "index/sorted_vec.h"

namespace hexastore::workload {

/// Dictionary-resolved ids of the LUBM vocabulary.
struct LubmIds {
  Id prop_type = kInvalidId;
  Id prop_teacher_of = kInvalidId;
  Id prop_ug_degree = kInvalidId;
  Id prop_ms_degree = kInvalidId;
  Id prop_phd_degree = kInvalidId;

  Id class_university = kInvalidId;

  /// Course0 of Department0.University0 with index 10 (LQ1 target).
  Id course10 = kInvalidId;
  /// University0 (LQ2 target).
  Id university0 = kInvalidId;
  /// AssociateProfessor10 of Department0.University0 (LQ3-LQ5 target).
  Id assoc_prof10 = kInvalidId;

  /// Looks up all vocabulary ids (absent terms stay kInvalidId).
  static LubmIds Resolve(const Dictionary& dict);
};

/// (subject, predicate) rows, sorted.
using SubjectPredRows = std::vector<std::pair<Id, Id>>;

/// Rows grouped by a key id, each group sorted; groups sorted by key.
using GroupedRows = std::vector<std::pair<Id, SubjectPredRows>>;

/// (university, sorted people) groups, sorted by university.
using DegreeGroups = std::vector<std::pair<Id, IdVec>>;

// ---- LQ1 / LQ2: everything related to an object -------------------------

SubjectPredRows LubmRelatedToHexa(const Hexastore& store, Id object);
SubjectPredRows LubmRelatedToCovp(const VerticalStore& store, Id object);
SubjectPredRows LubmRelatedToOracle(const TripleStore& store, Id object);

// ---- LQ3: all immediate information about a resource --------------------

IdTripleVec LubmQ3Hexa(const Hexastore& store, Id resource);
IdTripleVec LubmQ3Covp(const VerticalStore& store, Id resource);
IdTripleVec LubmQ3Oracle(const TripleStore& store, Id resource);

// ---- LQ4: people related to taught courses, grouped by course -----------

GroupedRows LubmQ4Hexa(const Hexastore& store, const LubmIds& ids);
GroupedRows LubmQ4Covp(const VerticalStore& store, const LubmIds& ids);
GroupedRows LubmQ4Oracle(const TripleStore& store, const LubmIds& ids);

// ---- LQ5: degree holders from related universities, grouped -------------

DegreeGroups LubmQ5Hexa(const Hexastore& store, const LubmIds& ids);
DegreeGroups LubmQ5Covp(const VerticalStore& store, const LubmIds& ids);
DegreeGroups LubmQ5Oracle(const TripleStore& store, const LubmIds& ids);

}  // namespace hexastore::workload

#endif  // HEXASTORE_WORKLOAD_LUBM_QUERIES_H_

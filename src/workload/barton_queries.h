// The seven Barton benchmark queries (paper §5.2.1), implemented with the
// exact per-store processing strategies the paper describes for
// Hexastore, COVP1 (pso only) and COVP2 (pso + pos), plus a naive oracle
// over the generic TripleStore interface for correctness cross-checking.
//
// Every implementation of a query returns the same canonical result type,
// sorted, so tests can assert equality across all four implementations.
//
// The `subset` parameter reproduces the paper's `_28` variants: when
// non-null, only properties in the (sorted) subset participate
// (BQ2/BQ3/BQ4/BQ6).
#ifndef HEXASTORE_WORKLOAD_BARTON_QUERIES_H_
#define HEXASTORE_WORKLOAD_BARTON_QUERIES_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "baseline/vertical_store.h"
#include "core/hexastore.h"
#include "core/store_interface.h"
#include "dict/dictionary.h"
#include "index/sorted_vec.h"

namespace hexastore::workload {

/// Dictionary-resolved ids of the Barton vocabulary a query needs.
struct BartonIds {
  Id prop_type = kInvalidId;
  Id prop_language = kInvalidId;
  Id prop_origin = kInvalidId;
  Id prop_records = kInvalidId;
  Id prop_point = kInvalidId;
  Id prop_encoding = kInvalidId;

  Id val_text = kInvalidId;
  Id val_french = kInvalidId;
  Id val_dlc = kInvalidId;
  Id val_end = kInvalidId;

  /// Ids of the 28 preselected properties that exist in the dictionary,
  /// sorted ascending (for the `_28` variants).
  IdVec preselected;

  /// Looks up all vocabulary ids (absent terms stay kInvalidId).
  static BartonIds Resolve(const Dictionary& dict);
};

/// (id, count) aggregation rows, sorted by id.
using CountRows = std::vector<std::pair<Id, std::uint64_t>>;

/// ((property, object), count) aggregation rows, sorted.
using PairCountRows =
    std::vector<std::pair<std::pair<Id, Id>, std::uint64_t>>;

/// (subject, value) rows, sorted.
using IdPairRows = std::vector<std::pair<Id, Id>>;

// ---- BQ1: count of each object value of property Type ------------------

CountRows BartonQ1Hexa(const Hexastore& store, const BartonIds& ids);
CountRows BartonQ1Covp(const VerticalStore& store, const BartonIds& ids);
CountRows BartonQ1Oracle(const TripleStore& store, const BartonIds& ids);

// ---- BQ2: property frequencies for subjects of Type:Text ---------------

CountRows BartonQ2Hexa(const Hexastore& store, const BartonIds& ids,
                       const IdVec* subset);
CountRows BartonQ2Covp(const VerticalStore& store, const BartonIds& ids,
                       const IdVec* subset);
CountRows BartonQ2Oracle(const TripleStore& store, const BartonIds& ids,
                         const IdVec* subset);

// ---- BQ3: 'popular' object values for Type:Text subjects ----------------
// Reports ((property, object), count) rows for every object value related
// to a qualifying subject, where count is the value's store-wide
// popularity under that property (number of subjects carrying it) and
// only values with count > 1 are reported.

PairCountRows BartonQ3Hexa(const Hexastore& store, const BartonIds& ids,
                           const IdVec* subset);
PairCountRows BartonQ3Covp(const VerticalStore& store, const BartonIds& ids,
                           const IdVec* subset);
PairCountRows BartonQ3Oracle(const TripleStore& store, const BartonIds& ids,
                             const IdVec* subset);

// ---- BQ4: as BQ3, subjects of Type:Text AND Language:French ------------

PairCountRows BartonQ4Hexa(const Hexastore& store, const BartonIds& ids,
                           const IdVec* subset);
PairCountRows BartonQ4Covp(const VerticalStore& store, const BartonIds& ids,
                           const IdVec* subset);
PairCountRows BartonQ4Oracle(const TripleStore& store, const BartonIds& ids,
                             const IdVec* subset);

// ---- BQ5: inferred (non-Text) types of DLC-origin recording subjects ---

IdPairRows BartonQ5Hexa(const Hexastore& store, const BartonIds& ids);
IdPairRows BartonQ5Covp(const VerticalStore& store, const BartonIds& ids);
IdPairRows BartonQ5Oracle(const TripleStore& store, const BartonIds& ids);

// ---- BQ6: BQ2-style aggregation over known-or-inferred Text subjects ---

CountRows BartonQ6Hexa(const Hexastore& store, const BartonIds& ids,
                       const IdVec* subset);
CountRows BartonQ6Covp(const VerticalStore& store, const BartonIds& ids,
                       const IdVec* subset);
CountRows BartonQ6Oracle(const TripleStore& store, const BartonIds& ids,
                         const IdVec* subset);

// ---- BQ7: Encoding and Type of resources with Point:"end" --------------

IdTripleVec BartonQ7Hexa(const Hexastore& store, const BartonIds& ids);
IdTripleVec BartonQ7Covp(const VerticalStore& store, const BartonIds& ids);
IdTripleVec BartonQ7Oracle(const TripleStore& store, const BartonIds& ids);

}  // namespace hexastore::workload

#endif  // HEXASTORE_WORKLOAD_BARTON_QUERIES_H_

#include "workload/lubm_queries.h"

#include <algorithm>
#include <functional>

#include "data/lubm_generator.h"

namespace hexastore::workload {

namespace {

const IdVec kEmpty;

const IdVec& OrEmpty(const IdVec* v) { return v == nullptr ? kEmpty : *v; }

}  // namespace

LubmIds LubmIds::Resolve(const Dictionary& dict) {
  using data::LubmGenerator;
  LubmIds ids;
  ids.prop_type = dict.Lookup(LubmGenerator::PropType());
  ids.prop_teacher_of = dict.Lookup(LubmGenerator::PropTeacherOf());
  ids.prop_ug_degree =
      dict.Lookup(LubmGenerator::PropUndergraduateDegreeFrom());
  ids.prop_ms_degree = dict.Lookup(LubmGenerator::PropMastersDegreeFrom());
  ids.prop_phd_degree =
      dict.Lookup(LubmGenerator::PropDoctoralDegreeFrom());
  ids.class_university = dict.Lookup(LubmGenerator::ClassUniversity());
  ids.course10 = dict.Lookup(LubmGenerator::CourseUri(0, 0, 10));
  ids.university0 = dict.Lookup(LubmGenerator::UniversityUri(0));
  ids.assoc_prof10 =
      dict.Lookup(LubmGenerator::AssociateProfessorUri(0, 0, 10));
  return ids;
}

// ---- LQ1 / LQ2 -----------------------------------------------------------

SubjectPredRows LubmRelatedToHexa(const Hexastore& store, Id object) {
  // Direct osp lookup: subject vector of the object, then the shared
  // p(s, o) terminal lists.
  SubjectPredRows rows;
  for (Id s : OrEmpty(store.subjects_of_object(object))) {
    for (Id p : *store.predicates(s, object)) {
      rows.emplace_back(s, p);
    }
  }
  return rows;  // sorted: osp subject vector and p lists are sorted
}

SubjectPredRows LubmRelatedToCovp(const VerticalStore& store, Id object) {
  // Multiple selections on the object, one per property table.
  SubjectPredRows rows;
  for (Id p : store.Properties()) {
    if (store.with_object_index()) {
      for (Id s : OrEmpty(store.subject_list(p, object))) {
        rows.emplace_back(s, p);
      }
    } else {
      // COVP1: walk the subject-sorted table.
      for (Id s : OrEmpty(store.subject_vector(p))) {
        if (SortedContains(*store.object_list(p, s), object)) {
          rows.emplace_back(s, p);
        }
      }
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

SubjectPredRows LubmRelatedToOracle(const TripleStore& store, Id object) {
  SubjectPredRows rows;
  store.Scan(IdPattern{kInvalidId, kInvalidId, object},
             [&rows](const IdTriple& t) { rows.emplace_back(t.s, t.p); });
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

// ---- LQ3 -----------------------------------------------------------------

IdTripleVec LubmQ3Hexa(const Hexastore& store, Id resource) {
  // Two lookups: spo for the subject side, ops/osp for the object side.
  IdTripleVec rows;
  for (Id p : OrEmpty(store.predicates_of_subject(resource))) {
    for (Id o : *store.objects(resource, p)) {
      rows.push_back(IdTriple{resource, p, o});
    }
  }
  for (Id p : OrEmpty(store.predicates_of_object(resource))) {
    for (Id s : *store.subjects(p, resource)) {
      rows.push_back(IdTriple{s, p, resource});
    }
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

IdTripleVec LubmQ3Covp(const VerticalStore& store, Id resource) {
  // Selection on both subject and object in every property table, then
  // union.
  IdTripleVec rows;
  for (Id p : store.Properties()) {
    for (Id o : OrEmpty(store.object_list(p, resource))) {
      rows.push_back(IdTriple{resource, p, o});
    }
    if (store.with_object_index()) {
      for (Id s : OrEmpty(store.subject_list(p, resource))) {
        rows.push_back(IdTriple{s, p, resource});
      }
    } else {
      for (Id s : OrEmpty(store.subject_vector(p))) {
        if (SortedContains(*store.object_list(p, s), resource)) {
          rows.push_back(IdTriple{s, p, resource});
        }
      }
    }
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

IdTripleVec LubmQ3Oracle(const TripleStore& store, Id resource) {
  IdTripleVec rows;
  store.Scan(IdPattern{resource, kInvalidId, kInvalidId},
             [&rows](const IdTriple& t) { rows.push_back(t); });
  store.Scan(IdPattern{kInvalidId, kInvalidId, resource},
             [&rows](const IdTriple& t) { rows.push_back(t); });
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

// ---- LQ4 -----------------------------------------------------------------

GroupedRows LubmQ4Hexa(const Hexastore& store, const LubmIds& ids) {
  // Courses AP10 teaches come from the shared o(s, p) list; per course,
  // an osp lookup collects related people.
  GroupedRows groups;
  for (Id course :
       OrEmpty(store.objects(ids.assoc_prof10, ids.prop_teacher_of))) {
    SubjectPredRows rows;
    for (Id s : OrEmpty(store.subjects_of_object(course))) {
      for (Id p : *store.predicates(s, course)) {
        rows.emplace_back(s, p);
      }
    }
    groups.emplace_back(course, std::move(rows));
  }
  return groups;  // course list sorted; inner rows sorted by construction
}

GroupedRows LubmQ4Covp(const VerticalStore& store, const LubmIds& ids) {
  // Step 1: list of taught courses from the TeacherOf table.
  const IdVec& courses =
      OrEmpty(store.object_list(ids.prop_teacher_of, ids.assoc_prof10));
  GroupedRows groups;
  for (Id course : courses) {
    SubjectPredRows rows;
    for (Id p : store.Properties()) {
      if (store.with_object_index()) {
        for (Id s : OrEmpty(store.subject_list(p, course))) {
          rows.emplace_back(s, p);
        }
      } else {
        for (Id s : OrEmpty(store.subject_vector(p))) {
          if (SortedContains(*store.object_list(p, s), course)) {
            rows.emplace_back(s, p);
          }
        }
      }
    }
    std::sort(rows.begin(), rows.end());
    groups.emplace_back(course, std::move(rows));
  }
  return groups;
}

GroupedRows LubmQ4Oracle(const TripleStore& store, const LubmIds& ids) {
  IdVec courses;
  store.Scan(
      IdPattern{ids.assoc_prof10, ids.prop_teacher_of, kInvalidId},
      [&courses](const IdTriple& t) { courses.push_back(t.o); });
  SortUnique(&courses);
  GroupedRows groups;
  for (Id course : courses) {
    SubjectPredRows rows;
    store.Scan(IdPattern{kInvalidId, kInvalidId, course},
               [&rows](const IdTriple& t) {
                 rows.emplace_back(t.s, t.p);
               });
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    groups.emplace_back(course, std::move(rows));
  }
  return groups;
}

// ---- LQ5 -----------------------------------------------------------------

namespace {

// Collects degree holders per university for the three degree
// predicates, given the subject-list accessor of the store.
DegreeGroups CollectDegreeHolders(
    const IdVec& universities, const LubmIds& ids,
    const std::function<void(Id deg, Id uni, IdVec* out)>& holders_of) {
  DegreeGroups groups;
  for (Id uni : universities) {
    IdVec people;
    for (Id deg :
         {ids.prop_ug_degree, ids.prop_ms_degree, ids.prop_phd_degree}) {
      holders_of(deg, uni, &people);
    }
    SortUnique(&people);
    if (!people.empty()) {
      groups.emplace_back(uni, std::move(people));
    }
  }
  return groups;
}

}  // namespace

DegreeGroups LubmQ5Hexa(const Hexastore& store, const LubmIds& ids) {
  // Step 1: t = object vector of AP10 in sop indexing (everything AP10 is
  // related to), straight from the sop index.
  const IdVec& t = OrEmpty(store.objects_of_subject(ids.assoc_prof10));
  // Step 2: refine to universities by merge-joining with the pos subject
  // list of (Type, University).
  IdVec unis = Intersect(
      t, OrEmpty(store.subjects(ids.prop_type, ids.class_university)));
  // Step 3: per university, pos lookups in the three degree predicates.
  return CollectDegreeHolders(
      unis, ids, [&](Id deg, Id uni, IdVec* out) {
        for (Id s : OrEmpty(store.subjects(deg, uni))) {
          out->push_back(s);
        }
      });
}

DegreeGroups LubmQ5Covp(const VerticalStore& store, const LubmIds& ids) {
  // Step 1: objects AP10 relates to, scanning every pso property table.
  IdVec t;
  for (Id p : store.Properties()) {
    for (Id o : OrEmpty(store.object_list(p, ids.assoc_prof10))) {
      t.push_back(o);
    }
  }
  SortUnique(&t);
  // Step 2: refine to universities.
  IdVec unis;
  if (store.with_object_index()) {
    unis = Intersect(
        t, OrEmpty(store.subject_list(ids.prop_type, ids.class_university)));
  } else {
    const IdVec& typed = OrEmpty(store.subject_vector(ids.prop_type));
    MergeJoin(t, typed, [&](Id x) {
      if (SortedContains(*store.object_list(ids.prop_type, x),
                         ids.class_university)) {
        unis.push_back(x);
      }
    });
  }
  // Step 3: degree holders.
  if (store.with_object_index()) {
    return CollectDegreeHolders(
        unis, ids, [&](Id deg, Id uni, IdVec* out) {
          for (Id s : OrEmpty(store.subject_list(deg, uni))) {
            out->push_back(s);
          }
        });
  }
  // COVP1: join unis against the subject vectors of the degree tables.
  return CollectDegreeHolders(
      unis, ids, [&](Id deg, Id uni, IdVec* out) {
        for (Id s : OrEmpty(store.subject_vector(deg))) {
          if (SortedContains(*store.object_list(deg, s), uni)) {
            out->push_back(s);
          }
        }
      });
}

DegreeGroups LubmQ5Oracle(const TripleStore& store, const LubmIds& ids) {
  IdVec t;
  store.Scan(IdPattern{ids.assoc_prof10, kInvalidId, kInvalidId},
             [&t](const IdTriple& triple) { t.push_back(triple.o); });
  SortUnique(&t);
  IdVec unis;
  for (Id x : t) {
    if (store.Contains(IdTriple{x, ids.prop_type, ids.class_university})) {
      unis.push_back(x);
    }
  }
  return CollectDegreeHolders(
      unis, ids, [&](Id deg, Id uni, IdVec* out) {
        store.Scan(IdPattern{kInvalidId, deg, uni},
                   [out](const IdTriple& triple) {
                     out->push_back(triple.s);
                   });
      });
}

}  // namespace hexastore::workload

#include "workload/barton_queries.h"

#include <algorithm>
#include <functional>
#include <map>
#include <unordered_map>

#include "data/barton_generator.h"

namespace hexastore::workload {

namespace {

const IdVec kEmpty;

// Dereferences a possibly-null list pointer.
const IdVec& OrEmpty(const IdVec* v) { return v == nullptr ? kEmpty : *v; }

CountRows ToCountRows(const std::unordered_map<Id, std::uint64_t>& m) {
  CountRows rows(m.begin(), m.end());
  std::sort(rows.begin(), rows.end());
  return rows;
}

// True when `p` participates under the optional `_28` restriction.
bool InSubset(const IdVec* subset, Id p) {
  return subset == nullptr || SortedContains(*subset, p);
}

// Properties a COVP store iterates: the preselected subset if given, else
// every property table in the store.
std::vector<Id> CovpProperties(const VerticalStore& store,
                               const IdVec* subset) {
  if (subset != nullptr) {
    return *subset;
  }
  return store.Properties();
}

// COVP1-style subject pre-selection: walk the property's subject vector
// and keep subjects whose object list contains `value` (the pso index has
// no object-order access).
IdVec Covp1SelectSubjects(const VerticalStore& store, Id prop, Id value) {
  IdVec out;
  const IdVec& subjects = OrEmpty(store.subject_vector(prop));
  for (Id s : subjects) {
    if (SortedContains(OrEmpty(store.object_list(prop, s)), value)) {
      out.push_back(s);
    }
  }
  return out;  // sorted: subject vector was sorted
}

// Selection of subjects with (s, prop, value), choosing the store's best
// strategy (pos subject list on COVP2, table walk on COVP1).
IdVec CovpSelectSubjects(const VerticalStore& store, Id prop, Id value) {
  if (store.with_object_index()) {
    return OrEmpty(store.subject_list(prop, value));
  }
  return Covp1SelectSubjects(store, prop, value);
}

// Oracle subject selection via generic scans.
IdVec OracleSelectSubjects(const TripleStore& store, Id prop, Id value) {
  IdVec out;
  store.Scan(IdPattern{kInvalidId, prop, value},
             [&out](const IdTriple& t) { out.push_back(t.s); });
  SortUnique(&out);
  return out;
}

// Shared second step of BQ2/BQ6: property frequencies over subject set
// `t` (sorted), on a Hexastore via the spo index. The `_28` restriction
// is applied to the aggregated rows, not per lookup: the spo walk only
// touches properties the qualifying subjects actually define, so
// filtering afterwards is both cheaper and equivalent.
CountRows HexaPropertyFrequencies(const Hexastore& store, const IdVec& t,
                                  const IdVec* subset) {
  std::unordered_map<Id, std::uint64_t> freq;
  for (Id s : t) {
    for (Id p : OrEmpty(store.predicates_of_subject(s))) {
      freq[p] += store.objects(s, p)->size();
    }
  }
  if (subset != nullptr) {
    for (auto it = freq.begin(); it != freq.end();) {
      if (!SortedContains(*subset, it->first)) {
        it = freq.erase(it);
      } else {
        ++it;
      }
    }
  }
  return ToCountRows(freq);
}

// Shared second step of BQ2/BQ6 on a COVP store: every candidate property
// table is merge-joined with `t`.
CountRows CovpPropertyFrequencies(const VerticalStore& store, const IdVec& t,
                                  const IdVec* subset) {
  std::unordered_map<Id, std::uint64_t> freq;
  for (Id p : CovpProperties(store, subset)) {
    const IdVec* subjects = store.subject_vector(p);
    if (subjects == nullptr) {
      continue;
    }
    std::uint64_t f = 0;
    MergeJoin(t, *subjects, [&](Id s) {
      f += store.object_list(p, s)->size();
    });
    if (f > 0) {
      freq[p] = f;
    }
  }
  return ToCountRows(freq);
}

CountRows OraclePropertyFrequencies(const TripleStore& store, const IdVec& t,
                                    const IdVec* subset) {
  std::unordered_map<Id, std::uint64_t> freq;
  store.Scan(IdPattern{}, [&](const IdTriple& triple) {
    if (!SortedContains(t, triple.s) || !InSubset(subset, triple.p)) {
      return;
    }
    ++freq[triple.p];
  });
  return ToCountRows(freq);
}

// Shared final step of BQ3/BQ4: report, per property, the object values
// related to the qualifying subjects `t` whose store-wide popularity
// (number of subjects carrying that value under that property) exceeds
// one.
//
// This is where the pos index pays off (paper: COVP2 "utilizes its pos
// index in the final processing step, in order to retrieve the count of
// each object related to subjects in t for each property"): with
// object-sorted access the count of a value is simply the length of its
// s(p, o) subject list, while COVP1 must re-count every property table by
// scanning it whole.
//
// Hexastore additionally keeps its spo advantage: candidate (p, o) pairs
// come from the property vectors of the subjects in t only, not from
// every property table.
PairCountRows HexaPopularObjects(const Hexastore& store, const IdVec& t,
                                 const IdVec* subset) {
  // Candidate (property, object) pairs related to t, from the spo index.
  std::vector<std::pair<Id, Id>> candidates;
  for (Id s : t) {
    for (Id p : OrEmpty(store.predicates_of_subject(s))) {
      if (!InSubset(subset, p)) {
        continue;
      }
      for (Id o : *store.objects(s, p)) {
        candidates.emplace_back(p, o);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  // Count retrieval: one shared s(p, o) list length per candidate.
  PairCountRows rows;
  for (const auto& [p, o] : candidates) {
    const std::size_t c = store.subjects(p, o)->size();
    if (c > 1) {
      rows.emplace_back(std::make_pair(p, o), c);
    }
  }
  return rows;  // candidates were sorted
}

PairCountRows CovpPopularObjects(const VerticalStore& store, const IdVec& t,
                                 const IdVec* subset) {
  PairCountRows rows;
  for (Id p : CovpProperties(store, subset)) {
    const IdVec* subjects = store.subject_vector(p);
    if (subjects == nullptr) {
      continue;
    }
    if (store.with_object_index()) {
      // COVP2: candidate objects from the t-join, counts from the
      // pos-side subject lists.
      IdVec objects;
      MergeJoin(t, *subjects, [&](Id s) {
        const IdVec& os = *store.object_list(p, s);
        objects.insert(objects.end(), os.begin(), os.end());
      });
      SortUnique(&objects);
      for (Id o : objects) {
        const std::size_t c = store.subject_list(p, o)->size();
        if (c > 1) {
          rows.emplace_back(std::make_pair(p, o), c);
        }
      }
    } else {
      // COVP1: no object order anywhere, so the whole table must be
      // scanned to establish each value's popularity; the t-join then
      // selects which values to report.
      std::unordered_map<Id, std::uint64_t> popularity;
      for (Id s : *subjects) {
        for (Id o : *store.object_list(p, s)) {
          ++popularity[o];
        }
      }
      IdVec related;
      MergeJoin(t, *subjects, [&](Id s) {
        const IdVec& os = *store.object_list(p, s);
        related.insert(related.end(), os.begin(), os.end());
      });
      SortUnique(&related);
      for (Id o : related) {
        const std::uint64_t c = popularity[o];
        if (c > 1) {
          rows.emplace_back(std::make_pair(p, o), c);
        }
      }
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

PairCountRows OraclePopularObjects(const TripleStore& store, const IdVec& t,
                                   const IdVec* subset) {
  // Pass 1: store-wide popularity of every (p, o) pair.
  std::map<std::pair<Id, Id>, std::uint64_t> popularity;
  store.Scan(IdPattern{}, [&](const IdTriple& triple) {
    if (!InSubset(subset, triple.p)) {
      return;
    }
    ++popularity[{triple.p, triple.o}];
  });
  // Pass 2: (p, o) pairs related to subjects in t.
  std::map<std::pair<Id, Id>, bool> related;
  store.Scan(IdPattern{}, [&](const IdTriple& triple) {
    if (!SortedContains(t, triple.s) || !InSubset(subset, triple.p)) {
      return;
    }
    related[{triple.p, triple.o}] = true;
  });
  PairCountRows rows;
  for (const auto& [key, seen] : related) {
    (void)seen;
    const std::uint64_t c = popularity[key];
    if (c > 1) {
      rows.emplace_back(key, c);
    }
  }
  return rows;
}

}  // namespace

BartonIds BartonIds::Resolve(const Dictionary& dict) {
  using data::BartonGenerator;
  BartonIds ids;
  ids.prop_type = dict.Lookup(BartonGenerator::PropType());
  ids.prop_language = dict.Lookup(BartonGenerator::PropLanguage());
  ids.prop_origin = dict.Lookup(BartonGenerator::PropOrigin());
  ids.prop_records = dict.Lookup(BartonGenerator::PropRecords());
  ids.prop_point = dict.Lookup(BartonGenerator::PropPoint());
  ids.prop_encoding = dict.Lookup(BartonGenerator::PropEncoding());
  ids.val_text = dict.Lookup(BartonGenerator::TypeText());
  ids.val_french = dict.Lookup(BartonGenerator::LangFrench());
  ids.val_dlc = dict.Lookup(BartonGenerator::OriginDlc());
  ids.val_end = dict.Lookup(BartonGenerator::PointEnd());
  for (const Term& prop : BartonGenerator::PreselectedProperties()) {
    Id id = dict.Lookup(prop);
    if (id != kInvalidId) {
      ids.preselected.push_back(id);
    }
  }
  SortUnique(&ids.preselected);
  return ids;
}

// ---- BQ1 ----------------------------------------------------------------

CountRows BartonQ1Hexa(const Hexastore& store, const BartonIds& ids) {
  CountRows rows;
  for (Id o : OrEmpty(store.objects_of_predicate(ids.prop_type))) {
    rows.emplace_back(o, store.subjects(ids.prop_type, o)->size());
  }
  return rows;  // pos object vector is sorted
}

CountRows BartonQ1Covp(const VerticalStore& store, const BartonIds& ids) {
  if (store.with_object_index()) {
    CountRows rows;
    for (Id o : OrEmpty(store.object_vector(ids.prop_type))) {
      rows.emplace_back(o, store.subject_list(ids.prop_type, o)->size());
    }
    return rows;
  }
  // COVP1: self-join aggregation on object value over the pso index.
  std::unordered_map<Id, std::uint64_t> counts;
  for (Id s : OrEmpty(store.subject_vector(ids.prop_type))) {
    for (Id o : *store.object_list(ids.prop_type, s)) {
      ++counts[o];
    }
  }
  return ToCountRows(counts);
}

CountRows BartonQ1Oracle(const TripleStore& store, const BartonIds& ids) {
  std::unordered_map<Id, std::uint64_t> counts;
  store.Scan(IdPattern{kInvalidId, ids.prop_type, kInvalidId},
             [&counts](const IdTriple& t) { ++counts[t.o]; });
  return ToCountRows(counts);
}

// ---- BQ2 ----------------------------------------------------------------

CountRows BartonQ2Hexa(const Hexastore& store, const BartonIds& ids,
                       const IdVec* subset) {
  const IdVec& t = OrEmpty(store.subjects(ids.prop_type, ids.val_text));
  return HexaPropertyFrequencies(store, t, subset);
}

CountRows BartonQ2Covp(const VerticalStore& store, const BartonIds& ids,
                       const IdVec* subset) {
  IdVec t = CovpSelectSubjects(store, ids.prop_type, ids.val_text);
  return CovpPropertyFrequencies(store, t, subset);
}

CountRows BartonQ2Oracle(const TripleStore& store, const BartonIds& ids,
                         const IdVec* subset) {
  IdVec t = OracleSelectSubjects(store, ids.prop_type, ids.val_text);
  return OraclePropertyFrequencies(store, t, subset);
}

// ---- BQ3 ----------------------------------------------------------------

PairCountRows BartonQ3Hexa(const Hexastore& store, const BartonIds& ids,
                           const IdVec* subset) {
  const IdVec& t = OrEmpty(store.subjects(ids.prop_type, ids.val_text));
  return HexaPopularObjects(store, t, subset);
}

PairCountRows BartonQ3Covp(const VerticalStore& store, const BartonIds& ids,
                           const IdVec* subset) {
  IdVec t = CovpSelectSubjects(store, ids.prop_type, ids.val_text);
  return CovpPopularObjects(store, t, subset);
}

PairCountRows BartonQ3Oracle(const TripleStore& store, const BartonIds& ids,
                             const IdVec* subset) {
  IdVec t = OracleSelectSubjects(store, ids.prop_type, ids.val_text);
  return OraclePopularObjects(store, t, subset);
}

// ---- BQ4 ----------------------------------------------------------------

PairCountRows BartonQ4Hexa(const Hexastore& store, const BartonIds& ids,
                           const IdVec* subset) {
  // Merge-join of the two pos subject lists (Type:Text x Language:French).
  IdVec t = Intersect(OrEmpty(store.subjects(ids.prop_type, ids.val_text)),
                      OrEmpty(store.subjects(ids.prop_language,
                                             ids.val_french)));
  return HexaPopularObjects(store, t, subset);
}

PairCountRows BartonQ4Covp(const VerticalStore& store, const BartonIds& ids,
                           const IdVec* subset) {
  IdVec t;
  if (store.with_object_index()) {
    t = Intersect(OrEmpty(store.subject_list(ids.prop_type, ids.val_text)),
                  OrEmpty(store.subject_list(ids.prop_language,
                                             ids.val_french)));
  } else {
    // Joint selection from the pso indices of Type and Language.
    const IdVec& type_subjects = OrEmpty(store.subject_vector(ids.prop_type));
    const IdVec& lang_subjects =
        OrEmpty(store.subject_vector(ids.prop_language));
    MergeJoin(type_subjects, lang_subjects, [&](Id s) {
      if (SortedContains(*store.object_list(ids.prop_type, s),
                         ids.val_text) &&
          SortedContains(*store.object_list(ids.prop_language, s),
                         ids.val_french)) {
        t.push_back(s);
      }
    });
  }
  return CovpPopularObjects(store, t, subset);
}

PairCountRows BartonQ4Oracle(const TripleStore& store, const BartonIds& ids,
                             const IdVec* subset) {
  IdVec t = Intersect(
      OracleSelectSubjects(store, ids.prop_type, ids.val_text),
      OracleSelectSubjects(store, ids.prop_language, ids.val_french));
  return OraclePopularObjects(store, t, subset);
}

// ---- BQ5 ----------------------------------------------------------------

namespace {

// Inferred-type table T: (recorded object x, type) pairs for recorded
// objects that are subjects of Type, keeping types that satisfy
// `keep_text` (false: non-Text inference of BQ5; true: Text inference of
// BQ6). Flat and sorted by x (then type).
using InferredTable = std::vector<std::pair<Id, Id>>;

InferredTable HexaInferredTypeTable(const Hexastore& store,
                                    const BartonIds& ids, bool keep_text) {
  InferredTable table;
  const IdVec& recorded = OrEmpty(store.objects_of_predicate(
      ids.prop_records));  // pos object vector, sorted
  const IdVec& typed =
      OrEmpty(store.subjects_of_predicate(ids.prop_type));  // pso, sorted
  MergeJoin(recorded, typed, [&](Id x) {
    for (Id ty : *store.objects(x, ids.prop_type)) {
      if ((ty == ids.val_text) == keep_text) {
        table.emplace_back(x, ty);
      }
    }
  });
  return table;
}

InferredTable CovpInferredTypeTable(const VerticalStore& store,
                                    const BartonIds& ids, bool keep_text) {
  // COVP2 path; COVP1 uses the pair-based strategy inline in its query.
  InferredTable table;
  const IdVec& recorded = OrEmpty(store.object_vector(ids.prop_records));
  const IdVec& typed = OrEmpty(store.subject_vector(ids.prop_type));
  MergeJoin(recorded, typed, [&](Id x) {
    for (Id ty : *store.object_list(ids.prop_type, x)) {
      if ((ty == ids.val_text) == keep_text) {
        table.emplace_back(x, ty);
      }
    }
  });
  return table;
}

// Expands a DLC subject list against an inferred-type table: for every
// subject s and recorded object x in T, emit (s, type) per kept type.
IdPairRows ExpandInference(
    const IdVec& dlc_subjects, const InferredTable& table,
    const std::function<const IdVec*(Id)>& records_of) {
  IdPairRows rows;
  for (Id s : dlc_subjects) {
    const IdVec* recs = records_of(s);
    if (recs == nullptr) {
      continue;
    }
    for (Id x : *recs) {
      auto it = std::lower_bound(table.begin(), table.end(),
                                 std::make_pair(x, Id(0)));
      for (; it != table.end() && it->first == x; ++it) {
        rows.emplace_back(s, it->second);
      }
    }
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

}  // namespace

IdPairRows BartonQ5Hexa(const Hexastore& store, const BartonIds& ids) {
  const IdVec& s_dlc =
      OrEmpty(store.subjects(ids.prop_origin, ids.val_dlc));
  auto table = HexaInferredTypeTable(store, ids, /*keep_text=*/false);
  return ExpandInference(s_dlc, table, [&](Id s) {
    return store.objects(s, ids.prop_records);
  });
}

IdPairRows BartonQ5Covp(const VerticalStore& store, const BartonIds& ids) {
  if (store.with_object_index()) {
    const IdVec& s_dlc =
        OrEmpty(store.subject_list(ids.prop_origin, ids.val_dlc));
    auto table = CovpInferredTypeTable(store, ids, /*keep_text=*/false);
    return ExpandInference(s_dlc, table, [&](Id s) {
      return store.object_list(ids.prop_records, s);
    });
  }
  // COVP1: select on Origin:DLC by table walk; join with the Records
  // subject vector; sort the recorded-object pairs; sort-merge against the
  // Type subject vector.
  IdVec s_dlc = Covp1SelectSubjects(store, ids.prop_origin, ids.val_dlc);
  std::vector<std::pair<Id, Id>> pairs;  // (recorded object x, subject s)
  MergeJoin(s_dlc, OrEmpty(store.subject_vector(ids.prop_records)),
            [&](Id s) {
              for (Id x : *store.object_list(ids.prop_records, s)) {
                pairs.emplace_back(x, s);
              }
            });
  std::sort(pairs.begin(), pairs.end());
  IdPairRows rows;
  const IdVec& typed = OrEmpty(store.subject_vector(ids.prop_type));
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < pairs.size() && j < typed.size()) {
    if (pairs[i].first < typed[j]) {
      ++i;
    } else if (typed[j] < pairs[i].first) {
      ++j;
    } else {
      const Id x = typed[j];
      for (Id ty : *store.object_list(ids.prop_type, x)) {
        if (ty != ids.val_text) {
          std::size_t k = i;
          while (k < pairs.size() && pairs[k].first == x) {
            rows.emplace_back(pairs[k].second, ty);
            ++k;
          }
        }
      }
      while (i < pairs.size() && pairs[i].first == x) {
        ++i;
      }
      ++j;
    }
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

IdPairRows BartonQ5Oracle(const TripleStore& store, const BartonIds& ids) {
  IdVec s_dlc = OracleSelectSubjects(store, ids.prop_origin, ids.val_dlc);
  IdPairRows rows;
  for (Id s : s_dlc) {
    store.Scan(IdPattern{s, ids.prop_records, kInvalidId},
               [&](const IdTriple& rec) {
                 store.Scan(IdPattern{rec.o, ids.prop_type, kInvalidId},
                            [&](const IdTriple& ty) {
                              if (ty.o != ids.val_text) {
                                rows.emplace_back(s, ty.o);
                              }
                            });
               });
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

// ---- BQ6 ----------------------------------------------------------------

namespace {

// Subjects inferred to be Text: DLC-origin subjects recording an object
// whose Type is Text.
IdVec InferredTextSubjects(const IdVec& dlc_subjects,
                           const InferredTable& table,
                           const std::function<const IdVec*(Id)>& records_of) {
  IdVec out;
  for (Id s : dlc_subjects) {
    const IdVec* recs = records_of(s);
    if (recs == nullptr) {
      continue;
    }
    for (Id x : *recs) {
      auto it = std::lower_bound(table.begin(), table.end(),
                                 std::make_pair(x, Id(0)));
      if (it != table.end() && it->first == x) {
        out.push_back(s);
        break;
      }
    }
  }
  return out;  // sorted: dlc_subjects was sorted
}

}  // namespace

CountRows BartonQ6Hexa(const Hexastore& store, const BartonIds& ids,
                       const IdVec* subset) {
  const IdVec& known = OrEmpty(store.subjects(ids.prop_type, ids.val_text));
  const IdVec& s_dlc =
      OrEmpty(store.subjects(ids.prop_origin, ids.val_dlc));
  auto table = HexaInferredTypeTable(store, ids, /*keep_text=*/true);
  IdVec inferred = InferredTextSubjects(s_dlc, table, [&](Id s) {
    return store.objects(s, ids.prop_records);
  });
  IdVec all = Union(known, inferred);
  return HexaPropertyFrequencies(store, all, subset);
}

CountRows BartonQ6Covp(const VerticalStore& store, const BartonIds& ids,
                       const IdVec* subset) {
  IdVec known = CovpSelectSubjects(store, ids.prop_type, ids.val_text);
  IdVec inferred;
  if (store.with_object_index()) {
    const IdVec& s_dlc =
        OrEmpty(store.subject_list(ids.prop_origin, ids.val_dlc));
    auto table = CovpInferredTypeTable(store, ids, /*keep_text=*/true);
    inferred = InferredTextSubjects(s_dlc, table, [&](Id s) {
      return store.object_list(ids.prop_records, s);
    });
  } else {
    // COVP1: reuse the BQ5 pair strategy, but keep Text-typed targets.
    IdVec s_dlc = Covp1SelectSubjects(store, ids.prop_origin, ids.val_dlc);
    std::vector<std::pair<Id, Id>> pairs;
    MergeJoin(s_dlc, OrEmpty(store.subject_vector(ids.prop_records)),
              [&](Id s) {
                for (Id x : *store.object_list(ids.prop_records, s)) {
                  pairs.emplace_back(x, s);
                }
              });
    std::sort(pairs.begin(), pairs.end());
    const IdVec& typed = OrEmpty(store.subject_vector(ids.prop_type));
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < pairs.size() && j < typed.size()) {
      if (pairs[i].first < typed[j]) {
        ++i;
      } else if (typed[j] < pairs[i].first) {
        ++j;
      } else {
        const Id x = typed[j];
        if (SortedContains(*store.object_list(ids.prop_type, x),
                           ids.val_text)) {
          std::size_t k = i;
          while (k < pairs.size() && pairs[k].first == x) {
            inferred.push_back(pairs[k].second);
            ++k;
          }
        }
        while (i < pairs.size() && pairs[i].first == x) {
          ++i;
        }
        ++j;
      }
    }
    SortUnique(&inferred);
  }
  IdVec all = Union(known, inferred);
  return CovpPropertyFrequencies(store, all, subset);
}

CountRows BartonQ6Oracle(const TripleStore& store, const BartonIds& ids,
                         const IdVec* subset) {
  IdVec known = OracleSelectSubjects(store, ids.prop_type, ids.val_text);
  IdVec s_dlc = OracleSelectSubjects(store, ids.prop_origin, ids.val_dlc);
  IdVec inferred;
  for (Id s : s_dlc) {
    bool is_text = false;
    store.Scan(IdPattern{s, ids.prop_records, kInvalidId},
               [&](const IdTriple& rec) {
                 store.Scan(
                     IdPattern{rec.o, ids.prop_type, ids.val_text},
                     [&](const IdTriple&) { is_text = true; });
               });
    if (is_text) {
      inferred.push_back(s);
    }
  }
  IdVec all = Union(known, inferred);
  return OraclePropertyFrequencies(store, all, subset);
}

// ---- BQ7 ----------------------------------------------------------------

namespace {

IdTripleVec ExpandPointEnd(const IdVec& t, const BartonIds& ids,
                           const std::function<const IdVec*(Id, Id)>&
                               objects_of) {
  IdTripleVec rows;
  for (Id s : t) {
    for (Id p : {ids.prop_encoding, ids.prop_type}) {
      const IdVec* os = objects_of(s, p);
      if (os == nullptr) {
        continue;
      }
      for (Id o : *os) {
        rows.push_back(IdTriple{s, p, o});
      }
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace

IdTripleVec BartonQ7Hexa(const Hexastore& store, const BartonIds& ids) {
  const IdVec& t = OrEmpty(store.subjects(ids.prop_point, ids.val_end));
  return ExpandPointEnd(t, ids, [&](Id s, Id p) {
    return store.objects(s, p);
  });
}

IdTripleVec BartonQ7Covp(const VerticalStore& store, const BartonIds& ids) {
  IdVec t = CovpSelectSubjects(store, ids.prop_point, ids.val_end);
  return ExpandPointEnd(t, ids, [&](Id s, Id p) {
    return store.object_list(p, s);
  });
}

IdTripleVec BartonQ7Oracle(const TripleStore& store, const BartonIds& ids) {
  IdVec t = OracleSelectSubjects(store, ids.prop_point, ids.val_end);
  IdTripleVec rows;
  for (Id s : t) {
    for (Id p : {ids.prop_encoding, ids.prop_type}) {
      store.Scan(IdPattern{s, p, kInvalidId},
                 [&rows](const IdTriple& t2) { rows.push_back(t2); });
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace hexastore::workload

#include "wal/wal_reader.h"

#include <cstring>

#include "wal/file_util.h"

namespace hexastore {

namespace {

// True when the invalid region at [pos, size) is small enough to be the
// single frame a crash tore mid-write. More trailing bytes than one
// frame means valid records may follow the damage — that is media
// corruption, not a torn tail, and must not be silently truncated.
bool PlausiblyTornTail(std::size_t pos, std::size_t size) {
  return size - pos <= kMaxWalFrameBytes;
}

}  // namespace

Result<WalSegmentContents> ReadWalSegment(const std::string& path,
                                          bool tolerate_torn_tail) {
  std::string buf;
  if (Status s = ReadFileToString(path, &buf); !s.ok()) {
    return s;
  }
  WalSegmentContents out;
  if (buf.size() < kWalHeaderBytes ||
      std::memcmp(buf.data(), kWalMagic, kWalHeaderBytes) != 0) {
    // A crash between creat() and the header write leaves a short file;
    // that is a torn tail of length zero. A full-size segment with a
    // damaged header is corruption, even in the newest segment.
    if (tolerate_torn_tail && buf.size() < kWalHeaderBytes) {
      out.torn_tail = true;
      return out;
    }
    return Status::ParseError("bad WAL segment header: " + path);
  }
  std::size_t pos = kWalHeaderBytes;
  std::uint64_t prev_sequence = 0;
  while (true) {
    WalRecord record;
    const std::size_t before = pos;
    const WalParse result = ParseWalRecord(buf, &pos, &record);
    if (result == WalParse::kEnd) {
      break;
    }
    if (result == WalParse::kCorrupt ||
        (prev_sequence != 0 && record.sequence <= prev_sequence)) {
      pos = before;
      if (!tolerate_torn_tail || !PlausiblyTornTail(pos, buf.size())) {
        return Status::ParseError("corrupt WAL record in " + path);
      }
      out.torn_tail = true;
      break;
    }
    prev_sequence = record.sequence;
    out.records.push_back(record);
  }
  out.valid_bytes = pos;
  return out;
}

}  // namespace hexastore

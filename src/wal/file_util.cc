#include "wal/file_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "wal/wal_format.h"

namespace hexastore {

namespace {

namespace fs = std::filesystem;

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " +
                          std::strerror(errno));
}

Status WriteFully(int fd, const std::string& data, const char* what) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Errno("write", what);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return Status::OK();
}

}  // namespace

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

AppendFile::~AppendFile() { Close(); }

Result<AppendFile> AppendFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Errno("open", path);
  }
  return AppendFile(fd);
}

Status AppendFile::Append(const std::string& data) {
  return WriteFully(fd_, data, "wal segment");
}

Status AppendFile::Sync() {
  if (::fsync(fd_) != 0) {
    return Errno("fsync", "wal segment");
  }
  return Status::OK();
}

void AppendFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status EnsureDirectory(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("create_directories " + dir + ": " +
                            ec.message());
  }
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // NotFound only when the file genuinely does not exist; any other
    // open failure (EACCES, fd exhaustion, ...) must not be mistaken
    // for "fresh directory" by callers like the manifest reader.
    std::error_code ec;
    if (!fs::exists(path, ec) && !ec) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::Internal("cannot open for reading: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = std::move(buf).str();
  if (in.bad()) {
    return Status::Internal("read failure: " + path);
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path,
                       const std::string& contents) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Errno("open", tmp);
  }
  Status s = WriteFully(fd, contents, tmp.c_str());
  if (s.ok() && ::fsync(fd) != 0) {
    s = Errno("fsync", tmp);
  }
  ::close(fd);
  if (!s.ok()) {
    return s;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("rename", path);
  }
  return SyncDirectory(fs::path(path).parent_path().string());
}

Status SyncDirectory(const std::string& dir) {
  const std::string target = dir.empty() ? "." : dir;
  const int fd = ::open(target.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Errno("open dir", target);
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) {
    return Errno("fsync dir", target);
  }
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) {
    return Status::Internal("remove " + path + ": " + ec.message());
  }
  return Status::OK();
}

Status TruncateFile(const std::string& path, std::uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Errno("truncate", path);
  }
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    return Errno("open", path);
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) {
    return Errno("fsync", path);
  }
  return Status::OK();
}

Result<std::vector<std::uint64_t>> ListWalSegments(const std::string& dir) {
  std::vector<std::uint64_t> ids;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::uint64_t id = 0;
    if (ParseWalSegmentFileName(entry.path().filename().string(), &id)) {
      ids.push_back(id);
    }
  }
  if (ec) {
    return Status::Internal("list " + dir + ": " + ec.message());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace hexastore

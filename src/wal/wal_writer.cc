#include "wal/wal_writer.h"

#include <algorithm>
#include <filesystem>

#include "obs/scoped_timer.h"

namespace hexastore {

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const WalWriterOptions& options, std::uint64_t segment_id,
    std::uint64_t next_sequence) {
  if (Status s = EnsureDirectory(options.dir); !s.ok()) {
    return s;
  }
  std::unique_ptr<WalWriter> writer(
      new WalWriter(options, segment_id, next_sequence));
  std::unique_lock<std::mutex> lock(writer->mu_);
  if (Status s = writer->OpenSegmentLocked(); !s.ok()) {
    return s;
  }
  lock.unlock();
  if (options.commit_group != nullptr) {
    options.commit_group->Attach(writer.get());
  }
  return writer;
}

WalWriter::~WalWriter() {
  // Best-effort flush so an orderly shutdown loses nothing even in the
  // weaker durability modes.
  Sync();
  if (options_.commit_group != nullptr) {
    options_.commit_group->Detach(this);
  }
}

Status WalWriter::OpenSegmentLocked() {
  const std::string path =
      (std::filesystem::path(options_.dir) / WalSegmentFileName(segment_id_))
          .string();
  auto file = AppendFile::Open(path);
  if (!file.ok()) {
    return file.status();
  }
  file_ = std::move(file).value();
  const std::string header(kWalMagic, kWalHeaderBytes);
  if (Status s = file_.Append(header); !s.ok()) {
    append_error_ = s;  // partial header: unusable segment, stay poisoned
    return s;
  }
  // Make the directory entry durable: fsyncing the file alone does not
  // persist its name, and a power loss could otherwise vanish a whole
  // segment of acknowledged per-commit records.
  if (Status s = SyncDirectory(options_.dir); !s.ok()) {
    append_error_ = s;
    return s;
  }
  segment_size_ = kWalHeaderBytes;
  appended_bytes_ += kWalHeaderBytes;
  ++stats_.rotations;
  if (options_.instruments.rotations != nullptr) {
    options_.instruments.rotations->Add();
  }
  if (options_.instruments.appended_bytes != nullptr) {
    options_.instruments.appended_bytes->Set(
        static_cast<std::int64_t>(appended_bytes_));
  }
  if (options_.instruments.trace != nullptr) {
    options_.instruments.trace->Record(obs::TraceEvent::kWalRotate,
                                       "segment_open", 0, segment_id_);
  }
  return Status::OK();
}

Result<std::uint64_t> WalWriter::Append(WalOp op, Id s, Id p, Id o) {
  obs::ScopedTimer timer(options_.instruments.append_ns);
  std::unique_lock<std::mutex> lock(mu_);
  if (!append_error_.ok()) {
    return append_error_;
  }
  WalRecord record;
  record.sequence = next_sequence_;
  record.op = op;
  record.s = s;
  record.p = p;
  record.o = o;
  std::string frame;
  AppendWalRecord(&frame, record);

  if (segment_size_ > kWalHeaderBytes &&
      segment_size_ + frame.size() > options_.segment_bytes) {
    if (Status st = RotateLocked(lock); !st.ok()) {
      return st;
    }
  }
  if (Status st = file_.Append(frame); !st.ok()) {
    // The segment may now end in a partial frame. Poison the writer: no
    // further appends or rotations, so this segment stays the NEWEST one
    // and recovery truncates at the torn frame — nothing acknowledged
    // later can land beyond it and be silently dropped.
    append_error_ = st;
    return st;
  }
  ++next_sequence_;
  appended_sequence_ = record.sequence;
  appended_bytes_ += frame.size();
  segment_size_ += frame.size();
  ++stats_.records_appended;
  if (options_.instruments.records_appended != nullptr) {
    options_.instruments.records_appended->Add();
  }
  if (options_.instruments.appended_bytes != nullptr) {
    options_.instruments.appended_bytes->Set(
        static_cast<std::int64_t>(appended_bytes_));
  }
  return record.sequence;
}

Status WalWriter::Commit(std::uint64_t sequence) {
  if (options_.mode == DurabilityMode::kNone) {
    return Status::OK();
  }
  if (options_.mode == DurabilityMode::kBatched &&
      options_.commit_group != nullptr) {
    // Group-batched: the trigger is the GROUP's unsynced total, and a
    // crossing leader syncs every member. Never call into the group
    // with mu_ held (lock order is group, then member).
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.commit_requests;
      if (options_.instruments.commit_requests != nullptr) {
        options_.instruments.commit_requests->Add();
      }
    }
    return options_.commit_group->MaybeSync();
  }
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.commit_requests;
  if (options_.instruments.commit_requests != nullptr) {
    options_.instruments.commit_requests->Add();
  }
  if (options_.mode == DurabilityMode::kBatched) {
    if (appended_bytes_ - synced_bytes_ < options_.batch_bytes) {
      return Status::OK();
    }
    return SyncLocked(lock);
  }
  // Per-commit: wait for a covering sync or become the leader of the
  // next one.
  while (true) {
    if (synced_sequence_ >= sequence) {
      return Status::OK();
    }
    if (!sync_in_progress_) {
      return SyncLocked(lock);
    }
    sync_cv_.wait(lock);
  }
}

Status WalWriter::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  while (sync_in_progress_) {
    sync_cv_.wait(lock);
  }
  if (synced_sequence_ >= appended_sequence_ &&
      synced_bytes_ >= appended_bytes_) {
    return Status::OK();
  }
  return SyncLocked(lock);
}

Status WalWriter::SyncLocked(std::unique_lock<std::mutex>& lock) {
  if (!append_error_.ok()) {
    return append_error_;
  }
  sync_in_progress_ = true;
  const std::uint64_t target_seq = appended_sequence_;
  const std::uint64_t target_bytes = appended_bytes_;
  // fsync(2) with the mutex released: appenders keep going, and every
  // committer whose record is already written piggybacks on this sync.
  lock.unlock();
  Status s;
  {
    obs::ScopedTimer fsync_timer(options_.instruments.fsync_ns);
    s = file_.Sync();
  }
  lock.lock();
  sync_in_progress_ = false;
  if (s.ok()) {
    synced_sequence_ = std::max(synced_sequence_, target_seq);
    synced_bytes_ = std::max(synced_bytes_, target_bytes);
  } else {
    // fsync failure may have dropped dirty pages ("fsyncgate"): a retry
    // on the same fd could report success without the lost bytes ever
    // reaching disk. Poison the writer so no later sync can falsely
    // advance synced_sequence_ past the lost range.
    append_error_ = s;
  }
  ++stats_.fsyncs;
  if (options_.instruments.fsyncs != nullptr) {
    options_.instruments.fsyncs->Add();
  }
  sync_cv_.notify_all();
  return s;
}

Result<std::uint64_t> WalWriter::Rotate() {
  std::unique_lock<std::mutex> lock(mu_);
  if (Status s = RotateLocked(lock); !s.ok()) {
    return s;
  }
  return segment_id_;
}

Status WalWriter::RotateLocked(std::unique_lock<std::mutex>& lock) {
  if (!append_error_.ok()) {
    // Rotating away from a segment with a torn tail would strand the
    // valid prefix behind a strict (non-newest) read at recovery.
    return append_error_;
  }
  // A leader may be fsyncing the fd we are about to close.
  while (sync_in_progress_) {
    sync_cv_.wait(lock);
  }
  {
    obs::ScopedTimer fsync_timer(options_.instruments.fsync_ns);
    if (Status s = file_.Sync(); !s.ok()) {
      return s;
    }
  }
  ++stats_.fsyncs;
  if (options_.instruments.fsyncs != nullptr) {
    options_.instruments.fsyncs->Add();
  }
  synced_sequence_ = appended_sequence_;
  synced_bytes_ = appended_bytes_;
  file_.Close();
  ++segment_id_;
  return OpenSegmentLocked();
}

std::uint64_t WalWriter::active_segment_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segment_id_;
}

std::uint64_t WalWriter::next_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_sequence_;
}

std::uint64_t WalWriter::synced_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return synced_sequence_;
}

std::uint64_t WalWriter::unsynced_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_bytes_ - synced_bytes_;
}

WalStats WalWriter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WalStats out = stats_;
  out.bytes_appended = appended_bytes_;
  return out;
}

void WalCommitGroup::Attach(WalWriter* member) {
  std::lock_guard<std::mutex> lock(mu_);
  members_.push_back(member);
}

void WalCommitGroup::Detach(WalWriter* member) {
  // Holding mu_ here also waits out any group sync touching `member`
  // (SyncAllLocked runs entirely under mu_), so the caller may destroy
  // the writer immediately after.
  std::lock_guard<std::mutex> lock(mu_);
  members_.erase(std::remove(members_.begin(), members_.end(), member),
                 members_.end());
}

Status WalCommitGroup::MaybeSync() {
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    // A leader is already sweeping the members; its sync covers the
    // bytes this commit contributed (batched mode promises
    // amortization, not durability-on-return).
    return Status::OK();
  }
  std::uint64_t total = 0;
  for (WalWriter* member : members_) {
    total += member->unsynced_bytes();
  }
  if (total < batch_bytes_) {
    return Status::OK();
  }
  return SyncAllLocked();
}

Status WalCommitGroup::SyncAll() {
  std::lock_guard<std::mutex> lock(mu_);
  return SyncAllLocked();
}

Status WalCommitGroup::SyncAllLocked() {
  Status first;
  for (WalWriter* member : members_) {
    if (Status s = member->Sync(); !s.ok() && first.ok()) {
      first = s;
    }
  }
  group_syncs_.Add();
  return first;
}

}  // namespace hexastore

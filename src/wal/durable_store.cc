#include "wal/durable_store.h"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <vector>

#include "io/snapshot.h"
#include "wal/manifest.h"
#include "wal/wal_reader.h"

namespace hexastore {

namespace {

namespace fs = std::filesystem;

std::string SnapshotFileName(std::uint64_t sequence) {
  return "snapshot-" + std::to_string(sequence) + ".hxt";
}

bool IsSnapshotFileName(const std::string& name) {
  return name.size() > 13 && name.compare(0, 9, "snapshot-") == 0 &&
         name.compare(name.size() - 4, 4, ".hxt") == 0;
}

}  // namespace

Result<std::unique_ptr<DurableDeltaHexastore>> DurableDeltaHexastore::Open(
    const DurabilityOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("DurabilityOptions.dir must be set");
  }
  if (Status s = EnsureDirectory(options.dir); !s.ok()) {
    return s;
  }
  std::unique_ptr<DurableDeltaHexastore> store(
      new DurableDeltaHexastore(options));

  WalManifest manifest;
  bool have_manifest = false;
  {
    auto read = ReadWalManifest(options.dir);
    if (read.ok()) {
      manifest = std::move(read).value();
      have_manifest = true;
    } else if (read.status().code() != StatusCode::kNotFound) {
      return read.status();
    }
  }

  if (have_manifest && !manifest.snapshot_file.empty()) {
    IdTripleVec triples;
    const std::string path =
        (fs::path(options.dir) / manifest.snapshot_file).string();
    if (Status s = LoadTripleSnapshotFile(path, &triples); !s.ok()) {
      return Status::ParseError("checkpoint snapshot unreadable (" + path +
                                "): " + s.message());
    }
    store->store_.BulkLoad(triples);
    store->recovery_.loaded_snapshot = true;
  }
  store->checkpoint_sequence_ = manifest.checkpoint_sequence;
  store->first_live_segment_ =
      have_manifest ? manifest.first_segment_id : 1;

  // Replay every live segment in id order; only the newest may be torn.
  auto listed = ListWalSegments(options.dir);
  if (!listed.ok()) {
    return listed.status();
  }
  std::vector<std::uint64_t> live;
  for (std::uint64_t id : listed.value()) {
    if (id >= store->first_live_segment_) {
      live.push_back(id);
    }
  }
  std::uint64_t last_sequence = 0;
  std::uint64_t max_segment = 0;
  for (std::size_t i = 0; i < live.size(); ++i) {
    const bool is_newest = i + 1 == live.size();
    const std::string path =
        (fs::path(options.dir) / WalSegmentFileName(live[i])).string();
    auto contents = ReadWalSegment(path, /*tolerate_torn_tail=*/is_newest);
    if (!contents.ok()) {
      return contents.status();
    }
    ++store->recovery_.segments_scanned;
    for (const WalRecord& record : contents.value().records) {
      if (record.sequence <= store->checkpoint_sequence_) {
        ++store->recovery_.skipped_records;
        continue;
      }
      switch (record.op) {
        case WalOp::kInsert:
          store->store_.Insert(record.triple());
          break;
        case WalOp::kErase:
          store->store_.Erase(record.triple());
          break;
        case WalOp::kClear:
          store->store_.Clear();
          break;
        case WalOp::kErasePattern:
          store->store_.ErasePattern(record.pattern());
          break;
      }
      last_sequence = record.sequence;
      ++store->recovery_.replayed_records;
    }
    if (contents.value().torn_tail) {
      store->recovery_.torn_tail = true;
      if (contents.value().valid_bytes < kWalHeaderBytes) {
        // Not even a complete header (crash between creat(2) and the
        // header write): the file holds nothing. Remove it — truncating
        // it to zero would leave a headerless segment that fails the
        // strict (non-newest) read on every later open.
        if (Status s = RemoveFileIfExists(path); !s.ok()) {
          return s;
        }
      } else {
        // Chop the tail back to the last complete record so the segment
        // reads clean (strictly) on any later open.
        if (Status s = TruncateFile(path, contents.value().valid_bytes);
            !s.ok()) {
          return s;
        }
      }
    }
    max_segment = live[i];
  }

  // Sweep *.tmp leftovers a crash mid-AtomicWriteFile may have left
  // (snapshot-<seq>.hxt.tmp, MANIFEST.tmp); nothing references them.
  {
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(options.dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.size() > 4 &&
          name.compare(name.size() - 4, 4, ".tmp") == 0) {
        RemoveFileIfExists(entry.path().string());
      }
    }
  }

  const std::uint64_t next_sequence =
      std::max(have_manifest ? manifest.next_sequence : std::uint64_t{1},
               last_sequence + 1);
  const std::uint64_t new_segment =
      std::max(store->first_live_segment_, max_segment + 1);
  WalWriterOptions wal_options;
  wal_options.dir = options.dir;
  wal_options.mode = options.mode;
  wal_options.segment_bytes = options.segment_bytes;
  wal_options.batch_bytes = options.batch_bytes;
  wal_options.commit_group = options.commit_group;
  wal_options.instruments.records_appended =
      &store->wal_meters_.records_appended;
  wal_options.instruments.fsyncs = &store->wal_meters_.fsyncs;
  wal_options.instruments.rotations = &store->wal_meters_.rotations;
  wal_options.instruments.commit_requests =
      &store->wal_meters_.commit_requests;
  wal_options.instruments.appended_bytes =
      &store->wal_meters_.appended_bytes;
  wal_options.instruments.append_ns = &store->wal_meters_.append_ns;
  wal_options.instruments.fsync_ns = &store->wal_meters_.fsync_ns;
  wal_options.instruments.trace = &store->store_.trace_ring();
  auto writer = WalWriter::Open(wal_options, new_segment, next_sequence);
  if (!writer.ok()) {
    return writer.status();
  }
  store->wal_ = std::move(writer).value();
  store->last_sequence_ = next_sequence - 1;
  // Recovery replay may itself have crossed the compaction threshold;
  // baseline the counter afterwards so the first post-open commit does
  // not immediately re-checkpoint recovered state.
  store->last_compaction_count_ = store->store_.CompactionCount();
  if (!have_manifest) {
    WalManifest fresh;
    fresh.first_segment_id = store->first_live_segment_;
    fresh.next_sequence = next_sequence;
    if (Status s = WriteWalManifest(options.dir, fresh); !s.ok()) {
      return s;
    }
  }
  store->store_.trace_ring().Record(obs::TraceEvent::kRecovery, "open", 0,
                                    store->recovery_.replayed_records);
  if (options.background_checkpoints) {
    store->checkpointer_ =
        std::thread(&DurableDeltaHexastore::CheckpointerLoop, store.get());
  }
  return store;
}

void DurableDeltaHexastore::RegisterWalMeters() {
  obs::MetricsRegistry& reg = store_.metrics_registry();
  reg.RegisterCounter("hexa_wal_records_appended_total",
                      "WAL records framed and written",
                      &wal_meters_.records_appended);
  reg.RegisterCounter("hexa_wal_fsyncs_total",
                      "fsync(2) calls on WAL segments",
                      &wal_meters_.fsyncs);
  reg.RegisterCounter("hexa_wal_rotations_total", "WAL segments opened",
                      &wal_meters_.rotations);
  reg.RegisterCounter("hexa_wal_commit_requests_total",
                      "durability barriers requested by committers",
                      &wal_meters_.commit_requests);
  reg.RegisterCounter("hexa_wal_checkpoints_total",
                      "checkpoints committed to the manifest",
                      &wal_meters_.checkpoints);
  reg.RegisterGauge("hexa_wal_appended_bytes",
                    "cumulative bytes appended across segments",
                    &wal_meters_.appended_bytes);
  reg.RegisterHistogram("hexa_wal_append_latency_ns",
                        "WAL append latency (1-in-128 sampled)",
                        &wal_meters_.append_ns);
  reg.RegisterHistogram("hexa_wal_fsync_latency_ns", "fsync(2) duration",
                        &wal_meters_.fsync_ns);
  reg.RegisterHistogram("hexa_wal_checkpoint_latency_ns",
                        "whole-checkpoint duration (pin to prune)",
                        &wal_meters_.checkpoint_ns);
}

DurableDeltaHexastore::~DurableDeltaHexastore() {
  if (checkpointer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(checkpoint_request_mu_);
      stop_checkpointer_ = true;
    }
    checkpoint_cv_.notify_all();
    checkpointer_.join();
  }
}

bool DurableDeltaHexastore::Insert(const IdTriple& t) {
  std::uint64_t sequence = 0;
  bool need_checkpoint = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (store_.Contains(t)) {
      return false;  // logical no-op: nothing to log
    }
    auto appended = wal_->Append(WalOp::kInsert, t.s, t.p, t.o);
    if (!appended.ok()) {
      if (io_status_.ok()) {
        io_status_ = appended.status();
      }
      return false;
    }
    sequence = appended.value();
    last_sequence_ = sequence;
    store_.Insert(t);
    need_checkpoint = store_.CompactionCount() != last_compaction_count_;
  }
  FinishCommit(sequence, need_checkpoint);
  return true;
}

bool DurableDeltaHexastore::Erase(const IdTriple& t) {
  std::uint64_t sequence = 0;
  bool need_checkpoint = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!store_.Contains(t)) {
      return false;
    }
    auto appended = wal_->Append(WalOp::kErase, t.s, t.p, t.o);
    if (!appended.ok()) {
      if (io_status_.ok()) {
        io_status_ = appended.status();
      }
      return false;
    }
    sequence = appended.value();
    last_sequence_ = sequence;
    store_.Erase(t);
    need_checkpoint = store_.CompactionCount() != last_compaction_count_;
  }
  FinishCommit(sequence, need_checkpoint);
  return true;
}

std::size_t DurableDeltaHexastore::ErasePattern(const IdPattern& pattern) {
  std::uint64_t sequence = 0;
  bool need_checkpoint = false;
  std::size_t erased = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Apply first, log after (still inside mu_, so replay order equals
    // apply order): the erase count is the only exact no-op test that
    // does not pre-pay a merged scan of every match. The applied-but-
    // unlogged window this opens is the append-failure case, which
    // poisons the writer and is reported sticky via status().
    erased = store_.ErasePattern(pattern);
    if (erased == 0) {
      return 0;  // logical no-op: nothing to log (mirrors Insert/Erase)
    }
    auto appended =
        wal_->Append(WalOp::kErasePattern, pattern.s, pattern.p, pattern.o);
    if (!appended.ok()) {
      if (io_status_.ok()) {
        io_status_ = appended.status();
      }
      return erased;
    }
    sequence = appended.value();
    last_sequence_ = sequence;
    need_checkpoint = store_.CompactionCount() != last_compaction_count_;
  }
  FinishCommit(sequence, need_checkpoint);
  return erased;
}

void DurableDeltaHexastore::Clear() {
  std::uint64_t sequence = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (store_.size() == 0) {
      return;  // already empty: nothing to log
    }
    auto appended = wal_->Append(WalOp::kClear, 0, 0, 0);
    if (!appended.ok()) {
      if (io_status_.ok()) {
        io_status_ = appended.status();
      }
      return;
    }
    sequence = appended.value();
    last_sequence_ = sequence;
    store_.Clear();
  }
  FinishCommit(sequence, /*need_checkpoint=*/false);
}

void DurableDeltaHexastore::BulkLoad(const IdTripleVec& triples) {
  // Not logged record-by-record: the immediate checkpoint below makes
  // the load durable in one snapshot (atomic at checkpoint completion —
  // a crash before it recovers the pre-load state).
  {
    std::lock_guard<std::mutex> lock(mu_);
    store_.BulkLoad(triples);
  }
  if (Status s = RunCheckpoint(/*only_if_stale=*/false); !s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (io_status_.ok()) {
      io_status_ = s;
    }
  }
}

void DurableDeltaHexastore::FinishCommit(std::uint64_t sequence,
                                         bool need_checkpoint) {
  // Group commit happens outside mu_, so concurrent writers share the
  // leader's fsync instead of serializing on the store mutex.
  if (Status s = wal_->Commit(sequence); !s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (io_status_.ok()) {
      io_status_ = s;
    }
    return;
  }
  if (!need_checkpoint) {
    return;
  }
  if (options_.background_checkpoints) {
    // Hand the whole checkpoint to the dedicated thread: this writer
    // returns immediately.
    {
      std::lock_guard<std::mutex> lock(checkpoint_request_mu_);
      checkpoint_requested_ = true;
    }
    checkpoint_cv_.notify_one();
    return;
  }
  if (Status s = RunCheckpoint(/*only_if_stale=*/true); !s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (io_status_.ok()) {
      io_status_ = s;
    }
  }
}

Status DurableDeltaHexastore::Checkpoint() {
  return RunCheckpoint(/*only_if_stale=*/false);
}

Status DurableDeltaHexastore::RunCheckpoint(bool only_if_stale) {
  // One checkpoint at a time; writers never wait on this mutex.
  std::lock_guard<std::mutex> cp_lock(checkpoint_mu_);
  const bool timed = obs::MetricsEnabled();
  const std::uint64_t t0 = timed ? obs::NowNanos() : 0;

  // 1. Pin the state and seal the log at it — the only step writers
  //    wait on. The generation handle gives snapshot isolation without
  //    draining the delta; sequence and rotation are captured under one
  //    mu_ hold, so every record <= sequence lives in a segment below
  //    new_first and everything after it in new_first onwards.
  DeltaHexastore::Snapshot snap;
  std::uint64_t sequence = 0;
  std::uint64_t new_first = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (only_if_stale &&
        store_.CompactionCount() == last_compaction_count_) {
      // Another trigger already covered this compaction.
      return Status::OK();
    }
    last_compaction_count_ = store_.CompactionCount();
    snap = store_.GetSnapshot();
    sequence = last_sequence_;
    auto rotated = wal_->Rotate();
    if (!rotated.ok()) {
      return rotated.status();
    }
    new_first = rotated.value();
  }

  // 2. Durable id-level snapshot (tmp + fsync + rename + dir fsync),
  //    serialized from the pinned generation with no lock held —
  //    writers keep appending throughout.
  const std::string snapshot_name = SnapshotFileName(sequence);
  std::ostringstream bytes;
  if (Status s = SaveTripleSnapshot(snap.Match(IdPattern{}), bytes);
      !s.ok()) {
    return s;
  }
  const fs::path dir(options_.dir);
  if (Status s = AtomicWriteFile((dir / snapshot_name).string(),
                                 std::move(bytes).str());
      !s.ok()) {
    return s;
  }

  // 3. Point the manifest at the new (snapshot, segment, sequence)
  //    triple — the atomic commit of the checkpoint. next_sequence only
  //    grows, so reading it here (after more appends) stays a valid
  //    recovery floor.
  WalManifest manifest;
  manifest.checkpoint_sequence = sequence;
  manifest.snapshot_file = snapshot_name;
  manifest.first_segment_id = new_first;
  {
    std::lock_guard<std::mutex> lock(mu_);
    manifest.next_sequence = wal_->next_sequence();
  }
  if (Status s = WriteWalManifest(options_.dir, manifest); !s.ok()) {
    return s;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    checkpoint_sequence_ = sequence;
    first_live_segment_ = new_first;
  }
  wal_meters_.checkpoints.Add();

  // 4. Truncate obsolete files; a crash mid-prune only leaves garbage
  //    that the next checkpoint (or the first_segment_id filter) skips.
  if (auto segments = ListWalSegments(options_.dir); segments.ok()) {
    for (std::uint64_t id : segments.value()) {
      if (id < new_first) {
        RemoveFileIfExists((dir / WalSegmentFileName(id)).string());
      }
    }
  }
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (IsSnapshotFileName(name) && name != snapshot_name) {
      RemoveFileIfExists(entry.path().string());
    }
  }
  if (timed) {
    const std::uint64_t dur = obs::NowNanos() - t0;
    wal_meters_.checkpoint_ns.Record(dur);
    store_.trace_ring().Record(obs::TraceEvent::kCheckpoint,
                               only_if_stale ? "compaction" : "forced", dur,
                               sequence);
  }
  return Status::OK();
}

void DurableDeltaHexastore::CheckpointerLoop() {
  std::unique_lock<std::mutex> lock(checkpoint_request_mu_);
  while (true) {
    checkpoint_cv_.wait(lock, [this] {
      return stop_checkpointer_ || checkpoint_requested_;
    });
    if (checkpoint_requested_) {
      checkpoint_requested_ = false;
      lock.unlock();
      if (Status s = RunCheckpoint(/*only_if_stale=*/true); !s.ok()) {
        std::lock_guard<std::mutex> mu_lock(mu_);
        if (io_status_.ok()) {
          io_status_ = s;
        }
      }
      lock.lock();
      continue;  // drain any request that arrived while checkpointing
    }
    if (stop_checkpointer_) {
      return;
    }
  }
}

Status DurableDeltaHexastore::Flush() {
  Status s = wal_->Sync();
  std::lock_guard<std::mutex> lock(mu_);
  if (!s.ok() && io_status_.ok()) {
    io_status_ = s;
  }
  return s;
}

Status DurableDeltaHexastore::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return io_status_;
}

WalStats DurableDeltaHexastore::wal_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WalStats stats = wal_->stats();
  stats.checkpoints = wal_meters_.checkpoints.Value();
  return stats;
}

StatsSnapshot DurableDeltaHexastore::GatherStats() const {
  StatsSnapshot snap = store_.GatherStats();
  snap.wal = wal_stats();
  snap.has_wal = true;
  return snap;
}

}  // namespace hexastore

// The MANIFEST file: the durable root pointer of a WAL directory.
//
// Recovery is a deterministic two-step — load the snapshot named here,
// then replay every live segment skipping records the snapshot already
// covers — so the manifest records exactly the (snapshot, first live
// segment, sequence) triple that makes that replay well-defined.
//
// Format (binary, via io/binary_format):
//
//   magic "HXM1"
//   varint format_version (1)
//   varint checkpoint_sequence   records <= this are inside the snapshot
//   string snapshot_file         relative name; empty = no snapshot yet
//   varint first_segment_id      oldest segment replay must read
//   varint next_sequence         first unused sequence at write time
//
// The manifest is replaced atomically (tmp + fsync + rename + dir
// fsync), so a crash leaves either the old or the new version, never a
// torn one. Read/WriteWalManifest are stateless free functions (safe
// from any thread; Write blocks on the fsyncs); the checkpoint protocol
// that commits through this file is specified in docs/durability.md.
#ifndef HEXASTORE_WAL_MANIFEST_H_
#define HEXASTORE_WAL_MANIFEST_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace hexastore {

/// Checkpoint root pointer of a WAL directory.
struct WalManifest {
  std::uint64_t checkpoint_sequence = 0;
  std::string snapshot_file;
  std::uint64_t first_segment_id = 1;
  std::uint64_t next_sequence = 1;

  friend bool operator==(const WalManifest&, const WalManifest&) = default;
};

/// File name of the manifest inside a WAL directory.
inline constexpr const char* kManifestFileName = "MANIFEST";

/// Atomically replaces the manifest of `dir`.
Status WriteWalManifest(const std::string& dir, const WalManifest& manifest);

/// Reads the manifest of `dir`; NotFound when none exists (fresh
/// directory), ParseError on corruption.
Result<WalManifest> ReadWalManifest(const std::string& dir);

}  // namespace hexastore

#endif  // HEXASTORE_WAL_MANIFEST_H_

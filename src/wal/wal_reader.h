// Replay side of the write-ahead log: decodes one segment file into
// records, stopping at the first invalid frame. Pure functions over the
// file contents — no shared state, safe from any thread; the recovery
// contract they implement is specified in docs/durability.md.
//
// A torn tail — a record cut short by a crash mid-write — is legal only
// in the newest segment; callers pass `tolerate_torn_tail = true` for
// that one and get the committed prefix back. A crash can tear at most
// one in-flight frame, so even in the newest segment the invalid region
// must fit within kMaxWalFrameBytes of the end: a longer one means
// valid (possibly acknowledged-durable) records may follow the damage,
// and reading fails with ParseError instead of silently dropping them.
// In any older segment every invalid frame is real data loss and fails
// the same way.
#ifndef HEXASTORE_WAL_WAL_READER_H_
#define HEXASTORE_WAL_WAL_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"
#include "wal/wal_format.h"

namespace hexastore {

/// Decoded contents of one WAL segment.
struct WalSegmentContents {
  std::vector<WalRecord> records;
  /// Bytes of the valid prefix (header + complete records).
  std::uint64_t valid_bytes = 0;
  /// True when decoding stopped before the end of the file.
  bool torn_tail = false;
};

/// Reads and decodes the segment at `path`. Sequence numbers must be
/// strictly increasing within the segment; a regression is treated as
/// corruption.
Result<WalSegmentContents> ReadWalSegment(const std::string& path,
                                          bool tolerate_torn_tail);

}  // namespace hexastore

#endif  // HEXASTORE_WAL_WAL_READER_H_

// On-disk format of the write-ahead log (cf. the log-format notes in the
// RocksDB recovery design: CRC-framed records, torn tails tolerated only
// at the end of the newest segment). The durability contract built on
// top of this format — modes, group commit, checkpoint and recovery —
// is specified in docs/durability.md; everything here is free
// functions and value types, safe from any thread.
//
// A WAL directory holds numbered segment files plus a MANIFEST:
//
//   wal-<id>.log   append-only segment, rotated past a size threshold
//   MANIFEST       checkpoint (snapshot, first live segment, sequence)
//
// Segment layout:
//
//   magic "HXW1", format byte 1
//   record*
//
// Record frame (all integers varint unless noted):
//
//   u32 crc32 (little-endian, of the payload bytes)
//   varint payload_len
//   payload: varint sequence, op byte, varint s, varint p, varint o
//
// The (s, p, o) fields carry the triple for kInsert/kErase, the pattern
// (0 = wildcard) for kErasePattern, and are zero for kClear. Sequence
// numbers are assigned by the writer, strictly increasing across the
// whole log (they do not reset at segment boundaries), so replay can
// skip records already covered by a checkpoint snapshot.
#ifndef HEXASTORE_WAL_WAL_FORMAT_H_
#define HEXASTORE_WAL_WAL_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "rdf/triple.h"
#include "util/common.h"

namespace hexastore {

/// How hard the log pushes committed records toward the platter.
enum class DurabilityMode : std::uint8_t {
  kNone = 0,     ///< OS-buffered writes only; fsync at rotation/checkpoint
  kBatched = 1,  ///< fsync once a batch of unsynced bytes accumulates
  kPerCommit = 2,  ///< fsync before every commit returns (group commit)
};

/// Human-readable mode name ("none", "batched", "per-commit").
const char* DurabilityModeName(DurabilityMode mode);

/// Kind of a logged operation.
enum class WalOp : std::uint8_t {
  kInsert = 0,        ///< stage one triple
  kErase = 1,         ///< tombstone one triple
  kClear = 2,         ///< drop everything
  kErasePattern = 3,  ///< erase all triples matching a pattern
};

/// One decoded log record.
struct WalRecord {
  std::uint64_t sequence = 0;
  WalOp op = WalOp::kInsert;
  /// Triple for kInsert/kErase; pattern fields (0 = wildcard) for
  /// kErasePattern; ignored for kClear.
  Id s = kInvalidId;
  Id p = kInvalidId;
  Id o = kInvalidId;

  IdTriple triple() const { return IdTriple{s, p, o}; }
  IdPattern pattern() const { return IdPattern{s, p, o}; }

  friend bool operator==(const WalRecord&, const WalRecord&) = default;
};

/// Segment header bytes ("HXW1" + format version 1).
inline constexpr char kWalMagic[5] = {'H', 'X', 'W', '1', 1};
inline constexpr std::size_t kWalHeaderBytes = sizeof(kWalMagic);

/// Upper bound of one encoded record frame: 4 CRC bytes, a <=10-byte
/// length varint, and a payload of a <=10-byte sequence varint, the op
/// byte and three <=10-byte id varints. A crash can tear at most one
/// in-flight frame, so a genuine torn tail never leaves more than this
/// many bytes after the last valid record — anything longer is mid-file
/// damage, not a crash artifact.
inline constexpr std::size_t kMaxWalFrameBytes = 4 + 10 + (10 + 1 + 3 * 10);

/// Appends the CRC-framed encoding of `record` to `buf`.
void AppendWalRecord(std::string* buf, const WalRecord& record);

/// Outcome of decoding one record frame.
enum class WalParse {
  kRecord,   ///< a record was decoded; *pos advanced past it
  kEnd,      ///< clean end of buffer (no bytes left)
  kCorrupt,  ///< truncated frame or CRC mismatch (torn tail)
};

/// Decodes the record frame at `*pos`. On kRecord, fills `out` and
/// advances `*pos`; on kEnd/kCorrupt, `*pos` marks the end of the valid
/// prefix.
WalParse ParseWalRecord(const std::string& buf, std::size_t* pos,
                        WalRecord* out);

/// Segment file name for an id: "wal-000042.log".
std::string WalSegmentFileName(std::uint64_t segment_id);

/// Parses a segment id out of a file name; returns false if the name is
/// not a WAL segment.
bool ParseWalSegmentFileName(const std::string& name,
                             std::uint64_t* segment_id);

}  // namespace hexastore

#endif  // HEXASTORE_WAL_WAL_FORMAT_H_

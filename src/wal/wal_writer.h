// Append side of the write-ahead log: CRC-framed records into numbered
// segment files, with size-triggered rotation and group commit.
//
// Thread-safety: all public methods are thread-safe. Append() serializes
// encoding + write(2) under a mutex; Commit() applies the configured
// durability mode *outside* the append path, so in kPerCommit mode many
// committing threads share one fsync (classic leader/follower group
// commit: the first waiter becomes leader, fsyncs everything appended so
// far, and wakes every committer whose record that sync covered).
#ifndef HEXASTORE_WAL_WAL_WRITER_H_
#define HEXASTORE_WAL_WAL_WRITER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/stats.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace_ring.h"
#include "util/status.h"
#include "wal/file_util.h"
#include "wal/wal_format.h"

namespace hexastore {

/// Externally-owned observability instruments a WalWriter records into.
/// Every pointer is optional (null = not recorded). The instruments are
/// owned by the caller — DurableDeltaHexastore keeps them alongside the
/// registry they are registered in — and must outlive the writer; the
/// writer deliberately owns none of them so a registry export after the
/// writer's destruction never reads a dangling instrument.
struct WalInstruments {
  obs::Counter* records_appended = nullptr;
  obs::Counter* fsyncs = nullptr;
  obs::Counter* rotations = nullptr;
  obs::Counter* commit_requests = nullptr;
  obs::Gauge* appended_bytes = nullptr;
  obs::LatencyHistogram* append_ns = nullptr;
  obs::LatencyHistogram* fsync_ns = nullptr;
  obs::TraceRing* trace = nullptr;  ///< receives kWalRotate events
};

class WalCommitGroup;

/// Tuning knobs of a WalWriter.
struct WalWriterOptions {
  std::string dir;  ///< directory holding the segment files
  DurabilityMode mode = DurabilityMode::kBatched;
  /// Rotate to a fresh segment once the active one exceeds this.
  std::size_t segment_bytes = 4u << 20;
  /// kBatched: fsync once this many unsynced bytes accumulate.
  std::size_t batch_bytes = 256u << 10;
  /// Cross-writer group commit (sharded stores): in kBatched mode the
  /// batch trigger is evaluated over the GROUP's total unsynced bytes
  /// and a crossing committer fsyncs every member, so N shard WALs
  /// share one amortization budget instead of N. Borrowed; must outlive
  /// the writer. Null = per-writer batching (the default).
  WalCommitGroup* commit_group = nullptr;
  /// Observability hooks (see WalInstruments; all optional).
  WalInstruments instruments;
};

/// Appender over the active WAL segment.
class WalWriter {
 public:
  /// Opens a fresh segment `segment_id` in `options.dir`; records get
  /// sequence numbers starting at `next_sequence`.
  static Result<std::unique_ptr<WalWriter>> Open(
      const WalWriterOptions& options, std::uint64_t segment_id,
      std::uint64_t next_sequence);

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Appends one operation; assigns and returns its sequence number.
  /// Rotates first if the active segment is full. The record is in the
  /// OS page cache on return — call Commit() for durability.
  ///
  /// A failed write may leave a partial frame at the segment tail, so
  /// it poisons the writer: every later Append/Rotate returns the same
  /// error, the torn segment stays the newest one, and recovery
  /// truncates it back to the last complete record (RocksDB-style
  /// fatal WAL error — the store becomes read-only for new writes).
  Result<std::uint64_t> Append(WalOp op, Id s, Id p, Id o);

  /// Durability barrier for `sequence` per the configured mode:
  /// kNone is a no-op, kBatched fsyncs only when enough unsynced bytes
  /// accumulated, kPerCommit group-fsyncs before returning.
  Status Commit(std::uint64_t sequence);

  /// Unconditional fsync of everything appended so far.
  Status Sync();

  /// Closes the active segment (fsynced) and opens `segment_id + 1`.
  /// Returns the new active segment id.
  Result<std::uint64_t> Rotate();

  std::uint64_t active_segment_id() const;
  /// Sequence number the next Append will assign.
  std::uint64_t next_sequence() const;
  /// Sequence number of the last record known durable.
  std::uint64_t synced_sequence() const;
  /// Bytes appended but not yet fsynced (the batched-mode trigger input;
  /// a WalCommitGroup sums this across members).
  std::uint64_t unsynced_bytes() const;
  WalStats stats() const;

 private:
  WalWriter(const WalWriterOptions& options, std::uint64_t segment_id,
            std::uint64_t next_sequence)
      : options_(options),
        segment_id_(segment_id),
        next_sequence_(next_sequence) {}

  // Opens segment `segment_id_` and writes its header. mu_ held.
  Status OpenSegmentLocked();
  // Fsyncs the active segment with mu_ released during the fsync(2)
  // call; waiters piggyback on the leader's sync. mu_ held on entry and
  // exit.
  Status SyncLocked(std::unique_lock<std::mutex>& lock);
  // Rotation body. mu_ held.
  Status RotateLocked(std::unique_lock<std::mutex>& lock);

  const WalWriterOptions options_;

  mutable std::mutex mu_;
  std::condition_variable sync_cv_;
  AppendFile file_;
  std::uint64_t segment_id_ = 0;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t appended_sequence_ = 0;  // last sequence written
  std::uint64_t synced_sequence_ = 0;    // last sequence fsynced
  std::uint64_t appended_bytes_ = 0;     // cumulative, across segments
  std::uint64_t synced_bytes_ = 0;       // cumulative, across segments
  std::uint64_t segment_size_ = 0;       // bytes in the active segment
  bool sync_in_progress_ = false;
  Status append_error_;  // sticky: a torn tail poisons the writer
  WalStats stats_;
};

/// Shared group-commit coordinator across several WalWriters (one per
/// shard WAL). In kBatched mode each committer reports in via
/// MaybeSync(): once the members' summed unsynced bytes cross
/// `batch_bytes`, that committer becomes the leader and fsyncs EVERY
/// member — the fsync amortization budget is shared across shards
/// instead of multiplied by them. Members attach on open and detach on
/// destruction; the group must outlive its members.
///
/// Lock ordering: group mutex, then member mutexes (via Sync). Members
/// never call into the group while holding their own mutex.
class WalCommitGroup {
 public:
  explicit WalCommitGroup(std::size_t batch_bytes = 256u << 10)
      : batch_bytes_(batch_bytes) {}

  WalCommitGroup(const WalCommitGroup&) = delete;
  WalCommitGroup& operator=(const WalCommitGroup&) = delete;

  void Attach(WalWriter* member);
  /// Blocks while a group sync is touching `member`, so a detaching
  /// writer can be destroyed safely afterwards.
  void Detach(WalWriter* member);

  /// The batched-mode barrier: fsync all members iff the group's total
  /// unsynced bytes reached the batch threshold. A sync already in
  /// flight covers this commit's amortization turn (return OK).
  Status MaybeSync();
  /// Unconditional fsync of every member.
  Status SyncAll();

  /// Group-led full syncs completed (each one fsyncs every member).
  std::uint64_t group_syncs() const { return group_syncs_.Value(); }
  std::size_t batch_bytes() const { return batch_bytes_; }

 private:
  // mu_ held for the whole member sweep (see the class comment).
  Status SyncAllLocked();

  const std::size_t batch_bytes_;
  mutable std::mutex mu_;
  std::vector<WalWriter*> members_;
  obs::Counter group_syncs_;
};

}  // namespace hexastore

#endif  // HEXASTORE_WAL_WAL_WRITER_H_

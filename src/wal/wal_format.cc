#include "wal/wal_format.h"

#include <cstdio>

#include "io/binary_format.h"
#include "util/crc32.h"

namespace hexastore {

const char* DurabilityModeName(DurabilityMode mode) {
  switch (mode) {
    case DurabilityMode::kNone:
      return "none";
    case DurabilityMode::kBatched:
      return "batched";
    case DurabilityMode::kPerCommit:
      return "per-commit";
  }
  return "unknown";
}

void AppendWalRecord(std::string* buf, const WalRecord& record) {
  std::string payload;
  AppendVarint(&payload, record.sequence);
  payload.push_back(static_cast<char>(record.op));
  AppendVarint(&payload, record.s);
  AppendVarint(&payload, record.p);
  AppendVarint(&payload, record.o);

  const std::uint32_t crc = Crc32(payload.data(), payload.size());
  buf->push_back(static_cast<char>(crc & 0xFF));
  buf->push_back(static_cast<char>((crc >> 8) & 0xFF));
  buf->push_back(static_cast<char>((crc >> 16) & 0xFF));
  buf->push_back(static_cast<char>((crc >> 24) & 0xFF));
  AppendVarint(buf, payload.size());
  buf->append(payload);
}

WalParse ParseWalRecord(const std::string& buf, std::size_t* pos,
                        WalRecord* out) {
  const std::size_t start = *pos;
  if (start == buf.size()) {
    return WalParse::kEnd;
  }
  if (buf.size() - start < 4) {
    return WalParse::kCorrupt;
  }
  auto byte = [&buf](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(buf[i]));
  };
  const std::uint32_t stored_crc = byte(start) | (byte(start + 1) << 8) |
                                   (byte(start + 2) << 16) |
                                   (byte(start + 3) << 24);
  std::size_t cursor = start + 4;
  std::uint64_t payload_len = 0;
  if (!ReadVarint(buf, &cursor, &payload_len) ||
      payload_len > buf.size() - cursor) {
    return WalParse::kCorrupt;
  }
  if (Crc32(buf.data() + cursor, static_cast<std::size_t>(payload_len)) !=
      stored_crc) {
    return WalParse::kCorrupt;
  }
  const std::size_t payload_end = cursor + payload_len;
  WalRecord record;
  if (!ReadVarint(buf, &cursor, &record.sequence) || cursor >= payload_end) {
    return WalParse::kCorrupt;
  }
  const auto op_byte = static_cast<unsigned char>(buf[cursor++]);
  if (op_byte > static_cast<unsigned char>(WalOp::kErasePattern)) {
    return WalParse::kCorrupt;
  }
  record.op = static_cast<WalOp>(op_byte);
  if (!ReadVarint(buf, &cursor, &record.s) ||
      !ReadVarint(buf, &cursor, &record.p) ||
      !ReadVarint(buf, &cursor, &record.o) || cursor != payload_end) {
    return WalParse::kCorrupt;
  }
  *out = record;
  *pos = payload_end;
  return WalParse::kRecord;
}

std::string WalSegmentFileName(std::uint64_t segment_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06llu.log",
                static_cast<unsigned long long>(segment_id));
  return buf;
}

bool ParseWalSegmentFileName(const std::string& name,
                             std::uint64_t* segment_id) {
  if (name.size() < 9 || name.compare(0, 4, "wal-") != 0 ||
      name.compare(name.size() - 4, 4, ".log") != 0) {
    return false;
  }
  std::uint64_t id = 0;
  for (std::size_t i = 4; i < name.size() - 4; ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return false;
    }
    id = id * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  *segment_id = id;
  return true;
}

}  // namespace hexastore

// Durable DeltaHexastore: the PR-2 staging store wrapped in a
// write-ahead log, so a crash loses at most the ops the configured
// durability mode had not yet fsynced (nothing in per-commit mode).
//
// Write path (the WAL rule — log, then apply):
//
//   1. append the op to the active segment (assigns a sequence number)
//   2. apply it to the in-memory DeltaHexastore
//   3. commit per DurabilityMode — per-commit fsync is a group commit:
//      concurrent writers share one fsync(2)
//
// Checkpoints ride the delta's compaction cadence: when a compaction
// completes, the store pins an immutable generation handle of the
// current state (snapshot isolation, no drain required), rotates to a
// fresh segment — the only step writers wait on — and then serializes
// the id-level "HXT1" snapshot from the pinned generation *off the
// store lock*: concurrent writers keep appending while the snapshot is
// written, and with DurabilityOptions::background_checkpoints the whole
// checkpoint runs on a dedicated thread so no writer pays for it at
// all. The MANIFEST is pointed at the (snapshot, segment, sequence)
// triple once the file is durable, and obsolete segments are deleted —
// so the WAL never holds more than roughly one compaction threshold of
// records.
//
// Recovery (Open) is deterministic: load the manifest's snapshot, replay
// every live segment in order skipping records the snapshot covers,
// tolerating a torn tail only in the newest segment, then start a fresh
// segment for new writes. The recovered store is exactly the committed
// prefix of the log.
//
// Reads (Contains/Scan/size/merged views) go straight to the inner
// DeltaHexastore and never touch the log — durability does not tax the
// read path. AcquireReadHandle() additionally exposes the inner store's
// wait-free pinned-generation handle.
//
// Thread-safety: every public member is safe from any thread. Mutators
// block on the internal (append, apply) mutex and on the configured
// durability barrier; Checkpoint() blocks its caller for the whole
// checkpoint but stalls concurrent writers only during pin + rotation.
// The full contracts live in docs/durability.md.
#ifndef HEXASTORE_WAL_DURABLE_STORE_H_
#define HEXASTORE_WAL_DURABLE_STORE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/stats.h"
#include "core/store_interface.h"
#include "delta/delta_hexastore.h"
#include "util/status.h"
#include "wal/wal_format.h"
#include "wal/wal_writer.h"

namespace hexastore {

/// Configuration of a DurableDeltaHexastore.
struct DurabilityOptions {
  /// Directory holding segments, snapshots and the MANIFEST. Created if
  /// missing.
  std::string dir;
  DurabilityMode mode = DurabilityMode::kBatched;
  /// Staged ops that trigger compaction — and with it a checkpoint.
  std::size_t compact_threshold = DeltaHexastore::kDefaultCompactThreshold;
  /// WAL segment rotation size.
  std::size_t segment_bytes = 4u << 20;
  /// kBatched: unsynced bytes that trigger an fsync.
  std::size_t batch_bytes = 256u << 10;
  /// Merge the inner store's sealed deltas on its compactor thread
  /// instead of draining on the writer thread (see DeltaOptions).
  bool background_compaction = false;
  /// Leveled deltas in the inner store (see DeltaOptions::l0_run_limit):
  /// sealed buffers accumulate as L0 runs, fold into L1, and only
  /// L1→base merges rebuild the indexes. Checkpoints keep riding the
  /// merge cadence (every fold or base merge triggers one), and
  /// recovery replays the log into the same leveled configuration, so
  /// the WAL stays bounded by roughly one compaction threshold of
  /// records regardless of leveling. 0 = flat (the default).
  std::size_t l0_run_limit = 0;
  /// Leveled deltas: L1→base merge trigger as a fraction of the base
  /// size (see DeltaOptions::l1_base_fraction).
  double l1_base_fraction = 0.25;
  /// Hard delta-memory budget of the inner store (see
  /// DeltaOptions::memory_budget_bytes). 0 = unlimited.
  std::size_t memory_budget_bytes = 0;
  /// Prefix-filter sizing of the inner store's sealed runs (see
  /// DeltaOptions::filter_bits_per_key). 0 disables filters.
  std::size_t filter_bits_per_key = 10;
  /// Run compaction-triggered checkpoints on a dedicated thread instead
  /// of inline on the committing writer. (Even inline, only segment
  /// rotation happens under the store lock; the snapshot itself is
  /// always serialized from a pinned generation off the lock.)
  bool background_checkpoints = false;
  /// Cross-store group commit in kBatched mode (see
  /// WalWriterOptions::commit_group): ShardedHexastore hands every
  /// shard the same group so one leader fsyncs all shard WALs.
  /// Borrowed; must outlive the store. Null = per-store batching.
  WalCommitGroup* commit_group = nullptr;
};

/// What recovery found in the WAL directory.
struct RecoveryInfo {
  bool loaded_snapshot = false;      ///< a checkpoint snapshot was loaded
  std::uint64_t segments_scanned = 0;
  std::uint64_t replayed_records = 0;
  std::uint64_t skipped_records = 0;  ///< already covered by the snapshot
  bool torn_tail = false;             ///< newest segment ended mid-record
};

/// Write-ahead-logged TripleStore over a DeltaHexastore.
class DurableDeltaHexastore : public TripleStore {
 public:
  /// Opens (creating or recovering) the store in `options.dir`.
  static Result<std::unique_ptr<DurableDeltaHexastore>> Open(
      const DurabilityOptions& options);

  DurableDeltaHexastore(const DurableDeltaHexastore&) = delete;
  DurableDeltaHexastore& operator=(const DurableDeltaHexastore&) = delete;
  /// Joins the checkpointer, then flushes the log tail (best effort).
  ~DurableDeltaHexastore() override;

  // -- TripleStore interface ----------------------------------------------
  // Mutators return false (and leave the store untouched) when the op is
  // a logical no-op, exactly like DeltaHexastore, or when the WAL append
  // fails (the append error poisons the writer, so every later mutation
  // fails too; status() reports it). A failed durability *barrier* — the
  // per-commit/batched fsync after a successful append — cannot be
  // rolled back from memory: the op stays applied, the return value
  // still reflects the logical outcome, the error is sticky in status()
  // and no later commit will be acknowledged past it. Callers that need
  // strict per-commit guarantees must treat a non-OK status() as "recent
  // acknowledgments may not be durable".

  bool Insert(const IdTriple& t) override;
  bool Erase(const IdTriple& t) override;
  bool Contains(const IdTriple& t) const override {
    return store_.Contains(t);
  }
  std::size_t size() const override { return store_.size(); }
  void Scan(const IdPattern& pattern, const TripleSink& sink) const override {
    store_.Scan(pattern, sink);
  }
  std::size_t MemoryBytes() const override { return store_.MemoryBytes(); }
  std::string name() const override { return "DurableDeltaHexastore"; }
  /// Planner estimates use the inner store's delta-aware fast path.
  std::uint64_t EstimateMatches(const IdPattern& pattern) const override {
    return store_.EstimateMatches(pattern);
  }

  /// Bulk loads are not logged record-by-record; the load is made
  /// durable by the immediate checkpoint that follows it (atomic at
  /// checkpoint completion).
  void BulkLoad(const IdTripleVec& triples) override;

  /// Logged pattern erase (one record regardless of match count; the
  /// delta's pattern-tombstone fast path applies underneath).
  std::size_t ErasePattern(const IdPattern& pattern);

  /// Logged Clear.
  void Clear();

  // -- Durability management ----------------------------------------------

  /// Forces a checkpoint now: pin a generation, rotate, serialize the
  /// snapshot off-lock, commit the manifest, prune.
  Status Checkpoint();

  /// Fsyncs everything appended so far (a durability barrier stronger
  /// than the configured mode).
  Status Flush();

  /// First WAL I/O error encountered, sticky; OK while healthy.
  Status status() const;

  /// Snapshot-isolated read handle of the inner store (linearizable).
  DeltaHexastore::Snapshot GetSnapshot() const {
    return store_.GetSnapshot();
  }

  /// Wait-free pinned-generation handle of the inner store (may trail
  /// the live store; see DeltaHexastore::AcquireReadHandle).
  DeltaHexastore::Snapshot AcquireReadHandle() const {
    return store_.AcquireReadHandle();
  }

  /// The wrapped in-memory store. Read-only: mutating through it would
  /// bypass the WAL (hence const). query::Session binds to this when the
  /// server runs durable.
  const DeltaHexastore& delta() const { return store_; }

  const RecoveryInfo& recovery_info() const { return recovery_; }
  DeltaStats delta_stats() const { return store_.Stats(); }
  EpochStats epoch_stats() const { return store_.EpochCounters(); }
  WalStats wal_stats() const;
  /// One coherent delta + epoch + WAL snapshot (has_wal set; see the
  /// StatsSnapshot memory-ordering contract in core/stats.h).
  StatsSnapshot GatherStats() const;
  const DurabilityOptions& options() const { return options_; }

  // -- Observability exports ----------------------------------------------
  // All WAL-layer instruments are registered into the inner store's
  // registry (hexa_wal_* names), so these delegate to it and every
  // export carries core, delta, epoch, filter and WAL series together.

  obs::MetricsRegistry& metrics_registry() const {
    return store_.metrics_registry();
  }
  obs::TraceRing& trace_ring() const { return store_.trace_ring(); }
  std::string MetricsText() const { return store_.MetricsText(); }
  std::string MetricsJson() const { return store_.MetricsJson(); }
  /// Explicit JSON dump (async-signal-unsafe work done here, not in a
  /// handler; safe to call from a SIGUSR1-woken thread). The inner
  /// store's destructor additionally honors $HEXA_METRICS_JSON.
  bool DumpMetricsJson(const std::string& path) const {
    return store_.DumpMetricsJson(path);
  }

  /// Inner-store invariants (test hook).
  bool CheckInvariants(std::string* error = nullptr) const {
    return store_.CheckInvariants(error);
  }

 private:
  explicit DurableDeltaHexastore(const DurabilityOptions& options)
      : options_(options),
        store_(DeltaOptions{options.compact_threshold,
                            options.background_compaction,
                            options.l0_run_limit,
                            options.l1_base_fraction,
                            options.memory_budget_bytes,
                            options.filter_bits_per_key}) {
    RegisterWalMeters();
  }

  // Registers wal_meters_ into store_'s registry (hexa_wal_* names).
  void RegisterWalMeters();

  // Post-append tail of every mutator: group commit outside mu_, then a
  // checkpoint (inline or handed to the checkpointer) if a compaction
  // completed since the last one.
  void FinishCommit(std::uint64_t sequence, bool need_checkpoint);

  // Full checkpoint body; takes checkpoint_mu_ (one checkpoint at a
  // time) and mu_ only for the pin+rotate and manifest-commit steps.
  // With `only_if_stale`, returns OK without work when no compaction
  // completed since the last checkpoint (trigger dedupe).
  Status RunCheckpoint(bool only_if_stale);

  // Checkpointer-thread body (background_checkpoints mode).
  void CheckpointerLoop();

  const DurabilityOptions options_;

  // WAL-layer instruments. Owned here rather than by the WalWriter (the
  // writer records into them by pointer, see WalInstruments) and
  // declared before store_, so they are still alive when the inner
  // store's destructor runs the $HEXA_METRICS_JSON registry dump.
  struct WalMeters {
    obs::Counter records_appended;
    obs::Counter fsyncs;
    obs::Counter rotations;
    obs::Counter commit_requests;
    obs::Counter checkpoints;
    obs::Gauge appended_bytes;
    obs::LatencyHistogram append_ns{obs::kHotPathSampleShift};
    obs::LatencyHistogram fsync_ns;
    obs::LatencyHistogram checkpoint_ns;
  };
  mutable WalMeters wal_meters_;

  // Orders (append, apply) pairs so replay order equals apply order.
  mutable std::mutex mu_;
  DeltaHexastore store_;
  std::unique_ptr<WalWriter> wal_;
  RecoveryInfo recovery_;
  Status io_status_;
  std::uint64_t last_sequence_ = 0;       // last op logged and applied
  std::uint64_t checkpoint_sequence_ = 0;  // covered by the snapshot
  std::uint64_t first_live_segment_ = 1;
  std::uint64_t last_compaction_count_ = 0;

  // Serializes whole checkpoints against each other (writers are only
  // ever blocked by the short mu_ sections inside).
  std::mutex checkpoint_mu_;

  // Background checkpointer (background_checkpoints mode).
  std::thread checkpointer_;
  std::mutex checkpoint_request_mu_;
  std::condition_variable checkpoint_cv_;
  bool checkpoint_requested_ = false;
  bool stop_checkpointer_ = false;
};

}  // namespace hexastore

#endif  // HEXASTORE_WAL_DURABLE_STORE_H_

// Durable DeltaHexastore: the PR-2 staging store wrapped in a
// write-ahead log, so a crash loses at most the ops the configured
// durability mode had not yet fsynced (nothing in per-commit mode).
//
// Write path (the WAL rule — log, then apply):
//
//   1. append the op to the active segment (assigns a sequence number)
//   2. apply it to the in-memory DeltaHexastore
//   3. commit per DurabilityMode — per-commit fsync is a group commit:
//      concurrent writers share one fsync(2)
//
// Checkpoints ride the delta's own compaction cadence: when staging an
// op drains the delta into the base, the store writes an id-level
// snapshot (io/snapshot, "HXT1"), rotates to a fresh segment, points the
// MANIFEST at the pair, and deletes the obsolete segments — so the WAL
// never holds more than roughly one compaction threshold of records.
//
// Recovery (Open) is deterministic: load the manifest's snapshot, replay
// every live segment in order skipping records the snapshot covers,
// tolerating a torn tail only in the newest segment, then start a fresh
// segment for new writes. The recovered store is exactly the committed
// prefix of the log.
//
// Reads (Contains/Scan/size/merged views) go straight to the inner
// DeltaHexastore and never touch the log — durability does not tax the
// read path.
#ifndef HEXASTORE_WAL_DURABLE_STORE_H_
#define HEXASTORE_WAL_DURABLE_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/stats.h"
#include "core/store_interface.h"
#include "delta/delta_hexastore.h"
#include "util/status.h"
#include "wal/wal_format.h"
#include "wal/wal_writer.h"

namespace hexastore {

/// Configuration of a DurableDeltaHexastore.
struct DurabilityOptions {
  /// Directory holding segments, snapshots and the MANIFEST. Created if
  /// missing.
  std::string dir;
  DurabilityMode mode = DurabilityMode::kBatched;
  /// Staged ops that trigger compaction — and with it a checkpoint.
  std::size_t compact_threshold = DeltaHexastore::kDefaultCompactThreshold;
  /// WAL segment rotation size.
  std::size_t segment_bytes = 4u << 20;
  /// kBatched: unsynced bytes that trigger an fsync.
  std::size_t batch_bytes = 256u << 10;
};

/// What recovery found in the WAL directory.
struct RecoveryInfo {
  bool loaded_snapshot = false;      ///< a checkpoint snapshot was loaded
  std::uint64_t segments_scanned = 0;
  std::uint64_t replayed_records = 0;
  std::uint64_t skipped_records = 0;  ///< already covered by the snapshot
  bool torn_tail = false;             ///< newest segment ended mid-record
};

/// Write-ahead-logged TripleStore over a DeltaHexastore.
class DurableDeltaHexastore : public TripleStore {
 public:
  /// Opens (creating or recovering) the store in `options.dir`.
  static Result<std::unique_ptr<DurableDeltaHexastore>> Open(
      const DurabilityOptions& options);

  DurableDeltaHexastore(const DurableDeltaHexastore&) = delete;
  DurableDeltaHexastore& operator=(const DurableDeltaHexastore&) = delete;
  /// Flushes the log tail (best effort) before closing.
  ~DurableDeltaHexastore() override;

  // -- TripleStore interface ----------------------------------------------
  // Mutators return false (and leave the store untouched) when the op is
  // a logical no-op, exactly like DeltaHexastore, or when the WAL append
  // fails (the append error poisons the writer, so every later mutation
  // fails too; status() reports it). A failed durability *barrier* — the
  // per-commit/batched fsync after a successful append — cannot be
  // rolled back from memory: the op stays applied, the return value
  // still reflects the logical outcome, the error is sticky in status()
  // and no later commit will be acknowledged past it. Callers that need
  // strict per-commit guarantees must treat a non-OK status() as "recent
  // acknowledgments may not be durable".

  bool Insert(const IdTriple& t) override;
  bool Erase(const IdTriple& t) override;
  bool Contains(const IdTriple& t) const override {
    return store_.Contains(t);
  }
  std::size_t size() const override { return store_.size(); }
  void Scan(const IdPattern& pattern, const TripleSink& sink) const override {
    store_.Scan(pattern, sink);
  }
  std::size_t MemoryBytes() const override { return store_.MemoryBytes(); }
  std::string name() const override { return "DurableDeltaHexastore"; }
  /// Planner estimates use the inner store's delta-aware fast path.
  std::uint64_t EstimateMatches(const IdPattern& pattern) const override {
    return store_.EstimateMatches(pattern);
  }

  /// Bulk loads are not logged record-by-record; the load is made
  /// durable by the immediate checkpoint that follows it (atomic at
  /// checkpoint completion).
  void BulkLoad(const IdTripleVec& triples) override;

  /// Logged pattern erase (one record regardless of match count; the
  /// delta's pattern-tombstone fast path applies underneath).
  std::size_t ErasePattern(const IdPattern& pattern);

  /// Logged Clear.
  void Clear();

  // -- Durability management ----------------------------------------------

  /// Forces a checkpoint now: compact, snapshot, rotate, truncate.
  Status Checkpoint();

  /// Fsyncs everything appended so far (a durability barrier stronger
  /// than the configured mode).
  Status Flush();

  /// First WAL I/O error encountered, sticky; OK while healthy.
  Status status() const;

  /// Snapshot-isolated read handle of the inner store.
  DeltaHexastore::Snapshot GetSnapshot() const {
    return store_.GetSnapshot();
  }

  const RecoveryInfo& recovery_info() const { return recovery_; }
  DeltaStats delta_stats() const { return store_.Stats(); }
  WalStats wal_stats() const;
  const DurabilityOptions& options() const { return options_; }

  /// Inner-store invariants (test hook).
  bool CheckInvariants(std::string* error = nullptr) const {
    return store_.CheckInvariants(error);
  }

 private:
  explicit DurableDeltaHexastore(const DurabilityOptions& options)
      : options_(options), store_(options.compact_threshold) {}

  // Post-append tail of every mutator: group commit outside mu_, then a
  // checkpoint if the op tipped the delta into a compaction.
  void FinishCommit(std::uint64_t sequence, bool need_checkpoint);

  // Checkpoint body; mu_ held by `lock`.
  Status CheckpointLocked(std::unique_lock<std::mutex>& lock);

  const DurabilityOptions options_;

  // Orders (append, apply) pairs so replay order equals apply order.
  mutable std::mutex mu_;
  DeltaHexastore store_;
  std::unique_ptr<WalWriter> wal_;
  RecoveryInfo recovery_;
  Status io_status_;
  std::uint64_t last_sequence_ = 0;       // last op logged and applied
  std::uint64_t checkpoint_sequence_ = 0;  // covered by the snapshot
  std::uint64_t first_live_segment_ = 1;
  std::uint64_t last_compaction_count_ = 0;
  std::uint64_t checkpoints_ = 0;
};

}  // namespace hexastore

#endif  // HEXASTORE_WAL_DURABLE_STORE_H_

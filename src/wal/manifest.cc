#include "wal/manifest.h"

#include <cstring>
#include <filesystem>

#include "io/binary_format.h"
#include "wal/file_util.h"

namespace hexastore {

namespace {

constexpr char kManifestMagic[4] = {'H', 'X', 'M', '1'};
constexpr std::uint64_t kManifestVersion = 1;

std::string ManifestPath(const std::string& dir) {
  return (std::filesystem::path(dir) / kManifestFileName).string();
}

}  // namespace

Status WriteWalManifest(const std::string& dir,
                        const WalManifest& manifest) {
  std::string buf(kManifestMagic, sizeof(kManifestMagic));
  AppendVarint(&buf, kManifestVersion);
  AppendVarint(&buf, manifest.checkpoint_sequence);
  AppendVarint(&buf, manifest.snapshot_file.size());
  buf.append(manifest.snapshot_file);
  AppendVarint(&buf, manifest.first_segment_id);
  AppendVarint(&buf, manifest.next_sequence);
  return AtomicWriteFile(ManifestPath(dir), buf);
}

Result<WalManifest> ReadWalManifest(const std::string& dir) {
  std::string buf;
  if (Status s = ReadFileToString(ManifestPath(dir), &buf); !s.ok()) {
    return s;  // NotFound for a fresh directory
  }
  if (buf.size() < sizeof(kManifestMagic) ||
      std::memcmp(buf.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return Status::ParseError("bad manifest magic in " + dir);
  }
  std::size_t pos = sizeof(kManifestMagic);
  std::uint64_t version = 0;
  WalManifest m;
  std::uint64_t name_len = 0;
  if (!ReadVarint(buf, &pos, &version) || version != kManifestVersion ||
      !ReadVarint(buf, &pos, &m.checkpoint_sequence) ||
      !ReadVarint(buf, &pos, &name_len) || name_len > buf.size() - pos) {
    return Status::ParseError("truncated manifest in " + dir);
  }
  m.snapshot_file = buf.substr(pos, static_cast<std::size_t>(name_len));
  pos += static_cast<std::size_t>(name_len);
  if (!ReadVarint(buf, &pos, &m.first_segment_id) ||
      !ReadVarint(buf, &pos, &m.next_sequence) || pos != buf.size()) {
    return Status::ParseError("truncated manifest in " + dir);
  }
  return m;
}

}  // namespace hexastore

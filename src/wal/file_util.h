// Thin POSIX file helpers for the durability subsystem: append-only fds
// with explicit fsync, atomic whole-file replacement (write tmp, fsync,
// rename, fsync directory), and directory listing of WAL segments.
#ifndef HEXASTORE_WAL_FILE_UTIL_H_
#define HEXASTORE_WAL_FILE_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace hexastore {

/// An append-only file descriptor. Move-only; closes on destruction.
class AppendFile {
 public:
  AppendFile() = default;
  AppendFile(AppendFile&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  ~AppendFile();

  /// Opens `path` for appending, creating it if needed.
  static Result<AppendFile> Open(const std::string& path);

  /// Writes all of `data` (retrying short writes).
  Status Append(const std::string& data);

  /// Flushes written data (and metadata) to stable storage.
  Status Sync();

  /// Closes the descriptor early (the destructor is then a no-op).
  void Close();

  bool is_open() const { return fd_ >= 0; }

 private:
  explicit AppendFile(int fd) : fd_(fd) {}
  int fd_ = -1;
};

/// Creates `dir` (and missing parents) if absent.
Status EnsureDirectory(const std::string& dir);

/// Reads the whole file into `out`.
Status ReadFileToString(const std::string& path, std::string* out);

/// Atomically replaces `path` with `contents`: writes `path`.tmp, fsyncs
/// it, renames over `path`, then fsyncs the parent directory so the
/// rename itself is durable.
Status AtomicWriteFile(const std::string& path, const std::string& contents);

/// Fsyncs a directory so recent renames/unlinks inside it are durable.
Status SyncDirectory(const std::string& dir);

/// Removes a file; missing files are not an error.
Status RemoveFileIfExists(const std::string& path);

/// Truncates `path` to `size` bytes and fsyncs it (recovery chops a torn
/// WAL tail back to the last complete record).
Status TruncateFile(const std::string& path, std::uint64_t size);

/// Segment ids of every "wal-*.log" in `dir`, sorted ascending.
Result<std::vector<std::uint64_t>> ListWalSegments(const std::string& dir);

}  // namespace hexastore

#endif  // HEXASTORE_WAL_FILE_UTIL_H_

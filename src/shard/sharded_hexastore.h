// ShardedHexastore: N independent DeltaHexastore shards behind one
// TripleStore facade, partitioned by subject hash.
//
// Write path: Insert/Erase/Contains route to the shard owning the
// triple's subject without any facade-level lock — each shard keeps its
// own writer mutex, staging delta, compactor thread and memory-budget
// slice, so writers on different shards never contend. In durable mode
// every shard owns a WAL directory (`shard-NNN/` under the root) and a
// shared WalCommitGroup batches fsyncs across shard WALs in kBatched
// mode (one leader syncs every member once the group's unsynced bytes
// cross the batch threshold).
//
// Read path: scatter-gather. A pattern with a bound subject routes to
// one shard; anything else fans out across all shards and merges. The
// merged accessor views (objects/predicates/subjects and the six header
// vectors) k-way merge the per-shard sorted lists, so the result is
// byte-identical to a single store over the same triples — the
// sharded-vs-single oracle in store_equivalence_test pins this.
// ShardedSnapshot pins one generation per shard (in shard order) and is
// itself a read-only TripleStore, so BGP evaluation, the plan cache
// (whose stamp is the concatenation of the per-shard stamps) and
// EXPLAIN ANALYZE run unchanged against it.
//
// Semantics vs a single DeltaHexastore (docs/sharding.md):
//  * Contents, Scan/Match results, ErasePattern counts: identical.
//    Subject-hash partitioning is disjoint, so fan-out ErasePattern
//    counts sum without double-counting.
//  * EstimateMatches: exact (hence identical) for fully-bound patterns
//    and for quiescent stores (post-Compact); mid-churn partial-pattern
//    estimates apply each shard's tombstone-scaling model to its own
//    slice, which is not bit-identical to the single store's global
//    scaling (both stay within the same q-error envelope).
//  * A ShardedSnapshot is per-shard snapshot-isolated: each shard's view
//    is immutable and consistent, but the shards are pinned in sequence,
//    so a cross-shard writer racing the pin may land in a later shard's
//    view and not an earlier one's. With quiesced writers (and in every
//    single-writer test) the pin is exact.
#ifndef HEXASTORE_SHARD_SHARDED_HEXASTORE_H_
#define HEXASTORE_SHARD_SHARDED_HEXASTORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/stats.h"
#include "core/store_interface.h"
#include "delta/delta_hexastore.h"
#include "delta/merged_list.h"
#include "util/status.h"
#include "wal/durable_store.h"
#include "wal/wal_writer.h"

namespace hexastore {

/// Construction-time configuration of a ShardedHexastore.
struct ShardedOptions {
  /// Number of independent shards. Clamped to >= 1.
  std::size_t shards = 4;
  /// Per-shard delta configuration (in-memory mode). The memory budget
  /// is the TOTAL across shards; each shard gets an equal slice.
  DeltaOptions delta;
  /// True: every shard is a DurableDeltaHexastore under
  /// `durability.dir/shard-NNN/`; `delta` is ignored (DurabilityOptions
  /// carries the same knobs). False: plain in-memory shards.
  bool durable = false;
  DurabilityOptions durability;

  /// Clamps fields to their documented domains in place; returns "" or
  /// a description of the first repair (DeltaOptions convention).
  std::string Normalize();
};

/// A pinned per-shard generation vector: one immutable
/// DeltaHexastore::Snapshot per shard, exposed as a read-only
/// TripleStore with the same scatter-gather semantics as the facade.
class ShardedSnapshot final : public TripleStore {
 public:
  ShardedSnapshot() = default;

  // Read-only view: mutators are documented no-ops.
  bool Insert(const IdTriple&) override { return false; }
  bool Erase(const IdTriple&) override { return false; }
  void BulkLoad(const IdTripleVec&) override {}

  bool Contains(const IdTriple& t) const override;
  std::size_t size() const override;
  void Scan(const IdPattern& pattern, const TripleSink& sink) const override;
  std::size_t MemoryBytes() const override;
  std::string name() const override { return "ShardedSnapshot"; }
  std::uint64_t EstimateMatches(const IdPattern& pattern) const override;

  /// Per-shard freshness stamps, concatenated in shard order as
  /// (epoch, staged_ops) pairs — the plan-cache stamp of this view.
  /// Equal stamp vectors mean no shard mutated or merged in between.
  std::vector<std::uint64_t> StampVector() const;

  std::size_t shard_count() const { return shards_.size(); }
  const DeltaHexastore::Snapshot& shard(std::size_t i) const {
    return shards_[i];
  }

  // Merged accessor views over the pinned shard generations (same
  // contracts as DeltaHexastore::Snapshot; scatter results are k-way
  // merged so orders match the single-store views byte-for-byte).
  MergedList objects(Id s, Id p) const;
  MergedList predicates(Id s, Id o) const;
  MergedList subjects(Id p, Id o) const;
  IdVec predicates_of_subject(Id s) const;
  IdVec objects_of_subject(Id s) const;
  IdVec subjects_of_predicate(Id p) const;
  IdVec objects_of_predicate(Id p) const;
  IdVec subjects_of_object(Id o) const;
  IdVec predicates_of_object(Id o) const;

 private:
  friend class ShardedHexastore;
  explicit ShardedSnapshot(std::vector<DeltaHexastore::Snapshot> shards)
      : shards_(std::move(shards)) {}

  std::vector<DeltaHexastore::Snapshot> shards_;
};

/// Subject-hash-partitioned TripleStore facade over N DeltaHexastore
/// (or DurableDeltaHexastore) shards. Thread-safety: every public
/// member is safe from any thread; the facade itself holds no lock —
/// mutators serialize per shard, scatter reads see each shard's own
/// consistent view.
class ShardedHexastore : public TripleStore {
 public:
  /// In-memory facade (options.durable must be false).
  explicit ShardedHexastore(const ShardedOptions& options);

  /// Opens (creating or recovering) the facade. Durable mode opens one
  /// DurableDeltaHexastore per shard under `durability.dir/shard-NNN/`
  /// and records the shard count in a `SHARDS` manifest at the root;
  /// reopening with a different count fails with InvalidArgument (the
  /// partition function would misroute every triple, so this is a
  /// config error, never silent corruption).
  static Result<std::unique_ptr<ShardedHexastore>> Open(
      const ShardedOptions& options);

  ShardedHexastore(const ShardedHexastore&) = delete;
  ShardedHexastore& operator=(const ShardedHexastore&) = delete;
  ~ShardedHexastore() override;

  /// The routing function: which shard owns subject `s` out of `n`.
  /// A 64-bit finalizer hash, NOT `s % n` — dictionary ids are dense and
  /// sequential, so modulo would stripe correlated subjects together.
  static std::size_t ShardOf(Id s, std::size_t n);

  // -- TripleStore interface ----------------------------------------------

  bool Insert(const IdTriple& t) override;
  bool Erase(const IdTriple& t) override;
  bool Contains(const IdTriple& t) const override;
  std::size_t size() const override;
  void Scan(const IdPattern& pattern, const TripleSink& sink) const override;
  std::size_t MemoryBytes() const override;
  std::string name() const override { return "ShardedHexastore"; }
  std::uint64_t EstimateMatches(const IdPattern& pattern) const override;
  /// Partitions by subject and bulk-loads every shard.
  void BulkLoad(const IdTripleVec& triples) override;

  /// Pattern erase. Bound subject routes to one shard; the all-wildcard
  /// pattern clears every shard; every other shape fans out and SUMS the
  /// per-shard counts — exact, because the subject partition is
  /// disjoint (each erased triple is counted by exactly one shard).
  std::size_t ErasePattern(const IdPattern& pattern);

  /// Clears every shard.
  void Clear();

  /// Compacts every shard (drains all staged ops).
  void Compact();

  /// Total staged ops across shards.
  std::size_t StagedOps() const;

  // -- Pinned reads --------------------------------------------------------

  /// Linearizable per shard: GetSnapshot() on each shard in shard
  /// order. See the class comment for the cross-shard contract.
  ShardedSnapshot GetSnapshot() const;
  /// Wait-free: AcquireReadHandle() on each shard in shard order.
  ShardedSnapshot AcquireReadHandle() const;

  // -- Merged accessor views (scatter-gather; see ShardedSnapshot) --------

  MergedList objects(Id s, Id p) const;
  MergedList predicates(Id s, Id o) const;
  MergedList subjects(Id p, Id o) const;
  IdVec predicates_of_subject(Id s) const;
  IdVec objects_of_subject(Id s) const;
  IdVec subjects_of_predicate(Id p) const;
  IdVec objects_of_predicate(Id p) const;
  IdVec subjects_of_object(Id o) const;
  IdVec predicates_of_object(Id o) const;

  // -- Shard access --------------------------------------------------------

  std::size_t shard_count() const { return shards_.size(); }
  /// The in-memory delta store of shard `i` (the durable wrapper's inner
  /// store in durable mode).
  const DeltaHexastore& shard(std::size_t i) const { return *shards_[i]; }
  /// The durable wrapper of shard `i`; null in in-memory mode.
  DurableDeltaHexastore* durable_shard(std::size_t i) const {
    return durables_.empty() ? nullptr : durables_[i].get();
  }
  bool durable() const { return !durables_.empty(); }

  // -- Durability management (durable mode; no-ops / OK otherwise) --------

  /// First sticky WAL error across shards; OK while all healthy.
  Status status() const;
  /// Fsyncs every shard's log tail.
  Status Flush();
  /// Forces a checkpoint on every shard.
  Status Checkpoint();

  // -- Stats + observability ----------------------------------------------

  /// Aggregated delta counters (field-wise sum across shards).
  DeltaStats Stats() const;

  /// Verifies every shard's invariants AND the routing invariant: every
  /// triple lives in the shard its subject hashes to.
  bool CheckInvariants(std::string* error = nullptr) const;

  /// The facade's primary registry (shard 0's): hexa_shard_* facade
  /// instruments and the per-shard gauges are registered here, next to
  /// shard 0's hexa_delta_*/hexa_epoch_* families, so one export serves
  /// scrapes of the whole facade. Shards 1..N-1 keep their own
  /// registries (reachable via shard(i).metrics_registry()).
  obs::MetricsRegistry& metrics_registry() const {
    return shards_[0]->metrics_registry();
  }
  obs::TraceRing& trace_ring() const { return shards_[0]->trace_ring(); }
  /// Prometheus text of the primary registry (shard gauges refreshed).
  std::string MetricsText() const;
  /// JSON export of the primary registry (schema v2).
  std::string MetricsJson() const;
  bool DumpMetricsJson(const std::string& path) const;

 private:
  ShardedHexastore() = default;

  std::size_t Route(Id s) const { return ShardOf(s, shards_.size()); }
  // Registers the facade meters into shard 0's registry.
  void RegisterShardMeters();
  // Pushes per-shard sizes/staged-ops into the facade gauges.
  void RefreshShardGauges() const;
  // Sorted-unique k-way union of one accessor across all shards.
  template <typename Fn>
  IdVec GatherUnion(Fn&& per_shard) const;

  // Cross-shard group-commit coordinator (durable kBatched mode).
  // Declared before the shards so it outlives their WalWriters.
  std::unique_ptr<WalCommitGroup> commit_group_;

  // Durable wrappers (empty in in-memory mode) and the plain stores
  // owned directly (empty in durable mode).
  std::vector<std::unique_ptr<DurableDeltaHexastore>> durables_;
  std::vector<std::unique_ptr<DeltaHexastore>> plains_;
  // Uniform views over the per-shard stores: shards_[i] is the delta
  // store (plain, or the durable wrapper's inner store — non-const
  // access is confined to Compact(), which is WAL-safe: it only drains
  // staged state the log already covers); writers_[i] is the mutation
  // target the WAL rule requires (the wrapper in durable mode).
  std::vector<DeltaHexastore*> shards_;
  std::vector<TripleStore*> writers_;

  // Facade instruments (registered into shard 0's registry).
  struct ShardMeters {
    obs::Counter routed_writes;    // Insert/Erase routed to one shard
    obs::Counter routed_reads;     // bound-subject reads (one shard)
    obs::Counter scatter_reads;    // fan-out reads (all shards)
    obs::Counter fanout_erases;    // ErasePattern fan-outs
    obs::Gauge shard_count;
    obs::Gauge min_shard_triples;  // balance: smallest shard
    obs::Gauge max_shard_triples;  // balance: largest shard
    obs::Gauge staged_ops_total;
  };
  mutable ShardMeters meters_;
  // Per-shard size gauges (hexa_shard_<i>_size_triples), heap-allocated
  // so registered pointers stay stable.
  std::vector<std::unique_ptr<obs::Gauge>> shard_size_gauges_;
};

}  // namespace hexastore

#endif  // HEXASTORE_SHARD_SHARDED_HEXASTORE_H_

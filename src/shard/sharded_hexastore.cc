#include "shard/sharded_hexastore.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iterator>
#include <utility>

#include "wal/file_util.h"

namespace hexastore {

namespace {

namespace fs = std::filesystem;

// The shard-count manifest at the durable root. One line, so a torn
// write is unparsable rather than silently wrong (AtomicWriteFile makes
// even that impossible in practice).
constexpr char kShardsManifestName[] = "SHARDS";

std::string ShardDirName(std::size_t index) {
  std::string digits = std::to_string(index);
  if (digits.size() < 3) {
    digits.insert(0, 3 - digits.size(), '0');
  }
  return "shard-" + digits;
}

Status WriteShardsManifest(const std::string& root, std::size_t shards) {
  return AtomicWriteFile((fs::path(root) / kShardsManifestName).string(),
                         "shards " + std::to_string(shards) + "\n");
}

// Reads the SHARDS manifest; NotFound when the root has none yet.
Result<std::size_t> ReadShardsManifest(const std::string& root) {
  const std::string path =
      (fs::path(root) / kShardsManifestName).string();
  std::string contents;
  if (Status s = ReadFileToString(path, &contents); !s.ok()) {
    return s;
  }
  std::size_t count = 0;
  if (std::sscanf(contents.c_str(), "shards %zu", &count) != 1 ||
      count == 0) {
    return Status::ParseError("SHARDS manifest unparsable (" + path + ")");
  }
  return count;
}

// Sorted-unique merge of `add` into `out` (both sorted ascending).
void MergeUniqueInto(const IdVec& add, IdVec* out) {
  if (add.empty()) {
    return;
  }
  if (out->empty()) {
    *out = add;
    return;
  }
  IdVec merged;
  merged.reserve(out->size() + add.size());
  std::set_union(out->begin(), out->end(), add.begin(), add.end(),
                 std::back_inserter(merged));
  out->swap(merged);
}

MergedList OwnedMergedList(IdVec ids) {
  auto owned = std::make_shared<IdVec>(std::move(ids));
  return MergedList(nullptr, nullptr, std::move(owned), nullptr, nullptr);
}

}  // namespace

std::string ShardedOptions::Normalize() {
  std::string first;
  if (shards == 0) {
    shards = 1;
    first = "shard: shards=0 clamped to 1";
  }
  std::string note = delta.Normalize();
  if (first.empty()) {
    first = note;
  }
  return first;
}

std::size_t ShardedHexastore::ShardOf(Id s, std::size_t n) {
  if (n <= 1) {
    return 0;
  }
  // splitmix64 finalizer: dictionary ids are dense, so the mix keeps
  // consecutive subjects from striping into the same shard.
  std::uint64_t x = static_cast<std::uint64_t>(s);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % n);
}

ShardedHexastore::ShardedHexastore(const ShardedOptions& options) {
  ShardedOptions opts = options;
  opts.Normalize();
  DeltaOptions per_shard = opts.delta;
  if (per_shard.memory_budget_bytes > 0) {
    per_shard.memory_budget_bytes = std::max<std::size_t>(
        1, per_shard.memory_budget_bytes / opts.shards);
  }
  plains_.reserve(opts.shards);
  for (std::size_t i = 0; i < opts.shards; ++i) {
    plains_.push_back(std::make_unique<DeltaHexastore>(per_shard));
    shards_.push_back(plains_.back().get());
    writers_.push_back(plains_.back().get());
  }
  RegisterShardMeters();
}

Result<std::unique_ptr<ShardedHexastore>> ShardedHexastore::Open(
    const ShardedOptions& options) {
  ShardedOptions opts = options;
  opts.Normalize();
  if (!opts.durable) {
    return std::unique_ptr<ShardedHexastore>(new ShardedHexastore(opts));
  }
  if (opts.durability.dir.empty()) {
    return Status::InvalidArgument(
        "ShardedOptions.durability.dir must be set in durable mode");
  }
  if (Status s = EnsureDirectory(opts.durability.dir); !s.ok()) {
    return s;
  }
  // Shard-count manifest: the routing function is baked into the
  // on-disk layout, so a different count on reopen would misroute every
  // bound-subject read and erase. Reject it as a config error.
  auto recorded = ReadShardsManifest(opts.durability.dir);
  if (recorded.ok()) {
    if (recorded.value() != opts.shards) {
      return Status::InvalidArgument(
          "shard count mismatch: SHARDS manifest in " +
          opts.durability.dir + " records " +
          std::to_string(recorded.value()) + " shards, options request " +
          std::to_string(opts.shards) +
          " (reopen with the recorded count)");
    }
  } else if (recorded.status().code() == StatusCode::kNotFound) {
    if (Status s = WriteShardsManifest(opts.durability.dir, opts.shards);
        !s.ok()) {
      return s;
    }
  } else {
    return recorded.status();
  }

  std::unique_ptr<ShardedHexastore> store(new ShardedHexastore());
  if (opts.durability.mode == DurabilityMode::kBatched) {
    store->commit_group_ =
        std::make_unique<WalCommitGroup>(opts.durability.batch_bytes);
  }
  DurabilityOptions per_shard = opts.durability;
  per_shard.commit_group = store->commit_group_.get();
  if (per_shard.memory_budget_bytes > 0) {
    per_shard.memory_budget_bytes = std::max<std::size_t>(
        1, per_shard.memory_budget_bytes / opts.shards);
  }
  for (std::size_t i = 0; i < opts.shards; ++i) {
    per_shard.dir =
        (fs::path(opts.durability.dir) / ShardDirName(i)).string();
    auto opened = DurableDeltaHexastore::Open(per_shard);
    if (!opened.ok()) {
      return Status(opened.status().code(),
                    ShardDirName(i) + ": " + opened.status().message());
    }
    store->durables_.push_back(std::move(opened).value());
    store->shards_.push_back(
        const_cast<DeltaHexastore*>(&store->durables_.back()->delta()));
    store->writers_.push_back(store->durables_.back().get());
  }
  store->RegisterShardMeters();
  return store;
}

ShardedHexastore::~ShardedHexastore() = default;

void ShardedHexastore::RegisterShardMeters() {
  obs::MetricsRegistry& reg = metrics_registry();
  reg.RegisterCounter("hexa_shard_routed_writes_total",
                      "facade mutations routed to their subject's shard",
                      &meters_.routed_writes);
  reg.RegisterCounter("hexa_shard_routed_reads_total",
                      "bound-subject facade reads answered by one shard",
                      &meters_.routed_reads);
  reg.RegisterCounter("hexa_shard_scatter_reads_total",
                      "facade reads fanned out across every shard",
                      &meters_.scatter_reads);
  reg.RegisterCounter("hexa_shard_fanout_erases_total",
                      "ErasePattern calls fanned out across every shard",
                      &meters_.fanout_erases);
  reg.RegisterGauge("hexa_shard_count", "shards behind the facade",
                    &meters_.shard_count);
  reg.RegisterGauge("hexa_shard_min_triples",
                    "triples in the smallest shard (balance floor)",
                    &meters_.min_shard_triples);
  reg.RegisterGauge("hexa_shard_max_triples",
                    "triples in the largest shard (balance ceiling)",
                    &meters_.max_shard_triples);
  reg.RegisterGauge("hexa_shard_staged_ops",
                    "staged ops across every shard's delta chain",
                    &meters_.staged_ops_total);
  meters_.shard_count.Set(static_cast<std::int64_t>(shards_.size()));
  shard_size_gauges_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shard_size_gauges_.push_back(std::make_unique<obs::Gauge>());
    reg.RegisterGauge("hexa_shard_" + std::to_string(i) + "_triples",
                      "triples owned by shard " + std::to_string(i),
                      shard_size_gauges_.back().get());
  }
}

void ShardedHexastore::RefreshShardGauges() const {
  std::size_t min_size = static_cast<std::size_t>(-1);
  std::size_t max_size = 0;
  std::size_t staged = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::size_t n = shards_[i]->size();
    min_size = std::min(min_size, n);
    max_size = std::max(max_size, n);
    staged += shards_[i]->StagedOps();
    shard_size_gauges_[i]->Set(static_cast<std::int64_t>(n));
  }
  meters_.min_shard_triples.Set(static_cast<std::int64_t>(min_size));
  meters_.max_shard_triples.Set(static_cast<std::int64_t>(max_size));
  meters_.staged_ops_total.Set(static_cast<std::int64_t>(staged));
}

// -- TripleStore ----------------------------------------------------------

bool ShardedHexastore::Insert(const IdTriple& t) {
  meters_.routed_writes.Add();
  return writers_[Route(t.s)]->Insert(t);
}

bool ShardedHexastore::Erase(const IdTriple& t) {
  meters_.routed_writes.Add();
  return writers_[Route(t.s)]->Erase(t);
}

bool ShardedHexastore::Contains(const IdTriple& t) const {
  meters_.routed_reads.Add();
  return shards_[Route(t.s)]->Contains(t);
}

std::size_t ShardedHexastore::size() const {
  std::size_t n = 0;
  for (const DeltaHexastore* shard : shards_) {
    n += shard->size();
  }
  return n;
}

void ShardedHexastore::Scan(const IdPattern& pattern,
                            const TripleSink& sink) const {
  if (pattern.has_s()) {
    meters_.routed_reads.Add();
    shards_[Route(pattern.s)]->Scan(pattern, sink);
    return;
  }
  meters_.scatter_reads.Add();
  for (const DeltaHexastore* shard : shards_) {
    shard->Scan(pattern, sink);
  }
}

std::size_t ShardedHexastore::MemoryBytes() const {
  std::size_t n = 0;
  for (const DeltaHexastore* shard : shards_) {
    n += shard->MemoryBytes();
  }
  return n;
}

std::uint64_t ShardedHexastore::EstimateMatches(
    const IdPattern& pattern) const {
  if (pattern.has_s()) {
    return shards_[Route(pattern.s)]->EstimateMatches(pattern);
  }
  std::uint64_t n = 0;
  for (const DeltaHexastore* shard : shards_) {
    n += shard->EstimateMatches(pattern);
  }
  return n;
}

void ShardedHexastore::BulkLoad(const IdTripleVec& triples) {
  std::vector<IdTripleVec> parts(shards_.size());
  for (const IdTriple& t : triples) {
    parts[Route(t.s)].push_back(t);
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    writers_[i]->BulkLoad(parts[i]);
  }
}

std::size_t ShardedHexastore::ErasePattern(const IdPattern& pattern) {
  auto erase_on = [this](std::size_t i, const IdPattern& p) {
    return durables_.empty() ? plains_[i]->ErasePattern(p)
                             : durables_[i]->ErasePattern(p);
  };
  if (pattern.has_s()) {
    meters_.routed_writes.Add();
    return erase_on(Route(pattern.s), pattern);
  }
  // Fan out and sum: the subject partition is disjoint, so every erased
  // triple is counted by exactly one shard — no double counting even
  // when a shard answers via a pattern tombstone above L1.
  meters_.fanout_erases.Add();
  std::size_t erased = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    erased += erase_on(i, pattern);
  }
  return erased;
}

void ShardedHexastore::Clear() {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (durables_.empty()) {
      plains_[i]->Clear();
    } else {
      durables_[i]->Clear();
    }
  }
}

void ShardedHexastore::Compact() {
  // Draining staged state is WAL-safe on a durable shard: every staged
  // op is already logged, and the ride-along checkpoint fires at the
  // shard's next commit.
  for (DeltaHexastore* shard : shards_) {
    shard->Compact();
  }
}

std::size_t ShardedHexastore::StagedOps() const {
  std::size_t n = 0;
  for (const DeltaHexastore* shard : shards_) {
    n += shard->StagedOps();
  }
  return n;
}

// -- Pinned reads ---------------------------------------------------------

ShardedSnapshot ShardedHexastore::GetSnapshot() const {
  std::vector<DeltaHexastore::Snapshot> snaps;
  snaps.reserve(shards_.size());
  for (const DeltaHexastore* shard : shards_) {
    snaps.push_back(shard->GetSnapshot());
  }
  return ShardedSnapshot(std::move(snaps));
}

ShardedSnapshot ShardedHexastore::AcquireReadHandle() const {
  std::vector<DeltaHexastore::Snapshot> snaps;
  snaps.reserve(shards_.size());
  for (const DeltaHexastore* shard : shards_) {
    snaps.push_back(shard->AcquireReadHandle());
  }
  return ShardedSnapshot(std::move(snaps));
}

// -- Merged accessor views ------------------------------------------------

template <typename Fn>
IdVec ShardedHexastore::GatherUnion(Fn&& per_shard) const {
  meters_.scatter_reads.Add();
  IdVec out;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    MergeUniqueInto(per_shard(*shards_[i]), &out);
  }
  return out;
}

MergedList ShardedHexastore::objects(Id s, Id p) const {
  meters_.routed_reads.Add();
  return shards_[Route(s)]->objects(s, p);
}

MergedList ShardedHexastore::predicates(Id s, Id o) const {
  meters_.routed_reads.Add();
  return shards_[Route(s)]->predicates(s, o);
}

MergedList ShardedHexastore::subjects(Id p, Id o) const {
  // Subjects are partition keys: the per-shard lists are disjoint, and
  // a sorted-unique union of sorted lists reproduces the single-store
  // order exactly.
  return OwnedMergedList(GatherUnion(
      [p, o](const DeltaHexastore& d) { return d.subjects(p, o).Materialize(); }));
}

IdVec ShardedHexastore::predicates_of_subject(Id s) const {
  meters_.routed_reads.Add();
  return shards_[Route(s)]->predicates_of_subject(s);
}

IdVec ShardedHexastore::objects_of_subject(Id s) const {
  meters_.routed_reads.Add();
  return shards_[Route(s)]->objects_of_subject(s);
}

IdVec ShardedHexastore::subjects_of_predicate(Id p) const {
  return GatherUnion(
      [p](const DeltaHexastore& d) { return d.subjects_of_predicate(p); });
}

IdVec ShardedHexastore::objects_of_predicate(Id p) const {
  return GatherUnion(
      [p](const DeltaHexastore& d) { return d.objects_of_predicate(p); });
}

IdVec ShardedHexastore::subjects_of_object(Id o) const {
  return GatherUnion(
      [o](const DeltaHexastore& d) { return d.subjects_of_object(o); });
}

IdVec ShardedHexastore::predicates_of_object(Id o) const {
  return GatherUnion(
      [o](const DeltaHexastore& d) { return d.predicates_of_object(o); });
}

// -- Durability management ------------------------------------------------

Status ShardedHexastore::status() const {
  for (const auto& durable : durables_) {
    if (Status s = durable->status(); !s.ok()) {
      return s;
    }
  }
  return Status::OK();
}

Status ShardedHexastore::Flush() {
  Status first;
  for (const auto& durable : durables_) {
    if (Status s = durable->Flush(); !s.ok() && first.ok()) {
      first = s;
    }
  }
  return first;
}

Status ShardedHexastore::Checkpoint() {
  Status first;
  for (const auto& durable : durables_) {
    if (Status s = durable->Checkpoint(); !s.ok() && first.ok()) {
      first = s;
    }
  }
  return first;
}

// -- Stats + observability ------------------------------------------------

DeltaStats ShardedHexastore::Stats() const {
  DeltaStats total;
  bool have = false;
  for (const DeltaHexastore* shard : shards_) {
    const DeltaStats s = shard->Stats();
    if (!have) {
      total = s;
      have = true;
      continue;
    }
    total.staged_inserts += s.staged_inserts;
    total.staged_tombstones += s.staged_tombstones;
    total.pattern_tombstones += s.pattern_tombstones;
    total.compactions += s.compactions;
    total.epoch += s.epoch;
    total.base_triples += s.base_triples;
    total.base_bytes += s.base_bytes;
    total.delta_bytes += s.delta_bytes;
    total.seals += s.seals;
    total.background_merges += s.background_merges;
    total.merge_discards += s.merge_discards;
    total.seal_overflows += s.seal_overflows;
    total.sealed_ops += s.sealed_ops;
    total.l0_runs += s.l0_runs;
    total.l0_ops += s.l0_ops;
    total.l1_ops += s.l1_ops;
    total.l0_merges += s.l0_merges;
    total.base_merges += s.base_merges;
    total.merge_run_ops += s.merge_run_ops;
    total.base_rebuild_triples += s.base_rebuild_triples;
    total.staged_ops_total += s.staged_ops_total;
    total.filter_probes += s.filter_probes;
    total.filter_skips += s.filter_skips;
    total.filter_false_positives += s.filter_false_positives;
    total.filters_dropped += s.filters_dropped;
    total.memory_budget_bytes += s.memory_budget_bytes;
    total.resident_bytes += s.resident_bytes;
    total.budget_seals += s.budget_seals;
    total.budget_folds += s.budget_folds;
    total.budget_base_merges += s.budget_base_merges;
  }
  RefreshShardGauges();
  return total;
}

bool ShardedHexastore::CheckInvariants(std::string* error) const {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i]->CheckInvariants(error)) {
      if (error != nullptr) {
        *error = ShardDirName(i) + ": " + *error;
      }
      return false;
    }
    // Routing invariant: every triple lives where its subject hashes.
    bool misrouted = false;
    Id bad_subject = 0;
    shards_[i]->Scan(IdPattern{}, [&](const IdTriple& t) {
      if (!misrouted && Route(t.s) != i) {
        misrouted = true;
        bad_subject = t.s;
      }
    });
    if (misrouted) {
      if (error != nullptr) {
        *error = ShardDirName(i) + ": subject " +
                 std::to_string(bad_subject) + " routed to shard " +
                 std::to_string(Route(bad_subject));
      }
      return false;
    }
  }
  return true;
}

std::string ShardedHexastore::MetricsText() const {
  RefreshShardGauges();
  return shards_[0]->MetricsText();
}

std::string ShardedHexastore::MetricsJson() const {
  RefreshShardGauges();
  return shards_[0]->MetricsJson();
}

bool ShardedHexastore::DumpMetricsJson(const std::string& path) const {
  RefreshShardGauges();
  return shards_[0]->DumpMetricsJson(path);
}

// -- ShardedSnapshot ------------------------------------------------------

bool ShardedSnapshot::Contains(const IdTriple& t) const {
  return shards_[ShardedHexastore::ShardOf(t.s, shards_.size())].Contains(t);
}

std::size_t ShardedSnapshot::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    n += shard.size();
  }
  return n;
}

void ShardedSnapshot::Scan(const IdPattern& pattern,
                           const TripleSink& sink) const {
  if (pattern.has_s()) {
    shards_[ShardedHexastore::ShardOf(pattern.s, shards_.size())].Scan(
        pattern, sink);
    return;
  }
  for (const auto& shard : shards_) {
    shard.Scan(pattern, sink);
  }
}

std::size_t ShardedSnapshot::MemoryBytes() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    n += shard.MemoryBytes();
  }
  return n;
}

std::uint64_t ShardedSnapshot::EstimateMatches(
    const IdPattern& pattern) const {
  if (pattern.has_s()) {
    return shards_[ShardedHexastore::ShardOf(pattern.s, shards_.size())]
        .EstimateMatches(pattern);
  }
  std::uint64_t n = 0;
  for (const auto& shard : shards_) {
    n += shard.EstimateMatches(pattern);
  }
  return n;
}

std::vector<std::uint64_t> ShardedSnapshot::StampVector() const {
  std::vector<std::uint64_t> stamp;
  stamp.reserve(shards_.size() * 2);
  for (const auto& shard : shards_) {
    stamp.push_back(shard.epoch());
    stamp.push_back(shard.staged_ops());
  }
  return stamp;
}

MergedList ShardedSnapshot::objects(Id s, Id p) const {
  return shards_[ShardedHexastore::ShardOf(s, shards_.size())].objects(s, p);
}

MergedList ShardedSnapshot::predicates(Id s, Id o) const {
  return shards_[ShardedHexastore::ShardOf(s, shards_.size())].predicates(
      s, o);
}

MergedList ShardedSnapshot::subjects(Id p, Id o) const {
  IdVec out;
  for (const auto& shard : shards_) {
    MergeUniqueInto(shard.subjects(p, o).Materialize(), &out);
  }
  return OwnedMergedList(std::move(out));
}

IdVec ShardedSnapshot::predicates_of_subject(Id s) const {
  return shards_[ShardedHexastore::ShardOf(s, shards_.size())]
      .predicates_of_subject(s);
}

IdVec ShardedSnapshot::objects_of_subject(Id s) const {
  return shards_[ShardedHexastore::ShardOf(s, shards_.size())]
      .objects_of_subject(s);
}

IdVec ShardedSnapshot::subjects_of_predicate(Id p) const {
  IdVec out;
  for (const auto& shard : shards_) {
    MergeUniqueInto(shard.subjects_of_predicate(p), &out);
  }
  return out;
}

IdVec ShardedSnapshot::objects_of_predicate(Id p) const {
  IdVec out;
  for (const auto& shard : shards_) {
    MergeUniqueInto(shard.objects_of_predicate(p), &out);
  }
  return out;
}

IdVec ShardedSnapshot::subjects_of_object(Id o) const {
  IdVec out;
  for (const auto& shard : shards_) {
    MergeUniqueInto(shard.subjects_of_object(o), &out);
  }
  return out;
}

IdVec ShardedSnapshot::predicates_of_object(Id o) const {
  IdVec out;
  for (const auto& shard : shards_) {
    MergeUniqueInto(shard.predicates_of_object(o), &out);
  }
  return out;
}

}  // namespace hexastore

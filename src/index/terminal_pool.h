// Shared terminal lists (paper §4.1).
//
// Three pairs of permutation indexes agree on the *set* of their first two
// roles, so they can share one physical copy of each terminal list:
//
//   spo + pso  share  object lists    o(s,p)   keyed by (subject, predicate)
//   sop + osp  share  predicate lists p(s,o)   keyed by (subject, object)
//   pos + ops  share  subject lists   s(p,o)   keyed by (predicate, object)
//
// This sharing is what reduces the worst-case space blow-up from 6x to 5x:
// each resource key lands in 2 headers + 2 vectors + 1 shared list.
#ifndef HEXASTORE_INDEX_TERMINAL_POOL_H_
#define HEXASTORE_INDEX_TERMINAL_POOL_H_

#include <cstddef>
#include <unordered_map>

#include "index/sorted_vec.h"
#include "util/common.h"

namespace hexastore {

/// Unordered pair-of-roles key for a terminal list.
struct IdPair {
  Id a = kInvalidId;
  Id b = kInvalidId;

  friend bool operator==(const IdPair&, const IdPair&) = default;
};

/// Hash for IdPair (64-bit mix of both components).
struct IdPairHash {
  std::size_t operator()(const IdPair& p) const {
    // splitmix64-style finalizer over the combined words.
    std::uint64_t x = p.a * 0x9e3779b97f4a7c15ULL ^ (p.b + 0x7f4a7c15ULL);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

/// The three terminal-list families.
enum class ListFamily : int {
  kObjects = 0,     ///< o(s,p), shared by spo and pso
  kPredicates = 1,  ///< p(s,o), shared by sop and osp
  kSubjects = 2,    ///< s(p,o), shared by pos and ops
};

/// Owner of all shared terminal lists of a Hexastore.
class TerminalListPool {
 public:
  TerminalListPool() = default;

  TerminalListPool(const TerminalListPool&) = delete;
  TerminalListPool& operator=(const TerminalListPool&) = delete;

  /// Adds `third` to the list of `family` keyed by (a, b); creates the list
  /// on first use. Returns false if `third` was already present.
  bool Insert(ListFamily family, Id a, Id b, Id third);

  /// Removes `third` from the keyed list; drops the list when it becomes
  /// empty. Returns false if the list or element was absent.
  bool Erase(ListFamily family, Id a, Id b, Id third);

  /// The keyed list, or nullptr if it does not exist.
  const IdVec* Find(ListFamily family, Id a, Id b) const;

  /// Membership test: is `third` in the list keyed by (a, b)?
  bool Contains(ListFamily family, Id a, Id b, Id third) const;

  /// Number of lists in a family.
  std::size_t ListCount(ListFamily family) const;

  /// Total entries across all lists of a family (each family totals the
  /// number of distinct triples).
  std::size_t EntryCount(ListFamily family) const;

  /// Approximate heap bytes of one family (map + list buffers).
  std::size_t MemoryBytes(ListFamily family) const;

  /// Approximate heap bytes of the whole pool.
  std::size_t MemoryBytes() const;

  /// Removes all lists.
  void Clear();

  /// Reserves hash-table capacity for bulk loading.
  void Reserve(std::size_t lists_per_family);

  /// Mutable access for bulk loaders; creates the list if absent. The
  /// caller must leave the list sorted and duplicate-free (or call
  /// SortUniqueAll afterwards).
  IdVec* GetOrCreate(ListFamily family, Id a, Id b);

  /// Sorts and deduplicates every list in every family (bulk-load
  /// finalization).
  void SortUniqueAll();

 private:
  using ListMap = std::unordered_map<IdPair, IdVec, IdPairHash>;

  const ListMap& map(ListFamily family) const {
    return maps_[static_cast<int>(family)];
  }
  ListMap& map(ListFamily family) {
    return maps_[static_cast<int>(family)];
  }

  ListMap maps_[3];
};

}  // namespace hexastore

#endif  // HEXASTORE_INDEX_TERMINAL_POOL_H_

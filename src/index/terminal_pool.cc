#include "index/terminal_pool.h"

#include "util/memory_tracker.h"

namespace hexastore {

bool TerminalListPool::Insert(ListFamily family, Id a, Id b, Id third) {
  return SortedInsert(&map(family)[IdPair{a, b}], third);
}

bool TerminalListPool::Erase(ListFamily family, Id a, Id b, Id third) {
  auto& m = map(family);
  auto it = m.find(IdPair{a, b});
  if (it == m.end()) {
    return false;
  }
  if (!SortedErase(&it->second, third)) {
    return false;
  }
  if (it->second.empty()) {
    m.erase(it);
  }
  return true;
}

const IdVec* TerminalListPool::Find(ListFamily family, Id a, Id b) const {
  const auto& m = map(family);
  auto it = m.find(IdPair{a, b});
  return it == m.end() ? nullptr : &it->second;
}

bool TerminalListPool::Contains(ListFamily family, Id a, Id b,
                                Id third) const {
  const IdVec* list = Find(family, a, b);
  return list != nullptr && SortedContains(*list, third);
}

std::size_t TerminalListPool::ListCount(ListFamily family) const {
  return map(family).size();
}

std::size_t TerminalListPool::EntryCount(ListFamily family) const {
  std::size_t total = 0;
  for (const auto& [key, list] : map(family)) {
    (void)key;
    total += list.size();
  }
  return total;
}

std::size_t TerminalListPool::MemoryBytes(ListFamily family) const {
  const auto& m = map(family);
  std::size_t bytes = HashMapHeapBytes(m);
  for (const auto& [key, list] : m) {
    (void)key;
    bytes += VectorHeapBytes(list);
  }
  return bytes;
}

std::size_t TerminalListPool::MemoryBytes() const {
  return MemoryBytes(ListFamily::kObjects) +
         MemoryBytes(ListFamily::kPredicates) +
         MemoryBytes(ListFamily::kSubjects);
}

void TerminalListPool::Clear() {
  for (auto& m : maps_) {
    m.clear();
  }
}

void TerminalListPool::Reserve(std::size_t lists_per_family) {
  for (auto& m : maps_) {
    m.reserve(lists_per_family);
  }
}

IdVec* TerminalListPool::GetOrCreate(ListFamily family, Id a, Id b) {
  return &map(family)[IdPair{a, b}];
}

void TerminalListPool::SortUniqueAll() {
  for (auto& m : maps_) {
    for (auto& [key, list] : m) {
      (void)key;
      SortUnique(&list);
    }
  }
}

}  // namespace hexastore

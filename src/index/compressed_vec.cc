#include "index/compressed_vec.h"

#include <algorithm>

#include "io/binary_format.h"
#include "util/memory_tracker.h"

namespace hexastore {

CompressedIdVec::CompressedIdVec(const IdVec& vec,
                                 std::size_t skip_interval)
    : size_(vec.size()),
      skip_interval_(skip_interval == 0 ? 1 : skip_interval) {
  Id prev = 0;
  for (std::size_t i = 0; i < vec.size(); ++i) {
    if (i % skip_interval_ == 0) {
      skips_.push_back(
          Skip{vec[i], static_cast<std::uint32_t>(payload_.size())});
      // Block-initial entries store the full id so a block can be decoded
      // without context.
      AppendVarint(&payload_, vec[i]);
    } else {
      AppendVarint(&payload_, vec[i] - prev);
    }
    prev = vec[i];
  }
}

void CompressedIdVec::ReadDelta(std::size_t* pos,
                                std::uint64_t* delta) const {
  ReadVarint(payload_, pos, delta);
}

IdVec CompressedIdVec::Decode() const {
  IdVec out;
  out.reserve(size_);
  std::size_t pos = 0;
  Id current = 0;
  for (std::size_t i = 0; i < size_; ++i) {
    std::uint64_t v = 0;
    ReadVarint(payload_, &pos, &v);
    current = (i % skip_interval_ == 0) ? v : current + v;
    out.push_back(current);
  }
  return out;
}

bool CompressedIdVec::Contains(Id id) const {
  if (skips_.empty()) {
    return false;
  }
  // Find the last block whose first id is <= id.
  auto it = std::upper_bound(
      skips_.begin(), skips_.end(), id,
      [](Id value, const Skip& s) { return value < s.first_id; });
  if (it == skips_.begin()) {
    return false;
  }
  --it;
  const std::size_t block = static_cast<std::size_t>(it - skips_.begin());
  std::size_t pos = it->offset;
  std::size_t index = block * skip_interval_;
  Id current = 0;
  std::uint64_t v = 0;
  if (!ReadVarint(payload_, &pos, &v)) {
    return false;
  }
  current = v;
  if (current == id) {
    return true;
  }
  const std::size_t block_end =
      std::min(size_, (block + 1) * skip_interval_);
  for (std::size_t i = index + 1; i < block_end; ++i) {
    if (!ReadVarint(payload_, &pos, &v)) {
      return false;
    }
    current += v;
    if (current == id) {
      return true;
    }
    if (current > id) {
      return false;
    }
  }
  return false;
}

std::size_t CompressedIdVec::MemoryBytes() const {
  return payload_.capacity() + skips_.capacity() * sizeof(Skip);
}

}  // namespace hexastore

// Operations on sorted, duplicate-free id vectors.
//
// Sorted id vectors are the universal building block of the Hexastore: the
// second-level vectors of each permutation index and the shared terminal
// lists are all sorted vectors, which is what makes every first-step
// pairwise join a linear merge join (paper §4.2).
#ifndef HEXASTORE_INDEX_SORTED_VEC_H_
#define HEXASTORE_INDEX_SORTED_VEC_H_

#include <cstddef>
#include <vector>

#include "util/common.h"

namespace hexastore {

/// A sorted, duplicate-free vector of ids.
using IdVec = std::vector<Id>;

/// Inserts `id` keeping order; returns false if already present.
bool SortedInsert(IdVec* vec, Id id);

/// Removes `id`; returns false if absent.
bool SortedErase(IdVec* vec, Id id);

/// Binary-search membership test.
bool SortedContains(const IdVec& vec, Id id);

/// Sorts and deduplicates in place (bulk-load path).
void SortUnique(IdVec* vec);

/// Finalizes a vector whose first `sorted_prefix` elements are sorted and
/// duplicate-free while the appended tail is arbitrary: sorts the tail,
/// merges it in linearly, and drops duplicates (including tail elements
/// already present in the prefix). The incremental bulk-load primitive.
void SortedMergeTail(IdVec* vec, std::size_t sorted_prefix);

/// Index of the first element >= target, probing with galloping
/// (exponential) search from `start`. Used to accelerate merge joins on
/// size-skewed inputs.
std::size_t GallopLowerBound(const IdVec& vec, std::size_t start, Id target);

/// Linear merge intersection of two sorted vectors.
IdVec Intersect(const IdVec& a, const IdVec& b);

/// Intersection that gallops through the larger input; O(n log(m/n)).
IdVec IntersectGalloping(const IdVec& small, const IdVec& large);

/// Linear merge union of two sorted vectors.
IdVec Union(const IdVec& a, const IdVec& b);

/// Elements of `a` not in `b` (merge difference).
IdVec Difference(const IdVec& a, const IdVec& b);

/// Calls `emit(id)` for every id present in both sorted inputs, walking
/// both in one pass (the paper's linear merge join).
template <typename Emit>
void MergeJoin(const IdVec& a, const IdVec& b, Emit&& emit) {
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      emit(a[i]);
      ++i;
      ++j;
    }
  }
}

/// True iff the vector is sorted strictly ascending (test helper for the
/// structural invariant every index must maintain).
bool IsStrictlySorted(const IdVec& vec);

}  // namespace hexastore

#endif  // HEXASTORE_INDEX_SORTED_VEC_H_

// One permutation index of a Hexastore: a header map from first-role ids
// to sorted vectors of second-role ids (Figure 2 of the paper). Terminal
// lists of third-role ids are not stored here — they live in the shared
// TerminalListPool and are keyed by (first, second) in the family the
// permutation belongs to.
#ifndef HEXASTORE_INDEX_PERM_INDEX_H_
#define HEXASTORE_INDEX_PERM_INDEX_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "index/sorted_vec.h"
#include "util/common.h"

namespace hexastore {

/// The six permutations of (subject, predicate, object).
enum class Permutation : int {
  kSpo = 0,
  kSop = 1,
  kPso = 2,
  kPos = 3,
  kOsp = 4,
  kOps = 5,
};

/// Short lowercase name of a permutation ("spo", ...).
const char* PermutationName(Permutation perm);

/// All six permutations, in declaration order.
inline constexpr Permutation kAllPermutations[] = {
    Permutation::kSpo, Permutation::kSop, Permutation::kPso,
    Permutation::kPos, Permutation::kOsp, Permutation::kOps,
};

/// Roles (subject/predicate/object) of the first, second and third
/// position of a permutation.
struct PermutationRoles {
  Role first;
  Role second;
  Role third;
};

/// Role layout of a permutation (e.g. kPos -> {predicate, object, subject}).
PermutationRoles RolesOf(Permutation perm);

/// Two-level header/vector structure for one permutation.
class PermIndex {
 public:
  PermIndex() = default;

  PermIndex(const PermIndex&) = delete;
  PermIndex& operator=(const PermIndex&) = delete;

  /// Adds `second` under the `first` header. Returns false if the pair was
  /// already present.
  bool Insert(Id first, Id second);

  /// Removes `second` from the `first` header; drops the header when its
  /// vector becomes empty. Returns false if absent.
  bool Erase(Id first, Id second);

  /// The sorted second-role vector under `first`, or nullptr.
  const IdVec* Find(Id first) const;

  /// True iff the (first, second) pair is present.
  bool Contains(Id first, Id second) const;

  /// Number of headers.
  std::size_t HeaderCount() const { return headers_.size(); }

  /// Total second-level entries across all headers.
  std::size_t EntryCount() const;

  /// All header ids, sorted ascending (materialized on demand; full-store
  /// scans are the only consumer).
  std::vector<Id> SortedHeaders() const;

  /// Calls `fn(first, vec)` for every header in unspecified order.
  template <typename Fn>
  void ForEachHeader(Fn&& fn) const {
    for (const auto& [first, vec] : headers_) {
      fn(first, vec);
    }
  }

  /// Approximate heap bytes (map + vector buffers).
  std::size_t MemoryBytes() const;

  /// Removes everything.
  void Clear();

  /// Reserves hash-table capacity for bulk loading.
  void Reserve(std::size_t headers);

  /// Mutable access for bulk loaders; creates the header if absent. The
  /// caller must leave the vector sorted and duplicate-free (or call
  /// SortUniqueAll afterwards).
  IdVec* GetOrCreate(Id first);

  /// Sorts and deduplicates every header vector (bulk-load finalization).
  void SortUniqueAll();

 private:
  std::unordered_map<Id, IdVec> headers_;
};

}  // namespace hexastore

#endif  // HEXASTORE_INDEX_PERM_INDEX_H_

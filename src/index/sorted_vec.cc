#include "index/sorted_vec.h"

#include <algorithm>

namespace hexastore {

bool SortedInsert(IdVec* vec, Id id) {
  auto it = std::lower_bound(vec->begin(), vec->end(), id);
  if (it != vec->end() && *it == id) {
    return false;
  }
  vec->insert(it, id);
  return true;
}

bool SortedErase(IdVec* vec, Id id) {
  auto it = std::lower_bound(vec->begin(), vec->end(), id);
  if (it == vec->end() || *it != id) {
    return false;
  }
  vec->erase(it);
  return true;
}

bool SortedContains(const IdVec& vec, Id id) {
  return std::binary_search(vec.begin(), vec.end(), id);
}

void SortUnique(IdVec* vec) {
  std::sort(vec->begin(), vec->end());
  vec->erase(std::unique(vec->begin(), vec->end()), vec->end());
}

void SortedMergeTail(IdVec* vec, std::size_t sorted_prefix) {
  const auto mid =
      vec->begin() + static_cast<std::ptrdiff_t>(sorted_prefix);
  std::sort(mid, vec->end());
  std::inplace_merge(vec->begin(), mid, vec->end());
  vec->erase(std::unique(vec->begin(), vec->end()), vec->end());
}

std::size_t GallopLowerBound(const IdVec& vec, std::size_t start,
                             Id target) {
  std::size_t lo = start;
  if (lo >= vec.size() || vec[lo] >= target) {
    return lo;
  }
  std::size_t step = 1;
  std::size_t hi = lo + step;
  while (hi < vec.size() && vec[hi] < target) {
    lo = hi;
    step <<= 1;
    hi = lo + step;
  }
  if (hi > vec.size()) {
    hi = vec.size();
  }
  auto it = std::lower_bound(vec.begin() + static_cast<std::ptrdiff_t>(lo),
                             vec.begin() + static_cast<std::ptrdiff_t>(hi),
                             target);
  return static_cast<std::size_t>(it - vec.begin());
}

IdVec Intersect(const IdVec& a, const IdVec& b) {
  IdVec out;
  out.reserve(std::min(a.size(), b.size()));
  MergeJoin(a, b, [&out](Id id) { out.push_back(id); });
  return out;
}

IdVec IntersectGalloping(const IdVec& small, const IdVec& large) {
  IdVec out;
  out.reserve(small.size());
  std::size_t j = 0;
  for (Id id : small) {
    j = GallopLowerBound(large, j, id);
    if (j >= large.size()) {
      break;
    }
    if (large[j] == id) {
      out.push_back(id);
      ++j;
    }
  }
  return out;
}

IdVec Union(const IdVec& a, const IdVec& b) {
  IdVec out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

IdVec Difference(const IdVec& a, const IdVec& b) {
  IdVec out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

bool IsStrictlySorted(const IdVec& vec) {
  for (std::size_t i = 1; i < vec.size(); ++i) {
    if (vec[i - 1] >= vec[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace hexastore

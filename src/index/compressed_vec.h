// Delta/varint-compressed sorted id vectors.
//
// The vertical-partitioning work the paper builds on leans on
// column-store compression (Abadi et al., SIGMOD'06); a Hexastore's
// sorted vectors and terminal lists are equally compressible because
// they are strictly ascending id sequences. CompressedIdVec stores gaps
// as LEB128 varints with periodic skip entries, trading pointer-chasing
// decode work for a several-fold space reduction (quantified by
// bench/abl_compression).
#ifndef HEXASTORE_INDEX_COMPRESSED_VEC_H_
#define HEXASTORE_INDEX_COMPRESSED_VEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "index/sorted_vec.h"
#include "util/common.h"

namespace hexastore {

/// Immutable compressed form of a sorted, duplicate-free id vector.
class CompressedIdVec {
 public:
  /// Compresses `vec` (must be strictly ascending). Skip entries are
  /// placed every `skip_interval` elements to support binary probing.
  explicit CompressedIdVec(const IdVec& vec,
                           std::size_t skip_interval = 32);

  /// Number of ids.
  std::size_t size() const { return size_; }
  /// True iff empty.
  bool empty() const { return size_ == 0; }

  /// Decompresses back to a plain vector.
  IdVec Decode() const;

  /// Membership test: binary search over skips, linear varint scan
  /// within one skip block.
  bool Contains(Id id) const;

  /// Calls `fn(id)` for every id in ascending order. Block-initial
  /// entries are absolute ids; the rest are deltas.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    std::size_t pos = 0;
    Id current = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      std::uint64_t v = 0;
      ReadDelta(&pos, &v);
      current = (i % skip_interval_ == 0) ? v : current + v;
      fn(current);
    }
  }

  /// Compressed payload bytes (excluding the skip table).
  std::size_t PayloadBytes() const { return payload_.size(); }

  /// Total heap bytes (payload + skip table).
  std::size_t MemoryBytes() const;

 private:
  struct Skip {
    Id first_id;        // id at the start of the block
    std::uint32_t offset;  // byte offset of the block in payload_
  };

  void ReadDelta(std::size_t* pos, std::uint64_t* delta) const;

  std::string payload_;
  std::vector<Skip> skips_;
  std::size_t size_ = 0;
  std::size_t skip_interval_;
};

}  // namespace hexastore

#endif  // HEXASTORE_INDEX_COMPRESSED_VEC_H_

#include "index/perm_index.h"

#include <algorithm>

#include "util/memory_tracker.h"

namespace hexastore {

const char* PermutationName(Permutation perm) {
  switch (perm) {
    case Permutation::kSpo:
      return "spo";
    case Permutation::kSop:
      return "sop";
    case Permutation::kPso:
      return "pso";
    case Permutation::kPos:
      return "pos";
    case Permutation::kOsp:
      return "osp";
    case Permutation::kOps:
      return "ops";
  }
  return "???";
}

PermutationRoles RolesOf(Permutation perm) {
  switch (perm) {
    case Permutation::kSpo:
      return {Role::kSubject, Role::kPredicate, Role::kObject};
    case Permutation::kSop:
      return {Role::kSubject, Role::kObject, Role::kPredicate};
    case Permutation::kPso:
      return {Role::kPredicate, Role::kSubject, Role::kObject};
    case Permutation::kPos:
      return {Role::kPredicate, Role::kObject, Role::kSubject};
    case Permutation::kOsp:
      return {Role::kObject, Role::kSubject, Role::kPredicate};
    case Permutation::kOps:
      return {Role::kObject, Role::kPredicate, Role::kSubject};
  }
  return {Role::kSubject, Role::kPredicate, Role::kObject};
}

bool PermIndex::Insert(Id first, Id second) {
  return SortedInsert(&headers_[first], second);
}

bool PermIndex::Erase(Id first, Id second) {
  auto it = headers_.find(first);
  if (it == headers_.end()) {
    return false;
  }
  if (!SortedErase(&it->second, second)) {
    return false;
  }
  if (it->second.empty()) {
    headers_.erase(it);
  }
  return true;
}

const IdVec* PermIndex::Find(Id first) const {
  auto it = headers_.find(first);
  return it == headers_.end() ? nullptr : &it->second;
}

bool PermIndex::Contains(Id first, Id second) const {
  const IdVec* vec = Find(first);
  return vec != nullptr && SortedContains(*vec, second);
}

std::size_t PermIndex::EntryCount() const {
  std::size_t total = 0;
  for (const auto& [first, vec] : headers_) {
    (void)first;
    total += vec.size();
  }
  return total;
}

std::vector<Id> PermIndex::SortedHeaders() const {
  std::vector<Id> keys;
  keys.reserve(headers_.size());
  for (const auto& [first, vec] : headers_) {
    (void)vec;
    keys.push_back(first);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::size_t PermIndex::MemoryBytes() const {
  std::size_t bytes = HashMapHeapBytes(headers_);
  for (const auto& [first, vec] : headers_) {
    (void)first;
    bytes += VectorHeapBytes(vec);
  }
  return bytes;
}

void PermIndex::Clear() { headers_.clear(); }

void PermIndex::Reserve(std::size_t headers) { headers_.reserve(headers); }

IdVec* PermIndex::GetOrCreate(Id first) { return &headers_[first]; }

void PermIndex::SortUniqueAll() {
  for (auto& [first, vec] : headers_) {
    (void)first;
    SortUnique(&vec);
  }
}

}  // namespace hexastore

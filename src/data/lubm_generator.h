// Synthetic LUBM-like academic dataset (paper §5.1.2).
//
// Re-implements the Lehigh University Benchmark generation process (Guo,
// Heflin, Pan) from scratch: universities contain departments; departments
// contain faculty (full/associate/assistant professors, lecturers),
// students (graduate and undergraduate) and courses. The 18 predicates
// match the count the paper reports for its LUBM data set.
//
// Generation is deterministic and prefix-stable: Generate(m) is a prefix
// of Generate(n) for m <= n, enabling the paper's growing-prefix sweeps.
#ifndef HEXASTORE_DATA_LUBM_GENERATOR_H_
#define HEXASTORE_DATA_LUBM_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "rdf/term.h"
#include "rdf/triple.h"

namespace hexastore::data {

/// Options for the LUBM-like generator.
struct LubmOptions {
  /// PRNG seed; same seed => identical dataset.
  std::uint64_t seed = 19981015;  // LUBM univ-bench ontology date
  /// Number of universities available to Generate (the paper used 10).
  std::size_t num_universities = 10;
};

/// Deterministic generator for the LUBM-like academic dataset.
class LubmGenerator {
 public:
  explicit LubmGenerator(LubmOptions options = LubmOptions());

  /// Exactly `num_triples` triples; prefix-stable across calls.
  std::vector<Triple> Generate(std::size_t num_triples) const;

  // -- Predicates (exactly 18, namespaced under univ-bench) --------------

  static Term PropType();
  static Term PropName();
  static Term PropEmail();
  static Term PropTelephone();
  static Term PropResearchInterest();
  static Term PropTeacherOf();
  static Term PropWorksFor();
  static Term PropHeadOf();
  static Term PropUndergraduateDegreeFrom();
  static Term PropMastersDegreeFrom();
  static Term PropDoctoralDegreeFrom();
  static Term PropAdvisor();
  static Term PropTakesCourse();
  static Term PropTeachingAssistantOf();
  static Term PropMemberOf();
  static Term PropSubOrganizationOf();
  static Term PropPublicationAuthor();
  static Term PropTitle();

  /// All 18 predicates.
  static std::vector<Term> AllPredicates();

  // -- Classes ------------------------------------------------------------

  static Term ClassUniversity();
  static Term ClassDepartment();
  static Term ClassFullProfessor();
  static Term ClassAssociateProfessor();
  static Term ClassAssistantProfessor();
  static Term ClassLecturer();
  static Term ClassGraduateStudent();
  static Term ClassUndergraduateStudent();
  static Term ClassCourse();
  static Term ClassGraduateCourse();
  static Term ClassPublication();

  // -- Entity URIs (mirror the LUBM URI scheme) ---------------------------

  static Term UniversityUri(std::size_t u);
  static Term DepartmentUri(std::size_t u, std::size_t d);
  static Term FullProfessorUri(std::size_t u, std::size_t d, std::size_t i);
  static Term AssociateProfessorUri(std::size_t u, std::size_t d,
                                    std::size_t i);
  static Term AssistantProfessorUri(std::size_t u, std::size_t d,
                                    std::size_t i);
  static Term LecturerUri(std::size_t u, std::size_t d, std::size_t i);
  static Term GraduateStudentUri(std::size_t u, std::size_t d,
                                 std::size_t i);
  static Term UndergraduateStudentUri(std::size_t u, std::size_t d,
                                      std::size_t i);
  static Term CourseUri(std::size_t u, std::size_t d, std::size_t i);
  static Term GraduateCourseUri(std::size_t u, std::size_t d,
                                std::size_t i);
  static Term PublicationUri(std::size_t u, std::size_t d, std::size_t i);

 private:
  LubmOptions options_;
};

}  // namespace hexastore::data

#endif  // HEXASTORE_DATA_LUBM_GENERATOR_H_

// Synthetic Barton-like library-catalog dataset (paper §5.1.1).
//
// The real MIT Barton Libraries dump (61M triples, 285 unique properties,
// highly irregular) is not redistributable here, so we generate a
// deterministic synthetic catalog with the same *shape*:
//
//  * ~285 properties whose frequencies follow a Zipf law ("the vast
//    majority of properties appear infrequently");
//  * record types (Text, NotatedMusic, SoundRecording, Date, ...), with
//    Text dominating, as queries BQ1-BQ4 require;
//  * Language / Origin / Records / Point / Encoding properties wired the
//    way queries BQ4, BQ5 and BQ7 need them (DLC-origin records that
//    `Records` other catalog entries; Date records carrying Point "end"
//    and an Encoding);
//  * multi-valued properties (Subject, generic tail properties) so BQ3's
//    "popular object values" aggregation has work to do.
//
// Generation is streaming and deterministic: Generate(n) always returns
// the same n triples for the same options, and Generate(m) for m < n is a
// strict prefix of Generate(n) — exactly what the paper's progressively-
// larger-prefix experiments need.
#ifndef HEXASTORE_DATA_BARTON_GENERATOR_H_
#define HEXASTORE_DATA_BARTON_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "rdf/term.h"
#include "rdf/triple.h"

namespace hexastore::data {

/// Options for the Barton-like generator.
struct BartonOptions {
  /// PRNG seed; same seed => identical dataset.
  std::uint64_t seed = 20080824;
  /// Number of generic tail properties (plus 15 named head properties
  /// gives the paper's ~285 unique properties).
  std::size_t num_generic_properties = 270;
  /// Zipf exponent of the tail-property frequency law.
  double zipf_exponent = 1.1;
  /// Distinct generic object values shared across tail properties.
  std::size_t num_generic_values = 4000;
};

/// Deterministic generator for the Barton-like catalog.
class BartonGenerator {
 public:
  explicit BartonGenerator(BartonOptions options = BartonOptions());

  /// Exactly `num_triples` triples; Generate(m) is a prefix of
  /// Generate(n) for m <= n.
  std::vector<Triple> Generate(std::size_t num_triples) const;

  // -- Vocabulary (namespaced under http://example.org/barton/) ----------

  static Term PropType();
  static Term PropLanguage();
  static Term PropOrigin();
  static Term PropRecords();
  static Term PropPoint();
  static Term PropEncoding();
  static Term PropTitle();
  static Term PropCreator();
  static Term PropSubject();
  static Term PropPublisher();
  static Term PropDateValue();
  static Term PropFormat();
  static Term PropDescription();
  static Term PropIdentifier();
  static Term PropRelated();
  /// Generic tail property #k (k < num_generic_properties).
  static Term GenericProperty(std::size_t k);

  static Term TypeText();
  static Term TypeNotatedMusic();
  static Term TypeSoundRecording();
  static Term TypeMap();
  static Term TypeManuscript();
  static Term TypePeriodical();
  static Term TypeDate();
  static Term TypeOrganization();
  static Term TypePerson();

  static Term LangFrench();
  static Term LangEnglish();
  static Term LangGerman();
  static Term LangSpanish();

  static Term OriginDlc();
  static Term PointEnd();
  static Term PointStart();

  /// URI of catalog record `i`.
  static Term RecordUri(std::size_t i);

  /// The 28 preselected properties used by the paper's `_28` query
  /// variants (the named head properties plus the most frequent tail
  /// properties).
  static std::vector<Term> PreselectedProperties();

 private:
  BartonOptions options_;
};

}  // namespace hexastore::data

#endif  // HEXASTORE_DATA_BARTON_GENERATOR_H_

#include "data/barton_generator.h"

#include <string>

#include "util/rng.h"
#include "util/zipf.h"

namespace hexastore::data {

namespace {

constexpr const char* kNs = "http://example.org/barton/";

Term NsIri(const std::string& local) { return Term::Iri(kNs + local); }

}  // namespace

BartonGenerator::BartonGenerator(BartonOptions options)
    : options_(options) {}

Term BartonGenerator::PropType() { return NsIri("type"); }
Term BartonGenerator::PropLanguage() { return NsIri("language"); }
Term BartonGenerator::PropOrigin() { return NsIri("origin"); }
Term BartonGenerator::PropRecords() { return NsIri("records"); }
Term BartonGenerator::PropPoint() { return NsIri("point"); }
Term BartonGenerator::PropEncoding() { return NsIri("encoding"); }
Term BartonGenerator::PropTitle() { return NsIri("title"); }
Term BartonGenerator::PropCreator() { return NsIri("creator"); }
Term BartonGenerator::PropSubject() { return NsIri("subject"); }
Term BartonGenerator::PropPublisher() { return NsIri("publisher"); }
Term BartonGenerator::PropDateValue() { return NsIri("dateValue"); }
Term BartonGenerator::PropFormat() { return NsIri("format"); }
Term BartonGenerator::PropDescription() { return NsIri("description"); }
Term BartonGenerator::PropIdentifier() { return NsIri("identifier"); }
Term BartonGenerator::PropRelated() { return NsIri("related"); }

Term BartonGenerator::GenericProperty(std::size_t k) {
  return NsIri("prop" + std::to_string(k));
}

Term BartonGenerator::TypeText() { return NsIri("Text"); }
Term BartonGenerator::TypeNotatedMusic() { return NsIri("NotatedMusic"); }
Term BartonGenerator::TypeSoundRecording() {
  return NsIri("SoundRecording");
}
Term BartonGenerator::TypeMap() { return NsIri("Map"); }
Term BartonGenerator::TypeManuscript() { return NsIri("Manuscript"); }
Term BartonGenerator::TypePeriodical() { return NsIri("Periodical"); }
Term BartonGenerator::TypeDate() { return NsIri("Date"); }
Term BartonGenerator::TypeOrganization() { return NsIri("Organization"); }
Term BartonGenerator::TypePerson() { return NsIri("Person"); }

Term BartonGenerator::LangFrench() { return Term::Literal("French"); }
Term BartonGenerator::LangEnglish() { return Term::Literal("English"); }
Term BartonGenerator::LangGerman() { return Term::Literal("German"); }
Term BartonGenerator::LangSpanish() { return Term::Literal("Spanish"); }

Term BartonGenerator::OriginDlc() { return Term::Literal("DLC"); }
Term BartonGenerator::PointEnd() { return Term::Literal("end"); }
Term BartonGenerator::PointStart() { return Term::Literal("start"); }

Term BartonGenerator::RecordUri(std::size_t i) {
  return NsIri("record" + std::to_string(i));
}

std::vector<Term> BartonGenerator::PreselectedProperties() {
  std::vector<Term> props = {
      PropType(),        PropLanguage(),   PropOrigin(),
      PropRecords(),     PropPoint(),      PropEncoding(),
      PropTitle(),       PropCreator(),    PropSubject(),
      PropPublisher(),   PropDateValue(),  PropFormat(),
      PropDescription(), PropIdentifier(), PropRelated(),
  };
  // Plus the 13 most frequent tail properties (lowest Zipf ranks), making
  // 28 in total, mirroring the 28-of-221 preselection in Abadi et al.
  for (std::size_t k = 0; k < 13; ++k) {
    props.push_back(GenericProperty(k));
  }
  return props;
}

std::vector<Triple> BartonGenerator::Generate(
    std::size_t num_triples) const {
  std::vector<Triple> out;
  out.reserve(num_triples);
  Rng rng(options_.seed);
  ZipfDistribution prop_zipf(options_.num_generic_properties,
                             options_.zipf_exponent);
  ZipfDistribution value_zipf(options_.num_generic_values, 1.05);

  const Term types_catalog[6] = {TypeText(),       TypeNotatedMusic(),
                                 TypeSoundRecording(), TypeMap(),
                                 TypeManuscript(), TypePeriodical()};
  // Cumulative probabilities: Text dominates the catalog.
  const double type_cdf[6] = {0.55, 0.65, 0.75, 0.80, 0.90, 1.0};

  const Term langs[4] = {LangEnglish(), LangFrench(), LangGerman(),
                         LangSpanish()};
  const double lang_cdf[4] = {0.55, 0.75, 0.90, 1.0};

  const Term encodings[3] = {Term::Literal("marc"),
                             Term::Literal("w3cdtf"),
                             Term::Literal("iso8601")};

  std::size_t record_idx = 0;
  std::vector<std::size_t> catalog_indices;  // targets for Records refs
  auto emit = [&out, num_triples](Triple t) {
    if (out.size() < num_triples) {
      out.push_back(std::move(t));
    }
  };

  while (out.size() < num_triples) {
    const Term rec = RecordUri(record_idx);
    const double kind = rng.NextDouble();
    if (kind < 0.60) {
      // Catalog item.
      catalog_indices.push_back(record_idx);
      double t = rng.NextDouble();
      std::size_t ti = 0;
      while (ti < 5 && t >= type_cdf[ti]) {
        ++ti;
      }
      emit({rec, PropType(), types_catalog[ti]});
      if (rng.Bernoulli(0.85)) {
        double l = rng.NextDouble();
        std::size_t li = 0;
        while (li < 3 && l >= lang_cdf[li]) {
          ++li;
        }
        emit({rec, PropLanguage(), langs[li]});
      }
      emit({rec, PropTitle(),
            Term::Literal("title" + std::to_string(rng.Uniform(200000)))});
      if (rng.Bernoulli(0.7)) {
        emit({rec, PropCreator(),
              Term::Literal("creator" + std::to_string(rng.Uniform(30000)))});
      }
      // Subject is multi-valued: 0-3 subjects per record from a small,
      // heavily reused vocabulary (drives BQ3's popular-object counts).
      const std::uint64_t num_subjects = rng.Uniform(4);
      for (std::uint64_t k = 0; k < num_subjects; ++k) {
        emit({rec, PropSubject(),
              Term::Literal("subject" + std::to_string(rng.Uniform(500)))});
      }
      if (rng.Bernoulli(0.5)) {
        emit({rec, PropPublisher(),
              Term::Literal("publisher" +
                            std::to_string(rng.Uniform(2000)))});
      }
      // Zipf tail properties: 0-5 of them, values heavily reused.
      const std::uint64_t num_tail = rng.Uniform(6);
      for (std::uint64_t k = 0; k < num_tail; ++k) {
        const std::size_t prop_rank = prop_zipf.Sample(&rng);
        const std::size_t value_rank = value_zipf.Sample(&rng);
        emit({rec, GenericProperty(prop_rank),
              Term::Literal("val" + std::to_string(value_rank))});
      }
    } else if (kind < 0.75) {
      // Date authority record (BQ7: Point "end" resources are Dates with
      // an Encoding). "end" is deliberately a minority value so that
      // subject-sorted stores cannot answer the Point:"end" selection by
      // walking a result-sized prefix.
      emit({rec, PropType(), TypeDate()});
      const double point = rng.NextDouble();
      if (point < 0.10) {
        emit({rec, PropPoint(), PointEnd()});
      } else if (point < 0.55) {
        emit({rec, PropPoint(), PointStart()});
      } else if (point < 0.80) {
        emit({rec, PropPoint(), Term::Literal("mid")});
      } else {
        emit({rec, PropPoint(), Term::Literal("open")});
      }
      emit({rec, PropEncoding(), encodings[rng.Uniform(3)]});
      emit({rec, PropDateValue(),
            Term::Literal("date" + std::to_string(rng.Uniform(100000)))});
    } else {
      // Provenance record (BQ5: DLC-origin subjects that `Records`
      // catalog entries, whose Type is then the inferred type). DLC
      // dominates (as in the real Library-of-Congress-derived data) but
      // coexists with hundreds of other origins.
      if (rng.Bernoulli(0.6)) {
        emit({rec, PropOrigin(), OriginDlc()});
      } else {
        emit({rec, PropOrigin(),
              Term::Literal("origin" + std::to_string(rng.Uniform(300)))});
      }
      if (!catalog_indices.empty()) {
        const std::size_t targets = 1 + rng.Uniform(2);
        for (std::size_t k = 0; k < targets; ++k) {
          const std::size_t target =
              catalog_indices[rng.Uniform(catalog_indices.size())];
          emit({rec, PropRecords(), RecordUri(target)});
        }
      }
      if (rng.Bernoulli(0.3)) {
        emit({rec, PropType(),
              rng.Bernoulli(0.5) ? TypeOrganization() : TypePerson()});
      }
      if (rng.Bernoulli(0.4)) {
        emit({rec, PropIdentifier(),
              Term::Literal("id" + std::to_string(record_idx))});
      }
    }
    ++record_idx;
  }
  return out;
}

}  // namespace hexastore::data

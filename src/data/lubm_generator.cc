#include "data/lubm_generator.h"

#include <string>

#include "util/rng.h"

namespace hexastore::data {

namespace {

constexpr const char* kUb =
    "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";
constexpr const char* kData = "http://www.university.example.org/";

Term UbIri(const std::string& local) { return Term::Iri(kUb + local); }

std::string DeptPrefix(std::size_t u, std::size_t d) {
  return std::string(kData) + "Department" + std::to_string(d) +
         ".University" + std::to_string(u) + "/";
}

}  // namespace

LubmGenerator::LubmGenerator(LubmOptions options) : options_(options) {}

Term LubmGenerator::PropType() { return UbIri("type"); }
Term LubmGenerator::PropName() { return UbIri("name"); }
Term LubmGenerator::PropEmail() { return UbIri("emailAddress"); }
Term LubmGenerator::PropTelephone() { return UbIri("telephone"); }
Term LubmGenerator::PropResearchInterest() {
  return UbIri("researchInterest");
}
Term LubmGenerator::PropTeacherOf() { return UbIri("teacherOf"); }
Term LubmGenerator::PropWorksFor() { return UbIri("worksFor"); }
Term LubmGenerator::PropHeadOf() { return UbIri("headOf"); }
Term LubmGenerator::PropUndergraduateDegreeFrom() {
  return UbIri("undergraduateDegreeFrom");
}
Term LubmGenerator::PropMastersDegreeFrom() {
  return UbIri("mastersDegreeFrom");
}
Term LubmGenerator::PropDoctoralDegreeFrom() {
  return UbIri("doctoralDegreeFrom");
}
Term LubmGenerator::PropAdvisor() { return UbIri("advisor"); }
Term LubmGenerator::PropTakesCourse() { return UbIri("takesCourse"); }
Term LubmGenerator::PropTeachingAssistantOf() {
  return UbIri("teachingAssistantOf");
}
Term LubmGenerator::PropMemberOf() { return UbIri("memberOf"); }
Term LubmGenerator::PropSubOrganizationOf() {
  return UbIri("subOrganizationOf");
}
Term LubmGenerator::PropPublicationAuthor() {
  return UbIri("publicationAuthor");
}
Term LubmGenerator::PropTitle() { return UbIri("title"); }

std::vector<Term> LubmGenerator::AllPredicates() {
  return {PropType(),
          PropName(),
          PropEmail(),
          PropTelephone(),
          PropResearchInterest(),
          PropTeacherOf(),
          PropWorksFor(),
          PropHeadOf(),
          PropUndergraduateDegreeFrom(),
          PropMastersDegreeFrom(),
          PropDoctoralDegreeFrom(),
          PropAdvisor(),
          PropTakesCourse(),
          PropTeachingAssistantOf(),
          PropMemberOf(),
          PropSubOrganizationOf(),
          PropPublicationAuthor(),
          PropTitle()};
}

Term LubmGenerator::ClassUniversity() { return UbIri("University"); }
Term LubmGenerator::ClassDepartment() { return UbIri("Department"); }
Term LubmGenerator::ClassFullProfessor() { return UbIri("FullProfessor"); }
Term LubmGenerator::ClassAssociateProfessor() {
  return UbIri("AssociateProfessor");
}
Term LubmGenerator::ClassAssistantProfessor() {
  return UbIri("AssistantProfessor");
}
Term LubmGenerator::ClassLecturer() { return UbIri("Lecturer"); }
Term LubmGenerator::ClassGraduateStudent() {
  return UbIri("GraduateStudent");
}
Term LubmGenerator::ClassUndergraduateStudent() {
  return UbIri("UndergraduateStudent");
}
Term LubmGenerator::ClassCourse() { return UbIri("Course"); }
Term LubmGenerator::ClassGraduateCourse() { return UbIri("GraduateCourse"); }
Term LubmGenerator::ClassPublication() { return UbIri("Publication"); }

Term LubmGenerator::UniversityUri(std::size_t u) {
  return Term::Iri(std::string(kData) + "University" + std::to_string(u));
}
Term LubmGenerator::DepartmentUri(std::size_t u, std::size_t d) {
  return Term::Iri(DeptPrefix(u, d));
}
Term LubmGenerator::FullProfessorUri(std::size_t u, std::size_t d,
                                     std::size_t i) {
  return Term::Iri(DeptPrefix(u, d) + "FullProfessor" + std::to_string(i));
}
Term LubmGenerator::AssociateProfessorUri(std::size_t u, std::size_t d,
                                          std::size_t i) {
  return Term::Iri(DeptPrefix(u, d) + "AssociateProfessor" +
                   std::to_string(i));
}
Term LubmGenerator::AssistantProfessorUri(std::size_t u, std::size_t d,
                                          std::size_t i) {
  return Term::Iri(DeptPrefix(u, d) + "AssistantProfessor" +
                   std::to_string(i));
}
Term LubmGenerator::LecturerUri(std::size_t u, std::size_t d,
                                std::size_t i) {
  return Term::Iri(DeptPrefix(u, d) + "Lecturer" + std::to_string(i));
}
Term LubmGenerator::GraduateStudentUri(std::size_t u, std::size_t d,
                                       std::size_t i) {
  return Term::Iri(DeptPrefix(u, d) + "GraduateStudent" +
                   std::to_string(i));
}
Term LubmGenerator::UndergraduateStudentUri(std::size_t u, std::size_t d,
                                            std::size_t i) {
  return Term::Iri(DeptPrefix(u, d) + "UndergraduateStudent" +
                   std::to_string(i));
}
Term LubmGenerator::CourseUri(std::size_t u, std::size_t d,
                              std::size_t i) {
  return Term::Iri(DeptPrefix(u, d) + "Course" + std::to_string(i));
}
Term LubmGenerator::GraduateCourseUri(std::size_t u, std::size_t d,
                                      std::size_t i) {
  return Term::Iri(DeptPrefix(u, d) + "GraduateCourse" +
                   std::to_string(i));
}
Term LubmGenerator::PublicationUri(std::size_t u, std::size_t d,
                                   std::size_t i) {
  return Term::Iri(DeptPrefix(u, d) + "Publication" + std::to_string(i));
}

std::vector<Triple> LubmGenerator::Generate(
    std::size_t num_triples) const {
  std::vector<Triple> out;
  out.reserve(num_triples);
  Rng rng(options_.seed);

  auto emit = [&out, num_triples](Triple t) {
    if (out.size() < num_triples) {
      out.push_back(std::move(t));
    }
  };
  auto full = [&out, num_triples]() { return out.size() >= num_triples; };

  const std::size_t num_univ = options_.num_universities;

  for (std::size_t u = 0; u < num_univ && !full(); ++u) {
    const Term univ = UniversityUri(u);
    emit({univ, PropType(), ClassUniversity()});
    emit({univ, PropName(),
          Term::Literal("University" + std::to_string(u))});

    const std::size_t num_depts = 15 + rng.Uniform(11);  // 15-25
    for (std::size_t d = 0; d < num_depts && !full(); ++d) {
      const Term dept = DepartmentUri(u, d);
      emit({dept, PropType(), ClassDepartment()});
      emit({dept, PropSubOrganizationOf(), univ});
      emit({dept, PropName(),
            Term::Literal("Department" + std::to_string(d))});

      struct Faculty {
        Term uri;
        Term rank;
      };
      std::vector<Faculty> faculty;
      const std::size_t num_full = 7 + rng.Uniform(4);    // 7-10
      const std::size_t num_assoc = 10 + rng.Uniform(5);  // 10-14
      const std::size_t num_assist = 8 + rng.Uniform(4);  // 8-11
      const std::size_t num_lect = 5 + rng.Uniform(3);    // 5-7
      for (std::size_t i = 0; i < num_full; ++i) {
        faculty.push_back({FullProfessorUri(u, d, i),
                           ClassFullProfessor()});
      }
      for (std::size_t i = 0; i < num_assoc; ++i) {
        faculty.push_back({AssociateProfessorUri(u, d, i),
                           ClassAssociateProfessor()});
      }
      for (std::size_t i = 0; i < num_assist; ++i) {
        faculty.push_back({AssistantProfessorUri(u, d, i),
                           ClassAssistantProfessor()});
      }
      for (std::size_t i = 0; i < num_lect; ++i) {
        faculty.push_back({LecturerUri(u, d, i), ClassLecturer()});
      }

      // Courses: every faculty member teaches 1-2 undergraduate courses
      // and possibly one graduate course; course indices are global per
      // department.
      std::size_t next_course = 0;
      std::size_t next_grad_course = 0;
      std::vector<Term> courses;
      std::vector<Term> grad_courses;

      for (std::size_t f = 0; f < faculty.size() && !full(); ++f) {
        const Term& person = faculty[f].uri;
        emit({person, PropType(), faculty[f].rank});
        emit({person, PropWorksFor(), dept});
        emit({person, PropName(),
              Term::Literal("Faculty" + std::to_string(f))});
        emit({person, PropEmail(),
              Term::Literal("faculty" + std::to_string(f) + "@u" +
                            std::to_string(u) + ".edu")});
        emit({person, PropTelephone(),
              Term::Literal("555-" + std::to_string(rng.Uniform(10000)))});
        emit({person, PropResearchInterest(),
              Term::Literal("Research" + std::to_string(rng.Uniform(30)))});
        // Degrees from random universities (subject-object links across
        // universities drive LQ5).
        emit({person, PropUndergraduateDegreeFrom(),
              UniversityUri(rng.Uniform(num_univ))});
        emit({person, PropMastersDegreeFrom(),
              UniversityUri(rng.Uniform(num_univ))});
        emit({person, PropDoctoralDegreeFrom(),
              UniversityUri(rng.Uniform(num_univ))});

        const std::size_t num_courses = 1 + rng.Uniform(2);
        for (std::size_t c = 0; c < num_courses; ++c) {
          const Term course = CourseUri(u, d, next_course++);
          courses.push_back(course);
          emit({course, PropType(), ClassCourse()});
          emit({course, PropName(),
                Term::Literal("Course" + std::to_string(next_course - 1))});
          emit({person, PropTeacherOf(), course});
        }
        if (rng.Bernoulli(0.6)) {
          const Term gcourse = GraduateCourseUri(u, d, next_grad_course++);
          grad_courses.push_back(gcourse);
          emit({gcourse, PropType(), ClassGraduateCourse()});
          emit({gcourse, PropName(),
                Term::Literal("GraduateCourse" +
                              std::to_string(next_grad_course - 1))});
          emit({person, PropTeacherOf(), gcourse});
        }
      }
      // Head of department: FullProfessor0.
      if (!faculty.empty()) {
        emit({faculty[0].uri, PropHeadOf(), dept});
      }

      // Graduate students: ~3 per faculty member.
      const std::size_t num_grad = faculty.size() * 3 + rng.Uniform(10);
      for (std::size_t g = 0; g < num_grad && !full(); ++g) {
        const Term student = GraduateStudentUri(u, d, g);
        emit({student, PropType(), ClassGraduateStudent()});
        emit({student, PropMemberOf(), dept});
        emit({student, PropName(),
              Term::Literal("GradStudent" + std::to_string(g))});
        emit({student, PropEmail(),
              Term::Literal("grad" + std::to_string(g) + "@u" +
                            std::to_string(u) + ".edu")});
        emit({student, PropUndergraduateDegreeFrom(),
              UniversityUri(rng.Uniform(num_univ))});
        emit({student, PropAdvisor(),
              faculty[rng.Uniform(faculty.size())].uri});
        const std::size_t takes = 1 + rng.Uniform(3);
        for (std::size_t c = 0; c < takes && !grad_courses.empty(); ++c) {
          emit({student, PropTakesCourse(),
                grad_courses[rng.Uniform(grad_courses.size())]});
        }
        if (rng.Bernoulli(0.2) && !courses.empty()) {
          emit({student, PropTeachingAssistantOf(),
                courses[rng.Uniform(courses.size())]});
        }
      }

      // Undergraduate students: ~8 per faculty member.
      const std::size_t num_ugrad = faculty.size() * 8 + rng.Uniform(20);
      for (std::size_t s = 0; s < num_ugrad && !full(); ++s) {
        const Term student = UndergraduateStudentUri(u, d, s);
        emit({student, PropType(), ClassUndergraduateStudent()});
        emit({student, PropMemberOf(), dept});
        emit({student, PropName(),
              Term::Literal("UndergradStudent" + std::to_string(s))});
        const std::size_t takes = 2 + rng.Uniform(3);
        for (std::size_t c = 0; c < takes && !courses.empty(); ++c) {
          emit({student, PropTakesCourse(),
                courses[rng.Uniform(courses.size())]});
        }
        if (rng.Bernoulli(0.15)) {
          emit({student, PropAdvisor(),
                faculty[rng.Uniform(faculty.size())].uri});
        }
      }

      // Publications: 0-5 per faculty member, authored by the faculty
      // member and possibly a graduate student.
      std::size_t next_pub = 0;
      for (std::size_t f = 0; f < faculty.size() && !full(); ++f) {
        const std::size_t num_pubs = rng.Uniform(6);
        for (std::size_t k = 0; k < num_pubs; ++k) {
          const Term pub = PublicationUri(u, d, next_pub++);
          emit({pub, PropType(), ClassPublication()});
          emit({pub, PropTitle(),
                Term::Literal("Publication" +
                              std::to_string(next_pub - 1))});
          emit({pub, PropPublicationAuthor(), faculty[f].uri});
          if (rng.Bernoulli(0.5) && num_grad > 0) {
            emit({pub, PropPublicationAuthor(),
                  GraduateStudentUri(u, d, rng.Uniform(num_grad))});
          }
        }
      }
    }
  }
  // If the requested size exceeds what num_universities yields, retry with
  // twice as many universities. Note: prefix stability is guaranteed only
  // among sizes served by the same university count (per-person RNG draws
  // depend on num_universities via the degree-target sampling).
  if (!full()) {
    LubmOptions bigger = options_;
    bigger.num_universities *= 2;
    return LubmGenerator(bigger).Generate(num_triples);
  }
  return out;
}

}  // namespace hexastore::data

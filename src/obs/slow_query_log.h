// Bounded lock-free ring of slow-query profiles.
//
// Same seqlock discipline as TraceRing (writers claim a slot with one
// fetch_add, fill it with relaxed atomic stores bracketed by the
// sequence word; readers discard slots caught mid-overwrite), but each
// slot additionally carries a fixed-size query-text buffer copied
// byte-by-byte through atomics so the ring stays TSan-clean. Slow
// queries are rare by definition, so the per-byte atomic copy is not a
// hot path. The query layer (query/profile.h) records completed
// QueryProfiles here when they cross the HEXA_SLOW_QUERY_US threshold;
// the obs layer itself knows only this flat summary record.
#ifndef HEXASTORE_OBS_SLOW_QUERY_LOG_H_
#define HEXASTORE_OBS_SLOW_QUERY_LOG_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace hexastore {
namespace obs {

/// Truncation bound for the captured query text (bytes, excluding any
/// terminator; the full text is never needed to identify a query).
inline constexpr std::size_t kSlowQueryTextBytes = 240;

/// Query classes, mirrored by query/profile.h's QueryKind (the query
/// layer casts its enum to these values; keep the two in sync).
inline constexpr std::uint8_t kSlowQueryKindBgp = 0;
inline constexpr std::uint8_t kSlowQueryKindPath = 1;
inline constexpr std::uint8_t kSlowQueryKindSparql = 2;

/// Stable lowercase identifier ("bgp", "path", "sparql") used in the
/// JSON export and the CLI dump.
const char* SlowQueryKindName(std::uint8_t kind);

/// One slow-query summary: the phase breakdown and plan-quality numbers
/// of a single profiled query. Used both as the Record() input (ticket
/// and ts_ns are assigned by the ring) and the Snapshot() output.
struct SlowQueryRecord {
  std::uint64_t ticket = 0;        ///< global sequence number (0-based)
  std::uint64_t ts_ns = 0;         ///< obs::NowNanos() at record time
  std::uint8_t kind = kSlowQueryKindSparql;
  std::uint64_t total_ns = 0;      ///< end-to-end wall time
  std::uint64_t parse_ns = 0;
  std::uint64_t plan_ns = 0;
  std::uint64_t eval_ns = 0;
  std::uint64_t pin_ns = 0;        ///< generation-pin duration (0 = unpinned)
  std::uint64_t rows_out = 0;
  std::uint64_t rows_scanned = 0;  ///< triples produced by all index scans
  std::uint64_t estimate_probes = 0;  ///< planner cardinality probes
  std::uint32_t patterns = 0;         ///< BGP patterns in the plan
  std::uint64_t q_error_x1000 = 0;    ///< worst per-pattern q-error, x1000
  std::string text;                   ///< query text (truncated)
};

/// Bounded ring of SlowQueryRecords. Recording is lock-free and
/// allocation-free; snapshots are best-effort under concurrent writers
/// (every returned record is internally consistent).
class SlowQueryLog {
 public:
  /// Capacity is rounded up to a power of two (minimum 8).
  explicit SlowQueryLog(std::size_t capacity = 64);
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Records one slow query. `record.ticket` and `record.ts_ns` are
  /// ignored (assigned here); `record.text` is truncated to
  /// kSlowQueryTextBytes. A no-op while metrics are disabled
  /// (HEXA_METRICS=0).
  void Record(const SlowQueryRecord& record);

  /// Decodes the retained records, oldest first.
  std::vector<SlowQueryRecord> Snapshot() const;

  /// Slow queries ever recorded (including those overwritten since).
  std::uint64_t TotalRecorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  struct Slot {
    // 0 = never written; odd = write in progress; 2*ticket+2 = complete.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> ticket{0};
    std::atomic<std::uint64_t> ts_ns{0};
    std::atomic<std::uint64_t> total_ns{0};
    std::atomic<std::uint64_t> parse_ns{0};
    std::atomic<std::uint64_t> plan_ns{0};
    std::atomic<std::uint64_t> eval_ns{0};
    std::atomic<std::uint64_t> pin_ns{0};
    std::atomic<std::uint64_t> rows_out{0};
    std::atomic<std::uint64_t> rows_scanned{0};
    std::atomic<std::uint64_t> estimate_probes{0};
    std::atomic<std::uint64_t> q_error_x1000{0};
    std::atomic<std::uint32_t> patterns{0};
    std::atomic<std::uint32_t> text_len{0};
    std::atomic<std::uint8_t> kind{0};
    std::atomic<char> text[kSlowQueryTextBytes] = {};
  };

  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};
  std::size_t mask_ = 0;
};

/// The slow-query threshold in nanoseconds: HEXA_SLOW_QUERY_US
/// (microseconds; 0 = log every profiled query), default 10ms when
/// unset or unparsable. Read fresh on every call so tests and tools can
/// retarget within one process.
std::uint64_t SlowQueryThresholdNanos();

}  // namespace obs
}  // namespace hexastore

#endif  // HEXASTORE_OBS_SLOW_QUERY_LOG_H_

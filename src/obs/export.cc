// Renderers for MetricsRegistry: Prometheus text exposition, the JSON
// dump schema validated by scripts/check_metrics_json.py, and the
// atomic file writer behind HEXA_METRICS_JSON.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/trace_ring.h"

namespace hexastore {
namespace obs {
namespace {

// Upper bound (inclusive) of histogram bucket b, mirroring histogram.cc.
std::uint64_t BucketUpper(int b) {
  if (b == 0) return 0;
  return (std::uint64_t{1} << b) - 1;
}

void AppendJsonString(std::string* out, const char* s) {
  out->push_back('"');
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out->append(buf);
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const Entry<Counter>& e : counters_) {
    out += "# HELP " + e.name + " " + e.help + "\n";
    out += "# TYPE " + e.name + " counter\n";
    out += e.name + " " + std::to_string(e.instrument->Value()) + "\n";
  }
  for (const Entry<Gauge>& e : gauges_) {
    out += "# HELP " + e.name + " " + e.help + "\n";
    out += "# TYPE " + e.name + " gauge\n";
    out += e.name + " " + std::to_string(e.instrument->Value()) + "\n";
  }
  for (const Entry<LatencyHistogram>& e : histograms_) {
    const HistogramSnapshot snap = e.instrument->Snapshot();
    out += "# HELP " + e.name + " " + e.help + "\n";
    out += "# TYPE " + e.name + " histogram\n";
    std::uint64_t cumulative = 0;
    int top = -1;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      if (snap.buckets[b] != 0) top = b;
    }
    for (int b = 0; b <= top && b < kHistogramBuckets - 1; ++b) {
      cumulative += snap.buckets[b];
      out += e.name + "_bucket{le=\"" + std::to_string(BucketUpper(b)) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += e.name + "_bucket{le=\"+Inf\"} " + std::to_string(snap.count) +
           "\n";
    out += e.name + "_sum " + std::to_string(snap.sum) + "\n";
    out += e.name + "_count " + std::to_string(snap.count) + "\n";
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"version\": 2,\n  \"counters\": {";
  bool first = true;
  for (const Entry<Counter>& e : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, e.name.c_str());
    out += ": " + std::to_string(e.instrument->Value());
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const Entry<Gauge>& e : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, e.name.c_str());
    out += ": " + std::to_string(e.instrument->Value());
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const Entry<LatencyHistogram>& e : histograms_) {
    const HistogramSnapshot snap = e.instrument->Snapshot();
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, e.name.c_str());
    out += ": {\"count\": " + std::to_string(snap.count);
    out += ", \"sum_ns\": " + std::to_string(snap.sum);
    out += ", \"max_ns\": " + std::to_string(snap.max);
    out += ", \"sample_shift\": " + std::to_string(snap.sample_shift);
    out += ", \"p50_ns\": ";
    AppendDouble(&out, snap.P50());
    out += ", \"p90_ns\": ";
    AppendDouble(&out, snap.P90());
    out += ", \"p99_ns\": ";
    AppendDouble(&out, snap.P99());
    out += ", \"p999_ns\": ";
    AppendDouble(&out, snap.P999());
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      if (snap.buckets[b] == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "{\"le_ns\": " + std::to_string(BucketUpper(b)) +
             ", \"count\": " + std::to_string(snap.buckets[b]) + "}";
    }
    out += "]}";
  }
  out += "\n  },\n  \"trace\": ";
  if (trace_ == nullptr) {
    out += "null";
  } else {
    out += "{\"capacity\": " + std::to_string(trace_->capacity());
    const std::vector<TraceRecord> events = trace_->Snapshot();
    const std::uint64_t total = trace_->TotalRecorded();
    out += ", \"recorded\": " + std::to_string(total);
    out += ", \"retained\": " + std::to_string(events.size());
    out += ", \"events\": [";
    first = true;
    for (const TraceRecord& rec : events) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      out += "{\"ticket\": " + std::to_string(rec.ticket);
      out += ", \"ts_ns\": " + std::to_string(rec.timestamp_ns);
      out += ", \"event\": ";
      AppendJsonString(&out, TraceEventName(rec.event));
      out += ", \"reason\": ";
      AppendJsonString(&out, rec.reason);
      out += ", \"duration_ns\": " + std::to_string(rec.duration_ns);
      out += ", \"value\": " + std::to_string(rec.value) + "}";
    }
    out += "]}";
  }
  out += ",\n  \"slow_queries\": ";
  if (slow_queries_ == nullptr) {
    out += "null";
  } else {
    out += "{\"capacity\": " + std::to_string(slow_queries_->capacity());
    const std::vector<SlowQueryRecord> entries = slow_queries_->Snapshot();
    out += ", \"recorded\": " +
           std::to_string(slow_queries_->TotalRecorded());
    out += ", \"retained\": " + std::to_string(entries.size());
    out += ", \"entries\": [";
    first = true;
    for (const SlowQueryRecord& rec : entries) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      out += "{\"ticket\": " + std::to_string(rec.ticket);
      out += ", \"ts_ns\": " + std::to_string(rec.ts_ns);
      out += ", \"kind\": ";
      AppendJsonString(&out, SlowQueryKindName(rec.kind));
      out += ", \"total_ns\": " + std::to_string(rec.total_ns);
      out += ", \"parse_ns\": " + std::to_string(rec.parse_ns);
      out += ", \"plan_ns\": " + std::to_string(rec.plan_ns);
      out += ", \"eval_ns\": " + std::to_string(rec.eval_ns);
      out += ", \"pin_ns\": " + std::to_string(rec.pin_ns);
      out += ", \"rows_out\": " + std::to_string(rec.rows_out);
      out += ", \"rows_scanned\": " + std::to_string(rec.rows_scanned);
      out += ", \"estimate_probes\": " +
             std::to_string(rec.estimate_probes);
      out += ", \"patterns\": " + std::to_string(rec.patterns);
      out += ", \"max_q_error\": ";
      AppendDouble(&out, static_cast<double>(rec.q_error_x1000) / 1000.0);
      out += ", \"text\": ";
      AppendJsonString(&out, rec.text.c_str());
      out += "}";
    }
    out += "]}";
  }
  out += "\n}\n";
  return out;
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  const std::string payload = RenderJson();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file.is_open()) return false;
    file << payload;
    if (!file.good()) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

void MetricsRegistry::DumpToEnvPathIfSet() const {
  // Read fresh (not cached) so tests can point successive stores at
  // different files within one process.
  const char* path = std::getenv("HEXA_METRICS_JSON");
  if (path == nullptr || path[0] == '\0') return;
  WriteJsonFile(path);
}

}  // namespace obs
}  // namespace hexastore

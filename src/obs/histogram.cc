#include "obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace hexastore {
namespace obs {
namespace {

// Inclusive value range covered by bucket b (see header comment).
std::uint64_t BucketLower(int b) {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

std::uint64_t BucketUpper(int b) {
  if (b == 0) return 0;
  if (b >= kHistogramBuckets - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

}  // namespace

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the order statistic we want, in [1, count].
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (cumulative + buckets[b] >= rank) {
      // Interpolate linearly inside the hit bucket: the rank-th value is
      // somewhere in [lower, upper]; spread the bucket's population
      // uniformly across that range.
      const double lower = static_cast<double>(BucketLower(b));
      double upper = static_cast<double>(BucketUpper(b));
      upper = std::min(upper, static_cast<double>(max));
      if (upper < lower) upper = lower;
      const double within =
          static_cast<double>(rank - cumulative) /
          static_cast<double>(buckets[b]);
      return lower + (upper - lower) * within;
    }
    cumulative += buckets[b];
  }
  return static_cast<double>(max);
}

double HistogramSnapshot::Mean() const {
  if (count == 0) return 0.0;
  return static_cast<double>(sum) / static_cast<double>(count);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (int b = 0; b < kHistogramBuckets; ++b) buckets[b] += other.buckets[b];
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  sample_shift = std::max(sample_shift, other.sample_shift);
}

LatencyHistogram::LatencyHistogram(unsigned sample_shift)
    : sample_mask_(sample_shift == 0
                       ? 0
                       : (std::uint64_t{1} << sample_shift) - 1),
      sample_shift_(sample_shift) {}

void LatencyHistogram::Record(std::uint64_t nanos) {
  const int b = std::min(static_cast<int>(std::bit_width(nanos)),
                         kHistogramBuckets - 1);
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(nanos, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (nanos > seen &&
         !max_.compare_exchange_weak(seen, nanos, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::Reset() {
  for (int b = 0; b < kHistogramBuckets; ++b) {
    buckets_[b].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  ticks_.store(0, std::memory_order_relaxed);
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  snap.sample_shift = sample_shift_;
  return snap;
}

}  // namespace obs
}  // namespace hexastore

#include "obs/slow_query_log.h"

#include <bit>
#include <cstdlib>

#include "obs/metrics.h"

namespace hexastore {
namespace obs {

const char* SlowQueryKindName(std::uint8_t kind) {
  switch (kind) {
    case kSlowQueryKindBgp:
      return "bgp";
    case kSlowQueryKindPath:
      return "path";
    case kSlowQueryKindSparql:
      return "sparql";
    default:
      return "unknown";
  }
}

SlowQueryLog::SlowQueryLog(std::size_t capacity) {
  if (capacity < 8) capacity = 8;
  capacity = std::bit_ceil(capacity);
  slots_ = std::make_unique<Slot[]>(capacity);
  mask_ = capacity - 1;
}

void SlowQueryLog::Record(const SlowQueryRecord& record) {
  if (!MetricsEnabled()) return;
  const std::uint64_t t = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[t & mask_];
  // Seqlock write protocol, as in TraceRing: odd marks the slot torn,
  // the final release store publishes the complete record.
  slot.seq.store(2 * t + 1, std::memory_order_release);
  slot.ticket.store(t, std::memory_order_relaxed);
  slot.ts_ns.store(NowNanos(), std::memory_order_relaxed);
  slot.total_ns.store(record.total_ns, std::memory_order_relaxed);
  slot.parse_ns.store(record.parse_ns, std::memory_order_relaxed);
  slot.plan_ns.store(record.plan_ns, std::memory_order_relaxed);
  slot.eval_ns.store(record.eval_ns, std::memory_order_relaxed);
  slot.pin_ns.store(record.pin_ns, std::memory_order_relaxed);
  slot.rows_out.store(record.rows_out, std::memory_order_relaxed);
  slot.rows_scanned.store(record.rows_scanned, std::memory_order_relaxed);
  slot.estimate_probes.store(record.estimate_probes,
                             std::memory_order_relaxed);
  slot.q_error_x1000.store(record.q_error_x1000, std::memory_order_relaxed);
  slot.patterns.store(record.patterns, std::memory_order_relaxed);
  slot.kind.store(record.kind, std::memory_order_relaxed);
  const std::size_t len =
      record.text.size() < kSlowQueryTextBytes ? record.text.size()
                                               : kSlowQueryTextBytes;
  for (std::size_t i = 0; i < len; ++i) {
    slot.text[i].store(record.text[i], std::memory_order_relaxed);
  }
  slot.text_len.store(static_cast<std::uint32_t>(len),
                      std::memory_order_relaxed);
  slot.seq.store(2 * t + 2, std::memory_order_release);
}

std::vector<SlowQueryRecord> SlowQueryLog::Snapshot() const {
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t cap = mask_ + 1;
  const std::uint64_t begin = end > cap ? end - cap : 0;
  std::vector<SlowQueryRecord> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t t = begin; t < end; ++t) {
    const Slot& slot = slots_[t & mask_];
    if (slot.seq.load(std::memory_order_acquire) != 2 * t + 2) continue;
    SlowQueryRecord rec;
    rec.ticket = t;
    rec.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    rec.total_ns = slot.total_ns.load(std::memory_order_relaxed);
    rec.parse_ns = slot.parse_ns.load(std::memory_order_relaxed);
    rec.plan_ns = slot.plan_ns.load(std::memory_order_relaxed);
    rec.eval_ns = slot.eval_ns.load(std::memory_order_relaxed);
    rec.pin_ns = slot.pin_ns.load(std::memory_order_relaxed);
    rec.rows_out = slot.rows_out.load(std::memory_order_relaxed);
    rec.rows_scanned = slot.rows_scanned.load(std::memory_order_relaxed);
    rec.estimate_probes =
        slot.estimate_probes.load(std::memory_order_relaxed);
    rec.q_error_x1000 = slot.q_error_x1000.load(std::memory_order_relaxed);
    rec.patterns = slot.patterns.load(std::memory_order_relaxed);
    rec.kind = slot.kind.load(std::memory_order_relaxed);
    std::uint32_t len = slot.text_len.load(std::memory_order_relaxed);
    if (len > kSlowQueryTextBytes) len = kSlowQueryTextBytes;
    rec.text.resize(len);
    for (std::uint32_t i = 0; i < len; ++i) {
      rec.text[i] = slot.text[i].load(std::memory_order_relaxed);
    }
    // Revalidate after reading the payload: a writer that lapped us
    // mid-read leaves a different ticket behind (same best-effort
    // contract as TraceRing::Snapshot).
    if (slot.seq.load(std::memory_order_acquire) != 2 * t + 2) continue;
    if (slot.ticket.load(std::memory_order_relaxed) != t) continue;
    out.push_back(std::move(rec));
  }
  return out;
}

std::uint64_t SlowQueryThresholdNanos() {
  // Read fresh (not cached): tests and successive tools in one process
  // retarget the threshold between queries.
  const char* env = std::getenv("HEXA_SLOW_QUERY_US");
  if (env == nullptr || env[0] == '\0') {
    return 10'000'000;  // 10ms default
  }
  char* end = nullptr;
  const unsigned long long us = std::strtoull(env, &end, 10);
  if (end == env || (end != nullptr && *end != '\0')) {
    return 10'000'000;
  }
  return static_cast<std::uint64_t>(us) * 1000;
}

}  // namespace obs
}  // namespace hexastore

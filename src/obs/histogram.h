// Fixed-bucket log-scale latency histogram.
//
// 64 power-of-two buckets indexed by bit width: bucket 0 holds the
// value 0, bucket b (1 <= b <= 62) holds [2^(b-1), 2^b - 1] nanoseconds,
// and bucket 63 absorbs everything from 2^62 up. Recording is three
// relaxed atomic adds plus a CAS loop for the max — no locks, safe from
// any thread. Snapshots are mergeable and answer percentile queries by
// linear interpolation inside the hit bucket, so a reported p99 is
// within one bucket (a factor of 2) of the exact order statistic; the
// oracle test in tests/obs_test.cc pins that bound.
//
// Hot-path cost control: a histogram constructed with sample_shift = k
// times only every 2^k-th operation (Tick() gates the clock reads).
// Counts/sums then describe the sampled population — percentiles remain
// unbiased estimates, count is ~ops/2^k.
#ifndef HEXASTORE_OBS_HISTOGRAM_H_
#define HEXASTORE_OBS_HISTOGRAM_H_

#include <atomic>
#include <cstdint>

namespace hexastore {
namespace obs {

/// Bucket count shared by LatencyHistogram and HistogramSnapshot.
inline constexpr int kHistogramBuckets = 64;

/// Default sample_shift for histograms on per-operation hot paths
/// (insert/erase/contains/handle-acquire/append): 1-in-128 keeps the
/// amortized clock-read cost well under a nanosecond per op while a
/// million-op run still lands ~8k samples per histogram.
inline constexpr unsigned kHotPathSampleShift = 7;

/// Plain-value copy of a histogram (or a merge of several), with
/// percentile queries. Cheap to copy and compare; no atomics.
struct HistogramSnapshot {
  std::uint64_t buckets[kHistogramBuckets] = {};
  std::uint64_t count = 0;  ///< recorded (sampled) measurements
  std::uint64_t sum = 0;    ///< nanoseconds summed over measurements
  std::uint64_t max = 0;    ///< largest recorded value
  unsigned sample_shift = 0;  ///< 2^shift ops per recorded measurement

  /// q-th quantile (0 < q <= 1) in nanoseconds, interpolated within the
  /// hit bucket and clamped to [0, max]. Returns 0 on an empty
  /// histogram.
  double Percentile(double q) const;

  double P50() const { return Percentile(0.50); }
  double P90() const { return Percentile(0.90); }
  double P99() const { return Percentile(0.99); }
  double P999() const { return Percentile(0.999); }

  /// Mean of the recorded measurements (0 when empty).
  double Mean() const;

  /// Element-wise accumulation: counts and sums add, max takes the
  /// larger side. Merging histograms with different sample_shift keeps
  /// the larger shift (the coarser sampling) as a conservative label.
  void Merge(const HistogramSnapshot& other);
};

/// Lock-free log-scale histogram of nanosecond durations.
class LatencyHistogram {
 public:
  /// sample_shift = k records every 2^k-th Tick()ed operation; 0 records
  /// all of them.
  explicit LatencyHistogram(unsigned sample_shift = 0);
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Sampling gate for timer call sites: returns true when this
  /// operation should be measured. Always true at sample_shift 0.
  ///
  /// The tick counter is advanced with a racy load+store instead of an
  /// atomic RMW: concurrent callers may lose increments, which only
  /// perturbs the sampling phase, never correctness — and it keeps the
  /// per-op cost at a plain increment instead of a locked add on the
  /// hottest paths. Both halves are atomic ops, so TSan stays quiet.
  bool Tick() {
    if (sample_mask_ == 0) return true;
    const std::uint64_t t = ticks_.load(std::memory_order_relaxed);
    ticks_.store(t + 1, std::memory_order_relaxed);
    return (t & sample_mask_) == 0;
  }

  /// Records one measured duration.
  void Record(std::uint64_t nanos);

  /// Tear-free per-field copy of the current contents (relaxed reads;
  /// not a consistent cut against concurrent Record calls, which is fine
  /// for a monotonically growing histogram).
  HistogramSnapshot Snapshot() const;

  /// Zeroes every bucket/counter. NOT safe against concurrent Record
  /// calls — for single-threaded reuse (benchmark iterations, tests).
  void Reset();

  unsigned sample_shift() const { return sample_shift_; }

 private:
  std::atomic<std::uint64_t> buckets_[kHistogramBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> ticks_{0};
  const std::uint64_t sample_mask_;
  const unsigned sample_shift_;
};

}  // namespace obs
}  // namespace hexastore

#endif  // HEXASTORE_OBS_HISTOGRAM_H_

// RAII latency timer: measures the enclosing scope into a
// LatencyHistogram. Construction checks the global HEXA_METRICS toggle
// and the histogram's sampling gate before touching the clock, so a
// disabled or sampled-out timer costs one relaxed atomic load (plus one
// racy tick bump for sampled histograms) and no clock reads.
//
//   void DeltaHexastore::Insert(...) {
//     obs::ScopedTimer timer(&meters_.insert_ns);
//     ...
//   }
#ifndef HEXASTORE_OBS_SCOPED_TIMER_H_
#define HEXASTORE_OBS_SCOPED_TIMER_H_

#include <cstdint>

#include "obs/histogram.h"
#include "obs/metrics.h"

namespace hexastore {
namespace obs {

class ScopedTimer {
 public:
  /// Null histogram is allowed and makes the timer a no-op.
  explicit ScopedTimer(LatencyHistogram* hist) {
    if (hist != nullptr && MetricsEnabled() && hist->Tick()) {
      hist_ = hist;
      start_ns_ = NowNanos();
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (hist_ != nullptr) hist_->Record(NowNanos() - start_ns_);
  }

 private:
  LatencyHistogram* hist_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace obs
}  // namespace hexastore

#endif  // HEXASTORE_OBS_SCOPED_TIMER_H_

#include "obs/trace_ring.h"

#include <bit>

#include "obs/metrics.h"

namespace hexastore {
namespace obs {

const char* TraceEventName(TraceEvent event) {
  switch (event) {
    case TraceEvent::kSeal:
      return "seal";
    case TraceEvent::kFold:
      return "fold";
    case TraceEvent::kBaseMerge:
      return "base_merge";
    case TraceEvent::kBudgetTrigger:
      return "budget_trigger";
    case TraceEvent::kFilterDrop:
      return "filter_drop";
    case TraceEvent::kPublish:
      return "publish";
    case TraceEvent::kReclaim:
      return "reclaim";
    case TraceEvent::kCheckpoint:
      return "checkpoint";
    case TraceEvent::kRecovery:
      return "recovery";
    case TraceEvent::kWalRotate:
      return "wal_rotate";
    case TraceEvent::kClear:
      return "clear";
    case TraceEvent::kBulkLoad:
      return "bulk_load";
  }
  return "unknown";
}

TraceRing::TraceRing(std::size_t capacity) {
  if (capacity < 8) capacity = 8;
  capacity = std::bit_ceil(capacity);
  slots_ = std::make_unique<Slot[]>(capacity);
  mask_ = capacity - 1;
}

void TraceRing::Record(TraceEvent event, const char* reason,
                       std::uint64_t duration_ns, std::uint64_t value) {
  if (!MetricsEnabled()) return;
  const std::uint64_t t = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[t & mask_];
  // Seqlock write protocol: odd marks the slot torn, the final release
  // store publishes the complete record. A reader that observes
  // seq == 2t+2 and ticket == t gets a record written entirely by this
  // call (a conflicting writer must be a full lap ahead or behind).
  slot.seq.store(2 * t + 1, std::memory_order_release);
  slot.ticket.store(t, std::memory_order_relaxed);
  slot.timestamp_ns.store(NowNanos(), std::memory_order_relaxed);
  slot.duration_ns.store(duration_ns, std::memory_order_relaxed);
  slot.value.store(value, std::memory_order_relaxed);
  slot.reason.store(reason == nullptr ? "" : reason,
                    std::memory_order_relaxed);
  slot.event.store(static_cast<std::uint8_t>(event),
                   std::memory_order_relaxed);
  slot.seq.store(2 * t + 2, std::memory_order_release);
}

std::vector<TraceRecord> TraceRing::Snapshot() const {
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t cap = mask_ + 1;
  const std::uint64_t begin = end > cap ? end - cap : 0;
  std::vector<TraceRecord> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t t = begin; t < end; ++t) {
    const Slot& slot = slots_[t & mask_];
    if (slot.seq.load(std::memory_order_acquire) != 2 * t + 2) continue;
    TraceRecord rec;
    rec.ticket = t;
    rec.timestamp_ns = slot.timestamp_ns.load(std::memory_order_relaxed);
    rec.duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
    rec.value = slot.value.load(std::memory_order_relaxed);
    rec.reason = slot.reason.load(std::memory_order_relaxed);
    rec.event = static_cast<TraceEvent>(
        slot.event.load(std::memory_order_relaxed));
    // Revalidate the ticket after reading the payload: a writer that
    // lapped us mid-read leaves a different ticket behind. Each field is
    // individually tear-free, so the only residual risk is a mixed
    // record from writes exactly one capacity apart racing this loop —
    // acceptable for a diagnostic ring (documented best-effort).
    if (slot.ticket.load(std::memory_order_relaxed) != t) continue;
    out.push_back(rec);
  }
  return out;
}

}  // namespace obs
}  // namespace hexastore

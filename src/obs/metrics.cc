#include "obs/metrics.h"

#include <chrono>
#include <cstdlib>

namespace hexastore {
namespace obs {
namespace {

// -1 = not yet read from the environment; 0/1 = cached state. Tests and
// the overhead benchmark override via SetMetricsEnabledForTesting.
std::atomic<int> g_enabled{-1};

int ReadEnabledFromEnv() {
  const char* env = std::getenv("HEXA_METRICS");
  const int enabled = (env != nullptr && env[0] == '0' && env[1] == '\0')
                          ? 0
                          : 1;
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, enabled,
                                    std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed);
}

}  // namespace

bool MetricsEnabled() {
  const int state = g_enabled.load(std::memory_order_relaxed);
  if (state >= 0) return state != 0;
  return ReadEnabledFromEnv() != 0;
}

void SetMetricsEnabledForTesting(bool enabled) {
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

template <typename T>
void MetricsRegistry::Upsert(std::vector<Entry<T>>* entries,
                             const std::string& name, const std::string& help,
                             const T* instrument) {
  for (Entry<T>& entry : *entries) {
    if (entry.name == name) {
      entry.help = help;
      entry.instrument = instrument;
      return;
    }
  }
  entries->push_back(Entry<T>{name, help, instrument});
}

Counter* MetricsRegistry::AddCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Counter* counter = &owned_counters_.emplace_back();
  Upsert(&counters_, name, help, counter);
  return counter;
}

Gauge* MetricsRegistry::AddGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Gauge* gauge = &owned_gauges_.emplace_back();
  Upsert(&gauges_, name, help, gauge);
  return gauge;
}

LatencyHistogram* MetricsRegistry::AddHistogram(const std::string& name,
                                                const std::string& help,
                                                unsigned sample_shift) {
  std::lock_guard<std::mutex> lock(mu_);
  LatencyHistogram* hist = &owned_histograms_.emplace_back(sample_shift);
  Upsert(&histograms_, name, help, hist);
  return hist;
}

void MetricsRegistry::RegisterCounter(const std::string& name,
                                      const std::string& help,
                                      const Counter* counter) {
  std::lock_guard<std::mutex> lock(mu_);
  Upsert(&counters_, name, help, counter);
}

void MetricsRegistry::RegisterGauge(const std::string& name,
                                    const std::string& help,
                                    const Gauge* gauge) {
  std::lock_guard<std::mutex> lock(mu_);
  Upsert(&gauges_, name, help, gauge);
}

void MetricsRegistry::RegisterHistogram(const std::string& name,
                                        const std::string& help,
                                        const LatencyHistogram* histogram) {
  std::lock_guard<std::mutex> lock(mu_);
  Upsert(&histograms_, name, help, histogram);
}

void MetricsRegistry::AttachTraceRing(const TraceRing* ring) {
  std::lock_guard<std::mutex> lock(mu_);
  trace_ = ring;
}

void MetricsRegistry::AttachSlowQueryLog(const SlowQueryLog* log) {
  std::lock_guard<std::mutex> lock(mu_);
  slow_queries_ = log;
}

bool MetricsRegistry::CounterValue(const std::string& name,
                                   std::uint64_t* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry<Counter>& entry : counters_) {
    if (entry.name == name) {
      *out = entry.instrument->Value();
      return true;
    }
  }
  return false;
}

bool MetricsRegistry::GaugeValue(const std::string& name,
                                 std::int64_t* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry<Gauge>& entry : gauges_) {
    if (entry.name == name) {
      *out = entry.instrument->Value();
      return true;
    }
  }
  return false;
}

}  // namespace obs
}  // namespace hexastore

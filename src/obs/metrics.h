// Unified observability registry: named lock-free counters and gauges,
// log-scale latency histograms and a bounded trace ring, exported as a
// Prometheus-style text page or a JSON dump.
//
// Design contract (see docs/observability.md):
//
//  - Updating an instrument (Counter::Add, Gauge::Set,
//    LatencyHistogram::Record, TraceRing::Record) is lock-free — a
//    handful of relaxed atomic operations — and safe from any thread.
//    Hot paths never touch the registry itself.
//  - The registry is a naming directory. Registration happens once, at
//    store construction, under a small mutex; rendering walks the
//    directory under the same mutex. Instruments may be owned by the
//    registry (AddCounter/...) or live inside another object and be
//    registered by reference (RegisterCounter/...) — in the latter case
//    the instrument must outlive the registry's last render, which the
//    owning stores guarantee by construction (registry and instruments
//    are members of the same object, exports go through that object).
//  - Counter values are monotonic and always maintained; the
//    HEXA_METRICS=0 toggle (MetricsEnabled) only disables the *timing*
//    and *tracing* instrumentation, whose clock reads are the only
//    measurable cost.
//  - Reads are relaxed: each value is tear-free on its own, but a
//    rendered page is not a consistent cut across instruments. The
//    stats structs in core/stats.h get their consistent-cut guarantees
//    from the owning store's GatherStats(), not from here.
#ifndef HEXASTORE_OBS_METRICS_H_
#define HEXASTORE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.h"

namespace hexastore {
namespace obs {

class TraceRing;
class SlowQueryLog;

/// Monotonic event count. All operations are relaxed atomics: individual
/// values are exact and tear-free, cross-counter snapshots are not a
/// consistent cut (see GatherStats on the owning stores for that).
class Counter {
 public:
  void Add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t Value() const { return v_.load(std::memory_order_relaxed); }
  /// Non-monotonic reset, for instruments that mirror a plain field
  /// rebuilt from scratch (Clear/BulkLoad). Writer-serialized.
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time signed level (queue depth, resident bytes, triples).
class Gauge {
 public:
  void Set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Process-wide instrumentation toggle. Defaults to enabled; the
/// environment variable HEXA_METRICS=0 (read once, cached) turns the
/// timing/tracing instrumentation off. Counters and gauges stay live
/// either way — they replace fields the store always maintained.
bool MetricsEnabled();

/// Overrides the cached HEXA_METRICS state (tests and the overhead
/// benchmark flip this at runtime).
void SetMetricsEnabledForTesting(bool enabled);

/// Monotonic timestamp in nanoseconds (steady clock; comparable within
/// one process, not across processes or reboots).
std::uint64_t NowNanos();

/// Naming directory over counters, gauges, histograms and (optionally)
/// one trace ring, with Prometheus-text and JSON renderers.
///
/// Thread safety: registration and rendering serialize on an internal
/// mutex; instrument updates never take it. Registered names are
/// expected to be unique — re-registering a name replaces the entry
/// (idempotent re-registration, last writer wins).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registry-owned instruments; pointers stay valid for the registry's
  /// lifetime (deque storage, never reallocated).
  Counter* AddCounter(const std::string& name, const std::string& help);
  Gauge* AddGauge(const std::string& name, const std::string& help);
  LatencyHistogram* AddHistogram(const std::string& name,
                                 const std::string& help,
                                 unsigned sample_shift = 0);

  /// Externally owned instruments, registered by reference. The caller
  /// guarantees the instrument outlives every later render.
  void RegisterCounter(const std::string& name, const std::string& help,
                       const Counter* counter);
  void RegisterGauge(const std::string& name, const std::string& help,
                     const Gauge* gauge);
  void RegisterHistogram(const std::string& name, const std::string& help,
                         const LatencyHistogram* histogram);

  /// Attaches the trace ring included in RenderJson (one per registry;
  /// null detaches).
  void AttachTraceRing(const TraceRing* ring);

  /// Attaches the slow-query log included in RenderJson (one per
  /// registry; null detaches). Same lifetime contract as registered
  /// instruments: the log must outlive the registry's last render.
  void AttachSlowQueryLog(const SlowQueryLog* log);

  /// Looks up a registered counter/gauge value by name; returns false if
  /// the name is unknown. For tests and stats plumbing.
  bool CounterValue(const std::string& name, std::uint64_t* out) const;
  bool GaugeValue(const std::string& name, std::int64_t* out) const;

  /// Prometheus text exposition: HELP/TYPE comments, counters as
  /// `<name> <value>`, histograms as cumulative `_bucket{le="..."}`
  /// series plus `_sum`/`_count`.
  std::string RenderPrometheus() const;

  /// JSON dump: {"version":2,"counters":{...},"gauges":{...},
  /// "histograms":{...},"trace":{...},"slow_queries":{...}} — the
  /// schema scripts/check_metrics_json.py validates.
  std::string RenderJson() const;

  /// Writes RenderJson() to `path` atomically (tmp file + rename).
  /// Returns false on I/O failure.
  bool WriteJsonFile(const std::string& path) const;

  /// Writes the JSON dump to $HEXA_METRICS_JSON if that variable is set
  /// and non-empty (read fresh on every call, not cached — the owning
  /// stores call this from their destructors). No-op otherwise.
  void DumpToEnvPathIfSet() const;

 private:
  template <typename T>
  struct Entry {
    std::string name;
    std::string help;
    const T* instrument;
  };

  template <typename T>
  static void Upsert(std::vector<Entry<T>>* entries, const std::string& name,
                     const std::string& help, const T* instrument);

  mutable std::mutex mu_;
  // Owned instruments; deque so registered pointers never move.
  std::deque<Counter> owned_counters_;
  std::deque<Gauge> owned_gauges_;
  std::deque<LatencyHistogram> owned_histograms_;
  std::vector<Entry<Counter>> counters_;
  std::vector<Entry<Gauge>> gauges_;
  std::vector<Entry<LatencyHistogram>> histograms_;
  const TraceRing* trace_ = nullptr;
  const SlowQueryLog* slow_queries_ = nullptr;
};

}  // namespace obs
}  // namespace hexastore

#endif  // HEXASTORE_OBS_METRICS_H_

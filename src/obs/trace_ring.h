// Bounded lock-free ring of timestamped lifecycle events.
//
// Writers claim a slot with one fetch_add on a global ticket and fill
// it with relaxed atomic stores bracketed by a seqlock-style sequence
// word (odd while writing, 2*ticket+2 when complete), so recording
// never blocks and never allocates — reasons are static string
// literals. Readers walk the last `capacity` tickets and keep only
// slots whose sequence and stored ticket both match, discarding
// anything mid-overwrite. The snapshot is therefore best-effort: under
// a concurrent writer burst the oldest retained events may already be
// gone, but every event returned is internally consistent and the ring
// is TSan-clean (every slot field is an atomic).
#ifndef HEXASTORE_OBS_TRACE_RING_H_
#define HEXASTORE_OBS_TRACE_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace hexastore {
namespace obs {

/// Store lifecycle events recorded into the ring (see
/// docs/observability.md for the full table of who records what).
enum class TraceEvent : std::uint8_t {
  kSeal = 0,        ///< active staging buffer sealed into an L0 run
  kFold,            ///< L0 runs folded into L1
  kBaseMerge,       ///< delta layers merged/rebuilt into the base
  kBudgetTrigger,   ///< memory budget forced a seal/fold/base-merge
  kFilterDrop,      ///< seal skipped its Bloom filter (budget pressure)
  kPublish,         ///< new generation published to readers
  kReclaim,         ///< retired generations reclaimed (grace period over)
  kCheckpoint,      ///< WAL checkpoint (snapshot + manifest + truncate)
  kRecovery,        ///< store recovered from snapshot + WAL replay
  kWalRotate,       ///< WAL segment rotation
  kClear,           ///< store cleared
  kBulkLoad,        ///< bulk load replaced the store contents
};

/// Stable lowercase identifier ("seal", "base_merge", ...) used in both
/// export formats.
const char* TraceEventName(TraceEvent event);

/// One decoded event, as returned by TraceRing::Snapshot.
struct TraceRecord {
  std::uint64_t ticket = 0;        ///< global sequence number (0-based)
  std::uint64_t timestamp_ns = 0;  ///< obs::NowNanos() at record time
  std::uint64_t duration_ns = 0;   ///< 0 when the event has no duration
  std::uint64_t value = 0;         ///< event-specific magnitude (ops, bytes)
  const char* reason = "";         ///< static literal ("threshold", ...)
  TraceEvent event = TraceEvent::kSeal;
};

class TraceRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 8).
  explicit TraceRing(std::size_t capacity = 1024);
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Records one event. Lock-free, allocation-free; a no-op while
  /// metrics are disabled (HEXA_METRICS=0). `reason` must be a string
  /// with static storage duration.
  void Record(TraceEvent event, const char* reason,
              std::uint64_t duration_ns = 0, std::uint64_t value = 0);

  /// Decodes the retained events, oldest first. Best-effort under
  /// concurrent writers (see file comment).
  std::vector<TraceRecord> Snapshot() const;

  /// Events ever recorded (including those overwritten since).
  std::uint64_t TotalRecorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  struct Slot {
    // 0 = never written; odd = write in progress; 2*ticket+2 = complete.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> ticket{0};
    std::atomic<std::uint64_t> timestamp_ns{0};
    std::atomic<std::uint64_t> duration_ns{0};
    std::atomic<std::uint64_t> value{0};
    std::atomic<const char*> reason{nullptr};
    std::atomic<std::uint8_t> event{0};
  };

  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};
  std::size_t mask_ = 0;
};

}  // namespace obs
}  // namespace hexastore

#endif  // HEXASTORE_OBS_TRACE_RING_H_

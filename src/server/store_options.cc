#include "server/store_options.h"

#include <cstdlib>
#include <limits>
#include <string_view>

namespace hexastore {

namespace {

void Note(std::string* notes, std::string_view line) {
  if (notes == nullptr) {
    return;
  }
  if (!notes->empty()) {
    notes->push_back('\n');
  }
  notes->append(line);
}

// Env parsers: unset leaves `*out` untouched and returns true; set but
// unparsable leaves it untouched and returns false (caller notes it).
bool EnvSize(const char* name, std::size_t* out) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') {
    return true;
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') {
    return false;
  }
  *out = static_cast<std::size_t>(v);
  return true;
}

bool EnvU64(const char* name, std::uint64_t* out) {
  std::size_t v = 0;
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') {
    return true;
  }
  if (!EnvSize(name, &v)) {
    return false;
  }
  *out = v;
  return true;
}

bool EnvDouble(const char* name, double* out) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') {
    return true;
  }
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  if (end == env || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

bool EnvBool(const char* name, bool* out) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') {
    return true;
  }
  const std::string_view v(env);
  if (v == "1" || v == "true" || v == "on") {
    *out = true;
    return true;
  }
  if (v == "0" || v == "false" || v == "off") {
    *out = false;
    return true;
  }
  return false;
}

void EnvString(const char* name, std::string* out) {
  const char* env = std::getenv(name);
  if (env != nullptr && *env != '\0') {
    *out = env;
  }
}

}  // namespace

std::string ServerOptions::Normalize() {
  const ServerOptions defaults;
  // Clamp every field, not just the first bad one: a config with
  // several invalid knobs must still come out fully usable. Only the
  // first repair is reported (DeltaOptions::Normalize convention).
  std::string first;
  auto repaired = [&first](std::string note) {
    if (first.empty()) {
      first = std::move(note);
    }
  };
  if (host.empty()) {
    host = defaults.host;
    repaired("server: empty host clamped to " + defaults.host);
  }
  if (threads == 0) {
    threads = defaults.threads;
    repaired("server: threads=0 clamped to " +
             std::to_string(defaults.threads));
  }
  if (queue_depth == 0) {
    queue_depth = defaults.queue_depth;
    repaired("server: queue_depth=0 clamped to " +
             std::to_string(defaults.queue_depth));
  }
  if (plan_cache_capacity == 0) {
    plan_cache_capacity = defaults.plan_cache_capacity;
    repaired("server: plan_cache_capacity=0 clamped to " +
             std::to_string(defaults.plan_cache_capacity));
  }
  if (!(plan_cache_q_error >= 1.0)) {  // also catches NaN
    plan_cache_q_error = defaults.plan_cache_q_error;
    repaired("server: plan_cache_q_error must be >= 1, clamped to default");
  }
  if (max_request_bytes < 1024) {
    max_request_bytes = 1024;
    repaired("server: max_request_bytes clamped up to 1024");
  }
  return first;
}

std::string StoreOptions::Normalize() {
  std::string notes;
  std::string note = delta.Normalize();
  if (!note.empty()) {
    Note(&notes, note);
  }
  note = server.Normalize();
  if (!note.empty()) {
    Note(&notes, note);
  }
  if (shards == 0) {
    shards = 1;
    Note(&notes, "store: shards=0 clamped to 1");
  }
  return notes;
}

StoreOptions StoreOptions::FromEnv(std::string* notes) {
  StoreOptions opts;

  // Store-shape knobs feed both the plain and the durable configuration
  // (DurableDeltaHexastore forwards its copies to the inner store).
  std::size_t compact_threshold = opts.delta.compact_threshold;
  bool bg_compaction = opts.delta.background_compaction;
  std::size_t l0_run_limit = opts.delta.l0_run_limit;
  double l1_fraction = opts.delta.l1_base_fraction;
  std::size_t mem_budget = opts.delta.memory_budget_bytes;
  std::size_t filter_bits = opts.delta.filter_bits_per_key;
  if (!EnvSize("HEXA_COMPACT_THRESHOLD", &compact_threshold)) {
    Note(notes, "HEXA_COMPACT_THRESHOLD unparsable; keeping default");
  }
  if (!EnvBool("HEXA_BG_COMPACTION", &bg_compaction)) {
    Note(notes, "HEXA_BG_COMPACTION unparsable; keeping default");
  }
  if (!EnvSize("HEXA_L0_RUN_LIMIT", &l0_run_limit)) {
    Note(notes, "HEXA_L0_RUN_LIMIT unparsable; keeping default");
  }
  if (!EnvDouble("HEXA_L1_BASE_FRACTION", &l1_fraction)) {
    Note(notes, "HEXA_L1_BASE_FRACTION unparsable; keeping default");
  }
  if (!EnvSize("HEXA_MEM_BUDGET", &mem_budget)) {
    Note(notes, "HEXA_MEM_BUDGET unparsable; keeping default");
  }
  if (!EnvSize("HEXA_FILTER_BITS", &filter_bits)) {
    Note(notes, "HEXA_FILTER_BITS unparsable; keeping default");
  }
  if (!EnvSize("HEXA_SHARDS", &opts.shards)) {
    Note(notes, "HEXA_SHARDS unparsable; keeping default");
  }
  opts.delta.compact_threshold = compact_threshold;
  opts.delta.background_compaction = bg_compaction;
  opts.delta.l0_run_limit = l0_run_limit;
  opts.delta.l1_base_fraction = l1_fraction;
  opts.delta.memory_budget_bytes = mem_budget;
  opts.delta.filter_bits_per_key = filter_bits;
  opts.durability.compact_threshold = compact_threshold;
  opts.durability.background_compaction = bg_compaction;
  opts.durability.l0_run_limit = l0_run_limit;
  opts.durability.l1_base_fraction = l1_fraction;
  opts.durability.memory_budget_bytes = mem_budget;
  opts.durability.filter_bits_per_key = filter_bits;

  // Durability.
  EnvString("HEXA_WAL_DIR", &opts.durability.dir);
  opts.durable = !opts.durability.dir.empty();
  const char* mode = std::getenv("HEXA_WAL_MODE");
  if (mode != nullptr && *mode != '\0') {
    const std::string_view m(mode);
    if (m == "none") {
      opts.durability.mode = DurabilityMode::kNone;
    } else if (m == "batched") {
      opts.durability.mode = DurabilityMode::kBatched;
    } else if (m == "per-commit" || m == "commit") {
      opts.durability.mode = DurabilityMode::kPerCommit;
    } else {
      Note(notes, "HEXA_WAL_MODE unparsable; keeping batched");
    }
  }
  if (!EnvSize("HEXA_WAL_SEGMENT_BYTES", &opts.durability.segment_bytes)) {
    Note(notes, "HEXA_WAL_SEGMENT_BYTES unparsable; keeping default");
  }
  if (!EnvSize("HEXA_WAL_BATCH_BYTES", &opts.durability.batch_bytes)) {
    Note(notes, "HEXA_WAL_BATCH_BYTES unparsable; keeping default");
  }
  if (!EnvBool("HEXA_BG_CHECKPOINTS",
               &opts.durability.background_checkpoints)) {
    Note(notes, "HEXA_BG_CHECKPOINTS unparsable; keeping default");
  }

  // Server.
  EnvString("HEXA_HOST", &opts.server.host);
  std::size_t port = opts.server.port;
  if (!EnvSize("HEXA_PORT", &port) ||
      port > std::numeric_limits<std::uint16_t>::max()) {
    Note(notes, "HEXA_PORT unparsable or out of range; keeping default");
  } else {
    opts.server.port = static_cast<std::uint16_t>(port);
  }
  if (!EnvSize("HEXA_SERVER_THREADS", &opts.server.threads)) {
    Note(notes, "HEXA_SERVER_THREADS unparsable; keeping default");
  }
  if (!EnvSize("HEXA_SERVER_QUEUE", &opts.server.queue_depth)) {
    Note(notes, "HEXA_SERVER_QUEUE unparsable; keeping default");
  }
  if (!EnvU64("HEXA_QUERY_DEADLINE_MS", &opts.server.query_deadline_ms)) {
    Note(notes, "HEXA_QUERY_DEADLINE_MS unparsable; keeping default");
  }
  if (!EnvSize("HEXA_PLAN_CACHE_CAP", &opts.server.plan_cache_capacity)) {
    Note(notes, "HEXA_PLAN_CACHE_CAP unparsable; keeping default");
  }
  if (!EnvDouble("HEXA_PLAN_CACHE_QERR", &opts.server.plan_cache_q_error)) {
    Note(notes, "HEXA_PLAN_CACHE_QERR unparsable; keeping default");
  }
  if (!EnvSize("HEXA_MAX_REQUEST_BYTES", &opts.server.max_request_bytes)) {
    Note(notes, "HEXA_MAX_REQUEST_BYTES unparsable; keeping default");
  }

  const std::string repaired = opts.Normalize();
  if (!repaired.empty()) {
    Note(notes, repaired);
  }
  return opts;
}

}  // namespace hexastore

#include "server/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <optional>
#include <utility>

#include "query/result_json.h"
#include "rdf/ntriples.h"

namespace hexastore {

namespace {

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

HttpResponse TextResponse(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.body = std::move(body);
  return resp;
}

}  // namespace

Server::Server(DeltaHexastore& store, Dictionary& dict,
               const ServerOptions& options)
    : delta_(&store),
      write_store_(&store),
      dict_(&dict),
      options_(options),
      plan_cache_(PlanCacheOptions{options.plan_cache_capacity,
                                   options.plan_cache_q_error}) {
  options_.Normalize();
  RegisterInstruments(delta_->metrics_registry());
}

Server::Server(ShardedHexastore& store, Dictionary& dict,
               const ServerOptions& options)
    : sharded_(&store),
      write_store_(&store),
      dict_(&dict),
      options_(options),
      plan_cache_(PlanCacheOptions{options.plan_cache_capacity,
                                   options.plan_cache_q_error}) {
  options_.Normalize();
  RegisterInstruments(sharded_->metrics_registry());
}

void Server::RegisterInstruments(obs::MetricsRegistry& registry) {
  sink_.RegisterWith(&registry);
  plan_cache_.RegisterWith(&registry);
  registry.RegisterCounter("hexa_server_requests",
                           "HTTP requests served", &requests_total_);
  registry.RegisterCounter(
      "hexa_server_rejected",
      "Requests shed with 503 by admission control", &rejected_total_);
  registry.RegisterCounter("hexa_server_deadline_exceeded",
                           "Queries answered 504 past their deadline",
                           &deadline_total_);
  registry.RegisterCounter("hexa_server_bad_requests",
                           "Malformed or oversized requests",
                           &bad_request_total_);
  registry.RegisterCounter("hexa_server_inserts",
                           "Triples inserted via /insert", &inserts_total_);
  registry.RegisterCounter("hexa_server_erases",
                           "Triples erased via /erase", &erases_total_);
  registry.RegisterHistogram("hexa_server_request_latency_ns",
                             "End-to-end request handling latency",
                             &request_ns_);
}

Server::Server(DurableDeltaHexastore& store, Dictionary& dict,
               const ServerOptions& options)
    : Server(const_cast<DeltaHexastore&>(store.delta()), dict, options) {
  write_store_ = &store;
  durable_ = &store;
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_) {
    return Status::AlreadyExists("server already started");
  }
  auto listen = ListenTcp(options_.host, options_.port);
  if (!listen.ok()) {
    return listen.status();
  }
  listen_fd_ = listen.value();
  port_ = BoundPort(listen_fd_);
  if (::pipe(wake_pipe_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("pipe() failed");
  }
  SetNonBlocking(listen_fd_);
  SetNonBlocking(wake_pipe_[0]);
  // Publish the current generation so wait-free read handles see
  // everything loaded before Start() (AcquireReadHandle only sees
  // published state; see the freshness note on the write handlers).
  PublishGeneration();
  stop_.store(false, std::memory_order_relaxed);
  started_ = true;
  poller_ = std::thread([this] { PollerLoop(); });
  workers_.reserve(options_.threads);
  for (std::size_t i = 0; i < options_.threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void Server::Stop() {
  if (!started_) {
    return;
  }
  stop_.store(true, std::memory_order_relaxed);
  WakePoller();
  poller_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      ready_queue_.push_back(-1);
    }
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
  workers_.clear();
  // Anything still queued or in flight back to the poller gets closed.
  for (int fd : ready_queue_) {
    if (fd >= 0) {
      ::close(fd);
    }
  }
  ready_queue_.clear();
  for (int fd : returned_) {
    ::close(fd);
  }
  returned_.clear();
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  started_ = false;
}

void Server::PublishGeneration() {
  if (sharded_ != nullptr) {
    sharded_->GetSnapshot();
  } else {
    delta_->GetSnapshot();
  }
}

void Server::WakePoller() {
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void Server::EnqueueOrReject(int fd) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (ready_queue_.size() < options_.queue_depth) {
      ready_queue_.push_back(fd);
      queue_cv_.notify_one();
      return;
    }
  }
  // Admission control: shed at the door. The client gets an immediate
  // 503 instead of unbounded queueing.
  rejected_total_.Add();
  WriteHttpResponse(fd, TextResponse(503, "server overloaded\n"), false);
  ::close(fd);
}

void Server::ReturnConnection(int fd) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    returned_.push_back(fd);
  }
  WakePoller();
}

void Server::PollerLoop() {
  std::vector<int> idle;  // keep-alive connections with no bytes pending
  std::vector<pollfd> fds;
  while (true) {
    fds.clear();
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (int fd : idle) {
      fds.push_back(pollfd{fd, POLLIN, 0});
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if (stop_.load(std::memory_order_relaxed)) {
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      char drain[64];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
      std::lock_guard<std::mutex> lock(queue_mu_);
      for (int fd : returned_) {
        idle.push_back(fd);
      }
      returned_.clear();
    }
    if ((fds[1].revents & POLLIN) != 0) {
      while (true) {
        const int conn = ::accept(listen_fd_, nullptr, nullptr);
        if (conn < 0) {
          break;  // EAGAIN (or transient error): nothing more pending
        }
        // Responses go out in one send(); disable Nagle so that single
        // segment is never held back waiting for an ACK.
        const int one = 1;
        ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        idle.push_back(conn);
      }
    }
    // Walk idle connections back-to-front so removal is O(1).
    for (std::size_t i = fds.size(); i-- > 2;) {
      if (fds[i].revents == 0) {
        continue;
      }
      const int fd = fds[i].fd;
      idle.erase(idle.begin() + static_cast<std::ptrdiff_t>(i - 2));
      // Readable (or hung up — the worker's read sorts that out): hand
      // to the pool under the admission bound.
      EnqueueOrReject(fd);
    }
  }
  for (int fd : idle) {
    ::close(fd);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void Server::WorkerLoop() {
  query::SessionOptions sopts;
  sopts.pin = query::PinPolicy::kWaitFree;
  sopts.sink = &sink_;
  sopts.plan_cache = &plan_cache_;
  sopts.deadline_ns = options_.query_deadline_ms * 1000000ull;
  std::optional<query::Session> session_slot;
  if (sharded_ != nullptr) {
    session_slot.emplace(*sharded_, *dict_, sopts);
  } else {
    session_slot.emplace(*delta_, *dict_, sopts);
  }
  query::Session& session = *session_slot;
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return !ready_queue_.empty(); });
      fd = ready_queue_.front();
      ready_queue_.pop_front();
    }
    if (fd < 0) {
      break;
    }
    HttpRequest request;
    const ReadOutcome outcome =
        ReadHttpRequest(fd, options_.max_request_bytes, &request);
    if (outcome == ReadOutcome::kClosed) {
      ::close(fd);
      continue;
    }
    if (outcome != ReadOutcome::kOk) {
      bad_request_total_.Add();
      const int status = outcome == ReadOutcome::kTooLarge ? 413 : 400;
      WriteHttpResponse(fd, TextResponse(status, "bad request\n"), false);
      ::close(fd);
      continue;
    }
    const std::uint64_t start = obs::NowNanos();
    const HttpResponse response = Handle(request, &session);
    request_ns_.Record(obs::NowNanos() - start);
    const bool wrote = WriteHttpResponse(fd, response, request.keep_alive);
    if (!wrote || !request.keep_alive ||
        stop_.load(std::memory_order_relaxed)) {
      ::close(fd);
    } else {
      ReturnConnection(fd);
    }
  }
}

HttpResponse Server::Handle(const HttpRequest& request,
                            query::Session* session) {
  requests_total_.Add();
  if (request.path == "/query") {
    return HandleQuery(request, session);
  }
  if (request.path == "/explain") {
    return HandleExplain(request, session);
  }
  if (request.path == "/metrics") {
    HttpResponse resp;
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body =
        sharded_ != nullptr ? sharded_->MetricsText() : delta_->MetricsText();
    return resp;
  }
  if (request.path == "/metrics.json") {
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body =
        sharded_ != nullptr ? sharded_->MetricsJson() : delta_->MetricsJson();
    return resp;
  }
  if (request.path == "/healthz") {
    if (durable_ != nullptr) {
      const Status wal = durable_->status();
      if (!wal.ok()) {
        return TextResponse(500, wal.ToString() + "\n");
      }
    }
    if (sharded_ != nullptr) {
      const Status wal = sharded_->status();
      if (!wal.ok()) {
        return TextResponse(500, wal.ToString() + "\n");
      }
    }
    HttpResponse resp;
    resp.content_type = "application/sparql-results+json";
    resp.body = BooleanResultToJson(true);
    return resp;
  }
  if (request.path == "/insert") {
    return HandleInsert(request);
  }
  if (request.path == "/erase") {
    return HandleErase(request);
  }
  return TextResponse(404, "no such endpoint\n");
}

HttpResponse Server::HandleQuery(const HttpRequest& request,
                                 query::Session* session) {
  const std::string* q = request.Param("q");
  if (q == nullptr) {
    q = request.Param("query");
  }
  std::string_view text;
  if (q != nullptr) {
    text = *q;
  } else if (request.method == "POST" && !request.body.empty()) {
    text = request.body;
  } else {
    bad_request_total_.Add();
    return TextResponse(400, "missing query (q parameter or POST body)\n");
  }
  // Reader side of the dictionary lock for the whole query, rendering
  // included: evaluation and JSON both resolve term references that a
  // concurrent intern could invalidate.
  std::shared_lock<std::shared_mutex> read_lock(dict_mu_);
  auto result = session->Query(text);
  if (!result.ok()) {
    const StatusCode code = result.status().code();
    if (code == StatusCode::kDeadlineExceeded) {
      deadline_total_.Add();
      return TextResponse(504, result.status().ToString() + "\n");
    }
    if (code == StatusCode::kParseError ||
        code == StatusCode::kInvalidArgument) {
      bad_request_total_.Add();
      return TextResponse(400, result.status().ToString() + "\n");
    }
    return TextResponse(500, result.status().ToString() + "\n");
  }
  HttpResponse resp;
  resp.content_type = "application/sparql-results+json";
  resp.body = ResultSetToJson(result.value().set, *dict_);
  return resp;
}

HttpResponse Server::HandleExplain(const HttpRequest& request,
                                   query::Session* session) {
  const std::string* q = request.Param("q");
  if (q == nullptr) {
    q = request.Param("query");
  }
  if (q == nullptr) {
    bad_request_total_.Add();
    return TextResponse(400, "missing query (q parameter)\n");
  }
  const std::string* analyze = request.Param("analyze");
  const bool run = analyze != nullptr && *analyze == "1";
  std::shared_lock<std::shared_mutex> read_lock(dict_mu_);
  auto rendered = run ? session->ExplainAnalyze(*q) : session->Explain(*q);
  if (!rendered.ok()) {
    bad_request_total_.Add();
    return TextResponse(400, rendered.status().ToString() + "\n");
  }
  return TextResponse(200, rendered.value());
}

HttpResponse Server::HandleInsert(const HttpRequest& request) {
  if (request.method != "POST") {
    return TextResponse(405, "POST an N-Triples body\n");
  }
  auto parsed = ParseNTriplesDocument(request.body, /*strict=*/true);
  if (!parsed.ok()) {
    bad_request_total_.Add();
    return TextResponse(400, parsed.status().ToString() + "\n");
  }
  std::size_t inserted = 0;
  for (const Triple& triple : parsed.value()) {
    IdTriple ids;
    {
      // Writer side only around interning; the store's own mutex
      // serializes the insert itself.
      std::unique_lock<std::shared_mutex> write_lock(dict_mu_);
      ids = dict_->Encode(triple);
    }
    if (write_store_->Insert(ids)) {
      ++inserted;
    }
  }
  inserts_total_.Add(inserted);
  if (inserted > 0) {
    // Publish once per write batch: wait-free query handles only see
    // published generations, so the writer pays the (cheap, dirty-
    // gated) publication and keeps reader staleness bounded by one
    // in-flight batch instead of one compaction threshold.
    PublishGeneration();
  }
  HttpResponse resp;
  resp.content_type = "application/json";
  resp.body = "{\"inserted\":" + std::to_string(inserted) + "}";
  return resp;
}

HttpResponse Server::HandleErase(const HttpRequest& request) {
  if (request.method != "POST") {
    return TextResponse(405, "POST an N-Triples body\n");
  }
  auto parsed = ParseNTriplesDocument(request.body, /*strict=*/true);
  if (!parsed.ok()) {
    bad_request_total_.Add();
    return TextResponse(400, parsed.status().ToString() + "\n");
  }
  std::size_t erased = 0;
  for (const Triple& triple : parsed.value()) {
    std::optional<IdTriple> ids;
    {
      std::shared_lock<std::shared_mutex> read_lock(dict_mu_);
      ids = dict_->TryEncode(triple);
    }
    if (ids.has_value() && write_store_->Erase(*ids)) {
      ++erased;
    }
  }
  erases_total_.Add(erased);
  if (erased > 0) {
    PublishGeneration();  // publish (see HandleInsert)
  }
  HttpResponse resp;
  resp.content_type = "application/json";
  resp.body = "{\"erased\":" + std::to_string(erased) + "}";
  return resp;
}

}  // namespace hexastore

// Minimal HTTP/1.1 plumbing for hexastore_server: a loopback-oriented
// listener, blocking request reader, and response writer over plain
// POSIX sockets — no TLS, no chunked encoding, no external dependency.
// Supports exactly what the server and the bench driver need: GET/POST,
// Content-Length bodies, keep-alive, URL-decoded query parameters.
//
// This is transport only; routing, admission control and the worker
// pool live in server.{h,cc}.
#ifndef HEXASTORE_SERVER_HTTP_H_
#define HEXASTORE_SERVER_HTTP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace hexastore {

/// One parsed request.
struct HttpRequest {
  std::string method;  ///< "GET", "POST", ... (uppercase as sent)
  std::string path;    ///< URL-decoded path, query string stripped
  /// URL-decoded query parameters in order of appearance.
  std::vector<std::pair<std::string, std::string>> params;
  std::string body;
  bool keep_alive = true;

  /// First value of parameter `name`, or nullptr.
  const std::string* Param(std::string_view name) const;
};

/// One response to serialize.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Percent-decoding with '+' as space (query-string convention).
/// Malformed escapes pass through literally.
std::string UrlDecode(std::string_view text);

/// Splits a request target into the decoded path and decoded params.
void ParseTarget(std::string_view target, std::string* path,
                 std::vector<std::pair<std::string, std::string>>* params);

/// Opens a listening TCP socket on host:port (port 0 = kernel-assigned)
/// with SO_REUSEADDR. Returns the fd.
Result<int> ListenTcp(const std::string& host, std::uint16_t port);

/// The locally bound port of a listening fd (after ListenTcp with 0).
std::uint16_t BoundPort(int listen_fd);

/// Outcome of reading one request off a connection.
enum class ReadOutcome : std::uint8_t {
  kOk = 0,        ///< request parsed
  kClosed = 1,    ///< orderly EOF before any request byte
  kTooLarge = 2,  ///< exceeded max_bytes (answer 413 and close)
  kBad = 3,       ///< malformed (answer 400 and close)
};

/// Blocking read of one request (headers + Content-Length body).
ReadOutcome ReadHttpRequest(int fd, std::size_t max_bytes, HttpRequest* out);

/// Serializes and writes a response; `keep_alive` picks the Connection
/// header. Returns false when the peer went away mid-write.
bool WriteHttpResponse(int fd, const HttpResponse& response,
                       bool keep_alive);

}  // namespace hexastore

#endif  // HEXASTORE_SERVER_HTTP_H_

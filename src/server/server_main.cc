// hexastore_server: the HTTP front end binary.
//
//   hexastore_server [data.nt]
//
// Configuration is entirely environment-driven through
// StoreOptions::FromEnv() — see store_options.h for the full table and
// docs/server.md for semantics. The optional positional argument bulk-
// loads an N-Triples file before serving. With HEXA_WAL_DIR set the
// store is durable (recovers on start, logs every mutation).
//
// Runs until SIGINT/SIGTERM, then drains workers and (when durable)
// flushes the WAL tail.
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <semaphore.h>
#include <sstream>

#include "query/session.h"
#include "rdf/ntriples.h"
#include "server/server.h"
#include "server/store_options.h"

namespace {

sem_t g_shutdown_sem;

void HandleSignal(int) { sem_post(&g_shutdown_sem); }

// Bulk-load an N-Triples file through the write store.
bool LoadFile(const char* path, hexastore::TripleStore* store,
              hexastore::Dictionary* dict) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "hexastore_server: cannot open %s\n", path);
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::size_t skipped = 0;
  auto parsed = hexastore::ParseNTriplesDocument(buffer.str(),
                                                 /*strict=*/false,
                                                 &skipped);
  if (!parsed.ok()) {
    std::fprintf(stderr, "hexastore_server: %s\n",
                 parsed.status().ToString().c_str());
    return false;
  }
  hexastore::IdTripleVec ids;
  ids.reserve(parsed.value().size());
  for (const hexastore::Triple& t : parsed.value()) {
    ids.push_back(dict->Encode(t));
  }
  store->BulkLoad(ids);
  std::fprintf(stderr, "hexastore_server: loaded %zu triples from %s",
               ids.size(), path);
  if (skipped > 0) {
    std::fprintf(stderr, " (%zu bad lines skipped)", skipped);
  }
  std::fprintf(stderr, "\n");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string notes;
  hexastore::StoreOptions options = hexastore::StoreOptions::FromEnv(&notes);
  if (!notes.empty()) {
    std::fprintf(stderr, "hexastore_server: config repairs:\n%s\n",
                 notes.c_str());
  }

  hexastore::Dictionary dict;
  std::unique_ptr<hexastore::DeltaHexastore> plain;
  std::unique_ptr<hexastore::DurableDeltaHexastore> durable;
  std::unique_ptr<hexastore::ShardedHexastore> sharded;
  if (options.shards > 1) {
    hexastore::ShardedOptions sopts;
    sopts.shards = options.shards;
    sopts.delta = options.delta;
    sopts.durable = options.durable;
    sopts.durability = options.durability;
    auto opened = hexastore::ShardedHexastore::Open(sopts);
    if (!opened.ok()) {
      std::fprintf(stderr, "hexastore_server: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    sharded = std::move(opened).value();
    std::fprintf(stderr, "hexastore_server: %zu shards%s\n", options.shards,
                 options.durable ? " (durable)" : "");
  } else if (options.durable) {
    auto opened = hexastore::DurableDeltaHexastore::Open(options.durability);
    if (!opened.ok()) {
      std::fprintf(stderr, "hexastore_server: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    durable = std::move(opened).value();
    std::fprintf(stderr, "hexastore_server: durable store in %s\n",
                 options.durability.dir.c_str());
  } else {
    plain = std::make_unique<hexastore::DeltaHexastore>(options.delta);
  }
  hexastore::TripleStore* write_store =
      sharded != nullptr
          ? static_cast<hexastore::TripleStore*>(sharded.get())
          : durable != nullptr
                ? static_cast<hexastore::TripleStore*>(durable.get())
                : plain.get();
  if (argc > 1 && !LoadFile(argv[1], write_store, &dict)) {
    return 1;
  }

  std::unique_ptr<hexastore::Server> server;
  if (sharded != nullptr) {
    server = std::make_unique<hexastore::Server>(*sharded, dict,
                                                 options.server);
  } else if (durable != nullptr) {
    server = std::make_unique<hexastore::Server>(*durable, dict,
                                                 options.server);
  } else {
    server = std::make_unique<hexastore::Server>(*plain, dict,
                                                 options.server);
  }
  hexastore::Status started = server->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "hexastore_server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "hexastore_server: listening on http://%s:%u/ "
               "(%zu workers, queue %zu, deadline %llu ms)\n",
               options.server.host.c_str(), server->port(),
               options.server.threads, options.server.queue_depth,
               static_cast<unsigned long long>(
                   options.server.query_deadline_ms));

  sem_init(&g_shutdown_sem, 0, 0);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (sem_wait(&g_shutdown_sem) != 0) {
  }
  std::fprintf(stderr, "hexastore_server: shutting down\n");
  server->Stop();
  if (durable != nullptr || (sharded != nullptr && sharded->durable())) {
    hexastore::Status flushed =
        durable != nullptr ? durable->Flush() : sharded->Flush();
    if (!flushed.ok()) {
      std::fprintf(stderr, "hexastore_server: flush: %s\n",
                   flushed.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

#include "server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

namespace hexastore {

namespace {

int HexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

// Case-insensitive ASCII prefix/equality for header names.
bool IEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool WriteAll(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

const std::string* HttpRequest::Param(std::string_view name) const {
  for (const auto& [key, value] : params) {
    if (key == name) {
      return &value;
    }
  }
  return nullptr;
}

std::string UrlDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < text.size()) {
      const int hi = HexVal(text[i + 1]);
      const int lo = HexVal(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
      } else {
        out.push_back(c);
      }
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void ParseTarget(std::string_view target, std::string* path,
                 std::vector<std::pair<std::string, std::string>>* params) {
  params->clear();
  const std::size_t q = target.find('?');
  *path = UrlDecode(target.substr(0, q));
  if (q == std::string_view::npos) {
    return;
  }
  std::string_view rest = target.substr(q + 1);
  while (!rest.empty()) {
    const std::size_t amp = rest.find('&');
    const std::string_view pair = rest.substr(0, amp);
    const std::size_t eq = pair.find('=');
    if (!pair.empty()) {
      params->emplace_back(
          UrlDecode(pair.substr(0, eq)),
          eq == std::string_view::npos ? std::string()
                                       : UrlDecode(pair.substr(eq + 1)));
    }
    if (amp == std::string_view::npos) {
      break;
    }
    rest.remove_prefix(amp + 1);
  }
}

Result<int> ListenTcp(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparsable listen address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("bind " + host + ":" + std::to_string(port) +
                            ": " + err);
  }
  if (::listen(fd, 128) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen: " + err);
  }
  return fd;
}

std::uint16_t BoundPort(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

ReadOutcome ReadHttpRequest(int fd, std::size_t max_bytes,
                            HttpRequest* out) {
  std::string buf;
  std::size_t header_end = std::string::npos;
  char chunk[4096];
  // Headers first.
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ReadOutcome::kClosed;
    }
    if (n == 0) {
      return buf.empty() ? ReadOutcome::kClosed : ReadOutcome::kBad;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
    if (buf.size() > max_bytes) {
      return ReadOutcome::kTooLarge;
    }
    header_end = buf.find("\r\n\r\n");
  }

  // Request line.
  const std::size_t line_end = buf.find("\r\n");
  std::string_view line(buf.data(), line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) {
    return ReadOutcome::kBad;
  }
  out->method = std::string(line.substr(0, sp1));
  ParseTarget(line.substr(sp1 + 1, sp2 - sp1 - 1), &out->path,
              &out->params);
  out->keep_alive = line.substr(sp2 + 1) != "HTTP/1.0";

  // Headers we care about.
  std::size_t content_length = 0;
  std::size_t pos = line_end + 2;
  while (pos < header_end) {
    const std::size_t eol = buf.find("\r\n", pos);
    const std::string_view header(buf.data() + pos, eol - pos);
    const std::size_t colon = header.find(':');
    if (colon != std::string_view::npos) {
      const std::string_view name = Trim(header.substr(0, colon));
      const std::string_view value = Trim(header.substr(colon + 1));
      if (IEquals(name, "content-length")) {
        char* end = nullptr;
        const std::string v(value);
        content_length = std::strtoull(v.c_str(), &end, 10);
        if (end == v.c_str() || *end != '\0') {
          return ReadOutcome::kBad;
        }
      } else if (IEquals(name, "connection")) {
        if (IEquals(value, "close")) {
          out->keep_alive = false;
        } else if (IEquals(value, "keep-alive")) {
          out->keep_alive = true;
        }
      }
    }
    pos = eol + 2;
  }

  const std::size_t body_start = header_end + 4;
  if (body_start + content_length > max_bytes) {
    return ReadOutcome::kTooLarge;
  }
  while (buf.size() < body_start + content_length) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ReadOutcome::kClosed;
    }
    if (n == 0) {
      return ReadOutcome::kBad;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  out->body = buf.substr(body_start, content_length);
  return ReadOutcome::kOk;
}

bool WriteHttpResponse(int fd, const HttpResponse& response,
                       bool keep_alive) {
  // One buffer, one send: writing head and body as two segments stalls
  // ~40ms per response behind Nagle + the peer's delayed ACK.
  std::string wire = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     StatusReason(response.status) + "\r\n";
  wire += "Content-Type: " + response.content_type + "\r\n";
  wire += "Content-Length: " + std::to_string(response.body.size()) +
          "\r\n";
  wire += keep_alive ? "Connection: keep-alive\r\n"
                     : "Connection: close\r\n";
  wire += "\r\n";
  wire += response.body;
  return WriteAll(fd, wire.data(), wire.size());
}

}  // namespace hexastore

// One place for every HEXA_* runtime knob.
//
// StoreOptions bundles the three option structs a full deployment
// composes — DeltaOptions (in-memory store), DurabilityOptions (WAL
// wrapper), ServerOptions (HTTP front end) — and FromEnv() is the single
// documented reader of the environment, extending the PR-6 Normalize()
// validation pattern: invalid values never abort, they are repaired in
// place and the repair is reported so operators see exactly what the
// process actually runs with.
//
// Environment variables (unset keeps the compiled default):
//
//   store                                  field
//   HEXA_COMPACT_THRESHOLD    <ops>        delta/durability.compact_threshold
//   HEXA_BG_COMPACTION        0|1          .background_compaction
//   HEXA_L0_RUN_LIMIT         <runs>       .l0_run_limit
//   HEXA_L1_BASE_FRACTION     <float>      .l1_base_fraction
//   HEXA_MEM_BUDGET           <bytes>      .memory_budget_bytes
//   HEXA_FILTER_BITS          <bits>       .filter_bits_per_key
//   HEXA_SHARDS               <n>          shards (>1 = ShardedHexastore)
//
//   durability (HEXA_WAL_DIR set => durable = true)
//   HEXA_WAL_DIR              <path>       durability.dir
//   HEXA_WAL_MODE             none|batched|per-commit   durability.mode
//   HEXA_WAL_SEGMENT_BYTES    <bytes>      durability.segment_bytes
//   HEXA_WAL_BATCH_BYTES      <bytes>      durability.batch_bytes
//   HEXA_BG_CHECKPOINTS       0|1          durability.background_checkpoints
//
//   server
//   HEXA_HOST                 <addr>       server.host
//   HEXA_PORT                 <port>       server.port
//   HEXA_SERVER_THREADS       <n>          server.threads
//   HEXA_SERVER_QUEUE         <n>          server.queue_depth
//   HEXA_QUERY_DEADLINE_MS    <ms>         server.query_deadline_ms
//   HEXA_PLAN_CACHE_CAP       <entries>    server.plan_cache_capacity
//   HEXA_PLAN_CACHE_QERR      <float>      server.plan_cache_q_error
//   HEXA_MAX_REQUEST_BYTES    <bytes>      server.max_request_bytes
//
// (HEXA_METRICS, HEXA_METRICS_JSON and HEXA_SLOW_QUERY_US remain read by
// the obs layer directly — they gate process-wide instrumentation, not
// store construction; docs/observability.md covers them.)
#ifndef HEXASTORE_SERVER_STORE_OPTIONS_H_
#define HEXASTORE_SERVER_STORE_OPTIONS_H_

#include <cstdint>
#include <string>

#include "delta/delta_hexastore.h"
#include "wal/durable_store.h"

namespace hexastore {

/// HTTP front-end knobs (hexastore_server; see docs/server.md).
struct ServerOptions {
  /// Listen address. The default stays loopback-only on purpose — the
  /// server speaks plaintext HTTP with no auth.
  std::string host = "127.0.0.1";
  /// Listen port; 0 lets the kernel pick (the bound port is reported).
  std::uint16_t port = 8585;
  /// Worker threads executing queries (one Session each). 0 is repaired
  /// to the default.
  std::size_t threads = 4;
  /// Accepted-but-unserviced connection bound (admission control): past
  /// it new requests are answered 503 instead of queueing without
  /// bound. 0 is repaired to the default.
  std::size_t queue_depth = 64;
  /// Per-query wall-time budget in milliseconds; overruns answer 504.
  /// 0 = unlimited.
  std::uint64_t query_deadline_ms = 0;
  /// Shared normalized-BGP plan cache sizing (plan_cache.h).
  std::size_t plan_cache_capacity = 256;
  double plan_cache_q_error = 2.0;
  /// Largest accepted request (start line + headers + body).
  std::size_t max_request_bytes = 1u << 20;

  /// Clamps every field to its documented domain in place; returns ""
  /// or a description of the first repair (DeltaOptions::Normalize
  /// convention).
  std::string Normalize();
};

/// Everything a deployment configures, in one struct.
struct StoreOptions {
  DeltaOptions delta;
  DurabilityOptions durability;
  /// True: open a DurableDeltaHexastore in durability.dir. False: plain
  /// in-memory DeltaHexastore (durability ignored).
  bool durable = false;
  /// Shards behind the store. 1 = a single (Durable)DeltaHexastore as
  /// before; >1 = a ShardedHexastore facade partitioning by subject
  /// hash, with per-shard WAL directories under durability.dir when
  /// durable (docs/sharding.md). 0 is repaired to 1.
  std::size_t shards = 1;
  ServerOptions server;

  /// Reads every variable in the table above, then Normalize()s. Repair
  /// notes (including unparsable values, which keep the default) are
  /// appended to `notes` one per line when non-null.
  static StoreOptions FromEnv(std::string* notes = nullptr);

  /// Normalizes all three option sets (delta + server here; durability
  /// is normalized by DurableDeltaHexastore::Open as before). Returns
  /// the accumulated repair notes, one per line, "" when clean.
  std::string Normalize();
};

}  // namespace hexastore

#endif  // HEXASTORE_SERVER_STORE_OPTIONS_H_

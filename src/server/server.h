// The concurrent SPARQL HTTP server: a fixed worker pool where every
// query runs through its own query::Session against one wait-free
// AcquireReadHandle() generation, fronted by a poller thread that
// multiplexes keep-alive connections and applies admission control.
//
// Threading model (docs/server.md has the full picture):
//
//   poller ──readable conn──▶ bounded queue ──▶ worker[0..N) ──▶ Session
//     ▲                            │503 on overflow
//     └──────keep-alive return─────┘
//
//  - One poller thread owns accept() and poll()s idle keep-alive
//    connections; a connection is handed to the queue only when bytes
//    are waiting, so workers never block on idle sockets.
//  - Admission control: the ready queue is bounded at
//    ServerOptions::queue_depth. On overflow the poller answers 503
//    immediately and closes — load sheds at the door instead of
//    building an invisible backlog.
//  - Each worker thread owns one Session (wait-free pin per query, the
//    shared PlanCache, the shared ProfileSink, the configured
//    deadline). A deadline overrun answers 504.
//  - Writers (/insert, /erase) go through the live store — its own
//    mutex serializes them — and intern dictionary terms under a writer
//    lock; queries hold the reader side for their whole execution
//    (including result rendering) because Dictionary is not internally
//    synchronized.
//
// Endpoints:
//   GET/POST /query?q=...      W3C SPARQL JSON results
//   GET      /explain?q=...    EXPLAIN (&analyze=1 for EXPLAIN ANALYZE)
//   GET      /metrics          Prometheus text (whole-store registry)
//   GET      /metrics.json     JSON export (schema v2)
//   GET      /healthz          boolean-results JSON; 500 on sticky WAL error
//   POST     /insert           N-Triples body, staged via the write store
//   POST     /erase            N-Triples body
#ifndef HEXASTORE_SERVER_SERVER_H_
#define HEXASTORE_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "delta/delta_hexastore.h"
#include "dict/dictionary.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "query/plan_cache.h"
#include "query/profile.h"
#include "query/session.h"
#include "server/http.h"
#include "server/store_options.h"
#include "shard/sharded_hexastore.h"
#include "wal/durable_store.h"

namespace hexastore {

/// The HTTP front end over one (Durable)DeltaHexastore. Construct,
/// Start(), eventually Stop(). The store, dictionary and options are
/// borrowed and must outlive the server; the server registers its
/// instruments into the store's MetricsRegistry, so destroy the server
/// only after the registry's last render (in practice: the server
/// outlives every /metrics request by construction, and embedders stop
/// rendering before tearing down).
class Server {
 public:
  /// In-memory backend.
  Server(DeltaHexastore& store, Dictionary& dict,
         const ServerOptions& options);
  /// Durable backend: mutations go through the WAL wrapper, reads pin
  /// generations of the wrapped store.
  Server(DurableDeltaHexastore& store, Dictionary& dict,
         const ServerOptions& options);
  /// Sharded backend (HEXA_SHARDS > 1): writes route to the owning
  /// shard, each query pins a ShardedSnapshot, and the facade's primary
  /// registry (shard 0's) serves /metrics with the hexa_shard_* series.
  Server(ShardedHexastore& store, Dictionary& dict,
         const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds host:port and spawns the poller and worker threads. With
  /// port 0 the kernel assigns one — read it back via port().
  Status Start();
  /// Drains and joins everything; idempotent.
  void Stop();

  /// The bound listen port (valid after Start()).
  std::uint16_t port() const { return port_; }
  const PlanCache& plan_cache() const { return plan_cache_; }
  const ProfileSink& sink() const { return sink_; }

  /// Serves one request (the worker body, public for tests: drive the
  /// routing logic without sockets). `session` must belong to the
  /// calling thread.
  HttpResponse Handle(const HttpRequest& request, query::Session* session);

 private:
  void PollerLoop();
  void WorkerLoop();
  /// Queue a readable connection or shed it with 503.
  void EnqueueOrReject(int fd);
  void ReturnConnection(int fd);
  void WakePoller();

  HttpResponse HandleQuery(const HttpRequest& request,
                           query::Session* session);
  HttpResponse HandleExplain(const HttpRequest& request,
                             query::Session* session);
  HttpResponse HandleInsert(const HttpRequest& request);
  HttpResponse HandleErase(const HttpRequest& request);

  // Registers the hexa_server_* instruments, the sink and the plan
  // cache with the backend's registry (shared ctor tail).
  void RegisterInstruments(obs::MetricsRegistry& registry);
  // Publishes the current generation(s) so wait-free read handles see
  // everything written so far (see the freshness note on the write
  // handlers).
  void PublishGeneration();

  // Backend bindings. Exactly one of delta_/sharded_ is non-null and is
  // the store the read path pins (and whose registry serves /metrics);
  // write_store_ is the mutation target (the WAL wrapper when durable,
  // the facade when sharded); durable_ is non-null only for /healthz's
  // sticky-error check (the sharded facade checks status() itself).
  const DeltaHexastore* delta_ = nullptr;
  ShardedHexastore* sharded_ = nullptr;
  TripleStore* write_store_;
  DurableDeltaHexastore* durable_ = nullptr;
  Dictionary* dict_;
  ServerOptions options_;

  // Shared query machinery (thread-safe; one per server, all workers).
  ProfileSink sink_;
  PlanCache plan_cache_;
  mutable std::shared_mutex dict_mu_;

  // Server instruments (registered into the store's registry).
  obs::Counter requests_total_;
  obs::Counter rejected_total_;   ///< 503s (admission overflow)
  obs::Counter deadline_total_;   ///< 504s
  obs::Counter bad_request_total_;
  obs::Counter inserts_total_;
  obs::Counter erases_total_;
  obs::LatencyHistogram request_ns_{0};

  // Connection plumbing.
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> ready_queue_;  // -1 = worker shutdown sentinel
  std::vector<int> returned_;    // keep-alive conns headed back to poll

  std::thread poller_;
  std::vector<std::thread> workers_;
};

}  // namespace hexastore

#endif  // HEXASTORE_SERVER_SERVER_H_

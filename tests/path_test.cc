// Tests for path-expression evaluation (paper §4.3): the Hexastore
// merge-join strategy must agree with the generic hash-join oracle on
// both hand-built and random graphs.
#include <gtest/gtest.h>

#include "baseline/triple_table.h"
#include "core/hexastore.h"
#include "query/path.h"
#include "util/rng.h"

namespace hexastore {
namespace {

TEST(PathTest, SinglePredicateIsAllPairs) {
  Hexastore store;
  store.Insert({1, 10, 2});
  store.Insert({3, 10, 4});
  store.Insert({1, 11, 5});
  PathPairs pairs = EvalPathHexastore(store, {10});
  EXPECT_EQ(pairs, (PathPairs{{1, 2}, {3, 4}}));
}

TEST(PathTest, TwoStepChain) {
  Hexastore store;
  // 1 -a-> 2 -b-> 3 ; 1 -a-> 4 ; 4 -b-> 5
  store.Insert({1, 100, 2});
  store.Insert({2, 101, 3});
  store.Insert({1, 100, 4});
  store.Insert({4, 101, 5});
  PathPairs pairs = EvalPathHexastore(store, {100, 101});
  EXPECT_EQ(pairs, (PathPairs{{1, 3}, {1, 5}}));
}

TEST(PathTest, ThreeStepChain) {
  Hexastore store;
  store.Insert({1, 7, 2});
  store.Insert({2, 8, 3});
  store.Insert({3, 9, 4});
  store.Insert({2, 8, 30});  // dead end: 30 has no p9 edge
  EXPECT_EQ(EvalPathHexastore(store, {7, 8, 9}), (PathPairs{{1, 4}}));
}

TEST(PathTest, EmptyCases) {
  Hexastore store;
  store.Insert({1, 7, 2});
  EXPECT_TRUE(EvalPathHexastore(store, {}).empty());
  EXPECT_TRUE(EvalPathHexastore(store, {99}).empty());
  EXPECT_TRUE(EvalPathHexastore(store, {7, 99}).empty());
  EXPECT_TRUE(EvalPathGeneric(store, {}).empty());
  EXPECT_TRUE(EvalPathGeneric(store, {99}).empty());
}

TEST(PathTest, DiamondDeduplicates) {
  Hexastore store;
  // Two distinct mid nodes give the same endpoint pair once.
  store.Insert({1, 7, 2});
  store.Insert({1, 7, 3});
  store.Insert({2, 8, 9});
  store.Insert({3, 8, 9});
  EXPECT_EQ(EvalPathHexastore(store, {7, 8}), (PathPairs{{1, 9}}));
  EXPECT_EQ(EvalPathGeneric(store, {7, 8}), (PathPairs{{1, 9}}));
}

TEST(PathTest, SamePredicateTwice) {
  Hexastore store;
  store.Insert({1, 7, 2});
  store.Insert({2, 7, 3});
  store.Insert({3, 7, 4});
  EXPECT_EQ(EvalPathHexastore(store, {7, 7}),
            (PathPairs{{1, 3}, {2, 4}}));
}

TEST(PathTest, CycleTerminates) {
  Hexastore store;
  store.Insert({1, 7, 2});
  store.Insert({2, 7, 1});
  EXPECT_EQ(EvalPathHexastore(store, {7, 7}),
            (PathPairs{{1, 1}, {2, 2}}));
  EXPECT_EQ(EvalPathHexastore(store, {7, 7, 7}),
            (PathPairs{{1, 2}, {2, 1}}));
}

class PathPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathPropertyTest, HexaMatchesGenericOnRandomGraphs) {
  Rng rng(GetParam());
  Hexastore hexa;
  TripleTableStore table;
  // Random graph with 4 predicates over 40 nodes.
  for (int i = 0; i < 600; ++i) {
    IdTriple t{1 + rng.Uniform(40), 100 + rng.Uniform(4),
               1 + rng.Uniform(40)};
    hexa.Insert(t);
    table.Insert(t);
  }
  for (int len = 1; len <= 4; ++len) {
    for (int round = 0; round < 8; ++round) {
      std::vector<Id> path;
      for (int k = 0; k < len; ++k) {
        path.push_back(100 + rng.Uniform(4));
      }
      EXPECT_EQ(EvalPathHexastore(hexa, path),
                EvalPathGeneric(table, path))
          << "path length " << len;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathPropertyTest,
                         ::testing::Values(5, 55, 555, 5555));

}  // namespace
}  // namespace hexastore

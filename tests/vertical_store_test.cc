// Unit tests for the vertical-partitioning baselines COVP1 and COVP2.
#include <gtest/gtest.h>

#include "baseline/vertical_store.h"

namespace hexastore {
namespace {

TEST(VerticalStoreTest, NamesReflectVariant) {
  EXPECT_EQ(VerticalStore(false).name(), "COVP1");
  EXPECT_EQ(VerticalStore(true).name(), "COVP2");
}

TEST(VerticalStoreTest, InsertEraseContains) {
  for (bool with_index : {false, true}) {
    VerticalStore store(with_index);
    EXPECT_TRUE(store.Insert({1, 2, 3}));
    EXPECT_FALSE(store.Insert({1, 2, 3}));
    EXPECT_TRUE(store.Contains({1, 2, 3}));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_TRUE(store.Erase({1, 2, 3}));
    EXPECT_FALSE(store.Contains({1, 2, 3}));
    EXPECT_EQ(store.size(), 0u);
    EXPECT_TRUE(store.Properties().empty());  // empty table dropped
  }
}

TEST(VerticalStoreTest, PropertyTablesGroupObjectsPerSubject) {
  VerticalStore store(true);
  store.Insert({1, 7, 30});
  store.Insert({1, 7, 10});
  store.Insert({2, 7, 10});
  store.Insert({1, 8, 10});

  EXPECT_EQ(store.Properties(), (std::vector<Id>{7, 8}));
  ASSERT_NE(store.subject_vector(7), nullptr);
  EXPECT_EQ(*store.subject_vector(7), (IdVec{1, 2}));
  EXPECT_EQ(*store.object_list(7, 1), (IdVec{10, 30}));
  EXPECT_EQ(*store.object_list(7, 2), (IdVec{10}));
  EXPECT_EQ(store.object_list(7, 3), nullptr);
  EXPECT_EQ(store.object_list(9, 1), nullptr);
}

TEST(VerticalStoreTest, Covp2ObjectSideIndexes) {
  VerticalStore store(true);
  store.Insert({1, 7, 30});
  store.Insert({2, 7, 30});
  store.Insert({1, 7, 10});
  ASSERT_NE(store.object_vector(7), nullptr);
  EXPECT_EQ(*store.object_vector(7), (IdVec{10, 30}));
  EXPECT_EQ(*store.subject_list(7, 30), (IdVec{1, 2}));
}

TEST(VerticalStoreTest, Covp1HasNoObjectIndex) {
  VerticalStore store(false);
  store.Insert({1, 7, 30});
  EXPECT_EQ(store.object_vector(7), nullptr);
  EXPECT_EQ(store.subject_list(7, 30), nullptr);
  EXPECT_FALSE(store.with_object_index());
}

TEST(VerticalStoreTest, ScanPatternsBothVariants) {
  for (bool with_index : {false, true}) {
    VerticalStore store(with_index);
    store.Insert({1, 2, 3});
    store.Insert({1, 2, 4});
    store.Insert({1, 5, 3});
    store.Insert({2, 2, 3});

    EXPECT_EQ(store.Match(IdPattern{}).size(), 4u);
    EXPECT_EQ(store.Match({1, kInvalidId, kInvalidId}).size(), 3u);
    EXPECT_EQ(store.Match({kInvalidId, 2, kInvalidId}).size(), 3u);
    EXPECT_EQ(store.Match({kInvalidId, kInvalidId, 3}).size(), 3u);
    EXPECT_EQ(store.Match({1, 2, kInvalidId}).size(), 2u);
    EXPECT_EQ(store.Match({1, kInvalidId, 3}).size(), 2u);
    EXPECT_EQ(store.Match({kInvalidId, 2, 3}),
              (IdTripleVec{{1, 2, 3}, {2, 2, 3}}));
    EXPECT_EQ(store.Match({1, 2, 3}), (IdTripleVec{{1, 2, 3}}));
    EXPECT_TRUE(store.Match({9, 9, 9}).empty());
  }
}

TEST(VerticalStoreTest, EraseCleansObjectSide) {
  VerticalStore store(true);
  store.Insert({1, 7, 30});
  store.Insert({2, 7, 30});
  store.Erase({1, 7, 30});
  EXPECT_EQ(*store.subject_list(7, 30), (IdVec{2}));
  store.Erase({2, 7, 30});
  EXPECT_EQ(store.table(7), nullptr);  // empty table dropped
}

TEST(VerticalStoreTest, BulkLoadEqualsIncremental) {
  IdTripleVec data = {{1, 7, 30}, {1, 7, 10}, {2, 7, 10}, {1, 8, 10},
                      {3, 9, 1},  {1, 7, 30} /* dup */};
  for (bool with_index : {false, true}) {
    VerticalStore bulk(with_index);
    bulk.BulkLoad(data);
    VerticalStore inc(with_index);
    for (const auto& t : data) {
      inc.Insert(t);
    }
    EXPECT_EQ(bulk.size(), inc.size());
    EXPECT_EQ(bulk.Match(IdPattern{}), inc.Match(IdPattern{}));
    EXPECT_EQ(bulk.Properties(), inc.Properties());
  }
}

TEST(VerticalStoreTest, Covp2UsesMoreMemoryThanCovp1) {
  VerticalStore covp1(false);
  VerticalStore covp2(true);
  for (Id i = 1; i <= 500; ++i) {
    IdTriple t{i % 50 + 1, i % 7 + 1, i};
    covp1.Insert(t);
    covp2.Insert(t);
  }
  EXPECT_GT(covp2.MemoryBytes(), covp1.MemoryBytes());
}

TEST(VerticalStoreTest, ClearResets) {
  VerticalStore store(true);
  store.Insert({1, 2, 3});
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.Properties().empty());
}

}  // namespace
}  // namespace hexastore

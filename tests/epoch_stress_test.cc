// Epoch-reclamation and background-compaction stress tests.
//
// The contracts under test:
//   * AcquireReadHandle() is wait-free and never touches the store
//     mutex: reader threads keep answering from pinned generations while
//     a writer churns and forces compaction after compaction.
//   * A handle stays internally consistent (same answer on re-scan,
//     size exact, membership agreeing with the scan) no matter how many
//     generations are published, retired and reclaimed underneath it —
//     including handles deliberately held across many compactions and a
//     WAL checkpoint.
//   * The merged store agrees with a std::set oracle through randomized
//     churn in background-compaction mode (the churn oracle from
//     churn_test, pointed at the concurrent machinery).
//   * Pinned-generation BGP evaluation and merge joins answer from
//     exactly one generation.
//
// These suites run in the TSan CI job; keep every cross-thread
// interaction data-race-free by construction.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <filesystem>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "delta/delta_hexastore.h"
#include "query/bgp.h"
#include "shard/sharded_hexastore.h"
#include "query/merge_join.h"
#include "query/plan_cache.h"
#include "query/result_json.h"
#include "query/session.h"
#include "util/rng.h"
#include "wal/durable_store.h"

namespace hexastore {
namespace {

IdTriple RandomTriple(Rng& rng, Id universe) {
  return IdTriple{rng.UniformRange(1, universe),
                  rng.UniformRange(1, universe),
                  rng.UniformRange(1, universe)};
}

// Internal-consistency probe of one pinned handle: re-scan stability,
// size bookkeeping, membership, and per-predicate scan agreement.
// Returns the number of violations found. Works on any pinned view
// (DeltaHexastore::Snapshot or ShardedSnapshot).
template <typename SnapT>
int CheckHandleConsistency(const SnapT& snap, Rng& rng) {
  int failures = 0;
  const IdTripleVec first = snap.Match(IdPattern{});
  if (first.size() != snap.size()) {
    ++failures;
  }
  const IdTripleVec second = snap.Match(IdPattern{});
  if (second != first) {
    ++failures;
  }
  for (int probe = 0; probe < 8 && !first.empty(); ++probe) {
    if (!snap.Contains(first[rng.Uniform(first.size())])) {
      ++failures;
    }
  }
  const Id p = 1 + rng.Uniform(8);
  std::size_t by_p = 0;
  snap.Scan(IdPattern{0, p, 0}, [&by_p](const IdTriple&) { ++by_p; });
  std::size_t expect = 0;
  for (const IdTriple& t : first) {
    expect += t.p == p ? 1 : 0;
  }
  if (by_p != expect) {
    ++failures;
  }
  return failures;
}

// A handle pins its generation: the view must not move however many
// compactions, publications and reclamations happen after it was taken.
TEST(EpochStressTest, HandlesPinGenerationsAcrossCompactions) {
  DeltaHexastore store(DeltaOptions{/*compact_threshold=*/32,
                                    /*background_compaction=*/true});
  for (Id i = 1; i <= 100; ++i) {
    store.Insert({i, 1 + i % 5, i + 1});
  }
  store.Compact();
  const DeltaHexastore::Snapshot pinned = store.GetSnapshot();
  const IdTripleVec before = pinned.Match(IdPattern{});
  ASSERT_EQ(before.size(), 100u);

  // Churn through many more compactions.
  for (Id i = 101; i <= 600; ++i) {
    store.Insert({i, 1 + i % 5, i + 1});
  }
  for (Id i = 1; i <= 50; ++i) {
    store.Erase({i, 1 + i % 5, i + 1});
  }
  store.Compact();
  EXPECT_GT(store.CompactionCount(), 1u);

  // The pinned handle still answers from its generation...
  EXPECT_EQ(pinned.Match(IdPattern{}), before);
  EXPECT_EQ(pinned.size(), 100u);
  // ...while fresh handles see the new state.
  EXPECT_EQ(store.GetSnapshot().size(), 550u);

  const EpochStats epochs = store.EpochCounters();
  EXPECT_GT(epochs.generations_published, 1u);
  EXPECT_GT(epochs.generations_retired, 0u);
  // Quiescent now: every retired generation's grace period has passed.
  EXPECT_EQ(epochs.retire_queue_depth, 0u);
  EXPECT_EQ(epochs.generations_retired, epochs.generations_reclaimed);
}

// AcquireReadHandle trails the live store by at most the unpublished
// tail, and a snapshot publication catches it up exactly.
TEST(EpochStressTest, AcquireReadHandleSeesLastPublishedGeneration) {
  DeltaHexastore store(DeltaOptions{/*compact_threshold=*/1u << 20,
                                    /*background_compaction=*/true});
  // Nothing published yet: the wait-free handle is empty.
  EXPECT_EQ(store.AcquireReadHandle().size(), 0u);
  store.Insert({1, 2, 3});
  EXPECT_EQ(store.AcquireReadHandle().size(), 0u);  // still unpublished
  const DeltaHexastore::Snapshot snap = store.GetSnapshot();  // publishes
  EXPECT_EQ(snap.size(), 1u);
  EXPECT_EQ(store.AcquireReadHandle().size(), 1u);
  EXPECT_TRUE(store.AcquireReadHandle().Contains({1, 2, 3}));
}

// Regression: a merge-completion publication excludes the staging
// buffer when no snapshot exposed it — but it must NOT mark the store
// clean, or the next GetSnapshot would return the published (stale)
// generation and miss ops staged while the merge ran (and a WAL
// checkpoint serialized from it would silently drop them).
TEST(EpochStressTest, SnapshotCoversOpsStagedDuringMerge) {
  DeltaHexastore store(DeltaOptions{/*compact_threshold=*/8,
                                    /*background_compaction=*/true});
  for (Id i = 1; i <= 8; ++i) {
    store.Insert({i, 1, i});  // 8th op seals and wakes the merger
  }
  store.Insert({100, 2, 100});  // races the in-flight merge
  while (store.CompactionCount() == 0) {
    std::this_thread::yield();
  }
  const DeltaHexastore::Snapshot snap = store.GetSnapshot();
  EXPECT_EQ(snap.size(), 9u);
  EXPECT_TRUE(snap.Contains({100, 2, 100}));
  // A wait-free handle acquired after the snapshot's publication must
  // cover the raced op as well.
  EXPECT_TRUE(store.AcquireReadHandle().Contains({100, 2, 100}));
}

// The churn oracle from churn_test, run against background compaction:
// randomized Insert/Erase/ErasePattern/Clear with forced drains must
// stay in lock-step with a std::set and pass the invariant checker.
TEST(EpochStressTest, BackgroundChurnAgreesWithOracle) {
  Rng rng(0xBEEFCAFE);
  DeltaHexastore store(DeltaOptions{/*compact_threshold=*/48,
                                    /*background_compaction=*/true});
  std::set<IdTriple> oracle;
  constexpr Id kUniverse = 12;

  for (int batch = 0; batch < 40; ++batch) {
    for (int op = 0; op < 60; ++op) {
      const double dice = rng.NextDouble();
      if (dice < 0.52) {
        IdTriple t = RandomTriple(rng, kUniverse);
        ASSERT_EQ(store.Insert(t), oracle.insert(t).second);
      } else if (dice < 0.90) {
        IdTriple t;
        if (!oracle.empty() && rng.Bernoulli(0.5)) {
          auto it = oracle.begin();
          std::advance(it, rng.Uniform(oracle.size()));
          t = *it;
        } else {
          t = RandomTriple(rng, kUniverse);
        }
        ASSERT_EQ(store.Erase(t), oracle.erase(t) > 0);
      } else if (dice < 0.95) {
        const Id p = rng.UniformRange(1, kUniverse);
        std::size_t expected = 0;
        for (auto it = oracle.begin(); it != oracle.end();) {
          if (it->p == p) {
            it = oracle.erase(it);
            ++expected;
          } else {
            ++it;
          }
        }
        ASSERT_EQ(store.ErasePattern(IdPattern{0, p, 0}), expected);
      } else if (dice < 0.97) {
        store.Clear();
        oracle.clear();
      } else {
        store.Compact();
      }
    }
    ASSERT_EQ(store.size(), oracle.size()) << "batch " << batch;
    IdTripleVec scanned = store.Match(IdPattern{});
    ASSERT_EQ(scanned, IdTripleVec(oracle.begin(), oracle.end()))
        << "batch " << batch;
    std::string err;
    ASSERT_TRUE(store.CheckInvariants(&err)) << err;
  }
  store.Compact();
  const DeltaStats stats = store.Stats();
  EXPECT_TRUE(stats.background);
  EXPECT_GT(stats.seals, 0u);
  EXPECT_GT(stats.background_merges, 0u);
}

// The leveled configuration under the same oracle: background seals
// accumulate as L0 runs, fold into L1 off-thread and only occasionally
// rebuild the base — every intermediate level shape must agree with the
// std::set oracle and pass the invariant checker.
TEST(EpochStressTest, LeveledBackgroundChurnAgreesWithOracle) {
  Rng rng(0x1E7EBEEF);
  DeltaOptions options;
  options.compact_threshold = 32;
  options.background_compaction = true;
  options.l0_run_limit = 3;
  options.l1_base_fraction = 0.05;
  DeltaHexastore store(options);
  std::set<IdTriple> oracle;
  constexpr Id kUniverse = 12;

  for (int batch = 0; batch < 40; ++batch) {
    for (int op = 0; op < 60; ++op) {
      const double dice = rng.NextDouble();
      if (dice < 0.52) {
        IdTriple t = RandomTriple(rng, kUniverse);
        ASSERT_EQ(store.Insert(t), oracle.insert(t).second);
      } else if (dice < 0.90) {
        IdTriple t;
        if (!oracle.empty() && rng.Bernoulli(0.5)) {
          auto it = oracle.begin();
          std::advance(it, rng.Uniform(oracle.size()));
          t = *it;
        } else {
          t = RandomTriple(rng, kUniverse);
        }
        ASSERT_EQ(store.Erase(t), oracle.erase(t) > 0);
      } else if (dice < 0.95) {
        // Leveled fast path: the pattern tombstone may land above
        // matching triples sitting in L0 runs or L1.
        const Id p = rng.UniformRange(1, kUniverse);
        std::size_t expected = 0;
        for (auto it = oracle.begin(); it != oracle.end();) {
          if (it->p == p) {
            it = oracle.erase(it);
            ++expected;
          } else {
            ++it;
          }
        }
        ASSERT_EQ(store.ErasePattern(IdPattern{0, p, 0}), expected);
      } else if (dice < 0.97) {
        store.Clear();
        oracle.clear();
      } else {
        store.Compact();
      }
    }
    ASSERT_EQ(store.size(), oracle.size()) << "batch " << batch;
    IdTripleVec scanned = store.Match(IdPattern{});
    ASSERT_EQ(scanned, IdTripleVec(oracle.begin(), oracle.end()))
        << "batch " << batch;
    std::string err;
    ASSERT_TRUE(store.CheckInvariants(&err)) << err;
  }
  store.Compact();
  const DeltaStats stats = store.Stats();
  EXPECT_TRUE(stats.background);
  EXPECT_GT(stats.seals, 0u);
  EXPECT_GT(stats.l0_merges, 0u);
}

// The leveled background churn with prefix filters armed and a hard
// memory budget: reader threads hammer wait-free handles with mostly-
// absent point probes (the filter skip path) while the compactor folds
// under budget pressure and frees superseded runs on the deferred-
// reclaim path — which must return every tracked byte.
TEST(EpochStressTest, FilteredBackgroundChurnUnderBudgetStaysExact) {
  Rng rng(0xF117BEEF);
  DeltaOptions options;
  options.compact_threshold = 32;
  options.background_compaction = true;
  options.l0_run_limit = 3;
  options.l1_base_fraction = 0.05;
  options.filter_bits_per_key = 10;
  options.memory_budget_bytes = 8192;  // constant budget pressure

  std::shared_ptr<MemoryTracker> tracker;
  {
    DeltaHexastore store(options);
    tracker = store.memory_tracker();
    std::set<IdTriple> oracle;
    constexpr Id kUniverse = 12;

    std::atomic<bool> stop{false};
    std::thread reader([&store, &stop] {
      Rng reader_rng(0x5EED);
      while (!stop.load(std::memory_order_acquire)) {
        DeltaHexastore::Snapshot snap = store.AcquireReadHandle();
        // Distant keys are absent from every run: each probe that
        // reaches a filtered run should skip its table.
        const IdTriple far{reader_rng.UniformRange(1000, 2000),
                           reader_rng.UniformRange(1000, 2000),
                           reader_rng.UniformRange(1000, 2000)};
        EXPECT_FALSE(snap.Contains(far));
      }
    });

    for (int batch = 0; batch < 30; ++batch) {
      for (int op = 0; op < 60; ++op) {
        const double dice = rng.NextDouble();
        if (dice < 0.55) {
          IdTriple t = RandomTriple(rng, kUniverse);
          ASSERT_EQ(store.Insert(t), oracle.insert(t).second);
        } else if (dice < 0.92) {
          IdTriple t;
          if (!oracle.empty() && rng.Bernoulli(0.5)) {
            auto it = oracle.begin();
            std::advance(it, rng.Uniform(oracle.size()));
            t = *it;
          } else {
            t = RandomTriple(rng, kUniverse);
          }
          ASSERT_EQ(store.Erase(t), oracle.erase(t) > 0);
        } else if (dice < 0.97) {
          const Id p = rng.UniformRange(1, kUniverse);
          std::size_t expected = 0;
          for (auto it = oracle.begin(); it != oracle.end();) {
            if (it->p == p) {
              it = oracle.erase(it);
              ++expected;
            } else {
              ++it;
            }
          }
          ASSERT_EQ(store.ErasePattern(IdPattern{0, p, 0}), expected);
        } else {
          store.Compact();
        }
      }
      ASSERT_EQ(store.size(), oracle.size()) << "batch " << batch;
      IdTripleVec scanned = store.Match(IdPattern{});
      ASSERT_EQ(scanned, IdTripleVec(oracle.begin(), oracle.end()))
          << "batch " << batch;
      std::string err;
      ASSERT_TRUE(store.CheckInvariants(&err)) << err;
    }
    stop.store(true, std::memory_order_release);
    reader.join();

    // Whether any seal got its filter armed above is a race: over
    // budget, ConfigureRunLocked drops filters, and with an 8 KiB
    // budget the store is over it almost the entire run — on a loaded
    // machine every seal can land in a dropped-filter window and the
    // counters stay zero. Finish deterministically: Clear() takes the
    // store under budget (the meters and filter counters survive), one
    // staged batch past the threshold seals a run that must arm its
    // filter, and absent-key probes against the pinned generation hit
    // the skip path.
    for (Id attempt = 0; store.Stats().filter_probes == 0 && attempt < 8;
         ++attempt) {
      store.Clear();
      for (Id k = 0; k <= options.compact_threshold; ++k) {
        store.Insert(IdTriple{500 + attempt, 500 + k, 500});
      }
      DeltaHexastore::Snapshot snap = store.AcquireReadHandle();
      for (Id k = 0; k < 16; ++k) {
        EXPECT_FALSE(snap.Contains(IdTriple{3000 + k, 3000, 3000}));
      }
    }

    const DeltaStats stats = store.Stats();
    EXPECT_TRUE(stats.background);
    EXPECT_GT(stats.seals, 0u);
    EXPECT_GT(stats.filter_probes, 0u);
    EXPECT_GT(stats.filter_skips, 0u);
    EXPECT_GT(stats.budget_folds, 0u);
  }
  // Every run — including those destroyed by the compactor on the
  // deferred-reclaim path — must have subtracted its tracked bytes.
  EXPECT_TRUE(tracker->balanced());
}

// Leveled headline: readers hold a window of wait-free handles across
// L0→L1 folds and L1→base merges running on the compactor thread. Every
// pinned view must stay internally consistent no matter which level a
// merge is moving underneath it, and the quiescent state must match the
// oracle built from the writer's return values.
TEST(EpochStressTest, ReadersHoldHandlesAcrossLevelMerges) {
  DeltaOptions options;
  options.compact_threshold = 48;
  options.background_compaction = true;
  options.l0_run_limit = 2;
  options.l1_base_fraction = 0.02;  // frequent L1→base rebuilds
  DeltaHexastore store(options);
  constexpr int kReaders = 4;
  constexpr int kWriterOps = 8000;

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&store, &done, &failures, r] {
      Rng rng(9100 + r);
      std::deque<DeltaHexastore::Snapshot> held;
      while (!done.load(std::memory_order_acquire)) {
        held.push_back(store.AcquireReadHandle());
        if (held.size() > 8) {
          held.pop_front();
        }
        failures.fetch_add(CheckHandleConsistency(held.back(), rng));
        failures.fetch_add(
            CheckHandleConsistency(held[rng.Uniform(held.size())], rng));
        // Don't starve the writer on small machines (see above).
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  Rng rng(2027);
  std::set<IdTriple> oracle;
  for (int i = 0; i < kWriterOps; ++i) {
    IdTriple t{1 + rng.Uniform(200), 1 + rng.Uniform(8),
               1 + rng.Uniform(200)};
    if (rng.Bernoulli(0.8)) {
      ASSERT_EQ(store.Insert(t), oracle.insert(t).second);
    } else {
      ASSERT_EQ(store.Erase(t), oracle.erase(t) > 0);
    }
    if (i % 2500 == 2499) {
      store.Compact();  // forced full-depth drain mid-churn
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);

  // Quiesce and verify against the oracle.
  store.Compact();
  const DeltaHexastore::Snapshot final_snap = store.GetSnapshot();
  EXPECT_EQ(final_snap.Match(IdPattern{}),
            IdTripleVec(oracle.begin(), oracle.end()));
  std::string err;
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;

  // The run actually exercised both merge kinds off-thread.
  const DeltaStats stats = store.Stats();
  EXPECT_GT(stats.seals, 0u);
  EXPECT_GT(stats.l0_merges, 0u);
  EXPECT_GT(stats.base_merges, 0u);

  const EpochStats epochs = store.EpochCounters();
  EXPECT_GT(epochs.handles_acquired, 0u);
  EXPECT_EQ(epochs.retire_queue_depth, 0u);
  EXPECT_EQ(epochs.active_reader_sections, 0);
}

// The headline contract: reader threads holding generation handles
// across many forced compactions never block on the store mutex and
// never see a torn or moving view. Readers deliberately keep a window
// of old handles alive (exercising the retire list) while the writer
// drives hundreds of seals and merges; a final quiescent check compares
// against the oracle built from the writer's return values.
TEST(EpochStressTest, ReadersHoldHandlesAcrossForcedCompactions) {
  DeltaHexastore store(DeltaOptions{/*compact_threshold=*/64,
                                    /*background_compaction=*/true});
  constexpr int kReaders = 4;
  constexpr int kWriterOps = 8000;

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> handles_taken{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&store, &done, &failures, &handles_taken, r] {
      Rng rng(7000 + r);
      // Held window: handles survive several compactions each.
      std::deque<DeltaHexastore::Snapshot> held;
      while (!done.load(std::memory_order_acquire)) {
        held.push_back(store.AcquireReadHandle());
        handles_taken.fetch_add(1, std::memory_order_relaxed);
        if (held.size() > 8) {
          held.pop_front();
        }
        // Check the freshest handle and one from deeper in the window
        // (old enough to have been retired and survive only via its
        // pin) — checking all eight every round would just repeat work.
        failures.fetch_add(CheckHandleConsistency(held.back(), rng));
        failures.fetch_add(
            CheckHandleConsistency(held[rng.Uniform(held.size())], rng));
        // Brief nap: the box running this may have fewer cores than
        // threads, and spinning readers would starve the writer whose
        // progress bounds the test's wall time.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  Rng rng(2026);
  std::set<IdTriple> oracle;
  for (int i = 0; i < kWriterOps; ++i) {
    IdTriple t{1 + rng.Uniform(200), 1 + rng.Uniform(8),
               1 + rng.Uniform(200)};
    if (rng.Bernoulli(0.8)) {
      ASSERT_EQ(store.Insert(t), oracle.insert(t).second);
    } else {
      ASSERT_EQ(store.Erase(t), oracle.erase(t) > 0);
    }
    if (i % 2000 == 1999) {
      store.Compact();  // forced drain mid-churn
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(handles_taken.load(), 0u);
  EXPECT_GT(store.CompactionCount(), 0u);

  // Quiesce and verify against the oracle.
  store.Compact();
  const DeltaHexastore::Snapshot final_snap = store.GetSnapshot();
  EXPECT_EQ(final_snap.Match(IdPattern{}),
            IdTripleVec(oracle.begin(), oracle.end()));
  std::string err;
  EXPECT_TRUE(store.CheckInvariants(&err)) << err;

  // All readers gone: reclamation has caught up with retirement.
  const EpochStats epochs = store.EpochCounters();
  EXPECT_GT(epochs.handles_acquired, 0u);
  EXPECT_EQ(epochs.retire_queue_depth, 0u);
  EXPECT_EQ(epochs.active_reader_sections, 0);
}

// Pinned-generation query plans: BGP evaluation and merge joins over a
// handle answer from exactly one generation while the writer churns.
TEST(EpochStressTest, PinnedQueriesAnswerFromOneGeneration) {
  DeltaHexastore store(DeltaOptions{/*compact_threshold=*/32,
                                    /*background_compaction=*/true});
  Dictionary dict;
  const Id p_knows = dict.Encode({Term::Iri("a"), Term::Iri("knows"),
                                  Term::Iri("b")})
                         .p;

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&store, &done, &failures, p_knows] {
      while (!done.load(std::memory_order_acquire)) {
        const DeltaHexastore::Snapshot snap = store.AcquireReadHandle();
        // The joins and the direct scans must agree because they read
        // the same pinned generation.
        const IdVec joined = JoinSubjectsOfObjects(snap, 7, 9);
        const IdVec left = snap.subjects_of_object(7);
        const IdVec right = snap.subjects_of_object(9);
        IdVec expect;
        for (Id s : left) {
          if (SortedContains(right, s)) {
            expect.push_back(s);
          }
        }
        if (joined != expect) {
          failures.fetch_add(1);
        }
        // Chain join built from the same handle stays self-consistent.
        const auto chain = JoinChain(snap, p_knows, p_knows);
        for (const auto& [s, e] : chain) {
          if (!snap.MatchesAny(IdPattern{s, p_knows, 0})) {
            failures.fetch_add(1);
          }
          if (!snap.MatchesAny(IdPattern{0, p_knows, e})) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }

  Rng rng(99);
  for (int i = 0; i < 12000; ++i) {
    IdTriple t{1 + rng.Uniform(40), p_knows, 1 + rng.Uniform(40)};
    if (rng.Bernoulli(0.7)) {
      store.Insert(t);
    } else {
      store.Erase(t);
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);

  // EvalBgpPinned plans and evaluates against a single generation; on a
  // quiescent store it must agree with the live evaluation.
  store.Compact();
  const std::vector<TriplePattern> patterns = {
      {PatternTerm::Variable("x"), PatternTerm::Bound(dict.term(p_knows)),
       PatternTerm::Variable("y")}};
  const ResultSet pinned = EvalBgpPinned(store, dict, patterns);
  const ResultSet live = EvalBgp(store, dict, patterns);
  EXPECT_EQ(pinned.rows.size(), live.rows.size());
}

// Concurrent profiled queries against a churning store: every profile
// is filled from the single pinned generation its query ran on (never a
// freed one — TSan guards the reclamation race), the shared ProfileSink
// ring accepts records from all readers, and seqlock snapshots taken
// mid-churn only ever observe internally consistent entries.
TEST(EpochStressTest, ProfiledQueriesUnderBackgroundChurn) {
  DeltaHexastore store(DeltaOptions{/*compact_threshold=*/32,
                                    /*background_compaction=*/true});
  Dictionary dict;
  const Id p_knows = dict.Encode({Term::Iri("a"), Term::Iri("knows"),
                                  Term::Iri("b")})
                         .p;
  // Threshold 0: every profiled query lands in the slow-query ring.
  ProfileSink sink(/*slow_threshold_ns=*/std::uint64_t{0});

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> queries{0};
  const std::vector<TriplePattern> patterns = {
      {PatternTerm::Variable("x"), PatternTerm::Bound(dict.term(p_knows)),
       PatternTerm::Variable("y")}};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(17 + r);
      while (!done.load(std::memory_order_acquire)) {
        queries.fetch_add(1, std::memory_order_relaxed);
        QueryProfile profile;
        const ResultSet result =
            EvalBgpPinned(store, dict, patterns, &profile);
        // The profile describes exactly the pinned evaluation: one
        // pattern, row count matching the result, phases that add up.
        if (profile.patterns.size() != 1 ||
            profile.rows_out != result.rows.size() ||
            profile.patterns[0].rows_emitted != result.rows.size() ||
            profile.total_ns != profile.parse_ns + profile.pin_ns) {
          failures.fetch_add(1);
        }
        sink.Record(profile, "pinned churn probe");
        if (rng.Bernoulli(0.25)) {
          // Seqlock snapshot raced against the other recorders: every
          // retained entry must be a whole record, never a torn one.
          for (const obs::SlowQueryRecord& e :
               sink.slow_queries().Snapshot()) {
            if (e.kind != obs::kSlowQueryKindBgp ||
                e.q_error_x1000 < 1000 || e.patterns != 1 ||
                e.total_ns != e.parse_ns + e.pin_ns ||
                e.text != "pinned churn probe") {
              failures.fetch_add(1);
            }
          }
        }
      }
    });
  }

  // Churn until the readers have run a healthy number of profiled
  // queries (thread startup can outlast a short fixed-length burst).
  Rng rng(4242);
  std::uint64_t ops = 0;
  while (queries.load(std::memory_order_relaxed) < 50 || ops < 12000) {
    IdTriple t{1 + rng.Uniform(40), p_knows, 1 + rng.Uniform(40)};
    if (rng.Bernoulli(0.7)) {
      store.Insert(t);
    } else {
      store.Erase(t);
    }
    ++ops;
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(store.CompactionCount(), 0u);
  EXPECT_GT(sink.histogram(QueryKind::kBgp)->Snapshot().count, 0u);
  EXPECT_GT(sink.slow_queries().TotalRecorded(), 0u);
}

// The plan-cache churn oracle: concurrent wait-free Sessions sharing
// one PlanCache answer templated queries while a writer churns the hot
// predicate through background compactions and publications. Responses
// over the untouched predicate must stay byte-identical whether the
// join order came from the cache or a fresh plan; hot-predicate row
// counts are non-decreasing per session (sequential queries, monotone
// publications); and the growing hot cardinality must eventually drift
// past the q-error threshold and invalidate (the cache never serves a
// stale plan silently — it revalidates estimates per drifted stamp).
TEST(EpochStressTest, PlanCacheServesConcurrentSessionsUnderChurn) {
  DeltaHexastore store(DeltaOptions{/*compact_threshold=*/64,
                                    /*background_compaction=*/true});
  Dictionary dict;
  // Intern every term up front: Dictionary is not thread-safe, and the
  // readers render results against it while the writer runs.
  std::vector<IdTriple> hot_triples;
  for (int i = 0; i < 2000; ++i) {
    hot_triples.push_back(dict.Encode(
        {Term::Iri("http://x/h" + std::to_string(i)),
         Term::Iri("http://x/hot"), Term::Iri("http://x/o")}));
  }
  for (int i = 0; i < 32; ++i) {
    store.Insert(dict.Encode(
        {Term::Iri("http://x/s" + std::to_string(i)),
         Term::Iri("http://x/stable"),
         Term::Iri("http://x/t" + std::to_string(i % 4))}));
  }
  store.Insert(hot_triples[0]);
  store.GetSnapshot();  // publish the seed

  PlanCache cache;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::mutex golden_mu;
  std::string golden_stable;

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      query::SessionOptions options;
      options.pin = query::PinPolicy::kWaitFree;
      options.plan_cache = &cache;
      query::Session session(store, dict, options);
      std::size_t last_hot_rows = 0;
      std::uint64_t i = 0;
      while (!done.load(std::memory_order_acquire)) {
        if ((i++ + r) % 2 == 0) {
          auto result = session.Query(
              "SELECT ?s ?t WHERE { ?s <http://x/stable> ?t } ORDER BY ?s");
          if (!result.ok()) {
            failures.fetch_add(1);
            continue;
          }
          const std::string json =
              ResultSetToJson(result.value().set, dict);
          std::lock_guard<std::mutex> lock(golden_mu);
          if (golden_stable.empty()) {
            golden_stable = json;
          } else if (golden_stable != json) {
            failures.fetch_add(1);
          }
        } else {
          auto result = session.Query(
              "SELECT ?s WHERE { ?s <http://x/hot> ?o }");
          if (!result.ok()) {
            failures.fetch_add(1);
            continue;
          }
          const std::size_t rows = result.value().set.rows.size();
          if (rows < last_hot_rows) {
            failures.fetch_add(1);  // a pinned read went backwards
          }
          last_hot_rows = rows;
        }
      }
    });
  }

  // Writer: grow the hot predicate (pre-encoded ids only — no dict
  // mutation) and publish every batch so wait-free readers advance.
  for (std::size_t i = 1; i < hot_triples.size(); ++i) {
    store.Insert(hot_triples[i]);
    if (i % 16 == 0) {
      store.GetSnapshot();
      std::this_thread::yield();
    }
  }
  store.GetSnapshot();
  done.store(true, std::memory_order_release);
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(cache.hits(), 0u);
  // 1 -> 2000 hot triples sweeps through the q-error threshold many
  // times over; the cache must have replanned at least once.
  EXPECT_GT(cache.invalidations(), 0u);
  EXPECT_EQ(cache.size(), 2u);
}

// Readers hold handles across WAL checkpoints running on the
// checkpointer thread while a writer churns through compactions; the
// reopened store must recover exactly the writer's final state.
TEST(EpochStressTest, HandlesSurviveCheckpointsAndRecovery) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("hexa-epoch-stress-" + std::to_string(::getpid()));
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  DurabilityOptions options;
  options.dir = dir.string();
  options.mode = DurabilityMode::kNone;
  // Each checkpoint pays several fsyncs; a mid-size threshold keeps the
  // test to a handful of compaction-triggered checkpoints plus the two
  // explicit ones below.
  options.compact_threshold = 512;
  options.background_compaction = true;
  options.background_checkpoints = true;
  // Leveled inner store: checkpoints ride fold and base merges alike,
  // and recovery must replay into the same leveled configuration.
  options.l0_run_limit = 2;
  options.l1_base_fraction = 0.1;

  std::set<IdTriple> oracle;
  {
    auto opened = DurableDeltaHexastore::Open(options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    DurableDeltaHexastore* store = opened.value().get();

    std::atomic<bool> done{false};
    std::atomic<int> failures{0};
    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
      readers.emplace_back([store, &done, &failures, r] {
        Rng rng(41 + r);
        std::deque<DeltaHexastore::Snapshot> held;
        while (!done.load(std::memory_order_acquire)) {
          held.push_back(store->AcquireReadHandle());
          if (held.size() > 4) {
            held.pop_front();
          }
          failures.fetch_add(CheckHandleConsistency(held.back(), rng));
          failures.fetch_add(
              CheckHandleConsistency(held.front(), rng));
          // Don't starve the writer on small machines (see above).
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      });
    }

    Rng rng(0xD00D);
    for (int i = 0; i < 4000; ++i) {
      IdTriple t{1 + rng.Uniform(100), 1 + rng.Uniform(8),
                 1 + rng.Uniform(100)};
      if (rng.Bernoulli(0.75)) {
        ASSERT_EQ(store->Insert(t), oracle.insert(t).second);
      } else {
        ASSERT_EQ(store->Erase(t), oracle.erase(t) > 0);
      }
      if (i % 1500 == 1499) {
        ASSERT_TRUE(store->Checkpoint().ok());  // explicit, mid-churn
      }
    }
    done.store(true, std::memory_order_release);
    for (auto& th : readers) {
      th.join();
    }
    EXPECT_EQ(failures.load(), 0);
    ASSERT_TRUE(store->status().ok());
    ASSERT_TRUE(store->Flush().ok());
    const WalStats wal = store->wal_stats();
    EXPECT_GT(wal.checkpoints, 0u);
  }

  auto reopened = DurableDeltaHexastore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->size(), oracle.size());
  EXPECT_EQ(reopened.value()->Match(IdPattern{}),
            IdTripleVec(oracle.begin(), oracle.end()));
  std::string err;
  EXPECT_TRUE(reopened.value()->CheckInvariants(&err)) << err;
  std::filesystem::remove_all(dir, ec);
}

// Observability under concurrency, for the TSan job: writers churn a
// leveled background store (histograms recording, trace ring filling
// from both the writer and the compactor thread) while reader threads
// continuously render the Prometheus page, the JSON dump, GatherStats()
// and raw trace snapshots. Everything here must be data-race-free: the
// instruments are relaxed atomics, the trace ring is a seqlock, and
// GatherStats serializes on the store mutex.
TEST(EpochStressTest, MetricsExportsRaceFreeUnderChurn) {
  DeltaOptions options;
  options.compact_threshold = 48;
  options.background_compaction = true;
  options.l0_run_limit = 2;
  options.trace_capacity = 64;  // force wraparound under churn
  DeltaHexastore store(options);

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&store, &done, &failures, r] {
      while (!done.load(std::memory_order_acquire)) {
        if (r == 0) {
          if (store.MetricsText().find("hexa_delta_staged_ops_total") ==
              std::string::npos) {
            failures.fetch_add(1);
          }
        } else if (r == 1) {
          if (store.MetricsJson().find("\"version\": 2") ==
              std::string::npos) {
            failures.fetch_add(1);
          }
        } else {
          const StatsSnapshot snap = store.GatherStats();
          if (snap.delta.compact_threshold != 48) {
            failures.fetch_add(1);
          }
          for (const obs::TraceRecord& rec : store.trace_ring().Snapshot()) {
            if (rec.reason == nullptr) {
              failures.fetch_add(1);
            }
          }
        }
      }
    });
  }

  Rng rng(0x0B5EC0DE);
  constexpr Id kUniverse = 16;
  for (int op = 0; op < 6000; ++op) {
    const IdTriple t = RandomTriple(rng, kUniverse);
    if (rng.Bernoulli(0.6)) {
      store.Insert(t);
    } else {
      store.Erase(t);
    }
    store.Contains(t);
  }
  store.Compact();
  done.store(true, std::memory_order_release);
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(store.trace_ring().TotalRecorded(), 0u);
  const DeltaStats stats = store.Stats();
  EXPECT_GT(stats.seals, 0u);
  std::string err;
  ASSERT_TRUE(store.CheckInvariants(&err)) << err;
}

// -- Sharded multi-writer stress --------------------------------------------
//
// The sharding headline: N writer threads hammer one ShardedHexastore
// while per-shard background compactors fold their own shards and
// reader threads hold cross-shard pinned snapshots. Writers own
// disjoint subject ranges, so each can check every Insert/Erase/
// ErasePattern return value against a private std::set oracle with no
// cross-writer interference (subjects route deterministically, so two
// writers never race on the same logical triple). The quiescent union
// of the writer oracles is the ground truth for the facade.
TEST(EpochStressTest, ShardedMultiWriterChurnAgreesWithOracle) {
  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 3000;
  ShardedOptions options;
  options.shards = 4;
  options.delta.compact_threshold = 48;
  options.delta.background_compaction = true;
  options.delta.l0_run_limit = 2;
  options.delta.l1_base_fraction = 0.05;
  // A tight facade budget (sliced across shards) keeps every per-shard
  // compactor under pressure, exercising the budget-fold path in
  // parallel.
  options.delta.memory_budget_bytes = 64 * 1024;

  std::vector<std::shared_ptr<MemoryTracker>> trackers;
  std::vector<std::set<IdTriple>> oracles(kWriters);
  {
    ShardedHexastore store(options);
    for (std::size_t i = 0; i < store.shard_count(); ++i) {
      trackers.push_back(store.shard(i).memory_tracker());
    }

    std::atomic<bool> done{false};
    std::atomic<int> failures{0};
    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r) {
      readers.emplace_back([&store, &done, &failures, r] {
        Rng rng(6200 + r);
        std::deque<ShardedSnapshot> held;
        while (!done.load(std::memory_order_acquire)) {
          held.push_back(store.AcquireReadHandle());
          if (held.size() > 4) {
            held.pop_front();
          }
          // A cross-shard snapshot carries one (epoch, staged_ops) pair
          // per shard and must stay internally consistent even though
          // its shards were pinned at different generations.
          if (held.back().StampVector().size() != 2 * store.shard_count()) {
            failures.fetch_add(1);
          }
          failures.fetch_add(CheckHandleConsistency(held.back(), rng));
          failures.fetch_add(
              CheckHandleConsistency(held[rng.Uniform(held.size())], rng));
          // Don't starve the writers on small machines.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      });
    }

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&store, &oracles, &failures, w] {
        Rng rng(3100 + w);
        std::set<IdTriple>& oracle = oracles[w];
        // Disjoint subject range per writer: [base, base + 50).
        const Id base = 1 + static_cast<Id>(w) * 50;
        for (int i = 0; i < kOpsPerWriter; ++i) {
          const IdTriple t{base + rng.Uniform(50), 1 + rng.Uniform(8),
                           1 + rng.Uniform(40)};
          const double dice = rng.NextDouble();
          if (dice < 0.68) {
            if (store.Insert(t) != oracle.insert(t).second) {
              failures.fetch_add(1);
            }
          } else if (dice < 0.97) {
            if (store.Erase(t) != (oracle.erase(t) > 0)) {
              failures.fetch_add(1);
            }
          } else {
            // Bound-subject pattern erase stays inside this writer's
            // range, so the exact count is checkable concurrently.
            const Id s = base + rng.Uniform(50);
            std::size_t expected = 0;
            for (auto it = oracle.begin(); it != oracle.end();) {
              if (it->s == s) {
                it = oracle.erase(it);
                ++expected;
              } else {
                ++it;
              }
            }
            if (store.ErasePattern(IdPattern{s, 0, 0}) != expected) {
              failures.fetch_add(1);
            }
          }
        }
      });
    }
    for (auto& th : writers) {
      th.join();
    }
    done.store(true, std::memory_order_release);
    for (auto& th : readers) {
      th.join();
    }
    EXPECT_EQ(failures.load(), 0);

    // Quiesce: the facade must equal the union of the writer oracles.
    store.Compact();
    std::set<IdTriple> merged;
    for (const auto& oracle : oracles) {
      merged.insert(oracle.begin(), oracle.end());
    }
    EXPECT_EQ(store.GetSnapshot().Match(IdPattern{}),
              IdTripleVec(merged.begin(), merged.end()));
    EXPECT_EQ(store.size(), merged.size());
    std::string err;
    EXPECT_TRUE(store.CheckInvariants(&err)) << err;

    // Every shard's compactor actually ran, and with all readers gone
    // reclamation has caught up with retirement on every shard.
    std::uint64_t seals = 0;
    for (std::size_t i = 0; i < store.shard_count(); ++i) {
      seals += store.shard(i).Stats().seals;
      const EpochStats epochs = store.shard(i).EpochCounters();
      EXPECT_EQ(epochs.retire_queue_depth, 0u) << "shard " << i;
      EXPECT_EQ(epochs.active_reader_sections, 0) << "shard " << i;
    }
    EXPECT_GT(seals, 0u);
  }
  // Per-shard memory accounting balances after teardown — including
  // runs freed by the parallel compactors on the deferred path.
  for (std::size_t i = 0; i < trackers.size(); ++i) {
    EXPECT_TRUE(trackers[i]->balanced()) << "shard " << i;
  }
}

// Durable sharding under concurrency: writers on disjoint subject
// ranges drive cross-shard group commits (batched mode shares one
// WalCommitGroup across the per-shard WALs) while a checkpointer thread
// runs facade-wide checkpoints and readers hold cross-shard handles.
// The reopened store must recover exactly the union of the writer
// oracles.
TEST(EpochStressTest, ShardedWritersGroupCommitsAndCheckpointsRecover) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("hexa-shard-stress-" + std::to_string(::getpid()));
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  constexpr int kWriters = 3;
  constexpr int kOpsPerWriter = 1500;
  ShardedOptions options;
  options.shards = 4;
  options.durable = true;
  options.durability.dir = dir.string();
  options.durability.mode = DurabilityMode::kBatched;
  options.durability.batch_bytes = 256;  // frequent group sweeps
  options.durability.compact_threshold = 512;
  options.durability.background_compaction = true;

  std::vector<std::set<IdTriple>> oracles(kWriters);
  {
    auto opened = ShardedHexastore::Open(options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    ShardedHexastore* store = opened.value().get();

    std::atomic<bool> done{false};
    std::atomic<int> failures{0};
    std::thread reader([store, &done, &failures] {
      Rng rng(808);
      while (!done.load(std::memory_order_acquire)) {
        failures.fetch_add(
            CheckHandleConsistency(store->AcquireReadHandle(), rng));
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
    std::thread checkpointer([store, &done, &failures] {
      while (!done.load(std::memory_order_acquire)) {
        if (!store->Checkpoint().ok()) {
          failures.fetch_add(1);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([store, &oracles, &failures, w] {
        Rng rng(5400 + w);
        std::set<IdTriple>& oracle = oracles[w];
        const Id base = 1 + static_cast<Id>(w) * 40;
        for (int i = 0; i < kOpsPerWriter; ++i) {
          const IdTriple t{base + rng.Uniform(40), 1 + rng.Uniform(6),
                           1 + rng.Uniform(30)};
          if (rng.Bernoulli(0.72)) {
            if (store->Insert(t) != oracle.insert(t).second) {
              failures.fetch_add(1);
            }
          } else {
            if (store->Erase(t) != (oracle.erase(t) > 0)) {
              failures.fetch_add(1);
            }
          }
        }
      });
    }
    for (auto& th : writers) {
      th.join();
    }
    done.store(true, std::memory_order_release);
    reader.join();
    checkpointer.join();
    EXPECT_EQ(failures.load(), 0);
    ASSERT_TRUE(store->status().ok());
    ASSERT_TRUE(store->Flush().ok());
    // Group commit actually batched across shard WALs: the facade saw
    // checkpoints on at least one shard and every shard's WAL is clean.
    for (std::size_t i = 0; i < store->shard_count(); ++i) {
      ASSERT_TRUE(store->durable_shard(i)->status().ok()) << "shard " << i;
    }
  }

  std::set<IdTriple> merged;
  for (const auto& oracle : oracles) {
    merged.insert(oracle.begin(), oracle.end());
  }
  auto reopened = ShardedHexastore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->size(), merged.size());
  EXPECT_EQ(reopened.value()->Match(IdPattern{}),
            IdTripleVec(merged.begin(), merged.end()));
  std::string err;
  EXPECT_TRUE(reopened.value()->CheckInvariants(&err)) << err;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace hexastore
